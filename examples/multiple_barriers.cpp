/**
 * @file
 * The Fig. 6 multiple-barriers scenario: three processors whose
 * streams merge pairwise using distinct logical barriers. Tags keep
 * the pairs from incorrectly synchronizing with each other; masks
 * select the participants (paper section 5).
 *
 *   P1 and P2 synchronize at barrier B3 (tag 3);
 *   P2 and P3 synchronize at barrier B4 (tag 4);
 *   then all three synchronize at barrier B2 (tag 2).
 */

#include <cstdio>
#include <string>

#include "core/fuzzy_barrier.hh"

namespace
{

fb::isa::Program
assemble(const std::string &src)
{
    fb::isa::Program prog;
    std::string err;
    if (!fb::isa::Assembler::assemble(src, prog, err)) {
        std::fprintf(stderr, "assembly failed: %s\n", err.c_str());
        std::exit(1);
    }
    return prog;
}

} // namespace

int
main()
{
    // Processor 0 (P1): works, meets P2 at tag 3, then the full group
    // at tag 2.
    auto p0 = assemble(R"(
        settag 3
        setmask 3        ; synchronize with processor 1
        addi r3, r3, 1
    .region 1
        nop
    .endregion
        st r3, 100(r0)   ; crossing B3: P2 has produced its value
        settag 2
        setmask 7        ; all three processors
        nop
    .region 2
        nop
    .endregion
        st r3, 103(r0)
        halt
    )");

    // Processor 1 (P2): meets P1 at tag 3, then P3 at tag 4, then all.
    auto p1 = assemble(R"(
        settag 3
        setmask 3
        addi r3, r3, 2
    .region 1
        nop
    .endregion
        st r3, 101(r0)
        settag 4
        setmask 6        ; now synchronize with processor 2
        nop
    .region 3
        nop
    .endregion
        settag 2
        setmask 7
        nop
    .region 2
        nop
    .endregion
        st r3, 104(r0)
        halt
    )");

    // Processor 2 (P3): long solo work, then meets P2 at tag 4, then
    // all. Without distinct tags it could wrongly match P1's barrier.
    std::string p2_src = R"(
        settag 4
        setmask 6
)";
    for (int k = 0; k < 40; ++k)
        p2_src += "        addi r3, r3, 1\n";
    p2_src += R"(
    .region 3
        nop
    .endregion
        st r3, 102(r0)
        settag 2
        setmask 7
        nop
    .region 2
        nop
    .endregion
        st r3, 105(r0)
        halt
    )";
    auto p2 = assemble(p2_src);

    fb::sim::MachineConfig cfg;
    cfg.numProcessors = 3;
    cfg.memWords = 4096;
    fb::sim::Machine machine(cfg);
    machine.loadProgram(0, std::move(p0));
    machine.loadProgram(1, std::move(p1));
    machine.loadProgram(2, std::move(p2));
    auto r = machine.run();

    std::printf("Fig. 6 stream merge with tags and masks\n");
    std::printf("deadlock: %s, total group syncs: %llu\n",
                r.deadlocked ? "YES (bug!)" : "no",
                static_cast<unsigned long long>(r.syncEvents));
    std::printf("safety: %s\n", machine.checkSafetyProperty().empty()
                                    ? "OK"
                                    : "VIOLATED");
    for (int p = 0; p < 3; ++p) {
        std::printf("cpu%d: episodes=%llu stalled=%llu\n", p,
                    static_cast<unsigned long long>(
                        r.perProcessor[static_cast<std::size_t>(p)]
                            .barrierEpisodes),
                    static_cast<unsigned long long>(
                        r.perProcessor[static_cast<std::size_t>(p)]
                            .stalledEpisodes));
    }
    std::printf("values: P1=%lld P2=%lld P3=%lld\n",
                static_cast<long long>(machine.memory().peek(100)),
                static_cast<long long>(machine.memory().peek(101)),
                static_cast<long long>(machine.memory().peek(102)));
    return 0;
}
