/**
 * @file
 * The Fig. 3 Poisson solver running on the simulated multiprocessor:
 * M*M processors, one interior cell each, a fuzzy barrier between
 * outer iterations. Compares the naive body (small barrier region)
 * against the reordered body (large region) under execution drift.
 */

#include <cstdio>

#include "core/fuzzy_barrier.hh"

namespace
{

void
report(const char *name, const fb::core::PoissonRun &run)
{
    const auto &r = run.result;
    std::printf("%-22s cycles=%-9llu syncs=%-5llu stallEpisodes=%-5llu "
                "barrierWait=%-8llu residual=%lld\n",
                name, static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.syncEvents),
                static_cast<unsigned long long>([&] {
                    unsigned long long total = 0;
                    for (const auto &p : r.perProcessor)
                        total += p.stalledEpisodes;
                    return total;
                }()),
                static_cast<unsigned long long>(r.totalBarrierWait()),
                static_cast<long long>(run.maxResidual));
}

} // namespace

int
main()
{
    const int m = 2;          // 4 processors, as the paper's prototype
    const int iters = 10 * m; // the Fig. 3 iteration count
    const std::int64_t boundary = 40;

    fb::core::PoissonWorkload wl(m);

    fb::sim::MachineConfig cfg;
    cfg.numProcessors = m * m;
    cfg.memWords = 1 << 14;
    cfg.jitterMean = 2.0;  // cache misses / drift, section 1
    cfg.seed = 42;

    std::printf("Poisson solver, %dx%d grid, %d processors, %d outer "
                "iterations, boundary=%lld\n\n",
                m, m, m * m, iters, static_cast<long long>(boundary));

    auto naive = fb::core::runPoisson(wl, cfg, iters, boundary, false);
    report("naive body (4a)", naive);

    auto reordered = fb::core::runPoisson(wl, cfg, iters, boundary, true);
    report("reordered body (4b)", reordered);

    std::printf("\nreordering cut barrier wait by %.1f%%\n",
                naive.result.totalBarrierWait() == 0
                    ? 0.0
                    : 100.0 *
                          (1.0 -
                           static_cast<double>(
                               reordered.result.totalBarrierWait()) /
                               static_cast<double>(
                                   naive.result.totalBarrierWait())));
    std::printf("both runs converged to the boundary value: %s\n",
                naive.maxResidual <= 2 && reordered.maxResidual <= 2
                    ? "yes"
                    : "NO");
    return 0;
}
