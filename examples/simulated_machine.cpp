/**
 * @file
 * Driving the simulated multiprocessor directly with assembly: two
 * processors synchronize through a fuzzy barrier whose region spans
 * the loop backedge, in both region-bit and BRENTER/BREXIT marker
 * encodings (paper section 6's two hardware encodings).
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "core/fuzzy_barrier.hh"

namespace
{

std::string
streamSource(int heavy_phase)
{
    // Alternating load (Fig. 7 situation): on half the iterations
    // this stream runs 24 extra instructions; the barrier region (16
    // instructions + loop control) absorbs most of the drift.
    std::string src = R"(
        settag 1
        setmask 3
        li r1, 0
        li r2, 12
        li r7, 1
)";
    src += "        li r8, " + std::to_string(heavy_phase) + "\n";
    src += R"(
    loop:
        and r6, r1, r7
        bne r6, r8, light
)";
    for (int k = 0; k < 24; ++k)
        src += "        addi r5, r5, 1\n";
    src += "    light:\n";
    src += "        addi r3, r3, 1\n";
    src += "    .region 1\n";
    for (int k = 0; k < 16; ++k)
        src += "        addi r4, r4, 1\n";
    src += R"(
        addi r1, r1, 1
        bne r1, r2, loop
    .endregion
        st r3, 100(r0)
        halt
)";
    return src;
}

fb::isa::Program
assemble(const std::string &src)
{
    fb::isa::Program prog;
    std::string err;
    if (!fb::isa::Assembler::assemble(src, prog, err)) {
        std::fprintf(stderr, "assembly failed: %s\n", err.c_str());
        std::exit(1);
    }
    return prog;
}

void
runAndReport(const char *name, fb::isa::Program p0, fb::isa::Program p1)
{
    fb::sim::MachineConfig cfg;
    cfg.numProcessors = 2;
    cfg.memWords = 4096;
    fb::sim::Machine machine(cfg);
    machine.loadProgram(0, std::move(p0));
    machine.loadProgram(1, std::move(p1));
    auto r = machine.run();

    std::printf("%s\n", name);
    std::printf("  cycles=%llu syncEvents=%llu deadlock=%s safety=%s\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.syncEvents),
                r.deadlocked ? "YES" : "no",
                machine.checkSafetyProperty().empty() ? "OK" : "VIOLATED");
    for (int p = 0; p < 2; ++p) {
        const auto &ps = r.perProcessor[static_cast<std::size_t>(p)];
        std::printf("  cpu%d: instrs=%llu episodes=%llu stalled=%llu "
                    "waitCycles=%llu\n",
                    p, static_cast<unsigned long long>(ps.instructions),
                    static_cast<unsigned long long>(ps.barrierEpisodes),
                    static_cast<unsigned long long>(ps.stalledEpisodes),
                    static_cast<unsigned long long>(
                        ps.barrierWaitCycles));
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    auto p0 = assemble(streamSource(0));
    auto p1 = assemble(streamSource(1));

    std::printf("stream 0 disassembly (first lines):\n");
    std::string listing = p0.toString();
    std::printf("%s...\n\n", listing.substr(0, 600).c_str());

    runAndReport("region-bit encoding:", p0, p1);

    runAndReport("BRENTER/BREXIT marker encoding:",
                 p0.toMarkerEncoding(), p1.toMarkerEncoding());

    std::printf("region fraction of stream 0: %.0f%%\n",
                100.0 * p0.regionFraction());
    return 0;
}
