/**
 * @file
 * Quickstart: the fuzzy barrier as a split-phase software barrier.
 *
 * Four threads run a phased computation. Each phase:
 *
 *   1. write my slot of the current phase      (non-barrier region)
 *   2. arrive()  — "ready to synchronize"
 *   3. do private work                          (barrier region!)
 *   4. wait()    — must synchronize before the next phase
 *   5. read my neighbors' slots from the finished phase
 *
 * Step 3 is the paper's barrier region: useful work that overlaps the
 * synchronization delay instead of spinning.
 */

#include <cstdio>
#include <thread>
#include <vector>

#include "core/fuzzy_barrier.hh"

namespace
{

constexpr int kThreads = 4;
constexpr int kPhases = 8;

} // namespace

int
main()
{
    fb::sw::DisseminationBarrier barrier(kThreads);

    // shared[phase][thread] — each cell written by exactly one thread.
    std::vector<std::vector<long>> shared(
        kPhases, std::vector<long>(kThreads, 0));
    std::vector<long> private_work_done(kThreads, 0);

    auto worker = [&](int tid) {
        long carried = tid;
        for (int phase = 0; phase < kPhases; ++phase) {
            // Non-barrier region: publish a value others will read.
            shared[phase][tid] = carried;

            barrier.arrive(tid);

            // Barrier region: private work that no one else depends
            // on — it executes while we wait for slower threads.
            long local = 0;
            for (int k = 0; k < 1000 * (tid + 1); ++k)
                local += k % 7;
            private_work_done[tid] += local;

            barrier.wait(tid);

            // Past the barrier: every thread's phase value is ready.
            long left = shared[phase][(tid + kThreads - 1) % kThreads];
            long right = shared[phase][(tid + 1) % kThreads];
            carried = left + right + 1;
        }
    };

    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back(worker, t);
    for (auto &t : pool)
        t.join();

    std::printf("fuzzy barrier quickstart: %d threads, %d phases\n",
                kThreads, kPhases);
    std::printf("final phase values:");
    for (int t = 0; t < kThreads; ++t)
        std::printf(" %ld", shared[kPhases - 1][t]);
    std::printf("\n");
    std::printf("private work overlapped with synchronization:");
    for (int t = 0; t < kThreads; ++t)
        std::printf(" %ld", private_work_done[t]);
    std::printf("\n");
    std::printf("shared flag accesses: %llu\n",
                static_cast<unsigned long long>(barrier.sharedAccesses()));
    return 0;
}
