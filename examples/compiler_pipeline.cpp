/**
 * @file
 * The compilation process of paper section 4, end to end, on the
 * Poisson solver: naive intermediate code (Fig. 4(a)), marked
 * instructions, region construction, three-phase reordering
 * (Fig. 4(b)), and final machine code with region bits.
 */

#include <cstdio>
#include <iostream>

#include "core/fuzzy_barrier.hh"

int
main()
{
    fb::core::PoissonWorkload wl(2);

    std::cout << "=== Poisson solver body, naive order (Fig. 4(a)) ===\n";
    fb::ir::Block naive = wl.naiveBody();
    fb::ir::Block naive_regions = naive;
    auto naive_ra = fb::compiler::assignRegions(naive_regions);
    std::cout << naive_regions.toAnnotatedString();
    std::cout << "\nnon-barrier region: " << naive_ra.nonBarrierSize()
              << " of " << naive.size() << " instructions\n";

    std::cout << "\n=== dependence DAG ===\n";
    fb::compiler::DependenceDag dag(naive);
    std::cout << dag.edges().size() << " dependence edges over "
              << dag.size() << " instructions\n";

    std::cout << "\n=== cross-processor dependence analysis ===\n";
    auto analysis =
        fb::compiler::analyzeCrossDeps(naive, {"k"}, {"i", "j"});
    for (const auto &d : analysis.deps) {
        std::cout << "  store@" << d.storeIdx << " -> load@" << d.loadIdx
                  << " on " << d.array << ": "
                  << fb::compiler::depClassName(d.cls)
                  << " (seq dist " << d.seqDistance << ", proc dist "
                  << d.procDistance << ")\n";
    }
    std::cout << "  barriers required: loop-carried="
              << (analysis.needsLoopCarriedBarrier() ? "yes" : "no")
              << " lexically-forward="
              << (analysis.needsLexForwardBarrier() ? "yes" : "no")
              << "\n";
    std::cout << "  marked instructions derived from the analysis: "
              << analysis.crossInstructions().size() << "\n";

    std::cout << "\n=== after three-phase reordering (Fig. 4(b)) ===\n";
    auto reordered = fb::compiler::threePhaseReorder(naive);
    std::cout << reordered.block.toAnnotatedString();
    std::cout << "\nphase 1 (moved to leading barrier region): "
              << reordered.phase1 << " instructions\n";
    std::cout << "phase 2 (non-barrier region): " << reordered.phase2
              << " instructions\n";
    std::cout << "phase 3 (trailing barrier region): " << reordered.phase3
              << " instructions\n";
    std::cout << "non-barrier region shrank from "
              << naive_ra.nonBarrierSize() << " to "
              << reordered.regions.nonBarrierSize() << " instructions\n";

    std::cout << "\n=== generated machine code (processor (1,1)) ===\n";
    fb::compiler::CodegenOptions opts;
    opts.baseAddresses = {{"P", wl.baseAddr}};
    opts.tag = 1;
    opts.mask = 0b1111;
    auto spec = wl.loopSpec(1, 1, 10, reordered.block);
    auto prog = fb::compiler::compileLoop(spec, opts);
    std::cout << prog.toString();
    std::printf("\n%zu machine instructions, %.0f%% in barrier regions\n",
                prog.size(), 100.0 * prog.regionFraction());

    auto invalid = prog.checkRegionBranches();
    std::printf("region-branch validity check: %s\n",
                invalid ? invalid->c_str() : "OK");
    return 0;
}
