/**
 * @file
 * Static and run-time loop scheduling (paper sections 7.3 and 7.4):
 * prints the Fig. 11 rotating static schedule and the Fig. 12
 * multi-version roles under guided self-scheduling.
 */

#include <cstdio>

#include "core/fuzzy_barrier.hh"

int
main()
{
    using namespace fb::sched;
    using fb::compiler::iterationRoleName;
    using fb::compiler::roleFor;

    // ---- Fig. 11: 4 iterations on 3 processors ----
    std::printf("Fig. 11 — static scheduling, 4 iterations on 3 "
                "processors, extra iteration rotating:\n");
    for (int outer = 0; outer < 3; ++outer) {
        auto a = rotatingSchedule(4, 3, outer);
        std::printf("  outer %d:", outer);
        for (int p = 0; p < 3; ++p) {
            std::printf("  P%d={", p);
            for (std::size_t k = 0; k < a[static_cast<std::size_t>(p)]
                                            .size();
                 ++k)
                std::printf("%s%d", k ? "," : "",
                            a[static_cast<std::size_t>(p)][k]);
            std::printf("}");
        }
        std::printf("\n");
    }
    std::printf("  over 3 outer iterations every processor runs 4 "
                "iterations: balanced.\n\n");

    // ---- Fig. 12: run-time scheduling with multiple versions ----
    std::printf("Fig. 12 — guided self-scheduling of 20 iterations on 4 "
                "processors,\nwith the multi-version role of each "
                "iteration:\n");
    auto gss = guidedSelfSchedule(20, 4);
    for (int p = 0; p < 4; ++p) {
        const auto &mine = gss[static_cast<std::size_t>(p)];
        std::printf("  P%d:", p);
        for (std::size_t k = 0; k < mine.size(); ++k) {
            auto role = roleFor(k == 0, k + 1 == mine.size());
            std::printf(" %d(%s)", mine[k], iterationRoleName(role));
        }
        std::printf("\n");
    }
    std::printf("\n  'first' iterations start with a barrier region, "
                "'last' end with one,\n  'middle' carry no barrier "
                "code (compiled as separate loop versions).\n\n");

    // ---- Chunk sizes under GSS vs fixed chunks ----
    std::printf("load balance (max-min iterations per processor):\n");
    for (int iters : {16, 17, 100}) {
        auto block = blockSchedule(iters, 4);
        auto chunk = chunkSelfSchedule(iters, 4, 2);
        auto guided = guidedSelfSchedule(iters, 4);
        std::printf("  %3d iters: block=%d chunk2=%d guided=%d\n", iters,
                    maxLoad(block) - minLoad(block),
                    maxLoad(chunk) - minLoad(chunk),
                    maxLoad(guided) - minLoad(guided));
    }
    return 0;
}
