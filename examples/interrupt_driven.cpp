/**
 * @file
 * The section-9 extensions in action: two processors run a fuzzy-
 * barrier loop whose region work lives in a *procedure* (region
 * status inherited through CALL/RET), while a periodic timer
 * interrupt fires — including while a processor is stalled at the
 * barrier, where the ISR gives it useful work to do during the wait.
 */

#include <cstdio>
#include <sstream>
#include <string>

#include "core/fuzzy_barrier.hh"

namespace
{

std::string
streamSource()
{
    // Work imbalance comes from r5 (set per processor): the fast
    // processor stalls at the barrier and services interrupts there.
    std::ostringstream oss;
    oss << R"(
        settag 1
        setmask 3
        li r1, 0
        li r2, 6
    loop:
        li r6, 0
    work:
        addi r3, r3, 1
        addi r6, r6, 1
        bne r6, r5, work
    .region 1
        call r27, region_helper     ; inherited region status
        addi r1, r1, 1
        bne r1, r2, loop
    .endregion
        st r3, 100(r0)
        halt

    region_helper:                  ; plain code, runs as region work
        addi r4, r4, 1
        addi r4, r4, 1
        addi r4, r4, 1
        addi r4, r4, 1
        ret r27

    isr:                            ; timer interrupt service routine
        li r10, 1
        faa r9, 200(r0), r10        ; count interrupts (atomically)
        iret
    )";
    return oss.str();
}

} // namespace

int
main()
{
    auto src = streamSource();
    fb::isa::Program prog;
    std::string err;
    if (!fb::isa::Assembler::assemble(src, prog, err)) {
        std::fprintf(stderr, "assembly failed: %s\n", err.c_str());
        return 1;
    }

    fb::sim::MachineConfig cfg;
    cfg.numProcessors = 2;
    cfg.memWords = 4096;
    cfg.interruptPeriod = 35;
    cfg.isrEntry =
        static_cast<std::int64_t>(prog.labelIndex("isr").value());
    cfg.traceBarrierStates = true;

    fb::sim::Machine machine(cfg);
    machine.loadProgram(0, prog);
    machine.loadProgram(1, prog);
    machine.processor(0).setReg(5, 3);    // fast stream
    machine.processor(1).setReg(5, 60);   // slow stream

    auto r = machine.run();

    std::printf("interrupts + procedure calls inside barrier regions\n");
    std::printf("cycles=%llu syncEvents=%llu deadlock=%s safety=%s\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.syncEvents),
                r.deadlocked ? "YES" : "no",
                machine.checkSafetyProperty().empty() ? "OK"
                                                      : "VIOLATED");
    for (int p = 0; p < 2; ++p) {
        const auto &ps = r.perProcessor[static_cast<std::size_t>(p)];
        std::printf("cpu%d: stalledEpisodes=%llu waitCycles=%llu "
                    "interrupts=%llu\n",
                    p,
                    static_cast<unsigned long long>(ps.stalledEpisodes),
                    static_cast<unsigned long long>(ps.barrierWaitCycles),
                    static_cast<unsigned long long>(ps.interruptsTaken));
    }
    std::printf("ISR ticks recorded in memory: %lld\n",
                static_cast<long long>(machine.memory().peek(200)));
    std::printf("\n%s", machine.trace()->render(90).c_str());
    return 0;
}
