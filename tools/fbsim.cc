/**
 * @file
 * fbsim — command-line driver for the simulated fuzzy-barrier
 * multiprocessor.
 *
 * Assembles one program per processor (or replicates one program with
 * --procs), runs the machine, and reports synchronization statistics,
 * optionally with the barrier-state timeline.
 *
 * Usage:
 *   fbsim [options] prog0.fbasm [prog1.fbasm ...]
 *
 * Options:
 *   --procs N            replicate a single program on N processors
 *   --jitter MEAN        per-instruction drift (cycles, default 0)
 *   --seed S             PRNG seed (default 1)
 *   --pipeline D         in-order pipeline depth (default 1)
 *   --stall hw           hardware stall model (default)
 *   --stall sw:SAVE:REST software stall: context save/restore cycles
 *   --bus shared|banked  interconnect contention model
 *   --topology SPEC      synchronization network shape: flat (default),
 *                        tree:ARITY[:LVL] or cluster:SIZE[:LVL] where
 *                        LVL is the per-level propagation latency
 *                        (default 1). Hierarchical shapes only add
 *                        delivery latency; results stay equivalent
 *   --interrupt P:LABEL  timer interrupt every P cycles, ISR at LABEL
 *   --marker             convert programs to BRENTER/BREXIT encoding
 *   --trace [WIDTH]      print the barrier timeline (default width 100)
 *   --dump ADDR:COUNT    dump memory words after the run
 *   --reg P:R:VALUE      preset register R of processor P
 *   --fault SPEC         inject faults: comma-separated kind@cycle:proc[:arg]
 *                        (kinds: droppulse, fliptag, flipmask, kill,
 *                        freeze, irqstorm); repeatable
 *   --fault-seed S       additionally inject a random seeded fault plan
 *   --watchdog T[:A]     barrier watchdog: timeout cycles and re-arm
 *                        attempts (default attempts 3)
 *   --max-cycles N       runaway guard (default 200M)
 *   --no-fast-forward    force the legacy per-cycle loop instead of
 *                        the event-driven fast-forward core (results
 *                        are identical; useful for timing comparisons
 *                        and as a differential cross-check)
 *   --no-predecode       force the legacy instruction-by-instruction
 *                        interpreter instead of the pre-decoded
 *                        threaded-code backend (results are
 *                        identical). Composes with --no-fast-forward:
 *                        all four combinations are valid and
 *                        byte-identical; predecode's macro-step only
 *                        engages when fast-forward is also on
 *   --shards N[:QUANTUM] advance the machine across N host threads
 *                        with QUANTUM cycles of permitted skew
 *                        (default 1024); results are byte-identical
 *                        to --shards 1 at any N. Falls back to the
 *                        sequential core under --trace or
 *                        --no-fast-forward
 *   --checkpoint DIR:EVERY[:KEEP]
 *                        durably snapshot the machine into DIR every
 *                        EVERY cycles, retaining the newest KEEP
 *                        generations (default 3); incompatible with
 *                        --trace. With --shards, EVERY must be a
 *                        multiple of the shard quantum (anything else
 *                        would silently clamp every skew window).
 *                        Captures are dirty-page deltas persisted by a
 *                        background writer thread; a full snapshot
 *                        re-bases the chain periodically
 *   --checkpoint-rebase N
 *                        take a full (re-basing) snapshot every Nth
 *                        capture (default 8; 1 = full snapshots only)
 *   --checkpoint-sync    persist every capture synchronously as a
 *                        full snapshot (the pre-delta behaviour)
 *   --io-fault SPEC      inject I/O faults into the checkpoint store:
 *                        comma-separated failwrite:N / shortwrite:N /
 *                        failfsync:N (1-based Nth call), plus an
 *                        optional 'persistent' element to keep
 *                        failing from the Nth call on
 *   --restore DIR        resume from the newest restorable snapshot
 *                        chain in DIR (walking back past torn/corrupt
 *                        generations and broken chains); requires the
 *                        same programs and flags the snapshot was
 *                        taken with
 *   --check              only run the static region-branch check
 *
 * Exit codes:
 *   0  run completed cleanly
 *   1  input error (assembler failure, bad ISR label, failed restore)
 *   2  usage error (bad flags or malformed --fault spec)
 *   3  the run ended in barrier deadlock
 *   4  the run hit the --max-cycles guard
 *   5  the fault-safety (membership) oracle was violated
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "barrier/topology.hh"
#include "core/fuzzy_barrier.hh"
#include "exec/sharded_machine.hh"
#include "fault/plan.hh"
#include "fault/watchdog.hh"
#include "snapshot/format.hh"
#include "snapshot/store.hh"
#include "snapshot/writer.hh"
#include "support/strutil.hh"

namespace
{

using namespace fb;

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::fprintf(stderr, "fbsim: %s\n", msg);
    std::fprintf(stderr,
                 "usage: fbsim [options] prog0.fbasm [prog1.fbasm ...]\n"
                 "       (see the header of tools/fbsim.cc for the "
                 "option list)\n");
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        usage(("cannot open " + path).c_str());
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

struct Options
{
    int procs = 0;  // 0 = one per program file
    double jitter = 0.0;
    std::uint64_t seed = 1;
    int pipeline = 1;
    sim::StallModel stall;
    sim::BusKind bus = sim::BusKind::Shared;
    barrier::Topology topology;
    std::uint64_t interruptPeriod = 0;
    std::string isrLabel;
    bool marker = false;
    bool trace = false;
    std::size_t traceWidth = 100;
    bool checkOnly = false;
    bool fastForward = true;
    bool predecode = true;
    int shards = 1;
    std::uint64_t shardQuantum = 1024;
    std::uint64_t maxCycles = 200'000'000;
    std::string faultSpec;
    std::uint64_t faultSeed = 0;
    fb::fault::WatchdogConfig watchdog;
    std::string checkpointDir;
    std::uint64_t checkpointEvery = 0;
    std::size_t checkpointKeep = 3;
    std::uint32_t checkpointRebase = 8;
    bool checkpointSync = false;
    bool ioFault = false;
    fb::snapshot::IoFaultShim ioShim;
    std::string restoreDir;
    std::vector<std::string> files;
    struct RegPreset
    {
        int proc;
        int reg;
        std::int64_t value;
    };
    std::vector<RegPreset> regs;
    struct Dump
    {
        std::size_t addr;
        std::size_t count;
    };
    std::vector<Dump> dumps;
};

std::int64_t
parseIntOrDie(const std::string &s, const char *what)
{
    std::int64_t v;
    if (!parseInt(s, v))
        usage((std::string("bad ") + what + ": " + s).c_str());
    return v;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage(("missing value after " + arg).c_str());
            return argv[i];
        };
        if (arg == "--procs") {
            opt.procs = static_cast<int>(parseIntOrDie(next(), "--procs"));
        } else if (arg == "--jitter") {
            opt.jitter = std::atof(next().c_str());
        } else if (arg == "--seed") {
            opt.seed =
                static_cast<std::uint64_t>(parseIntOrDie(next(), "--seed"));
        } else if (arg == "--pipeline") {
            opt.pipeline =
                static_cast<int>(parseIntOrDie(next(), "--pipeline"));
        } else if (arg == "--stall") {
            std::string v = next();
            if (v == "hw") {
                opt.stall = sim::StallModel::hardware();
            } else if (startsWith(v, "sw:")) {
                auto parts = split(v.substr(3), ':');
                if (parts.size() != 2)
                    usage("--stall sw:SAVE:RESTORE");
                opt.stall = sim::StallModel::software(
                    static_cast<std::uint32_t>(
                        parseIntOrDie(parts[0], "save")),
                    static_cast<std::uint32_t>(
                        parseIntOrDie(parts[1], "restore")));
            } else {
                usage("--stall expects 'hw' or 'sw:SAVE:RESTORE'");
            }
        } else if (arg == "--bus") {
            std::string v = next();
            if (v == "shared")
                opt.bus = sim::BusKind::Shared;
            else if (v == "banked")
                opt.bus = sim::BusKind::Banked;
            else
                usage("--bus expects 'shared' or 'banked'");
        } else if (arg == "--topology") {
            std::string v = next();
            if (!barrier::Topology::parse(v, opt.topology))
                usage("--topology expects flat, tree:ARITY[:LVL] or "
                      "cluster:SIZE[:LVL]");
        } else if (arg == "--interrupt") {
            auto parts = split(next(), ':');
            if (parts.size() != 2)
                usage("--interrupt PERIOD:LABEL");
            opt.interruptPeriod = static_cast<std::uint64_t>(
                parseIntOrDie(parts[0], "interrupt period"));
            opt.isrLabel = parts[1];
        } else if (arg == "--marker") {
            opt.marker = true;
        } else if (arg == "--trace") {
            opt.trace = true;
            if (i + 1 < argc) {
                std::int64_t w;
                if (parseInt(argv[i + 1], w) && w > 0) {
                    opt.traceWidth = static_cast<std::size_t>(w);
                    ++i;
                }
            }
        } else if (arg == "--dump") {
            auto parts = split(next(), ':');
            if (parts.size() != 2)
                usage("--dump ADDR:COUNT");
            opt.dumps.push_back(
                {static_cast<std::size_t>(
                     parseIntOrDie(parts[0], "dump addr")),
                 static_cast<std::size_t>(
                     parseIntOrDie(parts[1], "dump count"))});
        } else if (arg == "--reg") {
            auto parts = split(next(), ':');
            if (parts.size() != 3)
                usage("--reg PROC:REG:VALUE");
            opt.regs.push_back(
                {static_cast<int>(parseIntOrDie(parts[0], "proc")),
                 static_cast<int>(parseIntOrDie(parts[1], "reg")),
                 parseIntOrDie(parts[2], "value")});
        } else if (arg == "--fault") {
            std::string spec = next();
            if (!opt.faultSpec.empty())
                opt.faultSpec += ",";
            opt.faultSpec += spec;
        } else if (arg == "--fault-seed") {
            opt.faultSeed = static_cast<std::uint64_t>(
                parseIntOrDie(next(), "--fault-seed"));
        } else if (arg == "--watchdog") {
            auto parts = split(next(), ':');
            if (parts.empty() || parts.size() > 2)
                usage("--watchdog TIMEOUT[:ATTEMPTS]");
            opt.watchdog.enabled = true;
            opt.watchdog.timeoutCycles = static_cast<std::uint64_t>(
                parseIntOrDie(parts[0], "watchdog timeout"));
            if (parts.size() == 2)
                opt.watchdog.maxAttempts = static_cast<int>(
                    parseIntOrDie(parts[1], "watchdog attempts"));
            if (opt.watchdog.timeoutCycles == 0 ||
                opt.watchdog.maxAttempts < 1)
                usage("--watchdog needs timeout >= 1 and attempts >= 1");
        } else if (arg == "--max-cycles") {
            opt.maxCycles = static_cast<std::uint64_t>(
                parseIntOrDie(next(), "--max-cycles"));
        } else if (arg == "--no-fast-forward") {
            opt.fastForward = false;
        } else if (arg == "--no-predecode") {
            opt.predecode = false;
        } else if (arg == "--shards") {
            auto parts = split(next(), ':');
            if (parts.empty() || parts.size() > 2)
                usage("--shards N[:QUANTUM]");
            opt.shards =
                static_cast<int>(parseIntOrDie(parts[0], "--shards"));
            if (parts.size() == 2)
                opt.shardQuantum = static_cast<std::uint64_t>(
                    parseIntOrDie(parts[1], "shard quantum"));
            if (opt.shards < 1 || opt.shardQuantum == 0)
                usage("--shards needs N >= 1 and QUANTUM >= 1");
        } else if (arg == "--checkpoint") {
            auto parts = split(next(), ':');
            if (parts.size() < 2 || parts.size() > 3)
                usage("--checkpoint DIR:EVERY[:KEEP]");
            opt.checkpointDir = parts[0];
            opt.checkpointEvery = static_cast<std::uint64_t>(
                parseIntOrDie(parts[1], "checkpoint period"));
            if (parts.size() == 3)
                opt.checkpointKeep = static_cast<std::size_t>(
                    parseIntOrDie(parts[2], "checkpoint keep"));
            if (opt.checkpointDir.empty() || opt.checkpointEvery == 0 ||
                opt.checkpointKeep == 0)
                usage("--checkpoint needs a directory, period >= 1 and "
                      "keep >= 1");
        } else if (arg == "--checkpoint-rebase") {
            opt.checkpointRebase = static_cast<std::uint32_t>(
                parseIntOrDie(next(), "--checkpoint-rebase"));
            if (opt.checkpointRebase == 0)
                usage("--checkpoint-rebase needs N >= 1");
        } else if (arg == "--checkpoint-sync") {
            opt.checkpointSync = true;
        } else if (arg == "--io-fault") {
            opt.ioFault = true;
            for (const auto &item : split(next(), ',')) {
                if (item == "persistent") {
                    opt.ioShim.persistent = true;
                    continue;
                }
                auto parts = split(item, ':');
                if (parts.size() != 2)
                    usage("--io-fault expects failwrite:N, shortwrite:N,"
                          " failfsync:N or persistent");
                const std::uint64_t n = static_cast<std::uint64_t>(
                    parseIntOrDie(parts[1], "--io-fault ordinal"));
                if (parts[0] == "failwrite")
                    opt.ioShim.failNthWrite = n;
                else if (parts[0] == "shortwrite")
                    opt.ioShim.shortNthWrite = n;
                else if (parts[0] == "failfsync")
                    opt.ioShim.failNthFsync = n;
                else
                    usage("--io-fault expects failwrite:N, shortwrite:N,"
                          " failfsync:N or persistent");
            }
        } else if (arg == "--restore") {
            opt.restoreDir = next();
        } else if (arg == "--check") {
            opt.checkOnly = true;
        } else if (startsWith(arg, "--")) {
            usage(("unknown option " + arg).c_str());
        } else {
            opt.files.push_back(arg);
        }
    }
    if (opt.files.empty())
        usage("no program files given");
    if (opt.procs != 0 && opt.files.size() != 1)
        usage("--procs requires exactly one program file");
    if (!opt.checkpointDir.empty() && opt.trace)
        usage("--checkpoint is incompatible with --trace (the timeline "
              "is not serialized)");
    if (!opt.checkpointDir.empty() && opt.shards > 1 &&
        opt.checkpointEvery % opt.shardQuantum != 0)
        usage(("--checkpoint EVERY must be a multiple of the shard "
               "quantum (" +
               std::to_string(opt.shardQuantum) +
               "): anything else silently clamps every skew window to "
               "the checkpoint cadence")
                  .c_str());
    if (opt.ioFault && opt.checkpointDir.empty())
        usage("--io-fault targets the checkpoint store; it requires "
              "--checkpoint");
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    // Assemble.
    std::vector<isa::Program> programs;
    for (const auto &file : opt.files) {
        isa::Program prog;
        std::string err;
        if (!isa::Assembler::assemble(readFile(file), prog, err)) {
            std::fprintf(stderr, "fbsim: %s: %s\n", file.c_str(),
                         err.c_str());
            return 1;
        }
        if (auto violation = prog.checkRegionBranches()) {
            std::fprintf(stderr, "fbsim: %s: %s\n", file.c_str(),
                         violation->c_str());
            return 1;
        }
        if (opt.marker)
            prog = prog.toMarkerEncoding();
        programs.push_back(std::move(prog));
    }
    if (opt.checkOnly) {
        std::printf("all programs pass the region-branch check\n");
        return 0;
    }

    const int procs = opt.procs != 0 ? opt.procs
                                     : static_cast<int>(programs.size());

    fault::FaultPlan plan;
    if (!opt.faultSpec.empty()) {
        std::string err;
        if (!fault::FaultPlan::parse(opt.faultSpec, procs, plan, err)) {
            std::fprintf(stderr, "fbsim: --fault: %s\n", err.c_str());
            return 2;
        }
    }
    if (opt.faultSeed != 0) {
        auto random = fault::randomFaultPlan(
            opt.faultSeed, procs, {procs});
        plan.events.insert(plan.events.end(), random.events.begin(),
                           random.events.end());
        plan.normalize();
    }
    for (const auto &ev : plan.events) {
        if (ev.proc < 0 || ev.proc >= procs) {
            std::fprintf(stderr,
                         "fbsim: fault targets cpu%d of %d\n", ev.proc,
                         procs);
            return 2;
        }
    }

    sim::MachineConfig cfg;
    cfg.numProcessors = procs;
    cfg.jitterMean = opt.jitter;
    cfg.seed = opt.seed;
    cfg.pipelineDepth = opt.pipeline;
    cfg.stall = opt.stall;
    cfg.busKind = opt.bus;
    cfg.topology = opt.topology;
    cfg.maxCycles = opt.maxCycles;
    cfg.fastForward = opt.fastForward;
    cfg.predecode = opt.predecode;
    cfg.shardCount = opt.shards;
    cfg.shardQuantum = opt.shards > 1 ? opt.shardQuantum : 0;
    cfg.traceBarrierStates = opt.trace;
    if (opt.interruptPeriod > 0) {
        auto entry = programs[0].labelIndex(opt.isrLabel);
        if (!entry) {
            std::fprintf(stderr, "fbsim: ISR label '%s' not found\n",
                         opt.isrLabel.c_str());
            return 1;
        }
        cfg.interruptPeriod = opt.interruptPeriod;
        cfg.isrEntry = static_cast<std::int64_t>(*entry);
    }
    if (!plan.empty())
        cfg.faultPlan = &plan;
    cfg.watchdog = opt.watchdog;
    cfg.checkpointEveryCycles = opt.checkpointEvery;
    cfg.checkpointRebaseEvery = opt.checkpointRebase;

    // Machine construction is a lambda so the restore walk-back can
    // rebuild a pristine machine after a failed restoreState (which
    // may have partially overwritten state before reporting failure).
    auto buildMachine = [&]() {
        auto m = std::make_unique<sim::Machine>(cfg);
        for (int p = 0; p < procs; ++p)
            m->loadProgram(
                p, programs[static_cast<std::size_t>(
                       opt.procs != 0 ? 0 : p)]);
        for (const auto &preset : opt.regs) {
            if (preset.proc < 0 || preset.proc >= procs)
                usage("--reg processor index out of range");
            m->processor(preset.proc).setReg(preset.reg, preset.value);
        }
        return m;
    };
    auto machinePtr = buildMachine();

    if (!opt.restoreDir.empty()) {
        snapshot::SnapshotStore restoreStore(opt.restoreDir);
        bool restored = false;

        // Preferred path: the newest generation whose whole delta
        // chain validates, replayed base-first.
        {
            std::vector<std::vector<std::uint8_t>> chain;
            std::uint64_t generation = 0;
            std::vector<std::string> diags;
            std::string err;
            if (restoreStore.loadLatestChain(chain, generation, diags)) {
                for (const auto &d : diags)
                    std::fprintf(stderr, "fbsim: skipping %s\n",
                                 d.c_str());
                if (machinePtr->restoreChainState(chain, err)) {
                    snapshot::SnapshotHeader head;
                    std::string perr;
                    std::uint64_t cycle = 0;
                    if (snapshot::peekHeader(chain.back(), head, perr))
                        cycle = head.cycle;
                    std::fprintf(
                        stderr,
                        "fbsim: restored generation %llu (cycle %llu, "
                        "chain of %zu) from %s\n",
                        static_cast<unsigned long long>(generation),
                        static_cast<unsigned long long>(cycle),
                        chain.size(),
                        restoreStore.pathFor(generation).c_str());
                    restored = true;
                } else {
                    std::fprintf(stderr,
                                 "fbsim: skipping generation %llu: "
                                 "chain restore failed: %s\n",
                                 static_cast<unsigned long long>(
                                     generation),
                                 err.c_str());
                    machinePtr = buildMachine();
                }
            } else {
                for (const auto &d : diags)
                    std::fprintf(stderr, "fbsim: skipping %s\n",
                                 d.c_str());
            }
        }

        // Fallback: per-file walk-back over full snapshots, for
        // machine-level restore failures the store cannot see (a
        // newer chain taken under incompatible flags, say, with an
        // older intact full snapshot behind it).
        auto entries = restoreStore.list();
        for (auto it = entries.rbegin();
             !restored && it != entries.rend(); ++it) {
            std::vector<std::uint8_t> bytes;
            std::string err;
            if (!snapshot::readFile(it->second, bytes, err)) {
                std::fprintf(stderr, "fbsim: skipping %s: %s\n",
                             it->second.c_str(), err.c_str());
                continue;
            }
            snapshot::SnapshotHeader header;
            if (!snapshot::peekHeader(bytes, header, err)) {
                std::fprintf(stderr, "fbsim: skipping %s: %s\n",
                             it->second.c_str(), err.c_str());
                continue;
            }
            if (header.generation != it->first) {
                std::fprintf(stderr,
                             "fbsim: skipping %s: embedded generation "
                             "%llu does not match filename\n",
                             it->second.c_str(),
                             static_cast<unsigned long long>(
                                 header.generation));
                continue;
            }
            if (header.isDelta())
                continue; // chains were already tried above
            if (!machinePtr->restoreState(bytes, err)) {
                std::fprintf(stderr, "fbsim: skipping %s: %s\n",
                             it->second.c_str(), err.c_str());
                machinePtr = buildMachine();
                continue;
            }
            std::fprintf(stderr,
                         "fbsim: restored generation %llu (cycle %llu) "
                         "from %s\n",
                         static_cast<unsigned long long>(
                             header.generation),
                         static_cast<unsigned long long>(header.cycle),
                         it->second.c_str());
            restored = true;
            break;
        }
        if (!restored) {
            std::fprintf(stderr,
                         "fbsim: no usable snapshot found in %s\n",
                         opt.restoreDir.c_str());
            return 1;
        }
    }

    std::unique_ptr<snapshot::SnapshotStore> checkpointStore;
    std::unique_ptr<snapshot::AsyncSnapshotWriter> checkpointWriter;
    if (!opt.checkpointDir.empty()) {
        checkpointStore = std::make_unique<snapshot::SnapshotStore>(
            opt.checkpointDir, opt.checkpointKeep);
        if (opt.ioFault)
            checkpointStore->setIoFaultShim(&opt.ioShim);
        if (!opt.checkpointSync) {
            checkpointWriter =
                std::make_unique<snapshot::AsyncSnapshotWriter>(
                    *checkpointStore);
            machinePtr->setStagedCheckpointSink(
                [&writer = *checkpointWriter](
                    snapshot::SnapshotHeader header,
                    std::vector<snapshot::Section> sections) {
                    auto verdict = writer.submit(std::move(header),
                                                 std::move(sections));
                    sim::Machine::CheckpointAck ack;
                    ack.keep = verdict.keep;
                    ack.forceFull = verdict.forceFull;
                    ack.deltasOk = verdict.deltasOk;
                    ack.degradation = std::move(verdict.degradation);
                    return ack;
                });
        } else {
            machinePtr->setCheckpointSink(
                [&checkpointStore](
                    std::uint64_t cycle,
                    const std::vector<std::uint8_t> &bytes) {
                    // The generation encoded by Machine::saveState is
                    // cycle / checkpointEveryCycles; recover it from
                    // the snapshot header so store filenames always
                    // agree with the embedded generation.
                    snapshot::SnapshotHeader header;
                    std::string err;
                    if (!snapshot::peekHeader(bytes, header, err) ||
                        !checkpointStore->save(header.generation, bytes,
                                               err)) {
                        std::fprintf(
                            stderr,
                            "fbsim: checkpoint at cycle %llu "
                            "failed: %s (disabling checkpoints)\n",
                            static_cast<unsigned long long>(cycle),
                            err.c_str());
                        return false;
                    }
                    return true;
                });
        }
    }

    sim::Machine &machine = *machinePtr;
    exec::ShardedMachine shardedMachine(machine);
    if (opt.shards > 1 && shardedMachine.shards() != opt.shards)
        std::fprintf(stderr,
                     "fbsim: note: running on %d shard(s) instead of "
                     "the requested %d (clamped to the processor count "
                     "or sharding does not apply here)\n",
                     shardedMachine.shards(), opt.shards);
    auto result = shardedMachine.run();

    // The run is over but captures may still sit in the writer's
    // queue; block until the store is quiescent before reporting (and
    // before the process can exit and orphan a .tmp file).
    if (checkpointWriter)
        checkpointWriter->drain();

    std::printf("cycles:       %llu%s%s\n",
                static_cast<unsigned long long>(result.cycles),
                result.deadlocked ? "  [DEADLOCK]" : "",
                result.timedOut ? "  [TIMEOUT]" : "");
    if (result.deadlocked)
        std::printf("%s", result.deadlockInfo.c_str());
    std::printf("sync events:  %llu\n",
                static_cast<unsigned long long>(result.syncEvents));
    std::printf("mem accesses: %llu (hottest word %llu), bus queue "
                "delay %llu\n",
                static_cast<unsigned long long>(result.memAccesses),
                static_cast<unsigned long long>(result.hotSpotAccesses),
                static_cast<unsigned long long>(result.busQueueDelay));
    for (int p = 0; p < procs; ++p) {
        const auto &ps = result.perProcessor[static_cast<std::size_t>(p)];
        std::printf("cpu%-2d instrs=%-8llu episodes=%-5llu stalled=%-5llu"
                    " wait=%-7llu ctxsw=%-4llu irq=%llu\n",
                    p, static_cast<unsigned long long>(ps.instructions),
                    static_cast<unsigned long long>(ps.barrierEpisodes),
                    static_cast<unsigned long long>(ps.stalledEpisodes),
                    static_cast<unsigned long long>(ps.barrierWaitCycles),
                    static_cast<unsigned long long>(ps.contextSwitches),
                    static_cast<unsigned long long>(ps.interruptsTaken));
    }

    std::string safety = machine.checkSafetyProperty();
    std::printf("safety:       %s\n",
                safety.empty() ? "OK" : safety.c_str());

    if (!plan.empty()) {
        const auto &fs = result.faultStats;
        std::printf("faults:       plan=%s\n", plan.toSpec().c_str());
        std::printf("              pulse-drop cycles=%llu, bits "
                    "flipped=%llu (corrected %llu), kills=%llu, "
                    "freezes=%llu, forced irqs=%llu\n",
                    static_cast<unsigned long long>(fs.pulseDropCycles),
                    static_cast<unsigned long long>(fs.bitsFlipped),
                    static_cast<unsigned long long>(result.correctedFaults),
                    static_cast<unsigned long long>(fs.kills),
                    static_cast<unsigned long long>(fs.freezes),
                    static_cast<unsigned long long>(fs.forcedInterrupts));
        std::printf("membership:   %s\n",
                    result.membershipViolation.empty()
                        ? "OK"
                        : result.membershipViolation.c_str());
    }
    if (opt.watchdog.enabled) {
        const auto &ws = result.watchdogStats;
        std::printf("watchdog:     timeouts=%llu rearms=%llu "
                    "dead-declared=%llu\n",
                    static_cast<unsigned long long>(ws.timeouts),
                    static_cast<unsigned long long>(ws.rearms),
                    static_cast<unsigned long long>(ws.deadDeclared));
        for (const auto &rec : result.recoveries) {
            std::printf("recovery:     cpu%d declared dead at cycle %llu;"
                        " %zu survivor(s) shrank masks\n",
                        rec.deadProc,
                        static_cast<unsigned long long>(rec.cycle),
                        rec.survivors.size());
        }
    }

    if (checkpointWriter) {
        const auto ws = checkpointWriter->stats();
        std::printf("checkpoints:  full=%llu delta=%llu persisted=%llu "
                    "(async %llu, sync %llu) dropped=%llu retries=%llu "
                    "mode=%s\n",
                    static_cast<unsigned long long>(
                        result.checkpointsFull),
                    static_cast<unsigned long long>(
                        result.checkpointsDelta),
                    static_cast<unsigned long long>(ws.persisted),
                    static_cast<unsigned long long>(ws.asyncPersisted),
                    static_cast<unsigned long long>(ws.syncPersisted),
                    static_cast<unsigned long long>(ws.dropped),
                    static_cast<unsigned long long>(ws.retries),
                    snapshot::writerModeName(ws.mode));
        if (!result.checkpointDegradation.empty())
            std::printf("              degraded: %s\n",
                        result.checkpointDegradation.c_str());
    }
    if (opt.ioFault)
        std::printf("io-faults:    writes=%llu fsyncs=%llu "
                    "injected=%llu\n",
                    static_cast<unsigned long long>(
                        opt.ioShim.writeCalls),
                    static_cast<unsigned long long>(
                        opt.ioShim.fsyncCalls),
                    static_cast<unsigned long long>(opt.ioShim.injected));

    if (opt.trace && machine.trace())
        std::printf("\n%s", machine.trace()->render(opt.traceWidth).c_str());

    for (const auto &dump : opt.dumps) {
        std::printf("\nmemory[%zu..%zu]:", dump.addr,
                    dump.addr + dump.count - 1);
        for (std::size_t k = 0; k < dump.count; ++k)
            std::printf(" %lld",
                        static_cast<long long>(
                            machine.memory().peek(dump.addr + k)));
        std::printf("\n");
    }
    if (result.deadlocked)
        return 3;
    if (result.timedOut)
        return 4;
    if (!result.membershipViolation.empty())
        return 5;
    return 0;
}
