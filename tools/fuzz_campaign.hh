/**
 * @file
 * Shared campaign plumbing for the fuzz front-ends (fbfuzz, fbcampd).
 *
 * Both tools drive the same differential-fuzz workload — fbfuzz
 * in-process (sequential or --jobs threads, plus the --workers
 * service front-end), fbcampd as the standalone campaign-service
 * daemon. Everything that defines what a campaign *is* lives here so
 * the two stay byte-compatible by construction:
 *
 *   - CampaignConfig: the parameters that select the scenario matrix
 *   - cursorHeader(): the journal header binding a --cursor file to
 *     its campaign; identical text means an fbcampd journal resumes
 *     under fbfuzz and vice versa
 *   - runScenario(): one seed through the differential matrix
 *   - describeFailure() / quarantineArtifact(): the printed blocks,
 *     which CI diffs across tools and worker counts
 */

#ifndef FB_TOOLS_FUZZ_CAMPAIGN_HH
#define FB_TOOLS_FUZZ_CAMPAIGN_HH

#include <cstdint>
#include <sstream>
#include <string>

#include "barrier/topology.hh"
#include "exec/campaign.hh"
#include "fault/plan.hh"
#include "verify/differ.hh"
#include "verify/generator.hh"

namespace fbtool
{

/** Parameters that define the campaign's scenario matrix. */
struct CampaignConfig
{
    std::uint64_t seed = 1;
    int runs = 100;
    bool swref = true;
    bool faults = false;
    std::uint64_t faultSeed = 0;  ///< 0 = derive from the spec seed
    std::uint64_t maxCycles = 5'000'000;
    int shards = 0;  ///< 0 = no sharded executor in the matrix
    std::uint64_t shardQuantum = 1024;
    bool predecode = true;  ///< threaded-code backend for every executor
    /** Baseline sync-network shape for every executor (--topology). */
    fb::barrier::Topology topology;
};

/**
 * Attach a seeded random fault schedule to @p spec. The plan seed is
 * derived per-scenario so every fuzz run sees a different schedule,
 * yet (seed, fault-seed) reproduces the exact same plan; the watchdog
 * is always enabled because the plan may contain a fatal fault.
 */
inline void
applyFaults(fb::verify::ProgramSpec &spec, const CampaignConfig &cfg,
            std::uint64_t spec_seed)
{
    if (!cfg.faults)
        return;
    const std::uint64_t fs =
        cfg.faultSeed != 0 ? cfg.faultSeed + spec_seed : spec_seed;
    spec.faults =
        fb::fault::randomFaultPlan(fs, spec.procs(), spec.groupSizes);
    spec.faultSeed = fs;
    spec.watchdog.enabled = true;
    spec.watchdog.timeoutCycles = 2000;
    spec.watchdog.maxAttempts = 3;
}

inline fb::verify::DiffOptions
diffOptions(const CampaignConfig &cfg)
{
    fb::verify::DiffOptions d;
    d.swBarrierReference = cfg.swref;
    d.maxCycles = cfg.maxCycles;
    d.shards = cfg.shards;
    d.shardQuantum = cfg.shardQuantum;
    d.predecode = cfg.predecode;
    d.topology = cfg.topology;
    return d;
}

/**
 * Journal header binding a --cursor file to its campaign parameters.
 * v2: compacted journals contain `prefix N` lines a v1 loader would
 * misread as a torn tail.
 */
inline std::string
cursorHeader(const CampaignConfig &cfg)
{
    std::ostringstream oss;
    oss << "fbfuzz-cursor v2 seed=" << cfg.seed << " runs=" << cfg.runs
        << " faults=" << (cfg.faults ? 1 : 0)
        << " fault-seed=" << cfg.faultSeed
        << " swref=" << (cfg.swref ? 1 : 0)
        << " max-cycles=" << cfg.maxCycles
        << " shards=" << cfg.shards << ":" << cfg.shardQuantum
        << " predecode=" << (cfg.predecode ? 1 : 0)
        << " topology=" << cfg.topology.toString();
    return oss.str();
}

/** Flag suffix for "reproduce with:" lines (leading space or empty). */
inline std::string
reproduceFlags(const CampaignConfig &cfg)
{
    std::ostringstream out;
    if (cfg.faults) {
        out << " --faults";
        if (cfg.faultSeed != 0)
            out << " --fault-seed " << cfg.faultSeed;
    }
    if (cfg.shards >= 2)
        out << " --shards " << cfg.shards << ":" << cfg.shardQuantum;
    if (!cfg.predecode)
        out << " --no-predecode";
    if (!cfg.topology.flat())
        out << " --topology " << cfg.topology.toString();
    return out.str();
}

/** FAIL block for one diverging seed (identical in every fuzz mode). */
inline std::string
describeFailure(std::uint64_t spec_seed, const fb::verify::Scenario &sc,
                const fb::verify::DiffReport &rep,
                const CampaignConfig &cfg)
{
    std::ostringstream out;
    out << "FAIL seed=" << spec_seed << " procs=" << sc.procs()
        << " groups=" << sc.groups() << " episodes=" << sc.episodes
        << " encoding=" << fb::verify::encodingName(sc.encoding);
    if (sc.hasFaults())
        out << " faults=" << sc.faults.toSpec();
    out << "\n  executor " << rep.variant << ": " << rep.failure << "\n";
    out << "reproduce with: fbfuzz --seed " << spec_seed << " --runs 1"
        << reproduceFlags(cfg) << "\n";
    return out.str();
}

/**
 * First-class artifact for a quarantined seed (one that repeatedly
 * killed its service worker); printed in seed order like a FAIL block.
 */
inline std::string
quarantineArtifact(const CampaignConfig &cfg, std::uint64_t spec_seed,
                   int kills)
{
    std::ostringstream out;
    out << "QUARANTINE seed=" << spec_seed << " kills=" << kills
        << ": scenario repeatedly killed its worker process and was "
           "excluded from the sweep\n"
        << "reproduce solo with: fbfuzz --seed " << spec_seed
        << " --runs 1" << reproduceFlags(cfg) << "\n";
    return out.str();
}

/**
 * Run one seed through the full differential matrix using the worker
 * context's pooled machines and interned programs. Empty result =
 * pass; failed result carries the printed FAIL block.
 */
inline fb::exec::ItemResult
runScenario(const CampaignConfig &cfg, std::uint64_t i,
            fb::exec::WorkerContext &ctx)
{
    fb::exec::ItemResult r;
    const std::uint64_t specSeed = cfg.seed + i;
    auto spec = fb::verify::randomSpec(specSeed);
    applyFaults(spec, cfg, specSeed);
    auto sc = fb::verify::render(spec);
    auto d = diffOptions(cfg);
    d.machinePool = &ctx.machines;
    d.programCache = &ctx.programs;
    auto rep = fb::verify::runDifferential(sc, d);
    if (!rep.ok) {
        r.failed = true;
        r.payload = describeFailure(specSeed, sc, rep, cfg);
    }
    return r;
}

} // namespace fbtool

#endif // FB_TOOLS_FUZZ_CAMPAIGN_HH
