/**
 * @file
 * fbcampd — standalone coordinator daemon for long-running
 * differential fuzz campaigns.
 *
 * Runs the same campaign as `fbfuzz --workers N` but packaged for
 * unattended operation: the coordinator process owns a crash-safe
 * cursor journal (required — a daemon you cannot resume is a daemon
 * you cannot kill), shards the seed range into leased chunks across
 * forked worker processes, and survives worker crashes, wedges, and
 * transport corruption by heartbeat timeout, exponential-backoff
 * respawn, and deterministic lease reassignment. A seed that
 * repeatedly kills its worker is quarantined and reported as a
 * first-class QUARANTINE artifact instead of wedging the campaign.
 *
 * SIGKILL the daemon at any point and rerun the same command line: it
 * resumes past the journal's contiguous completed prefix, re-runs
 * failing seeds to reproduce their reports, and the final
 * failing-seed set is identical to an uninterrupted run. Journals are
 * interchangeable with `fbfuzz --cursor` (same header, same format).
 *
 * Usage:
 *   fbcampd --cursor FILE [--seed S] [--runs N] [--workers N] ...
 *
 * Campaign options (exactly fbfuzz's): --seed --runs --no-swref
 *   --faults --fault-seed --max-cycles --shards N[:QUANTUM]
 *   --no-predecode
 * Service options: --workers N (default 2), --jobs N (threads inside
 *   each worker), --lease N, --hb-interval MS, --hb-timeout MS,
 *   --svc-fault SPEC (injected process/transport faults; see
 *   src/exec/service/wire.hh), --cursor-compact N, --quiet
 *
 * Exit status: 0 all seeds passed, 1 a divergence was found, 2 usage
 * error, 4 the only failures were quarantined seeds, 5 the service
 * aborted (worker respawn budget exhausted). Worker loss alone never
 * changes the exit code — it is survivable by design and reported on
 * stderr only.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "exec/service/coordinator.hh"
#include "support/strutil.hh"

#include "fuzz_campaign.hh"

namespace
{

using namespace fb;

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::fprintf(stderr, "fbcampd: %s\n", msg);
    std::fprintf(stderr,
                 "usage: fbcampd --cursor FILE [--seed S] [--runs N] "
                 "[--workers N]\n"
                 "       (see the header of tools/fbcampd.cc for the "
                 "full option list)\n");
    std::exit(2);
}

struct Options : fbtool::CampaignConfig
{
    std::string cursorFile;
    std::uint64_t cursorCompact = 0;  ///< 0 = journal default
    int workers = 2;
    int jobs = 1;  ///< threads inside each worker
    exec::svc::SvcFaultPlan svcFault;
    std::uint64_t leaseItems = 16;
    int hbIntervalMs = 200;
    int hbTimeoutMs = 30'000;
    bool quiet = false;
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage(("missing value after " + arg).c_str());
            return argv[i];
        };
        auto nextInt = [&]() -> std::int64_t {
            std::int64_t v;
            std::string s = next();
            if (!parseInt(s, v))
                usage(("bad integer for " + arg + ": " + s).c_str());
            return v;
        };
        if (arg == "--seed")
            opt.seed = static_cast<std::uint64_t>(nextInt());
        else if (arg == "--runs")
            opt.runs = static_cast<int>(nextInt());
        else if (arg == "--no-swref")
            opt.swref = false;
        else if (arg == "--faults")
            opt.faults = true;
        else if (arg == "--fault-seed") {
            opt.faultSeed = static_cast<std::uint64_t>(nextInt());
            opt.faults = true;
        } else if (arg == "--max-cycles")
            opt.maxCycles = static_cast<std::uint64_t>(nextInt());
        else if (arg == "--shards") {
            auto parts = split(next(), ':');
            std::int64_t n = 0;
            if (parts.empty() || parts.size() > 2 ||
                !parseInt(parts[0], n) || n < 2)
                usage("--shards N[:QUANTUM] with N >= 2");
            opt.shards = static_cast<int>(n);
            if (parts.size() == 2) {
                std::int64_t q = 0;
                if (!parseInt(parts[1], q) || q < 1)
                    usage("--shards quantum must be >= 1");
                opt.shardQuantum = static_cast<std::uint64_t>(q);
            }
        } else if (arg == "--no-predecode")
            opt.predecode = false;
        else if (arg == "--cursor")
            opt.cursorFile = next();
        else if (arg == "--cursor-compact") {
            std::int64_t n = nextInt();
            if (n < 1)
                usage("--cursor-compact must be at least 1");
            opt.cursorCompact = static_cast<std::uint64_t>(n);
        } else if (arg == "--workers") {
            opt.workers = static_cast<int>(nextInt());
            if (opt.workers < 1)
                usage("--workers must be at least 1");
        } else if (arg == "--jobs") {
            opt.jobs = static_cast<int>(nextInt());
            if (opt.jobs < 1)
                usage("--jobs must be at least 1");
        } else if (arg == "--svc-fault") {
            std::string err;
            if (!exec::svc::SvcFaultPlan::parse(next(), opt.svcFault,
                                                err))
                usage(("--svc-fault: " + err).c_str());
        } else if (arg == "--lease") {
            std::int64_t n = nextInt();
            if (n < 1)
                usage("--lease must be at least 1");
            opt.leaseItems = static_cast<std::uint64_t>(n);
        } else if (arg == "--hb-interval") {
            opt.hbIntervalMs = static_cast<int>(nextInt());
            if (opt.hbIntervalMs < 1)
                usage("--hb-interval must be at least 1");
        } else if (arg == "--hb-timeout") {
            opt.hbTimeoutMs = static_cast<int>(nextInt());
            if (opt.hbTimeoutMs < 1)
                usage("--hb-timeout must be at least 1");
        } else if (arg == "--quiet")
            opt.quiet = true;
        else
            usage(("unknown option " + arg).c_str());
    }
    if (opt.runs < 1)
        usage("--runs must be at least 1");
    if (opt.cursorFile.empty())
        usage("--cursor FILE is required (the journal is what makes "
              "the daemon resumable)");
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    exec::svc::CursorJournal journal;
    std::string error;
    if (!journal.open(opt.cursorFile, fbtool::cursorHeader(opt),
                      static_cast<std::uint64_t>(opt.runs), error)) {
        std::fprintf(stderr, "fbcampd: %s\n", error.c_str());
        return 2;
    }
    if (opt.cursorCompact != 0)
        journal.setCompactionThreshold(opt.cursorCompact);
    if (journal.resumedItems() != 0)
        std::fprintf(stderr,
                     "fbcampd: cursor %s: resuming past %llu recorded "
                     "seed(s)\n",
                     opt.cursorFile.c_str(),
                     static_cast<unsigned long long>(
                         journal.resumedItems()));

    exec::svc::ServiceOptions sopt;
    sopt.workers = opt.workers;
    sopt.leaseItems = opt.leaseItems;
    sopt.heartbeatIntervalMs = opt.hbIntervalMs;
    sopt.heartbeatTimeoutMs = opt.hbTimeoutMs;
    sopt.innerJobs = opt.jobs;
    sopt.fault = opt.svcFault;
    sopt.quarantineArtifact = [&](std::uint64_t i, int kills) {
        return fbtool::quarantineArtifact(opt, opt.seed + i, kills);
    };

    auto runner = [&](std::uint64_t i, exec::WorkerContext &ctx) {
        return fbtool::runScenario(opt, i, ctx);
    };

    int failures = 0;
    int quarantined = 0;
    std::uint64_t delivered = 0;
    auto consume = [&](std::uint64_t i, const exec::ItemResult &r) {
        ++delivered;
        if (r.failed) {
            ++failures;
            if (r.quarantined)
                ++quarantined;
            std::printf("%s", r.payload.c_str());
            std::fflush(stdout);
        }
        // Operator heartbeat: coarse progress on stderr so a daemon
        // run in a terminal is visibly alive (the journal, not this,
        // is the machine-readable state).
        if (!opt.quiet && delivered % 100 == 0)
            std::fprintf(stderr, "fbcampd: %llu/%d seeds complete\n",
                         static_cast<unsigned long long>(i + 1),
                         opt.runs);
    };

    auto stats = exec::svc::runCampaignService(
        static_cast<std::uint64_t>(opt.runs), sopt, runner, consume,
        &journal);

    if (stats.workerDeaths != 0 || stats.corruptStreams != 0)
        std::fprintf(
            stderr,
            "fbcampd: service: %llu worker death(s), %llu respawn(s), "
            "%llu lease(s) reassigned, %llu heartbeat timeout(s), "
            "%llu corrupt stream(s)\n",
            static_cast<unsigned long long>(stats.workerDeaths),
            static_cast<unsigned long long>(stats.respawns),
            static_cast<unsigned long long>(stats.leasesReassigned),
            static_cast<unsigned long long>(stats.heartbeatTimeouts),
            static_cast<unsigned long long>(stats.corruptStreams));
    if (stats.aborted) {
        std::fprintf(stderr, "fbcampd: service aborted: %s\n",
                     stats.error.c_str());
        return 5;
    }

    std::printf("fbcampd: %d/%d scenarios passed (seeds %llu..%llu, "
                "%d workers)\n",
                opt.runs - failures, opt.runs,
                static_cast<unsigned long long>(opt.seed),
                static_cast<unsigned long long>(
                    opt.seed + static_cast<std::uint64_t>(opt.runs) - 1),
                opt.workers);
    if (failures == quarantined)
        return quarantined != 0 ? 4 : 0;
    return 1;
}
