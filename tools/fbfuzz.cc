/**
 * @file
 * fbfuzz — differential fuzz driver for the fuzzy-barrier simulator.
 *
 * Generates random multi-processor fuzzy-barrier scenarios (see
 * src/verify/) and executes each under the full differential matrix:
 * region-bit vs marker encoding, pipeline depths, hardware vs
 * software stall models, jitter, VLIW multi-issue, and the
 * real-thread swbarrier reference implementations. On failure the
 * scenario is greedily shrunk and written out as a byte-deterministic
 * reproducer that replays identically anywhere.
 *
 * Usage:
 *   fbfuzz [--seed S] [--runs N] [--minimize] [--out FILE]
 *   fbfuzz --replay FILE [--runs N]
 *   fbfuzz --save FILE [--seed S]
 *
 * Options:
 *   --seed S       base seed; run i fuzzes spec seed S+i (default 1)
 *   --runs N       scenarios to fuzz, or replay repetitions (default 100)
 *   --replay FILE  replay a stored reproducer instead of generating
 *   --minimize     shrink a failing scenario and write a reproducer
 *   --out FILE     reproducer output path (default fbfuzz-<seed>.fbrepro)
 *   --save FILE    write the reproducer for --seed's scenario and exit
 *   --no-swref     skip the software-barrier thread cross-check
 *   --topology SPEC
 *                  run every executor under this synchronization
 *                  network shape: flat (default), tree:ARITY[:LVL] or
 *                  cluster:SIZE[:LVL]. The matrix's topology-sweep
 *                  variants still cross-check the other shapes; the
 *                  flag is recorded in --cursor journals and
 *                  reproduce lines
 *   --faults       inject a seeded random fault schedule per scenario
 *                  (kills/freezes/pulse drops/bit flips; enables the
 *                  barrier watchdog and the fault-safety and
 *                  recovery-liveness oracles)
 *   --fault-seed S base for fault-plan derivation (default: spec seed)
 *   --max-cycles N per-run cycle guard (default 5,000,000)
 *   --shards N[:QUANTUM]
 *                  add a sequential-vs-sharded executor to the matrix:
 *                  each scenario additionally runs across N host
 *                  threads under a QUANTUM-cycle skew window (default
 *                  1024) and must reproduce the baseline fingerprint
 *                  exactly (see exec::ShardedMachine)
 *   --no-predecode run every executor on the legacy instruction-by-
 *                  instruction interpreter instead of the pre-decoded
 *                  threaded-code backend (also drops the
 *                  legacy-dispatch cross-check variant, which would
 *                  duplicate the baseline). Results are identical;
 *                  the flag is recorded in --cursor journals, so a
 *                  campaign cannot silently resume under the other
 *                  backend
 *   --jobs N       fuzz seeds on N worker threads; every seed in the
 *                  range is scanned (no stop at the first failure)
 *                  and results are reported in seed order, so the
 *                  failing-seed set is identical for every N
 *   --cursor FILE  journal per-seed verdicts to FILE so an interrupted
 *                  campaign resumes where it stopped: already-passing
 *                  seeds are skipped, failing ones re-run to reprint
 *                  their reports, and the final failing-seed set (and
 *                  summary) is identical to an uninterrupted run. The
 *                  journal records the campaign parameters; resuming
 *                  with different flags is rejected. A torn final line
 *                  (killed mid-write) is discarded, not trusted, and
 *                  the journal is compacted (crash-safely) once the
 *                  contiguous passing prefix grows large, so resumed
 *                  sweeps no longer grow it without bound
 *   --cursor-compact N
 *                  compaction threshold in journal records (default
 *                  4096; mostly for tests)
 *   --workers N    run the campaign as a multi-process service: a
 *                  coordinator shards the seed space into leased
 *                  ranges across N forked worker processes, survives
 *                  worker crashes/wedges via heartbeat timeouts and
 *                  exponential-backoff respawn, deterministically
 *                  reassigns incomplete leases, and quarantines a
 *                  seed that kills its worker twice (one solo probe,
 *                  then a first-class QUARANTINE artifact). Output
 *                  stays seed-ordered and byte-identical to --jobs 1
 *                  for every seed that is not quarantined. Composes
 *                  with --jobs N (threads inside each worker) and
 *                  --cursor (the coordinator records the contiguous
 *                  prefix, so a SIGKILLed coordinator resumes)
 *   --svc-fault SPEC
 *                  inject process/transport faults into the service
 *                  (kill:N, killitem:I, drop:N, garble:N, stallhb:N —
 *                  see src/exec/service/wire.hh); requires --workers
 *   --lease N      seeds per lease (default 16)
 *   --hb-timeout MS / --hb-interval MS
 *                  service liveness tuning (defaults 30000 / 200)
 *   --quiet        only print failures and the final summary
 *
 * Exit status: 0 all runs passed, 1 a failure was found (or a replay
 * failed), 2 usage error. Service mode additionally: 4 when the only
 * failures are quarantined seeds, 5 when the service aborted (worker
 * respawn budget exhausted). A campaign that merely lost and
 * respawned workers keeps the normal codes — worker loss is
 * survivable by design and reported on stderr only.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/campaign.hh"
#include "exec/service/coordinator.hh"
#include "fault/plan.hh"
#include "support/strutil.hh"
#include "verify/differ.hh"
#include "verify/generator.hh"
#include "verify/shrink.hh"

#include "fuzz_campaign.hh"

namespace
{

using namespace fb;
using fbtool::applyFaults;
using fbtool::cursorHeader;
using fbtool::describeFailure;
using fbtool::diffOptions;
using fbtool::runScenario;

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::fprintf(stderr, "fbfuzz: %s\n", msg);
    std::fprintf(stderr,
                 "usage: fbfuzz [--seed S] [--runs N] [--minimize] "
                 "[--out FILE]\n"
                 "       fbfuzz --replay FILE [--runs N]\n"
                 "       fbfuzz --save FILE [--seed S]\n"
                 "       (see the header of tools/fbfuzz.cc for details)\n");
    std::exit(2);
}

struct Options : fbtool::CampaignConfig
{
    bool runsGiven = false;
    std::string replayFile;
    std::string saveFile;
    std::string outFile;
    bool minimize = false;
    int jobs = 0;  ///< 0 = sequential stop-at-first-failure mode
    std::string cursorFile;
    std::uint64_t cursorCompact = 0;  ///< 0 = journal default
    int workers = 0;  ///< 0 = in-process; N = coordinator + N workers
    exec::svc::SvcFaultPlan svcFault;
    std::uint64_t leaseItems = 16;
    int hbIntervalMs = 200;
    int hbTimeoutMs = 30'000;
    bool quiet = false;
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage(("missing value after " + arg).c_str());
            return argv[i];
        };
        auto nextInt = [&]() -> std::int64_t {
            std::int64_t v;
            std::string s = next();
            if (!parseInt(s, v))
                usage(("bad integer for " + arg + ": " + s).c_str());
            return v;
        };
        if (arg == "--seed")
            opt.seed = static_cast<std::uint64_t>(nextInt());
        else if (arg == "--runs") {
            opt.runs = static_cast<int>(nextInt());
            opt.runsGiven = true;
        } else if (arg == "--replay")
            opt.replayFile = next();
        else if (arg == "--save")
            opt.saveFile = next();
        else if (arg == "--out")
            opt.outFile = next();
        else if (arg == "--minimize")
            opt.minimize = true;
        else if (arg == "--no-swref")
            opt.swref = false;
        else if (arg == "--faults")
            opt.faults = true;
        else if (arg == "--fault-seed") {
            opt.faultSeed = static_cast<std::uint64_t>(nextInt());
            opt.faults = true;
        }
        else if (arg == "--max-cycles")
            opt.maxCycles = static_cast<std::uint64_t>(nextInt());
        else if (arg == "--shards") {
            auto parts = split(next(), ':');
            std::int64_t n = 0;
            if (parts.empty() || parts.size() > 2 ||
                !parseInt(parts[0], n) || n < 2)
                usage("--shards N[:QUANTUM] with N >= 2");
            opt.shards = static_cast<int>(n);
            if (parts.size() == 2) {
                std::int64_t q = 0;
                if (!parseInt(parts[1], q) || q < 1)
                    usage("--shards quantum must be >= 1");
                opt.shardQuantum = static_cast<std::uint64_t>(q);
            }
        } else if (arg == "--no-predecode")
            opt.predecode = false;
        else if (arg == "--topology") {
            if (!barrier::Topology::parse(next(), opt.topology))
                usage("--topology expects flat, tree:ARITY[:LVL] or "
                      "cluster:SIZE[:LVL]");
        }
        else if (arg == "--jobs")
            opt.jobs = static_cast<int>(nextInt());
        else if (arg == "--cursor")
            opt.cursorFile = next();
        else if (arg == "--cursor-compact") {
            std::int64_t n = nextInt();
            if (n < 1)
                usage("--cursor-compact must be at least 1");
            opt.cursorCompact = static_cast<std::uint64_t>(n);
        } else if (arg == "--workers") {
            opt.workers = static_cast<int>(nextInt());
            if (opt.workers < 1)
                usage("--workers must be at least 1");
        } else if (arg == "--svc-fault") {
            std::string err;
            if (!exec::svc::SvcFaultPlan::parse(next(), opt.svcFault,
                                                err))
                usage(("--svc-fault: " + err).c_str());
        } else if (arg == "--lease") {
            std::int64_t n = nextInt();
            if (n < 1)
                usage("--lease must be at least 1");
            opt.leaseItems = static_cast<std::uint64_t>(n);
        } else if (arg == "--hb-interval") {
            opt.hbIntervalMs = static_cast<int>(nextInt());
            if (opt.hbIntervalMs < 1)
                usage("--hb-interval must be at least 1");
        } else if (arg == "--hb-timeout") {
            opt.hbTimeoutMs = static_cast<int>(nextInt());
            if (opt.hbTimeoutMs < 1)
                usage("--hb-timeout must be at least 1");
        } else if (arg == "--quiet")
            opt.quiet = true;
        else
            usage(("unknown option " + arg).c_str());
    }
    if (opt.runs < 1)
        usage("--runs must be at least 1");
    if (opt.jobs < 0)
        usage("--jobs must be at least 1");
    if (!opt.replayFile.empty() && !opt.saveFile.empty())
        usage("--replay and --save are mutually exclusive");
    if (!opt.cursorFile.empty() &&
        (!opt.replayFile.empty() || !opt.saveFile.empty()))
        usage("--cursor only applies to fuzzing campaigns");
    if (opt.workers > 0 &&
        (!opt.replayFile.empty() || !opt.saveFile.empty()))
        usage("--workers only applies to fuzzing campaigns");
    if (opt.svcFault.any() && opt.workers == 0)
        usage("--svc-fault requires --workers");
    return opt;
}

/**
 * The sweep cursor lives in exec::svc::CursorJournal now (the PR 4
 * journal promoted for the campaign service, with bounded growth via
 * crash-safe compaction); the header binding a journal to its
 * campaign renders in fuzz_campaign.hh, shared with fbcampd so the
 * two tools resume each other's journals.
 */
bool
openCursor(const Options &opt, exec::svc::CursorJournal &journal)
{
    std::string error;
    if (!journal.open(opt.cursorFile, cursorHeader(opt),
                      static_cast<std::uint64_t>(opt.runs), error)) {
        std::fprintf(stderr, "fbfuzz: %s\n", error.c_str());
        return false;
    }
    if (opt.cursorCompact != 0)
        journal.setCompactionThreshold(opt.cursorCompact);
    if (journal.resumedItems() != 0)
        std::fprintf(stderr,
                     "fbfuzz: cursor %s: resuming past %llu recorded "
                     "seed(s)\n",
                     opt.cursorFile.c_str(),
                     static_cast<unsigned long long>(
                         journal.resumedItems()));
    return true;
}

void
writeReproducer(const verify::Scenario &sc, const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "fbfuzz: cannot write %s\n", path.c_str());
        std::exit(2);
    }
    out << sc.toReproducer();
    std::printf("reproducer written to %s (%zu fbasm lines, %d "
                "processors)\n",
                path.c_str(), sc.totalAsmLines(), sc.procs());
}

/** Shrink a failing spec and write the reproducer. */
void
minimizeAndSave(const verify::ProgramSpec &spec, const Options &opt)
{
    auto d = diffOptions(opt);
    verify::FailPredicate fails = [&](const verify::Scenario &sc) {
        return !verify::runDifferential(sc, d).ok;
    };
    verify::ShrinkStats stats;
    auto minimal = verify::shrink(spec, fails, &stats);
    auto sc = verify::render(minimal);
    std::printf("minimized: %d -> %d processors, %d -> %d episodes, "
                "%zu fbasm lines (%d candidates, %d accepted)\n",
                spec.procs(), minimal.procs(), spec.episodes,
                minimal.episodes, sc.totalAsmLines(), stats.attempts,
                stats.accepted);
    auto rep = verify::runDifferential(sc, d);
    std::printf("minimal failure: %s: %s\n", rep.variant.c_str(),
                rep.failure.c_str());
    std::string path = opt.outFile.empty()
                           ? "fbfuzz-" + std::to_string(spec.seed) +
                                 ".fbrepro"
                           : opt.outFile;
    writeReproducer(sc, path);
}

int
replayMain(const Options &opt)
{
    std::ifstream in(opt.replayFile);
    if (!in)
        usage(("cannot open " + opt.replayFile).c_str());
    std::ostringstream text;
    text << in.rdbuf();

    verify::Scenario sc;
    std::string err;
    if (!verify::Scenario::fromReproducer(text.str(), sc, err)) {
        std::fprintf(stderr, "fbfuzz: %s: %s\n", opt.replayFile.c_str(),
                     err.c_str());
        return 2;
    }
    std::printf("replay: %s  procs=%d groups=%d episodes=%d "
                "encoding=%s interrupt=%llu\n",
                opt.replayFile.c_str(), sc.procs(), sc.groups(),
                sc.episodes, verify::encodingName(sc.encoding),
                static_cast<unsigned long long>(sc.interruptPeriod));

    // Replay repetitions reuse pooled machines, so a multi-rep replay
    // also cross-checks that reset machines replay byte-identically.
    exec::MachinePool machines;
    exec::ProgramCache programCache;
    auto d = diffOptions(opt);
    d.machinePool = &machines;
    d.programCache = &programCache;
    const int reps = opt.runsGiven ? opt.runs : 1;
    verify::DiffReport first;
    for (int i = 0; i < reps; ++i) {
        auto rep = verify::runDifferential(sc, d);
        if (i == 0) {
            first = rep;
            std::printf("%s", rep.describe().c_str());
        } else if (rep.ok != first.ok ||
                   rep.baseline.hash() != first.baseline.hash()) {
            std::printf("NONDETERMINISTIC: run %d disagrees with run 0\n",
                        i);
            return 1;
        }
    }
    if (reps > 1)
        std::printf("deterministic across %d replays\n", reps);
    return first.ok ? 0 : 1;
}

/**
 * Parallel scan-everything mode (--jobs N), on the campaign engine:
 * seeds fan out across the work-stealing pool, every worker recycles
 * machines from its private pool and interns generated programs in
 * the shared cache, and the ordered emitter streams each verdict in
 * seed order as the contiguous prefix completes — a slow seed no
 * longer stalls unrelated seeds behind a batch barrier. Unlike the
 * sequential mode nothing stops at the first failure, so the failing
 * seed set — and the printed report — is byte-identical regardless of
 * the worker count or OS scheduling.
 */
int
fuzzParallel(const Options &opt, exec::svc::CursorJournal *cursor)
{
    const int runs = opt.runs;
    const int jobs = std::min(opt.jobs, runs);

    exec::CampaignOptions copt;
    copt.jobs = jobs;

    auto runner = [&](std::uint64_t i, exec::WorkerContext &ctx) {
        exec::ItemResult r;
        // Seeds the journal already proved passing are skipped;
        // failing ones re-run so their FAIL reports (and the
        // failing-seed set) match an uninterrupted campaign. The
        // consumer only records item i after this runner finishes,
        // so the read observes resume-time state only.
        if (cursor != nullptr && cursor->state(i) == 'p')
            return r;
        return runScenario(opt, i, ctx);
    };

    int failures = 0;
    std::int64_t firstFailing = -1;
    auto consume = [&](std::uint64_t i, const exec::ItemResult &r) {
        const bool skipped =
            cursor != nullptr && cursor->state(i) == 'p';
        if (!skipped && cursor != nullptr)
            cursor->record(i, r.failed);
        if (r.failed) {
            ++failures;
            if (firstFailing < 0)
                firstFailing = static_cast<std::int64_t>(i);
            std::printf("%s", r.payload.c_str());
        }
    };

    exec::runCampaign(static_cast<std::uint64_t>(runs), copt, runner,
                      consume);

    std::printf("fbfuzz: %d/%d scenarios passed (seeds %llu..%llu, "
                "%d jobs)\n",
                runs - failures, runs,
                static_cast<unsigned long long>(opt.seed),
                static_cast<unsigned long long>(
                    opt.seed + static_cast<std::uint64_t>(runs) - 1),
                jobs);
    if (failures == 0)
        return 0;
    if (opt.minimize) {
        const std::uint64_t specSeed =
            opt.seed + static_cast<std::uint64_t>(firstFailing);
        auto spec = verify::randomSpec(specSeed);
        applyFaults(spec, opt, specSeed);
        minimizeAndSave(spec, opt);
    }
    return 1;
}

/**
 * Multi-process service mode (--workers N): the coordinator in
 * exec::svc shards the seed range into leases across forked worker
 * processes and survives worker loss, wedges, and transport
 * corruption (injectable via --svc-fault). Each worker runs the same
 * differential runner as fuzzParallel — with --jobs threads inside —
 * so for every seed that is not quarantined the printed FAIL blocks
 * are byte-identical to the in-process modes at any worker count.
 */
int
fuzzService(const Options &opt, exec::svc::CursorJournal *cursor)
{
    const int runs = opt.runs;

    exec::svc::ServiceOptions sopt;
    sopt.workers = opt.workers;
    sopt.leaseItems = opt.leaseItems;
    sopt.heartbeatIntervalMs = opt.hbIntervalMs;
    sopt.heartbeatTimeoutMs = opt.hbTimeoutMs;
    sopt.innerJobs = std::max(1, opt.jobs);
    sopt.fault = opt.svcFault;
    sopt.quarantineArtifact = [&](std::uint64_t i, int kills) {
        return fbtool::quarantineArtifact(opt, opt.seed + i, kills);
    };

    // Identical scenario work to fuzzParallel; journal-passed seeds
    // never reach the runner (the coordinator pre-delivers them), so
    // no cursor check is needed here.
    auto runner = [&](std::uint64_t i, exec::WorkerContext &ctx) {
        return runScenario(opt, i, ctx);
    };

    int failures = 0;
    int quarantined = 0;
    std::int64_t firstFailing = -1;
    auto consume = [&](std::uint64_t i, const exec::ItemResult &r) {
        if (r.failed) {
            ++failures;
            if (r.quarantined)
                ++quarantined;
            else if (firstFailing < 0)
                firstFailing = static_cast<std::int64_t>(i);
            std::printf("%s", r.payload.c_str());
        }
    };

    auto stats = exec::svc::runCampaignService(
        static_cast<std::uint64_t>(runs), sopt, runner, consume,
        cursor);

    if (stats.workerDeaths != 0 || stats.corruptStreams != 0)
        std::fprintf(
            stderr,
            "fbfuzz: service: %llu worker death(s), %llu respawn(s), "
            "%llu lease(s) reassigned, %llu heartbeat timeout(s), "
            "%llu corrupt stream(s)\n",
            static_cast<unsigned long long>(stats.workerDeaths),
            static_cast<unsigned long long>(stats.respawns),
            static_cast<unsigned long long>(stats.leasesReassigned),
            static_cast<unsigned long long>(stats.heartbeatTimeouts),
            static_cast<unsigned long long>(stats.corruptStreams));
    if (stats.aborted) {
        std::fprintf(stderr, "fbfuzz: service aborted: %s\n",
                     stats.error.c_str());
        return 5;
    }

    std::printf("fbfuzz: %d/%d scenarios passed (seeds %llu..%llu, "
                "%d workers)\n",
                runs - failures, runs,
                static_cast<unsigned long long>(opt.seed),
                static_cast<unsigned long long>(
                    opt.seed + static_cast<std::uint64_t>(runs) - 1),
                opt.workers);
    if (failures == quarantined)
        return quarantined != 0 ? 4 : 0;
    if (opt.minimize && firstFailing >= 0) {
        const std::uint64_t specSeed =
            opt.seed + static_cast<std::uint64_t>(firstFailing);
        auto spec = verify::randomSpec(specSeed);
        applyFaults(spec, opt, specSeed);
        minimizeAndSave(spec, opt);
    }
    return 1;
}

int
fuzzMain(const Options &opt)
{
    exec::svc::CursorJournal cursorStorage;
    exec::svc::CursorJournal *cursor = nullptr;
    if (!opt.cursorFile.empty()) {
        if (!openCursor(opt, cursorStorage))
            return 2;
        cursor = &cursorStorage;
    }
    if (opt.workers > 0)
        return fuzzService(opt, cursor);
    if (opt.jobs > 0)
        return fuzzParallel(opt, cursor);
    // Sequential stop-at-first-failure mode still recycles machines
    // and interns programs across seeds — same hot path, one thread.
    exec::MachinePool machines;
    exec::ProgramCache programCache;
    auto d = diffOptions(opt);
    d.machinePool = &machines;
    d.programCache = &programCache;
    for (int i = 0; i < opt.runs; ++i) {
        if (cursor != nullptr &&
            cursor->state(static_cast<std::uint64_t>(i)) == 'p')
            continue;
        const std::uint64_t specSeed = opt.seed + static_cast<std::uint64_t>(i);
        auto spec = verify::randomSpec(specSeed);
        applyFaults(spec, opt, specSeed);
        auto sc = verify::render(spec);
        auto rep = verify::runDifferential(sc, d);
        if (cursor != nullptr)
            cursor->record(static_cast<std::uint64_t>(i), !rep.ok);
        if (!rep.ok) {
            std::printf("%s",
                        describeFailure(specSeed, sc, rep, opt).c_str());
            if (opt.minimize)
                minimizeAndSave(spec, opt);
            return 1;
        }
        if (!opt.quiet && (i + 1) % 50 == 0)
            std::printf("... %d/%d scenarios ok\n", i + 1, opt.runs);
    }
    std::printf("fbfuzz: %d scenarios passed (seeds %llu..%llu, all "
                "executors agree)\n",
                opt.runs, static_cast<unsigned long long>(opt.seed),
                static_cast<unsigned long long>(
                    opt.seed + static_cast<std::uint64_t>(opt.runs) - 1));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    if (!opt.replayFile.empty())
        return replayMain(opt);

    if (!opt.saveFile.empty()) {
        auto spec = verify::randomSpec(opt.seed);
        applyFaults(spec, opt, opt.seed);
        auto sc = verify::render(spec);
        auto rep = verify::runDifferential(sc, diffOptions(opt));
        std::printf("seed %llu: %s",
                    static_cast<unsigned long long>(opt.seed),
                    rep.describe().c_str());
        std::ofstream out(opt.saveFile);
        if (!out)
            usage(("cannot write " + opt.saveFile).c_str());
        out << sc.toReproducer();
        std::printf("scenario saved to %s\n", opt.saveFile.c_str());
        return rep.ok ? 0 : 1;
    }

    return fuzzMain(opt);
}
