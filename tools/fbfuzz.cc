/**
 * @file
 * fbfuzz — differential fuzz driver for the fuzzy-barrier simulator.
 *
 * Generates random multi-processor fuzzy-barrier scenarios (see
 * src/verify/) and executes each under the full differential matrix:
 * region-bit vs marker encoding, pipeline depths, hardware vs
 * software stall models, jitter, VLIW multi-issue, and the
 * real-thread swbarrier reference implementations. On failure the
 * scenario is greedily shrunk and written out as a byte-deterministic
 * reproducer that replays identically anywhere.
 *
 * Usage:
 *   fbfuzz [--seed S] [--runs N] [--minimize] [--out FILE]
 *   fbfuzz --replay FILE [--runs N]
 *   fbfuzz --save FILE [--seed S]
 *
 * Options:
 *   --seed S       base seed; run i fuzzes spec seed S+i (default 1)
 *   --runs N       scenarios to fuzz, or replay repetitions (default 100)
 *   --replay FILE  replay a stored reproducer instead of generating
 *   --minimize     shrink a failing scenario and write a reproducer
 *   --out FILE     reproducer output path (default fbfuzz-<seed>.fbrepro)
 *   --save FILE    write the reproducer for --seed's scenario and exit
 *   --no-swref     skip the software-barrier thread cross-check
 *   --faults       inject a seeded random fault schedule per scenario
 *                  (kills/freezes/pulse drops/bit flips; enables the
 *                  barrier watchdog and the fault-safety and
 *                  recovery-liveness oracles)
 *   --fault-seed S base for fault-plan derivation (default: spec seed)
 *   --max-cycles N per-run cycle guard (default 5,000,000)
 *   --shards N[:QUANTUM]
 *                  add a sequential-vs-sharded executor to the matrix:
 *                  each scenario additionally runs across N host
 *                  threads under a QUANTUM-cycle skew window (default
 *                  1024) and must reproduce the baseline fingerprint
 *                  exactly (see exec::ShardedMachine)
 *   --no-predecode run every executor on the legacy instruction-by-
 *                  instruction interpreter instead of the pre-decoded
 *                  threaded-code backend (also drops the
 *                  legacy-dispatch cross-check variant, which would
 *                  duplicate the baseline). Results are identical;
 *                  the flag is recorded in --cursor journals, so a
 *                  campaign cannot silently resume under the other
 *                  backend
 *   --jobs N       fuzz seeds on N worker threads; every seed in the
 *                  range is scanned (no stop at the first failure)
 *                  and results are reported in seed order, so the
 *                  failing-seed set is identical for every N
 *   --cursor FILE  journal per-seed verdicts to FILE so an interrupted
 *                  campaign resumes where it stopped: already-passing
 *                  seeds are skipped, failing ones re-run to reprint
 *                  their reports, and the final failing-seed set (and
 *                  summary) is identical to an uninterrupted run. The
 *                  journal records the campaign parameters; resuming
 *                  with different flags is rejected. A torn final line
 *                  (killed mid-write) is discarded, not trusted.
 *   --quiet        only print failures and the final summary
 *
 * Exit status: 0 all runs passed, 1 a failure was found (or a replay
 * failed), 2 usage error.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "exec/campaign.hh"
#include "fault/plan.hh"
#include "support/strutil.hh"
#include "verify/differ.hh"
#include "verify/generator.hh"
#include "verify/shrink.hh"

namespace
{

using namespace fb;

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::fprintf(stderr, "fbfuzz: %s\n", msg);
    std::fprintf(stderr,
                 "usage: fbfuzz [--seed S] [--runs N] [--minimize] "
                 "[--out FILE]\n"
                 "       fbfuzz --replay FILE [--runs N]\n"
                 "       fbfuzz --save FILE [--seed S]\n"
                 "       (see the header of tools/fbfuzz.cc for details)\n");
    std::exit(2);
}

struct Options
{
    std::uint64_t seed = 1;
    int runs = 100;
    bool runsGiven = false;
    std::string replayFile;
    std::string saveFile;
    std::string outFile;
    bool minimize = false;
    bool swref = true;
    bool faults = false;
    std::uint64_t faultSeed = 0;  ///< 0 = derive from the spec seed
    std::uint64_t maxCycles = 5'000'000;
    int shards = 0;  ///< 0 = no sharded executor in the matrix
    std::uint64_t shardQuantum = 1024;
    bool predecode = true;  ///< threaded-code backend for every executor
    int jobs = 0;  ///< 0 = sequential stop-at-first-failure mode
    std::string cursorFile;
    bool quiet = false;
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage(("missing value after " + arg).c_str());
            return argv[i];
        };
        auto nextInt = [&]() -> std::int64_t {
            std::int64_t v;
            std::string s = next();
            if (!parseInt(s, v))
                usage(("bad integer for " + arg + ": " + s).c_str());
            return v;
        };
        if (arg == "--seed")
            opt.seed = static_cast<std::uint64_t>(nextInt());
        else if (arg == "--runs") {
            opt.runs = static_cast<int>(nextInt());
            opt.runsGiven = true;
        } else if (arg == "--replay")
            opt.replayFile = next();
        else if (arg == "--save")
            opt.saveFile = next();
        else if (arg == "--out")
            opt.outFile = next();
        else if (arg == "--minimize")
            opt.minimize = true;
        else if (arg == "--no-swref")
            opt.swref = false;
        else if (arg == "--faults")
            opt.faults = true;
        else if (arg == "--fault-seed") {
            opt.faultSeed = static_cast<std::uint64_t>(nextInt());
            opt.faults = true;
        }
        else if (arg == "--max-cycles")
            opt.maxCycles = static_cast<std::uint64_t>(nextInt());
        else if (arg == "--shards") {
            auto parts = split(next(), ':');
            std::int64_t n = 0;
            if (parts.empty() || parts.size() > 2 ||
                !parseInt(parts[0], n) || n < 2)
                usage("--shards N[:QUANTUM] with N >= 2");
            opt.shards = static_cast<int>(n);
            if (parts.size() == 2) {
                std::int64_t q = 0;
                if (!parseInt(parts[1], q) || q < 1)
                    usage("--shards quantum must be >= 1");
                opt.shardQuantum = static_cast<std::uint64_t>(q);
            }
        } else if (arg == "--no-predecode")
            opt.predecode = false;
        else if (arg == "--jobs")
            opt.jobs = static_cast<int>(nextInt());
        else if (arg == "--cursor")
            opt.cursorFile = next();
        else if (arg == "--quiet")
            opt.quiet = true;
        else
            usage(("unknown option " + arg).c_str());
    }
    if (opt.runs < 1)
        usage("--runs must be at least 1");
    if (opt.jobs < 0)
        usage("--jobs must be at least 1");
    if (!opt.replayFile.empty() && !opt.saveFile.empty())
        usage("--replay and --save are mutually exclusive");
    if (!opt.cursorFile.empty() &&
        (!opt.replayFile.empty() || !opt.saveFile.empty()))
        usage("--cursor only applies to fuzzing campaigns");
    return opt;
}

/**
 * Sweep-cursor journal: one verdict line per completed seed, behind a
 * header binding the journal to its campaign parameters. The journal
 * is the fuzz campaign's own crash-tolerant checkpoint — a killed
 * `--jobs N` sweep resumes with an identical failing-seed set.
 *
 * Crash tolerance is line-granular: verdicts are appended one line at
 * a time and flushed, so a SIGKILL can tear at most the last line,
 * which the loader detects (malformed) and discards along with
 * everything after it. On open the journal is rewritten with only the
 * records that survived validation, dropping any torn tail.
 */
struct Cursor
{
    std::string path;
    std::vector<char> state;  ///< per seed index: 0 / 'p' pass / 'f' fail
    std::FILE *file = nullptr;
    std::mutex mu;

    ~Cursor()
    {
        if (file)
            std::fclose(file);
    }
};

std::string
cursorHeader(const Options &opt)
{
    std::ostringstream oss;
    oss << "fbfuzz-cursor v1 seed=" << opt.seed << " runs=" << opt.runs
        << " faults=" << (opt.faults ? 1 : 0)
        << " fault-seed=" << opt.faultSeed
        << " swref=" << (opt.swref ? 1 : 0)
        << " max-cycles=" << opt.maxCycles
        << " shards=" << opt.shards << ":" << opt.shardQuantum
        << " predecode=" << (opt.predecode ? 1 : 0);
    return oss.str();
}

bool
openCursor(const Options &opt, Cursor &cur)
{
    cur.path = opt.cursorFile;
    cur.state.assign(static_cast<std::size_t>(opt.runs), 0);
    const std::string header = cursorHeader(opt);

    std::ifstream in(cur.path);
    if (in) {
        std::string line;
        if (std::getline(in, line)) {
            if (line != header) {
                std::fprintf(stderr,
                             "fbfuzz: --cursor %s records a different "
                             "campaign\n  journal:  %s\n  this run: "
                             "%s\n",
                             cur.path.c_str(), line.c_str(),
                             header.c_str());
                return false;
            }
            int resumed = 0;
            while (std::getline(in, line)) {
                std::istringstream ls(line);
                std::string word, verdict;
                std::int64_t idx = -1;
                if (!(ls >> word >> idx >> verdict) || word != "done" ||
                    idx < 0 || idx >= opt.runs ||
                    (verdict != "pass" && verdict != "fail"))
                    break;  // torn tail from a mid-write kill
                cur.state[static_cast<std::size_t>(idx)] =
                    verdict == "pass" ? 'p' : 'f';
                ++resumed;
            }
            std::fprintf(stderr,
                         "fbfuzz: cursor %s: resuming past %d recorded "
                         "seed(s)\n",
                         cur.path.c_str(), resumed);
        }
        in.close();
    }

    // Rewrite rather than append: this drops any torn trailing line
    // and keeps the journal canonical.
    cur.file = std::fopen(cur.path.c_str(), "w");
    if (cur.file == nullptr) {
        std::fprintf(stderr, "fbfuzz: cannot write --cursor %s\n",
                     cur.path.c_str());
        return false;
    }
    std::fprintf(cur.file, "%s\n", header.c_str());
    for (int i = 0; i < opt.runs; ++i) {
        const char s = cur.state[static_cast<std::size_t>(i)];
        if (s != 0)
            std::fprintf(cur.file, "done %d %s\n", i,
                         s == 'p' ? "pass" : "fail");
    }
    std::fflush(cur.file);
    return true;
}

void
recordCursor(Cursor *cur, int i, bool failed)
{
    if (cur == nullptr)
        return;
    std::lock_guard<std::mutex> lock(cur->mu);
    cur->state[static_cast<std::size_t>(i)] = failed ? 'f' : 'p';
    std::fprintf(cur->file, "done %d %s\n", i, failed ? "fail" : "pass");
    std::fflush(cur->file);
}

/**
 * Attach a seeded random fault schedule to @p spec. The plan seed is
 * derived per-scenario so every fuzz run sees a different schedule,
 * yet (seed, fault-seed) reproduces the exact same plan; the watchdog
 * is always enabled because the plan may contain a fatal fault.
 */
void
applyFaults(verify::ProgramSpec &spec, const Options &opt,
            std::uint64_t spec_seed)
{
    if (!opt.faults)
        return;
    const std::uint64_t fs =
        opt.faultSeed != 0 ? opt.faultSeed + spec_seed : spec_seed;
    spec.faults =
        fault::randomFaultPlan(fs, spec.procs(), spec.groupSizes);
    spec.faultSeed = fs;
    spec.watchdog.enabled = true;
    spec.watchdog.timeoutCycles = 2000;
    spec.watchdog.maxAttempts = 3;
}

verify::DiffOptions
diffOptions(const Options &opt)
{
    verify::DiffOptions d;
    d.swBarrierReference = opt.swref;
    d.maxCycles = opt.maxCycles;
    d.shards = opt.shards;
    d.shardQuantum = opt.shardQuantum;
    d.predecode = opt.predecode;
    return d;
}

void
writeReproducer(const verify::Scenario &sc, const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "fbfuzz: cannot write %s\n", path.c_str());
        std::exit(2);
    }
    out << sc.toReproducer();
    std::printf("reproducer written to %s (%zu fbasm lines, %d "
                "processors)\n",
                path.c_str(), sc.totalAsmLines(), sc.procs());
}

/** Shrink a failing spec and write the reproducer. */
void
minimizeAndSave(const verify::ProgramSpec &spec, const Options &opt)
{
    auto d = diffOptions(opt);
    verify::FailPredicate fails = [&](const verify::Scenario &sc) {
        return !verify::runDifferential(sc, d).ok;
    };
    verify::ShrinkStats stats;
    auto minimal = verify::shrink(spec, fails, &stats);
    auto sc = verify::render(minimal);
    std::printf("minimized: %d -> %d processors, %d -> %d episodes, "
                "%zu fbasm lines (%d candidates, %d accepted)\n",
                spec.procs(), minimal.procs(), spec.episodes,
                minimal.episodes, sc.totalAsmLines(), stats.attempts,
                stats.accepted);
    auto rep = verify::runDifferential(sc, d);
    std::printf("minimal failure: %s: %s\n", rep.variant.c_str(),
                rep.failure.c_str());
    std::string path = opt.outFile.empty()
                           ? "fbfuzz-" + std::to_string(spec.seed) +
                                 ".fbrepro"
                           : opt.outFile;
    writeReproducer(sc, path);
}

int
replayMain(const Options &opt)
{
    std::ifstream in(opt.replayFile);
    if (!in)
        usage(("cannot open " + opt.replayFile).c_str());
    std::ostringstream text;
    text << in.rdbuf();

    verify::Scenario sc;
    std::string err;
    if (!verify::Scenario::fromReproducer(text.str(), sc, err)) {
        std::fprintf(stderr, "fbfuzz: %s: %s\n", opt.replayFile.c_str(),
                     err.c_str());
        return 2;
    }
    std::printf("replay: %s  procs=%d groups=%d episodes=%d "
                "encoding=%s interrupt=%llu\n",
                opt.replayFile.c_str(), sc.procs(), sc.groups(),
                sc.episodes, verify::encodingName(sc.encoding),
                static_cast<unsigned long long>(sc.interruptPeriod));

    // Replay repetitions reuse pooled machines, so a multi-rep replay
    // also cross-checks that reset machines replay byte-identically.
    exec::MachinePool machines;
    exec::ProgramCache programCache;
    auto d = diffOptions(opt);
    d.machinePool = &machines;
    d.programCache = &programCache;
    const int reps = opt.runsGiven ? opt.runs : 1;
    verify::DiffReport first;
    for (int i = 0; i < reps; ++i) {
        auto rep = verify::runDifferential(sc, d);
        if (i == 0) {
            first = rep;
            std::printf("%s", rep.describe().c_str());
        } else if (rep.ok != first.ok ||
                   rep.baseline.hash() != first.baseline.hash()) {
            std::printf("NONDETERMINISTIC: run %d disagrees with run 0\n",
                        i);
            return 1;
        }
    }
    if (reps > 1)
        std::printf("deterministic across %d replays\n", reps);
    return first.ok ? 0 : 1;
}

/** FAIL block for one diverging seed (identical in both fuzz modes). */
std::string
describeFailure(std::uint64_t spec_seed, const verify::Scenario &sc,
                const verify::DiffReport &rep, const Options &opt)
{
    std::ostringstream out;
    out << "FAIL seed=" << spec_seed << " procs=" << sc.procs()
        << " groups=" << sc.groups() << " episodes=" << sc.episodes
        << " encoding=" << verify::encodingName(sc.encoding);
    if (sc.hasFaults())
        out << " faults=" << sc.faults.toSpec();
    out << "\n  executor " << rep.variant << ": " << rep.failure << "\n";
    out << "reproduce with: fbfuzz --seed " << spec_seed << " --runs 1";
    if (opt.faults) {
        out << " --faults";
        if (opt.faultSeed != 0)
            out << " --fault-seed " << opt.faultSeed;
    }
    if (opt.shards >= 2)
        out << " --shards " << opt.shards << ":" << opt.shardQuantum;
    if (!opt.predecode)
        out << " --no-predecode";
    out << "\n";
    return out.str();
}

/**
 * Parallel scan-everything mode (--jobs N), on the campaign engine:
 * seeds fan out across the work-stealing pool, every worker recycles
 * machines from its private pool and interns generated programs in
 * the shared cache, and the ordered emitter streams each verdict in
 * seed order as the contiguous prefix completes — a slow seed no
 * longer stalls unrelated seeds behind a batch barrier. Unlike the
 * sequential mode nothing stops at the first failure, so the failing
 * seed set — and the printed report — is byte-identical regardless of
 * the worker count or OS scheduling.
 */
int
fuzzParallel(const Options &opt, Cursor *cursor)
{
    const int runs = opt.runs;
    const int jobs = std::min(opt.jobs, runs);

    exec::CampaignOptions copt;
    copt.jobs = jobs;

    auto runner = [&](std::uint64_t i, exec::WorkerContext &ctx) {
        exec::ItemResult r;
        // Seeds the journal already proved passing are skipped;
        // failing ones re-run so their FAIL reports (and the
        // failing-seed set) match an uninterrupted campaign. The
        // consumer only writes state[i] after this runner finishes,
        // so the read is race-free.
        if (cursor != nullptr && cursor->state[i] == 'p')
            return r;
        const std::uint64_t specSeed = opt.seed + i;
        auto spec = verify::randomSpec(specSeed);
        applyFaults(spec, opt, specSeed);
        auto sc = verify::render(spec);
        auto d = diffOptions(opt);
        d.machinePool = &ctx.machines;
        d.programCache = &ctx.programs;
        auto rep = verify::runDifferential(sc, d);
        if (!rep.ok) {
            r.failed = true;
            r.payload = describeFailure(specSeed, sc, rep, opt);
        }
        return r;
    };

    int failures = 0;
    std::int64_t firstFailing = -1;
    auto consume = [&](std::uint64_t i, const exec::ItemResult &r) {
        const bool skipped =
            cursor != nullptr && cursor->state[i] == 'p';
        if (!skipped)
            recordCursor(cursor, static_cast<int>(i), r.failed);
        if (r.failed) {
            ++failures;
            if (firstFailing < 0)
                firstFailing = static_cast<std::int64_t>(i);
            std::printf("%s", r.payload.c_str());
        }
    };

    exec::runCampaign(static_cast<std::uint64_t>(runs), copt, runner,
                      consume);

    std::printf("fbfuzz: %d/%d scenarios passed (seeds %llu..%llu, "
                "%d jobs)\n",
                runs - failures, runs,
                static_cast<unsigned long long>(opt.seed),
                static_cast<unsigned long long>(
                    opt.seed + static_cast<std::uint64_t>(runs) - 1),
                jobs);
    if (failures == 0)
        return 0;
    if (opt.minimize) {
        const std::uint64_t specSeed =
            opt.seed + static_cast<std::uint64_t>(firstFailing);
        auto spec = verify::randomSpec(specSeed);
        applyFaults(spec, opt, specSeed);
        minimizeAndSave(spec, opt);
    }
    return 1;
}

int
fuzzMain(const Options &opt)
{
    Cursor cursorStorage;
    Cursor *cursor = nullptr;
    if (!opt.cursorFile.empty()) {
        if (!openCursor(opt, cursorStorage))
            return 2;
        cursor = &cursorStorage;
    }
    if (opt.jobs > 0)
        return fuzzParallel(opt, cursor);
    // Sequential stop-at-first-failure mode still recycles machines
    // and interns programs across seeds — same hot path, one thread.
    exec::MachinePool machines;
    exec::ProgramCache programCache;
    auto d = diffOptions(opt);
    d.machinePool = &machines;
    d.programCache = &programCache;
    for (int i = 0; i < opt.runs; ++i) {
        if (cursor != nullptr &&
            cursor->state[static_cast<std::size_t>(i)] == 'p')
            continue;
        const std::uint64_t specSeed = opt.seed + static_cast<std::uint64_t>(i);
        auto spec = verify::randomSpec(specSeed);
        applyFaults(spec, opt, specSeed);
        auto sc = verify::render(spec);
        auto rep = verify::runDifferential(sc, d);
        recordCursor(cursor, i, !rep.ok);
        if (!rep.ok) {
            std::printf("%s",
                        describeFailure(specSeed, sc, rep, opt).c_str());
            if (opt.minimize)
                minimizeAndSave(spec, opt);
            return 1;
        }
        if (!opt.quiet && (i + 1) % 50 == 0)
            std::printf("... %d/%d scenarios ok\n", i + 1, opt.runs);
    }
    std::printf("fbfuzz: %d scenarios passed (seeds %llu..%llu, all "
                "executors agree)\n",
                opt.runs, static_cast<unsigned long long>(opt.seed),
                static_cast<unsigned long long>(
                    opt.seed + static_cast<std::uint64_t>(opt.runs) - 1));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    if (!opt.replayFile.empty())
        return replayMain(opt);

    if (!opt.saveFile.empty()) {
        auto spec = verify::randomSpec(opt.seed);
        applyFaults(spec, opt, opt.seed);
        auto sc = verify::render(spec);
        auto rep = verify::runDifferential(sc, diffOptions(opt));
        std::printf("seed %llu: %s",
                    static_cast<unsigned long long>(opt.seed),
                    rep.describe().c_str());
        std::ofstream out(opt.saveFile);
        if (!out)
            usage(("cannot write " + opt.saveFile).c_str());
        out << sc.toReproducer();
        std::printf("scenario saved to %s\n", opt.saveFile.c_str());
        return rep.ok ? 0 : 1;
    }

    return fuzzMain(opt);
}
