/**
 * @file
 * Experiment E22 — hierarchical barrier topologies and O(active)
 * simulation at 16..1024 processors.
 *
 * Two claims, both rooted in section 6's observation that the
 * broadcast interconnect grows with the machine:
 *
 *  A. Simulated sync cost. A flat single-level network spanning n
 *     processors pays a propagation delay that grows with n (modeled
 *     here as sync_latency = max(1, n/16)); a hierarchical network
 *     pays a constant local latency plus 2 * span * level_latency for
 *     the subtree a group spans, which grows only logarithmically
 *     (tree) or stays constant (cluster + root). Sweeping an
 *     all-processor barrier loop from 16 to 1024 processors, the
 *     tree/cluster runs must finish in fewer simulated cycles than
 *     flat from 256 processors up — while episodes and registers stay
 *     identical across all three shapes (the topology moves delivery
 *     cycles, never results).
 *
 *  B. Simulator cost. The machine's per-cycle bookkeeping and the
 *     barrier network's evaluation are O(active), not O(processors):
 *     with 16 participants and the rest of the machine halted, the
 *     wall-clock simulation rate (cycles/sec) at 1024 processors must
 *     hold at least half the 16-processor rate.
 */

#include "common.hh"
#include "barrier/topology.hh"

#include <chrono>
#include <cstring>
#include <vector>

namespace
{

using namespace fb;
using namespace fb::bench;

constexpr int kSizes[] = {16, 64, 256, 1024};

barrier::Topology
parseTopo(const char *spec)
{
    barrier::Topology t;
    if (!barrier::Topology::parse(spec, t)) {
        std::fprintf(stderr, "E22: bad topology spec %s\n", spec);
        std::exit(1);
    }
    return t;
}

/** Results the topology must never change: per-processor episode
 * counts and the full register file. */
struct ResultPrint
{
    std::vector<std::int64_t> values;

    bool operator==(const ResultPrint &o) const
    {
        return values == o.values;
    }
};

struct TopoRun
{
    std::uint64_t cycles = 0;
    ResultPrint results;
};

/**
 * All-n barrier loop under @p topo. The flat shape pays the
 * size-scaled broadcast latency; hierarchical shapes pay a unit local
 * latency plus their per-level cost.
 */
TopoRun
runAllProcs(int n, const barrier::Topology &topo)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = n;
    cfg.memWords = 1 << 12;
    cfg.maxCycles = 50'000'000;
    cfg.syncLatency =
        topo.flat() ? static_cast<std::uint32_t>(std::max(1, n / 16)) : 1;
    cfg.topology = topo;
    applyEnvOverrides(cfg);
    sim::Machine machine(cfg);
    for (int p = 0; p < n; ++p)
        machine.loadProgram(
            p, core::buildBarrierLoop(core::SimBarrierKind::HardwareFuzzy,
                                      n, p, /*episodes=*/4,
                                      /*work_instrs=*/16,
                                      /*region_instrs=*/4));
    auto r = runTallied(machine);
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E22 part A failed at n=%d topo=%s\n", n,
                     topo.toString().c_str());
        std::exit(1);
    }
    TopoRun out;
    out.cycles = r.cycles;
    for (const auto &p : r.perProcessor)
        out.results.values.push_back(
            static_cast<std::int64_t>(p.barrierEpisodes));
    for (int p = 0; p < n; ++p)
        for (int i = 0; i < isa::numRegisters; ++i)
            out.results.values.push_back(machine.processor(p).reg(i));
    return out;
}

/**
 * 16 participants in a machine of @p n processors; the other n-16
 * halt on cycle one. Measures the run()'s wall-clock simulation rate:
 * O(active) bookkeeping means the rate must not collapse as n grows.
 */
double
runSixteenActive(int n)
{
    constexpr int kParticipants = 16;
    sim::MachineConfig cfg;
    cfg.numProcessors = n;
    cfg.memWords = 1 << 12;
    cfg.maxCycles = 50'000'000;
    cfg.syncLatency = 1;
    applyEnvOverrides(cfg);
    sim::Machine machine(cfg);
    for (int p = 0; p < n; ++p) {
        if (p < kParticipants)
            machine.loadProgram(
                p, core::buildBarrierLoop(
                       core::SimBarrierKind::HardwareFuzzy,
                       kParticipants, p, /*episodes=*/300,
                       /*work_instrs=*/200, /*region_instrs=*/8));
        else
            machine.loadProgram(p, assembleOrDie("halt\n"));
    }
    const auto start = std::chrono::steady_clock::now();
    auto r = runTallied(machine);
    const auto end = std::chrono::steady_clock::now();
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E22 part B failed at n=%d\n", n);
        std::exit(1);
    }
    const double wall =
        std::chrono::duration<double>(end - start).count();
    return wall > 0 ? static_cast<double>(r.cycles) / wall : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    (void)argc;
    (void)argv;

    const barrier::Topology flat;
    const barrier::Topology tree = parseTopo("tree:4");
    const barrier::Topology cluster = parseTopo("cluster:16");

    bool ok = true;

    // Part A: simulated cycles of an all-processor barrier loop.
    fb::Table ta("E22a: simulated cycles, all-processor barrier loop "
                 "(flat latency n/16 vs tree:4 / cluster:16, level "
                 "latency 1)");
    ta.setHeader({"procs", "flat", "tree:4", "cluster:16", "identical"});
    for (int n : kSizes) {
        const TopoRun f = runAllProcs(n, flat);
        const TopoRun t = runAllProcs(n, tree);
        const TopoRun c = runAllProcs(n, cluster);
        const bool identical =
            f.results == t.results && f.results == c.results;
        ta.row()
            .cell(static_cast<std::int64_t>(n))
            .cell(static_cast<std::int64_t>(f.cycles))
            .cell(static_cast<std::int64_t>(t.cycles))
            .cell(static_cast<std::int64_t>(c.cycles))
            .cell(std::string(identical ? "yes" : "NO"));
        if (!identical) {
            ok = false;
            std::fprintf(stderr,
                         "E22 FAIL: results differ across topologies "
                         "at n=%d\n",
                         n);
        }
        if (n >= 256 && (t.cycles >= f.cycles || c.cycles >= f.cycles)) {
            ok = false;
            std::fprintf(stderr,
                         "E22 FAIL: hierarchical topology not faster "
                         "than flat at n=%d (flat=%llu tree=%llu "
                         "cluster=%llu)\n",
                         n, static_cast<unsigned long long>(f.cycles),
                         static_cast<unsigned long long>(t.cycles),
                         static_cast<unsigned long long>(c.cycles));
        }
        if (n == 1024)
            std::printf("topology-sync-advantage-1024: %.2f\n",
                        t.cycles > 0 ? static_cast<double>(f.cycles) /
                                           static_cast<double>(t.cycles)
                                     : 0.0);
    }
    ta.print(std::cout);

    // Part B: wall-clock simulation rate with 16 active processors.
    fb::Table tb("E22b: simulation rate, 16 participants, rest halted "
                 "(O(active) bookkeeping)");
    tb.setHeader({"procs", "cycles/sec", "vs-16"});
    double rate16 = 0.0;
    double ratio1024 = 0.0;
    for (int n : kSizes) {
        const double rate = runSixteenActive(n);
        if (n == 16)
            rate16 = rate;
        const double ratio = rate16 > 0 ? rate / rate16 : 0.0;
        if (n == 1024)
            ratio1024 = ratio;
        tb.row()
            .cell(static_cast<std::int64_t>(n))
            .cell(rate, 0)
            .cell(ratio, 2);
    }
    tb.print(std::cout);

    std::printf("topology-oactive-ratio: %.2f\n", ratio1024);
    std::printf("topology-config: %s,%s,%s\n", flat.toString().c_str(),
                tree.toString().c_str(), cluster.toString().c_str());
    if (ratio1024 < 0.5) {
        ok = false;
        std::fprintf(stderr,
                     "E22 FAIL: 1024-processor rate fell below half "
                     "the 16-processor rate (ratio %.2f)\n",
                     ratio1024);
    }

    printClaim("section 6 scaled up: a hierarchical synchronization "
               "network keeps the delivery latency logarithmic where a "
               "flat broadcast's grows with the machine, and O(active) "
               "simulation holds the cycles/sec rate as the processor "
               "count grows 64x");
    return ok ? 0 : 1;
}
