/**
 * @file
 * Experiment E5 — Fig. 12: run-time scheduling of loop iterations.
 *
 * The inner loop's trip count (26) is not divisible by the processor
 * count (4) and the iterations have non-uniform cost, so the
 * iterations are distributed at run time. The compiler emits multiple
 * versions of the loop body (Fig. 12): a processor's *first*
 * iteration starts with a barrier region, its *last* is followed by
 * one, intervening iterations carry no barrier code, and a single
 * iteration gets both.
 *
 * Policies: static block scheduling; fixed-chunk self-scheduling;
 * guided self-scheduling (GSS) — the self-scheduled policies use the
 * first-to-finish-grabs model. Under each policy the barrier between
 * outer iterations is either a point or a fuzzy region built (per the
 * multi-version roles) from the tail of the processor's last
 * iteration and the head of its first iteration of the next round —
 * no instructions are added.
 */

#include "common.hh"
#include "compiler/transforms.hh"
#include "sched/schedule.hh"

namespace
{

using namespace fb;
using namespace fb::bench;

constexpr int kProcs = 4;
constexpr int kInnerIters = 26;
constexpr int kOuterIters = 8;
constexpr int kShare = 20;  // max tail/head share in the region

/** Non-uniform iteration cost in instructions (8..16). */
int
iterCost(int iteration)
{
    return 8 + (iteration * 7) % 9;
}

enum class Policy
{
    Block,
    Chunk,
    Gss,
};

sched::Assignment
assignmentFor(Policy policy)
{
    std::vector<double> costs;
    for (int i = 0; i < kInnerIters; ++i)
        costs.push_back(iterCost(i));
    switch (policy) {
      case Policy::Block:
        return sched::blockSchedule(kInnerIters, kProcs);
      case Policy::Chunk:
        return sched::chunkSelfSchedule(kInnerIters, kProcs, 2, costs);
      case Policy::Gss:
        return sched::guidedSelfSchedule(kInnerIters, kProcs, costs);
    }
    return {};
}

const char *
policyName(Policy policy)
{
    switch (policy) {
      case Policy::Block: return "block-static";
      case Policy::Chunk: return "chunk(2)-self";
      case Policy::Gss: return "guided-self";
    }
    return "?";
}

std::string
streamSource(int self, Policy policy, bool fuzzy)
{
    auto assignment = assignmentFor(policy);
    const auto &mine = assignment[static_cast<std::size_t>(self)];
    int total = 0;
    for (int it : mine)
        total += iterCost(it);

    // Multi-version roles: the region at each inter-round barrier is
    // the tail of this processor's LAST iteration plus the head of
    // its FIRST iteration of the next round.
    const int share = fuzzy ? std::min(kShare, std::max(1, total / 2))
                            : 0;

    std::ostringstream oss;
    oss << "settag 1\n";
    oss << "setmask " << ((1 << kProcs) - 1) << "\n";
    auto emitWork = [&](int n) {
        for (int k = 0; k < n; ++k)
            oss << "addi r3, r3, 1\n";
    };

    for (int outer = 0; outer < kOuterIters; ++outer) {
        int head = outer == 0 ? 0 : share;
        int tail = share;
        emitWork(std::max(0, total - head - tail));
        oss << ".region 1\n";
        if (fuzzy) {
            emitWork(tail);
            if (outer + 1 < kOuterIters)
                emitWork(share);  // head of the next round
        } else {
            oss << "nop\n";
        }
        oss << ".endregion\n";
    }
    oss << "st r3, 100(r0)\n";
    oss << "halt\n";
    return oss.str();
}

struct Row
{
    std::uint64_t cycles;
    std::uint64_t stalled;
    std::uint64_t wait;
    int loadSpread;  // max-min per-processor work in instructions
};

Row
measure(Policy policy, bool fuzzy)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = kProcs;
    cfg.memWords = 1 << 14;
    applyEnvOverrides(cfg);
    sim::Machine machine(cfg);
    for (int p = 0; p < kProcs; ++p)
        machine.loadProgram(p,
                            assembleOrDie(streamSource(p, policy, fuzzy)));
    auto r = runTallied(machine);
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E5 run failed\n");
        std::exit(1);
    }

    auto assignment = assignmentFor(policy);
    int max_work = 0;
    int min_work = 1 << 30;
    for (const auto &list : assignment) {
        int total = 0;
        for (int it : list)
            total += iterCost(it);
        max_work = std::max(max_work, total);
        min_work = std::min(min_work, total);
    }
    return {r.cycles, totalStalledEpisodes(r), r.totalBarrierWait(),
            max_work - min_work};
}

} // namespace

static int
benchMain()
{
    fb::Table table("E5 (Fig. 12): run-time scheduling, 26 non-uniform "
                    "iterations on 4 processors, 8 outer rounds");
    table.setHeader({"policy", "barrier", "work spread", "stalled",
                     "idle cycles", "total cycles"});

    for (Policy policy : {Policy::Block, Policy::Chunk, Policy::Gss}) {
        for (bool fuzzy : {false, true}) {
            auto row = measure(policy, fuzzy);
            table.row()
                .cell(policyName(policy))
                .cell(fuzzy ? "fuzzy" : "point")
                .cell(static_cast<std::int64_t>(row.loadSpread))
                .cell(row.stalled)
                .cell(row.wait)
                .cell(row.cycles);
        }
    }
    table.print(std::cout);

    printClaim("self-scheduling (especially GSS) distributes work so "
               "processors complete at about the same time, reducing "
               "idling at the inter-round barrier; the multi-version "
               "fuzzy regions absorb the residual imbalance");
    return 0;
}

int
main()
{
    int rc = 1;
    fb::bench::runSteadyState(10000, [&rc] { rc = benchMain(); });
    return rc;
}
