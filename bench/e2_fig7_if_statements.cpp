/**
 * @file
 * Experiment E2 — Fig. 7: variable-length streams.
 *
 * A parallel loop body contains "if cond then S2 else S3" where the
 * two paths have different lengths, and the branch outcome is
 * data-dependent (an LCG per processor). With a single-instruction
 * barrier region (Fig. 7(b)(i)) the processor taking the short path
 * waits for the other; with the entire if-statement inside the
 * barrier region (Fig. 7(b)(ii)) the variation is absorbed and
 * neither processor has to stall.
 */

#include "common.hh"

namespace
{

using namespace fb;
using namespace fb::bench;

/**
 * @param if_in_region place the whole if-statement (and loop control)
 *        in the barrier region, Fig. 7(b)(ii); otherwise only a
 *        single-NOP region marks the barrier, Fig. 7(b)(i).
 */
std::string
streamSource(int procs, int seed, int heavy_extra, bool if_in_region)
{
    std::ostringstream oss;
    oss << "settag 1\n";
    oss << "setmask " << ((1 << procs) - 1) << "\n";
    oss << "li r1, 0\n";
    oss << "li r2, 32\n";          // iterations
    oss << "li r10, " << seed << "\n";
    oss << "li r11, 16\n";         // shift for branch bit
    oss << "li r12, 1\n";
    oss << "loop:\n";
    oss << "addi r3, r3, 1\n";  // S1: the non-barrier work
    if (if_in_region)
        oss << ".region 1\n";
    // LCG step: r10 = r10 * 1103515245 + 12345; bit 16 decides.
    oss << "muli r10, r10, 1103515245\n";
    oss << "addi r10, r10, 12345\n";
    oss << "shr r13, r10, r11\n";
    oss << "and r13, r13, r12\n";
    oss << "bne r13, r0, else_s3\n";
    // S2: the long path.
    for (int k = 0; k < heavy_extra; ++k)
        oss << "addi r5, r5, 1\n";
    oss << "jmp endif\n";
    oss << "else_s3:\n";
    oss << "addi r6, r6, 1\n";     // S3: the short path
    oss << "endif:\n";
    if (if_in_region) {
        oss << "addi r1, r1, 1\n";
        oss << "bne r1, r2, loop\n";
        oss << ".endregion\n";
    } else {
        oss << ".region 1\n";
        oss << "nop\n";
        oss << ".endregion\n";
        oss << "addi r1, r1, 1\n";
        oss << "bne r1, r2, loop\n";
    }
    oss << "st r3, 100(r0)\n";
    oss << "halt\n";
    return oss.str();
}

struct Row
{
    std::uint64_t cycles;
    std::uint64_t stalled;
    std::uint64_t wait;
};

Row
measure(int procs, int heavy_extra, bool if_in_region)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = procs;
    cfg.memWords = 1 << 14;
    cfg.seed = 7;
    applyEnvOverrides(cfg);
    sim::Machine machine(cfg);
    for (int p = 0; p < procs; ++p) {
        machine.loadProgram(
            p, assembleOrDie(streamSource(procs, 1234 + 77 * p,
                                          heavy_extra, if_in_region)));
    }
    auto r = runTallied(machine);
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E2 run failed\n");
        std::exit(1);
    }
    return {r.cycles, totalStalledEpisodes(r), r.totalBarrierWait()};
}

} // namespace

static int
benchMain()
{
    fb::Table table("E2 (Fig. 7): if-statements with unequal paths, "
                    "point barrier vs if-statement inside the region");
    table.setHeader({"procs", "path gap", "barrier", "stalled episodes",
                     "wait cycles", "total cycles"});

    for (int procs : {2, 4, 8}) {
        for (int heavy : {8, 24}) {
            auto point = measure(procs, heavy, false);
            auto fuzzy = measure(procs, heavy, true);
            table.row()
                .cell(static_cast<std::int64_t>(procs))
                .cell(static_cast<std::int64_t>(heavy))
                .cell("point")
                .cell(point.stalled)
                .cell(point.wait)
                .cell(point.cycles);
            table.row()
                .cell(static_cast<std::int64_t>(procs))
                .cell(static_cast<std::int64_t>(heavy))
                .cell("if-in-region")
                .cell(fuzzy.stalled)
                .cell(fuzzy.wait)
                .cell(fuzzy.cycles);
        }
    }
    table.print(std::cout);

    printClaim("if the entire if-statement is part of the barrier, "
               "processors taking different paths may not have to stall "
               "(Fig. 7(b)(ii)); with a single-instruction barrier the "
               "short-path processor always waits");
    return 0;
}

int
main()
{
    int rc = 1;
    fb::bench::runSteadyState(5000, [&rc] { rc = benchMain(); });
    return rc;
}
