/**
 * @file
 * Experiment E15 (ablation) — broadcast propagation latency.
 *
 * Section 6 notes the extensibility limits of the mechanism: "the
 * number of interconnections among the processors increases with the
 * number of processors" — in a larger machine the broadcast takes
 * longer to propagate. The fuzzy barrier's answer is the same as for
 * every other latency: the region hides it. A point barrier pays the
 * full propagation delay on every episode; a region larger than the
 * delay pays nothing, so the mechanism scales to slower networks
 * without giving up its near-zero cost.
 */

#include "common.hh"

namespace
{

using namespace fb;
using namespace fb::bench;

constexpr int kProcs = 8;
constexpr int kEpisodes = 40;
constexpr int kWork = 30;

double
costPerEpisode(std::uint32_t latency, int region)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = kProcs;
    cfg.memWords = 1 << 14;
    cfg.syncLatency = latency;
    applyEnvOverrides(cfg);
    sim::Machine machine(cfg);
    for (int p = 0; p < kProcs; ++p)
        machine.loadProgram(
            p, core::buildBarrierLoop(core::SimBarrierKind::HardwareFuzzy,
                                      kProcs, p, kEpisodes, kWork,
                                      region));
    auto r = runTallied(machine);
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E15 run failed\n");
        std::exit(1);
    }
    double ideal =
        static_cast<double>(kEpisodes) * (kWork + region + 3) + 8;
    return (static_cast<double>(r.cycles) - ideal) /
           static_cast<double>(kEpisodes);
}

} // namespace

static int
benchMain()
{
    fb::Table table("E15 (ablation, section 6): broadcast propagation "
                    "latency vs region size (extra cycles per episode, "
                    "8 processors)");
    table.setHeader({"sync latency", "region 0", "region 16",
                     "region 32", "region 64"});

    for (std::uint32_t latency : {0u, 5u, 10u, 20u, 40u}) {
        table.row()
            .cell(static_cast<std::int64_t>(latency))
            .cell(costPerEpisode(latency, 0), 1)
            .cell(costPerEpisode(latency, 16), 1)
            .cell(costPerEpisode(latency, 32), 1)
            .cell(costPerEpisode(latency, 64), 1);
    }
    table.print(std::cout);

    printClaim("a point barrier pays the full broadcast delay per "
               "episode; once the region exceeds the delay the cost "
               "returns to near zero — larger (slower-broadcast) "
               "machines just need proportionally larger regions");
    return 0;
}

int
main()
{
    int rc = 1;
    fb::bench::runSteadyState(1000, [&rc] { rc = benchMain(); });
    return rc;
}
