/**
 * @file
 * Experiment E4 — Fig. 11: static scheduling of parallel loops.
 *
 * Three processors execute an inner loop of four iterations per outer
 * iteration: one processor must run two iterations. Four variants:
 *
 *   fixed + point     — the extra iteration always lands on processor
 *                       0 and the barrier is a point: the other two
 *                       idle every outer iteration (Fig. 11(a)).
 *   fixed + fuzzy     — large regions cannot absorb a *persistent*
 *                       imbalance; idling continues.
 *   rotating + point  — the extra iteration rotates (Fig. 11(b));
 *                       total work evens out across processors but a
 *                       point barrier still stalls the two light
 *                       processors each iteration.
 *   rotating + fuzzy  — rotation + barrier regions spanning outer
 *                       iterations: the light processors absorb the
 *                       gap in region work and idling is eliminated
 *                       (Fig. 11(c)).
 *
 * The fuzzy variants do NOT add instructions: the barrier region is
 * built from the tail of the current outer iteration's work plus the
 * head of the next one (exactly how the compiler builds regions from
 * existing code), so all variants execute the same instruction count.
 */

#include "common.hh"
#include "sched/schedule.hh"

namespace
{

using namespace fb;
using namespace fb::bench;

constexpr int kProcs = 3;
constexpr int kInnerIters = 4;
constexpr int kOuterIters = 12;
constexpr int kIterCost = 30;   // instructions per inner iteration
constexpr int kShare = 15;      // tail/head share moved into the region

std::string
streamSource(int self, bool rotating, bool fuzzy)
{
    // Work per outer iteration for this processor.
    std::vector<int> work;
    for (int outer = 0; outer < kOuterIters; ++outer) {
        auto assignment = sched::rotatingSchedule(
            kInnerIters, kProcs, rotating ? outer : 0);
        work.push_back(static_cast<int>(
                           assignment[static_cast<std::size_t>(self)]
                               .size()) *
                       kIterCost);
    }

    // At least one non-barrier instruction must separate consecutive
    // regions, or they would merge into a single barrier episode.
    auto tail = [&](int t) {
        int w = work[static_cast<std::size_t>(t)];
        return fuzzy ? std::min(kShare, (w - 1) / 2) : 0;
    };
    auto head = [&](int t) {
        return t == 0 ? 0 : tail(t);
    };

    std::ostringstream oss;
    oss << "settag 1\n";
    oss << "setmask " << ((1 << kProcs) - 1) << "\n";
    auto emitWork = [&](int n) {
        for (int k = 0; k < n; ++k)
            oss << "addi r3, r3, 1\n";
    };

    for (int t = 0; t < kOuterIters; ++t) {
        // Middle of iteration t (its head was emitted inside the
        // previous barrier region).
        emitWork(work[static_cast<std::size_t>(t)] - head(t) - tail(t));
        oss << ".region 1\n";
        if (fuzzy) {
            emitWork(tail(t));
            if (t + 1 < kOuterIters)
                emitWork(head(t + 1));
        } else {
            oss << "nop\n";
        }
        oss << ".endregion\n";
    }
    oss << "st r3, 100(r0)\n";
    oss << "halt\n";
    return oss.str();
}

struct Row
{
    std::uint64_t cycles;
    std::uint64_t stalled;
    std::uint64_t wait;
};

Row
measure(bool rotating, bool fuzzy)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = kProcs;
    cfg.memWords = 1 << 14;
    applyEnvOverrides(cfg);
    sim::Machine machine(cfg);
    for (int p = 0; p < kProcs; ++p)
        machine.loadProgram(p,
                            assembleOrDie(streamSource(p, rotating,
                                                       fuzzy)));
    auto r = runTallied(machine);
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E4 run failed\n");
        std::exit(1);
    }
    return {r.cycles, totalStalledEpisodes(r), r.totalBarrierWait()};
}

} // namespace

static int
benchMain()
{
    fb::Table table("E4 (Fig. 11): 4 iterations on 3 processors, "
                    "12 outer iterations (equal instruction counts in "
                    "all variants)");
    table.setHeader({"schedule", "barrier", "stalled episodes",
                     "idle cycles", "total cycles"});

    struct Variant
    {
        const char *sched;
        const char *barrier;
        bool rotating;
        bool fuzzy;
    };
    for (const Variant &v :
         {Variant{"fixed", "point", false, false},
          Variant{"fixed", "fuzzy", false, true},
          Variant{"rotating", "point", true, false},
          Variant{"rotating", "fuzzy", true, true}}) {
        auto row = measure(v.rotating, v.fuzzy);
        table.row()
            .cell(v.sched)
            .cell(v.barrier)
            .cell(row.stalled)
            .cell(row.wait)
            .cell(row.cycles);
    }
    table.print(std::cout);

    printClaim("rotating the extra iteration equalizes work over outer "
               "iterations, and with barrier regions spanning the outer "
               "iterations the idling of processors is potentially "
               "eliminated (Fig. 11(c)); neither rotation nor regions "
               "alone suffices");
    return 0;
}

int
main()
{
    int rc = 1;
    fb::bench::runSteadyState(10000, [&rc] { rc = benchMain(); });
    return rc;
}
