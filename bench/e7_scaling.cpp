/**
 * @file
 * Experiment E7 — section 1's scaling claims.
 *
 * "The synchronization overhead increases linearly, or for the best
 * possible software implementation, logarithmically with the number
 * of processors synchronizing at the barrier." The hardware fuzzy
 * barrier detects readiness with no instruction overhead, so its
 * per-episode cost is O(1).
 *
 * All four implementations run on the same simulated machine model:
 * the software barriers are actual spin-barrier code in the machine's
 * ISA (shared counter + sense flag; dissemination flags), the
 * hardware ones use the barrier network. Reported cost is the cycles
 * per episode beyond the loop's pure work time.
 */

#include "common.hh"

namespace
{

using namespace fb;
using namespace fb::bench;

constexpr int kEpisodes = 40;
constexpr int kWork = 20;

double
perEpisodeCost(core::SimBarrierKind kind, int procs)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = procs;
    cfg.memWords = 1 << 14;
    cfg.maxCycles = 500'000'000;
    // Banked interconnect: only same-word accesses serialize, the
    // setting of the hot-spot analysis [Yew/Tzeng/Lawrie] where the
    // dissemination barrier achieves its logarithmic latency. (E8
    // uses the single shared bus instead and shows what happens when
    // everything serializes.)
    cfg.busKind = sim::BusKind::Banked;
    applyEnvOverrides(cfg);
    sim::Machine machine(cfg);
    for (int p = 0; p < procs; ++p)
        machine.loadProgram(
            p, core::buildBarrierLoop(kind, procs, p, kEpisodes, kWork,
                                      /*region_instrs=*/4));
    auto r = runTallied(machine);
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E7 run failed for %s at P=%d\n",
                     core::simBarrierKindName(kind), procs);
        std::exit(1);
    }
    // Baseline: a single processor executing the same loop without
    // any partner to wait for still pays the barrier's instruction
    // overhead, so subtract the pure work + loop control instead.
    double ideal = static_cast<double>(kEpisodes) * (kWork + 3) + 8;
    return (static_cast<double>(r.cycles) - ideal) /
           static_cast<double>(kEpisodes);
}

/**
 * --ff-stress: a fast-forward showcase rather than a paper claim.
 * 64 processors run a hardware-fuzzy barrier loop through a
 * high-latency broadcast network (syncLatency 1024, section 6's
 * large-machine regime), so almost every cycle is spent with every
 * core stalled waiting for the propagation delay — exactly the
 * waiting the event-driven core skips. run_all.sh times this mode
 * with and without FB_NO_FAST_FORWARD to report the speedup.
 */
int
ffStress()
{
    constexpr int procs = 64;
    constexpr int episodes = 200;
    constexpr int work = 10;
    sim::MachineConfig cfg;
    cfg.numProcessors = procs;
    cfg.memWords = 1 << 14;
    cfg.maxCycles = 500'000'000;
    cfg.syncLatency = 1024;
    applyEnvOverrides(cfg);
    sim::Machine machine(cfg);
    for (int p = 0; p < procs; ++p)
        machine.loadProgram(
            p, core::buildBarrierLoop(core::SimBarrierKind::HardwareFuzzy,
                                      procs, p, episodes, work,
                                      /*region_instrs=*/4));
    auto r = runTallied(machine);
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E7 --ff-stress run failed\n");
        return 1;
    }
    std::printf("E7 ff-stress: procs=%d episodes=%d syncLatency=%u "
                "cycles=%llu\n",
                procs, episodes, cfg.syncLatency,
                static_cast<unsigned long long>(r.cycles));
    return 0;
}

} // namespace

static int
benchMain()
{
    fb::Table table("E7 (section 1): per-episode barrier cost vs "
                    "processor count (cycles beyond work)");
    table.setHeader({"procs", "sw-centralized", "sw-dissemination",
                     "hw-point", "hw-fuzzy"});

    for (int procs : {2, 4, 8, 16, 32, 64}) {
        table.row()
            .cell(static_cast<std::int64_t>(procs))
            .cell(perEpisodeCost(core::SimBarrierKind::Centralized,
                                 procs),
                  1)
            .cell(perEpisodeCost(core::SimBarrierKind::Dissemination,
                                 procs),
                  1)
            .cell(perEpisodeCost(core::SimBarrierKind::HardwarePoint,
                                 procs),
                  1)
            .cell(perEpisodeCost(core::SimBarrierKind::HardwareFuzzy,
                                 procs),
                  1);
    }
    table.print(std::cout);

    printClaim("software barrier cost grows linearly (centralized "
               "counter: serialized bus traffic) or logarithmically "
               "(dissemination) with processors; the hardware mechanism "
               "stays O(1) — near-zero extra cycles per episode");
    return 0;
}

int
main(int argc, char **argv)
{
    // --ff-stress is its own timed probe (run_all.sh runs it with
    // and without FB_NO_FAST_FORWARD), so it stays a single run.
    if (argc > 1 && std::string(argv[1]) == "--ff-stress")
        return ffStress();
    int rc = 1;
    fb::bench::runSteadyState(500, [&rc] { rc = benchMain(); });
    return rc;
}
