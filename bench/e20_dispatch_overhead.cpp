/**
 * @file
 * Experiment E20 — dispatch overhead of the execution backends.
 *
 * The fuzzy barrier makes synchronization nearly free, so on a
 * straight-line kernel the simulator's own fetch/decode/dispatch tax
 * is what bounds how large a machine we can study (ROADMAP
 * "Native-speed execution backend"). This bench times one workload —
 * two processors running a long unrolled ALU loop with a barrier
 * region every few thousand iterations — under the pre-decoded
 * threaded-code backend and under the legacy instruction-by-
 * instruction interpreter, asserts the two runs are cycle-identical
 * (the backend equivalence invariant), and reports the dispatch
 * speedup. run_all.sh copies the tally lines into an
 * e20_dispatch_delta entry and check_perf_regression.sh tracks
 * dispatch_speedup against the committed baseline.
 */

#include <chrono>

#include "common.hh"

namespace
{

using namespace fb;
using namespace fb::bench;

constexpr int kProcs = 2;
constexpr int kUnroll = 64;     // straight-line ALU ops per inner pass
constexpr int kInnerIters = 4096;
constexpr int kOuterIters = 32; // one barrier episode per outer pass

std::string
kernelSource()
{
    std::ostringstream oss;
    oss << "settag 1\n";
    oss << "setmask " << ((1 << kProcs) - 1) << "\n";
    oss << "li r1, 0\n";
    oss << "li r2, " << kOuterIters << "\n";
    oss << "li r9, 3\n";
    oss << "outer:\n";
    oss << "li r3, 0\n";
    oss << "li r4, " << kInnerIters << "\n";
    oss << "inner:\n";
    // The unrolled body cycles through the single-issue ALU opcodes so
    // the decoded dispatch table is exercised broadly, not just ADDI.
    for (int k = 0; k < kUnroll; ++k) {
        switch (k % 8) {
          case 0: oss << "addi r5, r5, 1\n"; break;
          case 1: oss << "add r6, r6, r5\n"; break;
          case 2: oss << "xor r7, r6, r5\n"; break;
          case 3: oss << "slt r8, r5, r6\n"; break;
          case 4: oss << "shl r10, r5, r9\n"; break;
          case 5: oss << "shr r11, r10, r9\n"; break;
          case 6: oss << "sub r12, r6, r5\n"; break;
          case 7: oss << "or r13, r12, r7\n"; break;
        }
    }
    oss << "addi r3, r3, 1\n";
    oss << "bne r3, r4, inner\n";
    oss << ".region 1\n";
    oss << "addi r20, r20, 1\n";
    oss << ".endregion\n";
    oss << "addi r1, r1, 1\n";
    oss << "bne r1, r2, outer\n";
    oss << "st r6, 100(r0)\n";
    oss << "halt\n";
    return oss.str();
}

struct Timed
{
    double seconds;
    std::uint64_t cycles;
    std::int64_t checksum;
};

Timed
measure(bool predecode)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = kProcs;
    cfg.memWords = 1 << 14;
    cfg.predecode = predecode;
    applyEnvOverrides(cfg);
    sim::Machine machine(cfg);
    auto prog = assembleOrDie(kernelSource());
    for (int p = 0; p < kProcs; ++p)
        machine.loadProgram(p, prog);
    const auto start = std::chrono::steady_clock::now();
    auto r = runTallied(machine);
    const auto end = std::chrono::steady_clock::now();
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E20 run failed\n");
        std::exit(1);
    }
    return {std::chrono::duration<double>(end - start).count(),
            r.cycles, machine.processor(0).reg(6)};
}

} // namespace

static int
benchMain()
{
    fb::Table table("E20: dispatch overhead, pre-decoded threaded code "
                    "vs legacy interpreter (2 procs, unrolled ALU "
                    "kernel, 1 barrier episode per 4096 iterations)");
    table.setHeader({"backend", "sim cycles", "wall seconds",
                     "cycles/sec"});

    const Timed decoded = measure(true);
    const Timed legacy = measure(false);
    if (decoded.cycles != legacy.cycles ||
        decoded.checksum != legacy.checksum) {
        std::fprintf(stderr,
                     "E20: backends diverged (cycles %llu vs %llu)\n",
                     static_cast<unsigned long long>(decoded.cycles),
                     static_cast<unsigned long long>(legacy.cycles));
        std::exit(1);
    }

    auto rate = [](const Timed &t) {
        return t.seconds > 0 ? static_cast<double>(t.cycles) / t.seconds
                             : 0.0;
    };
    auto addRow = [&](const char *name, const Timed &t) {
        std::ostringstream wall, cps;
        wall << t.seconds;
        cps << static_cast<std::uint64_t>(rate(t));
        table.row().cell(name).cell(t.cycles).cell(wall.str()).cell(
            cps.str());
    };
    addRow("decoded", decoded);
    addRow("legacy", legacy);
    table.print(std::cout);

    const double speedup =
        decoded.seconds > 0 ? legacy.seconds / decoded.seconds : 0.0;
    std::printf("dispatch-speedup: %.2f\n", speedup);
    std::printf("dispatch-cycles-per-sec-decoded: %.0f\n",
                rate(decoded));
    std::printf("dispatch-cycles-per-sec-legacy: %.0f\n", rate(legacy));

    printClaim("with the interpreter tax removed by pre-decoded "
               "threaded code, the compute between barrier regions "
               "runs an order of magnitude faster, so barrier costs "
               "can be observed at realistic core speeds");
    return 0;
}

int
main()
{
    // The two timed runs are the measurement; no steady-state rep
    // loop, the kernel is large enough to dominate process startup.
    return benchMain();
}
