/**
 * @file
 * Experiment E19 — shard scaling of the simulator itself.
 *
 * The paper's thesis applied to the host: the fuzzy barrier lets a
 * processor run ahead inside its region because the work there is
 * provably independent of its partners. exec::ShardedMachine applies
 * the same idea to host threads — each shard advances its processors
 * through provably-private ticks up to a sync quantum, and a skew
 * barrier (two swbarrier rendezvous per window) hands every
 * globally-visible interaction back to the coordinator in canonical
 * (cycle, proc-id) order. Determinism is the contract: every shard
 * count must produce a bit-identical RunResult and register file.
 *
 * This bench runs a 64-processor hardware-fuzzy barrier workload with
 * a heavy private-work region (the shardable fraction) at shard
 * counts 1/2/4/8 and reports wall-clock speedup over the sequential
 * core, failing loudly if any fingerprint drifts.
 */

#include "common.hh"
#include "exec/sharded_machine.hh"

#include <chrono>
#include <thread>
#include <vector>

namespace
{

using namespace fb;
using namespace fb::bench;

constexpr int kProcs = 64;
constexpr int kEpisodes = 25;
constexpr int kWork = 2400;   // private instrs per episode: the
                               // parallelizable fraction
constexpr int kRegionInstrs = 8;
constexpr std::uint64_t kQuantum = 4096;

struct ShardRun
{
    double wallSeconds = 0.0;
    std::vector<std::int64_t> fingerprint;
};

/** Fold every externally-observable outcome of the run into one flat
 * vector: RunResult counters, per-processor stats, and the full
 * register file. Equality here is the bench's bit-identical check. */
std::vector<std::int64_t>
fingerprintOf(sim::Machine &m, const sim::RunResult &r)
{
    std::vector<std::int64_t> fp;
    fp.push_back(static_cast<std::int64_t>(r.cycles));
    fp.push_back(r.deadlocked ? 1 : 0);
    fp.push_back(r.timedOut ? 1 : 0);
    fp.push_back(static_cast<std::int64_t>(r.syncEvents));
    fp.push_back(static_cast<std::int64_t>(r.busRequests));
    fp.push_back(static_cast<std::int64_t>(r.busQueueDelay));
    fp.push_back(static_cast<std::int64_t>(r.memAccesses));
    fp.push_back(static_cast<std::int64_t>(r.hotSpotAccesses));
    for (const auto &p : r.perProcessor) {
        fp.push_back(static_cast<std::int64_t>(p.instructions));
        fp.push_back(static_cast<std::int64_t>(p.barrierWaitCycles));
        fp.push_back(static_cast<std::int64_t>(p.barrierEpisodes));
        fp.push_back(static_cast<std::int64_t>(p.stallCycles));
    }
    for (int p = 0; p < kProcs; ++p)
        for (int i = 0; i < isa::numRegisters; ++i)
            fp.push_back(m.processor(p).reg(i));
    return fp;
}

ShardRun
runWithShards(int shards)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = kProcs;
    cfg.memWords = 1 << 14;
    cfg.maxCycles = 500'000'000;
    cfg.busKind = sim::BusKind::Banked;
    cfg.shardCount = shards;
    cfg.shardQuantum = shards > 1 ? kQuantum : 0;
    applyEnvOverrides(cfg);
    sim::Machine machine(cfg);
    for (int p = 0; p < kProcs; ++p)
        machine.loadProgram(
            p, core::buildBarrierLoop(core::SimBarrierKind::HardwareFuzzy,
                                      kProcs, p, kEpisodes, kWork,
                                      kRegionInstrs));
    exec::ShardedMachine sharded(machine);
    const auto start = std::chrono::steady_clock::now();
    auto r = sharded.run();
    const auto end = std::chrono::steady_clock::now();
    tallyCycles(r);
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E19 run failed at shards=%d\n", shards);
        std::exit(1);
    }
    ShardRun out;
    out.wallSeconds =
        std::chrono::duration<double>(end - start).count();
    out.fingerprint = fingerprintOf(machine, r);
    return out;
}

} // namespace

int
main()
{
    fb::Table table("E19: simulator wall-clock vs shard count "
                    "(64 procs, hw-fuzzy loop, quantum 4096)");
    table.setHeader({"shards", "wall-ms", "speedup", "identical"});

    // Interpretation aid: on a single-core host the speedup is only
    // the private-tick fast path (runPrivate's tight loop vs the
    // general scheduler); true thread-level scaling needs cores.
    std::printf("host-hardware-concurrency: %u\n",
                std::thread::hardware_concurrency());

    const ShardRun base = runWithShards(1);
    std::printf("shard-wall-seconds-1: %.6f\n", base.wallSeconds);

    bool all_identical = true;
    for (int shards : {2, 4, 8}) {
        const ShardRun run = runWithShards(shards);
        const bool identical = run.fingerprint == base.fingerprint;
        all_identical = all_identical && identical;
        const double speedup =
            run.wallSeconds > 0 ? base.wallSeconds / run.wallSeconds : 0;
        table.row()
            .cell(static_cast<std::int64_t>(shards))
            .cell(run.wallSeconds * 1e3, 1)
            .cell(speedup, 2)
            .cell(std::string(identical ? "yes" : "NO"));
        std::printf("shard-speedup-%d: %.2f\n", shards, speedup);
        if (!identical)
            std::fprintf(stderr,
                         "E19 FAIL: shards=%d fingerprint differs from "
                         "sequential core\n",
                         shards);
    }
    table.print(std::cout);

    printClaim("the fuzzy-barrier idea applied to the host: shards run "
               "ahead through provably-private work under a quantum skew "
               "window, so the simulator scales across threads while "
               "staying bit-identical to the sequential core");
    return all_identical ? 0 : 1;
}
