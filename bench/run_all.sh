#!/usr/bin/env bash
# Run every experiment binary (bench/e*) and emit a machine-readable
# BENCH_<date>.json with wall-clock time, simulated cycles (from the
# "total-sim-cycles:" tally each bench prints at exit), and simulation
# throughput in cycles/sec. For E7 and E8 the --ff-stress mode is also
# timed with and without FB_NO_FAST_FORWARD=1 to report the speedup of
# the event-driven fast-forward core over the legacy per-cycle loop.
#
# Usage: bench/run_all.sh [build-dir]     (default: build)
# Output: BENCH_<YYYYMMDD>.json in the current directory, or $BENCH_OUT.
# Exit status: nonzero if any bench binary failed.
set -u

BUILD_DIR="${1:-build}"
BENCH_DIR="$BUILD_DIR/bench"
OUT="${BENCH_OUT:-BENCH_$(date +%Y%m%d).json}"

if [ ! -d "$BENCH_DIR" ]; then
    echo "run_all: no such directory: $BENCH_DIR" >&2
    echo "run_all: build first: cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
    exit 2
fi

FAILURES=0
ENTRIES=""

# run_one <json-name> <cmd...> — time the command, parse its cycle
# tally, and append a JSON entry. Sets WALL_S/SIM_CYCLES/STATUS.
run_one() {
    local name="$1"
    shift
    local start end out
    start=$(date +%s%N)
    out="$("$@" 2>&1)"
    STATUS=$?
    end=$(date +%s%N)
    WALL_S=$(awk -v s="$start" -v e="$end" 'BEGIN{printf "%.6f", (e - s) / 1e9}')
    SIM_CYCLES=$(printf '%s\n' "$out" |
        awk '/^total-sim-cycles:/ {c += $2} END {printf "%.0f", c + 0}')
    local cps
    cps=$(awk -v c="$SIM_CYCLES" -v w="$WALL_S" \
        'BEGIN{printf "%.0f", (w > 0) ? c / w : 0}')
    if [ "$STATUS" -ne 0 ]; then
        FAILURES=$((FAILURES + 1))
        echo "run_all: FAIL $name (exit $STATUS)" >&2
        printf '%s\n' "$out" | tail -5 >&2
    fi
    ENTRIES="$ENTRIES  {\"name\": \"$name\", \"wall_seconds\": $WALL_S, \"sim_cycles\": $SIM_CYCLES, \"cycles_per_sec\": $cps, \"exit_status\": $STATUS},
"
    echo "run_all: $name wall=${WALL_S}s cycles=$SIM_CYCLES cycles/sec=$cps"
}

# Every table-style experiment binary. e10_microbench is a
# google-benchmark harness over the real-thread software barriers (no
# simulated machine, so its sim_cycles tally is 0 by construction).
for bench in "$BENCH_DIR"/e*; do
    [ -x "$bench" ] || continue
    run_one "$(basename "$bench")" "$bench"
done

# Fast-forward speedup probes: same workload, event-driven core vs
# the legacy per-cycle loop. The cycle counts must match exactly (the
# equivalence invariant); only the wall-clock may differ.
for stress in e7_scaling e8_hotspot; do
    [ -x "$BENCH_DIR/$stress" ] || continue
    run_one "${stress}_ff_stress" "$BENCH_DIR/$stress" --ff-stress
    ff_wall=$WALL_S
    ff_cycles=$SIM_CYCLES
    FB_NO_FAST_FORWARD=1 run_one "${stress}_ff_stress_legacy" \
        env FB_NO_FAST_FORWARD=1 "$BENCH_DIR/$stress" --ff-stress
    legacy_wall=$WALL_S
    legacy_cycles=$SIM_CYCLES
    if [ "$ff_cycles" != "$legacy_cycles" ]; then
        echo "run_all: FAIL ${stress}_ff_stress: cycle mismatch ff=$ff_cycles legacy=$legacy_cycles" >&2
        FAILURES=$((FAILURES + 1))
    fi
    speedup=$(awk -v f="$ff_wall" -v l="$legacy_wall" \
        'BEGIN{printf "%.2f", (f > 0) ? l / f : 0}')
    ENTRIES="$ENTRIES  {\"name\": \"${stress}_ff_speedup\", \"ff_wall_seconds\": $ff_wall, \"legacy_wall_seconds\": $legacy_wall, \"ff_speedup\": $speedup, \"sim_cycles\": $ff_cycles},
"
    echo "run_all: ${stress} fast-forward speedup: ${speedup}x"
done

{
    echo "{"
    echo "\"date\": \"$(date +%Y-%m-%d)\","
    echo "\"benches\": ["
    printf '%s' "$ENTRIES" | sed '$ s/},$/}/'
    echo "]"
    echo "}"
} > "$OUT"

echo "run_all: wrote $OUT (${FAILURES} failure(s))"
exit "$((FAILURES > 0 ? 1 : 0))"
