#!/usr/bin/env bash
# Run every experiment binary (bench/e*) and emit a machine-readable
# BENCH_<date>.json with wall-clock time, simulated cycles (from the
# "total-sim-cycles:" tally each bench prints at exit), and simulation
# throughput in cycles/sec. For E7 and E8 the --ff-stress mode is also
# timed with and without FB_NO_FAST_FORWARD=1 to report the speedup of
# the event-driven fast-forward core over the legacy per-cycle loop,
# and E17's checkpoint on/off overhead deltas are copied into their
# own JSON entry.
#
# Usage: bench/run_all.sh [build-dir]     (default: build)
# Output: BENCH_<YYYYMMDD>.json in the current directory, or $BENCH_OUT.
# Exit status: 0 all benches ran, 1 a bench failed, 2 setup error
# (missing build dir or missing experiment binary).
set -euo pipefail

BUILD_DIR="${1:-build}"
BENCH_DIR="$BUILD_DIR/bench"
OUT="${BENCH_OUT:-BENCH_$(date +%Y%m%d).json}"

if [ ! -d "$BENCH_DIR" ]; then
    echo "run_all: no such directory: $BENCH_DIR" >&2
    echo "run_all: build first: cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
    exit 2
fi

# The full experiment roster. A binary missing from a built tree means
# the build is stale or broken; fail loudly instead of silently
# benchmarking a subset.
EXPECTED="e1_section8_encore e2_fig7_if_statements e3_fig9_lexforward
e4_fig11_static_sched e5_fig12_runtime_sched e6_fig5_loop_distribution
e7_scaling e8_hotspot e9_drift_tolerance e10_microbench
e11_pipeline_ablation e12_encoding_ablation e13_cycle_shrinking
e14_selfsched_runtime e15_sync_latency e16_fault_overhead
e17_snapshot_overhead e18_campaign_throughput e19_shard_scaling
e20_dispatch_overhead e21_service_overhead e22_topology_scaling"
for name in $EXPECTED; do
    if [ ! -x "$BENCH_DIR/$name" ]; then
        echo "run_all: missing experiment binary: $BENCH_DIR/$name" >&2
        echo "run_all: rebuild with: cmake --build $BUILD_DIR -j" >&2
        exit 2
    fi
done

# The reverse check: a built e*-binary absent from the roster would be
# silently skipped — a new experiment someone forgot to register here.
# Fail loudly so the roster and the build stay in lockstep.
for path in "$BENCH_DIR"/e*; do
    [ -x "$path" ] && [ ! -d "$path" ] || continue
    bin=$(basename "$path")
    case "$bin" in
      *.*) continue ;;  # objects/artifacts, not experiment binaries
    esac
    case " $(echo $EXPECTED) " in
      *" $bin "*) ;;
      *)
        echo "run_all: built experiment binary not in roster: $bin" >&2
        echo "run_all: add it to EXPECTED in bench/run_all.sh" >&2
        exit 2
        ;;
    esac
done

FAILURES=0
ENTRIES=""

# run_one <json-name> <cmd...> — time the command, parse its cycle
# tally, and append a JSON entry. Sets WALL_S/SIM_CYCLES/STATUS/OUT_TEXT.
run_one() {
    local name="$1"
    shift
    local start end
    start=$(date +%s%N)
    # set -e must not kill the harness on a failing bench; capture the
    # exit status explicitly and report it in the JSON instead.
    if OUT_TEXT="$("$@" 2>&1)"; then
        STATUS=0
    else
        STATUS=$?
    fi
    end=$(date +%s%N)
    WALL_S=$(awk -v s="$start" -v e="$end" 'BEGIN{printf "%.6f", (e - s) / 1e9}')
    SIM_CYCLES=$(printf '%s\n' "$OUT_TEXT" |
        awk '/^total-sim-cycles:/ {c += $2} END {printf "%.0f", c + 0}')
    local cps
    cps=$(awk -v c="$SIM_CYCLES" -v w="$WALL_S" \
        'BEGIN{printf "%.0f", (w > 0) ? c / w : 0}')
    if [ "$STATUS" -ne 0 ]; then
        FAILURES=$((FAILURES + 1))
        echo "run_all: FAIL $name (exit $STATUS)" >&2
        printf '%s\n' "$OUT_TEXT" | tail -n 5 >&2
    fi
    ENTRIES="$ENTRIES  {\"name\": \"$name\", \"wall_seconds\": $WALL_S, \"sim_cycles\": $SIM_CYCLES, \"cycles_per_sec\": $cps, \"exit_status\": $STATUS},
"
    echo "run_all: $name wall=${WALL_S}s cycles=$SIM_CYCLES cycles/sec=$cps"
}

# Every table-style experiment binary. e10_microbench is a
# google-benchmark harness over the real-thread software barriers (no
# simulated machine, so its sim_cycles tally is 0 by construction).
for name in $EXPECTED; do
    run_one "$name" "$BENCH_DIR/$name"
    if [ "$name" = "e17_snapshot_overhead" ] && [ "$STATUS" -eq 0 ]; then
        # Copy E17's checkpoint on/off deltas into their own entry so
        # dashboards can track snapshot cost without table-scraping.
        mem_pct=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^snapshot-overhead-pct:/ {print $2; exit}')
        durable_pct=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^snapshot-durable-overhead-pct:/ {print $2; exit}')
        snap_bytes=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^snapshot-bytes-per-checkpoint:/ {print $2; exit}')
        da_pct=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^snapshot-delta-async-overhead-pct:/ {print $2; exit}')
        dd_pct=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^snapshot-delta-durable-overhead-pct:/ {print $2; exit}')
        ds_pct=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^snapshot-delta-sync-overhead-pct:/ {print $2; exit}')
        delta_bytes=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^snapshot-delta-bytes-per-checkpoint:/ {print $2; exit}')
        if [ -z "$mem_pct" ] || [ -z "$durable_pct" ] ||
           [ -z "$da_pct" ] || [ -z "$dd_pct" ]; then
            echo "run_all: FAIL e17_snapshot_overhead: missing overhead tally lines" >&2
            FAILURES=$((FAILURES + 1))
        else
            ENTRIES="$ENTRIES  {\"name\": \"e17_snapshot_overhead_delta\", \"snapshot_overhead_pct\": $mem_pct, \"snapshot_durable_overhead_pct\": $durable_pct, \"snapshot_bytes_per_checkpoint\": ${snap_bytes:-0}, \"snapshot_delta_async_overhead_pct\": $da_pct, \"snapshot_delta_durable_overhead_pct\": $dd_pct, \"snapshot_delta_sync_overhead_pct\": ${ds_pct:-0}, \"snapshot_delta_bytes_per_checkpoint\": ${delta_bytes:-0}},
"
            echo "run_all: snapshot overhead: delta-async ${da_pct}%, delta-durable ${dd_pct}%, full-durable ${durable_pct}%"
        fi
    fi
    if [ "$name" = "e19_shard_scaling" ] && [ "$STATUS" -eq 0 ]; then
        # Copy E19's shard-scaling tallies into their own entry so the
        # perf-regression gate can track the sharded executor's speedup
        # over the sequential core without table-scraping.
        sp2=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^shard-speedup-2:/ {print $2; exit}')
        sp4=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^shard-speedup-4:/ {print $2; exit}')
        sp8=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^shard-speedup-8:/ {print $2; exit}')
        if [ -z "$sp2" ] || [ -z "$sp4" ] || [ -z "$sp8" ]; then
            echo "run_all: FAIL e19_shard_scaling: missing shard-speedup tally lines" >&2
            FAILURES=$((FAILURES + 1))
        else
            ENTRIES="$ENTRIES  {\"name\": \"e19_shard_delta\", \"shard_speedup_2\": $sp2, \"shard_speedup_4\": $sp4, \"shard_speedup_8\": $sp8},
"
            echo "run_all: shard scaling: ${sp2}x @2, ${sp4}x @4, ${sp8}x @8 shards"
        fi
    fi
    if [ "$name" = "e20_dispatch_overhead" ] && [ "$STATUS" -eq 0 ]; then
        # Copy E20's backend-comparison tallies into their own entry so
        # the perf-regression gate can track the pre-decoded dispatch
        # speedup over the legacy interpreter without table-scraping.
        disp_speedup=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^dispatch-speedup:/ {print $2; exit}')
        disp_dec=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^dispatch-cycles-per-sec-decoded:/ {print $2; exit}')
        disp_leg=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^dispatch-cycles-per-sec-legacy:/ {print $2; exit}')
        if [ -z "$disp_speedup" ] || [ -z "$disp_dec" ] || [ -z "$disp_leg" ]; then
            echo "run_all: FAIL e20_dispatch_overhead: missing dispatch tally lines" >&2
            FAILURES=$((FAILURES + 1))
        else
            ENTRIES="$ENTRIES  {\"name\": \"e20_dispatch_delta\", \"dispatch_speedup\": $disp_speedup, \"cycles_per_sec_decoded\": $disp_dec, \"cycles_per_sec_legacy\": $disp_leg},
"
            echo "run_all: dispatch overhead: decoded ${disp_dec} cycles/sec (${disp_speedup}x over legacy interpreter)"
        fi
    fi
    if [ "$name" = "e21_service_overhead" ] && [ "$STATUS" -eq 0 ]; then
        # Copy E21's service-overhead tallies into their own entry so
        # the perf gate can track the cost of process isolation and of
        # one injected worker-death recovery without table-scraping.
        svc_rate=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^service-scenarios-per-sec:/ {print $2; exit}')
        svc_ovh=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^service-overhead-pct:/ {print $2; exit}')
        svc_rec=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^service-recovery-overhead-pct:/ {print $2; exit}')
        if [ -z "$svc_rate" ] || [ -z "$svc_ovh" ] || [ -z "$svc_rec" ]; then
            echo "run_all: FAIL e21_service_overhead: missing service tally lines" >&2
            FAILURES=$((FAILURES + 1))
        else
            ENTRIES="$ENTRIES  {\"name\": \"e21_service_delta\", \"service_scenarios_per_sec\": $svc_rate, \"service_overhead_pct\": $svc_ovh, \"service_recovery_overhead_pct\": $svc_rec},
"
            echo "run_all: service overhead: ${svc_ovh}% over in-process engine, recovery +${svc_rec}%"
        fi
    fi
    if [ "$name" = "e22_topology_scaling" ] && [ "$STATUS" -eq 0 ]; then
        # Copy E22's topology tallies into their own entry. The
        # topology config string is part of the entry: the perf gate
        # refuses to compare against a baseline measured under a
        # different set of network shapes (same contract as the shard
        # settings baked into e19's workload).
        topo_adv=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^topology-sync-advantage-1024:/ {print $2; exit}')
        topo_ratio=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^topology-oactive-ratio:/ {print $2; exit}')
        topo_cfg=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^topology-config:/ {print $2; exit}')
        if [ -z "$topo_adv" ] || [ -z "$topo_ratio" ] || [ -z "$topo_cfg" ]; then
            echo "run_all: FAIL e22_topology_scaling: missing topology tally lines" >&2
            FAILURES=$((FAILURES + 1))
        else
            ENTRIES="$ENTRIES  {\"name\": \"e22_topology_delta\", \"topologies\": \"$topo_cfg\", \"sync_advantage_1024\": $topo_adv, \"oactive_ratio\": $topo_ratio},
"
            echo "run_all: topology scaling: sync advantage ${topo_adv}x at 1024 procs, O(active) rate ratio ${topo_ratio}"
        fi
    fi
    if [ "$name" = "e18_campaign_throughput" ] && [ "$STATUS" -eq 0 ]; then
        # Copy E18's campaign-engine throughput tallies into their own
        # entry so the perf-regression gate (and dashboards) can track
        # scenarios/sec without table-scraping.
        eng_rate=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^campaign-scenarios-per-sec-engine:/ {print $2; exit}')
        leg_rate=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^campaign-scenarios-per-sec-legacy:/ {print $2; exit}')
        camp_speedup=$(printf '%s\n' "$OUT_TEXT" |
            awk '/^campaign-speedup:/ {print $2; exit}')
        if [ -z "$eng_rate" ] || [ -z "$leg_rate" ] || [ -z "$camp_speedup" ]; then
            echo "run_all: FAIL e18_campaign_throughput: missing campaign tally lines" >&2
            FAILURES=$((FAILURES + 1))
        else
            ENTRIES="$ENTRIES  {\"name\": \"e18_campaign_delta\", \"scenarios_per_sec_engine\": $eng_rate, \"scenarios_per_sec_legacy\": $leg_rate, \"campaign_speedup\": $camp_speedup},
"
            echo "run_all: campaign engine: ${eng_rate} scenarios/sec (${camp_speedup}x over legacy batch loop)"
        fi
    fi
done

# Fast-forward speedup probes: same workload, event-driven core vs
# the legacy per-cycle loop. The cycle counts must match exactly (the
# equivalence invariant); only the wall-clock may differ.
for stress in e7_scaling e8_hotspot; do
    run_one "${stress}_ff_stress" "$BENCH_DIR/$stress" --ff-stress
    ff_wall=$WALL_S
    ff_cycles=$SIM_CYCLES
    run_one "${stress}_ff_stress_legacy" \
        env FB_NO_FAST_FORWARD=1 "$BENCH_DIR/$stress" --ff-stress
    legacy_wall=$WALL_S
    legacy_cycles=$SIM_CYCLES
    if [ "$ff_cycles" != "$legacy_cycles" ]; then
        echo "run_all: FAIL ${stress}_ff_stress: cycle mismatch ff=$ff_cycles legacy=$legacy_cycles" >&2
        FAILURES=$((FAILURES + 1))
    fi
    speedup=$(awk -v f="$ff_wall" -v l="$legacy_wall" \
        'BEGIN{printf "%.2f", (f > 0) ? l / f : 0}')
    ENTRIES="$ENTRIES  {\"name\": \"${stress}_ff_speedup\", \"ff_wall_seconds\": $ff_wall, \"legacy_wall_seconds\": $legacy_wall, \"ff_speedup\": $speedup, \"sim_cycles\": $ff_cycles},
"
    echo "run_all: ${stress} fast-forward speedup: ${speedup}x"
done

{
    echo "{"
    echo "\"date\": \"$(date +%Y-%m-%d)\","
    echo "\"benches\": ["
    printf '%s' "$ENTRIES" | sed '$ s/},$/}/'
    echo "]"
    echo "}"
} > "$OUT"

echo "run_all: wrote $OUT (${FAILURES} failure(s))"
[ "$FAILURES" -eq 0 ] || exit 1
exit 0
