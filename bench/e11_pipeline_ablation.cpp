/**
 * @file
 * Experiment E11 (ablation) — pipelining and the fuzzy barrier.
 *
 * Section 2: "If the processors in the system are pipelined, repeated
 * synchronization is less likely to degrade the performance of the
 * pipeline because the synchronization point is not exactly
 * specified. Thus upon reaching a barrier, the processor may be able
 * to issue instructions even if the synchronization has not taken
 * place."
 *
 * In a pipelined machine, readiness fires only when the last
 * non-barrier instruction *drains* from the pipe (depth-1 cycles
 * after issue), so every episode of a point barrier pays the drain
 * latency; a barrier region overlaps the drain with useful issue
 * slots. Sweep pipeline depth x region size and report the total
 * barrier wait per episode.
 */

#include "common.hh"

namespace
{

using namespace fb;
using namespace fb::bench;

constexpr int kProcs = 4;
constexpr int kEpisodes = 40;
constexpr int kWork = 30;

double
waitPerEpisode(int depth, int region)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = kProcs;
    cfg.memWords = 1 << 14;
    cfg.pipelineDepth = depth;
    cfg.jitterMean = 1.0;
    cfg.seed = 11;
    applyEnvOverrides(cfg);
    sim::Machine machine(cfg);
    for (int p = 0; p < kProcs; ++p)
        machine.loadProgram(
            p, core::buildBarrierLoop(core::SimBarrierKind::HardwareFuzzy,
                                      kProcs, p, kEpisodes, kWork,
                                      region));
    auto r = runTallied(machine);
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E11 run failed\n");
        std::exit(1);
    }
    return static_cast<double>(r.totalBarrierWait()) /
           static_cast<double>(kEpisodes) / kProcs;
}

} // namespace

static int
benchMain()
{
    fb::Table table("E11 (ablation, section 2): barrier wait per "
                    "episode per processor vs pipeline depth and "
                    "region size");
    table.setHeader({"pipeline depth", "region 0", "region 16",
                     "region 64"});

    for (int depth : {1, 2, 4, 8, 16}) {
        table.row()
            .cell(static_cast<std::int64_t>(depth))
            .cell(waitPerEpisode(depth, 0), 1)
            .cell(waitPerEpisode(depth, 16), 1)
            .cell(waitPerEpisode(depth, 64), 1);
    }
    table.print(std::cout);

    printClaim("a point barrier pays the pipeline drain latency on "
               "every episode (wait grows with depth); a barrier "
               "region hides the drain behind issued region "
               "instructions, so pipelining stops hurting");
    return 0;
}

int
main()
{
    int rc = 1;
    fb::bench::runSteadyState(1000, [&rc] { rc = benchMain(); });
    return rc;
}
