/**
 * @file
 * Experiment E17 (robustness ablation) — checkpoint/restore cost.
 *
 * Checkpointing is only usable on long campaigns if it is (a) exact —
 * a checkpointing run simulates the very same cycles as a plain run —
 * and (b) cheap enough to leave on. This bench runs one workload six
 * ways: snapshots off, full snapshots serialized to memory (the pure
 * encoding cost), full snapshots durably persisted through the
 * generation store (encode + fsync + rename), dirty-page delta chains
 * captured into the background writer with the run timed alone (the
 * default campaign configuration: Machine::run never blocks on I/O),
 * the same but timing through writer drain (run plus every fsync —
 * the cost to full durability), and delta chains persisted inline
 * (the sync-delta rung of the degradation ladder). The simulated
 * cycle counts must be identical across all six (exactness is
 * asserted, not assumed); only the wall clock may differ.
 *
 * The runs are short (~15 ms), so a single overhead percentage is
 * scheduler noise. Every rep runs ALL modes back-to-back and the
 * reported overhead compares best-of-rep floors: host noise is purely
 * additive, so the minimum wall time per mode is the stable estimator
 * of its true cost, and interleaving keeps slow background neighbors
 * from biasing one mode's floor. The delta tallies are gated
 * absolutely by bench/check_perf_regression.sh.
 */

#include "common.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <iterator>
#include <memory>
#include <vector>

#include <unistd.h>

#include "snapshot/format.hh"
#include "snapshot/store.hh"
#include "snapshot/writer.hh"

namespace
{

using namespace fb;
using namespace fb::bench;

constexpr int kProcs = 8;
constexpr int kEpisodes = 1500;
constexpr int kWork = 25;
constexpr int kRegion = 8;
constexpr std::uint64_t kCheckpointEvery = 10'000;
constexpr int kReps = 21;

enum class Mode
{
    Off,
    InMemory,
    Durable,
    DeltaAsync,   ///< background writer, run timed alone (non-blocking)
    DeltaDurable, ///< background writer, run + drain timed (fsync-durable)
    DeltaSync,    ///< inline save per capture (sync-delta ladder rung)
};

// Within a rep the light modes run before the fsync-heavy ones:
// even with the pre-run sync() quiesce, a mode that just pushed many
// journal commits (Durable, DeltaSync) measurably taxes whatever runs
// next on this filesystem, and the floors of the *gated* modes must
// not depend on a neighbor's dirty state.
constexpr Mode kModes[] = {Mode::Off,          Mode::InMemory,
                           Mode::DeltaAsync,   Mode::DeltaDurable,
                           Mode::Durable,      Mode::DeltaSync};
constexpr std::size_t kModeCount = std::size(kModes);

struct Sample
{
    std::uint64_t cycles = 0;
    double wallSeconds = 0.0;
    std::uint64_t snapshots = 0;
    std::uint64_t snapshotBytes = 0;
};

Sample
runOnce(Mode mode, const std::string &storeDir)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = kProcs;
    cfg.memWords = 1 << 14;
    if (mode != Mode::Off)
        cfg.checkpointEveryCycles = kCheckpointEvery;
    applyEnvOverrides(cfg);
    sim::Machine machine(cfg);
    for (int p = 0; p < kProcs; ++p)
        machine.loadProgram(
            p, core::buildBarrierLoop(core::SimBarrierKind::HardwareFuzzy,
                                      kProcs, p, kEpisodes, kWork,
                                      kRegion));

    Sample s;
    snapshot::SnapshotStore store(storeDir, 3);
    std::unique_ptr<snapshot::AsyncSnapshotWriter> writer;
    if (mode == Mode::DeltaAsync || mode == Mode::DeltaDurable) {
        writer = std::make_unique<snapshot::AsyncSnapshotWriter>(store);
        machine.setStagedCheckpointSink(
            [&s, &writer](snapshot::SnapshotHeader header,
                          std::vector<snapshot::Section> sections) {
                ++s.snapshots;
                auto v = writer->submit(std::move(header),
                                        std::move(sections));
                sim::Machine::CheckpointAck ack;
                ack.keep = v.keep;
                ack.forceFull = v.forceFull;
                ack.deltasOk = v.deltasOk;
                ack.degradation = std::move(v.degradation);
                return ack;
            });
    } else if (mode == Mode::DeltaSync) {
        machine.setStagedCheckpointSink(
            [&s, &store](snapshot::SnapshotHeader header,
                         std::vector<snapshot::Section> sections) {
                auto bytes = snapshot::assemble(header, sections);
                ++s.snapshots;
                s.snapshotBytes += bytes.size();
                std::string err;
                if (!store.save(header.generation, bytes, err)) {
                    std::fprintf(stderr, "E17 store failed: %s\n",
                                 err.c_str());
                    std::exit(1);
                }
                return sim::Machine::CheckpointAck{};
            });
    } else if (mode == Mode::InMemory) {
        machine.setCheckpointSink(
            [&s](std::uint64_t, const std::vector<std::uint8_t> &bytes) {
                ++s.snapshots;
                s.snapshotBytes += bytes.size();
                return true;
            });
    } else if (mode == Mode::Durable) {
        machine.setCheckpointSink(
            [&s, &store](std::uint64_t cycle,
                         const std::vector<std::uint8_t> &bytes) {
                ++s.snapshots;
                s.snapshotBytes += bytes.size();
                std::string err;
                if (!store.save(cycle / kCheckpointEvery, bytes, err)) {
                    std::fprintf(stderr, "E17 store failed: %s\n",
                                 err.c_str());
                    std::exit(1);
                }
                return true;
            });
    }

    const auto start = std::chrono::steady_clock::now();
    auto r = runTallied(machine);
    // DeltaAsync times the run alone — the claim under test is that
    // Machine::run never waits on stable storage (the writer overlaps
    // where the host allows it and defers every fsync regardless).
    // DeltaDurable times through drain: the full cost to having every
    // capture durable, including the batched flush.
    if (mode == Mode::DeltaDurable)
        writer->drain();
    const auto end = std::chrono::steady_clock::now();
    if (mode == Mode::DeltaAsync)
        writer->drain();
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E17 run failed\n");
        std::exit(1);
    }
    if (writer) {
        const auto ws = writer->stats();
        if (ws.dropped != 0 || ws.degradations != 0 ||
            ws.mode != snapshot::WriterMode::AsyncDelta) {
            std::fprintf(stderr,
                         "E17: background writer degraded on a "
                         "healthy disk (%s)\n",
                         ws.lastError.c_str());
            std::exit(1);
        }
    }
    s.cycles = r.cycles;
    s.wallSeconds =
        std::chrono::duration<double>(end - start).count();
    return s;
}

} // namespace

int
main()
{
    const auto storeDir =
        std::filesystem::temp_directory_path() / "fb_e17_snapshots";
    std::filesystem::remove_all(storeDir);

    fb::Table table("E17 (robustness ablation): checkpoint overhead "
                    "(8 processors, snapshot every 10000 cycles)");
    table.setHeader({"configuration", "cycles", "wall ms", "snapshots",
                     "overhead vs off %"});

    // Interleave: every rep runs all modes back-to-back, and each
    // mode keeps its best-of-reps floor. Exactness is asserted on
    // every single run.
    Sample samples[kModeCount];
    std::uint64_t refCycles = 0;
    for (int rep = 0; rep < kReps; ++rep) {
        for (std::size_t m = 0; m < kModeCount; ++m) {
            std::filesystem::remove_all(storeDir);
            // Quiesce the filesystem so no mode starts against the
            // previous mode's dirty pages — leftover writeback lands
            // inside the next timed region and skews its floor.
            ::sync();
            auto s = runOnce(kModes[m], storeDir.string());
            if (refCycles == 0)
                refCycles = s.cycles;
            if (s.cycles != refCycles) {
                std::fprintf(
                    stderr,
                    "E17: checkpointing changed the cycle count "
                    "(mode %zu rep %d: %llu, expected %llu)\n",
                    m, rep, static_cast<unsigned long long>(s.cycles),
                    static_cast<unsigned long long>(refCycles));
                return 1;
            }
            if (rep == 0 || s.wallSeconds < samples[m].wallSeconds)
                samples[m] = s;
        }
    }
    std::filesystem::remove_all(storeDir);

    double pct[kModeCount];
    for (std::size_t m = 0; m < kModeCount; ++m)
        pct[m] = 100.0 *
                 (samples[m].wallSeconds - samples[0].wallSeconds) /
                 samples[0].wallSeconds;

    static const char *const kNames[kModeCount] = {
        "snapshots off",
        "serialize only (in-memory sink)",
        "delta chain, background writer",
        "delta chain, writer + drain",
        "durable store (fsync + rename)",
        "delta chain, inline fsync",
    };
    for (std::size_t m = 0; m < kModeCount; ++m)
        table.row()
            .cell(kNames[m])
            .cell(samples[m].cycles)
            .cell(samples[m].wallSeconds * 1e3, 2)
            .cell(samples[m].snapshots)
            .cell(m == 0 ? 0.0 : pct[m], 2);

    const auto &durable = samples[4];
    const auto &deltaSync = samples[5];
    table.print(std::cout);
    std::printf("snapshot-overhead-pct: %.2f\n", pct[1]);
    std::printf("snapshot-durable-overhead-pct: %.2f\n", pct[4]);
    std::printf("snapshot-bytes-per-checkpoint: %llu\n",
                static_cast<unsigned long long>(
                    durable.snapshots != 0
                        ? durable.snapshotBytes / durable.snapshots
                        : 0));
    std::printf("snapshot-delta-async-overhead-pct: %.2f\n", pct[2]);
    std::printf("snapshot-delta-durable-overhead-pct: %.2f\n", pct[3]);
    std::printf("snapshot-delta-sync-overhead-pct: %.2f\n", pct[5]);
    std::printf("snapshot-delta-bytes-per-checkpoint: %llu\n",
                static_cast<unsigned long long>(
                    deltaSync.snapshots != 0
                        ? deltaSync.snapshotBytes / deltaSync.snapshots
                        : 0));
    printClaim("checkpointing is exact — a checkpointing run is "
               "cycle-identical to a plain run — and the dirty-page "
               "delta chain plus background writer cuts the durable "
               "cost from whole-machine fsync to a small skim off the "
               "run; the async and durable delta tallies are the "
               "gated numbers that keep checkpointing on by default "
               "in campaigns");
    return 0;
}
