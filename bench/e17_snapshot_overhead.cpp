/**
 * @file
 * Experiment E17 (robustness ablation) — checkpoint/restore cost.
 *
 * Checkpointing is only usable on long campaigns if it is (a) exact —
 * a checkpointing run simulates the very same cycles as a plain run —
 * and (b) cheap enough to leave on. This bench runs one workload three
 * ways: snapshots off, snapshots serialized to memory (the pure
 * encoding cost), and snapshots durably persisted through the
 * generation store (encode + fsync + rename). The simulated cycle
 * counts must be identical across all three (exactness is asserted,
 * not assumed); only the wall clock may differ. The host-time deltas
 * are printed as machine-parsable tally lines for bench/run_all.sh.
 */

#include "common.hh"

#include <chrono>
#include <filesystem>

#include "snapshot/store.hh"

namespace
{

using namespace fb;
using namespace fb::bench;

constexpr int kProcs = 8;
constexpr int kEpisodes = 1500;
constexpr int kWork = 25;
constexpr int kRegion = 8;
constexpr std::uint64_t kCheckpointEvery = 10'000;
constexpr int kReps = 3;

enum class Mode
{
    Off,
    InMemory,
    Durable,
};

struct Sample
{
    std::uint64_t cycles = 0;
    double wallSeconds = 0.0;
    std::uint64_t snapshots = 0;
    std::uint64_t snapshotBytes = 0;
};

Sample
runOnce(Mode mode, const std::string &storeDir)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = kProcs;
    cfg.memWords = 1 << 14;
    if (mode != Mode::Off)
        cfg.checkpointEveryCycles = kCheckpointEvery;
    applyEnvOverrides(cfg);
    sim::Machine machine(cfg);
    for (int p = 0; p < kProcs; ++p)
        machine.loadProgram(
            p, core::buildBarrierLoop(core::SimBarrierKind::HardwareFuzzy,
                                      kProcs, p, kEpisodes, kWork,
                                      kRegion));

    Sample s;
    snapshot::SnapshotStore store(storeDir, 3);
    if (mode == Mode::InMemory) {
        machine.setCheckpointSink(
            [&s](std::uint64_t, const std::vector<std::uint8_t> &bytes) {
                ++s.snapshots;
                s.snapshotBytes += bytes.size();
                return true;
            });
    } else if (mode == Mode::Durable) {
        machine.setCheckpointSink(
            [&s, &store](std::uint64_t cycle,
                         const std::vector<std::uint8_t> &bytes) {
                ++s.snapshots;
                s.snapshotBytes += bytes.size();
                std::string err;
                if (!store.save(cycle / kCheckpointEvery, bytes, err)) {
                    std::fprintf(stderr, "E17 store failed: %s\n",
                                 err.c_str());
                    std::exit(1);
                }
                return true;
            });
    }

    const auto start = std::chrono::steady_clock::now();
    auto r = runTallied(machine);
    const auto end = std::chrono::steady_clock::now();
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E17 run failed\n");
        std::exit(1);
    }
    s.cycles = r.cycles;
    s.wallSeconds =
        std::chrono::duration<double>(end - start).count();
    return s;
}

/** Best-of-kReps to damp scheduler noise; cycles must not vary. */
Sample
runMode(Mode mode, const std::string &storeDir)
{
    Sample best;
    for (int rep = 0; rep < kReps; ++rep) {
        auto s = runOnce(mode, storeDir);
        if (rep == 0 || s.wallSeconds < best.wallSeconds) {
            const std::uint64_t cycles = rep == 0 ? s.cycles : best.cycles;
            if (s.cycles != cycles) {
                std::fprintf(stderr,
                             "E17: nondeterministic cycle count\n");
                std::exit(1);
            }
            best = s;
        }
    }
    return best;
}

} // namespace

int
main()
{
    const auto storeDir =
        std::filesystem::temp_directory_path() / "fb_e17_snapshots";
    std::filesystem::remove_all(storeDir);

    fb::Table table("E17 (robustness ablation): checkpoint overhead "
                    "(8 processors, snapshot every 10000 cycles)");
    table.setHeader({"configuration", "cycles", "wall ms", "snapshots",
                     "overhead vs off %"});

    const auto off = runMode(Mode::Off, storeDir.string());
    const auto mem = runMode(Mode::InMemory, storeDir.string());
    const auto durable = runMode(Mode::Durable, storeDir.string());
    std::filesystem::remove_all(storeDir);

    // Exactness: enabling checkpoints must not change the simulation.
    if (mem.cycles != off.cycles || durable.cycles != off.cycles) {
        std::fprintf(stderr,
                     "E17: checkpointing changed the cycle count "
                     "(off=%llu mem=%llu durable=%llu)\n",
                     static_cast<unsigned long long>(off.cycles),
                     static_cast<unsigned long long>(mem.cycles),
                     static_cast<unsigned long long>(durable.cycles));
        return 1;
    }

    auto pct = [&](const Sample &s) {
        return 100.0 * (s.wallSeconds - off.wallSeconds) /
               off.wallSeconds;
    };
    auto report = [&](const char *name, const Sample &s) {
        table.row()
            .cell(name)
            .cell(s.cycles)
            .cell(s.wallSeconds * 1e3, 2)
            .cell(s.snapshots)
            .cell(&s == &off ? 0.0 : pct(s), 2);
    };
    report("snapshots off", off);
    report("serialize only (in-memory sink)", mem);
    report("durable store (fsync + rename)", durable);

    table.print(std::cout);
    std::printf("snapshot-overhead-pct: %.2f\n", pct(mem));
    std::printf("snapshot-durable-overhead-pct: %.2f\n", pct(durable));
    std::printf("snapshot-bytes-per-checkpoint: %llu\n",
                static_cast<unsigned long long>(
                    durable.snapshots != 0
                        ? durable.snapshotBytes / durable.snapshots
                        : 0));
    printClaim("checkpointing is exact — a checkpointing run is "
               "cycle-identical to a plain run — and its wall-clock "
               "cost scales with snapshot frequency and size, not "
               "with the simulation itself; the tally lines above "
               "record the measured in-memory and durable deltas");
    return 0;
}
