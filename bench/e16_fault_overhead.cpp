/**
 * @file
 * Experiment E16 (robustness ablation) — fault-injection hook cost.
 *
 * The fault subsystem is wired into the per-cycle simulator loop, so
 * its dormant cost matters: a simulator that slows down when a feature
 * is merely *available* taxes every experiment that does not use it.
 * The contract (sim/config.hh) is that a null or empty plan builds no
 * injector and the run loop is identical to the pre-fault simulator;
 * an armed watchdog adds only a per-cycle timer check, and live
 * transient faults cost only their actual injection work.
 */

#include "common.hh"

#include "fault/plan.hh"

namespace
{

using namespace fb;
using namespace fb::bench;

constexpr int kProcs = 8;
constexpr int kEpisodes = 200;
constexpr int kWork = 25;
constexpr int kRegion = 8;

std::uint64_t
runCycles(const fault::FaultPlan *plan, bool watchdog)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = kProcs;
    cfg.memWords = 1 << 14;
    cfg.faultPlan = plan;
    if (watchdog) {
        cfg.watchdog.enabled = true;
        cfg.watchdog.timeoutCycles = 10'000;
        cfg.watchdog.maxAttempts = 3;
    }
    applyEnvOverrides(cfg);
    sim::Machine machine(cfg);
    for (int p = 0; p < kProcs; ++p)
        machine.loadProgram(
            p, core::buildBarrierLoop(core::SimBarrierKind::HardwareFuzzy,
                                      kProcs, p, kEpisodes, kWork,
                                      kRegion));
    auto r = runTallied(machine);
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E16 run failed\n");
        std::exit(1);
    }
    return r.cycles;
}

} // namespace

int
main()
{
    fb::Table table("E16 (robustness ablation): dormant fault-hook "
                    "cost (8 processors, 200 episodes)");
    table.setHeader({"configuration", "cycles", "overhead vs off"});

    const std::uint64_t off = runCycles(nullptr, false);
    auto report = [&](const char *name, std::uint64_t cycles) {
        double pct = 100.0 *
                     (static_cast<double>(cycles) -
                      static_cast<double>(off)) /
                     static_cast<double>(off);
        table.row().cell(name).cell(cycles).cell(pct, 2);
    };

    fault::FaultPlan empty;
    report("no fault subsystem", off);
    report("empty plan attached", runCycles(&empty, false));
    report("watchdog armed, no faults", runCycles(nullptr, true));

    fault::FaultPlan transient;
    std::string err;
    if (!fault::FaultPlan::parse("drop@500:1:32,fliptag@900:2:3",
                                 transient, err)) {
        std::fprintf(stderr, "E16 plan parse failed: %s\n",
                     err.c_str());
        return 1;
    }
    report("two transient faults", runCycles(&transient, true));

    table.print(std::cout);
    printClaim("fault hooks are free when unused: an empty plan is "
               "cycle-identical to the pre-fault simulator, an armed "
               "watchdog adds no simulated cycles, and transient "
               "faults cost only the synchronization delay they "
               "actually inject");
    return 0;
}
