/**
 * @file
 * Experiment E10 — google-benchmark microbenchmarks of the real-thread
 * split-phase barrier implementations (the section 8 software
 * approach, modern edition): point synchronization cost per episode
 * for each algorithm, and the split (arrive / overlapped work / wait)
 * against the same work done after a point barrier.
 *
 * Note: on an oversubscribed host (fewer cores than threads) absolute
 * numbers are dominated by scheduling; the relative effect of
 * overlapping work inside the barrier region is still visible.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <limits>
#include <thread>
#include <vector>

#include "swbarrier/factory.hh"

namespace
{

using fb::sw::BarrierKind;
using fb::sw::makeBarrier;

/** Run one barrier episode per iteration across T-1 helper threads
 * plus the benchmark thread. */
void
runEpisodes(benchmark::State &state, BarrierKind kind, int threads,
            int region_work)
{
    auto bar = makeBarrier(kind, threads);
    // Threads proceed in barrier lockstep, so shutdown is an agreed
    // final episode number: after its measured loop the main thread
    // publishes last_episode = E+1 (strictly before arriving for
    // episode E+1), runs that one extra episode, and every helper —
    // which cannot be past episode E at that point — observes the
    // bound at its next boundary and exits after the same episode.
    constexpr long kNoLimit = std::numeric_limits<long>::max();
    std::atomic<long> last_episode{kNoLimit};

    auto body = [&](int tid) {
        bar->arrive(tid);
        long local = 0;
        for (int k = 0; k < region_work; ++k)
            local += k;
        benchmark::DoNotOptimize(local);
        bar->wait(tid);
    };

    std::vector<std::thread> helpers;
    for (int t = 1; t < threads; ++t) {
        helpers.emplace_back([&, t] {
            for (long e = 1;
                 e <= last_episode.load(std::memory_order_acquire); ++e)
                body(t);
        });
    }

    long episodes = 0;
    for (auto _ : state) {
        body(0);
        ++episodes;
    }

    last_episode.store(episodes + 1, std::memory_order_release);
    body(0);  // the agreed final episode
    for (auto &h : helpers)
        h.join();
}

void
BM_PointBarrier(benchmark::State &state)
{
    auto kind = static_cast<BarrierKind>(state.range(0));
    int threads = static_cast<int>(state.range(1));
    runEpisodes(state, kind, threads, 0);
    state.SetLabel(fb::sw::barrierKindName(kind));
}

void
BM_FuzzyBarrierWithRegionWork(benchmark::State &state)
{
    auto kind = static_cast<BarrierKind>(state.range(0));
    int threads = static_cast<int>(state.range(1));
    // 2000 iterations of region work overlap the synchronization.
    runEpisodes(state, kind, threads, 2000);
    state.SetLabel(fb::sw::barrierKindName(kind));
}

} // namespace

BENCHMARK(BM_PointBarrier)
    ->ArgsProduct({{static_cast<long>(BarrierKind::Centralized),
                    static_cast<long>(BarrierKind::Tree),
                    static_cast<long>(BarrierKind::Dissemination),
                    static_cast<long>(BarrierKind::Std)},
                   {2, 4}})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_FuzzyBarrierWithRegionWork)
    ->ArgsProduct({{static_cast<long>(BarrierKind::Centralized),
                    static_cast<long>(BarrierKind::Dissemination)},
                   {2, 4}})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
