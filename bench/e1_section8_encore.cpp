/**
 * @file
 * Experiment E1 — the paper's section 8 result.
 *
 * "A software implementation of the fuzzy barrier on a four processor
 * Encore Multimax has been carried out. For nested loops, similar to
 * those in Fig. 9, the cost of synchronizing four processors was
 * reduced from 10,000 usec to 300 usec as the size of the barrier
 * region was increased from zero instructions to half of the total
 * instructions in the loop body. The cost of barrier synchronization
 * is mainly due to context saves and restores for the tasks that must
 * be stalled."
 *
 * Reproduction: four simulated processors run a fixed-size loop body;
 * a fraction f of the body is placed in the barrier region (the rest
 * is non-barrier work). Execution drift comes from per-instruction
 * jitter and cache misses. The stall model is Software: a stalled
 * task pays a context save, and a context restore after
 * synchronization — the Encore's task-switching library behaviour.
 * Reported cost is the average barrier overhead per episode per
 * processor, scaled at 10 MHz (0.1 us/cycle).
 */

#include "common.hh"

namespace
{

using namespace fb;
using namespace fb::bench;

struct Point
{
    double regionFraction;
    double usPerSync;
    std::uint64_t contextSwitches;
    std::uint64_t stalledEpisodes;
};

Point
measure(double fraction)
{
    const int procs = 4;
    const int body_instrs = 400;
    const int episodes = 40;
    const int region_instrs = static_cast<int>(fraction * body_instrs);
    const int work_instrs = body_instrs - region_instrs;

    sim::MachineConfig cfg;
    cfg.numProcessors = procs;
    cfg.memWords = 1 << 14;
    cfg.jitterMean = 0.25;  // cache-miss / memory drift per instruction
    cfg.seed = 20260707;
    // Unix task switch on a 10 MHz machine: ~6.5 ms for a save or a
    // restore (scheduler + context + queue manipulation).
    cfg.stall = sim::StallModel::software(65'000, 65'000);
    cfg.maxCycles = 2'000'000'000;

    applyEnvOverrides(cfg);
    sim::Machine machine(cfg);
    for (int p = 0; p < procs; ++p) {
        machine.loadProgram(
            p, core::buildBarrierLoop(core::SimBarrierKind::HardwareFuzzy,
                                      procs, p, episodes, work_instrs,
                                      region_instrs));
    }
    auto r = runTallied(machine);
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E1 run failed (deadlock/timeout)\n");
        std::exit(1);
    }

    // The Encore barrier library performs flag maintenance and task
    // bookkeeping on every episode even when nothing stalls; the
    // paper's 300 us floor at large regions is exactly this residual
    // (the stall component is "mainly" the cost, not all of it).
    const double library_cycles = 3'000.0;

    Point out;
    out.regionFraction = fraction;
    double overhead_cycles =
        static_cast<double>(r.totalBarrierWait()) /
            static_cast<double>(episodes) / procs +
        library_cycles;
    out.usPerSync = overhead_cycles * usPerCycle;
    out.contextSwitches = totalContextSwitches(r);
    out.stalledEpisodes = totalStalledEpisodes(r);
    return out;
}

} // namespace

int
main()
{
    fb::Table table(
        "E1 (section 8): sync cost of 4 processors vs barrier region "
        "size, software (Encore-style) stall model");
    table.setHeader({"region/body", "us/sync/proc", "ctx switches",
                     "stalled episodes"});

    for (double f : {0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50}) {
        auto p = measure(f);
        table.row()
            .cell(p.regionFraction, 2)
            .cell(p.usPerSync, 1)
            .cell(p.contextSwitches)
            .cell(p.stalledEpisodes);
    }
    table.print(std::cout);

    fb::bench::printClaim(
        "cost drops ~10,000 us -> ~300 us as the region grows from 0 to "
        "half the loop body; cost is dominated by context saves/restores "
        "of stalled tasks");
    return 0;
}
