/**
 * @file
 * Experiment E18 (infrastructure ablation) — campaign engine
 * throughput.
 *
 * Large fuzz/verification campaigns are dominated not by simulated
 * cycles but by per-scenario setup: spawning worker threads per
 * batch, re-assembling generated programs, and constructing a fresh
 * sim::Machine (memory, caches, RNG streams) for every scenario. This
 * bench times one campaign of many small generated scenarios two
 * ways:
 *
 *   legacy — the pre-engine batch loop: every batch of N scenarios
 *            spawns N threads and joins them (a slow scenario stalls
 *            its whole batch), and every scenario re-assembles its
 *            programs and constructs a fresh machine;
 *   engine — exec::runCampaign on the work-stealing pool with
 *            per-worker machine recycling and shared program
 *            interning.
 *
 * Every scenario's result fingerprint (RunResult counters + final
 * registers) must be identical across the legacy loop, the engine at
 * full width, and the engine at jobs=1 — recycled machines and
 * interned programs must be observably invisible; only the wall
 * clock may differ. Machine-parsable tally lines report scenarios/sec
 * for both modes and the speedup for bench/run_all.sh.
 */

#include "common.hh"

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "exec/campaign.hh"
#include "verify/generator.hh"
#include "verify/scenario.hh"

namespace
{

using namespace fb;
using namespace fb::bench;

/** Distinct generated scenarios; the campaign cycles through them so
 * program interning has repeats to pay off on, as a real fuzz sweep's
 * corpus replay or shrink loop does. */
constexpr std::uint64_t kDistinctSeeds = 48;
constexpr std::uint64_t kScenarios = 1536;
constexpr std::uint64_t kMaxCycles = 200'000;

sim::MachineConfig
configFor(const verify::Scenario &sc)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = sc.procs();
    // Campaign-scale machines: a production sweep runs with the full
    // shared memory and the coherent caches on, which is exactly the
    // construction cost (zero-filled memory, per-processor caches,
    // sharer tables) that recycling avoids.
    cfg.memWords = 1 << 18;
    cfg.cache.enabled = true;
    cfg.seed = 1;
    cfg.maxCycles = kMaxCycles;
    cfg.interruptPeriod = sc.interruptPeriod;
    cfg.isrEntry = sc.isrEntry;
    return cfg;
}

/** FNV-1a over everything the campaign observes about one run. */
std::uint64_t
fingerprint(const sim::RunResult &r, sim::Machine &m, int procs)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    mix(r.cycles);
    mix(r.deadlocked ? 1 : 0);
    mix(r.timedOut ? 1 : 0);
    mix(r.syncEvents);
    mix(r.busRequests);
    mix(r.memAccesses);
    for (const auto &p : r.perProcessor) {
        mix(p.instructions);
        mix(p.barrierEpisodes);
        mix(p.barrierWaitCycles);
    }
    for (int p = 0; p < procs; ++p)
        for (int reg = 0; reg < isa::numRegisters; ++reg)
            mix(static_cast<std::uint64_t>(m.processor(p).reg(reg)));
    return h;
}

std::atomic<std::uint64_t> gSimCycles{0};

/** One scenario on a ready machine; returns the result fingerprint. */
std::uint64_t
runScenario(const verify::Scenario &sc,
            const std::vector<isa::Program> &programs, sim::Machine &m)
{
    for (int p = 0; p < sc.procs(); ++p)
        m.loadProgram(p, programs[static_cast<std::size_t>(p)]);
    auto r = m.run();
    gSimCycles.fetch_add(r.cycles, std::memory_order_relaxed);
    return fingerprint(r, m, sc.procs());
}

/** Assemble under the scenario's encoding, aborting on failure
 * (generated programs must assemble; anything else is a harness bug). */
std::vector<isa::Program>
assembleFresh(const verify::Scenario &sc)
{
    std::vector<isa::Program> programs;
    for (int p = 0; p < sc.procs(); ++p) {
        isa::Program prog =
            assembleOrDie(sc.sources[static_cast<std::size_t>(p)]);
        if (sc.encoding == verify::Encoding::Markers)
            prog = prog.toMarkerEncoding();
        programs.push_back(std::move(prog));
    }
    return programs;
}

/** The pre-engine design: batches of @p jobs scenarios, one freshly
 * spawned thread per scenario, a join barrier per batch, and fresh
 * assembly + machine construction every time. */
double
runLegacy(const std::vector<verify::Scenario> &scenarios, int jobs,
          std::vector<std::uint64_t> &fingerprints)
{
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t batch = 0; batch < scenarios.size();
         batch += static_cast<std::size_t>(jobs)) {
        const std::size_t end = std::min(
            batch + static_cast<std::size_t>(jobs), scenarios.size());
        std::vector<std::thread> threads;
        threads.reserve(end - batch);
        for (std::size_t i = batch; i < end; ++i) {
            threads.emplace_back([&, i] {
                const auto &sc = scenarios[i];
                auto programs = assembleFresh(sc);
                sim::Machine m(configFor(sc));
                fingerprints[i] = runScenario(sc, programs, m);
            });
        }
        for (auto &t : threads)
            t.join();
    }
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

/** The campaign engine: work-stealing pool, per-worker machine
 * recycling, shared program interning, seed-ordered delivery. */
double
runEngine(const std::vector<verify::Scenario> &scenarios, int jobs,
          std::vector<std::uint64_t> &fingerprints,
          exec::CampaignStats *stats_out)
{
    exec::CampaignOptions opt;
    opt.jobs = jobs;
    const auto start = std::chrono::steady_clock::now();
    auto stats = exec::runCampaign(
        scenarios.size(), opt,
        [&](std::uint64_t i, exec::WorkerContext &ctx) {
            const auto &sc = scenarios[i];
            std::vector<isa::Program> programs;
            for (int p = 0; p < sc.procs(); ++p) {
                auto interned = ctx.programs.intern(
                    sc.sources[static_cast<std::size_t>(p)]);
                if (!interned->ok) {
                    std::fprintf(stderr, "E18 assembly failed: %s\n",
                                 interned->error.c_str());
                    std::exit(1);
                }
                programs.push_back(
                    sc.encoding == verify::Encoding::Markers
                        ? interned->markers
                        : interned->bits);
            }
            auto lease = ctx.machines.acquire(configFor(sc));
            exec::ItemResult r;
            fingerprints[i] = runScenario(sc, programs, *lease);
            return r;
        },
        [](std::uint64_t, const exec::ItemResult &) {});
    const auto stop = std::chrono::steady_clock::now();
    if (stats_out)
        *stats_out = stats;
    return std::chrono::duration<double>(stop - start).count();
}

} // namespace

int
main(int argc, char **argv)
{
    int jobs =
        static_cast<int>(std::thread::hardware_concurrency());
    if (jobs < 1)
        jobs = 1;
    for (int i = 1; i < argc - 1; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0)
            jobs = std::atoi(argv[i + 1]);
    }
    if (jobs < 1) {
        std::fprintf(stderr, "E18: bad --jobs\n");
        return 2;
    }

    // Generate the campaign's scenarios up front: generation cost is
    // identical for both modes, so it stays outside the timed loops.
    std::vector<verify::Scenario> scenarios;
    scenarios.reserve(kScenarios);
    for (std::uint64_t i = 0; i < kScenarios; ++i)
        scenarios.push_back(
            verify::render(verify::randomSpec(1 + i % kDistinctSeeds)));

    std::vector<std::uint64_t> legacyFps(kScenarios, 0);
    std::vector<std::uint64_t> engineFps(kScenarios, 0);
    std::vector<std::uint64_t> serialFps(kScenarios, 0);

    const double legacySecs = runLegacy(scenarios, jobs, legacyFps);
    exec::CampaignStats stats;
    const double engineSecs =
        runEngine(scenarios, jobs, engineFps, &stats);
    // jobs=1 must observe the identical campaign — the ordered-output
    // guarantee the engine's consumers (fbfuzz --jobs) rely on.
    const double serialSecs = runEngine(scenarios, 1, serialFps, nullptr);

    for (std::uint64_t i = 0; i < kScenarios; ++i) {
        if (legacyFps[i] != engineFps[i] ||
            engineFps[i] != serialFps[i]) {
            std::fprintf(
                stderr,
                "E18: fingerprint mismatch at scenario %llu "
                "(legacy=%llx engine=%llx jobs1=%llx)\n",
                static_cast<unsigned long long>(i),
                static_cast<unsigned long long>(legacyFps[i]),
                static_cast<unsigned long long>(engineFps[i]),
                static_cast<unsigned long long>(serialFps[i]));
            return 1;
        }
    }

    const double legacyRate = kScenarios / legacySecs;
    const double engineRate = kScenarios / engineSecs;

    fb::Table table("E18 (infrastructure ablation): campaign engine vs "
                    "legacy batch loop (" +
                    std::to_string(kScenarios) + " scenarios, " +
                    std::to_string(jobs) + " jobs)");
    table.setHeader({"mode", "wall s", "scenarios/sec", "machines built",
                     "machines reused", "programs assembled"});
    table.row()
        .cell("legacy batch loop")
        .cell(legacySecs, 3)
        .cell(legacyRate, 0)
        .cell(kScenarios)
        .cell(static_cast<std::uint64_t>(0))
        .cell(kScenarios);
    table.row()
        .cell("campaign engine")
        .cell(engineSecs, 3)
        .cell(engineRate, 0)
        .cell(stats.machinesBuilt)
        .cell(stats.machinesReused)
        .cell(stats.programsAssembled);
    table.row()
        .cell("campaign engine (jobs=1)")
        .cell(serialSecs, 3)
        .cell(kScenarios / serialSecs, 0)
        .cell("-")
        .cell("-")
        .cell("-");
    table.print(std::cout);

    std::printf("campaign-scenarios-per-sec-engine: %.0f\n", engineRate);
    std::printf("campaign-scenarios-per-sec-legacy: %.0f\n", legacyRate);
    std::printf("campaign-speedup: %.2f\n", legacySecs / engineSecs);
    std::printf("campaign-tasks-stolen: %llu\n",
                static_cast<unsigned long long>(stats.tasksStolen));
    std::printf("total-sim-cycles: %llu\n",
                static_cast<unsigned long long>(gSimCycles.load()));
    printClaim("campaign throughput on small scenarios is setup-bound, "
               "not simulation-bound: recycling fully-constructed "
               "machines, interning generated programs, and replacing "
               "the per-batch join barrier with a work-stealing pool "
               "multiplies scenarios/sec without changing any "
               "scenario's result fingerprint");
    return 0;
}
