/**
 * @file
 * Experiment E9 — section 2's central claim:
 *
 * "The tolerance of the mechanism to the variation in the rate at
 * which each stream progresses is limited by the number of
 * instructions in the barrier regions. Thus, the larger the barrier
 * regions, the less likely it is that the processors will stall."
 *
 * Four processors, per-instruction execution jitter (the cache-miss
 * drift of section 1), region size sweep x drift intensity sweep.
 * Reported: fraction of episodes in which any processor stalled, and
 * average stall cycles per episode.
 */

#include "common.hh"

namespace
{

using namespace fb;
using namespace fb::bench;

constexpr int kProcs = 4;
constexpr int kEpisodes = 50;
constexpr int kWork = 60;

struct Row
{
    double stallFraction;
    double waitPerEpisode;
};

Row
measure(int region, double jitter)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = kProcs;
    cfg.memWords = 1 << 14;
    cfg.jitterMean = jitter;
    cfg.seed = 4242;
    cfg.maxCycles = 500'000'000;
    applyEnvOverrides(cfg);
    sim::Machine machine(cfg);
    for (int p = 0; p < kProcs; ++p)
        machine.loadProgram(
            p, core::buildBarrierLoop(core::SimBarrierKind::HardwareFuzzy,
                                      kProcs, p, kEpisodes, kWork,
                                      region));
    auto r = runTallied(machine);
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E9 run failed\n");
        std::exit(1);
    }
    Row out;
    out.stallFraction = static_cast<double>(totalStalledEpisodes(r)) /
                        (static_cast<double>(kEpisodes) * kProcs);
    out.waitPerEpisode = static_cast<double>(r.totalBarrierWait()) /
                         static_cast<double>(kEpisodes);
    return out;
}

} // namespace

static int
benchMain()
{
    fb::Table table("E9 (section 2): stall likelihood vs barrier region "
                    "size under execution drift (4 procs, 60-instr "
                    "work section)");
    table.setHeader({"region instrs", "jitter 0.5", "jitter 1.0",
                     "jitter 2.0", "wait/episode @2.0"});

    for (int region : {0, 4, 8, 16, 32, 64, 128}) {
        auto low = measure(region, 0.5);
        auto mid = measure(region, 1.0);
        auto high = measure(region, 2.0);
        table.row()
            .cell(static_cast<std::int64_t>(region))
            .cell(low.stallFraction, 3)
            .cell(mid.stallFraction, 3)
            .cell(high.stallFraction, 3)
            .cell(high.waitPerEpisode, 1);
    }
    table.print(std::cout);

    printClaim("stall probability falls monotonically as the barrier "
               "region grows, for every drift intensity; a region a few "
               "times larger than the typical drift eliminates stalls");
    return 0;
}

int
main()
{
    int rc = 1;
    fb::bench::runSteadyState(300, [&rc] { rc = benchMain(); });
    return rc;
}
