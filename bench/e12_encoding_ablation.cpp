/**
 * @file
 * Experiment E12 (ablation) — the two region encodings of section 6.
 *
 * "A single bit in each instruction is used... An alternative and
 * less expensive approach is to use special instructions that when
 * executed, indicate an entry or exit from a barrier region."
 *
 * The bit encoding spends an opcode bit but no execution time; the
 * marker encoding is cheaper in hardware but executes BRENTER/BREXIT
 * instructions — and, for regions reached through branches, an extra
 * marker per branch target. This bench quantifies the run-time cost
 * of the marker encoding as a function of how many region boundaries
 * an iteration has, plus the static code-size growth.
 */

#include "common.hh"

namespace
{

using namespace fb;
using namespace fb::bench;

constexpr int kProcs = 4;
constexpr int kEpisodes = 50;

struct Row
{
    std::uint64_t bitCycles;
    std::uint64_t markerCycles;
    std::size_t bitSize;
    std::size_t markerSize;
};

/** A loop with @p regions_per_iter separate barrier regions. */
std::string
streamSource(int procs, int regions_per_iter, int work, int region)
{
    std::ostringstream oss;
    oss << "settag 1\n";
    oss << "setmask " << ((1 << procs) - 1) << "\n";
    oss << "li r1, 0\nli r2, " << kEpisodes / regions_per_iter << "\n";
    oss << "loop:\n";
    for (int s = 0; s < regions_per_iter; ++s) {
        for (int k = 0; k < work; ++k)
            oss << "addi r3, r3, 1\n";
        oss << ".region 1\n";
        for (int k = 0; k < region; ++k)
            oss << "addi r4, r4, 1\n";
        if (s + 1 == regions_per_iter) {
            oss << "addi r1, r1, 1\n";
            oss << "bne r1, r2, loop\n";
        }
        oss << ".endregion\n";
        if (s + 1 == regions_per_iter)
            oss << "nop\n";  // crossing point after the backedge region
    }
    oss << "halt\n";
    return oss.str();
}

Row
measure(int regions_per_iter, int work, int region)
{
    auto run = [&](bool marker) {
        sim::MachineConfig cfg;
        cfg.numProcessors = kProcs;
        cfg.memWords = 1 << 14;
        applyEnvOverrides(cfg);
        sim::Machine machine(cfg);
        std::size_t size = 0;
        for (int p = 0; p < kProcs; ++p) {
            auto prog = assembleOrDie(
                streamSource(kProcs, regions_per_iter, work, region));
            if (marker)
                prog = prog.toMarkerEncoding();
            size = prog.size();
            machine.loadProgram(p, std::move(prog));
        }
        auto r = runTallied(machine);
        if (r.deadlocked || r.timedOut) {
            std::fprintf(stderr, "E12 run failed\n");
            std::exit(1);
        }
        return std::make_pair(r.cycles, size);
    };
    auto [bit_cycles, bit_size] = run(false);
    auto [marker_cycles, marker_size] = run(true);
    return {bit_cycles, marker_cycles, bit_size, marker_size};
}

} // namespace

static int
benchMain()
{
    fb::Table table("E12 (ablation, section 6): region-bit vs "
                    "BRENTER/BREXIT marker encoding");
    table.setHeader({"regions/iter", "bit cycles", "marker cycles",
                     "overhead/episode", "bit instrs", "marker instrs"});

    for (int regions : {1, 2, 5}) {
        auto row = measure(regions, 10, 8);
        double overhead =
            (static_cast<double>(row.markerCycles) -
             static_cast<double>(row.bitCycles)) /
            kEpisodes;
        table.row()
            .cell(static_cast<std::int64_t>(regions))
            .cell(row.bitCycles)
            .cell(row.markerCycles)
            .cell(overhead, 2)
            .cell(static_cast<std::uint64_t>(row.bitSize))
            .cell(static_cast<std::uint64_t>(row.markerSize));
    }
    table.print(std::cout);

    printClaim("the marker encoding trades an opcode bit for ~2 "
               "executed marker instructions per region boundary per "
               "episode (plus extra markers at branch targets); the "
               "bit encoding has zero execution overhead");
    return 0;
}

int
main()
{
    int rc = 1;
    fb::bench::runSteadyState(5000, [&rc] { rc = benchMain(); });
    return rc;
}
