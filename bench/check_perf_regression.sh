#!/usr/bin/env bash
# Perf-regression gate: compare a freshly produced bench JSON (from
# bench/run_all.sh) against the committed baseline and fail if a
# tracked headline metric regressed by more than the threshold.
#
# Tracked metrics:
#   e18_campaign_delta.scenarios_per_sec_engine  (campaign engine)
#   e7_scaling_ff_speedup.ff_speedup             (fast-forward core)
#   e8_hotspot_ff_speedup.ff_speedup             (fast-forward core)
#   e19_shard_delta.shard_speedup_4              (sharded executor)
#
# Usage: bench/check_perf_regression.sh <current.json> [baseline.json]
#        (baseline defaults to the newest BENCH_*.json in bench/baselines/)
# Env:   FB_PERF_REGRESSION_PCT  allowed drop, percent (default 20)
# Exit:  0 within threshold, 1 regression found, 2 setup error.
set -euo pipefail

CURRENT="${1:-}"
if [ -z "$CURRENT" ] || [ ! -f "$CURRENT" ]; then
    echo "usage: $0 <current.json> [baseline.json]" >&2
    exit 2
fi

BASELINE="${2:-}"
if [ -z "$BASELINE" ]; then
    BASELINE=$(ls -1 "$(dirname "$0")"/baselines/BENCH_*.json 2>/dev/null | sort | tail -n 1 || true)
fi
if [ -z "$BASELINE" ] || [ ! -f "$BASELINE" ]; then
    echo "check_perf_regression: no baseline JSON found" >&2
    exit 2
fi

THRESHOLD="${FB_PERF_REGRESSION_PCT:-20}"

python3 - "$BASELINE" "$CURRENT" "$THRESHOLD" <<'EOF'
import json
import sys

baseline_path, current_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])

# (entry name, metric key) -> higher is better; a drop beyond the
# threshold fails the gate. Gains never fail.
TRACKED = [
    ("e18_campaign_delta", "scenarios_per_sec_engine"),
    ("e7_scaling_ff_speedup", "ff_speedup"),
    ("e8_hotspot_ff_speedup", "ff_speedup"),
    ("e19_shard_delta", "shard_speedup_4"),
]


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {entry["name"]: entry for entry in doc.get("benches", [])}


baseline = load(baseline_path)
current = load(current_path)

failures = []
for name, key in TRACKED:
    if name not in baseline or key not in baseline[name]:
        print(f"check_perf_regression: baseline lacks {name}.{key}; skipping")
        continue
    if name not in current or key not in current[name]:
        failures.append(f"{name}.{key}: missing from current run")
        continue
    base = float(baseline[name][key])
    cur = float(current[name][key])
    if base <= 0:
        continue
    drop_pct = 100.0 * (base - cur) / base
    verdict = "REGRESSED" if drop_pct > threshold else "ok"
    print(f"check_perf_regression: {name}.{key}: baseline={base:g} "
          f"current={cur:g} drop={drop_pct:.1f}% [{verdict}]")
    if drop_pct > threshold:
        failures.append(
            f"{name}.{key}: {base:g} -> {cur:g} "
            f"({drop_pct:.1f}% drop > {threshold:g}% allowed)")

if failures:
    print("check_perf_regression: FAIL", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("check_perf_regression: all tracked metrics within "
      f"{threshold:g}% of baseline")
EOF
