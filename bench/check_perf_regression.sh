#!/usr/bin/env bash
# Perf-regression gate: compare a freshly produced bench JSON (from
# bench/run_all.sh) against the committed baseline and fail if a
# tracked headline metric regressed by more than the threshold.
#
# Tracked metrics (higher is better, compared against the baseline):
#   e18_campaign_delta.scenarios_per_sec_engine  (campaign engine)
#   e7_scaling_ff_speedup.ff_speedup             (fast-forward core)
#   e8_hotspot_ff_speedup.ff_speedup             (fast-forward core)
#   e19_shard_delta.shard_speedup_4              (sharded executor)
#   e20_dispatch_delta.dispatch_speedup          (pre-decoded backend)
#   e22_topology_delta.oactive_ratio             (O(active) bookkeeping)
#
# Configuration binding: e22's entry records the topology set it was
# measured under; a baseline recorded under a different set is a hard
# failure (not a skip) — comparing across network shapes would make
# the numbers meaningless, exactly like comparing across shard counts.
#
# Absolute budgets (lower is better, compared against a fixed target —
# these keep checkpointing cheap enough to stay on by default). The
# targets are percentages of run wall-clock, so they are calibrated to
# the execution backend: the threaded-code dispatch made the runs
# themselves ~5x faster while the capture cost stayed absolute, so the
# budgets were rebased when the backend landed (2.4x/1.9x, far below
# the run speedup — the absolute capture cost went down too).
#   e17_snapshot_overhead_delta.snapshot_delta_async_overhead_pct   <= 12
#   e17_snapshot_overhead_delta.snapshot_delta_durable_overhead_pct <= 28
# The same noise threshold applies: the gate fails only when the
# measured value exceeds target * (1 + threshold/100).
#
# Usage: bench/check_perf_regression.sh <current.json> [baseline.json]
#        (baseline defaults to the newest BENCH_*.json in bench/baselines/)
# Env:   FB_PERF_REGRESSION_PCT  allowed drop / budget headroom, percent
#        (default 20)
# Exit:  0 within threshold, 1 regression found, 2 setup error.
set -euo pipefail

CURRENT="${1:-}"
if [ -z "$CURRENT" ] || [ ! -f "$CURRENT" ]; then
    echo "usage: $0 <current.json> [baseline.json]" >&2
    exit 2
fi

BASELINE="${2:-}"
if [ -z "$BASELINE" ]; then
    BASELINE=$(ls -1 "$(dirname "$0")"/baselines/BENCH_*.json 2>/dev/null | sort | tail -n 1 || true)
fi
if [ -z "$BASELINE" ] || [ ! -f "$BASELINE" ]; then
    echo "check_perf_regression: no baseline JSON found" >&2
    exit 2
fi

THRESHOLD="${FB_PERF_REGRESSION_PCT:-20}"

python3 - "$BASELINE" "$CURRENT" "$THRESHOLD" <<'EOF'
import json
import sys

baseline_path, current_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])

# (entry name, metric key) -> higher is better; a drop beyond the
# threshold fails the gate. Gains never fail.
TRACKED = [
    ("e18_campaign_delta", "scenarios_per_sec_engine"),
    ("e7_scaling_ff_speedup", "ff_speedup"),
    ("e8_hotspot_ff_speedup", "ff_speedup"),
    ("e19_shard_delta", "shard_speedup_4"),
    ("e20_dispatch_delta", "dispatch_speedup"),
    ("e22_topology_delta", "oactive_ratio"),
]

# (entry name, config key) -> must be string-equal between baseline
# and current whenever both entries exist; a mismatch is a hard
# failure, never a silent skip.
BOUND_CONFIG = [
    ("e22_topology_delta", "topologies"),
]

# (entry name, metric key, target) -> lower is better, judged against
# the fixed target rather than the baseline: an absolute budget cannot
# ratchet upward through repeated baseline refreshes. The value may
# exceed the target by the noise threshold before the gate fails.
BUDGETED = [
    ("e17_snapshot_overhead_delta", "snapshot_delta_async_overhead_pct",
     12.0),
    ("e17_snapshot_overhead_delta",
     "snapshot_delta_durable_overhead_pct", 28.0),
]


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {entry["name"]: entry for entry in doc.get("benches", [])}


baseline = load(baseline_path)
current = load(current_path)

failures = []
for name, key in BOUND_CONFIG:
    if name not in baseline or key not in baseline[name]:
        continue  # old baseline predates the entry; TRACKED will skip it
    if name not in current or key not in current[name]:
        failures.append(f"{name}.{key}: missing from current run")
        continue
    base = str(baseline[name][key])
    cur = str(current[name][key])
    if base != cur:
        failures.append(
            f"{name}.{key}: baseline measured under '{base}' but the "
            f"current run used '{cur}' — refresh the baseline instead "
            "of comparing across topologies")

for name, key in TRACKED:
    if name not in baseline or key not in baseline[name]:
        print(f"check_perf_regression: baseline lacks {name}.{key}; skipping")
        continue
    if name not in current or key not in current[name]:
        failures.append(f"{name}.{key}: missing from current run")
        continue
    base = float(baseline[name][key])
    cur = float(current[name][key])
    if base <= 0:
        continue
    drop_pct = 100.0 * (base - cur) / base
    verdict = "REGRESSED" if drop_pct > threshold else "ok"
    print(f"check_perf_regression: {name}.{key}: baseline={base:g} "
          f"current={cur:g} drop={drop_pct:.1f}% [{verdict}]")
    if drop_pct > threshold:
        failures.append(
            f"{name}.{key}: {base:g} -> {cur:g} "
            f"({drop_pct:.1f}% drop > {threshold:g}% allowed)")

for name, key, target in BUDGETED:
    if name not in current or key not in current[name]:
        failures.append(f"{name}.{key}: missing from current run")
        continue
    cur = float(current[name][key])
    allowed = target * (1.0 + threshold / 100.0)
    verdict = "OVER BUDGET" if cur > allowed else "ok"
    print(f"check_perf_regression: {name}.{key}: current={cur:g} "
          f"budget={target:g} (+{threshold:g}% headroom = {allowed:g}) "
          f"[{verdict}]")
    if cur > allowed:
        failures.append(
            f"{name}.{key}: {cur:g} > {allowed:g} "
            f"(budget {target:g} + {threshold:g}% headroom)")

if failures:
    print("check_perf_regression: FAIL", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("check_perf_regression: all tracked metrics within "
      f"{threshold:g}% of baseline")
EOF
