/**
 * @file
 * Experiment E3 — Figs. 9/10: lexically forward dependences.
 *
 * The loop a[j][i] = a[j-1][i-1] + i*j, outer loop unrolled once,
 * needs two barriers per unrolled iteration: one for the lexically
 * forward dependence (processor i reads a[j][i-1] from processor
 * i-1), one for the loop-carried dependence. The Fig. 10 reordered
 * code pushes all address arithmetic into the two barrier regions,
 * so "the code is tolerant of significant drift in execution of
 * different streams". The baseline uses single-NOP (point) barrier
 * regions at the same two synchronization points.
 *
 * Correctness is checked against the exact host-side recurrence on
 * every run — both versions must produce identical arrays.
 */

#include "common.hh"

namespace
{

using namespace fb;
using namespace fb::bench;

} // namespace

static int
benchMain()
{
    fb::Table table("E3 (Figs. 9/10): two-barrier loop, reordered "
                    "regions vs point barriers, under drift");
    table.setHeader({"procs", "jitter", "version", "correct",
                     "stalled episodes", "wait cycles", "total cycles"});

    for (int n : {2, 4, 8}) {
        for (double jitter : {0.0, 2.0, 5.0}) {
            core::LexForwardWorkload wl(n, 20);
            sim::MachineConfig cfg;
            cfg.numProcessors = n;
            cfg.memWords = 1 << 15;
            cfg.jitterMean = jitter;
            cfg.seed = 31337;
            applyEnvOverrides(cfg);

            auto fuzzy = core::runLexForward(wl, cfg, true);
            auto point = core::runLexForward(wl, cfg, false);
            tallyCycles(fuzzy.result);
            tallyCycles(point.result);

            table.row()
                .cell(static_cast<std::int64_t>(n))
                .cell(jitter, 1)
                .cell("point")
                .cell(point.correct ? "yes" : "NO")
                .cell(totalStalledEpisodes(point.result))
                .cell(point.result.totalBarrierWait())
                .cell(point.result.cycles);
            table.row()
                .cell(static_cast<std::int64_t>(n))
                .cell(jitter, 1)
                .cell("fig10-reordered")
                .cell(fuzzy.correct ? "yes" : "NO")
                .cell(totalStalledEpisodes(fuzzy.result))
                .cell(fuzzy.result.totalBarrierWait())
                .cell(fuzzy.result.cycles);
        }
    }
    table.print(std::cout);

    printClaim("the barrier regions for the loop contain a substantial "
               "number of instructions and hence the code is tolerant of "
               "significant drift in execution of different streams "
               "(section 7.2); both versions compute identical results");
    return 0;
}

int
main()
{
    int rc = 1;
    fb::bench::runSteadyState(2000, [&rc] { rc = benchMain(); });
    return rc;
}
