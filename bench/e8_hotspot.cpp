/**
 * @file
 * Experiment E8 — section 1/6: hot-spot accesses.
 *
 * "Hot-spot accesses are avoided as the mechanism does not rely upon
 * shared memory to achieve synchronization." The centralized software
 * barrier hammers one counter word and one release flag; the
 * dissemination barrier spreads its flags (each with a single writer);
 * the hardware barrier performs no shared-memory synchronization
 * traffic at all. The simulator counts per-word accesses and shared
 * bus traffic.
 */

#include "common.hh"

namespace
{

using namespace fb;
using namespace fb::bench;

constexpr int kEpisodes = 25;
constexpr int kWork = 10;

struct Traffic
{
    std::uint64_t memAccesses;
    std::uint64_t hotSpot;
    std::uint64_t busRequests;
    std::uint64_t busQueueDelay;
};

Traffic
measure(core::SimBarrierKind kind, int procs)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = procs;
    cfg.memWords = 1 << 14;
    cfg.maxCycles = 500'000'000;
    applyEnvOverrides(cfg);
    sim::Machine machine(cfg);
    for (int p = 0; p < procs; ++p)
        machine.loadProgram(p, core::buildBarrierLoop(kind, procs, p,
                                                      kEpisodes, kWork,
                                                      4));
    auto r = runTallied(machine);
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E8 run failed\n");
        std::exit(1);
    }
    return {r.memAccesses, r.hotSpotAccesses, r.busRequests,
            r.busQueueDelay};
}

/**
 * --ff-stress: like E7's, a showcase for the event-driven core. The
 * hardware-fuzzy barrier performs no shared-memory traffic, so with
 * a slow broadcast network (syncLatency 2048) the bus sits idle and
 * every core waits out the propagation delay each episode — long
 * pure-wait stretches the fast-forward skips in one jump.
 */
int
ffStress()
{
    constexpr int procs = 64;
    constexpr int episodes = 150;
    constexpr int work = 10;
    sim::MachineConfig cfg;
    cfg.numProcessors = procs;
    cfg.memWords = 1 << 14;
    cfg.maxCycles = 500'000'000;
    cfg.syncLatency = 2048;
    applyEnvOverrides(cfg);
    sim::Machine machine(cfg);
    for (int p = 0; p < procs; ++p)
        machine.loadProgram(
            p, core::buildBarrierLoop(core::SimBarrierKind::HardwareFuzzy,
                                      procs, p, episodes, work,
                                      /*region_instrs=*/4));
    auto r = runTallied(machine);
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E8 --ff-stress run failed\n");
        return 1;
    }
    std::printf("E8 ff-stress: procs=%d episodes=%d syncLatency=%u "
                "cycles=%llu memAccesses=%llu\n",
                procs, episodes, cfg.syncLatency,
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.memAccesses));
    return 0;
}

} // namespace

static int
benchMain()
{
    fb::Table table("E8 (sections 1/6): shared-memory traffic of "
                    "synchronization, 25 episodes");
    table.setHeader({"procs", "barrier", "mem accesses",
                     "hottest word", "bus requests", "bus queue delay"});

    for (int procs : {4, 8, 16, 32}) {
        for (auto kind : {core::SimBarrierKind::Centralized,
                          core::SimBarrierKind::Dissemination,
                          core::SimBarrierKind::HardwareFuzzy}) {
            auto t = measure(kind, procs);
            table.row()
                .cell(static_cast<std::int64_t>(procs))
                .cell(core::simBarrierKindName(kind))
                .cell(t.memAccesses)
                .cell(t.hotSpot)
                .cell(t.busRequests)
                .cell(t.busQueueDelay);
        }
    }
    table.print(std::cout);

    printClaim("the centralized barrier concentrates O(P) accesses per "
               "episode on single words (hot spot) and serializes on "
               "the bus; dissemination spreads them; the hardware fuzzy "
               "barrier needs no shared-memory traffic (its only "
               "accesses are the programs' own result stores)");
    return 0;
}

int
main(int argc, char **argv)
{
    // --ff-stress is its own timed probe (run_all.sh runs it with
    // and without FB_NO_FAST_FORWARD), so it stays a single run.
    if (argc > 1 && std::string(argv[1]) == "--ff-stress")
        return ffStress();
    int rc = 1;
    fb::bench::runSteadyState(500, [&rc] { rc = benchMain(); });
    return rc;
}
