/**
 * @file
 * Experiment E13 — cycle shrinking on the fuzzy barrier machine.
 *
 * Section 1: "Application of transformations such as cycle shrinking
 * depend heavily upon use of barriers. Availability of an efficient
 * barrier mechanism makes their application practical."
 *
 * Workload: the doacross recurrence a[i] = a[i-d] + i with dependence
 * distance d. Cycle shrinking executes groups of d consecutive
 * iterations in parallel with a barrier between groups, giving an
 * ideal speedup of d over the sequential loop — if the barrier is
 * cheap enough. The table reports the measured speedup for the
 * hardware fuzzy barrier (region = next group's address arithmetic)
 * versus the simulated shared-counter software barrier, for several
 * distances. Every run's array is verified against the exact host
 * recurrence.
 */

#include "common.hh"
#include "compiler/transforms.hh"

namespace
{

using namespace fb;
using namespace fb::bench;

constexpr int kTrip = 96;
constexpr std::int64_t kBase = 512;  // array base address

/** Host reference. */
std::vector<std::int64_t>
reference(int distance)
{
    std::vector<std::int64_t> a(static_cast<std::size_t>(kTrip) + 64, 0);
    for (int i = 0; i < kTrip; ++i) {
        std::int64_t prev =
            i >= distance ? a[static_cast<std::size_t>(i - distance)] : 0;
        a[static_cast<std::size_t>(i)] = prev + i;
    }
    return a;
}

/**
 * Body: a[i] = f(a[i-d]) + i where f is ~24 cycles of arithmetic
 * (cycle-shrinking candidates are compute-bearing loop bodies; with a
 * pure load/store body the experiment would measure memory bandwidth,
 * not synchronization). i is in r1; clobbers r20..r23.
 */
void
emitBody(std::ostringstream &oss, int distance)
{
    oss << "addi r20, r1, " << (kBase - distance) << "\n";  // &a[i-d]
    oss << "ld r21, 0(r20)\n";
    for (int k = 0; k < 12; ++k) {
        oss << "addi r21, r21, 1\n";
        oss << "addi r21, r21, -1\n";
    }
    oss << "add r22, r21, r1\n";
    oss << "addi r23, r1, " << kBase << "\n";               // &a[i]
    oss << "st r22, 0(r23)\n";
}

/** Sequential single-processor version. */
std::string
sequentialSource(int distance)
{
    std::ostringstream oss;
    oss << "li r1, 0\nli r2, " << kTrip << "\n";
    oss << "loop:\n";
    emitBody(oss, distance);
    oss << "addi r1, r1, 1\n";
    oss << "bne r1, r2, loop\n";
    oss << "halt\n";
    return oss.str();
}

/**
 * Cycle-shrunk version for processor @p self of @p procs == distance:
 * group g executes iteration g*d + self; groups separated by the
 * chosen barrier. With the fuzzy barrier, the next group's index and
 * address arithmetic live in the region.
 */
std::string
shrunkSource(int distance, int self, bool fuzzy,
             const core::SwBarrierLayout &layout)
{
    const int groups = (kTrip + distance - 1) / distance;
    std::ostringstream oss;
    if (fuzzy) {
        oss << "settag 1\n";
        oss << "setmask " << ((1ll << distance) - 1) << "\n";
    } else {
        oss << "li r19, " << distance << "\n";  // P for the sw barrier
    }
    oss << "li r9, " << self << "\n";   // i = g*d + self
    oss << "li r2, " << groups << "\n";
    oss << "li r8, 0\n";                // g
    oss << "loop:\n";
    // i = g*d + self
    oss << "muli r1, r8, " << distance << "\n";
    oss << "add r1, r1, r9\n";
    emitBody(oss, distance);
    if (fuzzy) {
        oss << ".region 1\n";
        // The group counter increment and backedge — plus slack the
        // compiler could fill with the next group's address math.
        oss << "addi r4, r4, 1\n";
        oss << "addi r4, r4, 1\n";
        oss << "addi r8, r8, 1\n";
        oss << "bne r8, r2, loop\n";
        oss << ".endregion\n";
    } else {
        // Simulated centralized software barrier (counter + sense).
        oss << "li r24, 1\n";
        oss << "sub r25, r24, r25\n";
        oss << "faa r21, " << layout.countAddr << "(r0), r24\n";
        oss << "addi r22, r21, 1\n";
        oss << "bne r22, r19, bspin\n";
        oss << "st r0, " << layout.countAddr << "(r0)\n";
        oss << "st r25, " << layout.senseAddr << "(r0)\n";
        oss << "jmp bdone\n";
        oss << "bspin:\n";
        oss << "ld r26, " << layout.senseAddr << "(r0)\n";
        oss << "bne r26, r25, bspin\n";
        oss << "bdone:\n";
        oss << "addi r8, r8, 1\n";
        oss << "bne r8, r2, loop\n";
    }
    oss << "halt\n";
    return oss.str();
}

struct Row
{
    std::uint64_t cycles;
    bool correct;
};

Row
runShrunk(int distance, bool fuzzy)
{
    core::SwBarrierLayout layout;
    sim::MachineConfig cfg;
    cfg.numProcessors = distance;
    cfg.memWords = 2048;
    cfg.maxCycles = 100'000'000;
    cfg.busKind = sim::BusKind::Banked;
    applyEnvOverrides(cfg);
    sim::Machine m(cfg);
    for (int p = 0; p < distance; ++p)
        m.loadProgram(p,
                      assembleOrDie(shrunkSource(distance, p, fuzzy,
                                                 layout)));
    auto r = runTallied(m);
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E13 run failed (d=%d)\n", distance);
        std::exit(1);
    }
    auto ref = reference(distance);
    bool ok = true;
    for (int i = 0; i < kTrip; ++i)
        ok = ok && m.memory().peek(static_cast<std::size_t>(kBase + i)) ==
                       ref[static_cast<std::size_t>(i)];
    return {r.cycles, ok};
}

std::uint64_t
runSequential(int distance)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = 1;
    cfg.memWords = 2048;
    cfg.busKind = sim::BusKind::Banked;
    applyEnvOverrides(cfg);
    sim::Machine m(cfg);
    m.loadProgram(0, assembleOrDie(sequentialSource(distance)));
    auto r = runTallied(m);
    return r.cycles;
}

} // namespace

static int
benchMain()
{
    // Sanity-check the transform's grouping once.
    auto groups = fb::compiler::cycleShrink(10, 4);
    if (groups.size() != 3 || groups[0].size() != 4 ||
        groups[2].size() != 2) {
        std::fprintf(stderr, "cycleShrink grouping unexpected\n");
        return 1;
    }

    fb::Table table("E13 (section 1): cycle shrinking of a[i] = a[i-d] "
                    "+ i, 96 iterations, d processors");
    table.setHeader({"distance d", "sequential", "shrunk+fuzzy",
                     "speedup", "shrunk+sw-barrier", "speedup",
                     "correct"});

    for (int d : {2, 4, 8, 16}) {
        auto seq = runSequential(d);
        auto fuzzy = runShrunk(d, true);
        auto sw = runShrunk(d, false);
        table.row()
            .cell(static_cast<std::int64_t>(d))
            .cell(seq)
            .cell(fuzzy.cycles)
            .cell(static_cast<double>(seq) /
                      static_cast<double>(fuzzy.cycles),
                  2)
            .cell(sw.cycles)
            .cell(static_cast<double>(seq) /
                      static_cast<double>(sw.cycles),
                  2)
            .cell(fuzzy.correct && sw.correct ? "yes" : "NO");
    }
    table.print(std::cout);

    printClaim("with a near-free barrier, cycle shrinking attains "
               "speedup approaching the dependence distance d; with a "
               "shared-counter software barrier, per-group overhead "
               "eats a large share of the gain — exactly why the paper "
               "says cheap barriers make the transformation practical");
    return 0;
}

int
main()
{
    int rc = 1;
    fb::bench::runSteadyState(2000, [&rc] { rc = benchMain(); });
    return rc;
}
