/**
 * @file
 * Experiment E14 — genuine run-time self-scheduling in the machine.
 *
 * Section 7.4 builds on processor self-scheduling [Tang & Yew]: when
 * iteration counts/costs are unknown at compile time, processors grab
 * iterations from a shared index at run time. Here the grabbing is
 * real: an atomic fetch-and-add on a shared index word inside the
 * simulated machine, iterations with strongly non-uniform cost, ended
 * by a fuzzy barrier. Compared against a static block split of the
 * same loop.
 *
 * This quantifies both effects the paper's sources describe: dynamic
 * grabbing balances the finish times (lower makespan), and the shared
 * index is itself a (mild) hot spot whose FAA traffic the simulator
 * counts.
 */

#include "common.hh"

namespace
{

using namespace fb;
using namespace fb::bench;

constexpr int kProcs = 4;
constexpr int kIters = 64;
constexpr std::int64_t kIndexAddr = 8;

/**
 * Iteration body whose cost grows with i: iteration i spins
 * 4 + 6*(i >> 3) units (so a static block split leaves the last
 * processor with ~10x the first one's work). i is in r1.
 */
void
emitBody(std::ostringstream &oss, int label_salt)
{
    oss << "li r20, 3\n";
    oss << "shr r21, r1, r20\n";
    oss << "muli r21, r21, 6\n";
    oss << "addi r21, r21, 4\n";  // cost
    oss << "li r22, 0\n";
    oss << "w" << label_salt << ":\n";
    oss << "addi r3, r3, 1\n";
    oss << "addi r22, r22, 1\n";
    oss << "blt r22, r21, w" << label_salt << "\n";
}

/** Self-scheduled: grab iterations with FAA until exhausted. */
std::string
selfSchedSource()
{
    std::ostringstream oss;
    oss << "settag 1\n";
    oss << "setmask " << ((1 << kProcs) - 1) << "\n";
    oss << "li r2, " << kIters << "\n";
    oss << "li r9, 1\n";
    oss << "grab:\n";
    oss << "faa r1, " << kIndexAddr << "(r0), r9\n";
    oss << "bge r1, r2, finish\n";
    emitBody(oss, 0);
    oss << "jmp grab\n";
    oss << "finish:\n";
    oss << ".region 1\n";
    oss << "nop\n";
    oss << ".endregion\n";
    oss << "st r3, 100(r0)\n";
    oss << "halt\n";
    return oss.str();
}

/** Static block split: processor p runs [p*16, p*16+16). */
std::string
staticSource(int self)
{
    const int chunk = kIters / kProcs;
    std::ostringstream oss;
    oss << "settag 1\n";
    oss << "setmask " << ((1 << kProcs) - 1) << "\n";
    oss << "li r1, " << self * chunk << "\n";
    oss << "li r2, " << (self + 1) * chunk << "\n";
    oss << "loop:\n";
    emitBody(oss, 0);
    oss << "addi r1, r1, 1\n";
    oss << "blt r1, r2, loop\n";
    oss << ".region 1\n";
    oss << "nop\n";
    oss << ".endregion\n";
    oss << "st r3, 100(r0)\n";
    oss << "halt\n";
    return oss.str();
}

struct Row
{
    std::uint64_t cycles;
    std::uint64_t idle;
    std::uint64_t hotSpot;
};

Row
measure(bool self_sched)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = kProcs;
    cfg.memWords = 4096;
    cfg.maxCycles = 50'000'000;
    cfg.busKind = sim::BusKind::Banked;
    applyEnvOverrides(cfg);
    sim::Machine m(cfg);
    for (int p = 0; p < kProcs; ++p)
        m.loadProgram(p, assembleOrDie(self_sched ? selfSchedSource()
                                                  : staticSource(p)));
    auto r = runTallied(m);
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E14 run failed\n");
        std::exit(1);
    }
    return {r.cycles, r.totalBarrierWait(), r.hotSpotAccesses};
}

} // namespace

static int
benchMain()
{
    fb::Table table("E14 (section 7.4): run-time self-scheduling via "
                    "fetch-and-add vs static split, 64 non-uniform "
                    "iterations on 4 processors");
    table.setHeader({"schedule", "makespan cycles", "idle at barrier",
                     "hottest word"});

    auto stat = measure(false);
    auto dyn = measure(true);
    table.row()
        .cell("static block")
        .cell(stat.cycles)
        .cell(stat.idle)
        .cell(stat.hotSpot);
    table.row()
        .cell("self-sched (faa)")
        .cell(dyn.cycles)
        .cell(dyn.idle)
        .cell(dyn.hotSpot);
    table.print(std::cout);

    printClaim("run-time grabbing balances completion times (lower "
               "idle at the closing barrier and lower makespan) at the "
               "price of shared-index traffic — the trade-off behind "
               "compiler-assisted run-time scheduling");
    return 0;
}

int
main()
{
    int rc = 1;
    fb::bench::runSteadyState(10000, [&rc] { rc = benchMain(); });
    return rc;
}
