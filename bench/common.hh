/**
 * @file
 * Shared helpers for the experiment harnesses (bench/e*). Each bench
 * binary reproduces one table/figure-level claim of the paper; see
 * DESIGN.md section 3 for the experiment index and EXPERIMENTS.md for
 * paper-vs-measured results.
 */

#ifndef FB_BENCH_COMMON_HH
#define FB_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <string>

#include "core/fuzzy_barrier.hh"
#include "core/barrierprogs.hh"
#include "support/table.hh"

namespace fb::bench
{

/** Assemble or abort: bench programs are generated, so failure is a
 * harness bug. */
inline isa::Program
assembleOrDie(const std::string &src)
{
    isa::Program prog;
    std::string err;
    if (!isa::Assembler::assemble(src, prog, err)) {
        std::fprintf(stderr, "bench assembly failed: %s\n", err.c_str());
        std::exit(1);
    }
    return prog;
}

/** Simulated clock period used when reporting microseconds: the
 * Encore Multimax's NS32032 processors ran at 10 MHz, so one cycle is
 * 0.1 us. Only E1 reports in microseconds; everything else uses raw
 * cycles. */
constexpr double usPerCycle = 0.1;

/** Sum of stalled episodes over all processors. */
inline std::uint64_t
totalStalledEpisodes(const sim::RunResult &r)
{
    std::uint64_t total = 0;
    for (const auto &p : r.perProcessor)
        total += p.stalledEpisodes;
    return total;
}

/** Sum of context switches over all processors. */
inline std::uint64_t
totalContextSwitches(const sim::RunResult &r)
{
    std::uint64_t total = 0;
    for (const auto &p : r.perProcessor)
        total += p.contextSwitches;
    return total;
}

/** Print the standard bench footer naming the claim reproduced. */
inline void
printClaim(const char *claim)
{
    std::printf("\npaper claim: %s\n", claim);
}

} // namespace fb::bench

#endif // FB_BENCH_COMMON_HH
