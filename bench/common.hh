/**
 * @file
 * Shared helpers for the experiment harnesses (bench/e*). Each bench
 * binary reproduces one table/figure-level claim of the paper; see
 * DESIGN.md section 3 for the experiment index and EXPERIMENTS.md for
 * paper-vs-measured results.
 */

#ifndef FB_BENCH_COMMON_HH
#define FB_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <string>

#include "core/fuzzy_barrier.hh"
#include "core/barrierprogs.hh"
#include "sim/machine.hh"
#include "support/table.hh"

namespace fb::bench
{

/** Running total of simulated cycles over every run in this bench
 * process. Printed at exit as a machine-parsable tally line so
 * bench/run_all.sh can turn wall-clock time into cycles/sec. */
inline std::uint64_t &
simCycleTally()
{
    static std::uint64_t tally = 0;
    return tally;
}

/** Environment knobs honoured by every bench: FB_NO_FAST_FORWARD=1
 * forces the legacy per-cycle loop (MachineConfig::fastForward off)
 * so run_all.sh can measure the fast-forward speedup on identical
 * workloads. */
inline void
applyEnvOverrides(sim::MachineConfig &cfg)
{
    const char *v = std::getenv("FB_NO_FAST_FORWARD");
    if (v != nullptr && v[0] == '1')
        cfg.fastForward = false;
}

/** Fold one run's cycle count into the process tally; the first call
 * arms the atexit tally line. */
inline void
tallyCycles(const sim::RunResult &r)
{
    static const bool armed = [] {
        std::atexit([] {
            std::printf("total-sim-cycles: %llu\n",
                        static_cast<unsigned long long>(simCycleTally()));
        });
        return true;
    }();
    (void)armed;
    simCycleTally() += r.cycles;
}

/** Run the machine and tally its cycles. All bench executions that
 * own their Machine go through here; benches that run via a core::
 * helper call tallyCycles() on the returned result instead. */
inline sim::RunResult
runTallied(sim::Machine &machine)
{
    auto r = machine.run();
    tallyCycles(r);
    return r;
}

/** Assemble or abort: bench programs are generated, so failure is a
 * harness bug. */
inline isa::Program
assembleOrDie(const std::string &src)
{
    isa::Program prog;
    std::string err;
    if (!isa::Assembler::assemble(src, prog, err)) {
        std::fprintf(stderr, "bench assembly failed: %s\n", err.c_str());
        std::exit(1);
    }
    return prog;
}

/** Simulated clock period used when reporting microseconds: the
 * Encore Multimax's NS32032 processors ran at 10 MHz, so one cycle is
 * 0.1 us. Only E1 reports in microseconds; everything else uses raw
 * cycles. */
constexpr double usPerCycle = 0.1;

/** Sum of stalled episodes over all processors. */
inline std::uint64_t
totalStalledEpisodes(const sim::RunResult &r)
{
    std::uint64_t total = 0;
    for (const auto &p : r.perProcessor)
        total += p.stalledEpisodes;
    return total;
}

/** Sum of context switches over all processors. */
inline std::uint64_t
totalContextSwitches(const sim::RunResult &r)
{
    std::uint64_t total = 0;
    for (const auto &p : r.perProcessor)
        total += p.contextSwitches;
    return total;
}

/** Print the standard bench footer naming the claim reproduced. */
inline void
printClaim(const char *claim)
{
    std::printf("\npaper claim: %s\n", claim);
}

} // namespace fb::bench

#endif // FB_BENCH_COMMON_HH
