/**
 * @file
 * Shared helpers for the experiment harnesses (bench/e*). Each bench
 * binary reproduces one table/figure-level claim of the paper; see
 * DESIGN.md section 3 for the experiment index and EXPERIMENTS.md for
 * paper-vs-measured results.
 */

#ifndef FB_BENCH_COMMON_HH
#define FB_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>

#include <fcntl.h>
#include <unistd.h>

#include "core/fuzzy_barrier.hh"
#include "core/barrierprogs.hh"
#include "sim/machine.hh"
#include "support/table.hh"

namespace fb::bench
{

/** Running total of simulated cycles over every run in this bench
 * process. Printed at exit as a machine-parsable tally line so
 * bench/run_all.sh can turn wall-clock time into cycles/sec. */
inline std::uint64_t &
simCycleTally()
{
    static std::uint64_t tally = 0;
    return tally;
}

/** Environment knobs honoured by every bench: FB_NO_FAST_FORWARD=1
 * forces the legacy per-cycle loop (MachineConfig::fastForward off)
 * so run_all.sh can measure the fast-forward speedup on identical
 * workloads, and FB_NO_PREDECODE=1 forces the legacy instruction
 * interpreter (MachineConfig::predecode off) so the pre-decoded
 * backend can be excluded the same way. */
inline void
applyEnvOverrides(sim::MachineConfig &cfg)
{
    const char *v = std::getenv("FB_NO_FAST_FORWARD");
    if (v != nullptr && v[0] == '1')
        cfg.fastForward = false;
    v = std::getenv("FB_NO_PREDECODE");
    if (v != nullptr && v[0] == '1')
        cfg.predecode = false;
}

/** Fold one run's cycle count into the process tally; the first call
 * arms the atexit tally line. */
inline void
tallyCycles(const sim::RunResult &r)
{
    static const bool armed = [] {
        std::atexit([] {
            std::printf("total-sim-cycles: %llu\n",
                        static_cast<unsigned long long>(simCycleTally()));
        });
        return true;
    }();
    (void)armed;
    simCycleTally() += r.cycles;
}

/** Run the machine and tally its cycles. All bench executions that
 * own their Machine go through here; benches that run via a core::
 * helper call tallyCycles() on the returned result instead. */
inline sim::RunResult
runTallied(sim::Machine &machine)
{
    auto r = machine.run();
    tallyCycles(r);
    return r;
}

/**
 * Steady-state measurement loop. The first execution of @p workload
 * prints its tables as usual and is the bench's visible output; the
 * remaining repetitions re-run the identical workload with stdout
 * muted, so the process spends its wall-clock time in the simulator
 * instead of in process startup and the cycle tally — and with it
 * run_all.sh's cycles/sec — reports sustained simulation throughput
 * rather than exec/ld.so noise (the figure-scale workloads simulate
 * only a few thousand cycles each). FB_BENCH_REPS overrides the
 * bench's default repetition count; 1 restores the single-run
 * behaviour. Results are unaffected by construction: every rep is a
 * fresh machine over the same programs, and the tally sums cycles
 * across reps while the wall clock covers them all.
 */
inline void
runSteadyState(int default_reps, const std::function<void()> &workload)
{
    int reps = default_reps;
    if (const char *v = std::getenv("FB_BENCH_REPS");
        v != nullptr && v[0] != '\0') {
        reps = std::atoi(v);
        if (reps < 1)
            reps = 1;
    }
    workload();
    if (reps <= 1)
        return;
    std::cout.flush();
    std::fflush(stdout);
    const int saved = ::dup(STDOUT_FILENO);
    const int sink = ::open("/dev/null", O_WRONLY);
    if (saved < 0 || sink < 0) {
        // No muting available: better a single honest run than a
        // repeated flood of tables.
        if (saved >= 0)
            ::close(saved);
        if (sink >= 0)
            ::close(sink);
        return;
    }
    ::dup2(sink, STDOUT_FILENO);
    ::close(sink);
    for (int i = 1; i < reps; ++i)
        workload();
    std::cout.flush();
    std::fflush(stdout);
    ::dup2(saved, STDOUT_FILENO);
    ::close(saved);
}

/** Assemble or abort: bench programs are generated, so failure is a
 * harness bug. Results are memoized by source text — under the
 * steady-state rep loop each repetition re-generates identical
 * sources, and re-parsing them would make the benches measure the
 * assembler instead of the simulator. */
inline isa::Program
assembleOrDie(const std::string &src)
{
    static std::map<std::string, isa::Program> cache;
    if (auto it = cache.find(src); it != cache.end())
        return it->second;
    isa::Program prog;
    std::string err;
    if (!isa::Assembler::assemble(src, prog, err)) {
        std::fprintf(stderr, "bench assembly failed: %s\n", err.c_str());
        std::exit(1);
    }
    return cache.emplace(src, std::move(prog)).first->second;
}

/** Simulated clock period used when reporting microseconds: the
 * Encore Multimax's NS32032 processors ran at 10 MHz, so one cycle is
 * 0.1 us. Only E1 reports in microseconds; everything else uses raw
 * cycles. */
constexpr double usPerCycle = 0.1;

/** Sum of stalled episodes over all processors. */
inline std::uint64_t
totalStalledEpisodes(const sim::RunResult &r)
{
    std::uint64_t total = 0;
    for (const auto &p : r.perProcessor)
        total += p.stalledEpisodes;
    return total;
}

/** Sum of context switches over all processors. */
inline std::uint64_t
totalContextSwitches(const sim::RunResult &r)
{
    std::uint64_t total = 0;
    for (const auto &p : r.perProcessor)
        total += p.contextSwitches;
    return total;
}

/** Print the standard bench footer naming the claim reproduced. */
inline void
printClaim(const char *claim)
{
    std::printf("\npaper claim: %s\n", claim);
}

} // namespace fb::bench

#endif // FB_BENCH_COMMON_HH
