/**
 * @file
 * Experiment E6 — Fig. 5: enlarging barrier regions with loop
 * distribution.
 *
 * The inner loop body is "S1; S2" where S1 carries the loop-carried
 * dependence (it must be in the non-barrier region) and S2 is
 * independent. Without distribution only the single trailing S2
 * execution can sit in the barrier region (Fig. 5(b)); after loop
 * distribution the *entire* S2 loop forms the region (Fig. 5(c)),
 * so the region grows from c2 to (N/P)*c2 instructions and drift
 * tolerance grows with it.
 */

#include "common.hh"
#include "compiler/transforms.hh"

namespace
{

using namespace fb;
using namespace fb::bench;

constexpr int kProcs = 4;
constexpr int kOuterIters = 10;
constexpr int kItersPerProc = 8;  // inner iterations per processor
constexpr int kS1Cost = 6;        // instructions per S1 execution
constexpr int kS2Cost = 6;        // instructions per S2 execution

std::string
streamSource(bool distributed, int lcg_seed)
{
    std::ostringstream oss;
    oss << "settag 1\n";
    oss << "setmask " << ((1 << kProcs) - 1) << "\n";
    oss << "li r1, 0\n";
    oss << "li r2, " << kOuterIters << "\n";
    oss << "li r10, " << lcg_seed << "\n";
    oss << "li r11, 18\n";
    oss << "li r12, 7\n";  // drift mask: 0..7 extra instructions
    oss << "loop:\n";

    // Data-dependent drift: an LCG adds 0..7 units of extra work per
    // outer iteration, different on each processor.
    oss << "muli r10, r10, 1103515245\n";
    oss << "addi r10, r10, 12345\n";
    oss << "shr r13, r10, r11\n";
    oss << "and r13, r13, r12\n";
    oss << "drift:\n";
    oss << "beq r13, r0, driftdone\n";
    oss << "addi r13, r13, -1\n";
    oss << "addi r6, r6, 1\n";
    oss << "addi r6, r6, 1\n";
    oss << "jmp drift\n";
    oss << "driftdone:\n";

    if (!distributed) {
        // Fused loop: S1;S2 interleaved. Only the final S2 execution
        // can be in the barrier region.
        for (int it = 0; it < kItersPerProc; ++it) {
            for (int c = 0; c < kS1Cost; ++c)
                oss << "addi r3, r3, 1\n";  // S1
            if (it + 1 < kItersPerProc) {
                for (int c = 0; c < kS2Cost; ++c)
                    oss << "addi r4, r4, 1\n";  // S2 (non-barrier)
            }
        }
        oss << ".region 1\n";
        for (int c = 0; c < kS2Cost; ++c)
            oss << "addi r4, r4, 1\n";  // final S2 inside the region
        oss << "addi r1, r1, 1\n";
        oss << "bne r1, r2, loop\n";
        oss << ".endregion\n";
    } else {
        // Distributed: the whole S1 loop, then the whole S2 loop
        // inside the barrier region (Fig. 5(c)).
        for (int it = 0; it < kItersPerProc; ++it)
            for (int c = 0; c < kS1Cost; ++c)
                oss << "addi r3, r3, 1\n";
        oss << ".region 1\n";
        for (int it = 0; it < kItersPerProc; ++it)
            for (int c = 0; c < kS2Cost; ++c)
                oss << "addi r4, r4, 1\n";
        oss << "addi r1, r1, 1\n";
        oss << "bne r1, r2, loop\n";
        oss << ".endregion\n";
    }
    oss << "st r3, 100(r0)\n";
    oss << "halt\n";
    return oss.str();
}

struct Row
{
    std::uint64_t cycles;
    std::uint64_t stalled;
    std::uint64_t wait;
};

Row
measure(bool distributed)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = kProcs;
    cfg.memWords = 1 << 14;
    applyEnvOverrides(cfg);
    sim::Machine machine(cfg);
    for (int p = 0; p < kProcs; ++p)
        machine.loadProgram(
            p, assembleOrDie(streamSource(distributed, 555 + 97 * p)));
    auto r = runTallied(machine);
    if (r.deadlocked || r.timedOut) {
        std::fprintf(stderr, "E6 run failed\n");
        std::exit(1);
    }
    return {r.cycles, totalStalledEpisodes(r), r.totalBarrierWait()};
}

} // namespace

static int
benchMain()
{
    // Structural view via the transform library.
    std::vector<compiler::Statement> stmts(2);
    stmts[0].name = "S1";
    stmts[0].carriesLoopDep = true;
    stmts[1].name = "S2";
    stmts[1].carriesLoopDep = false;
    std::printf("statement executions eligible for the barrier region "
                "(per processor, %d inner iterations):\n",
                kItersPerProc);
    std::printf("  without distribution: %zu (Fig. 5(b))\n",
                compiler::regionExecutionsWithoutDistribution(
                    stmts, kItersPerProc));
    std::printf("  with distribution:    %zu (Fig. 5(c))\n",
                compiler::regionExecutionsWithDistribution(
                    stmts, kItersPerProc));

    fb::Table table("E6 (Fig. 5): loop distribution enlarges the "
                    "barrier region");
    table.setHeader({"version", "region instrs", "stalled episodes",
                     "idle cycles", "total cycles"});
    auto fused = measure(false);
    auto dist = measure(true);
    table.row()
        .cell("fused (5b)")
        .cell(static_cast<std::int64_t>(kS2Cost + 2))
        .cell(fused.stalled)
        .cell(fused.wait)
        .cell(fused.cycles);
    table.row()
        .cell("distributed (5c)")
        .cell(static_cast<std::int64_t>(kItersPerProc * kS2Cost + 2))
        .cell(dist.stalled)
        .cell(dist.wait)
        .cell(dist.cycles);
    table.print(std::cout);

    printClaim("loop distribution turns the barrier region from a "
               "single execution of S2 into a loop containing all "
               "executions of S2, absorbing far more drift");
    return 0;
}

int
main()
{
    int rc = 1;
    fb::bench::runSteadyState(10000, [&rc] { rc = benchMain(); });
    return rc;
}
