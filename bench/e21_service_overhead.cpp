/**
 * @file
 * Experiment E21 (infrastructure ablation) — campaign service
 * overhead.
 *
 * The coordinator/worker campaign service (exec/service) buys
 * crash-tolerance — worker respawn, lease reassignment, CRC-framed
 * transport, poison-seed quarantine — by moving execution out of the
 * coordinator's address space into forked worker processes talking
 * over pipes. This bench prices that robustness on the same
 * verify-layer scenario workload E18 uses:
 *
 *   engine   — exec::runCampaign, jobs = W threads in-process;
 *   service  — exec::svc::runCampaignService, W forked worker
 *              processes, innerJobs = 1 (the fbfuzz --workers shape);
 *   faulted  — the service again, under an injected kill:K schedule,
 *              so a worker dies mid-campaign and its lease is
 *              reassigned — the marginal cost of one recovery.
 *
 * Every mode must deliver a byte-identical result stream (each item's
 * payload carries its machine-state fingerprint, so the identity
 * check crosses the process boundary and the wire format). Only the
 * wall clock may differ.
 */

#include "common.hh"

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "exec/campaign.hh"
#include "exec/service/coordinator.hh"
#include "verify/generator.hh"
#include "verify/scenario.hh"

namespace
{

using namespace fb;
using namespace fb::bench;

constexpr std::uint64_t kDistinctSeeds = 48;
constexpr std::uint64_t kScenarios = 768;
constexpr std::uint64_t kMaxCycles = 200'000;

sim::MachineConfig
configFor(const verify::Scenario &sc)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = sc.procs();
    cfg.memWords = 1 << 18;
    cfg.cache.enabled = true;
    cfg.seed = 1;
    cfg.maxCycles = kMaxCycles;
    cfg.interruptPeriod = sc.interruptPeriod;
    cfg.isrEntry = sc.isrEntry;
    return cfg;
}

/** FNV-1a over everything the campaign observes about one run. */
std::uint64_t
fingerprint(const sim::RunResult &r, sim::Machine &m, int procs)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    mix(r.cycles);
    mix(r.deadlocked ? 1 : 0);
    mix(r.timedOut ? 1 : 0);
    mix(r.syncEvents);
    mix(r.busRequests);
    mix(r.memAccesses);
    for (const auto &p : r.perProcessor) {
        mix(p.instructions);
        mix(p.barrierEpisodes);
        mix(p.barrierWaitCycles);
    }
    for (int p = 0; p < procs; ++p)
        for (int reg = 0; reg < isa::numRegisters; ++reg)
            mix(static_cast<std::uint64_t>(m.processor(p).reg(reg)));
    return h;
}

std::atomic<std::uint64_t> gSimCycles{0};

/**
 * The shared runner: one scenario through a recycled machine, result
 * fingerprint rendered into the payload so the stream-identity check
 * crosses the worker pipe. Pure function of the index — the
 * determinism contract both execution substrates rely on.
 */
exec::ItemResult
runItem(const std::vector<verify::Scenario> &scenarios, std::uint64_t i,
        exec::WorkerContext &ctx)
{
    const auto &sc = scenarios[static_cast<std::size_t>(i)];
    std::vector<isa::Program> programs;
    for (int p = 0; p < sc.procs(); ++p) {
        auto interned =
            ctx.programs.intern(sc.sources[static_cast<std::size_t>(p)]);
        if (!interned->ok) {
            std::fprintf(stderr, "E21 assembly failed: %s\n",
                         interned->error.c_str());
            std::exit(1);
        }
        programs.push_back(sc.encoding == verify::Encoding::Markers
                               ? interned->markers
                               : interned->bits);
    }
    auto lease = ctx.machines.acquire(configFor(sc));
    for (int p = 0; p < sc.procs(); ++p)
        lease->loadProgram(p, programs[static_cast<std::size_t>(p)]);
    auto r = lease->run();
    gSimCycles.fetch_add(r.cycles, std::memory_order_relaxed);
    exec::ItemResult res;
    char line[64];
    std::snprintf(line, sizeof line, "item=%llu fp=%016llx\n",
                  static_cast<unsigned long long>(i),
                  static_cast<unsigned long long>(
                      fingerprint(r, *lease, sc.procs())));
    res.payload = line;
    return res;
}

double
runEngine(const std::vector<verify::Scenario> &scenarios, int jobs,
          std::string &stream)
{
    exec::CampaignOptions opt;
    opt.jobs = jobs;
    const auto start = std::chrono::steady_clock::now();
    exec::runCampaign(
        scenarios.size(), opt,
        [&](std::uint64_t i, exec::WorkerContext &ctx) {
            return runItem(scenarios, i, ctx);
        },
        [&](std::uint64_t, const exec::ItemResult &r) {
            stream += r.payload;
        });
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

double
runService(const std::vector<verify::Scenario> &scenarios, int workers,
           const char *faultSpec, std::string &stream,
           exec::svc::ServiceStats &stats)
{
    exec::svc::ServiceOptions opt;
    opt.workers = workers;
    opt.leaseItems = 16;
    if (faultSpec != nullptr) {
        std::string err;
        if (!exec::svc::SvcFaultPlan::parse(faultSpec, opt.fault, err)) {
            std::fprintf(stderr, "E21 bad fault spec: %s\n", err.c_str());
            std::exit(1);
        }
    }
    const auto start = std::chrono::steady_clock::now();
    stats = exec::svc::runCampaignService(
        scenarios.size(), opt,
        [&](std::uint64_t i, exec::WorkerContext &ctx) {
            return runItem(scenarios, i, ctx);
        },
        [&](std::uint64_t, const exec::ItemResult &r) {
            stream += r.payload;
        });
    const auto stop = std::chrono::steady_clock::now();
    if (stats.aborted) {
        std::fprintf(stderr, "E21 service aborted: %s\n",
                     stats.error.c_str());
        std::exit(1);
    }
    return std::chrono::duration<double>(stop - start).count();
}

} // namespace

int
main(int argc, char **argv)
{
    int workers = 4;
    for (int i = 1; i < argc - 1; ++i) {
        if (std::strcmp(argv[i], "--workers") == 0)
            workers = std::atoi(argv[i + 1]);
    }
    if (workers < 1) {
        std::fprintf(stderr, "E21: bad --workers\n");
        return 2;
    }

    std::vector<verify::Scenario> scenarios;
    scenarios.reserve(kScenarios);
    for (std::uint64_t i = 0; i < kScenarios; ++i)
        scenarios.push_back(
            verify::render(verify::randomSpec(1 + i % kDistinctSeeds)));

    // The service modes fork, so they run while this process is still
    // single-threaded; runEngine joins its pool before returning, so
    // ordering service-after-engine would also be safe — but keeping
    // the forks first makes the single-threaded-fork rule obvious.
    std::string serviceStream, faultedStream, engineStream, serialStream;
    exec::svc::ServiceStats svcStats, faultStats;
    const double serviceSecs =
        runService(scenarios, workers, nullptr, serviceStream, svcStats);
    // One transient worker death a third of the way in: respawn +
    // lease reassignment are the priced recovery path.
    const double faultedSecs = runService(
        scenarios, workers, "kill:64", faultedStream, faultStats);
    const double engineSecs = runEngine(scenarios, workers, engineStream);
    const double serialSecs = runEngine(scenarios, 1, serialStream);

    if (serviceStream != serialStream || faultedStream != serialStream ||
        engineStream != serialStream) {
        std::fprintf(stderr,
                     "E21: result streams differ across substrates\n");
        return 1;
    }
    if (faultStats.workerDeaths == 0) {
        std::fprintf(stderr,
                     "E21: injected kill did not fire (campaign too "
                     "short for the fault position?)\n");
        return 1;
    }

    const double engineRate = kScenarios / engineSecs;
    const double serviceRate = kScenarios / serviceSecs;
    const double faultedRate = kScenarios / faultedSecs;
    const double overheadPct = (serviceSecs / engineSecs - 1.0) * 100.0;
    const double recoveryPct = (faultedSecs / serviceSecs - 1.0) * 100.0;

    fb::Table table(
        "E21 (infrastructure ablation): campaign service vs in-process "
        "engine (" +
        std::to_string(kScenarios) + " scenarios, " +
        std::to_string(workers) + " workers)");
    table.setHeader({"mode", "wall s", "scenarios/sec", "worker deaths",
                     "leases reassigned", "frames"});
    table.row()
        .cell("engine (threads)")
        .cell(engineSecs, 3)
        .cell(engineRate, 0)
        .cell("-")
        .cell("-")
        .cell("-");
    table.row()
        .cell("service (processes)")
        .cell(serviceSecs, 3)
        .cell(serviceRate, 0)
        .cell(svcStats.workerDeaths)
        .cell(svcStats.leasesReassigned)
        .cell(svcStats.framesReceived);
    table.row()
        .cell("service + kill:64")
        .cell(faultedSecs, 3)
        .cell(faultedRate, 0)
        .cell(faultStats.workerDeaths)
        .cell(faultStats.leasesReassigned)
        .cell(faultStats.framesReceived);
    table.row()
        .cell("engine (jobs=1)")
        .cell(serialSecs, 3)
        .cell(kScenarios / serialSecs, 0)
        .cell("-")
        .cell("-")
        .cell("-");
    table.print(std::cout);

    std::printf("service-scenarios-per-sec: %.0f\n", serviceRate);
    std::printf("service-overhead-pct: %.1f\n", overheadPct);
    std::printf("service-recovery-overhead-pct: %.1f\n", recoveryPct);
    std::printf("total-sim-cycles: %llu\n",
                static_cast<unsigned long long>(gSimCycles.load()));
    printClaim(
        "process isolation is cheap relative to scenario execution: "
        "forked workers with CRC-framed pipe transport track the "
        "in-process engine's throughput, one injected worker death "
        "costs a bounded recovery delta, and all substrates emit "
        "byte-identical result streams");
    return 0;
}
