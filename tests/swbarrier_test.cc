/**
 * @file
 * Tests for the split-phase software barriers with real threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "swbarrier/blocking.hh"
#include "swbarrier/centralized.hh"
#include "swbarrier/dissemination.hh"
#include "swbarrier/factory.hh"
#include "swbarrier/stdbarrier.hh"
#include "swbarrier/tree.hh"

namespace fb::sw
{
namespace
{

/**
 * Run @p episodes point-barrier episodes on @p threads threads; after
 * every wait(), every thread checks that all participants have
 * arrived at least as often as itself — the core safety property.
 */
void
exerciseBarrier(SplitBarrier &bar, int threads, int episodes,
                bool jitter)
{
    std::vector<std::atomic<int>> arrived(
        static_cast<std::size_t>(threads));
    for (auto &a : arrived)
        a.store(0);
    std::atomic<int> violations{0};

    auto worker = [&](int tid) {
        std::mt19937 rng(static_cast<unsigned>(tid) * 7919u + 13u);
        for (int e = 1; e <= episodes; ++e) {
            if (jitter && rng() % 4 == 0) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(rng() % 200));
            }
            arrived[static_cast<std::size_t>(tid)]
                .store(e, std::memory_order_release);
            bar.arrive(tid);
            // Barrier-region work of variable length.
            if (jitter && rng() % 2 == 0)
                std::this_thread::yield();
            bar.wait(tid);
            // Safety: everyone must have arrived for episode e.
            for (int p = 0; p < threads; ++p) {
                if (arrived[static_cast<std::size_t>(p)]
                        .load(std::memory_order_acquire) < e)
                    violations.fetch_add(1);
            }
        }
    };

    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t)
        pool.emplace_back(worker, t);
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(violations.load(), 0);
}

class BarrierKindTest : public ::testing::TestWithParam<BarrierKind>
{
};

TEST_P(BarrierKindTest, TwoThreads)
{
    auto bar = makeBarrier(GetParam(), 2);
    exerciseBarrier(*bar, 2, 200, false);
}

TEST_P(BarrierKindTest, FourThreadsWithJitter)
{
    auto bar = makeBarrier(GetParam(), 4);
    exerciseBarrier(*bar, 4, 100, true);
}

TEST_P(BarrierKindTest, EightThreads)
{
    auto bar = makeBarrier(GetParam(), 8);
    exerciseBarrier(*bar, 8, 50, true);
}

TEST_P(BarrierKindTest, OddThreadCount)
{
    auto bar = makeBarrier(GetParam(), 5);
    exerciseBarrier(*bar, 5, 60, true);
}

TEST_P(BarrierKindTest, SingleThreadNeverBlocks)
{
    auto bar = makeBarrier(GetParam(), 1);
    for (int e = 0; e < 100; ++e) {
        bar->arrive(0);
        bar->wait(0);
    }
    SUCCEED();
}

TEST_P(BarrierKindTest, SynchronizeConvenience)
{
    auto bar = makeBarrier(GetParam(), 2);
    std::thread other([&] {
        for (int e = 0; e < 50; ++e)
            bar->synchronize(1);
    });
    for (int e = 0; e < 50; ++e)
        bar->synchronize(0);
    other.join();
    SUCCEED();
}

TEST_P(BarrierKindTest, NameMatchesFactory)
{
    auto bar = makeBarrier(GetParam(), 2);
    EXPECT_STREQ(bar->name(), barrierKindName(GetParam()));
    EXPECT_EQ(bar->numThreads(), 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, BarrierKindTest,
    ::testing::ValuesIn(allBarrierKinds()),
    [](const ::testing::TestParamInfo<BarrierKind> &info) {
        switch (info.param) {
          case BarrierKind::Centralized: return "centralized";
          case BarrierKind::Tree: return "tree";
          case BarrierKind::Dissemination: return "dissemination";
          case BarrierKind::Std: return "stdbarrier";
          case BarrierKind::Blocking: return "blocking";
        }
        return "unknown";
    });

/**
 * The fuzzy property: work placed between arrive() and wait() overlaps
 * the partner's delay, so a split-phase episode in which each thread
 * does its region work inside the split completes correctly (the
 * values written before arrive() are visible after wait()).
 */
TEST(FuzzyUsage, RegionWorkBetweenArriveAndWait)
{
    const int threads = 4;
    const int episodes = 64;
    DisseminationBarrier bar(threads);
    std::vector<std::vector<int>> data(
        static_cast<std::size_t>(threads),
        std::vector<int>(static_cast<std::size_t>(episodes), 0));
    std::atomic<int> errors{0};

    auto worker = [&](int tid) {
        for (int e = 0; e < episodes; ++e) {
            data[static_cast<std::size_t>(tid)]
                [static_cast<std::size_t>(e)] = tid * 1000 + e;
            bar.arrive(tid);
            // Barrier-region work: private accumulation only.
            volatile int sink = 0;
            for (int k = 0; k < 100 * (tid + 1); ++k)
                sink += k;
            bar.wait(tid);
            // Cross-thread reads of values written before arrive().
            int left = (tid + threads - 1) % threads;
            if (data[static_cast<std::size_t>(left)]
                    [static_cast<std::size_t>(e)] != left * 1000 + e)
                errors.fetch_add(1);
        }
    };
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t)
        pool.emplace_back(worker, t);
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(errors.load(), 0);
}

TEST(CentralizedBarrier, CountsSharedAccesses)
{
    CentralizedBarrier bar(2);
    std::thread other([&] { bar.synchronize(1); });
    bar.synchronize(0);
    other.join();
    // At least one counter RMW per thread.
    EXPECT_GE(bar.sharedAccesses(), 2u);
}

TEST(DisseminationBarrier, SharedAccessesScaleLogarithmically)
{
    // One episode on P threads performs P*ceil(log2 P) signal writes
    // (plus spin reads). Run serially-phased episodes and check the
    // write count is in the right ballpark.
    const int threads = 8;
    DisseminationBarrier bar(threads);
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&bar, t] {
            for (int e = 0; e < 10; ++e)
                bar.synchronize(t);
        });
    }
    for (auto &t : pool)
        t.join();
    // 10 episodes * 8 threads * 3 rounds = 240 signal writes minimum.
    EXPECT_GE(bar.sharedAccesses(), 240u);
}

TEST(TreeBarrier, ManyEpisodesStress)
{
    const int threads = 6;
    TreeBarrier bar(threads);
    std::atomic<long> sum{0};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            for (int e = 0; e < 300; ++e) {
                sum.fetch_add(1);
                bar.synchronize(t);
            }
        });
    }
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(sum.load(), threads * 300);
}

TEST(BlockingBarrier, CountsBlockedEpisodes)
{
    // Thread 1 lags behind inside its barrier region; thread 0's
    // wait() blocks. With a long enough region on the lagging side
    // and none on the fast side, most episodes record a block.
    BlockingBarrier bar(2);
    std::thread other([&] {
        for (int e = 0; e < 20; ++e) {
            bar.arrive(1);
            std::this_thread::sleep_for(std::chrono::microseconds(100));
            bar.wait(1);
        }
    });
    for (int e = 0; e < 20; ++e) {
        bar.arrive(0);
        bar.wait(0);
    }
    other.join();
    EXPECT_GT(bar.blockedEpisodes(), 0u);
    EXPECT_LE(bar.blockedEpisodes(), 20u);
}

TEST(BlockingBarrier, CompletedEpisodeNeverBlocks)
{
    // The split-phase guarantee: if the episode completes during the
    // barrier region, wait() returns without touching the condition
    // variable. A single participant makes this deterministic — the
    // episode completes at arrive(), so wait() must never block.
    BlockingBarrier bar(1);
    for (int e = 0; e < 100; ++e) {
        bar.arrive(0);
        bar.wait(0);
    }
    EXPECT_EQ(bar.blockedEpisodes(), 0u);
}

TEST(BlockingBarrier, LateWaiterSkipsBlock)
{
    // Two threads: thread 0 delays its wait() until well after thread
    // 1 completed the episode, so thread 0's wait must not count a
    // block; thread 1 (which waited immediately) is the one that
    // blocked.
    BlockingBarrier bar(2);
    std::thread other([&] {
        bar.arrive(1);
        bar.wait(1);
    });
    bar.arrive(0);
    // By joining on the episode completion indirectly: sleep long
    // enough that thread 1 has certainly passed wait().
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto blocked_before = bar.blockedEpisodes();
    bar.wait(0);  // generation already advanced: returns immediately
    EXPECT_EQ(bar.blockedEpisodes(), blocked_before);
    other.join();
}

TEST_P(BarrierKindTest, WaitForTimesOutThenResumes)
{
    // One thread arrives alone: waitFor must report a timeout without
    // losing the armed episode, and succeed once the partner shows up.
    auto bar = makeBarrier(GetParam(), 2);
    bar->arrive(0);
    EXPECT_FALSE(bar->waitFor(0, std::chrono::microseconds(500)));
    EXPECT_FALSE(bar->waitFor(0, std::chrono::microseconds(500)));
    std::thread other([&] { bar->synchronize(1); });
    EXPECT_TRUE(bar->waitFor(0, std::chrono::seconds(30)));
    other.join();

    // The barrier must still work for a subsequent episode.
    std::thread again([&] { bar->synchronize(1); });
    bar->synchronize(0);
    again.join();
}

TEST_P(BarrierKindTest, WaitForCompletedEpisodeReturnsImmediately)
{
    auto bar = makeBarrier(GetParam(), 1);
    bar->arrive(0);
    EXPECT_TRUE(bar->waitFor(0, std::chrono::microseconds(0)));
}

TEST_P(BarrierKindTest, WaitWithRetryBacksOffThenGivesUp)
{
    // No partner ever arrives: every attempt must be spent, and the
    // caller is told the episode did not complete.
    auto bar = makeBarrier(GetParam(), 2);
    bar->arrive(0);
    auto r = waitWithRetry(*bar, 0, std::chrono::microseconds(200), 3);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.attempts, 3);

    // A late partner is still recoverable after the retries failed.
    std::thread other([&] { bar->synchronize(1); });
    auto r2 =
        waitWithRetry(*bar, 0, std::chrono::microseconds(1000), 10);
    EXPECT_TRUE(r2.completed);
    other.join();
}

TEST_P(BarrierKindTest, DegradedRebuildAfterDetectedDeath)
{
    // The software recovery protocol: 4 threads synchronize, thread 3
    // dies (stops participating), survivors detect the loss via
    // waitWithRetry exhaustion and rebuild a 3-thread barrier with
    // remapped ranks to finish the remaining episodes.
    const int threads = 4;
    const int episodes = 6;
    const int kill_at = 3;
    auto full = makeBarrier(GetParam(), threads);
    auto degraded = makeBarrier(GetParam(), threads - 1);
    std::atomic<int> detections{0};
    std::atomic<int> completed{0};

    auto survivor = [&](int tid) {
        for (int e = 0; e < kill_at; ++e)
            full->synchronize(tid);
        full->arrive(tid);
        auto r = waitWithRetry(*full, tid,
                               std::chrono::microseconds(300), 3);
        if (!r.completed)
            detections.fetch_add(1);
        // Rank remap: dense ids over the survivor set.
        const int rank = tid < 3 ? tid : tid - 1;
        for (int e = kill_at; e < episodes; ++e)
            degraded->synchronize(rank);
        completed.fetch_add(1);
    };
    auto victim = [&] {
        for (int e = 0; e < kill_at; ++e)
            full->synchronize(3);
        // Fail-stop: never arrives again.
    };

    std::vector<std::thread> pool;
    for (int t = 0; t < threads - 1; ++t)
        pool.emplace_back(survivor, t);
    pool.emplace_back(victim);
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(detections.load(), threads - 1);
    EXPECT_EQ(completed.load(), threads - 1);
}

TEST(StdBarrierAdapter, TokensAlternate)
{
    StdBarrierAdapter bar(2);
    std::thread other([&] {
        for (int e = 0; e < 100; ++e) {
            bar.arrive(1);
            bar.wait(1);
        }
    });
    for (int e = 0; e < 100; ++e) {
        bar.arrive(0);
        bar.wait(0);
    }
    other.join();
    SUCCEED();
}

} // namespace
} // namespace fb::sw
