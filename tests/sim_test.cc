/**
 * @file
 * Integration tests for the simulated multiprocessor: execution,
 * memory system, and fuzzy-barrier semantics end to end.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "isa/assembler.hh"
#include "sim/machine.hh"

namespace fb::sim
{
namespace
{

isa::Program
assembleOrDie(const std::string &src)
{
    isa::Program p;
    std::string err;
    if (!isa::Assembler::assemble(src, p, err))
        ADD_FAILURE() << "assembly failed: " << err;
    return p;
}

/**
 * The canonical test workload, shaped like the paper's Fig. 4 loop:
 * per iteration a non-barrier "work" section of @p work_instrs
 * single-cycle instructions followed by a barrier region of
 * @p region_instrs filler instructions plus the loop control. The
 * final r3 value is stored to memory word (100 + store_slot).
 *
 * With region_instrs == 0 the loop control itself still forms a
 * minimal region (the paper's null barrier region is a single
 * marked-bit NOP).
 */
std::string
loopSource(int iters, int work_instrs, int region_instrs, int store_slot,
           std::uint64_t mask = 0b11, int tag = 1)
{
    std::ostringstream oss;
    oss << "settag " << tag << "\n";
    oss << "setmask " << mask << "\n";
    oss << "li r1, 0\n";
    oss << "li r2, " << iters << "\n";
    oss << "loop:\n";
    for (int i = 0; i < work_instrs; ++i)
        oss << "addi r3, r3, 1\n";
    oss << ".region 1\n";
    for (int i = 0; i < region_instrs; ++i)
        oss << "addi r4, r4, 1\n";
    oss << "addi r1, r1, 1\n";
    oss << "bne r1, r2, loop\n";
    oss << ".endregion\n";
    oss << "st r3, " << (100 + store_slot) << "(r0)\n";
    oss << "halt\n";
    return oss.str();
}

/**
 * Alternating-load workload, the situation the fuzzy barrier is built
 * for (paper Fig. 7): every iteration executes @p light common
 * instructions, and on alternate iterations — selected by @p phase —
 * an extra @p heavy instructions. Two processors with opposite phases
 * do equal total work but drift apart by @p heavy cycles within each
 * iteration, first one way then the other.
 */
std::string
alternatingSource(int iters, int light, int heavy, int region_instrs,
                  int store_slot, int phase, std::uint64_t mask = 0b11,
                  int tag = 1)
{
    std::ostringstream oss;
    oss << "settag " << tag << "\n";
    oss << "setmask " << mask << "\n";
    oss << "li r1, 0\n";
    oss << "li r2, " << iters << "\n";
    oss << "li r7, 1\n";
    oss << "li r8, " << phase << "\n";
    oss << "loop:\n";
    oss << "and r6, r1, r7\n";        // parity = i & 1
    oss << "bne r6, r8, light\n";     // heavy iff parity == phase
    for (int i = 0; i < heavy; ++i)
        oss << "addi r5, r5, 1\n";
    oss << "light:\n";
    for (int i = 0; i < light; ++i)
        oss << "addi r3, r3, 1\n";
    oss << ".region 1\n";
    for (int i = 0; i < region_instrs; ++i)
        oss << "addi r4, r4, 1\n";
    oss << "addi r1, r1, 1\n";
    oss << "bne r1, r2, loop\n";
    oss << ".endregion\n";
    oss << "st r3, " << (100 + store_slot) << "(r0)\n";
    oss << "halt\n";
    return oss.str();
}

MachineConfig
smallConfig(int procs)
{
    MachineConfig cfg;
    cfg.numProcessors = procs;
    cfg.memWords = 4096;
    cfg.maxCycles = 5'000'000;
    return cfg;
}

// --------------------------------------------------------- basic execution

TEST(Machine, SingleProcessorArithmetic)
{
    Machine m(smallConfig(1));
    m.loadProgram(0, assembleOrDie(R"(
        li r1, 6
        li r2, 7
        mul r3, r1, r2
        st r3, 100(r0)
        halt
    )"));
    auto result = m.run();
    EXPECT_FALSE(result.deadlocked);
    EXPECT_FALSE(result.timedOut);
    EXPECT_EQ(m.memory().peek(100), 42);
    EXPECT_EQ(m.processor(0).reg(3), 42);
}

TEST(Machine, AllAluOpsExecute)
{
    Machine m(smallConfig(1));
    m.loadProgram(0, assembleOrDie(R"(
        li r1, 12
        li r2, 5
        add r3, r1, r2
        sub r4, r1, r2
        and r5, r1, r2
        or  r6, r1, r2
        xor r7, r1, r2
        slt r8, r2, r1
        li r9, 2
        shl r10, r1, r9
        shr r11, r1, r9
        div r12, r1, r2
        addi r13, r1, -3
        muli r14, r2, 4
        slti r15, r2, 100
        mov r16, r1
        halt
    )"));
    m.run();
    auto &p = m.processor(0);
    EXPECT_EQ(p.reg(3), 17);
    EXPECT_EQ(p.reg(4), 7);
    EXPECT_EQ(p.reg(5), 4);
    EXPECT_EQ(p.reg(6), 13);
    EXPECT_EQ(p.reg(7), 9);
    EXPECT_EQ(p.reg(8), 1);
    EXPECT_EQ(p.reg(10), 48);
    EXPECT_EQ(p.reg(11), 3);
    EXPECT_EQ(p.reg(12), 2);
    EXPECT_EQ(p.reg(13), 9);
    EXPECT_EQ(p.reg(14), 20);
    EXPECT_EQ(p.reg(15), 1);
    EXPECT_EQ(p.reg(16), 12);
}

TEST(Machine, RegisterZeroIsHardwiredZero)
{
    Machine m(smallConfig(1));
    m.loadProgram(0, assembleOrDie(R"(
        li r0, 99
        add r1, r0, r0
        halt
    )"));
    m.run();
    EXPECT_EQ(m.processor(0).reg(0), 0);
    EXPECT_EQ(m.processor(0).reg(1), 0);
}

TEST(Machine, BranchLoopSums)
{
    // r3 = sum of 1..10 = 55
    Machine m(smallConfig(1));
    m.loadProgram(0, assembleOrDie(R"(
        li r1, 0
        li r2, 10
    loop:
        addi r1, r1, 1
        add r3, r3, r1
        bne r1, r2, loop
        st r3, 100(r0)
        halt
    )"));
    auto r = m.run();
    EXPECT_EQ(m.memory().peek(100), 55);
    EXPECT_GT(r.cycles, 0u);
}

TEST(Machine, MemoryRoundTripAndHostPoke)
{
    Machine m(smallConfig(1));
    m.memory().poke(200, 1234);
    m.loadProgram(0, assembleOrDie(R"(
        ld r1, 200(r0)
        addi r1, r1, 1
        st r1, 201(r0)
        halt
    )"));
    m.run();
    EXPECT_EQ(m.memory().peek(201), 1235);
}

TEST(Machine, CacheHitsAfterFirstMiss)
{
    Machine m(smallConfig(1));
    m.loadProgram(0, assembleOrDie(R"(
        ld r1, 100(r0)
        ld r1, 100(r0)
        ld r1, 100(r0)
        halt
    )"));
    auto r = m.run();
    EXPECT_EQ(r.perProcessor[0].cacheMisses, 1u);
    EXPECT_EQ(r.perProcessor[0].cacheHits, 2u);
}

TEST(Machine, CacheMissCostsMoreThanHit)
{
    // Two runs: one hammering a single word (hits), one striding
    // across lines (misses). The miss run must take longer.
    auto build = [](int stride) {
        std::ostringstream oss;
        oss << "li r2, " << stride << "\nli r3, 512\n";
        oss << "loop:\n";
        oss << "ld r4, 100(r1)\n";
        oss << "add r1, r1, r2\n";
        oss << "addi r5, r5, 1\n";
        oss << "bne r5, r3, loop\n";
        oss << "halt\n";
        return oss.str();
    };
    MachineConfig cfg = smallConfig(1);
    cfg.memWords = 1 << 16;
    Machine hits(cfg);
    hits.loadProgram(0, assembleOrDie(build(0)));
    Machine misses(cfg);
    misses.loadProgram(0, assembleOrDie(build(64)));
    auto rh = hits.run();
    auto rm = misses.run();
    EXPECT_GT(rm.cycles, rh.cycles);
    EXPECT_GT(rm.perProcessor[0].cacheMisses,
              rh.perProcessor[0].cacheMisses);
}

TEST(Machine, TimeoutGuard)
{
    MachineConfig cfg = smallConfig(1);
    cfg.maxCycles = 1000;
    Machine m(cfg);
    m.loadProgram(0, assembleOrDie("loop:\njmp loop\n"));
    auto r = m.run();
    EXPECT_TRUE(r.timedOut);
    EXPECT_FALSE(r.deadlocked);
}

TEST(Machine, EmptyProgramHaltsImmediately)
{
    Machine m(smallConfig(2));
    m.loadProgram(0, assembleOrDie("halt\n"));
    // Processor 1 keeps its default empty program.
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_FALSE(r.timedOut);
}

// ------------------------------------------------------- barrier semantics

TEST(Machine, TwoProcessorBarrierSyncCount)
{
    const int iters = 8;
    Machine m(smallConfig(2));
    m.loadProgram(0, assembleOrDie(loopSource(iters, 3, 4, 0)));
    m.loadProgram(1, assembleOrDie(loopSource(iters, 3, 4, 1)));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.syncEvents, static_cast<std::uint64_t>(iters));
    EXPECT_EQ(r.perProcessor[0].barrierEpisodes,
              static_cast<std::uint64_t>(iters));
    EXPECT_EQ(m.memory().peek(100), 3 * iters);
    EXPECT_EQ(m.memory().peek(101), 3 * iters);
    EXPECT_EQ(m.checkSafetyProperty(), "");
}

TEST(Machine, PointBarrierStallsUnderAlternatingLoad)
{
    // Opposite-phase alternating load: equal total work, but each
    // iteration one processor is ~30 cycles behind. With a point
    // barrier the other one stalls on every iteration.
    const int iters = 10;
    Machine m(smallConfig(2));
    m.loadProgram(0, assembleOrDie(alternatingSource(iters, 2, 30, 0, 0, 0)));
    m.loadProgram(1, assembleOrDie(alternatingSource(iters, 2, 30, 0, 1, 1)));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_EQ(r.syncEvents, static_cast<std::uint64_t>(iters));
    // Each processor is the light one on half the iterations and
    // stalls there.
    EXPECT_GE(r.perProcessor[0].stalledEpisodes, 4u);
    EXPECT_GE(r.perProcessor[1].stalledEpisodes, 4u);
    EXPECT_GT(r.totalBarrierWait(), 100u);
    EXPECT_EQ(m.checkSafetyProperty(), "");
}

TEST(Machine, FuzzyRegionAbsorbsAlternatingLoad)
{
    // Same drift, but the barrier region is larger than the gap: the
    // light processor keeps executing region instructions while it
    // waits and never stalls (section 2: "the larger the barrier
    // regions, the less likely it is that the processors will stall").
    const int iters = 10;
    Machine m(smallConfig(2));
    m.loadProgram(0,
                  assembleOrDie(alternatingSource(iters, 2, 30, 40, 0, 0)));
    m.loadProgram(1,
                  assembleOrDie(alternatingSource(iters, 2, 30, 40, 1, 1)));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_EQ(r.syncEvents, static_cast<std::uint64_t>(iters));
    EXPECT_EQ(r.perProcessor[0].stalledEpisodes, 0u);
    EXPECT_EQ(r.perProcessor[1].stalledEpisodes, 0u);
    EXPECT_EQ(m.checkSafetyProperty(), "");
    // Both computed the same (phase-independent) result.
    EXPECT_EQ(m.memory().peek(100), 2 * iters);
    EXPECT_EQ(m.memory().peek(101), 2 * iters);
}

TEST(Machine, StallCyclesDecreaseMonotonicallyWithRegionSize)
{
    const int iters = 10;
    std::uint64_t prev = UINT64_MAX;
    for (int region : {0, 8, 16, 32, 64}) {
        Machine m(smallConfig(2));
        m.loadProgram(
            0, assembleOrDie(alternatingSource(iters, 2, 30, region, 0, 0)));
        m.loadProgram(
            1, assembleOrDie(alternatingSource(iters, 2, 30, region, 1, 1)));
        auto r = m.run();
        EXPECT_FALSE(r.deadlocked);
        std::uint64_t wait = r.totalBarrierWait();
        EXPECT_LE(wait, prev) << "region=" << region;
        prev = wait;
    }
    EXPECT_EQ(prev, 0u);  // a large enough region fully absorbs drift
}

TEST(Machine, HardwareBarrierNeverTouchesMemory)
{
    // Synchronization itself must generate zero shared-memory
    // traffic: the only accesses are the program's own loads/stores.
    const int iters = 4;
    Machine m(smallConfig(2));
    m.loadProgram(0, assembleOrDie(loopSource(iters, 1, 2, 0)));
    m.loadProgram(1, assembleOrDie(loopSource(iters, 1, 2, 1)));
    auto r = m.run();
    // Each program performs exactly one store (the final st).
    EXPECT_EQ(r.memAccesses, 2u);
}

TEST(Machine, DeadlockWhenPartnerHalts)
{
    Machine m(smallConfig(2));
    m.loadProgram(0, assembleOrDie(R"(
        settag 1
        setmask 3
        nop
    .region 1
        nop
    .endregion
        halt
    )"));
    m.loadProgram(1, assembleOrDie(R"(
        settag 1
        setmask 3
        halt
    )"));
    auto r = m.run();
    EXPECT_TRUE(r.deadlocked);
    EXPECT_NE(r.deadlockInfo.find("cpu0"), std::string::npos);
}

TEST(Machine, Fig2MergedBarriersDeadlock)
{
    // The invalid-branch scenario of Fig. 2: processor 0's two
    // barrier regions are merged into one (as if a branch jumped
    // directly from barrier 1 into barrier 2), so it synchronizes
    // once and halts; processor 1 then waits forever at barrier 2.
    Machine m(smallConfig(2));
    m.loadProgram(0, assembleOrDie(R"(
        settag 1
        setmask 3
        nop
    .region 1
        nop
        nop
    .endregion
        halt
    )"));
    m.loadProgram(1, assembleOrDie(R"(
        settag 1
        setmask 3
        nop
    .region 1
        nop
    .endregion
        nop
    .region 1
        nop
    .endregion
        halt
    )"));
    auto r = m.run();
    EXPECT_TRUE(r.deadlocked);
}

TEST(Machine, MarkerEncodingBehavesIdentically)
{
    const int iters = 6;
    auto src0 = loopSource(iters, 2, 5, 0);
    auto src1 = loopSource(iters, 7, 5, 1);

    Machine bits(smallConfig(2));
    bits.loadProgram(0, assembleOrDie(src0));
    bits.loadProgram(1, assembleOrDie(src1));
    auto rb = bits.run();

    Machine markers(smallConfig(2));
    markers.loadProgram(0, assembleOrDie(src0).toMarkerEncoding());
    markers.loadProgram(1, assembleOrDie(src1).toMarkerEncoding());
    auto rm = markers.run();

    EXPECT_FALSE(rb.deadlocked);
    EXPECT_FALSE(rm.deadlocked);
    EXPECT_EQ(rb.syncEvents, rm.syncEvents);
    EXPECT_EQ(bits.memory().peek(100), markers.memory().peek(100));
    EXPECT_EQ(bits.memory().peek(101), markers.memory().peek(101));
    EXPECT_EQ(markers.checkSafetyProperty(), "");
}

TEST(Machine, NonParticipantIgnoresRegions)
{
    // Tag 0: region bits have no synchronization effect.
    Machine m(smallConfig(2));
    m.loadProgram(0, assembleOrDie(loopSource(4, 1, 2, 0, 0b11, 0)));
    m.loadProgram(1, assembleOrDie(loopSource(4, 1, 2, 1, 0b11, 0)));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_EQ(r.syncEvents, 0u);
}

TEST(Machine, SoftwareStallCostsContextSwitches)
{
    const int iters = 10;
    MachineConfig hw_cfg = smallConfig(2);
    hw_cfg.stall = StallModel::hardware();
    MachineConfig sw_cfg = smallConfig(2);
    sw_cfg.stall = StallModel::software(400, 400);

    auto src0 = loopSource(iters, 2, 0, 0);
    auto src1 = loopSource(iters, 40, 0, 1);

    Machine hw(hw_cfg);
    hw.loadProgram(0, assembleOrDie(src0));
    hw.loadProgram(1, assembleOrDie(src1));
    auto rh = hw.run();

    Machine sw(sw_cfg);
    sw.loadProgram(0, assembleOrDie(src0));
    sw.loadProgram(1, assembleOrDie(src1));
    auto rs = sw.run();

    EXPECT_FALSE(rh.deadlocked);
    EXPECT_FALSE(rs.deadlocked);
    EXPECT_GT(rs.perProcessor[0].contextSwitches, 0u);
    EXPECT_EQ(rh.perProcessor[0].contextSwitches, 0u);
    // Context save/restore dominates: the software run's barrier
    // overhead is far larger (the section 8 effect).
    EXPECT_GT(rs.perProcessor[0].barrierWaitCycles,
              rh.perProcessor[0].barrierWaitCycles * 3);
    // Both still compute the right answer.
    EXPECT_EQ(sw.memory().peek(100), hw.memory().peek(100));
}

TEST(Machine, PipelinedMachineStillSynchronizesSafely)
{
    const int iters = 6;
    MachineConfig cfg = smallConfig(2);
    cfg.pipelineDepth = 5;
    Machine m(cfg);
    m.loadProgram(0, assembleOrDie(loopSource(iters, 2, 8, 0)));
    m.loadProgram(1, assembleOrDie(loopSource(iters, 9, 8, 1)));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.syncEvents, static_cast<std::uint64_t>(iters));
    EXPECT_EQ(m.checkSafetyProperty(), "");
    EXPECT_EQ(m.memory().peek(100), 2 * iters);
}

TEST(Machine, JitterIsDeterministicPerSeed)
{
    auto run_with_seed = [](std::uint64_t seed) {
        MachineConfig cfg = smallConfig(2);
        cfg.jitterMean = 2.0;
        cfg.seed = seed;
        Machine m(cfg);
        m.loadProgram(0, assembleOrDie(loopSource(8, 3, 4, 0)));
        m.loadProgram(1, assembleOrDie(loopSource(8, 3, 4, 1)));
        return m.run().cycles;
    };
    EXPECT_EQ(run_with_seed(7), run_with_seed(7));
    // Different seeds almost surely differ in total cycles.
    EXPECT_NE(run_with_seed(7), run_with_seed(8));
}

TEST(Machine, ThreeWaySubsetBarriers)
{
    // Processors 0 and 1 synchronize with each other (tag 1);
    // processor 2 runs free with tag 0.
    Machine m(smallConfig(3));
    m.loadProgram(0, assembleOrDie(loopSource(5, 2, 3, 0, 0b011, 1)));
    m.loadProgram(1, assembleOrDie(loopSource(5, 6, 3, 1, 0b011, 1)));
    m.loadProgram(2, assembleOrDie(loopSource(5, 1, 3, 2, 0b000, 0)));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_EQ(r.syncEvents, 5u);
    EXPECT_EQ(m.checkSafetyProperty(), "");
}

TEST(Machine, SyncLatencyHiddenByRegions)
{
    // Broadcast latency adds directly to every point-barrier episode
    // but disappears inside a large barrier region (the processor
    // keeps issuing region instructions while the signal propagates).
    auto run = [&](std::uint32_t latency, int region) {
        MachineConfig cfg = smallConfig(2);
        cfg.syncLatency = latency;
        Machine m(cfg);
        m.loadProgram(0, assembleOrDie(loopSource(10, 3, region, 0)));
        m.loadProgram(1, assembleOrDie(loopSource(10, 3, region, 1)));
        auto r = m.run();
        EXPECT_FALSE(r.deadlocked);
        EXPECT_FALSE(r.timedOut);
        EXPECT_EQ(r.syncEvents, 10u);
        EXPECT_EQ(m.checkSafetyProperty(), "");
        return r.cycles;
    };
    auto point_fast = run(0, 0);
    auto point_slow = run(20, 0);
    // Point barrier: ~latency extra per episode.
    EXPECT_GE(point_slow, point_fast + 10 * 15);
    auto fuzzy_fast = run(0, 64);
    auto fuzzy_slow = run(20, 64);
    // Large region: the latency vanishes into region execution.
    EXPECT_LT(fuzzy_slow, fuzzy_fast + 10 * 5);
}

// -------------------------------------------------- property-style sweeps

struct SweepParam
{
    int procs;
    int region;
};

class BarrierSafetySweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(BarrierSafetySweep, SafetyAndLivenessHold)
{
    const auto param = GetParam();
    const int iters = 6;
    MachineConfig cfg = smallConfig(param.procs);
    cfg.jitterMean = 1.5;  // inject drift
    cfg.seed = 0xC0FFEE + static_cast<std::uint64_t>(param.region);
    Machine m(cfg);
    std::uint64_t mask = (1ull << param.procs) - 1;
    for (int p = 0; p < param.procs; ++p) {
        // Heterogeneous work per processor exercises the drift
        // tolerance; all share one barrier.
        m.loadProgram(p, assembleOrDie(loopSource(
                             iters, 2 + 3 * p, param.region, p, mask, 1)));
    }
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.syncEvents, static_cast<std::uint64_t>(iters));
    EXPECT_EQ(m.checkSafetyProperty(), "");
    for (int p = 0; p < param.procs; ++p) {
        EXPECT_EQ(m.memory().peek(100 + static_cast<std::size_t>(p)),
                  (2 + 3 * p) * iters);
    }
}

INSTANTIATE_TEST_SUITE_P(
    ProcsAndRegions, BarrierSafetySweep,
    ::testing::Values(SweepParam{2, 0}, SweepParam{2, 8},
                      SweepParam{2, 32}, SweepParam{4, 0},
                      SweepParam{4, 16}, SweepParam{4, 64},
                      SweepParam{8, 0}, SweepParam{8, 32},
                      SweepParam{16, 8}),
    [](const ::testing::TestParamInfo<SweepParam> &info) {
        return "p" + std::to_string(info.param.procs) + "_r" +
               std::to_string(info.param.region);
    });

class PipelineDepthSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(PipelineDepthSweep, DepthPreservesCorrectness)
{
    const int depth = GetParam();
    MachineConfig cfg = smallConfig(3);
    cfg.pipelineDepth = depth;
    Machine m(cfg);
    std::uint64_t mask = 0b111;
    for (int p = 0; p < 3; ++p)
        m.loadProgram(p, assembleOrDie(loopSource(5, 1 + p, 10, p, mask)));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_EQ(r.syncEvents, 5u);
    EXPECT_EQ(m.checkSafetyProperty(), "");
    for (int p = 0; p < 3; ++p)
        EXPECT_EQ(m.memory().peek(100 + static_cast<std::size_t>(p)),
                  (1 + p) * 5);
}

INSTANTIATE_TEST_SUITE_P(Depths, PipelineDepthSweep,
                         ::testing::Values(1, 2, 4, 8));

// ------------------------------------------------- paged SharedMemory

TEST(SharedMemoryPaged, PageEdgeAccessesLandOnDistinctPages)
{
    // Words 1023/1024 and 2047/2048 straddle page boundaries; an
    // off-by-one in the page math would alias them into one slab.
    SharedMemory mem(3 * SharedMemory::pageWords);
    mem.write(1023, 11);
    mem.write(1024, 22);
    mem.write(2047, 33);
    mem.write(2048, 44);
    EXPECT_EQ(mem.read(1023), 11);
    EXPECT_EQ(mem.read(1024), 22);
    EXPECT_EQ(mem.read(2047), 33);
    EXPECT_EQ(mem.read(2048), 44);
    EXPECT_EQ(mem.totalAccesses(), 8u);
    // First-touch page order: 0 (word 1023), 1 (1024), 2 (2048).
    const std::vector<std::size_t> expected = {0, 1, 2};
    EXPECT_EQ(mem.touchedPages(), expected);
    // Two accesses each; the hot spot resolves to the lowest address.
    EXPECT_EQ(mem.hotSpotAccesses(), 2u);
    EXPECT_EQ(mem.hotSpotAddress(), 1023u);
}

TEST(SharedMemoryPaged, ResetStatsAfterSparseTouches)
{
    // Touch only the last page of a larger memory; resetStats() must
    // clear exactly that page's counts (it is O(pages touched)) and
    // leave contents alone.
    SharedMemory mem(8 * SharedMemory::pageWords);
    const std::size_t addr = 7 * SharedMemory::pageWords + 123;
    mem.write(addr, 99);
    mem.read(addr);
    ASSERT_EQ(mem.touchedPages().size(), 1u);
    EXPECT_EQ(mem.touchedPages()[0], 7u);
    EXPECT_EQ(mem.hotSpotAccesses(), 2u);

    mem.resetStats();
    EXPECT_TRUE(mem.touchedPages().empty());
    EXPECT_EQ(mem.totalAccesses(), 0u);
    EXPECT_EQ(mem.hotSpotAccesses(), 0u);
    EXPECT_EQ(mem.hotSpotAddress(), 0u);
    EXPECT_EQ(mem.peek(addr), 99); // contents survive a stats reset

    // The recycled slab counts from zero again, and a fresh page
    // allocates cleanly after the reset.
    mem.read(addr);
    mem.read(2 * SharedMemory::pageWords);
    EXPECT_EQ(mem.hotSpotAccesses(), 1u);
    const std::vector<std::size_t> expected = {7, 2};
    EXPECT_EQ(mem.touchedPages(), expected);
}

TEST(SharedMemoryPaged, PeekPokeBypassStatsButNotResetContents)
{
    SharedMemory mem(2 * SharedMemory::pageWords);
    mem.poke(1500, 42);
    EXPECT_EQ(mem.peek(1500), 42);
    EXPECT_EQ(mem.totalAccesses(), 0u);
    EXPECT_TRUE(mem.touchedPages().empty());
    // poke() still marks the page written: resetContents() must zero
    // host-poked words too, or a pooled machine would leak setup
    // state from the previous scenario.
    mem.resetContents();
    EXPECT_EQ(mem.peek(1500), 0);
}

TEST(SharedMemoryPaged, SparseEncodeDecodeRoundTrip)
{
    SharedMemory mem(5 * SharedMemory::pageWords);
    mem.write(3 * SharedMemory::pageWords + 7, -5);
    mem.write(4 * SharedMemory::pageWords - 1, 77); // page-3 last word
    mem.read(3 * SharedMemory::pageWords + 7);

    snapshot::Encoder enc;
    mem.encodeState(enc);
    const auto bytes = enc.buffer();

    SharedMemory restored(5 * SharedMemory::pageWords);
    snapshot::Decoder dec(bytes);
    ASSERT_TRUE(restored.decodeState(dec));
    EXPECT_EQ(restored.peek(3 * SharedMemory::pageWords + 7), -5);
    EXPECT_EQ(restored.peek(4 * SharedMemory::pageWords - 1), 77);
    EXPECT_EQ(restored.peek(0), 0);
    EXPECT_EQ(restored.totalAccesses(), mem.totalAccesses());
    EXPECT_EQ(restored.hotSpotAccesses(), mem.hotSpotAccesses());
    EXPECT_EQ(restored.hotSpotAddress(), mem.hotSpotAddress());
}

// ---------------------------------------------------- paged SharedBus

TEST(SharedBusPaged, BankedBanksGrowOnDemand)
{
    // The banked model allocates busy slabs lazily by word address;
    // far-apart addresses must get independent banks, and only
    // same-word requests queue behind each other.
    SharedBus bus(10, BusKind::Banked);
    EXPECT_EQ(bus.request(0, 500'000), 0u); // grows the table
    EXPECT_EQ(bus.request(0, 500'000), 10u);
    EXPECT_EQ(bus.request(0, 500'001), 0u); // same page, other bank
    EXPECT_EQ(bus.request(0, 3), 0u);       // low page after high page
    EXPECT_EQ(bus.requests(), 4u);
    EXPECT_EQ(bus.totalQueueDelay(), 10u);
}

TEST(SharedBusPaged, BankedPageEdgeBanksAreIndependent)
{
    // Words 1023 and 1024 sit on adjacent slab pages; an off-by-one
    // would make them share a busy slot and queue spuriously.
    SharedBus bus(7, BusKind::Banked);
    EXPECT_EQ(bus.request(0, 1023), 0u);
    EXPECT_EQ(bus.request(0, 1024), 0u);
    EXPECT_EQ(bus.request(0, 1023), 7u);
    EXPECT_EQ(bus.request(0, 1024), 7u);
}

TEST(SharedBusPaged, SharedKindSerializesDistinctWords)
{
    SharedBus bus(5, BusKind::Shared);
    EXPECT_EQ(bus.request(0, 100), 0u);
    EXPECT_EQ(bus.request(0, 999'999), 5u); // one bus, any address
    EXPECT_EQ(bus.totalQueueDelay(), 5u);
}

TEST(SharedBusPaged, ResetClearsBusyStateAndCounters)
{
    SharedBus bus(10, BusKind::Banked);
    bus.request(0, 2048);
    bus.request(0, 2048);
    bus.reset(10, BusKind::Banked);
    EXPECT_EQ(bus.requests(), 0u);
    EXPECT_EQ(bus.totalQueueDelay(), 0u);
    // The previously-busy bank is free again after the reset.
    EXPECT_EQ(bus.request(0, 2048), 0u);
}

TEST(SharedBusPaged, EncodeDecodeRoundTripPreservesBusyBanks)
{
    SharedBus bus(10, BusKind::Banked);
    bus.request(0, 1023);
    bus.request(0, 1024);
    bus.request(0, 1023); // queues: bank busy until 20

    snapshot::Encoder enc;
    bus.encodeState(enc);
    const auto bytes = enc.buffer();

    SharedBus restored(10, BusKind::Banked);
    snapshot::Decoder dec(bytes);
    ASSERT_TRUE(restored.decodeState(dec));
    EXPECT_EQ(restored.requests(), bus.requests());
    EXPECT_EQ(restored.totalQueueDelay(), bus.totalQueueDelay());
    // The restored busy horizon matches: a request at cycle 0 on the
    // hot word queues exactly as it would on the original bus.
    EXPECT_EQ(restored.request(0, 1023), bus.request(0, 1023));
    EXPECT_EQ(restored.request(0, 1024), bus.request(0, 1024));
}

} // namespace
} // namespace fb::sim
