/**
 * @file
 * Unit tests for the support library.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "support/bitvector.hh"
#include "support/hibitset.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "support/stats.hh"
#include "support/strutil.hh"
#include "support/table.hh"

namespace fb
{
namespace
{

int
countOccurrences(const std::string &haystack, const std::string &needle)
{
    int n = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++n;
    return n;
}

// ---------------------------------------------------------------- BitVector

TEST(BitVector, StartsAllClear)
{
    BitVector bv(10);
    EXPECT_EQ(bv.size(), 10u);
    EXPECT_TRUE(bv.none());
    EXPECT_EQ(bv.count(), 0u);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_FALSE(bv.test(i));
}

TEST(BitVector, SetAndClear)
{
    BitVector bv(70);  // crosses a word boundary
    bv.set(0);
    bv.set(65);
    EXPECT_TRUE(bv.test(0));
    EXPECT_TRUE(bv.test(65));
    EXPECT_FALSE(bv.test(64));
    EXPECT_EQ(bv.count(), 2u);
    bv.clear(65);
    EXPECT_FALSE(bv.test(65));
    EXPECT_EQ(bv.count(), 1u);
}

TEST(BitVector, SetAllAndClearAll)
{
    BitVector bv(5);
    bv.setAll();
    EXPECT_TRUE(bv.all());
    EXPECT_EQ(bv.count(), 5u);
    bv.clearAll();
    EXPECT_TRUE(bv.none());
}

TEST(BitVector, Covers)
{
    BitVector a(8), b(8);
    a.set(1);
    a.set(3);
    b.set(1);
    EXPECT_TRUE(a.covers(b));
    EXPECT_FALSE(b.covers(a));
    b.set(5);
    EXPECT_FALSE(a.covers(b));
}

TEST(BitVector, Intersects)
{
    BitVector a(8), b(8);
    a.set(2);
    b.set(3);
    EXPECT_FALSE(a.intersects(b));
    b.set(2);
    EXPECT_TRUE(a.intersects(b));
}

TEST(BitVector, AndOrEquality)
{
    BitVector a(8), b(8);
    a.set(1);
    a.set(2);
    b.set(2);
    b.set(3);
    BitVector both = a & b;
    EXPECT_EQ(both.count(), 1u);
    EXPECT_TRUE(both.test(2));
    BitVector either = a | b;
    EXPECT_EQ(either.count(), 3u);
    EXPECT_TRUE(a == a);
    EXPECT_FALSE(a == b);
}

TEST(BitVector, ToString)
{
    BitVector bv(4);
    bv.set(1);
    EXPECT_EQ(bv.toString(), "0100");
}

TEST(BitVector, ExactWordBoundarySizes)
{
    // Sizes straddling the 64-bit word granularity: the last word is
    // partial for 63 and 65, exactly full for 64 and 128. setAll()
    // must not set phantom bits past size() (they would corrupt
    // count(), all(), and equality), and the last bit must be
    // addressable.
    for (std::size_t n : {63u, 64u, 65u, 128u}) {
        BitVector bv(n);
        bv.setAll();
        EXPECT_EQ(bv.count(), n) << "size " << n;
        EXPECT_TRUE(bv.all()) << "size " << n;
        bv.clear(n - 1);
        EXPECT_FALSE(bv.all()) << "size " << n;
        EXPECT_EQ(bv.count(), n - 1) << "size " << n;
        bv.set(n - 1);
        EXPECT_TRUE(bv.all()) << "size " << n;
        EXPECT_EQ(bv.toString().size(), n) << "size " << n;
    }
}

TEST(BitVector, SetAlgebraAcrossWordBoundary)
{
    // Bits 63 and 64 land in different storage words; the set-algebra
    // helpers must compose them correctly.
    BitVector a(130), b(130);
    a.set(63);
    a.set(64);
    a.set(129);
    b.set(64);
    EXPECT_TRUE(a.covers(b));
    EXPECT_FALSE(b.covers(a));
    EXPECT_TRUE(a.intersects(b));
    b.clear(64);
    b.set(63);
    EXPECT_TRUE(a.intersects(b));
    b.clear(63);
    EXPECT_FALSE(a.intersects(b));

    BitVector both = a & a;
    EXPECT_TRUE(both == a);
    b.set(128);
    BitVector either = a | b;
    EXPECT_EQ(either.count(), 4u);
    EXPECT_TRUE(either.test(63));
    EXPECT_TRUE(either.test(64));
    EXPECT_TRUE(either.test(128));
    EXPECT_TRUE(either.test(129));
}

TEST(BitVector, EmptyVector)
{
    // The degenerate case every quantifier flips on: no bits means
    // none() and all() are both vacuously true, and an empty vector
    // covers (but never intersects) another empty vector.
    BitVector empty;
    EXPECT_EQ(empty.size(), 0u);
    EXPECT_TRUE(empty.none());
    EXPECT_TRUE(empty.all());
    EXPECT_EQ(empty.toString(), "");
    BitVector other;
    EXPECT_TRUE(empty.covers(other));
    EXPECT_FALSE(empty.intersects(other));
    EXPECT_TRUE(empty == other);
}

TEST(BitVector, ForEachSetAscending)
{
    BitVector bv(200);
    for (std::size_t i : {0u, 63u, 64u, 127u, 199u})
        bv.set(i);
    std::vector<std::size_t> seen;
    bv.forEachSet([&](std::size_t i) { seen.push_back(i); });
    EXPECT_EQ(seen, (std::vector<std::size_t>{0, 63, 64, 127, 199}));
}

// ----------------------------------------------------------------- HiBitset

TEST(HiBitset, StartsEmpty)
{
    HiBitset hs(300);
    EXPECT_EQ(hs.size(), 300u);
    EXPECT_TRUE(hs.empty());
    EXPECT_EQ(hs.count(), 0u);
    EXPECT_EQ(hs.first(), 300u);  // empty: first() == size()
    for (std::size_t i = 0; i < 300; ++i)
        EXPECT_FALSE(hs.test(i));
}

TEST(HiBitset, SetClearAcrossPayloadWords)
{
    // Members in three different payload words, exercising the
    // summary-word maintenance on both set and clear.
    HiBitset hs(300);
    hs.set(0);
    hs.set(63);
    hs.set(64);
    hs.set(255);
    EXPECT_EQ(hs.count(), 4u);
    EXPECT_EQ(hs.first(), 0u);
    EXPECT_TRUE(hs.test(64));
    EXPECT_FALSE(hs.test(65));
    hs.clear(0);
    hs.clear(63);  // word 0 now empty: summary bit must drop
    EXPECT_EQ(hs.first(), 64u);
    EXPECT_EQ(hs.count(), 2u);
    hs.clear(64);
    hs.clear(255);
    EXPECT_TRUE(hs.empty());
    // Clearing an already-clear bit is a no-op, not a corruption.
    hs.clear(128);
    EXPECT_TRUE(hs.empty());
    EXPECT_EQ(hs.count(), 0u);
}

TEST(HiBitset, ForEachAscending)
{
    HiBitset hs(1024);
    const std::vector<std::size_t> members = {3, 63, 64, 500, 1023};
    for (std::size_t i : members)
        hs.set(i);
    std::vector<std::size_t> seen;
    hs.forEach([&](std::size_t i) { seen.push_back(i); });
    EXPECT_EQ(seen, members);
}

TEST(HiBitset, ClearAllAndResize)
{
    HiBitset hs(1024);
    for (std::size_t i = 0; i < 1024; i += 37)
        hs.set(i);
    EXPECT_FALSE(hs.empty());
    hs.clearAll();
    EXPECT_TRUE(hs.empty());
    EXPECT_EQ(hs.count(), 0u);
    hs.set(1000);
    hs.resize(128);  // resize clears, too
    EXPECT_TRUE(hs.empty());
    EXPECT_EQ(hs.size(), 128u);
}

TEST(HiBitset, AssignFromAndUnion)
{
    HiBitset a(256), b(256), out(256);
    a.set(1);
    a.set(70);
    b.set(70);
    b.set(200);
    out.set(5);  // stale content must vanish on assign
    out.assignFrom(a);
    EXPECT_EQ(out.count(), 2u);
    EXPECT_TRUE(out.test(1));
    EXPECT_TRUE(out.test(70));
    EXPECT_FALSE(out.test(5));
    out.assignUnion(a, b);
    EXPECT_EQ(out.count(), 3u);
    EXPECT_TRUE(out.test(1));
    EXPECT_TRUE(out.test(70));
    EXPECT_TRUE(out.test(200));
}

TEST(HiBitset, FullCapacity)
{
    // 4096 bits (64 payload words) is the documented ceiling — the
    // 1024-processor machines sit well inside it.
    HiBitset hs(HiBitset::maxCapacity);
    hs.set(0);
    hs.set(HiBitset::maxCapacity - 1);
    EXPECT_EQ(hs.count(), 2u);
    EXPECT_EQ(hs.first(), 0u);
    hs.clear(0);
    EXPECT_EQ(hs.first(), HiBitset::maxCapacity - 1);
}

// ------------------------------------------------------------- RandomSource

TEST(RandomSource, Deterministic)
{
    RandomSource a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RandomSource, DifferentSeedsDiffer)
{
    RandomSource a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(RandomSource, BoundedStaysInBounds)
{
    RandomSource r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBounded(13), 13u);
}

TEST(RandomSource, BoundedHitsAllValues)
{
    RandomSource r(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(r.nextBounded(5));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(RandomSource, RangeInclusive)
{
    RandomSource r(3);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        std::int64_t v = r.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(RandomSource, DoubleInUnitInterval)
{
    RandomSource r(9);
    for (int i = 0; i < 1000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RandomSource, BoolRespectsProbability)
{
    RandomSource r(11);
    int trues = 0;
    for (int i = 0; i < 10000; ++i)
        trues += r.nextBool(0.25) ? 1 : 0;
    EXPECT_NEAR(trues / 10000.0, 0.25, 0.03);
}

TEST(RandomSource, JitterMeanApproximate)
{
    RandomSource r(13);
    double total = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        total += static_cast<double>(r.nextJitter(8.0));
    // Floor of an exponential with mean 8 has mean ~7.5.
    EXPECT_NEAR(total / n, 7.5, 0.5);
}

TEST(RandomSource, JitterZeroMeanIsZero)
{
    RandomSource r(13);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.nextJitter(0.0), 0u);
}

TEST(RandomSource, SplitIndependent)
{
    RandomSource parent(5);
    RandomSource child = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += parent.next() == child.next() ? 1 : 0;
    EXPECT_LT(same, 4);
}

// -------------------------------------------------------------------- Stats

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, Empty)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.min(), 0.0);
    EXPECT_EQ(d.max(), 0.0);
    EXPECT_EQ(d.stddev(), 0.0);
}

TEST(Distribution, Moments)
{
    Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_NEAR(d.stddev(), 2.0, 1e-9);
}

TEST(Distribution, Reset)
{
    Distribution d;
    d.sample(3.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    d.sample(1.0);
    EXPECT_DOUBLE_EQ(d.mean(), 1.0);
}

TEST(StatGroup, SharedByName)
{
    StatGroup g("test");
    g.counter("x").inc(3);
    EXPECT_EQ(g.counter("x").value(), 3u);
    EXPECT_TRUE(g.hasCounter("x"));
    EXPECT_FALSE(g.hasCounter("y"));
}

TEST(StatGroup, DumpFormat)
{
    StatGroup g("grp");
    g.counter("hits").inc(7);
    g.distribution("lat").sample(2.0);
    std::ostringstream oss;
    g.dump(oss);
    EXPECT_NE(oss.str().find("grp.hits = 7"), std::string::npos);
    EXPECT_NE(oss.str().find("grp.lat"), std::string::npos);
}

TEST(StatGroup, Reset)
{
    StatGroup g("grp");
    g.counter("a").inc(2);
    g.distribution("d").sample(1.0);
    g.reset();
    EXPECT_EQ(g.counter("a").value(), 0u);
    EXPECT_EQ(g.distribution("d").count(), 0u);
}

// ------------------------------------------------------------------ StrUtil

TEST(StrUtil, Trim)
{
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim("abc"), "abc");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("\ta b\n"), "a b");
}

TEST(StrUtil, Split)
{
    auto out = split("a,b,,c", ',');
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], "a");
    EXPECT_EQ(out[1], "b");
    EXPECT_EQ(out[2], "c");
    EXPECT_TRUE(split("", ',').empty());
}

TEST(StrUtil, SplitWhitespace)
{
    auto out = splitWhitespace("  ld  r1,   4(r2) ");
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], "ld");
    EXPECT_EQ(out[1], "r1,");
    EXPECT_EQ(out[2], "4(r2)");
}

TEST(StrUtil, StartsWith)
{
    EXPECT_TRUE(startsWith(".region 1", ".region"));
    EXPECT_FALSE(startsWith(".reg", ".region"));
}

TEST(StrUtil, ToLower)
{
    EXPECT_EQ(toLower("AdDi"), "addi");
}

TEST(StrUtil, ParseInt)
{
    std::int64_t v = 0;
    EXPECT_TRUE(parseInt("42", v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(parseInt("-7", v));
    EXPECT_EQ(v, -7);
    EXPECT_TRUE(parseInt("0x10", v));
    EXPECT_EQ(v, 16);
    EXPECT_FALSE(parseInt("", v));
    EXPECT_FALSE(parseInt("12x", v));
    EXPECT_FALSE(parseInt("r3", v));
}

// -------------------------------------------------------------------- Table

TEST(Table, PrintsAlignedRows)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.row().cell("alpha").cell(std::int64_t{12});
    t.row().cell("b").cell(3.14159, 2);
    EXPECT_EQ(t.numRows(), 2u);
    std::ostringstream oss;
    t.print(oss);
    std::string s = oss.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("3.14"), std::string::npos);
    EXPECT_NE(s.find("12"), std::string::npos);
}

TEST(Table, UnsignedAndPrecision)
{
    Table t("x");
    t.row().cell(std::uint64_t{18446744073709551615ull});
    t.row().cell(1.23456, 4);
    std::ostringstream oss;
    t.print(oss);
    EXPECT_NE(oss.str().find("18446744073709551615"), std::string::npos);
    EXPECT_NE(oss.str().find("1.2346"), std::string::npos);
}

// Repeat-suppressing warnings share process-global per-key counters,
// so every test below uses its own unique key.

TEST(Logging, WarnOnceReportsOnlyTheFirstOccurrence)
{
    ::testing::internal::CaptureStderr();
    warnOnce("test.once.a", "the first report");
    warnOnce("test.once.a", "the first report");
    warnOnce("test.once.a", "the first report");
    warnOnce("test.once.b", "a different key still reports");
    std::string out = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(countOccurrences(out, "the first report"), 1);
    EXPECT_EQ(countOccurrences(out, "a different key still reports"),
              1);
}

TEST(Logging, WarnRatelimitedReportsEveryNth)
{
    ::testing::internal::CaptureStderr();
    for (int i = 0; i < 25; ++i)
        warnRatelimited("test.rate.a", "noisy condition", 10);
    std::string out = ::testing::internal::GetCapturedStderr();
    // Occurrences 1, 11, and 21 report; the rest are suppressed.
    EXPECT_EQ(countOccurrences(out, "noisy condition"), 3);
    EXPECT_NE(out.find("suppressed"), std::string::npos);
}

TEST(Logging, WarnRatelimitedEveryOneNeverSuppresses)
{
    ::testing::internal::CaptureStderr();
    for (int i = 0; i < 5; ++i)
        warnRatelimited("test.rate.b", "always", 1);
    std::string out = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(countOccurrences(out, "always"), 5);
}

} // namespace
} // namespace fb
