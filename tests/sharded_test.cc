/**
 * @file
 * Differential suite for the sharded executor (INTERNALS section 17):
 * exec::ShardedMachine partitions a machine's processors across host
 * threads under a quantum-bounded skew window, and every observable —
 * each RunResult counter, registers, sync records, the safety oracle,
 * deadlock/timeout verdicts, fault and watchdog statistics, snapshot
 * bytes — must be byte-identical to the sequential core at any shard
 * count and any quantum. The suite sweeps the same 220-scenario
 * corpus as the equivalence suite (tests/harness.hh) across shard
 * counts {1,2,4,7} x quanta {1,16,256,4096}, including fault plans,
 * watchdog recovery, and mid-run checkpoint/restore with snapshots
 * crossing shard settings. Also the TSan target for the shard
 * rendezvous (see .github/workflows/ci.yml).
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/machine_pool.hh"
#include "exec/program_cache.hh"
#include "exec/sharded_machine.hh"
#include "harness.hh"
#include "sim/machine.hh"
#include "verify/generator.hh"
#include "verify/scenario.hh"

namespace
{

using namespace fb;
using namespace fb::harness;

constexpr int kShardOptions[] = {2, 4, 7};
constexpr std::uint64_t kQuantumOptions[] = {1, 16, 256, 4096};

/** Rotate the (shards, quantum) pair per corpus seed so the sweep
 * covers the whole matrix without running 220 x 12 scenarios. */
void
shardParamsFor(std::uint64_t seed, int &shards, std::uint64_t &quantum)
{
    shards = kShardOptions[seed % 3];
    quantum = kQuantumOptions[(seed / 3) % 4];
}

/** Run one corpus seed sequentially and under (shards, quantum) and
 * require byte-identical observations. */
void
checkSharded(std::uint64_t seed, bool with_faults, int shards,
             std::uint64_t quantum, exec::MachinePool *pool = nullptr,
             exec::ProgramCache *cache = nullptr,
             std::uint64_t *recoveries_seen = nullptr)
{
    verify::ProgramSpec spec = verify::randomSpec(seed);
    verify::Scenario sc = verify::render(spec);
    if (with_faults)
        attachFaults(sc, corpusFaultSeed(seed));
    std::vector<isa::Program> programs;
    ASSERT_TRUE(assemblePrograms(sc, programs, cache))
        << "seed " << seed;

    Knobs k = knobsFor(seed);
    std::string ctx = describeSeed(seed, with_faults, k) +
                      " shards=" + std::to_string(shards) +
                      " quantum=" + std::to_string(quantum);

    sim::MachineConfig cfg_seq = configFor(sc, k, true);
    sim::MachineConfig cfg_sh = cfg_seq;
    cfg_sh.shardCount = shards;
    cfg_sh.shardQuantum = quantum;

    Observation sequential = runOnce(sc, programs, cfg_seq, pool);
    Observation sharded = runOnce(sc, programs, cfg_sh, pool);
    expectIdentical(sharded, sequential, ctx);
    if (recoveries_seen)
        *recoveries_seen += sequential.result.recoveries.size();
}

// The tentpole guarantee, fault-free half: the full corpus matches
// the sequential core with the shard matrix rotated across seeds,
// on pooled machines (shard fields are reset-time parameters).
TEST(Sharded, MatchesSequentialOnFuzzPrograms)
{
    exec::MachinePool pool;
    exec::ProgramCache cache;
    for (std::uint64_t seed = 1; seed <= kFaultFreeSeeds; ++seed) {
        int shards;
        std::uint64_t quantum;
        shardParamsFor(seed, shards, quantum);
        checkSharded(seed, false, shards, quantum, &pool, &cache);
    }
    EXPECT_GT(pool.reuses(), 0u);
}

// Fault half: kills, freezes, pulse drops, IRQ storms, bit flips and
// watchdog mask-shrink recovery must all land on the identical cycle
// under sharding — the window logic must collapse around every
// injector activity and watchdog deadline.
TEST(Sharded, MatchesSequentialUnderFaults)
{
    exec::MachinePool pool;
    exec::ProgramCache cache;
    std::uint64_t recoveries = 0;
    for (std::uint64_t seed = 1; seed <= kFaultSeeds; ++seed) {
        int shards;
        std::uint64_t quantum;
        shardParamsFor(seed, shards, quantum);
        checkSharded(seed, true, shards, quantum, &pool, &cache,
                     &recoveries);
    }
    EXPECT_GT(pool.reuses(), 0u);
    // The sweep must actually exercise watchdog recovery under
    // sharding, or the fault half proves nothing about it.
    EXPECT_GT(recoveries, 0u)
        << "fault sweep never hit the watchdog recovery path";
}

// Full shard x quantum cross product on a handful of seeds (two of
// them with fault plans), including shards=1 (clamp/fallback) and
// shards=7 (uneven ranges over small processor counts).
TEST(Sharded, FullMatrixOnSelectSeeds)
{
    exec::MachinePool pool;
    exec::ProgramCache cache;
    const std::uint64_t seeds[] = {3, 10, 21, 42};
    for (std::uint64_t seed : seeds) {
        const bool with_faults = (seed % 2 == 1);
        for (int shards : {1, 2, 4, 7})
            for (std::uint64_t quantum : kQuantumOptions)
                checkSharded(seed, with_faults, shards, quantum,
                             &pool, &cache);
    }
}

// The paper's Fig. 2 tag-mismatch deadlock: the sharded run must
// diagnose it at the identical cycle with the identical state dump —
// run-ahead must never carry a processor past the no-progress cycle.
TEST(Sharded, DeadlockDetectionMatches)
{
    verify::Scenario sc;
    sc.groupSizes = {2};
    sc.episodes = 1;
    sc.sources = {
        "settag 1\nsetmask 3\n.region\nnop\n.endregion\nnop\n"
        "halt\n",
        "settag 1\nsetmask 3\n.region\nnop\n.endregion\n"
        "settag 2\n.region\nnop\n.endregion\nnop\nhalt\n",
    };
    std::vector<isa::Program> programs;
    ASSERT_TRUE(assemblePrograms(sc, programs));
    Knobs k;
    for (std::uint64_t quantum : kQuantumOptions) {
        sim::MachineConfig cfg_sh = configFor(sc, k, true);
        cfg_sh.shardCount = 2;
        cfg_sh.shardQuantum = quantum;
        Observation sequential =
            runOnce(sc, programs, configFor(sc, k, true));
        Observation sharded = runOnce(sc, programs, cfg_sh);
        EXPECT_TRUE(sequential.result.deadlocked);
        expectIdentical(sharded, sequential,
                        "fig2-deadlock q=" + std::to_string(quantum));
    }
}

// A runaway spinner must trip the maxCycles guard at exactly the same
// cycle: the window bound clamps at maxCycles even when the quantum
// would reach past it.
TEST(Sharded, TimeoutMatches)
{
    verify::Scenario sc;
    sc.groupSizes = {2};
    sc.episodes = 1;
    sc.sources = {
        "settag 1\nsetmask 3\nli r1, 0\nloop:\naddi r1, r1, 1\n"
        "jmp loop\n",
        "settag 1\nsetmask 3\n.region\nnop\n.endregion\nnop\n"
        "halt\n",
    };
    std::vector<isa::Program> programs;
    ASSERT_TRUE(assemblePrograms(sc, programs));
    Knobs k;
    for (std::uint64_t quantum : {16ull, 4096ull}) {
        sim::MachineConfig cfg = configFor(sc, k, true);
        cfg.maxCycles = 5000;
        cfg.shardCount = 2;
        cfg.shardQuantum = quantum;
        sim::Machine m(cfg);
        Observation obs = observeRun(sc, programs, m);
        EXPECT_TRUE(obs.result.timedOut)
            << "quantum " << quantum;
        EXPECT_EQ(obs.result.cycles, 5000u) << "quantum " << quantum;
    }
}

// Mid-run checkpoint/restore across shard settings: a snapshot
// captured during a sharded run restores into a machine running under
// a different shard count (including sequential), and the resumed run
// reproduces the uninterrupted sequential run exactly. Shard fields
// are excluded from the config fingerprint, so the interop is legal
// by construction; this holds it to byte-identical results.
TEST(Sharded, CheckpointRestoreCrossesShardSettings)
{
    // (restore-side shards, quantum) rotated per scenario; 1/0 is the
    // plain sequential core.
    const std::pair<int, std::uint64_t> restore_params[] = {
        {1, 0}, {2, 16}, {7, 4096}};
    int verified = 0;
    for (std::uint64_t seed = 1; seed <= 30 && verified < 6; ++seed) {
        verify::ProgramSpec spec = verify::randomSpec(seed);
        verify::Scenario sc = verify::render(spec);
        if (seed % 3 == 0)
            attachFaults(sc, corpusFaultSeed(seed));
        std::vector<isa::Program> programs;
        ASSERT_TRUE(assemblePrograms(sc, programs)) << "seed " << seed;
        Knobs k = knobsFor(seed);

        // Uninterrupted sequential baseline, and its length.
        Observation base =
            runOnce(sc, programs, configFor(sc, k, true));
        if (base.result.cycles < 32)
            continue; // too short for a mid-run checkpoint

        // Sharded run with a checkpoint sink capturing the first
        // snapshot (roughly mid-run). Checkpointing must not perturb
        // the sharded result either.
        sim::MachineConfig cfg_cap = configFor(sc, k, true);
        cfg_cap.shardCount = 4;
        cfg_cap.shardQuantum = 256;
        cfg_cap.checkpointEveryCycles = base.result.cycles / 2;
        sim::Machine capture(cfg_cap);
        for (int p = 0; p < sc.procs(); ++p)
            capture.loadProgram(p,
                                programs[static_cast<std::size_t>(p)]);
        std::vector<std::uint8_t> snap;
        std::uint64_t snap_cycle = 0;
        capture.setCheckpointSink(
            [&](std::uint64_t cycle,
                const std::vector<std::uint8_t> &bytes) {
                snap = bytes;
                snap_cycle = cycle;
                return false; // first checkpoint only
            });
        exec::ShardedMachine sharded(capture);
        sim::RunResult captured = sharded.run();
        EXPECT_EQ(captured.cycles, base.result.cycles)
            << "seed " << seed;
        ASSERT_FALSE(snap.empty()) << "seed " << seed;
        ASSERT_GT(snap_cycle, 0u) << "seed " << seed;
        ASSERT_LT(snap_cycle, base.result.cycles) << "seed " << seed;

        // Restore under a different shard setting and finish the run.
        const auto &[rs, rq] =
            restore_params[static_cast<std::size_t>(verified) % 3];
        sim::MachineConfig cfg_res = configFor(sc, k, true);
        cfg_res.shardCount = rs;
        cfg_res.shardQuantum = rq;
        sim::Machine resumed(cfg_res);
        for (int p = 0; p < sc.procs(); ++p)
            resumed.loadProgram(p,
                                programs[static_cast<std::size_t>(p)]);
        std::string err;
        ASSERT_TRUE(resumed.restoreState(snap, err))
            << "seed " << seed << ": " << err;
        exec::ShardedMachine resharded(resumed);
        sim::RunResult rr = resharded.run();

        std::string ctx = describeSeed(seed, sc.hasFaults(), k) +
                          " resume shards=" + std::to_string(rs) +
                          " quantum=" + std::to_string(rq) + " at=" +
                          std::to_string(snap_cycle);
        EXPECT_EQ(rr.cycles, base.result.cycles) << ctx;
        EXPECT_EQ(rr.deadlocked, base.result.deadlocked) << ctx;
        EXPECT_EQ(rr.timedOut, base.result.timedOut) << ctx;
        EXPECT_EQ(rr.syncEvents, base.result.syncEvents) << ctx;
        EXPECT_EQ(rr.memAccesses, base.result.memAccesses) << ctx;
        EXPECT_EQ(rr.busRequests, base.result.busRequests) << ctx;
        for (int p = 0; p < sc.procs(); ++p)
            for (int i = 0; i < isa::numRegisters; ++i)
                EXPECT_EQ(resumed.processor(p).reg(i),
                          base.regs[static_cast<std::size_t>(p)]
                                   [static_cast<std::size_t>(i)])
                    << ctx << " cpu" << p << " r" << i;
        ++verified;
    }
    // The seed range must yield enough long-running scenarios for the
    // rotation to cover every restore-side shard setting.
    EXPECT_GE(verified, 3);
}

// MachinePool leases are shard-aware for free: shard fields are not
// part of the structural key, so a lease taken for a sharded config
// recycles a machine built for a sequential one (and vice versa),
// with reset() reapplying the shard parameters.
TEST(Sharded, PoolLeasesCrossShardSettings)
{
    exec::MachinePool pool;
    sim::MachineConfig cfg;
    cfg.numProcessors = 4;
    cfg.memWords = 1024;
    {
        auto a = pool.acquire(cfg);
        ASSERT_TRUE(bool(a));
        EXPECT_EQ(pool.builds(), 1u);
    }
    sim::MachineConfig sharded = cfg;
    sharded.shardCount = 4;
    sharded.shardQuantum = 256;
    {
        auto b = pool.acquire(sharded);
        EXPECT_EQ(pool.builds(), 1u);
        EXPECT_EQ(pool.reuses(), 1u);
        EXPECT_EQ((*b).config().shardCount, 4);
        EXPECT_EQ((*b).config().shardQuantum, 256u);
    }
    // And the recycled machine still produces identical bytes: one
    // corpus seed, sharded, pooled vs fresh.
    exec::ProgramCache cache;
    checkSharded(5, true, 4, 16, &pool, &cache);
}

// The executor must fall back to the plain sequential core — zero
// threads — whenever sharding cannot apply, and clamp the shard count
// to the processor count.
TEST(Sharded, FallsBackWhenShardingCannotApply)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = 2;
    cfg.memWords = 256;
    cfg.shardCount = 4;
    cfg.shardQuantum = 0; // the documented off switch
    {
        sim::Machine m(cfg);
        EXPECT_EQ(exec::ShardedMachine(m).shards(), 1);
    }
    cfg.shardQuantum = 16;
    cfg.fastForward = false; // window logic rides on fast-forward
    {
        sim::Machine m(cfg);
        EXPECT_EQ(exec::ShardedMachine(m).shards(), 1);
    }
    cfg.fastForward = true;
    cfg.traceBarrierStates = true; // tracing needs per-cycle loop
    {
        sim::Machine m(cfg);
        EXPECT_EQ(exec::ShardedMachine(m).shards(), 1);
    }
    cfg.traceBarrierStates = false;
    {
        // More shards than processors: clamped, not rejected.
        sim::Machine m(cfg);
        EXPECT_EQ(exec::ShardedMachine(m).shards(), 2);
    }
}

} // namespace
