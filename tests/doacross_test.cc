/**
 * @file
 * Integration tests for cycle shrinking (the section 1 transformation)
 * running on the simulated machine with fuzzy barriers between
 * iteration groups.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "compiler/transforms.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"

namespace fb::compiler
{
namespace
{

constexpr std::int64_t kBase = 256;

isa::Program
assembleOrDie(const std::string &src)
{
    isa::Program p;
    std::string err;
    if (!isa::Assembler::assemble(src, p, err))
        ADD_FAILURE() << "assembly failed: " << err;
    return p;
}

/** Processor @p self of @p d executes a[i] = a[i-d] + i for its
 * column of each group, with a fuzzy barrier between groups. */
std::string
shrunkSource(int trip, int d, int self)
{
    const int groups = (trip + d - 1) / d;
    std::ostringstream oss;
    oss << "settag 1\n";
    oss << "setmask " << ((1ll << d) - 1) << "\n";
    oss << "li r9, " << self << "\n";
    oss << "li r2, " << groups << "\n";
    oss << "li r8, 0\n";
    oss << "loop:\n";
    oss << "muli r1, r8, " << d << "\n";
    oss << "add r1, r1, r9\n";
    // Guard the ragged final group.
    oss << "li r26, " << trip << "\n";
    oss << "bge r1, r26, skip\n";
    oss << "addi r20, r1, " << (kBase - d) << "\n";
    oss << "ld r21, 0(r20)\n";
    oss << "add r22, r21, r1\n";
    oss << "addi r23, r1, " << kBase << "\n";
    oss << "st r22, 0(r23)\n";
    oss << "skip:\n";
    oss << ".region 1\n";
    oss << "addi r8, r8, 1\n";
    oss << "bne r8, r2, loop\n";
    oss << ".endregion\n";
    oss << "halt\n";
    return oss.str();
}

std::vector<std::int64_t>
reference(int trip, int d)
{
    std::vector<std::int64_t> a(static_cast<std::size_t>(trip) + 32, 0);
    for (int i = 0; i < trip; ++i) {
        std::int64_t prev =
            i >= d ? a[static_cast<std::size_t>(i - d)] : 0;
        a[static_cast<std::size_t>(i)] = prev + i;
    }
    return a;
}

class CycleShrinkRun
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(CycleShrinkRun, ExactResultWithGroupBarriers)
{
    auto [trip, d] = GetParam();
    sim::MachineConfig cfg;
    cfg.numProcessors = d;
    cfg.memWords = 2048;
    cfg.jitterMean = 1.0;
    cfg.seed = 3;
    cfg.maxCycles = 10'000'000;
    sim::Machine m(cfg);
    for (int p = 0; p < d; ++p)
        m.loadProgram(p, assembleOrDie(shrunkSource(trip, d, p)));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked) << r.deadlockInfo;
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(m.checkSafetyProperty(), "");

    // The group structure must agree with the transform.
    auto groups = cycleShrink(trip, d);
    EXPECT_EQ(r.syncEvents, groups.size());

    auto ref = reference(trip, d);
    for (int i = 0; i < trip; ++i) {
        EXPECT_EQ(m.memory().peek(static_cast<std::size_t>(kBase + i)),
                  ref[static_cast<std::size_t>(i)])
            << "a[" << i << "], trip=" << trip << " d=" << d;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CycleShrinkRun,
    ::testing::Values(std::make_pair(16, 2), std::make_pair(24, 4),
                      std::make_pair(30, 4),  // ragged final group
                      std::make_pair(40, 8),
                      std::make_pair(9, 3)),
    [](const ::testing::TestParamInfo<std::pair<int, int>> &info) {
        return "t" + std::to_string(info.param.first) + "_d" +
               std::to_string(info.param.second);
    });

} // namespace
} // namespace fb::compiler
