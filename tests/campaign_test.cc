/**
 * @file
 * Campaign execution engine tests (INTERNALS section 16): the
 * work-stealing pool, machine recycling, program interning, and the
 * engine's headline guarantee — a campaign's consumer-visible output
 * is byte-identical at any --jobs count, including campaigns that mix
 * fault plans and checkpoint/restore runs on recycled machines.
 */

#include <atomic>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/campaign.hh"
#include "exec/machine_pool.hh"
#include "exec/ordered_emitter.hh"
#include "exec/pool.hh"
#include "exec/program_cache.hh"
#include "fault/plan.hh"
#include "harness.hh"
#include "sim/machine.hh"
#include "verify/differ.hh"
#include "verify/generator.hh"
#include "verify/resume.hh"

namespace
{

using namespace fb;
using harness::attachFaults;

/**
 * One campaign item: a generated scenario through the differential
 * matrix on the worker's pooled machines, every third seed with a
 * fault plan, every fifth seed additionally through the A/B/C
 * checkpoint/restore oracle (three more pooled machines). The payload
 * is a deterministic journal line.
 */
exec::ItemResult
runJournalSeed(std::uint64_t i, exec::WorkerContext &ctx)
{
    const std::uint64_t seed = 1000 + i;
    auto spec = verify::randomSpec(seed);
    if (i % 3 == 0)
        attachFaults(spec, seed * 17 + 3);
    auto sc = verify::render(spec);

    verify::DiffOptions d;
    d.swBarrierReference = false;  // keep the 220-seed sweep fast
    d.machinePool = &ctx.machines;
    d.programCache = &ctx.programs;
    auto rep = verify::runDifferential(sc, d);

    std::ostringstream line;
    line << "seed=" << seed << " ok=" << rep.ok << " fp=" << std::hex
         << rep.baseline.hash() << std::dec;
    if (i % 5 == 0) {
        auto rr = verify::checkResumeEquivalence(
            sc, seed * 31, true, 5'000'000, &ctx.machines,
            &ctx.programs);
        line << " resume=" << rr.ok << " k=" << rr.checkpointCycle
             << " snap=" << rr.snapshotTaken;
        if (!rr.ok)
            line << " why=" << rr.failure;
    }
    line << "\n";

    exec::ItemResult r;
    r.failed = !rep.ok;
    r.payload = line.str();
    return r;
}

/** Run a journal campaign of @p seeds items at @p jobs and return the
 * output stream; @p runner defaults to the standard journal item. */
std::string
journalAt(int jobs, std::uint64_t seeds, exec::CampaignStats *stats_out,
          const exec::ItemRunner &runner = runJournalSeed)
{
    exec::CampaignOptions opt;
    opt.jobs = jobs;
    std::string journal;
    std::uint64_t expected = 0;
    auto stats = exec::runCampaign(
        seeds, opt, runner,
        [&](std::uint64_t i, const exec::ItemResult &r) {
            EXPECT_EQ(i, expected) << "consumer saw indices out of order";
            ++expected;
            journal += r.payload;
        });
    EXPECT_EQ(expected, seeds);
    if (stats_out)
        *stats_out = stats;
    return journal;
}

// The tentpole guarantee: 220 generated scenarios — fault plans on
// every third, checkpoint/restore on every fifth — produce the same
// journal bytes at jobs=1 and jobs=4, and no scenario fails.
TEST(Campaign, JournalIdenticalAcrossJobs)
{
    constexpr std::uint64_t seeds = 220;
    exec::CampaignStats s1, s4;
    const std::string j1 = journalAt(1, seeds, &s1);
    const std::string j4 = journalAt(4, seeds, &s4);
    EXPECT_EQ(j1, j4);
    EXPECT_EQ(s1.failures, 0u);
    EXPECT_EQ(s4.failures, 0u);
    // The engine actually recycled machines in both modes — the sweep
    // exercises Machine::reset(), not just fresh construction.
    EXPECT_GT(s1.machinesReused, 0u);
    EXPECT_GT(s4.machinesReused, 0u);
    EXPECT_GT(s4.programsInterned, 0u);
    // Every journal line carries an oracle verdict; none may fail.
    EXPECT_EQ(j1.find("ok=0"), std::string::npos);
    EXPECT_EQ(j1.find("resume=0"), std::string::npos);
}

/**
 * One fbfuzz-style `--faults --cursor` journal item: a fault plan on
 * EVERY seed (not every third), the differential matrix, and a
 * `done <idx> pass|fail fp=<hex>` line — the format the cursor parses
 * to decide where a resumed campaign picks up.
 */
exec::ItemResult
runFaultedCursorSeed(std::uint64_t i, exec::WorkerContext &ctx)
{
    const std::uint64_t seed = 5000 + i;
    auto spec = verify::randomSpec(seed);
    attachFaults(spec, seed * 17 + 3);
    auto sc = verify::render(spec);

    verify::DiffOptions d;
    d.swBarrierReference = false;
    d.machinePool = &ctx.machines;
    d.programCache = &ctx.programs;
    auto rep = verify::runDifferential(sc, d);

    std::ostringstream line;
    line << "done " << i << ' ' << (rep.ok ? "pass" : "fail")
         << " fp=" << std::hex << rep.baseline.hash() << std::dec
         << "\n";
    exec::ItemResult r;
    r.failed = !rep.ok;
    r.payload = line.str();
    return r;
}

// The fbfuzz --faults + --cursor combination at the engine level: an
// all-faults journal is byte-identical at jobs=1 and jobs=4, and a
// mid-journal interruption resumed via the cursor (prefix marked
// done, remainder re-dispatched with offset indices) stitches back
// into exactly the uninterrupted bytes — again at both job counts.
TEST(Campaign, FaultedCursorResumeMatchesUninterrupted)
{
    constexpr std::uint64_t seeds = 48;
    constexpr std::uint64_t cursor = 19; // interrupt mid-journal
    exec::CampaignStats s1, s4;
    const std::string full1 =
        journalAt(1, seeds, &s1, runFaultedCursorSeed);
    const std::string full4 =
        journalAt(4, seeds, &s4, runFaultedCursorSeed);
    EXPECT_EQ(full1, full4);
    EXPECT_EQ(s1.failures, 0u);
    EXPECT_EQ(s4.failures, 0u);
    EXPECT_EQ(full1.find(" fail"), std::string::npos);

    // Interrupted run: only [0, cursor) made it into the journal.
    const std::string prefix =
        journalAt(1, cursor, nullptr, runFaultedCursorSeed);

    // Cursor resume re-dispatches [cursor, seeds) — the runner sees
    // engine indices [0, seeds-cursor) and offsets them, exactly as
    // fbfuzz maps post-cursor work back onto campaign items.
    for (int jobs : {1, 4}) {
        const std::string tail = journalAt(
            jobs, seeds - cursor, nullptr,
            [](std::uint64_t i, exec::WorkerContext &ctx) {
                return runFaultedCursorSeed(i + cursor, ctx);
            });
        EXPECT_EQ(prefix + tail, full1) << "jobs=" << jobs;
    }
}

// A machine leased from the pool must be observably identical to a
// fresh one: the full differential report (baseline fingerprint and
// verdict) matches fresh construction for every seed.
TEST(Campaign, PooledMachineMatchesFresh)
{
    exec::MachinePool pool;
    exec::ProgramCache programs;
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        auto spec = verify::randomSpec(seed);
        if (seed % 4 == 0)
            attachFaults(spec, seed * 13 + 1);
        auto sc = verify::render(spec);

        verify::DiffOptions fresh;
        fresh.swBarrierReference = false;
        auto freshRep = verify::runDifferential(sc, fresh);

        verify::DiffOptions pooled = fresh;
        pooled.machinePool = &pool;
        pooled.programCache = &programs;
        auto pooledRep = verify::runDifferential(sc, pooled);

        EXPECT_EQ(freshRep.ok, pooledRep.ok) << "seed " << seed;
        EXPECT_EQ(freshRep.baseline.hash(), pooledRep.baseline.hash())
            << "seed " << seed;
        EXPECT_EQ(freshRep.variantsRun, pooledRep.variantsRun)
            << "seed " << seed;
    }
    EXPECT_GT(pool.reuses(), 0u);
}

TEST(Campaign, MachinePoolReusesAndResets)
{
    exec::MachinePool pool;
    sim::MachineConfig cfg;
    cfg.numProcessors = 2;
    cfg.memWords = 1024;

    {
        auto a = pool.acquire(cfg);
        ASSERT_TRUE(bool(a));
        EXPECT_EQ(pool.builds(), 1u);
    }
    // Same structural shape: recycled, not rebuilt — even with
    // different timing knobs (reset() reconfigures those).
    sim::MachineConfig retimed = cfg;
    retimed.pipelineDepth = 4;
    retimed.seed = 99;
    {
        auto b = pool.acquire(retimed);
        EXPECT_EQ(pool.builds(), 1u);
        EXPECT_EQ(pool.reuses(), 1u);
    }
    // Different shape: a new machine.
    sim::MachineConfig wider = cfg;
    wider.numProcessors = 4;
    {
        auto c = pool.acquire(wider);
        EXPECT_EQ(pool.builds(), 2u);
    }
    // Concurrent leases of the same shape are distinct machines (the
    // resume oracle holds three at once).
    auto x = pool.acquire(cfg);
    auto y = pool.acquire(cfg);
    auto z = pool.acquire(cfg);
    EXPECT_NE(x.get(), y.get());
    EXPECT_NE(y.get(), z.get());
    EXPECT_NE(x.get(), z.get());
}

TEST(Campaign, ProgramCacheInternsBySource)
{
    exec::ProgramCache cache;
    const std::string src = ".region\nnop\n.endregion\nhalt\n";
    auto a = cache.intern(src);
    auto b = cache.intern(src);
    ASSERT_TRUE(a->ok) << a->error;
    EXPECT_EQ(a.get(), b.get());  // same interned object
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_GT(a->bits.size(), 0u);
    EXPECT_EQ(a->markers.size(), a->bits.size() + 2)
        << "marker encoding brackets each region with bm/em markers";

    // Assembly failures are interned too, so a bad generated program
    // is diagnosed once, not re-assembled per variant.
    auto bad = cache.intern("not-an-instruction r999\n");
    EXPECT_FALSE(bad->ok);
    EXPECT_FALSE(bad->error.empty());
    EXPECT_EQ(cache.intern("not-an-instruction r999\n").get(),
              bad.get());
}

TEST(Campaign, WorkStealingPoolRunsAllTasks)
{
    // Far more tasks than capacity: submission must backpressure, and
    // every task must run exactly once across the workers.
    constexpr int tasks = 1000;
    std::vector<std::atomic<int>> ran(tasks);
    for (auto &r : ran)
        r.store(0);
    std::atomic<int> total{0};
    {
        exec::WorkStealingPool pool(4, 8);
        for (int i = 0; i < tasks; ++i) {
            pool.submit([&, i](int worker) {
                EXPECT_GE(worker, 0);
                EXPECT_LT(worker, 4);
                ran[static_cast<std::size_t>(i)].fetch_add(1);
                total.fetch_add(1);
            });
        }
        pool.drain();
        EXPECT_EQ(total.load(), tasks);
    }
    for (int i = 0; i < tasks; ++i)
        EXPECT_EQ(ran[static_cast<std::size_t>(i)].load(), 1)
            << "task " << i;
}

// A runner that throws must surface as a failed item carrying the
// exception text — not tear down the campaign — and the output must
// stay byte-identical across job counts with the failures in place.
TEST(Campaign, ThrowingRunnerBecomesFailedResult)
{
    auto throwy = [](std::uint64_t i,
                     exec::WorkerContext &) -> exec::ItemResult {
        if (i % 11 == 4)
            throw std::runtime_error("bug in item " +
                                     std::to_string(i));
        if (i % 13 == 6)
            throw 42;  // non-standard exception
        exec::ItemResult r;
        r.payload = "ok " + std::to_string(i) + "\n";
        return r;
    };

    constexpr std::uint64_t seeds = 60;
    exec::CampaignStats s1, s4;
    const std::string j1 = journalAt(1, seeds, &s1, throwy);
    const std::string j4 = journalAt(4, seeds, &s4, throwy);
    EXPECT_EQ(j1, j4);
    std::uint64_t expectFails = 0;
    for (std::uint64_t i = 0; i < seeds; ++i)
        if (i % 11 == 4 || i % 13 == 6)
            ++expectFails;
    EXPECT_EQ(s1.failures, expectFails);
    EXPECT_EQ(s4.failures, expectFails);
    EXPECT_NE(j1.find("EXCEPTION item=4: bug in item 4"),
              std::string::npos)
        << j1;
    EXPECT_NE(j1.find("EXCEPTION item=6: (non-standard exception)"),
              std::string::npos)
        << j1;
}

// --- OrderedEmitter --------------------------------------------------

struct EmitterLog
{
    std::string out;
    exec::ItemConsumer consume = [this](std::uint64_t i,
                                        const exec::ItemResult &r) {
        out += std::to_string(i) + ":" + r.payload + ";";
    };
};

exec::ItemResult
payload(const std::string &s, bool failed = false)
{
    exec::ItemResult r;
    r.payload = s;
    r.failed = failed;
    return r;
}

// Adversarial completion orders: whatever order results arrive in,
// consumption is in index order and each index is consumed exactly
// once, with the stream flushed as far as the contiguous prefix.
TEST(OrderedEmitter, ReordersArbitraryCompletionOrders)
{
    const std::vector<std::vector<std::uint64_t>> orders = {
        {0, 1, 2, 3, 4, 5},  // already ordered
        {5, 4, 3, 2, 1, 0},  // fully reversed
        {3, 0, 5, 1, 4, 2},  // interleaved
        {1, 2, 3, 4, 5, 0},  // prefix gated by the very first item
    };
    for (const auto &order : orders) {
        EmitterLog log;
        exec::OrderedEmitter em(log.consume);
        for (std::uint64_t i : order)
            EXPECT_TRUE(em.deliver(i, payload("p" + std::to_string(i))));
        EXPECT_EQ(log.out, "0:p0;1:p1;2:p2;3:p3;4:p4;5:p5;");
        EXPECT_EQ(em.next(), 6u);
        EXPECT_EQ(em.pendingCount(), 0u);
        EXPECT_EQ(em.duplicates(), 0u);
    }
}

TEST(OrderedEmitter, GapGatesTheStreamUntilFilled)
{
    EmitterLog log;
    exec::OrderedEmitter em(log.consume);
    EXPECT_TRUE(em.deliver(1, payload("b")));
    EXPECT_TRUE(em.deliver(3, payload("d")));
    EXPECT_EQ(log.out, "");  // nothing flushes past the hole at 0
    EXPECT_EQ(em.pendingCount(), 2u);
    EXPECT_TRUE(em.seen(1));
    EXPECT_FALSE(em.seen(0));

    // Failed and quarantined gap items release the stream like any
    // other delivery — a failure must not wedge the ordered prefix.
    EXPECT_TRUE(em.deliver(0, payload("FAIL a", true)));
    EXPECT_EQ(log.out, "0:FAIL a;1:b;");
    {
        exec::ItemResult q;
        q.failed = true;
        q.quarantined = true;
        q.payload = "QUARANTINE c";
        EXPECT_TRUE(em.deliver(2, std::move(q)));
    }
    EXPECT_EQ(log.out, "0:FAIL a;1:b;2:QUARANTINE c;3:d;");
    EXPECT_EQ(em.next(), 4u);
}

// At-least-once upstream, exactly-once downstream: duplicates of both
// already-flushed and still-pending indices are dropped and counted.
TEST(OrderedEmitter, DuplicateDeliveriesAreDroppedAndCounted)
{
    EmitterLog log;
    exec::OrderedEmitter em(log.consume);
    EXPECT_TRUE(em.deliver(0, payload("x")));
    EXPECT_FALSE(em.deliver(0, payload("x-again")));  // already flushed
    EXPECT_TRUE(em.deliver(2, payload("z")));
    EXPECT_FALSE(em.deliver(2, payload("z-again")));  // still pending
    EXPECT_TRUE(em.deliver(1, payload("y")));
    EXPECT_EQ(log.out, "0:x;1:y;2:z;");
    EXPECT_EQ(em.duplicates(), 2u);
}

TEST(Campaign, ResumeEquivalenceOnPooledMachines)
{
    exec::MachinePool pool;
    exec::ProgramCache programs;
    for (std::uint64_t seed = 300; seed < 315; ++seed) {
        auto spec = verify::randomSpec(seed);
        if (seed % 2 == 0)
            attachFaults(spec, seed + 5);
        auto sc = verify::render(spec);
        auto rep = verify::checkResumeEquivalence(
            sc, seed * 7 + 1, true, 5'000'000, &pool, &programs);
        EXPECT_TRUE(rep.ok)
            << "seed " << seed << " K=" << rep.checkpointCycle << ": "
            << rep.failure;
    }
    EXPECT_GT(pool.reuses(), 0u);
}

} // namespace
