/**
 * @file
 * Shared differential-test harness for the equivalence, sharding and
 * campaign suites: the corpus seed constants, the per-seed timing
 * knobs, scenario-to-config assembly, the run observer (which routes
 * through exec::ShardedMachine so a config with shardCount > 1 is
 * exercised under real host threads), the exact-match oracle over
 * every RunResult field, and the fault-plan attachment used across
 * the corpus. Header-only so each test binary keeps its own copy.
 */

#ifndef FB_TESTS_HARNESS_HH
#define FB_TESTS_HARNESS_HH

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/machine_pool.hh"
#include "exec/program_cache.hh"
#include "exec/sharded_machine.hh"
#include "fault/plan.hh"
#include "isa/assembler.hh"
#include "sim/decoded.hh"
#include "sim/machine.hh"
#include "verify/scenario.hh"

namespace fb::harness
{

// The equivalence corpus: 140 fault-free + 80 fault-plan scenarios =
// 220 fuzz-generated programs cross-checked per run, exceeding the
// 200-program floor. The sharded suite sweeps the same population.
inline constexpr std::uint64_t kFaultFreeSeeds = 140;
inline constexpr std::uint64_t kFaultSeeds = 80;

/** Machine knobs varied per seed, on top of the scenario itself. */
struct Knobs
{
    int pipelineDepth = 1;
    int issueWidth = 1;
    double jitterMean = 0.0;
    std::uint32_t syncLatency = 0;
    sim::StallModel stall = sim::StallModel::hardware();
};

/** Derive timing knobs from the seed so the population covers the
 * whole matrix without a combinatorial test explosion. */
inline Knobs
knobsFor(std::uint64_t seed)
{
    Knobs k;
    k.pipelineDepth = 1 + static_cast<int>(seed % 4);         // 1..4
    k.issueWidth = (seed % 3 == 0) ? 4 : 1;
    k.jitterMean = (seed % 5 == 0) ? 1.5 : 0.0;
    k.syncLatency = static_cast<std::uint32_t>((seed / 3) % 4);
    if (seed % 4 == 1)
        k.stall = sim::StallModel::software(20, 20);
    return k;
}

inline sim::MachineConfig
configFor(const verify::Scenario &sc, const Knobs &k, bool fast_forward,
          bool predecode = true, int shards = 1)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = sc.procs();
    cfg.memWords = 4096;
    cfg.pipelineDepth = k.pipelineDepth;
    cfg.issueWidth = k.issueWidth;
    cfg.jitterMean = k.jitterMean;
    cfg.syncLatency = k.syncLatency;
    cfg.stall = k.stall;
    cfg.seed = 42;
    cfg.maxCycles = 5'000'000;
    cfg.interruptPeriod = sc.interruptPeriod;
    cfg.isrEntry = sc.isrEntry;
    cfg.fastForward = fast_forward;
    cfg.predecode = predecode;
    if (shards > 1) {
        cfg.shardCount = shards;
        cfg.shardQuantum = 512;
    }
    if (sc.hasFaults()) {
        cfg.faultPlan = &sc.faults;
        cfg.watchdog = sc.watchdog;
    }
    return cfg;
}

/** Attach a seeded fault schedule + watchdog, as fbfuzz --faults
 * does. Works on both ProgramSpec and Scenario (identical fields). */
template <class SpecOrScenario>
inline void
attachFaults(SpecOrScenario &s, std::uint64_t fault_seed)
{
    s.faults =
        fault::randomFaultPlan(fault_seed, s.procs(), s.groupSizes);
    s.faultSeed = fault_seed;
    s.watchdog.enabled = true;
    s.watchdog.timeoutCycles = 2000;
    s.watchdog.maxAttempts = 3;
}

/** The corpus's canonical fault-seed derivation for corpus seed
 * @p seed (shared by the equivalence and sharded sweeps, and by the
 * CoversWatchdogRecovery coverage assertions). */
inline std::uint64_t
corpusFaultSeed(std::uint64_t seed)
{
    return seed * 31 + 7;
}

/** Everything observable about one run, for exact comparison. */
struct Observation
{
    sim::RunResult result;
    std::vector<std::vector<std::int64_t>> regs;
    std::string safety;
    std::size_t syncRecords = 0;
};

/**
 * Load the scenario's programs and run @p m to completion. The run
 * goes through exec::ShardedMachine, so a config with shardCount > 1
 * and shardQuantum > 0 executes under real host threads and anything
 * else falls back to the plain sequential core — callers pick the
 * execution mode purely through MachineConfig.
 */
inline Observation
observeRun(const verify::Scenario &sc,
           const std::vector<isa::Program> &programs, sim::Machine &m,
           const std::vector<std::shared_ptr<const sim::DecodedProgram>>
               *decoded = nullptr)
{
    for (int p = 0; p < sc.procs(); ++p) {
        const auto sp = static_cast<std::size_t>(p);
        m.loadProgram(p, programs[sp],
                      decoded ? (*decoded)[sp] : nullptr);
    }
    Observation obs;
    exec::ShardedMachine sharded(m);
    obs.result = sharded.run();
    for (int p = 0; p < sc.procs(); ++p) {
        std::vector<std::int64_t> r;
        for (int i = 0; i < isa::numRegisters; ++i)
            r.push_back(m.processor(p).reg(i));
        obs.regs.push_back(std::move(r));
    }
    obs.safety = m.checkSafetyProperty();
    obs.syncRecords = m.syncRecords().size();
    return obs;
}

/** Run @p sc under @p cfg — pooled when @p pool is set (sweeps
 * recycle machines through the campaign engine's pool), fresh
 * otherwise. */
inline Observation
runOnce(const verify::Scenario &sc,
        const std::vector<isa::Program> &programs,
        const sim::MachineConfig &cfg, exec::MachinePool *pool = nullptr,
        const std::vector<std::shared_ptr<const sim::DecodedProgram>>
            *decoded = nullptr)
{
    if (pool) {
        auto lease = pool->acquire(cfg);
        return observeRun(sc, programs, *lease, decoded);
    }
    sim::Machine m(cfg);
    return observeRun(sc, programs, m, decoded);
}

/** Knob-level convenience overload (fast-forward vs legacy core). */
inline Observation
runOnce(const verify::Scenario &sc,
        const std::vector<isa::Program> &programs, const Knobs &k,
        bool fast_forward, exec::MachinePool *pool = nullptr)
{
    return runOnce(sc, programs, configFor(sc, k, fast_forward), pool);
}

/** Assert every RunResult field (and final machine state) matches.
 * The @p ctx string is the failure pretty-printer: it should carry
 * the seed and every knob needed to replay the divergence. */
inline void
expectIdentical(const Observation &ff, const Observation &legacy,
                const std::string &ctx)
{
    const auto &a = ff.result;
    const auto &b = legacy.result;
    EXPECT_EQ(a.cycles, b.cycles) << ctx;
    EXPECT_EQ(a.deadlocked, b.deadlocked) << ctx;
    EXPECT_EQ(a.timedOut, b.timedOut) << ctx;
    EXPECT_EQ(a.deadlockInfo, b.deadlockInfo) << ctx;
    EXPECT_EQ(a.syncEvents, b.syncEvents) << ctx;
    EXPECT_EQ(a.busRequests, b.busRequests) << ctx;
    EXPECT_EQ(a.busQueueDelay, b.busQueueDelay) << ctx;
    EXPECT_EQ(a.memAccesses, b.memAccesses) << ctx;
    EXPECT_EQ(a.hotSpotAccesses, b.hotSpotAccesses) << ctx;
    EXPECT_EQ(a.invalidationsSent, b.invalidationsSent) << ctx;
    EXPECT_EQ(a.invalidationsAvoided, b.invalidationsAvoided) << ctx;
    EXPECT_EQ(a.correctedFaults, b.correctedFaults) << ctx;
    EXPECT_EQ(a.membershipViolation, b.membershipViolation) << ctx;
    EXPECT_EQ(a.deadDeclared, b.deadDeclared) << ctx;

    ASSERT_EQ(a.recoveries.size(), b.recoveries.size()) << ctx;
    for (std::size_t i = 0; i < a.recoveries.size(); ++i) {
        EXPECT_EQ(a.recoveries[i].cycle, b.recoveries[i].cycle) << ctx;
        EXPECT_EQ(a.recoveries[i].deadProc, b.recoveries[i].deadProc)
            << ctx;
        EXPECT_EQ(a.recoveries[i].survivors, b.recoveries[i].survivors)
            << ctx;
    }

    EXPECT_EQ(a.faultStats.pulseDropCycles, b.faultStats.pulseDropCycles)
        << ctx;
    EXPECT_EQ(a.faultStats.bitsFlipped, b.faultStats.bitsFlipped) << ctx;
    EXPECT_EQ(a.faultStats.kills, b.faultStats.kills) << ctx;
    EXPECT_EQ(a.faultStats.freezes, b.faultStats.freezes) << ctx;
    EXPECT_EQ(a.faultStats.forcedInterrupts,
              b.faultStats.forcedInterrupts)
        << ctx;
    EXPECT_EQ(a.watchdogStats.timeouts, b.watchdogStats.timeouts) << ctx;
    EXPECT_EQ(a.watchdogStats.rearms, b.watchdogStats.rearms) << ctx;
    EXPECT_EQ(a.watchdogStats.deadDeclared, b.watchdogStats.deadDeclared)
        << ctx;

    ASSERT_EQ(a.perProcessor.size(), b.perProcessor.size()) << ctx;
    for (std::size_t p = 0; p < a.perProcessor.size(); ++p) {
        const auto &pa = a.perProcessor[p];
        const auto &pb = b.perProcessor[p];
        std::string pctx = ctx + " cpu" + std::to_string(p);
        EXPECT_EQ(pa.instructions, pb.instructions) << pctx;
        EXPECT_EQ(pa.barrierWaitCycles, pb.barrierWaitCycles) << pctx;
        EXPECT_EQ(pa.contextSwitchCycles, pb.contextSwitchCycles)
            << pctx;
        EXPECT_EQ(pa.contextSwitches, pb.contextSwitches) << pctx;
        EXPECT_EQ(pa.interruptsTaken, pb.interruptsTaken) << pctx;
        EXPECT_EQ(pa.barrierEpisodes, pb.barrierEpisodes) << pctx;
        EXPECT_EQ(pa.stalledEpisodes, pb.stalledEpisodes) << pctx;
        EXPECT_EQ(pa.stallCycles, pb.stallCycles) << pctx;
        EXPECT_EQ(pa.cacheHits, pb.cacheHits) << pctx;
        EXPECT_EQ(pa.cacheMisses, pb.cacheMisses) << pctx;
    }

    EXPECT_EQ(ff.regs, legacy.regs) << ctx;
    EXPECT_EQ(ff.safety, legacy.safety) << ctx;
    EXPECT_EQ(ff.syncRecords, legacy.syncRecords) << ctx;
}

/** Assemble the scenario's programs under its baseline encoding,
 * through the shared intern cache when @p cache is set. With
 * @p decoded, also hand back the cache's interned threaded-code
 * blocks (null per program without a cache), so sweeps exercise the
 * decoded-block sharing path of Machine::loadProgram. */
inline bool
assemblePrograms(const verify::Scenario &sc,
                 std::vector<isa::Program> &out,
                 exec::ProgramCache *cache = nullptr,
                 std::vector<std::shared_ptr<const sim::DecodedProgram>>
                     *decoded = nullptr)
{
    for (int p = 0; p < sc.procs(); ++p) {
        const auto &source = sc.sources[static_cast<std::size_t>(p)];
        isa::Program prog;
        std::shared_ptr<const sim::DecodedProgram> block;
        if (cache) {
            auto interned = cache->intern(source);
            if (!interned->ok)
                return false;
            if (sc.encoding == verify::Encoding::Markers) {
                prog = interned->markers;
                block = interned->markersDecoded;
            } else {
                prog = interned->bits;
                block = interned->bitsDecoded;
            }
        } else {
            std::string err;
            if (!isa::Assembler::assemble(source, prog, err))
                return false;
            if (sc.encoding == verify::Encoding::Markers)
                prog = prog.toMarkerEncoding();
        }
        if (decoded)
            decoded->push_back(std::move(block));
        out.push_back(std::move(prog));
    }
    return true;
}

/** Replay context for one corpus seed (the pretty-printer prefix). */
inline std::string
describeSeed(std::uint64_t seed, bool with_faults, const Knobs &k)
{
    std::ostringstream ctx;
    ctx << "seed=" << seed << (with_faults ? " faults" : "")
        << " depth=" << k.pipelineDepth << " width=" << k.issueWidth
        << " jitter=" << k.jitterMean << " synclat=" << k.syncLatency;
    return ctx.str();
}

} // namespace fb::harness

#endif // FB_TESTS_HARNESS_HH
