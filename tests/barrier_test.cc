/**
 * @file
 * Unit tests for the hardware fuzzy-barrier model: the four-state
 * FSM, tag/mask matching, and the broadcast network.
 */

#include <gtest/gtest.h>

#include <vector>

#include "barrier/network.hh"
#include "barrier/state.hh"
#include "barrier/topology.hh"
#include "barrier/unit.hh"

namespace fb::barrier
{
namespace
{

// --------------------------------------------------------------------- Unit

TEST(BarrierUnit, StartsNonBarrier)
{
    BarrierUnit u(4, 0);
    EXPECT_EQ(u.state(), BarrierState::NonBarrier);
    EXPECT_FALSE(u.participating());
    EXPECT_FALSE(u.readySignal());
}

TEST(BarrierUnit, NonParticipantIgnoresArrive)
{
    BarrierUnit u(2, 0);
    u.arrive();  // tag is 0: not participating
    EXPECT_EQ(u.state(), BarrierState::NonBarrier);
    EXPECT_TRUE(u.mayCross());
}

TEST(BarrierUnit, ArriveAssertsReady)
{
    BarrierUnit u(2, 0);
    u.setTag(1);
    u.arrive();
    EXPECT_EQ(u.state(), BarrierState::Ready);
    EXPECT_TRUE(u.readySignal());
    EXPECT_FALSE(u.mayCross());
}

TEST(BarrierUnit, FullEpisodeLifecycle)
{
    BarrierUnit u(2, 0);
    u.setTag(1);
    u.arrive();
    u.deliverSync();
    EXPECT_EQ(u.state(), BarrierState::Synced);
    EXPECT_TRUE(u.mayCross());
    u.cross();
    EXPECT_EQ(u.state(), BarrierState::NonBarrier);
    EXPECT_EQ(u.episodes(), 1u);
    // "No explicit reset is required": a second episode just works.
    u.arrive();
    EXPECT_EQ(u.state(), BarrierState::Ready);
}

TEST(BarrierUnit, StallTransition)
{
    BarrierUnit u(2, 0);
    u.setTag(1);
    u.arrive();
    u.noteStalled();
    EXPECT_EQ(u.state(), BarrierState::Stalled);
    EXPECT_TRUE(u.readySignal());  // still broadcasting readiness
    EXPECT_EQ(u.stalledEpisodes(), 1u);
    u.noteStalled();  // idempotent within an episode
    EXPECT_EQ(u.stalledEpisodes(), 1u);
    u.deliverSync();
    EXPECT_EQ(u.state(), BarrierState::Synced);
}

TEST(BarrierUnit, StallCycleAccounting)
{
    BarrierUnit u(2, 0);
    u.setTag(1);
    u.arrive();
    u.noteStalled();
    u.tickStalled();
    u.tickStalled();
    EXPECT_EQ(u.stallCycles(), 2u);
}

TEST(BarrierUnit, MaskExcludesSelf)
{
    BarrierUnit u(4, 2);
    u.setMask(0b1111);
    EXPECT_TRUE(u.mask().test(0));
    EXPECT_TRUE(u.mask().test(1));
    EXPECT_FALSE(u.mask().test(2));  // self bit always clear
    EXPECT_TRUE(u.mask().test(3));

    u.setMaskBit(2, true);  // ignored
    EXPECT_FALSE(u.mask().test(2));
    u.setMaskBit(3, false);
    EXPECT_FALSE(u.mask().test(3));
}

TEST(BarrierUnit, WordMaskAddressesLow64Prefix)
{
    // A 64-bit SETMASK immediate can only name processors 0..63; in a
    // wider machine it addresses that prefix and clears the rest. The
    // wide all-processors form is setMaskAll().
    BarrierUnit u(128, 0);
    u.setMask(0b110);
    EXPECT_TRUE(u.mask().test(1));
    EXPECT_TRUE(u.mask().test(2));
    EXPECT_EQ(u.mask().count(), 2u);

    u.setMask(~0ull);
    EXPECT_EQ(u.mask().count(), 63u);  // 0..63 minus self
    EXPECT_FALSE(u.mask().test(64));
    EXPECT_FALSE(u.mask().test(127));

    u.setMaskAll();
    EXPECT_EQ(u.mask().count(), 127u);  // everyone but self
    EXPECT_FALSE(u.mask().test(0));
    EXPECT_TRUE(u.mask().test(64));
    EXPECT_TRUE(u.mask().test(127));
}

TEST(BarrierUnit, CrossFromNonBarrierIsNoOp)
{
    BarrierUnit u(2, 0);
    u.setTag(1);
    u.cross();  // never armed; e.g. control skipped the region
    EXPECT_EQ(u.state(), BarrierState::NonBarrier);
    EXPECT_EQ(u.episodes(), 0u);
}

// ------------------------------------------------------------------ Network

class NetworkTest : public ::testing::Test
{
  protected:
    /** Arm processor @p p with tag and full-group mask. */
    void
    arm(BarrierNetwork &net, int p, std::uint32_t tag, std::uint64_t mask)
    {
        net.unit(p).setTag(tag);
        net.unit(p).setMask(mask);
    }
};

TEST_F(NetworkTest, NoSyncUntilAllReady)
{
    BarrierNetwork net(2);
    arm(net, 0, 1, 0b11);
    arm(net, 1, 1, 0b11);

    net.unit(0).arrive();
    EXPECT_EQ(net.evaluate(), 0);
    EXPECT_EQ(net.unit(0).state(), BarrierState::Ready);

    net.unit(1).arrive();
    EXPECT_EQ(net.evaluate(), 2);
    EXPECT_EQ(net.unit(0).state(), BarrierState::Synced);
    EXPECT_EQ(net.unit(1).state(), BarrierState::Synced);
    EXPECT_EQ(net.syncEvents(), 1u);
}

TEST_F(NetworkTest, SimultaneousDelivery)
{
    // All four arrive before any evaluation: everyone syncs in the
    // same evaluation, like the common-clock hardware.
    BarrierNetwork net(4);
    for (int p = 0; p < 4; ++p) {
        arm(net, p, 1, 0b1111);
        net.unit(p).arrive();
    }
    EXPECT_EQ(net.evaluate(), 4);
    EXPECT_EQ(net.syncEvents(), 1u);
}

TEST_F(NetworkTest, TagMismatchBlocksSync)
{
    BarrierNetwork net(2);
    arm(net, 0, 1, 0b11);
    arm(net, 1, 2, 0b11);  // different logical barrier
    net.unit(0).arrive();
    net.unit(1).arrive();
    EXPECT_EQ(net.evaluate(), 0);
    EXPECT_EQ(net.unit(0).state(), BarrierState::Ready);
}

TEST_F(NetworkTest, TagMatchAfterRetag)
{
    BarrierNetwork net(2);
    arm(net, 0, 1, 0b11);
    arm(net, 1, 2, 0b11);
    net.unit(0).arrive();
    net.unit(1).arrive();
    EXPECT_EQ(net.evaluate(), 0);
    net.unit(1).setTag(1);  // software re-tags to the matching barrier
    EXPECT_EQ(net.evaluate(), 2);
}

TEST_F(NetworkTest, DisjointSubsetsSyncIndependently)
{
    // Section 5: "Disjoint subsets of processors can independently
    // synchronize among themselves."
    BarrierNetwork net(4);
    arm(net, 0, 1, 0b0011);
    arm(net, 1, 1, 0b0011);
    arm(net, 2, 2, 0b1100);
    arm(net, 3, 2, 0b1100);

    net.unit(0).arrive();
    net.unit(1).arrive();
    net.unit(2).arrive();
    // Group {0,1} is complete; group {2,3} is missing processor 3.
    EXPECT_EQ(net.evaluate(), 2);
    EXPECT_EQ(net.unit(0).state(), BarrierState::Synced);
    EXPECT_EQ(net.unit(2).state(), BarrierState::Ready);

    net.unit(3).arrive();
    EXPECT_EQ(net.evaluate(), 2);
    EXPECT_EQ(net.unit(2).state(), BarrierState::Synced);
    EXPECT_EQ(net.syncEvents(), 2u);
}

TEST_F(NetworkTest, SubsetMaskIgnoresOutsiders)
{
    // Processors 0 and 1 sync with each other; processor 2 never
    // participates and never blocks them.
    BarrierNetwork net(3);
    arm(net, 0, 1, 0b011);
    arm(net, 1, 1, 0b011);
    net.unit(0).arrive();
    net.unit(1).arrive();
    EXPECT_EQ(net.evaluate(), 2);
}

TEST_F(NetworkTest, RepeatedEpisodes)
{
    BarrierNetwork net(2);
    arm(net, 0, 1, 0b11);
    arm(net, 1, 1, 0b11);
    for (int episode = 0; episode < 5; ++episode) {
        net.unit(0).arrive();
        EXPECT_EQ(net.evaluate(), 0);
        net.unit(1).arrive();
        EXPECT_EQ(net.evaluate(), 2);
        net.unit(0).cross();
        net.unit(1).cross();
    }
    EXPECT_EQ(net.unit(0).episodes(), 5u);
    EXPECT_EQ(net.syncEvents(), 5u);
}

TEST_F(NetworkTest, StalledProcessorStillSignalsReady)
{
    BarrierNetwork net(2);
    arm(net, 0, 1, 0b11);
    arm(net, 1, 1, 0b11);
    net.unit(0).arrive();
    net.unit(0).noteStalled();  // exhausted its region
    net.unit(1).arrive();
    EXPECT_EQ(net.evaluate(), 2);
}

TEST_F(NetworkTest, WouldDeadlockOnHaltedPartner)
{
    BarrierNetwork net(2);
    arm(net, 0, 1, 0b11);
    arm(net, 1, 1, 0b11);
    net.unit(0).arrive();
    net.unit(0).noteStalled();
    // Processor 1 halted without arriving.
    EXPECT_TRUE(net.wouldDeadlock({false, true}));
    // If processor 1 were still running, no deadlock yet.
    EXPECT_FALSE(net.wouldDeadlock({false, false}));
}

TEST_F(NetworkTest, WouldDeadlockOnTagMismatch)
{
    BarrierNetwork net(2);
    arm(net, 0, 1, 0b11);
    arm(net, 1, 2, 0b11);
    net.unit(0).arrive();
    net.unit(0).noteStalled();
    net.unit(1).arrive();
    net.unit(1).noteStalled();
    EXPECT_TRUE(net.wouldDeadlock({false, false}));
}

TEST_F(NetworkTest, SyncLatencyDelaysDelivery)
{
    BarrierNetwork net(2, 3);
    arm(net, 0, 1, 0b11);
    arm(net, 1, 1, 0b11);
    net.unit(0).arrive();
    net.unit(1).arrive();
    // Group complete at cycle 10, but the broadcast takes 3 cycles.
    EXPECT_EQ(net.evaluate(10), 0);
    EXPECT_TRUE(net.deliveryPending());
    EXPECT_EQ(net.evaluate(11), 0);
    EXPECT_EQ(net.evaluate(12), 0);
    EXPECT_EQ(net.evaluate(13), 2);
    EXPECT_FALSE(net.deliveryPending());
    EXPECT_EQ(net.unit(0).state(), BarrierState::Synced);
}

TEST_F(NetworkTest, ZeroLatencyDeliversImmediately)
{
    BarrierNetwork net(2, 0);
    arm(net, 0, 1, 0b11);
    arm(net, 1, 1, 0b11);
    net.unit(0).arrive();
    net.unit(1).arrive();
    EXPECT_EQ(net.evaluate(42), 2);
    EXPECT_FALSE(net.deliveryPending());
}

TEST_F(NetworkTest, MaxBarriersForNStreams)
{
    // Section 5: an N-processor system needs at most N-1 logical
    // barriers. Exercise N-1 distinct tags pairwise on a 4-way net:
    // stream creation order 0->1, 1->2, 2->3 using tags 1, 2, 3.
    BarrierNetwork net(4);
    struct Pair { int a, b; std::uint32_t tag; };
    for (const Pair &pr : {Pair{0, 1, 1}, Pair{1, 2, 2}, Pair{2, 3, 3}}) {
        net.unit(pr.a).setTag(pr.tag);
        net.unit(pr.b).setTag(pr.tag);
        std::uint64_t mask =
            (1ull << pr.a) | (1ull << pr.b);
        net.unit(pr.a).setMask(mask);
        net.unit(pr.b).setMask(mask);
        net.unit(pr.a).arrive();
        EXPECT_EQ(net.evaluate(), 0);
        net.unit(pr.b).arrive();
        EXPECT_EQ(net.evaluate(), 2);
        net.unit(pr.a).cross();
        net.unit(pr.b).cross();
    }
    EXPECT_EQ(net.syncEvents(), 3u);
}

// ----------------------------------------------------------------- Topology

Topology
topoOrDie(const char *spec)
{
    Topology t;
    EXPECT_TRUE(Topology::parse(spec, t)) << spec;
    return t;
}

TEST(TopologySpec, ParseAndFormat)
{
    Topology t = topoOrDie("flat");
    EXPECT_TRUE(t.flat());
    EXPECT_EQ(t.toString(), "flat");

    t = topoOrDie("tree:4");
    EXPECT_EQ(t.kind, Topology::Kind::Tree);
    EXPECT_EQ(t.param, 4);
    EXPECT_EQ(t.levelLatency, 1u);
    EXPECT_EQ(t.toString(), "tree:4");

    t = topoOrDie("tree:8:3");
    EXPECT_EQ(t.param, 8);
    EXPECT_EQ(t.levelLatency, 3u);
    EXPECT_EQ(t.toString(), "tree:8:3");

    t = topoOrDie("cluster:16");
    EXPECT_EQ(t.kind, Topology::Kind::Cluster);
    EXPECT_EQ(t.param, 16);
    EXPECT_EQ(t.toString(), "cluster:16");

    EXPECT_TRUE(topoOrDie("tree:4") == topoOrDie("tree:4"));
    EXPECT_FALSE(topoOrDie("tree:4") == topoOrDie("tree:4:2"));
    EXPECT_FALSE(topoOrDie("tree:4") == topoOrDie("cluster:4"));
}

TEST(TopologySpec, ParseRejectsMalformedSpecs)
{
    Topology t = topoOrDie("tree:4:2");
    for (const char *bad :
         {"", "flat:2", "ring:4", "tree", "tree:", "tree:1", "tree:x",
          "tree:4:", "tree:4:0", "cluster:0", "cluster:-8"}) {
        Topology out = t;
        EXPECT_FALSE(Topology::parse(bad, out)) << bad;
        // A failed parse must leave the output untouched.
        EXPECT_TRUE(out == t) << bad;
    }
}

TEST(TopologySpec, SpanLevels)
{
    const Topology flat;
    EXPECT_EQ(flat.spanLevels(0, 1023), 0);
    EXPECT_EQ(flat.extraLatency(0, 1023), 0u);

    const Topology tree = topoOrDie("tree:4");
    EXPECT_EQ(tree.spanLevels(5, 5), 0);    // singleton: no climb
    EXPECT_EQ(tree.spanLevels(0, 3), 1);    // one leaf block
    EXPECT_EQ(tree.spanLevels(4, 7), 1);    // aligned sibling block
    EXPECT_EQ(tree.spanLevels(3, 4), 2);    // straddles two leaves
    EXPECT_EQ(tree.spanLevels(0, 15), 2);
    EXPECT_EQ(tree.spanLevels(0, 255), 4);
    EXPECT_EQ(tree.spanLevels(0, 1023), 5);
    EXPECT_EQ(tree.extraLatency(0, 3), 2u);  // 2 * span * level latency

    const Topology cluster = topoOrDie("cluster:8");
    EXPECT_EQ(cluster.spanLevels(2, 2), 0);
    EXPECT_EQ(cluster.spanLevels(0, 7), 1);    // inside one cluster
    EXPECT_EQ(cluster.spanLevels(8, 15), 1);
    EXPECT_EQ(cluster.spanLevels(0, 8), 2);    // through the root
    EXPECT_EQ(cluster.spanLevels(0, 1023), 2); // root is one hop, always
    EXPECT_EQ(cluster.extraLatency(0, 1023), 4u);

    const Topology deep = topoOrDie("tree:2:3");
    EXPECT_EQ(deep.spanLevels(0, 1), 1);
    EXPECT_EQ(deep.extraLatency(0, 1), 6u);  // level latency scales it
}

TEST_F(NetworkTest, TreeTopologyDelaysBySpan)
{
    // 16 processors on a 4-ary tree: a group confined to one leaf
    // block pays 2 * 1 level, the all-processor group 2 * 2 levels,
    // both on top of the base sync latency of 1.
    BarrierNetwork net(16, 1, topoOrDie("tree:4"));
    for (int p = 0; p < 4; ++p) {
        arm(net, p, 1, 0b1111);
        net.unit(p).arrive();
    }
    // Complete at cycle 10; delivery at 10 + 1 + 2*1*1 = 13.
    EXPECT_EQ(net.evaluate(10), 0);
    EXPECT_TRUE(net.deliveryPending());
    EXPECT_EQ(net.evaluate(12), 0);
    EXPECT_EQ(net.evaluate(13), 4);
    for (int p = 0; p < 4; ++p) {
        EXPECT_EQ(net.unit(p).state(), BarrierState::Synced);
        net.unit(p).cross();
    }

    // The full machine spans two levels: 20 + 1 + 2*2*1 = 25.
    for (int p = 0; p < 16; ++p) {
        net.unit(p).setTag(2);
        net.unit(p).setMaskAll();
        net.unit(p).arrive();
    }
    EXPECT_EQ(net.evaluate(20), 0);
    EXPECT_EQ(net.evaluate(24), 0);
    EXPECT_EQ(net.evaluate(25), 16);
    EXPECT_EQ(net.syncEvents(), 2u);
}

TEST_F(NetworkTest, ClusterTopologyPaysRootOnlyAcrossClusters)
{
    BarrierNetwork net(16, 1, topoOrDie("cluster:8"));
    // Group inside cluster 0: 10 + 1 + 2*1 = 13.
    arm(net, 0, 1, 0b11);
    arm(net, 1, 1, 0b11);
    net.unit(0).arrive();
    net.unit(1).arrive();
    EXPECT_EQ(net.evaluate(10), 0);
    EXPECT_EQ(net.evaluate(13), 2);
    net.unit(0).cross();
    net.unit(1).cross();

    // Group {0, 8} crosses clusters through the root: 20 + 1 + 2*2.
    arm(net, 0, 2, 0b100000001);
    arm(net, 8, 2, 0b100000001);
    net.unit(0).arrive();
    net.unit(8).arrive();
    EXPECT_EQ(net.evaluate(20), 0);
    EXPECT_EQ(net.evaluate(24), 0);
    EXPECT_EQ(net.evaluate(25), 2);
}

TEST_F(NetworkTest, ExplicitFlatTopologyMatchesDefault)
{
    // A flat Topology value must reproduce the paper's single-level
    // network bit for bit: delivery at completion + sync latency.
    BarrierNetwork net(2, 3, Topology{});
    arm(net, 0, 1, 0b11);
    arm(net, 1, 1, 0b11);
    net.unit(0).arrive();
    net.unit(1).arrive();
    EXPECT_EQ(net.evaluate(10), 0);
    EXPECT_EQ(net.evaluate(12), 0);
    EXPECT_EQ(net.evaluate(13), 2);
}

TEST_F(NetworkTest, ResetSwitchesTopology)
{
    BarrierNetwork net(4, 1, topoOrDie("tree:2"));
    EXPECT_EQ(net.topology().toString(), "tree:2");
    net.reset(0, topoOrDie("cluster:2"));
    EXPECT_EQ(net.topology().toString(), "cluster:2");
    // After the reset the new shape's latency applies: {0,1} inside
    // one 2-cluster, span 1, delivery at 10 + 0 + 2.
    arm(net, 0, 1, 0b11);
    arm(net, 1, 1, 0b11);
    net.unit(0).arrive();
    net.unit(1).arrive();
    EXPECT_EQ(net.evaluate(10), 0);
    EXPECT_EQ(net.evaluate(12), 2);
}

// ------------------------------------------------------- wide networks

TEST_F(NetworkTest, WideNetworkSyncsAllMembers)
{
    // 256 processors — four payload words of ready bits — on a
    // hierarchical shape; every member of the machine-wide group
    // observes delivery in the same evaluation.
    BarrierNetwork net(256, 0, topoOrDie("tree:4"));
    for (int p = 0; p < 256; ++p) {
        net.unit(p).setTag(1);
        net.unit(p).setMaskAll();
        net.unit(p).arrive();
    }
    EXPECT_EQ(net.readySet().count(), 256u);
    // Span of [0,255] on a 4-ary tree is 4 levels: 10 + 0 + 8 = 18.
    EXPECT_EQ(net.evaluate(10), 0);
    EXPECT_EQ(net.evaluate(17), 0);
    EXPECT_EQ(net.evaluate(18), 256);
    EXPECT_EQ(net.syncEvents(), 1u);
    for (int p : {0, 63, 64, 255})
        EXPECT_EQ(net.unit(p).state(), BarrierState::Synced);
}

TEST_F(NetworkTest, AnalyzeDeadlockAt256Processors)
{
    // The Fig. 2 diagnosis at scale: 255 processors stalled on a
    // machine-wide barrier, processor 255 halted without arriving.
    BarrierNetwork net(256);
    for (int p = 0; p < 256; ++p) {
        net.unit(p).setTag(1);
        net.unit(p).setMaskAll();
    }
    for (int p = 0; p < 255; ++p) {
        net.unit(p).arrive();
        net.unit(p).noteStalled();
    }
    std::vector<bool> halted(256, false);
    halted[255] = true;

    EXPECT_FALSE(net.wouldDeadlock(std::vector<bool>(256, false)));
    EXPECT_TRUE(net.wouldDeadlock(halted));

    DeadlockReport rep = net.analyzeDeadlock(halted);
    EXPECT_TRUE(rep.deadlocked);
    ASSERT_EQ(rep.stuck.size(), 255u);
    for (const auto &e : rep.stuck) {
        EXPECT_EQ(e.state, BarrierState::Stalled);
        EXPECT_EQ(e.tag, 1u);
        ASSERT_EQ(e.unsatisfied.size(), 1u);
        EXPECT_EQ(e.unsatisfied[0], 255);
    }
    EXPECT_EQ(rep.stuck[0].proc, 0);
    EXPECT_EQ(rep.stuck[254].proc, 254);
    EXPECT_FALSE(rep.toString().empty());
}

} // namespace
} // namespace fb::barrier
