/**
 * @file
 * Unit tests for the hardware fuzzy-barrier model: the four-state
 * FSM, tag/mask matching, and the broadcast network.
 */

#include <gtest/gtest.h>

#include "barrier/network.hh"
#include "barrier/state.hh"
#include "barrier/unit.hh"

namespace fb::barrier
{
namespace
{

// --------------------------------------------------------------------- Unit

TEST(BarrierUnit, StartsNonBarrier)
{
    BarrierUnit u(4, 0);
    EXPECT_EQ(u.state(), BarrierState::NonBarrier);
    EXPECT_FALSE(u.participating());
    EXPECT_FALSE(u.readySignal());
}

TEST(BarrierUnit, NonParticipantIgnoresArrive)
{
    BarrierUnit u(2, 0);
    u.arrive();  // tag is 0: not participating
    EXPECT_EQ(u.state(), BarrierState::NonBarrier);
    EXPECT_TRUE(u.mayCross());
}

TEST(BarrierUnit, ArriveAssertsReady)
{
    BarrierUnit u(2, 0);
    u.setTag(1);
    u.arrive();
    EXPECT_EQ(u.state(), BarrierState::Ready);
    EXPECT_TRUE(u.readySignal());
    EXPECT_FALSE(u.mayCross());
}

TEST(BarrierUnit, FullEpisodeLifecycle)
{
    BarrierUnit u(2, 0);
    u.setTag(1);
    u.arrive();
    u.deliverSync();
    EXPECT_EQ(u.state(), BarrierState::Synced);
    EXPECT_TRUE(u.mayCross());
    u.cross();
    EXPECT_EQ(u.state(), BarrierState::NonBarrier);
    EXPECT_EQ(u.episodes(), 1u);
    // "No explicit reset is required": a second episode just works.
    u.arrive();
    EXPECT_EQ(u.state(), BarrierState::Ready);
}

TEST(BarrierUnit, StallTransition)
{
    BarrierUnit u(2, 0);
    u.setTag(1);
    u.arrive();
    u.noteStalled();
    EXPECT_EQ(u.state(), BarrierState::Stalled);
    EXPECT_TRUE(u.readySignal());  // still broadcasting readiness
    EXPECT_EQ(u.stalledEpisodes(), 1u);
    u.noteStalled();  // idempotent within an episode
    EXPECT_EQ(u.stalledEpisodes(), 1u);
    u.deliverSync();
    EXPECT_EQ(u.state(), BarrierState::Synced);
}

TEST(BarrierUnit, StallCycleAccounting)
{
    BarrierUnit u(2, 0);
    u.setTag(1);
    u.arrive();
    u.noteStalled();
    u.tickStalled();
    u.tickStalled();
    EXPECT_EQ(u.stallCycles(), 2u);
}

TEST(BarrierUnit, MaskExcludesSelf)
{
    BarrierUnit u(4, 2);
    u.setMask(0b1111);
    EXPECT_TRUE(u.mask().test(0));
    EXPECT_TRUE(u.mask().test(1));
    EXPECT_FALSE(u.mask().test(2));  // self bit always clear
    EXPECT_TRUE(u.mask().test(3));

    u.setMaskBit(2, true);  // ignored
    EXPECT_FALSE(u.mask().test(2));
    u.setMaskBit(3, false);
    EXPECT_FALSE(u.mask().test(3));
}

TEST(BarrierUnit, CrossFromNonBarrierIsNoOp)
{
    BarrierUnit u(2, 0);
    u.setTag(1);
    u.cross();  // never armed; e.g. control skipped the region
    EXPECT_EQ(u.state(), BarrierState::NonBarrier);
    EXPECT_EQ(u.episodes(), 0u);
}

// ------------------------------------------------------------------ Network

class NetworkTest : public ::testing::Test
{
  protected:
    /** Arm processor @p p with tag and full-group mask. */
    void
    arm(BarrierNetwork &net, int p, std::uint32_t tag, std::uint64_t mask)
    {
        net.unit(p).setTag(tag);
        net.unit(p).setMask(mask);
    }
};

TEST_F(NetworkTest, NoSyncUntilAllReady)
{
    BarrierNetwork net(2);
    arm(net, 0, 1, 0b11);
    arm(net, 1, 1, 0b11);

    net.unit(0).arrive();
    EXPECT_EQ(net.evaluate(), 0);
    EXPECT_EQ(net.unit(0).state(), BarrierState::Ready);

    net.unit(1).arrive();
    EXPECT_EQ(net.evaluate(), 2);
    EXPECT_EQ(net.unit(0).state(), BarrierState::Synced);
    EXPECT_EQ(net.unit(1).state(), BarrierState::Synced);
    EXPECT_EQ(net.syncEvents(), 1u);
}

TEST_F(NetworkTest, SimultaneousDelivery)
{
    // All four arrive before any evaluation: everyone syncs in the
    // same evaluation, like the common-clock hardware.
    BarrierNetwork net(4);
    for (int p = 0; p < 4; ++p) {
        arm(net, p, 1, 0b1111);
        net.unit(p).arrive();
    }
    EXPECT_EQ(net.evaluate(), 4);
    EXPECT_EQ(net.syncEvents(), 1u);
}

TEST_F(NetworkTest, TagMismatchBlocksSync)
{
    BarrierNetwork net(2);
    arm(net, 0, 1, 0b11);
    arm(net, 1, 2, 0b11);  // different logical barrier
    net.unit(0).arrive();
    net.unit(1).arrive();
    EXPECT_EQ(net.evaluate(), 0);
    EXPECT_EQ(net.unit(0).state(), BarrierState::Ready);
}

TEST_F(NetworkTest, TagMatchAfterRetag)
{
    BarrierNetwork net(2);
    arm(net, 0, 1, 0b11);
    arm(net, 1, 2, 0b11);
    net.unit(0).arrive();
    net.unit(1).arrive();
    EXPECT_EQ(net.evaluate(), 0);
    net.unit(1).setTag(1);  // software re-tags to the matching barrier
    EXPECT_EQ(net.evaluate(), 2);
}

TEST_F(NetworkTest, DisjointSubsetsSyncIndependently)
{
    // Section 5: "Disjoint subsets of processors can independently
    // synchronize among themselves."
    BarrierNetwork net(4);
    arm(net, 0, 1, 0b0011);
    arm(net, 1, 1, 0b0011);
    arm(net, 2, 2, 0b1100);
    arm(net, 3, 2, 0b1100);

    net.unit(0).arrive();
    net.unit(1).arrive();
    net.unit(2).arrive();
    // Group {0,1} is complete; group {2,3} is missing processor 3.
    EXPECT_EQ(net.evaluate(), 2);
    EXPECT_EQ(net.unit(0).state(), BarrierState::Synced);
    EXPECT_EQ(net.unit(2).state(), BarrierState::Ready);

    net.unit(3).arrive();
    EXPECT_EQ(net.evaluate(), 2);
    EXPECT_EQ(net.unit(2).state(), BarrierState::Synced);
    EXPECT_EQ(net.syncEvents(), 2u);
}

TEST_F(NetworkTest, SubsetMaskIgnoresOutsiders)
{
    // Processors 0 and 1 sync with each other; processor 2 never
    // participates and never blocks them.
    BarrierNetwork net(3);
    arm(net, 0, 1, 0b011);
    arm(net, 1, 1, 0b011);
    net.unit(0).arrive();
    net.unit(1).arrive();
    EXPECT_EQ(net.evaluate(), 2);
}

TEST_F(NetworkTest, RepeatedEpisodes)
{
    BarrierNetwork net(2);
    arm(net, 0, 1, 0b11);
    arm(net, 1, 1, 0b11);
    for (int episode = 0; episode < 5; ++episode) {
        net.unit(0).arrive();
        EXPECT_EQ(net.evaluate(), 0);
        net.unit(1).arrive();
        EXPECT_EQ(net.evaluate(), 2);
        net.unit(0).cross();
        net.unit(1).cross();
    }
    EXPECT_EQ(net.unit(0).episodes(), 5u);
    EXPECT_EQ(net.syncEvents(), 5u);
}

TEST_F(NetworkTest, StalledProcessorStillSignalsReady)
{
    BarrierNetwork net(2);
    arm(net, 0, 1, 0b11);
    arm(net, 1, 1, 0b11);
    net.unit(0).arrive();
    net.unit(0).noteStalled();  // exhausted its region
    net.unit(1).arrive();
    EXPECT_EQ(net.evaluate(), 2);
}

TEST_F(NetworkTest, WouldDeadlockOnHaltedPartner)
{
    BarrierNetwork net(2);
    arm(net, 0, 1, 0b11);
    arm(net, 1, 1, 0b11);
    net.unit(0).arrive();
    net.unit(0).noteStalled();
    // Processor 1 halted without arriving.
    EXPECT_TRUE(net.wouldDeadlock({false, true}));
    // If processor 1 were still running, no deadlock yet.
    EXPECT_FALSE(net.wouldDeadlock({false, false}));
}

TEST_F(NetworkTest, WouldDeadlockOnTagMismatch)
{
    BarrierNetwork net(2);
    arm(net, 0, 1, 0b11);
    arm(net, 1, 2, 0b11);
    net.unit(0).arrive();
    net.unit(0).noteStalled();
    net.unit(1).arrive();
    net.unit(1).noteStalled();
    EXPECT_TRUE(net.wouldDeadlock({false, false}));
}

TEST_F(NetworkTest, SyncLatencyDelaysDelivery)
{
    BarrierNetwork net(2, 3);
    arm(net, 0, 1, 0b11);
    arm(net, 1, 1, 0b11);
    net.unit(0).arrive();
    net.unit(1).arrive();
    // Group complete at cycle 10, but the broadcast takes 3 cycles.
    EXPECT_EQ(net.evaluate(10), 0);
    EXPECT_TRUE(net.deliveryPending());
    EXPECT_EQ(net.evaluate(11), 0);
    EXPECT_EQ(net.evaluate(12), 0);
    EXPECT_EQ(net.evaluate(13), 2);
    EXPECT_FALSE(net.deliveryPending());
    EXPECT_EQ(net.unit(0).state(), BarrierState::Synced);
}

TEST_F(NetworkTest, ZeroLatencyDeliversImmediately)
{
    BarrierNetwork net(2, 0);
    arm(net, 0, 1, 0b11);
    arm(net, 1, 1, 0b11);
    net.unit(0).arrive();
    net.unit(1).arrive();
    EXPECT_EQ(net.evaluate(42), 2);
    EXPECT_FALSE(net.deliveryPending());
}

TEST_F(NetworkTest, MaxBarriersForNStreams)
{
    // Section 5: an N-processor system needs at most N-1 logical
    // barriers. Exercise N-1 distinct tags pairwise on a 4-way net:
    // stream creation order 0->1, 1->2, 2->3 using tags 1, 2, 3.
    BarrierNetwork net(4);
    struct Pair { int a, b; std::uint32_t tag; };
    for (const Pair &pr : {Pair{0, 1, 1}, Pair{1, 2, 2}, Pair{2, 3, 3}}) {
        net.unit(pr.a).setTag(pr.tag);
        net.unit(pr.b).setTag(pr.tag);
        std::uint64_t mask =
            (1ull << pr.a) | (1ull << pr.b);
        net.unit(pr.a).setMask(mask);
        net.unit(pr.b).setMask(mask);
        net.unit(pr.a).arrive();
        EXPECT_EQ(net.evaluate(), 0);
        net.unit(pr.b).arrive();
        EXPECT_EQ(net.evaluate(), 2);
        net.unit(pr.a).cross();
        net.unit(pr.b).cross();
    }
    EXPECT_EQ(net.syncEvents(), 3u);
}

} // namespace
} // namespace fb::barrier
