/**
 * @file
 * Tests for the checkpoint/restore subsystem: the byte codec, the
 * versioned CRC-protected container, the durable generation store and
 * its corrupt-snapshot walk-back, the snapshot-corruption injectors,
 * machine-level save/restore exactness, and the resume-equivalence
 * oracle over a large sweep of generated scenarios.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "barrier/network.hh"
#include "barrier/topology.hh"
#include "exec/machine_pool.hh"
#include "exec/program_cache.hh"
#include "fault/plan.hh"
#include "fault/snapcorrupt.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "snapshot/codec.hh"
#include "snapshot/format.hh"
#include "snapshot/store.hh"
#include "snapshot/writer.hh"
#include "support/logging.hh"
#include "verify/generator.hh"
#include "verify/resume.hh"

namespace fb::snapshot
{
namespace
{

using sim::Machine;
using sim::MachineConfig;

// --- codec -----------------------------------------------------------

TEST(Codec, Crc32KnownVector)
{
    const std::string check = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t *>(check.data()),
                    check.size()),
              0xcbf43926u);
    EXPECT_EQ(crc32(std::vector<std::uint8_t>{}), 0u);
}

TEST(Codec, RoundTripAllTypes)
{
    Encoder e;
    e.u8(0xab);
    e.u32(0xdeadbeef);
    e.u64(0x0123456789abcdefULL);
    e.i64(-42);
    e.b(true);
    e.b(false);
    e.str("fuzzy");
    e.str("");
    e.boolVec({true, false, true});
    e.u64Vec({1, 0xffffffffffffffffULL, 7});
    BitVector bv(11);
    bv.set(0, true);
    bv.set(9, true);
    e.bits(bv);

    Decoder d(e.buffer());
    EXPECT_EQ(d.u8(), 0xab);
    EXPECT_EQ(d.u32(), 0xdeadbeefu);
    EXPECT_EQ(d.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(d.i64(), -42);
    EXPECT_TRUE(d.b());
    EXPECT_FALSE(d.b());
    EXPECT_EQ(d.str(), "fuzzy");
    EXPECT_EQ(d.str(), "");
    std::vector<bool> bools;
    d.boolVec(bools);
    EXPECT_EQ(bools, (std::vector<bool>{true, false, true}));
    std::vector<std::uint64_t> words;
    d.u64Vec(words);
    EXPECT_EQ(words,
              (std::vector<std::uint64_t>{1, 0xffffffffffffffffULL, 7}));
    BitVector bv2(0);
    d.bits(bv2);
    ASSERT_EQ(bv2.size(), 11u);
    EXPECT_TRUE(bv2.test(0));
    EXPECT_TRUE(bv2.test(9));
    EXPECT_FALSE(bv2.test(5));
    EXPECT_TRUE(d.done());
}

TEST(Codec, DecoderStickyFailure)
{
    Encoder e;
    e.u32(7);
    Decoder d(e.buffer());
    EXPECT_EQ(d.u32(), 7u);
    EXPECT_TRUE(d.ok());
    EXPECT_EQ(d.u64(), 0u);  // past the end
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.u8(), 0u);  // stays failed even for in-range widths
    EXPECT_FALSE(d.done());
}

TEST(Codec, DecoderRejectsHugeLengthPrefix)
{
    // A length prefix larger than the buffer must fail cleanly, not
    // allocate or wrap.
    Encoder e;
    e.u64(0xffffffffffffff00ULL);
    Decoder d(e.buffer());
    EXPECT_EQ(d.str(), "");
    EXPECT_FALSE(d.ok());
}

// --- container format ------------------------------------------------

std::vector<Section>
sampleSections()
{
    Encoder a;
    a.u64(123);
    a.str("core");
    Encoder b;
    b.u64Vec({9, 8, 7});
    return {{static_cast<std::uint32_t>(SectionId::MachineCore),
             a.take()},
            {static_cast<std::uint32_t>(SectionId::Memory), b.take()}};
}

TEST(Format, AssembleDisassembleRoundTrip)
{
    SnapshotHeader h;
    h.configFingerprint = 0x1122334455667788ULL;
    h.cycle = 99;
    h.generation = 4;
    auto bytes = assemble(h, sampleSections());

    SnapshotHeader h2;
    std::vector<Section> secs;
    std::string err;
    ASSERT_TRUE(disassemble(bytes, h2, secs, err)) << err;
    EXPECT_EQ(h2.version, formatVersion);
    EXPECT_EQ(h2.configFingerprint, h.configFingerprint);
    EXPECT_EQ(h2.cycle, 99u);
    EXPECT_EQ(h2.generation, 4u);
    ASSERT_EQ(secs.size(), 2u);
    EXPECT_EQ(secs[0].id,
              static_cast<std::uint32_t>(SectionId::MachineCore));
    EXPECT_EQ(secs[1].id, static_cast<std::uint32_t>(SectionId::Memory));

    SnapshotHeader peeked;
    ASSERT_TRUE(peekHeader(bytes, peeked, err)) << err;
    EXPECT_EQ(peeked.cycle, 99u);
}

TEST(Format, EveryTruncationIsDetected)
{
    SnapshotHeader h;
    h.cycle = 1;
    auto bytes = assemble(h, sampleSections());
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        std::vector<std::uint8_t> cut(bytes.begin(),
                                      bytes.begin() +
                                          static_cast<std::ptrdiff_t>(len));
        SnapshotHeader h2;
        std::vector<Section> secs;
        std::string err;
        EXPECT_FALSE(disassemble(cut, h2, secs, err))
            << "truncation to " << len << " bytes went undetected";
    }
}

TEST(Format, EveryBitFlipIsDetected)
{
    SnapshotHeader h;
    h.cycle = 1;
    auto bytes = assemble(h, sampleSections());
    for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
        auto mutated = bytes;
        mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        SnapshotHeader h2;
        std::vector<Section> secs;
        std::string err;
        EXPECT_FALSE(disassemble(mutated, h2, secs, err))
            << "bit flip at " << bit << " went undetected";
    }
}

TEST(Format, RejectsTrailingGarbage)
{
    SnapshotHeader h;
    auto bytes = assemble(h, sampleSections());
    bytes.push_back(0);
    SnapshotHeader h2;
    std::vector<Section> secs;
    std::string err;
    EXPECT_FALSE(disassemble(bytes, h2, secs, err));
    EXPECT_NE(err.find("trailing"), std::string::npos) << err;
}

TEST(Format, RejectsWrongMagicAndVersion)
{
    SnapshotHeader h;
    auto bytes = assemble(h, sampleSections());
    auto badMagic = bytes;
    badMagic[0] = 'X';
    SnapshotHeader h2;
    std::string err;
    EXPECT_FALSE(peekHeader(badMagic, h2, err));
    EXPECT_NE(err.find("magic"), std::string::npos) << err;

    // A version bump alone also flips the header CRC; rebuild the
    // stream around the foreign version to isolate the version check.
    std::vector<std::uint8_t> empty;
    SnapshotHeader hv;
    auto stream = assemble(hv, {});
    stream[8] ^= 0x02;   // version field (offset 8)
    EXPECT_FALSE(peekHeader(stream, h2, err));
}

// --- durable store ---------------------------------------------------

std::string
freshDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "fb_snapshot_test_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::vector<std::uint8_t>
snapshotBytes(std::uint64_t cycle, std::uint64_t generation)
{
    SnapshotHeader h;
    h.cycle = cycle;
    h.generation = generation;
    return assemble(h, sampleSections());
}

TEST(Store, SaveLoadAndPrune)
{
    SnapshotStore store(freshDir("prune"), 2);
    std::string err;
    for (std::uint64_t g = 1; g <= 5; ++g)
        ASSERT_TRUE(store.save(g, snapshotBytes(g * 100, g), err)) << err;

    auto entries = store.list();
    ASSERT_EQ(entries.size(), 2u);  // pruned to the newest two
    EXPECT_EQ(entries[0].first, 4u);
    EXPECT_EQ(entries[1].first, 5u);
    EXPECT_EQ(store.newestGeneration(), 5u);

    std::vector<std::uint8_t> bytes;
    std::uint64_t gen = 0;
    std::vector<std::string> diags;
    ASSERT_TRUE(store.loadLatest(bytes, gen, diags));
    EXPECT_EQ(gen, 5u);
    EXPECT_TRUE(diags.empty());
    EXPECT_EQ(bytes, snapshotBytes(500, 5));
}

TEST(Store, EmptyStoreLoadFails)
{
    SnapshotStore store(freshDir("empty"));
    std::vector<std::uint8_t> bytes;
    std::uint64_t gen = 0;
    std::vector<std::string> diags;
    EXPECT_FALSE(store.loadLatest(bytes, gen, diags));
}

TEST(Store, WalkBackPastCorruptNewest)
{
    SnapshotStore store(freshDir("walkback"), 3);
    std::string err;
    for (std::uint64_t g = 1; g <= 3; ++g)
        ASSERT_TRUE(store.save(g, snapshotBytes(g * 10, g), err)) << err;

    // Tear the newest file mid-write and bit-rot the next one.
    {
        std::vector<std::uint8_t> bytes;
        ASSERT_TRUE(readFile(store.pathFor(3), bytes, err)) << err;
        bytes.resize(bytes.size() / 2);
        std::FILE *f = std::fopen(store.pathFor(3).c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite(bytes.data(), 1, bytes.size(), f);
        std::fclose(f);
    }
    {
        std::vector<std::uint8_t> bytes;
        ASSERT_TRUE(readFile(store.pathFor(2), bytes, err)) << err;
        bytes[bytes.size() - 1] ^= 0x01;
        std::FILE *f = std::fopen(store.pathFor(2).c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite(bytes.data(), 1, bytes.size(), f);
        std::fclose(f);
    }

    std::vector<std::uint8_t> bytes;
    std::uint64_t gen = 0;
    std::vector<std::string> diags;
    ASSERT_TRUE(store.loadLatest(bytes, gen, diags));
    EXPECT_EQ(gen, 1u);
    EXPECT_EQ(bytes, snapshotBytes(10, 1));
    EXPECT_EQ(diags.size(), 2u);  // one skip message per bad generation
}

TEST(Store, RejectsGenerationMismatch)
{
    SnapshotStore store(freshDir("genmismatch"), 3);
    std::string err;
    ASSERT_TRUE(store.save(1, snapshotBytes(10, 1), err)) << err;
    // Park generation 1's bytes under generation 2's name: valid CRCs,
    // wrong embedded generation.
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(readFile(store.pathFor(1), bytes, err)) << err;
    std::FILE *f = std::fopen(store.pathFor(2).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);

    std::uint64_t gen = 0;
    std::vector<std::string> diags;
    ASSERT_TRUE(store.loadLatest(bytes, gen, diags));
    EXPECT_EQ(gen, 1u);  // the stale copy was skipped, not trusted
    EXPECT_FALSE(diags.empty());
}

// --- corruption injectors --------------------------------------------

TEST(Corruption, EachKindIsNeverSilentlyRestored)
{
    using fault::SnapshotCorruption;
    for (auto kind :
         {SnapshotCorruption::Truncate, SnapshotCorruption::BitFlip,
          SnapshotCorruption::StaleGeneration}) {
        for (std::uint64_t seed = 1; seed <= 8; ++seed) {
            SnapshotStore store(
                freshDir(std::string("inject_") +
                         fault::snapshotCorruptionName(kind) + "_" +
                         std::to_string(seed)),
                4);
            std::string err;
            ASSERT_TRUE(store.save(1, snapshotBytes(10, 1), err)) << err;
            ASSERT_TRUE(store.save(2, snapshotBytes(20, 2), err)) << err;
            ASSERT_TRUE(
                fault::corruptNewestSnapshot(store, kind, seed, err))
                << err;

            std::vector<std::uint8_t> bytes;
            std::uint64_t gen = 0;
            std::vector<std::string> diags;
            // The newest generation is damaged; the loader must fall
            // back to the intact older one, never return the damaged
            // bytes.
            ASSERT_TRUE(store.loadLatest(bytes, gen, diags))
                << fault::snapshotCorruptionName(kind);
            EXPECT_EQ(gen, 1u)
                << fault::snapshotCorruptionName(kind) << " seed "
                << seed;
            EXPECT_EQ(bytes, snapshotBytes(10, 1));
            EXPECT_FALSE(diags.empty());
        }
    }
}

TEST(Corruption, SingleGenerationStaleFallsToNothing)
{
    SnapshotStore store(freshDir("stale_single"), 4);
    std::string err;
    ASSERT_TRUE(store.save(1, snapshotBytes(10, 1), err)) << err;
    ASSERT_TRUE(fault::corruptNewestSnapshot(
        store, fault::SnapshotCorruption::StaleGeneration, 7, err))
        << err;
    std::vector<std::uint8_t> bytes;
    std::uint64_t gen = 0;
    std::vector<std::string> diags;
    EXPECT_FALSE(store.loadLatest(bytes, gen, diags));
}

// --- machine save/restore --------------------------------------------

isa::Program
assembleOrDie(const std::string &src)
{
    isa::Program p;
    std::string err;
    if (!isa::Assembler::assemble(src, p, err))
        ADD_FAILURE() << "assembly failed: " << err;
    return p;
}

std::string
loopSource(int iters, int work, int region, std::uint64_t mask)
{
    std::ostringstream oss;
    oss << "settag 1\n";
    oss << "setmask " << mask << "\n";
    oss << "li r1, 0\n";
    oss << "li r2, " << iters << "\n";
    oss << "loop:\n";
    for (int k = 0; k < work; ++k)
        oss << "addi r3, r3, 1\n";
    oss << ".region 1\n";
    for (int k = 0; k < region; ++k)
        oss << "addi r5, r5, 1\n";
    oss << "st r5, " << 100 << "(r0)\n";
    oss << "addi r1, r1, 1\n";
    oss << "bne r1, r2, loop\n";
    oss << ".endregion\n";
    oss << "halt\n";
    return oss.str();
}

MachineConfig
machineConfig(int procs)
{
    MachineConfig cfg;
    cfg.numProcessors = procs;
    cfg.memWords = 4096;
    cfg.maxCycles = 500'000;
    cfg.jitterMean = 0.4;  // exercise the per-processor PRNG state
    cfg.seed = 11;
    return cfg;
}

void
loadLoop(Machine &m, int procs)
{
    auto prog = assembleOrDie(
        loopSource(12, 5, 3, (1ULL << procs) - 1));
    for (int p = 0; p < procs; ++p)
        m.loadProgram(p, prog);
}

TEST(MachineSnapshot, CheckpointingPerturbsNothing)
{
    auto cfg = machineConfig(4);
    Machine ref(cfg);
    loadLoop(ref, 4);
    auto refResult = ref.run();

    auto cfg2 = cfg;
    cfg2.checkpointEveryCycles = 64;
    Machine chk(cfg2);
    loadLoop(chk, 4);
    int snapshots = 0;
    chk.setCheckpointSink(
        [&](std::uint64_t, const std::vector<std::uint8_t> &) {
            ++snapshots;
            return true;
        });
    auto chkResult = chk.run();

    EXPECT_GT(snapshots, 0);
    EXPECT_EQ(refResult.cycles, chkResult.cycles);
    EXPECT_EQ(refResult.syncEvents, chkResult.syncEvents);
    EXPECT_EQ(refResult.memAccesses, chkResult.memAccesses);
    for (int p = 0; p < 4; ++p)
        for (int r = 0; r < 32; ++r)
            EXPECT_EQ(ref.processor(p).reg(r), chk.processor(p).reg(r))
                << "cpu" << p << " r" << r;
}

TEST(MachineSnapshot, RestoreContinuesBitIdentically)
{
    auto cfg = machineConfig(4);
    Machine ref(cfg);
    loadLoop(ref, 4);
    auto refResult = ref.run();
    ASSERT_FALSE(refResult.deadlocked);

    auto cfg2 = cfg;
    cfg2.checkpointEveryCycles = 100;
    Machine chk(cfg2);
    loadLoop(chk, 4);
    std::vector<std::vector<std::uint8_t>> snaps;
    chk.setCheckpointSink(
        [&](std::uint64_t, const std::vector<std::uint8_t> &bytes) {
            snaps.push_back(bytes);
            return true;
        });
    chk.run();
    ASSERT_GE(snaps.size(), 2u);

    // Resume from a mid-run snapshot on a completely fresh machine.
    Machine resumed(cfg);
    loadLoop(resumed, 4);
    std::string err;
    ASSERT_TRUE(resumed.restoreState(snaps[1], err)) << err;
    auto resumedResult = resumed.run();

    EXPECT_EQ(resumedResult.cycles, refResult.cycles);
    EXPECT_EQ(resumedResult.syncEvents, refResult.syncEvents);
    EXPECT_EQ(resumedResult.deadlocked, refResult.deadlocked);
    for (int p = 0; p < 4; ++p)
        for (int r = 0; r < 32; ++r)
            EXPECT_EQ(resumed.processor(p).reg(r),
                      ref.processor(p).reg(r))
                << "cpu" << p << " r" << r;
    EXPECT_EQ(resumed.memory().peek(100), ref.memory().peek(100));
    EXPECT_EQ(resumed.checkSafetyProperty(), ref.checkSafetyProperty());
}

TEST(MachineSnapshot, SyncRecordWindowSurvivesChainedRestore)
{
    // A bounded sync-record trail (MachineConfig::syncRecordWindow)
    // rotates old records out mid-run; checkpoints taken across those
    // prunes carry the dropped-count and the retained suffix on the
    // wire, and a delta chain restored on a fresh machine must land on
    // the exact same trail, dropped count and final state as the
    // uninterrupted reference.
    auto cfg = machineConfig(4);
    cfg.syncRecordWindow = 3;
    Machine ref(cfg);
    loadLoop(ref, 4);
    auto refResult = ref.run();
    ASSERT_FALSE(refResult.deadlocked);
    // The loop synchronizes once per iteration, so the run crosses
    // the window many times over.
    ASSERT_GT(refResult.syncRecordsDropped, 0u);
    ASSERT_EQ(ref.syncRecords().size(), 3u);

    SnapshotStore store(freshDir("sync_window_chain"), 32);
    AsyncSnapshotWriter writer(store);
    auto cfg2 = cfg;
    cfg2.checkpointEveryCycles = refResult.cycles / 10;
    cfg2.checkpointRebaseEvery = 4;
    Machine chk(cfg2);
    loadLoop(chk, 4);
    chk.setStagedCheckpointSink(
        [&writer](SnapshotHeader h, std::vector<Section> secs) {
            auto v = writer.submit(std::move(h), std::move(secs));
            Machine::CheckpointAck ack;
            ack.keep = v.keep;
            ack.forceFull = v.forceFull;
            ack.deltasOk = v.deltasOk;
            ack.degradation = std::move(v.degradation);
            return ack;
        });
    auto chkResult = chk.run();
    writer.drain();
    EXPECT_EQ(chkResult.cycles, refResult.cycles);
    EXPECT_EQ(chkResult.syncRecordsDropped, refResult.syncRecordsDropped);
    EXPECT_GE(chkResult.checkpointsDelta, 1u);

    std::vector<std::vector<std::uint8_t>> chain;
    std::uint64_t gen = 0;
    std::vector<std::string> diags;
    ASSERT_TRUE(store.loadLatestChain(chain, gen, diags));
    Machine resumed(cfg);
    loadLoop(resumed, 4);
    std::string err;
    ASSERT_TRUE(resumed.restoreChainState(chain, err)) << err;
    auto result = resumed.run();

    EXPECT_EQ(result.cycles, refResult.cycles);
    EXPECT_EQ(result.syncRecordsDropped, refResult.syncRecordsDropped);
    ASSERT_EQ(resumed.syncRecords().size(), ref.syncRecords().size());
    for (std::size_t i = 0; i < ref.syncRecords().size(); ++i) {
        const sim::SyncRecord &a = resumed.syncRecords()[i];
        const sim::SyncRecord &b = ref.syncRecords()[i];
        EXPECT_EQ(a.cycle, b.cycle) << "record " << i;
        EXPECT_EQ(a.members, b.members) << "record " << i;
        EXPECT_EQ(a.arrivals, b.arrivals) << "record " << i;
        EXPECT_EQ(a.crossings, b.crossings) << "record " << i;
    }
    for (int p = 0; p < 4; ++p)
        for (int r = 0; r < 32; ++r)
            EXPECT_EQ(resumed.processor(p).reg(r),
                      ref.processor(p).reg(r))
                << "cpu" << p << " r" << r;
}

TEST(MachineSnapshot, SinkReturningFalseUninstalls)
{
    auto cfg = machineConfig(2);
    cfg.checkpointEveryCycles = 32;
    Machine m(cfg);
    loadLoop(m, 2);
    int calls = 0;
    m.setCheckpointSink(
        [&](std::uint64_t, const std::vector<std::uint8_t> &) {
            ++calls;
            return false;  // simulated persistence failure
        });
    m.run();
    EXPECT_EQ(calls, 1);
}

TEST(MachineSnapshot, FingerprintRejectsForeignConfig)
{
    auto cfg = machineConfig(2);
    Machine m(cfg);
    loadLoop(m, 2);
    auto bytes = m.saveState();

    auto other = cfg;
    other.seed = cfg.seed + 1;
    Machine m2(other);
    loadLoop(m2, 2);
    std::string err;
    EXPECT_FALSE(m2.restoreState(bytes, err));
    EXPECT_NE(err.find("fingerprint"), std::string::npos) << err;

    // Same config, different program: also a fingerprint change.
    Machine m3(cfg);
    auto prog = assembleOrDie("settag 1\nsetmask 3\nhalt\n");
    m3.loadProgram(0, prog);
    m3.loadProgram(1, prog);
    EXPECT_FALSE(m3.restoreState(bytes, err));

    // The checkpoint period itself is deliberately outside the
    // fingerprint: restoring under a different period must work.
    auto differentPeriod = cfg;
    differentPeriod.checkpointEveryCycles = 999;
    Machine m4(differentPeriod);
    loadLoop(m4, 2);
    EXPECT_TRUE(m4.restoreState(bytes, err)) << err;
}

TEST(Codec, WideHierarchicalNetworkRoundTripsMidDelivery)
{
    // A 256-processor network (four payload words of mask bits) on a
    // 4-ary tree, captured while a machine-wide delivery is in flight:
    // the decoded copy must carry the wide masks, the rebuilt sparse
    // sets and the pending delivery cycle, and deliver on schedule.
    barrier::Topology topo;
    ASSERT_TRUE(barrier::Topology::parse("tree:4", topo));
    barrier::BarrierNetwork net(256, 1, topo);
    for (int p = 0; p < 256; ++p) {
        net.unit(p).setTag(1);
        net.unit(p).setMaskAll();
        net.unit(p).arrive();
    }
    // Group completes at cycle 10; span of [0,255] is 4 levels, so
    // delivery is due at 10 + 1 + 2*4 = 19.
    EXPECT_EQ(net.evaluate(10), 0);
    ASSERT_TRUE(net.deliveryPending());

    Encoder e;
    net.encodeState(e);
    barrier::BarrierNetwork copy(256, 1, topo);
    Decoder d(e.buffer());
    ASSERT_TRUE(copy.decodeState(d));

    EXPECT_TRUE(copy.deliveryPending());
    EXPECT_EQ(copy.nextDeliveryCycle(), net.nextDeliveryCycle());
    EXPECT_EQ(copy.readySet().count(), 256u);
    EXPECT_TRUE(copy.unit(0).mask().test(255));
    EXPECT_TRUE(copy.unit(255).mask().test(0));
    EXPECT_FALSE(copy.unit(255).mask().test(255));
    EXPECT_EQ(copy.evaluate(net.nextDeliveryCycle() - 1), 0);
    EXPECT_EQ(copy.evaluate(net.nextDeliveryCycle()), 256);
    EXPECT_EQ(copy.syncEvents(), 1u);
}

std::string
wideLoopSource(int iters, int work, int region)
{
    // Like loopSource, but the machine-wide mask uses the wide
    // SETMASK form (-1 = all processors) so it works beyond 64 CPUs.
    std::ostringstream oss;
    oss << "settag 1\n";
    oss << "setmask -1\n";
    oss << "li r1, 0\n";
    oss << "li r2, " << iters << "\n";
    oss << "loop:\n";
    for (int k = 0; k < work; ++k)
        oss << "addi r3, r3, 1\n";
    oss << ".region 1\n";
    for (int k = 0; k < region; ++k)
        oss << "addi r5, r5, 1\n";
    oss << "addi r1, r1, 1\n";
    oss << "bne r1, r2, loop\n";
    oss << ".endregion\n";
    oss << "halt\n";
    return oss.str();
}

TEST(MachineSnapshot, WideHierarchicalMachineRestoresBitIdentically)
{
    // 72 processors (wide barrier masks) on a tree topology: a
    // mid-run snapshot restored on a fresh machine must continue to
    // the exact same cycle count, episodes and register files.
    auto cfg = machineConfig(72);
    ASSERT_TRUE(barrier::Topology::parse("tree:4", cfg.topology));
    auto prog = assembleOrDie(wideLoopSource(6, 4, 2));
    auto loadAll = [&prog](Machine &m) {
        for (int p = 0; p < 72; ++p)
            m.loadProgram(p, prog);
    };

    Machine ref(cfg);
    loadAll(ref);
    auto refResult = ref.run();
    ASSERT_FALSE(refResult.deadlocked);
    ASSERT_FALSE(refResult.timedOut);

    auto cfg2 = cfg;
    cfg2.checkpointEveryCycles = refResult.cycles / 4;
    Machine chk(cfg2);
    loadAll(chk);
    std::vector<std::vector<std::uint8_t>> snaps;
    chk.setCheckpointSink(
        [&](std::uint64_t, const std::vector<std::uint8_t> &bytes) {
            snaps.push_back(bytes);
            return true;
        });
    chk.run();
    ASSERT_GE(snaps.size(), 2u);

    Machine resumed(cfg);
    loadAll(resumed);
    std::string err;
    ASSERT_TRUE(resumed.restoreState(snaps[1], err)) << err;
    auto resumedResult = resumed.run();

    EXPECT_EQ(resumedResult.cycles, refResult.cycles);
    EXPECT_EQ(resumedResult.syncEvents, refResult.syncEvents);
    for (int p = 0; p < 72; ++p) {
        EXPECT_EQ(resumedResult.perProcessor[static_cast<std::size_t>(p)]
                      .barrierEpisodes,
                  refResult.perProcessor[static_cast<std::size_t>(p)]
                      .barrierEpisodes)
            << "cpu" << p;
        for (int r = 0; r < 32; ++r)
            EXPECT_EQ(resumed.processor(p).reg(r),
                      ref.processor(p).reg(r))
                << "cpu" << p << " r" << r;
    }
}

TEST(MachineSnapshot, FingerprintRejectsMismatchedTopology)
{
    // The topology shapes delivery timing, so a snapshot only replays
    // correctly on the machine shape that produced it: the config
    // fingerprint must bind kind, parameter and level latency.
    auto cfg = machineConfig(2);
    Machine m(cfg);
    loadLoop(m, 2);
    auto bytes = m.saveState();

    std::string err;
    for (const char *spec : {"tree:4", "cluster:2", "tree:4:2"}) {
        auto other = cfg;
        ASSERT_TRUE(barrier::Topology::parse(spec, other.topology));
        Machine victim(other);
        loadLoop(victim, 2);
        EXPECT_FALSE(victim.restoreState(bytes, err)) << spec;
        EXPECT_NE(err.find("fingerprint"), std::string::npos)
            << spec << ": " << err;
    }

    // Same non-flat topology on both sides restores fine; the same
    // shape with a different level latency does not.
    auto treeCfg = cfg;
    ASSERT_TRUE(barrier::Topology::parse("tree:4", treeCfg.topology));
    Machine t1(treeCfg);
    loadLoop(t1, 2);
    auto treeBytes = t1.saveState();
    Machine t2(treeCfg);
    loadLoop(t2, 2);
    EXPECT_TRUE(t2.restoreState(treeBytes, err)) << err;
    auto slowCfg = cfg;
    ASSERT_TRUE(barrier::Topology::parse("tree:4:2", slowCfg.topology));
    Machine t3(slowCfg);
    loadLoop(t3, 2);
    EXPECT_FALSE(t3.restoreState(treeBytes, err));
}

TEST(MachineSnapshot, MismatchedTopologyRestoreDiesLoudly)
{
    // fbsim --restore treats an unrestorable snapshot as fatal; a
    // topology-mismatched checkpoint must take that loud exit with
    // the fingerprint diagnostic, never resume quietly.
    auto cfg = machineConfig(2);
    Machine m(cfg);
    loadLoop(m, 2);
    const auto bytes = m.saveState();
    auto mismatched = cfg;
    ASSERT_TRUE(
        barrier::Topology::parse("cluster:2", mismatched.topology));
    EXPECT_DEATH(
        {
            Machine victim(mismatched);
            loadLoop(victim, 2);
            std::string why;
            const bool restored = victim.restoreState(bytes, why);
            FB_ASSERT(restored,
                      "cannot resume from snapshot: " << why);
        },
        "fingerprint");
}

TEST(MachineSnapshot, CorruptBytesNeverRestore)
{
    auto cfg = machineConfig(2);
    Machine m(cfg);
    loadLoop(m, 2);
    auto bytes = m.saveState();

    Machine victim(cfg);
    loadLoop(victim, 2);
    std::string err;
    // Sampled truncations and bit flips across the whole stream.
    for (std::size_t len = 0; len < bytes.size();
         len += 1 + bytes.size() / 97) {
        std::vector<std::uint8_t> cut(bytes.begin(),
                                      bytes.begin() +
                                          static_cast<std::ptrdiff_t>(len));
        EXPECT_FALSE(victim.restoreState(cut, err))
            << "truncation to " << len;
    }
    for (std::size_t bit = 0; bit < bytes.size() * 8;
         bit += 1 + bytes.size() / 13) {
        auto mutated = bytes;
        mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_FALSE(victim.restoreState(mutated, err))
            << "bit flip at " << bit;
    }
}

// --- delta chains in the store ---------------------------------------

/** A synthetic snapshot with explicit chain linkage. */
std::vector<std::uint8_t>
chainBytes(std::uint64_t cycle, std::uint64_t gen, std::uint64_t base,
           std::uint64_t prev)
{
    SnapshotHeader h;
    h.cycle = cycle;
    h.generation = gen;
    h.baseFull = base;
    h.prev = prev;
    return assemble(h, sampleSections());
}

/** Corrupt one byte deep inside @p path (payload, not header). */
void
rotFile(const std::string &path)
{
    std::string err;
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(readFile(path, bytes, err)) << err;
    ASSERT_GT(bytes.size(), 70u);
    bytes[bytes.size() - 3] ^= 0x40;
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
}

TEST(ChainStore, PruneNeverOrphansALiveChain)
{
    SnapshotStore store(freshDir("chainprune"), 2);
    std::string err;
    ASSERT_TRUE(store.save(1, chainBytes(10, 1, 1, 1), err)) << err;
    ASSERT_TRUE(store.save(2, chainBytes(20, 2, 1, 1), err)) << err;
    ASSERT_TRUE(store.save(3, chainBytes(30, 3, 1, 2), err)) << err;

    // The retention window is {2, 3}, but generation 3's chain runs
    // 3 -> 2 -> 1: pruning the full base would orphan both deltas.
    auto entries = store.list();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].first, 1u);

    // A re-based chain releases the old one: after full 4 + delta 5
    // nothing retained links below 4 and the window applies again.
    ASSERT_TRUE(store.save(4, chainBytes(40, 4, 4, 4), err)) << err;
    ASSERT_TRUE(store.save(5, chainBytes(50, 5, 4, 4), err)) << err;
    entries = store.list();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].first, 4u);
    EXPECT_EQ(entries[1].first, 5u);

    std::vector<std::vector<std::uint8_t>> chain;
    std::uint64_t gen = 0;
    std::vector<std::string> diags;
    ASSERT_TRUE(store.loadLatestChain(chain, gen, diags));
    EXPECT_EQ(gen, 5u);
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(chain[0], chainBytes(40, 4, 4, 4));  // base first
    EXPECT_EQ(chain[1], chainBytes(50, 5, 4, 4));
}

TEST(ChainStore, WalkBackPastCorruptMidDelta)
{
    SnapshotStore store(freshDir("chainmid"), 8);
    std::string err;
    ASSERT_TRUE(store.save(1, chainBytes(10, 1, 1, 1), err)) << err;
    ASSERT_TRUE(store.save(2, chainBytes(20, 2, 1, 1), err)) << err;
    ASSERT_TRUE(store.save(3, chainBytes(30, 3, 1, 2), err)) << err;
    rotFile(store.pathFor(2));

    // Head 3 validates in isolation but its chain crosses the rotten
    // link; head 2 is the rotten file itself; the full base must win.
    std::vector<std::vector<std::uint8_t>> chain;
    std::uint64_t gen = 0;
    std::vector<std::string> diags;
    ASSERT_TRUE(store.loadLatestChain(chain, gen, diags));
    EXPECT_EQ(gen, 1u);
    ASSERT_EQ(chain.size(), 1u);
    EXPECT_FALSE(diags.empty());
}

TEST(ChainStore, MissingBaseDisqualifiesEveryDependentHead)
{
    SnapshotStore store(freshDir("chainnobase"), 8);
    std::string err;
    ASSERT_TRUE(store.save(1, chainBytes(10, 1, 1, 1), err)) << err;
    ASSERT_TRUE(store.save(2, chainBytes(20, 2, 1, 1), err)) << err;
    ASSERT_TRUE(store.save(3, chainBytes(30, 3, 1, 2), err)) << err;
    std::filesystem::remove(store.pathFor(1));

    std::vector<std::vector<std::uint8_t>> chain;
    std::uint64_t gen = 777;
    std::vector<std::string> diags;
    EXPECT_FALSE(store.loadLatestChain(chain, gen, diags));
    EXPECT_EQ(gen, 777u);  // untouched on failure
    EXPECT_FALSE(diags.empty());
}

TEST(Store, StaleTmpFilesSweptAtConstruction)
{
    const std::string dir = freshDir("tmpsweep");
    std::filesystem::create_directories(dir);
    const std::string stale = dir + "/snap-7.fbsnap.tmp";
    {
        std::FILE *f = std::fopen(stale.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("half-written by a crashed writer", f);
        std::fclose(f);
    }
    SnapshotStore store(dir, 3);
    EXPECT_FALSE(std::filesystem::exists(stale));
    std::string err;
    ASSERT_TRUE(store.save(1, snapshotBytes(10, 1), err)) << err;
    EXPECT_EQ(store.list().size(), 1u);
}

TEST(Store, AllGenerationsCorruptIsCleanNotFound)
{
    SnapshotStore store(freshDir("allrot"), 4);
    std::string err;
    for (std::uint64_t g = 1; g <= 3; ++g)
        ASSERT_TRUE(store.save(g, snapshotBytes(g * 10, g), err)) << err;
    for (std::uint64_t g = 1; g <= 3; ++g) {
        std::FILE *f = std::fopen(store.pathFor(g).c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("rot", f);
        std::fclose(f);
    }

    // The walk-back exhausts every candidate: the result must be a
    // clean not-found with the out-param untouched — not generation
    // zero, which a caller could mistake for a restorable state.
    std::vector<std::uint8_t> bytes{0xaa};
    std::uint64_t gen = 777;
    std::vector<std::string> diags;
    EXPECT_FALSE(store.loadLatest(bytes, gen, diags));
    EXPECT_EQ(gen, 777u);
    EXPECT_GE(diags.size(), 3u);  // one rejection per candidate

    std::vector<std::vector<std::uint8_t>> chain;
    diags.clear();
    EXPECT_FALSE(store.loadLatestChain(chain, gen, diags));
    EXPECT_EQ(gen, 777u);
}

// --- I/O-fault shim ---------------------------------------------------

TEST(IoShim, FailNthWriteSurfacesErrno)
{
    SnapshotStore store(freshDir("shimwrite"), 4);
    IoFaultShim shim;
    shim.failNthWrite = 1;
    store.setIoFaultShim(&shim);
    std::string err;
    EXPECT_FALSE(store.save(1, snapshotBytes(10, 1), err));
    EXPECT_NE(err.find("No space left"), std::string::npos) << err;
    EXPECT_EQ(shim.injected, 1u);
    EXPECT_TRUE(store.list().empty());  // no final-name file appeared

    // The fault was transient: the very next save succeeds.
    EXPECT_TRUE(store.save(1, snapshotBytes(10, 1), err)) << err;
    EXPECT_EQ(store.list().size(), 1u);
}

TEST(IoShim, ShortWriteTornFileIsSkippedOnLoad)
{
    SnapshotStore store(freshDir("shimshort"), 4);
    std::string err;
    ASSERT_TRUE(store.save(1, snapshotBytes(10, 1), err)) << err;

    IoFaultShim shim;
    shim.shortNthWrite = shim.writeCalls + 1;  // next write is torn
    store.setIoFaultShim(&shim);
    // The kernel "succeeds", so the save fsyncs and renames a torn
    // file into place under its final name — the nastiest crash shape.
    ASSERT_TRUE(store.save(2, snapshotBytes(20, 2), err)) << err;
    ASSERT_EQ(shim.injected, 1u);
    ASSERT_EQ(store.list().size(), 2u);

    std::vector<std::uint8_t> bytes;
    std::uint64_t gen = 0;
    std::vector<std::string> diags;
    ASSERT_TRUE(store.loadLatest(bytes, gen, diags));
    EXPECT_EQ(gen, 1u);  // torn generation 2 skipped, never trusted
    EXPECT_EQ(bytes, snapshotBytes(10, 1));
    EXPECT_FALSE(diags.empty());
}

TEST(IoShim, FailNthFsyncFailsSave)
{
    SnapshotStore store(freshDir("shimfsync"), 4);
    IoFaultShim shim;
    shim.failNthFsync = 1;
    store.setIoFaultShim(&shim);
    std::string err;
    EXPECT_FALSE(store.save(1, snapshotBytes(10, 1), err));
    EXPECT_NE(err.find("fsync"), std::string::npos) << err;
    EXPECT_EQ(shim.injected, 1u);
}

TEST(IoShim, PersistentFailureKeepsFailing)
{
    SnapshotStore store(freshDir("shimpersist"), 4);
    IoFaultShim shim;
    shim.failNthWrite = 1;
    shim.persistent = true;
    store.setIoFaultShim(&shim);
    std::string err;
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(store.save(1, snapshotBytes(10, 1), err));
    EXPECT_GE(shim.injected, 3u);
    store.setIoFaultShim(nullptr);  // the disk recovers
    EXPECT_TRUE(store.save(1, snapshotBytes(10, 1), err)) << err;
}

// --- background writer ------------------------------------------------

/**
 * Run the standard 4-proc loop with a staged sink feeding @p writer
 * at @p every cycles (re-base every @p rebase captures); returns the
 * RunResult after draining the writer.
 */
sim::RunResult
runWithWriter(AsyncSnapshotWriter &writer, std::uint64_t every,
              std::uint32_t rebase)
{
    auto cfg = machineConfig(4);
    cfg.checkpointEveryCycles = every;
    cfg.checkpointRebaseEvery = rebase;
    Machine m(cfg);
    loadLoop(m, 4);
    m.setStagedCheckpointSink(
        [&writer](SnapshotHeader h, std::vector<Section> secs) {
            auto v = writer.submit(std::move(h), std::move(secs));
            Machine::CheckpointAck ack;
            ack.keep = v.keep;
            ack.forceFull = v.forceFull;
            ack.deltasOk = v.deltasOk;
            ack.degradation = std::move(v.degradation);
            return ack;
        });
    auto result = m.run();
    writer.drain();
    return result;
}

/** Restore the newest chain in @p store and run it to completion;
 * final state must match the uninterrupted @p ref machine. */
void
expectChainResumesTo(SnapshotStore &store, Machine &ref,
                     const sim::RunResult &refResult)
{
    std::vector<std::vector<std::uint8_t>> chain;
    std::uint64_t gen = 0;
    std::vector<std::string> diags;
    ASSERT_TRUE(store.loadLatestChain(chain, gen, diags));

    Machine resumed(machineConfig(4));
    loadLoop(resumed, 4);
    std::string err;
    ASSERT_TRUE(resumed.restoreChainState(chain, err)) << err;
    auto result = resumed.run();
    EXPECT_EQ(result.cycles, refResult.cycles);
    EXPECT_EQ(result.syncEvents, refResult.syncEvents);
    for (int p = 0; p < 4; ++p)
        for (int r = 0; r < 32; ++r)
            EXPECT_EQ(resumed.processor(p).reg(r),
                      ref.processor(p).reg(r))
                << "cpu" << p << " r" << r;
    EXPECT_EQ(resumed.memory().peek(100), ref.memory().peek(100));
}

TEST(Writer, AsyncDeltaChainRestoresBitIdentically)
{
    Machine ref(machineConfig(4));
    loadLoop(ref, 4);
    auto refResult = ref.run();
    ASSERT_FALSE(refResult.deadlocked);

    SnapshotStore store(freshDir("writer_chain"), 32);
    AsyncSnapshotWriter writer(store);
    auto result = runWithWriter(writer, refResult.cycles / 10, 4);

    EXPECT_EQ(result.cycles, refResult.cycles);
    EXPECT_GE(result.checkpointsFull, 2u);
    EXPECT_GE(result.checkpointsDelta, 4u);
    EXPECT_EQ(result.checkpointDegradations, 0u);
    auto ws = writer.stats();
    EXPECT_EQ(ws.dropped, 0u);
    EXPECT_EQ(ws.persisted, ws.submitted);
    EXPECT_EQ(ws.asyncPersisted, ws.persisted);
    EXPECT_EQ(ws.mode, WriterMode::AsyncDelta);

    expectChainResumesTo(store, ref, refResult);
}

TEST(Writer, TransientWriteFaultRetriesWithoutDegrading)
{
    Machine ref(machineConfig(4));
    loadLoop(ref, 4);
    auto refResult = ref.run();

    SnapshotStore store(freshDir("writer_transient"), 32);
    IoFaultShim shim;
    shim.failNthWrite = 2;
    store.setIoFaultShim(&shim);
    WriterConfig wc;
    wc.backoffInitialMs = 0;  // no sleeping in tests
    AsyncSnapshotWriter writer(store, wc);
    auto result = runWithWriter(writer, refResult.cycles / 10, 4);

    auto ws = writer.stats();
    EXPECT_GE(ws.retries, 1u);
    EXPECT_EQ(ws.dropped, 0u);
    EXPECT_EQ(ws.mode, WriterMode::AsyncDelta);
    EXPECT_EQ(result.checkpointDegradations, 0u);
    expectChainResumesTo(store, ref, refResult);
}

TEST(Writer, DegradationLadderWalksDownToDisabled)
{
    SnapshotStore store(freshDir("writer_ladder"), 8);
    IoFaultShim shim;
    shim.failNthWrite = 1;
    shim.persistent = true;  // the disk never recovers
    store.setIoFaultShim(&shim);
    WriterConfig wc;
    wc.maxRetries = 1;
    wc.backoffInitialMs = 0;
    AsyncSnapshotWriter writer(store, wc);

    SnapshotHeader full;
    full.generation = full.baseFull = full.prev = 1;

    // Rung 1: the async worker exhausts its retries and drops the
    // capture; the ladder steps to sync-delta.
    auto v = writer.submit(full, {});
    EXPECT_TRUE(v.keep);
    writer.drain();
    EXPECT_EQ(writer.stats().mode, WriterMode::SyncDelta);

    // Rung 2: inline persistence fails too -> sync-full.
    full.generation = full.baseFull = full.prev = 2;
    v = writer.submit(full, {});
    EXPECT_TRUE(v.keep);
    EXPECT_FALSE(v.deltasOk);
    EXPECT_FALSE(v.degradation.empty());
    EXPECT_EQ(writer.stats().mode, WriterMode::SyncFull);

    // Rung 3: even an inline full snapshot fails -> disabled; the
    // machine is told to stop checkpointing entirely.
    full.generation = full.baseFull = full.prev = 3;
    v = writer.submit(full, {});
    EXPECT_FALSE(v.keep);
    EXPECT_EQ(writer.stats().mode, WriterMode::Disabled);

    auto ws = writer.stats();
    EXPECT_EQ(ws.degradations, 3u);
    EXPECT_EQ(ws.dropped, 3u);
    EXPECT_EQ(ws.persisted, 0u);
    EXPECT_FALSE(ws.lastError.empty());
}

TEST(Writer, BrokenChainDiscardsDeltasUntilReanchored)
{
    SnapshotStore store(freshDir("writer_reanchor"), 8);
    IoFaultShim shim;
    shim.failNthWrite = 1;  // transient: only the first write dies
    store.setIoFaultShim(&shim);
    WriterConfig wc;
    wc.maxRetries = 0;  // no retry: the first capture is simply lost
    wc.backoffInitialMs = 0;
    AsyncSnapshotWriter writer(store, wc);

    SnapshotHeader full;
    full.generation = full.baseFull = full.prev = 1;
    writer.submit(full, {});
    writer.drain();  // dropped; the on-disk chain is now broken

    // A delta naming the never-persisted predecessor is worthless;
    // the writer must discard it and demand a re-base.
    SnapshotHeader delta;
    delta.generation = 2;
    delta.baseFull = 1;
    delta.prev = 1;
    auto v = writer.submit(delta, {});
    writer.drain();
    EXPECT_TRUE(v.forceFull);
    EXPECT_TRUE(store.list().empty());

    // The re-based full lands and re-anchors; deltas flow again.
    SnapshotHeader full3;
    full3.generation = full3.baseFull = full3.prev = 3;
    writer.submit(full3, {});
    writer.drain();
    SnapshotHeader delta4;
    delta4.generation = 4;
    delta4.baseFull = 3;
    delta4.prev = 3;
    v = writer.submit(delta4, {});
    writer.drain();
    EXPECT_FALSE(v.forceFull);

    auto ws = writer.stats();
    EXPECT_EQ(ws.dropped, 2u);
    EXPECT_EQ(ws.persisted, 2u);
    std::vector<std::vector<std::uint8_t>> chain;
    std::uint64_t gen = 0;
    std::vector<std::string> diags;
    ASSERT_TRUE(store.loadLatestChain(chain, gen, diags));
    EXPECT_EQ(gen, 4u);
    EXPECT_EQ(chain.size(), 2u);
}

TEST(Writer, MachineRecordsDegradationInRunResult)
{
    Machine ref(machineConfig(4));
    loadLoop(ref, 4);
    auto refResult = ref.run();

    SnapshotStore store(freshDir("writer_degrade"), 8);
    IoFaultShim shim;
    shim.failNthWrite = 1;
    shim.persistent = true;
    store.setIoFaultShim(&shim);
    WriterConfig wc;
    wc.maxRetries = 0;
    wc.backoffInitialMs = 0;
    AsyncSnapshotWriter writer(store, wc);
    auto result = runWithWriter(writer, refResult.cycles / 10, 4);

    // Checkpointing collapsed, the run did not: every counter and
    // final register must match the uninterrupted reference.
    EXPECT_GE(result.checkpointDegradations, 1u);
    EXPECT_FALSE(result.checkpointDegradation.empty());
    EXPECT_EQ(result.cycles, refResult.cycles);
    EXPECT_EQ(result.syncEvents, refResult.syncEvents);
    EXPECT_EQ(writer.stats().persisted, 0u);
}

/**
 * The acceptance sweep for the shim: a delta-chain campaign re-run
 * once per write ordinal with exactly that write failing (transient).
 * The writer's retry must absorb every single-write fault — nothing
 * drops, nothing degrades, and the persisted chain still restores
 * bit-identically wherever the fault landed.
 */
TEST(IoShim, FailingEachWriteExactlyOnceNeverLosesTheChain)
{
    Machine ref(machineConfig(4));
    loadLoop(ref, 4);
    auto refResult = ref.run();
    ASSERT_FALSE(refResult.deadlocked);
    const std::uint64_t every = refResult.cycles / 6;

    // Discover how many store writes a fault-free campaign issues.
    std::uint64_t totalWrites = 0;
    {
        SnapshotStore store(freshDir("shimsweep_probe"), 32);
        IoFaultShim probe;
        store.setIoFaultShim(&probe);
        AsyncSnapshotWriter writer(store);
        runWithWriter(writer, every, 3);
        totalWrites = probe.writeCalls;
    }
    ASSERT_GE(totalWrites, 6u);

    for (std::uint64_t n = 1; n <= totalWrites; ++n) {
        SnapshotStore store(
            freshDir("shimsweep_" + std::to_string(n)), 32);
        IoFaultShim shim;
        shim.failNthWrite = n;
        store.setIoFaultShim(&shim);
        WriterConfig wc;
        wc.backoffInitialMs = 0;
        AsyncSnapshotWriter writer(store, wc);
        auto result = runWithWriter(writer, every, 3);

        auto ws = writer.stats();
        EXPECT_EQ(ws.dropped, 0u) << "write " << n;
        EXPECT_EQ(ws.mode, WriterMode::AsyncDelta) << "write " << n;
        EXPECT_EQ(result.checkpointDegradations, 0u) << "write " << n;
        EXPECT_EQ(shim.injected, 1u) << "write " << n;
        expectChainResumesTo(store, ref, refResult);
    }
}

// --- chain corruption -------------------------------------------------

/**
 * Build a real machine-produced delta-chain store, then attack every
 * chain part with every corruption kind. Whatever the damage, the
 * loader must hand back an older intact chain that restores and runs
 * to the reference final state — the corrupt link is never trusted.
 */
TEST(ChainCorruption, EveryPartEveryKindFallsBackToAnIntactChain)
{
    Machine ref(machineConfig(4));
    loadLoop(ref, 4);
    auto refResult = ref.run();
    ASSERT_FALSE(refResult.deadlocked);

    // Persist synchronously (deterministic store contents), keep
    // everything: several full anchors with deltas between them.
    const std::string master = freshDir("chaincorrupt_master");
    std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>>
        files;
    {
        SnapshotStore store(master, 64);
        auto cfg = machineConfig(4);
        cfg.checkpointEveryCycles = refResult.cycles / 12;
        cfg.checkpointRebaseEvery = 4;
        Machine m(cfg);
        loadLoop(m, 4);
        m.setStagedCheckpointSink(
            [&store](SnapshotHeader h, std::vector<Section> secs) {
                std::string err;
                EXPECT_TRUE(
                    store.save(h.generation, assemble(h, secs), err))
                    << err;
                return Machine::CheckpointAck{};
            });
        m.run();
        std::string err;
        for (const auto &[gen, path] : store.list()) {
            std::vector<std::uint8_t> bytes;
            ASSERT_TRUE(readFile(path, bytes, err)) << err;
            files.emplace_back(gen, bytes);
        }
    }
    ASSERT_GE(files.size(), 8u);

    using fault::ChainPart;
    using fault::SnapshotCorruption;
    int attacked = 0;
    for (auto part : {ChainPart::Head, ChainPart::MidDelta,
                      ChainPart::Base, ChainPart::Manifest}) {
        for (auto kind :
             {SnapshotCorruption::Truncate, SnapshotCorruption::BitFlip,
              SnapshotCorruption::StaleGeneration}) {
            for (std::uint64_t seed = 1; seed <= 3; ++seed) {
                // Manifest ignores the corruption kind; run it once.
                if (part == ChainPart::Manifest &&
                    (kind != SnapshotCorruption::Truncate || seed > 1))
                    continue;
                const std::string dir = freshDir(
                    "chaincorrupt_" +
                    std::string(fault::chainPartName(part)) + "_" +
                    fault::snapshotCorruptionName(kind) + "_" +
                    std::to_string(seed));
                std::filesystem::create_directories(dir);
                std::string err;
                for (const auto &[gen, bytes] : files) {
                    std::FILE *f = std::fopen(
                        (dir + "/snap-" + std::to_string(gen) +
                         ".fbsnap")
                            .c_str(),
                        "wb");
                    ASSERT_NE(f, nullptr);
                    std::fwrite(bytes.data(), 1, bytes.size(), f);
                    std::fclose(f);
                }
                SnapshotStore store(dir, 64);
                std::uint64_t victim = 0;
                ASSERT_TRUE(fault::corruptChainSnapshot(
                    store, part, kind, seed, err, &victim))
                    << fault::chainPartName(part) << ": " << err;
                ++attacked;

                std::vector<std::vector<std::uint8_t>> chain;
                std::uint64_t gen = 0;
                std::vector<std::string> diags;
                ASSERT_TRUE(store.loadLatestChain(chain, gen, diags))
                    << fault::chainPartName(part) << "/"
                    << fault::snapshotCorruptionName(kind);
                EXPECT_FALSE(diags.empty());

                // The victim (and for the manifest attack, the lying
                // head) must not be the restored head.
                if (part == ChainPart::Head ||
                    part == ChainPart::Manifest) {
                    EXPECT_LT(gen, victim == 0 ? files.back().first + 1
                                               : victim)
                        << fault::chainPartName(part);
                }

                Machine resumed(machineConfig(4));
                loadLoop(resumed, 4);
                ASSERT_TRUE(resumed.restoreChainState(chain, err))
                    << fault::chainPartName(part) << "/"
                    << fault::snapshotCorruptionName(kind) << ": "
                    << err;
                auto result = resumed.run();
                EXPECT_EQ(result.cycles, refResult.cycles);
                for (int p = 0; p < 4; ++p)
                    for (int r = 0; r < 32; ++r)
                        EXPECT_EQ(resumed.processor(p).reg(r),
                                  ref.processor(p).reg(r))
                            << fault::chainPartName(part) << " cpu"
                            << p << " r" << r;
            }
        }
    }
    EXPECT_GE(attacked, 10);
}

// --- container-level delta rejection ---------------------------------

TEST(MachineSnapshot, TruncatedProcessorSectionNeverRestores)
{
    auto cfg = machineConfig(2);
    Machine m(cfg);
    loadLoop(m, 2);
    auto bytes = m.saveState();

    SnapshotHeader header;
    std::vector<Section> sections;
    std::string err;
    ASSERT_TRUE(disassemble(bytes, header, sections, err)) << err;
    auto procSection = std::find_if(
        sections.begin(), sections.end(), [](const Section &s) {
            return s.id ==
                   static_cast<std::uint32_t>(SectionId::Processors);
        });
    ASSERT_NE(procSection, sections.end());

    // Re-assembled with valid CRCs and the matching fingerprint, the
    // container passes every integrity check; only the payload decode
    // can notice the missing processor state.
    Machine victim(cfg);
    loadLoop(victim, 2);
    {
        auto cut = sections;
        auto &payload =
            cut[static_cast<std::size_t>(
                    procSection - sections.begin())]
                .payload;
        ASSERT_GT(payload.size(), 16u);
        payload.resize(payload.size() / 2);
        auto mutated = assemble(header, cut);
        EXPECT_FALSE(victim.restoreState(mutated, err));
        EXPECT_NE(err.find("processors"), std::string::npos) << err;
    }
    {
        // Lie about the processor count instead: the leading u64
        // says one fewer core than the stream carries.
        auto cut = sections;
        auto &payload =
            cut[static_cast<std::size_t>(
                    procSection - sections.begin())]
                .payload;
        payload[0] = 1;  // count 2 -> 1 (little-endian u64)
        auto mutated = assemble(header, cut);
        EXPECT_FALSE(victim.restoreState(mutated, err));
        EXPECT_NE(err.find("processors"), std::string::npos) << err;
    }

    // The victim machine is still usable after both rejections.
    ASSERT_TRUE(victim.restoreState(bytes, err)) << err;
    auto result = victim.run();
    EXPECT_FALSE(result.deadlocked);
}

TEST(MachineSnapshot, DeltaSnapshotRequiresItsChain)
{
    Machine probe(machineConfig(4));
    loadLoop(probe, 4);
    const auto probeResult = probe.run();

    auto cfg = machineConfig(4);
    cfg.checkpointEveryCycles = probeResult.cycles / 6;
    cfg.checkpointRebaseEvery = 100;  // everything after gen 1 deltas
    Machine m(cfg);
    loadLoop(m, 4);
    std::vector<std::vector<std::uint8_t>> captures;
    m.setStagedCheckpointSink(
        [&captures](SnapshotHeader h, std::vector<Section> secs) {
            captures.push_back(assemble(h, secs));
            return Machine::CheckpointAck{};
        });
    m.run();
    ASSERT_GE(captures.size(), 3u);

    // A bare delta must be rejected by restoreState with a pointer at
    // the chain API, and applyDeltaState must reject a full snapshot.
    Machine victim(machineConfig(4));
    loadLoop(victim, 4);
    std::string err;
    EXPECT_FALSE(victim.restoreState(captures[1], err));
    EXPECT_NE(err.find("chain"), std::string::npos) << err;
    EXPECT_FALSE(victim.applyDeltaState(captures[0], err));

    // Out-of-order replay is rejected too: applying delta 2 directly
    // on the base (skipping delta 1) must fail, not corrupt.
    ASSERT_TRUE(victim.restoreState(captures[0], err)) << err;
    EXPECT_FALSE(victim.applyDeltaState(captures[2], err));
}

// --- resume-equivalence sweep ----------------------------------------

/**
 * The acceptance sweep: >= 200 generated scenarios (100 seeds, both
 * the event-driven and the legacy loop), every one with a seeded
 * random fault plan and the watchdog active, each checked through the
 * full A/B/C resume-equivalence oracle at a randomized checkpoint
 * cycle K.
 */
TEST(ResumeEquivalence, SweepGeneratedScenarios)
{
    // The sweep leases its A/B/C machines from a campaign-engine pool
    // and interns the generated programs, so every seed after the
    // first also proves the resume oracle holds on recycled machines.
    exec::MachinePool pool;
    exec::ProgramCache programs;
    int checked = 0;
    int withSnapshot = 0;
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        auto spec = verify::randomSpec(seed);
        spec.faults =
            fault::randomFaultPlan(seed, spec.procs(), spec.groupSizes);
        spec.faultSeed = seed;
        spec.watchdog.enabled = true;
        spec.watchdog.timeoutCycles = 2000;
        spec.watchdog.maxAttempts = 3;
        auto sc = verify::render(spec);
        for (bool ff : {true, false}) {
            auto rep = verify::checkResumeEquivalence(
                sc, seed * 31 + ff, ff, 5'000'000, &pool, &programs);
            EXPECT_TRUE(rep.ok)
                << "seed " << seed << " ff=" << ff << " K="
                << rep.checkpointCycle << ": " << rep.failure;
            ++checked;
            if (rep.snapshotTaken)
                ++withSnapshot;
        }
    }
    EXPECT_GE(checked, 200);
    EXPECT_GT(pool.reuses(), 0u);
    // The randomized K lands before the end of most runs; make sure
    // the sweep is actually exercising restore, not just A-vs-B.
    EXPECT_GT(withSnapshot, checked / 2);
}

/**
 * The delta-chain flavor of the acceptance sweep: the same generated
 * scenarios with fault plans and an active watchdog, but the re-run
 * machine checkpoints through the staged sink into an in-memory
 * full+delta chain, and the resumed machine restores through
 * restoreChainState — fuzzy-barrier recovery state crossing a
 * multi-link delta chain must still land bit-identically.
 */
TEST(ChainResumeEquivalence, SweepGeneratedScenariosWithFaults)
{
    exec::MachinePool pool;
    exec::ProgramCache programs;
    int checked = 0;
    int withChain = 0;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        auto spec = verify::randomSpec(seed * 7 + 3);
        spec.faults = fault::randomFaultPlan(seed * 7 + 3, spec.procs(),
                                             spec.groupSizes);
        spec.faultSeed = seed * 7 + 3;
        spec.watchdog.enabled = true;
        spec.watchdog.timeoutCycles = 2000;
        spec.watchdog.maxAttempts = 3;
        auto sc = verify::render(spec);
        for (bool ff : {true, false}) {
            auto rep = verify::checkChainResumeEquivalence(
                sc, seed * 47 + ff, ff, 3, 5'000'000, &pool,
                &programs);
            EXPECT_TRUE(rep.ok)
                << "seed " << seed << " ff=" << ff << ": "
                << rep.failure;
            ++checked;
            if (rep.chainLength > 1)
                ++withChain;
        }
    }
    EXPECT_GE(checked, 80);
    // Most scenarios must actually cross a delta link on restore —
    // a sweep of single-snapshot chains would prove nothing new.
    EXPECT_GT(withChain, checked / 4);
}

} // namespace
} // namespace fb::snapshot
