/**
 * @file
 * Tests for the checkpoint/restore subsystem: the byte codec, the
 * versioned CRC-protected container, the durable generation store and
 * its corrupt-snapshot walk-back, the snapshot-corruption injectors,
 * machine-level save/restore exactness, and the resume-equivalence
 * oracle over a large sweep of generated scenarios.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "exec/machine_pool.hh"
#include "exec/program_cache.hh"
#include "fault/plan.hh"
#include "fault/snapcorrupt.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "snapshot/codec.hh"
#include "snapshot/format.hh"
#include "snapshot/store.hh"
#include "verify/generator.hh"
#include "verify/resume.hh"

namespace fb::snapshot
{
namespace
{

using sim::Machine;
using sim::MachineConfig;

// --- codec -----------------------------------------------------------

TEST(Codec, Crc32KnownVector)
{
    const std::string check = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t *>(check.data()),
                    check.size()),
              0xcbf43926u);
    EXPECT_EQ(crc32(std::vector<std::uint8_t>{}), 0u);
}

TEST(Codec, RoundTripAllTypes)
{
    Encoder e;
    e.u8(0xab);
    e.u32(0xdeadbeef);
    e.u64(0x0123456789abcdefULL);
    e.i64(-42);
    e.b(true);
    e.b(false);
    e.str("fuzzy");
    e.str("");
    e.boolVec({true, false, true});
    e.u64Vec({1, 0xffffffffffffffffULL, 7});
    BitVector bv(11);
    bv.set(0, true);
    bv.set(9, true);
    e.bits(bv);

    Decoder d(e.buffer());
    EXPECT_EQ(d.u8(), 0xab);
    EXPECT_EQ(d.u32(), 0xdeadbeefu);
    EXPECT_EQ(d.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(d.i64(), -42);
    EXPECT_TRUE(d.b());
    EXPECT_FALSE(d.b());
    EXPECT_EQ(d.str(), "fuzzy");
    EXPECT_EQ(d.str(), "");
    std::vector<bool> bools;
    d.boolVec(bools);
    EXPECT_EQ(bools, (std::vector<bool>{true, false, true}));
    std::vector<std::uint64_t> words;
    d.u64Vec(words);
    EXPECT_EQ(words,
              (std::vector<std::uint64_t>{1, 0xffffffffffffffffULL, 7}));
    BitVector bv2(0);
    d.bits(bv2);
    ASSERT_EQ(bv2.size(), 11u);
    EXPECT_TRUE(bv2.test(0));
    EXPECT_TRUE(bv2.test(9));
    EXPECT_FALSE(bv2.test(5));
    EXPECT_TRUE(d.done());
}

TEST(Codec, DecoderStickyFailure)
{
    Encoder e;
    e.u32(7);
    Decoder d(e.buffer());
    EXPECT_EQ(d.u32(), 7u);
    EXPECT_TRUE(d.ok());
    EXPECT_EQ(d.u64(), 0u);  // past the end
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.u8(), 0u);  // stays failed even for in-range widths
    EXPECT_FALSE(d.done());
}

TEST(Codec, DecoderRejectsHugeLengthPrefix)
{
    // A length prefix larger than the buffer must fail cleanly, not
    // allocate or wrap.
    Encoder e;
    e.u64(0xffffffffffffff00ULL);
    Decoder d(e.buffer());
    EXPECT_EQ(d.str(), "");
    EXPECT_FALSE(d.ok());
}

// --- container format ------------------------------------------------

std::vector<Section>
sampleSections()
{
    Encoder a;
    a.u64(123);
    a.str("core");
    Encoder b;
    b.u64Vec({9, 8, 7});
    return {{static_cast<std::uint32_t>(SectionId::MachineCore),
             a.take()},
            {static_cast<std::uint32_t>(SectionId::Memory), b.take()}};
}

TEST(Format, AssembleDisassembleRoundTrip)
{
    SnapshotHeader h;
    h.configFingerprint = 0x1122334455667788ULL;
    h.cycle = 99;
    h.generation = 4;
    auto bytes = assemble(h, sampleSections());

    SnapshotHeader h2;
    std::vector<Section> secs;
    std::string err;
    ASSERT_TRUE(disassemble(bytes, h2, secs, err)) << err;
    EXPECT_EQ(h2.version, formatVersion);
    EXPECT_EQ(h2.configFingerprint, h.configFingerprint);
    EXPECT_EQ(h2.cycle, 99u);
    EXPECT_EQ(h2.generation, 4u);
    ASSERT_EQ(secs.size(), 2u);
    EXPECT_EQ(secs[0].id,
              static_cast<std::uint32_t>(SectionId::MachineCore));
    EXPECT_EQ(secs[1].id, static_cast<std::uint32_t>(SectionId::Memory));

    SnapshotHeader peeked;
    ASSERT_TRUE(peekHeader(bytes, peeked, err)) << err;
    EXPECT_EQ(peeked.cycle, 99u);
}

TEST(Format, EveryTruncationIsDetected)
{
    SnapshotHeader h;
    h.cycle = 1;
    auto bytes = assemble(h, sampleSections());
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        std::vector<std::uint8_t> cut(bytes.begin(),
                                      bytes.begin() +
                                          static_cast<std::ptrdiff_t>(len));
        SnapshotHeader h2;
        std::vector<Section> secs;
        std::string err;
        EXPECT_FALSE(disassemble(cut, h2, secs, err))
            << "truncation to " << len << " bytes went undetected";
    }
}

TEST(Format, EveryBitFlipIsDetected)
{
    SnapshotHeader h;
    h.cycle = 1;
    auto bytes = assemble(h, sampleSections());
    for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
        auto mutated = bytes;
        mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        SnapshotHeader h2;
        std::vector<Section> secs;
        std::string err;
        EXPECT_FALSE(disassemble(mutated, h2, secs, err))
            << "bit flip at " << bit << " went undetected";
    }
}

TEST(Format, RejectsTrailingGarbage)
{
    SnapshotHeader h;
    auto bytes = assemble(h, sampleSections());
    bytes.push_back(0);
    SnapshotHeader h2;
    std::vector<Section> secs;
    std::string err;
    EXPECT_FALSE(disassemble(bytes, h2, secs, err));
    EXPECT_NE(err.find("trailing"), std::string::npos) << err;
}

TEST(Format, RejectsWrongMagicAndVersion)
{
    SnapshotHeader h;
    auto bytes = assemble(h, sampleSections());
    auto badMagic = bytes;
    badMagic[0] = 'X';
    SnapshotHeader h2;
    std::string err;
    EXPECT_FALSE(peekHeader(badMagic, h2, err));
    EXPECT_NE(err.find("magic"), std::string::npos) << err;

    // A version bump alone also flips the header CRC; rebuild the
    // stream around the foreign version to isolate the version check.
    std::vector<std::uint8_t> empty;
    SnapshotHeader hv;
    auto stream = assemble(hv, {});
    stream[8] ^= 0x02;   // version field (offset 8)
    EXPECT_FALSE(peekHeader(stream, h2, err));
}

// --- durable store ---------------------------------------------------

std::string
freshDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "fb_snapshot_test_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::vector<std::uint8_t>
snapshotBytes(std::uint64_t cycle, std::uint64_t generation)
{
    SnapshotHeader h;
    h.cycle = cycle;
    h.generation = generation;
    return assemble(h, sampleSections());
}

TEST(Store, SaveLoadAndPrune)
{
    SnapshotStore store(freshDir("prune"), 2);
    std::string err;
    for (std::uint64_t g = 1; g <= 5; ++g)
        ASSERT_TRUE(store.save(g, snapshotBytes(g * 100, g), err)) << err;

    auto entries = store.list();
    ASSERT_EQ(entries.size(), 2u);  // pruned to the newest two
    EXPECT_EQ(entries[0].first, 4u);
    EXPECT_EQ(entries[1].first, 5u);
    EXPECT_EQ(store.newestGeneration(), 5u);

    std::vector<std::uint8_t> bytes;
    std::uint64_t gen = 0;
    std::vector<std::string> diags;
    ASSERT_TRUE(store.loadLatest(bytes, gen, diags));
    EXPECT_EQ(gen, 5u);
    EXPECT_TRUE(diags.empty());
    EXPECT_EQ(bytes, snapshotBytes(500, 5));
}

TEST(Store, EmptyStoreLoadFails)
{
    SnapshotStore store(freshDir("empty"));
    std::vector<std::uint8_t> bytes;
    std::uint64_t gen = 0;
    std::vector<std::string> diags;
    EXPECT_FALSE(store.loadLatest(bytes, gen, diags));
}

TEST(Store, WalkBackPastCorruptNewest)
{
    SnapshotStore store(freshDir("walkback"), 3);
    std::string err;
    for (std::uint64_t g = 1; g <= 3; ++g)
        ASSERT_TRUE(store.save(g, snapshotBytes(g * 10, g), err)) << err;

    // Tear the newest file mid-write and bit-rot the next one.
    {
        std::vector<std::uint8_t> bytes;
        ASSERT_TRUE(readFile(store.pathFor(3), bytes, err)) << err;
        bytes.resize(bytes.size() / 2);
        std::FILE *f = std::fopen(store.pathFor(3).c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite(bytes.data(), 1, bytes.size(), f);
        std::fclose(f);
    }
    {
        std::vector<std::uint8_t> bytes;
        ASSERT_TRUE(readFile(store.pathFor(2), bytes, err)) << err;
        bytes[bytes.size() - 1] ^= 0x01;
        std::FILE *f = std::fopen(store.pathFor(2).c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite(bytes.data(), 1, bytes.size(), f);
        std::fclose(f);
    }

    std::vector<std::uint8_t> bytes;
    std::uint64_t gen = 0;
    std::vector<std::string> diags;
    ASSERT_TRUE(store.loadLatest(bytes, gen, diags));
    EXPECT_EQ(gen, 1u);
    EXPECT_EQ(bytes, snapshotBytes(10, 1));
    EXPECT_EQ(diags.size(), 2u);  // one skip message per bad generation
}

TEST(Store, RejectsGenerationMismatch)
{
    SnapshotStore store(freshDir("genmismatch"), 3);
    std::string err;
    ASSERT_TRUE(store.save(1, snapshotBytes(10, 1), err)) << err;
    // Park generation 1's bytes under generation 2's name: valid CRCs,
    // wrong embedded generation.
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(readFile(store.pathFor(1), bytes, err)) << err;
    std::FILE *f = std::fopen(store.pathFor(2).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);

    std::uint64_t gen = 0;
    std::vector<std::string> diags;
    ASSERT_TRUE(store.loadLatest(bytes, gen, diags));
    EXPECT_EQ(gen, 1u);  // the stale copy was skipped, not trusted
    EXPECT_FALSE(diags.empty());
}

// --- corruption injectors --------------------------------------------

TEST(Corruption, EachKindIsNeverSilentlyRestored)
{
    using fault::SnapshotCorruption;
    for (auto kind :
         {SnapshotCorruption::Truncate, SnapshotCorruption::BitFlip,
          SnapshotCorruption::StaleGeneration}) {
        for (std::uint64_t seed = 1; seed <= 8; ++seed) {
            SnapshotStore store(
                freshDir(std::string("inject_") +
                         fault::snapshotCorruptionName(kind) + "_" +
                         std::to_string(seed)),
                4);
            std::string err;
            ASSERT_TRUE(store.save(1, snapshotBytes(10, 1), err)) << err;
            ASSERT_TRUE(store.save(2, snapshotBytes(20, 2), err)) << err;
            ASSERT_TRUE(
                fault::corruptNewestSnapshot(store, kind, seed, err))
                << err;

            std::vector<std::uint8_t> bytes;
            std::uint64_t gen = 0;
            std::vector<std::string> diags;
            // The newest generation is damaged; the loader must fall
            // back to the intact older one, never return the damaged
            // bytes.
            ASSERT_TRUE(store.loadLatest(bytes, gen, diags))
                << fault::snapshotCorruptionName(kind);
            EXPECT_EQ(gen, 1u)
                << fault::snapshotCorruptionName(kind) << " seed "
                << seed;
            EXPECT_EQ(bytes, snapshotBytes(10, 1));
            EXPECT_FALSE(diags.empty());
        }
    }
}

TEST(Corruption, SingleGenerationStaleFallsToNothing)
{
    SnapshotStore store(freshDir("stale_single"), 4);
    std::string err;
    ASSERT_TRUE(store.save(1, snapshotBytes(10, 1), err)) << err;
    ASSERT_TRUE(fault::corruptNewestSnapshot(
        store, fault::SnapshotCorruption::StaleGeneration, 7, err))
        << err;
    std::vector<std::uint8_t> bytes;
    std::uint64_t gen = 0;
    std::vector<std::string> diags;
    EXPECT_FALSE(store.loadLatest(bytes, gen, diags));
}

// --- machine save/restore --------------------------------------------

isa::Program
assembleOrDie(const std::string &src)
{
    isa::Program p;
    std::string err;
    if (!isa::Assembler::assemble(src, p, err))
        ADD_FAILURE() << "assembly failed: " << err;
    return p;
}

std::string
loopSource(int iters, int work, int region, std::uint64_t mask)
{
    std::ostringstream oss;
    oss << "settag 1\n";
    oss << "setmask " << mask << "\n";
    oss << "li r1, 0\n";
    oss << "li r2, " << iters << "\n";
    oss << "loop:\n";
    for (int k = 0; k < work; ++k)
        oss << "addi r3, r3, 1\n";
    oss << ".region 1\n";
    for (int k = 0; k < region; ++k)
        oss << "addi r5, r5, 1\n";
    oss << "st r5, " << 100 << "(r0)\n";
    oss << "addi r1, r1, 1\n";
    oss << "bne r1, r2, loop\n";
    oss << ".endregion\n";
    oss << "halt\n";
    return oss.str();
}

MachineConfig
machineConfig(int procs)
{
    MachineConfig cfg;
    cfg.numProcessors = procs;
    cfg.memWords = 4096;
    cfg.maxCycles = 500'000;
    cfg.jitterMean = 0.4;  // exercise the per-processor PRNG state
    cfg.seed = 11;
    return cfg;
}

void
loadLoop(Machine &m, int procs)
{
    auto prog = assembleOrDie(
        loopSource(12, 5, 3, (1ULL << procs) - 1));
    for (int p = 0; p < procs; ++p)
        m.loadProgram(p, prog);
}

TEST(MachineSnapshot, CheckpointingPerturbsNothing)
{
    auto cfg = machineConfig(4);
    Machine ref(cfg);
    loadLoop(ref, 4);
    auto refResult = ref.run();

    auto cfg2 = cfg;
    cfg2.checkpointEveryCycles = 64;
    Machine chk(cfg2);
    loadLoop(chk, 4);
    int snapshots = 0;
    chk.setCheckpointSink(
        [&](std::uint64_t, const std::vector<std::uint8_t> &) {
            ++snapshots;
            return true;
        });
    auto chkResult = chk.run();

    EXPECT_GT(snapshots, 0);
    EXPECT_EQ(refResult.cycles, chkResult.cycles);
    EXPECT_EQ(refResult.syncEvents, chkResult.syncEvents);
    EXPECT_EQ(refResult.memAccesses, chkResult.memAccesses);
    for (int p = 0; p < 4; ++p)
        for (int r = 0; r < 32; ++r)
            EXPECT_EQ(ref.processor(p).reg(r), chk.processor(p).reg(r))
                << "cpu" << p << " r" << r;
}

TEST(MachineSnapshot, RestoreContinuesBitIdentically)
{
    auto cfg = machineConfig(4);
    Machine ref(cfg);
    loadLoop(ref, 4);
    auto refResult = ref.run();
    ASSERT_FALSE(refResult.deadlocked);

    auto cfg2 = cfg;
    cfg2.checkpointEveryCycles = 100;
    Machine chk(cfg2);
    loadLoop(chk, 4);
    std::vector<std::vector<std::uint8_t>> snaps;
    chk.setCheckpointSink(
        [&](std::uint64_t, const std::vector<std::uint8_t> &bytes) {
            snaps.push_back(bytes);
            return true;
        });
    chk.run();
    ASSERT_GE(snaps.size(), 2u);

    // Resume from a mid-run snapshot on a completely fresh machine.
    Machine resumed(cfg);
    loadLoop(resumed, 4);
    std::string err;
    ASSERT_TRUE(resumed.restoreState(snaps[1], err)) << err;
    auto resumedResult = resumed.run();

    EXPECT_EQ(resumedResult.cycles, refResult.cycles);
    EXPECT_EQ(resumedResult.syncEvents, refResult.syncEvents);
    EXPECT_EQ(resumedResult.deadlocked, refResult.deadlocked);
    for (int p = 0; p < 4; ++p)
        for (int r = 0; r < 32; ++r)
            EXPECT_EQ(resumed.processor(p).reg(r),
                      ref.processor(p).reg(r))
                << "cpu" << p << " r" << r;
    EXPECT_EQ(resumed.memory().peek(100), ref.memory().peek(100));
    EXPECT_EQ(resumed.checkSafetyProperty(), ref.checkSafetyProperty());
}

TEST(MachineSnapshot, SinkReturningFalseUninstalls)
{
    auto cfg = machineConfig(2);
    cfg.checkpointEveryCycles = 32;
    Machine m(cfg);
    loadLoop(m, 2);
    int calls = 0;
    m.setCheckpointSink(
        [&](std::uint64_t, const std::vector<std::uint8_t> &) {
            ++calls;
            return false;  // simulated persistence failure
        });
    m.run();
    EXPECT_EQ(calls, 1);
}

TEST(MachineSnapshot, FingerprintRejectsForeignConfig)
{
    auto cfg = machineConfig(2);
    Machine m(cfg);
    loadLoop(m, 2);
    auto bytes = m.saveState();

    auto other = cfg;
    other.seed = cfg.seed + 1;
    Machine m2(other);
    loadLoop(m2, 2);
    std::string err;
    EXPECT_FALSE(m2.restoreState(bytes, err));
    EXPECT_NE(err.find("fingerprint"), std::string::npos) << err;

    // Same config, different program: also a fingerprint change.
    Machine m3(cfg);
    auto prog = assembleOrDie("settag 1\nsetmask 3\nhalt\n");
    m3.loadProgram(0, prog);
    m3.loadProgram(1, prog);
    EXPECT_FALSE(m3.restoreState(bytes, err));

    // The checkpoint period itself is deliberately outside the
    // fingerprint: restoring under a different period must work.
    auto differentPeriod = cfg;
    differentPeriod.checkpointEveryCycles = 999;
    Machine m4(differentPeriod);
    loadLoop(m4, 2);
    EXPECT_TRUE(m4.restoreState(bytes, err)) << err;
}

TEST(MachineSnapshot, CorruptBytesNeverRestore)
{
    auto cfg = machineConfig(2);
    Machine m(cfg);
    loadLoop(m, 2);
    auto bytes = m.saveState();

    Machine victim(cfg);
    loadLoop(victim, 2);
    std::string err;
    // Sampled truncations and bit flips across the whole stream.
    for (std::size_t len = 0; len < bytes.size();
         len += 1 + bytes.size() / 97) {
        std::vector<std::uint8_t> cut(bytes.begin(),
                                      bytes.begin() +
                                          static_cast<std::ptrdiff_t>(len));
        EXPECT_FALSE(victim.restoreState(cut, err))
            << "truncation to " << len;
    }
    for (std::size_t bit = 0; bit < bytes.size() * 8;
         bit += 1 + bytes.size() / 13) {
        auto mutated = bytes;
        mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_FALSE(victim.restoreState(mutated, err))
            << "bit flip at " << bit;
    }
}

// --- resume-equivalence sweep ----------------------------------------

/**
 * The acceptance sweep: >= 200 generated scenarios (100 seeds, both
 * the event-driven and the legacy loop), every one with a seeded
 * random fault plan and the watchdog active, each checked through the
 * full A/B/C resume-equivalence oracle at a randomized checkpoint
 * cycle K.
 */
TEST(ResumeEquivalence, SweepGeneratedScenarios)
{
    // The sweep leases its A/B/C machines from a campaign-engine pool
    // and interns the generated programs, so every seed after the
    // first also proves the resume oracle holds on recycled machines.
    exec::MachinePool pool;
    exec::ProgramCache programs;
    int checked = 0;
    int withSnapshot = 0;
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        auto spec = verify::randomSpec(seed);
        spec.faults =
            fault::randomFaultPlan(seed, spec.procs(), spec.groupSizes);
        spec.faultSeed = seed;
        spec.watchdog.enabled = true;
        spec.watchdog.timeoutCycles = 2000;
        spec.watchdog.maxAttempts = 3;
        auto sc = verify::render(spec);
        for (bool ff : {true, false}) {
            auto rep = verify::checkResumeEquivalence(
                sc, seed * 31 + ff, ff, 5'000'000, &pool, &programs);
            EXPECT_TRUE(rep.ok)
                << "seed " << seed << " ff=" << ff << " K="
                << rep.checkpointCycle << ": " << rep.failure;
            ++checked;
            if (rep.snapshotTaken)
                ++withSnapshot;
        }
    }
    EXPECT_GE(checked, 200);
    EXPECT_GT(pool.reuses(), 0u);
    // The randomized K lands before the end of most runs; make sure
    // the sweep is actually exercising restore, not just A-vs-B.
    EXPECT_GT(withSnapshot, checked / 2);
}

} // namespace
} // namespace fb::snapshot
