/**
 * @file
 * End-to-end tests: the paper's workloads compiled by the fuzzy
 * barrier compiler and executed on the simulated multiprocessor.
 */

#include <gtest/gtest.h>

#include "compiler/reorder.hh"
#include "core/experiment.hh"
#include "core/workloads.hh"
#include "ir/interp.hh"

namespace fb::core
{
namespace
{

sim::MachineConfig
configFor(int procs)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = procs;
    cfg.memWords = 1 << 16;
    cfg.maxCycles = 20'000'000;
    return cfg;
}

// ------------------------------------------------------------- LexForward

TEST(LexForward, ReferenceRecurrence)
{
    LexForwardWorkload wl(4, 10);
    auto ref = wl.reference();
    // a[1][1] = a[0][0] + 1*1 = 1; a[1][2] = a[0][1] + 2*1 = 3.
    EXPECT_EQ(ref[wl.addrOf(1, 1)], 1);
    EXPECT_EQ(ref[wl.addrOf(1, 2)], 3);
    // a[2][1] = a[1][0] + 1*2 = 2.
    EXPECT_EQ(ref[wl.addrOf(2, 1)], 2);
    // Row 0 is the initializer.
    EXPECT_EQ(ref[wl.addrOf(0, 3)], 3);
}

TEST(LexForward, ReorderedBodyHasTwoRegions)
{
    LexForwardWorkload wl(4, 10);
    auto body = wl.reorderedBody();
    // Count region runs inside the body: leading region, nb, region,
    // nb — two region runs.
    int runs = 0;
    bool in = false;
    for (const auto &instr : body) {
        if (instr.inRegion && !in)
            ++runs;
        in = instr.inRegion;
    }
    EXPECT_EQ(runs, 2);
    EXPECT_EQ(body.markedIndices().size(), 4u);  // 2 loads + 2 stores
}

TEST(LexForward, SimulatedRunMatchesReferenceReordered)
{
    LexForwardWorkload wl(4, 10);
    auto run = runLexForward(wl, configFor(4), true);
    EXPECT_FALSE(run.result.deadlocked);
    EXPECT_FALSE(run.result.timedOut);
    EXPECT_EQ(run.mismatches, 0u);
    EXPECT_TRUE(run.correct);
}

TEST(LexForward, SimulatedRunMatchesReferenceBaseline)
{
    LexForwardWorkload wl(4, 10);
    auto run = runLexForward(wl, configFor(4), false);
    EXPECT_TRUE(run.correct);
}

TEST(LexForward, FuzzyRegionsReduceBarrierWait)
{
    // With drift injected, the Fig. 10 reordered code (large barrier
    // regions) waits less at barriers than the point-barrier
    // baseline.
    LexForwardWorkload wl(6, 20);
    auto cfg = configFor(6);
    cfg.jitterMean = 3.0;
    cfg.seed = 99;
    auto fuzzy = runLexForward(wl, cfg, true);
    auto point = runLexForward(wl, cfg, false);
    EXPECT_TRUE(fuzzy.correct);
    EXPECT_TRUE(point.correct);
    EXPECT_LT(fuzzy.result.totalBarrierWait(),
              point.result.totalBarrierWait());
}

TEST(LexForward, ScalesAcrossProcessorCounts)
{
    for (int n : {2, 3, 8}) {
        LexForwardWorkload wl(n, 6);
        auto run = runLexForward(wl, configFor(n), true);
        EXPECT_TRUE(run.correct) << "n=" << n;
    }
}

TEST(LexForward, InterpreterAgreesWithReference)
{
    // Sequentially interpreting the unrolled body over all (i, j)
    // reproduces the reference — validating body construction
    // independently of the machine.
    LexForwardWorkload wl(3, 6);
    ir::InterpState st;
    st.bases["a"] = 0;
    st.memory.assign(wl.arrayWords(), 0);
    for (int i = 0; i <= wl.n; ++i)
        st.memory[wl.addrOf(0, i)] = i;

    auto body = wl.naiveBody();
    for (int j = 1; j < wl.jLimit; j += 2) {
        // Inner parallel loop: any order over i is fine sequentially;
        // use ascending (the lexforward dependence reads smaller i).
        for (int i = 1; i <= wl.n; ++i) {
            st.vars["i"] = i;
            st.vars["j"] = j;
            interpret(body, st);
        }
    }
    auto ref = wl.reference();
    std::size_t mismatches = 0;
    for (std::size_t k = 0; k < ref.size(); ++k)
        mismatches += st.memory[k] != ref[k] ? 1 : 0;
    EXPECT_EQ(mismatches, 0u);
}

// ---------------------------------------------------------------- Poisson

TEST(Poisson, BoundaryInit)
{
    PoissonWorkload wl(3);
    sim::MachineConfig cfg = configFor(1);
    sim::Machine m(cfg);
    wl.initBoundary(m.memory(), 40);
    EXPECT_EQ(m.memory().peek(wl.addrOf(0, 0)), 40);
    EXPECT_EQ(m.memory().peek(wl.addrOf(4, 4)), 40);
    EXPECT_EQ(m.memory().peek(wl.addrOf(0, 2)), 40);
    EXPECT_EQ(m.memory().peek(wl.addrOf(2, 0)), 40);
    EXPECT_EQ(m.memory().peek(wl.addrOf(2, 2)), 0);  // interior
}

TEST(Poisson, NaiveBodyShape)
{
    PoissonWorkload wl(2);
    auto body = wl.naiveBody();
    EXPECT_EQ(body.markedIndices().size(), 5u);  // 4 loads + 1 store
    EXPECT_GT(body.size(), 25u);                 // address arithmetic
}

TEST(Poisson, ReorderMatchesPaperShape)
{
    PoissonWorkload wl(2);
    auto result = compiler::threePhaseReorder(wl.naiveBody());
    // Fig. 4(b): non-barrier region is the marked accesses plus the
    // few arithmetic instructions between them.
    EXPECT_LE(result.regions.nonBarrierSize(), 9u);
    EXPECT_GE(result.phase1, 16u);
}

TEST(Poisson, ConvergesTowardBoundary)
{
    PoissonWorkload wl(2);
    auto cfg = configFor(4);
    auto run = runPoisson(wl, cfg, 10 * wl.m, 40, true);
    EXPECT_FALSE(run.result.deadlocked);
    EXPECT_FALSE(run.result.timedOut);
    // Integer Jacobi-style relaxation with truncation converges to
    // within a couple of units of the boundary value.
    EXPECT_LE(run.maxResidual, 2);
    // One barrier episode per outer iteration (plus the startup one).
    EXPECT_GE(run.result.syncEvents,
              static_cast<std::uint64_t>(10 * wl.m));
}

TEST(Poisson, NaiveAndReorderedConvergeEqually)
{
    PoissonWorkload wl(2);
    auto cfg = configFor(4);
    auto a = runPoisson(wl, cfg, 20, 40, false);
    auto b = runPoisson(wl, cfg, 20, 40, true);
    EXPECT_FALSE(a.result.deadlocked);
    EXPECT_FALSE(b.result.deadlocked);
    EXPECT_LE(a.maxResidual, 2);
    EXPECT_LE(b.maxResidual, 2);
}

TEST(Poisson, ReorderedWaitsLessUnderDrift)
{
    PoissonWorkload wl(2);
    auto cfg = configFor(4);
    cfg.jitterMean = 2.0;
    cfg.seed = 1234;
    auto naive = runPoisson(wl, cfg, 20, 40, false);
    auto reordered = runPoisson(wl, cfg, 20, 40, true);
    // The naive body's huge non-barrier region leaves almost nothing
    // to overlap; the reordered body absorbs drift in its regions.
    EXPECT_LE(reordered.result.totalBarrierWait(),
              naive.result.totalBarrierWait());
}

TEST(Poisson, NineProcessorGrid)
{
    PoissonWorkload wl(3);
    auto cfg = configFor(9);
    auto run = runPoisson(wl, cfg, 30, 25, true);
    EXPECT_FALSE(run.result.deadlocked);
    EXPECT_LE(run.maxResidual, 3);
}

} // namespace
} // namespace fb::core
