/**
 * @file
 * Tests for the FAA instruction and the simulated software barriers
 * (shared-variable spin barriers written in the machine's ISA).
 */

#include <gtest/gtest.h>

#include "core/barrierprogs.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"

namespace fb::core
{
namespace
{

isa::Program
assembleOrDie(const std::string &src)
{
    isa::Program p;
    std::string err;
    if (!isa::Assembler::assemble(src, p, err))
        ADD_FAILURE() << "assembly failed: " << err;
    return p;
}

sim::MachineConfig
config(int procs)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = procs;
    cfg.memWords = 1 << 14;
    cfg.maxCycles = 10'000'000;
    return cfg;
}

// ---------------------------------------------------------------------- FAA

TEST(Faa, FetchAndAddSemantics)
{
    sim::Machine m(config(1));
    m.memory().poke(100, 40);
    m.loadProgram(0, assembleOrDie(R"(
        li r2, 5
        faa r1, 100(r0), r2
        halt
    )"));
    m.run();
    EXPECT_EQ(m.processor(0).reg(1), 40);   // returns the old value
    EXPECT_EQ(m.memory().peek(100), 45);    // memory updated
}

TEST(Faa, Disassembles)
{
    auto i = isa::Instruction::faa(1, 2, 8, 3);
    EXPECT_EQ(i.toString(), "faa r1, 8(r2), r3");
}

TEST(Faa, AtomicAcrossProcessors)
{
    // Two processors each add 1 to the same word 100 times; the
    // final value proves no increment was lost.
    const std::string src = R"(
        li r2, 1
        li r3, 100
    loop:
        faa r1, 50(r0), r2
        addi r4, r4, 1
        bne r4, r3, loop
        halt
    )";
    sim::Machine m(config(2));
    m.loadProgram(0, assembleOrDie(src));
    m.loadProgram(1, assembleOrDie(src));
    m.run();
    EXPECT_EQ(m.memory().peek(50), 200);
}

// ------------------------------------------------------ simulated barriers

class SimBarrierTest : public ::testing::TestWithParam<SimBarrierKind>
{
};

TEST_P(SimBarrierTest, SynchronizesAndCompletes)
{
    const int procs = 4;
    const int episodes = 16;
    auto cfg = config(procs);
    sim::Machine m(cfg);
    for (int p = 0; p < procs; ++p)
        m.loadProgram(p, buildBarrierLoop(GetParam(), procs, p, episodes,
                                          5, 8));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked) << r.deadlockInfo;
    EXPECT_FALSE(r.timedOut);
    // Every processor did all its work.
    EXPECT_EQ(m.memory().peek(4), 5 * episodes);
}

TEST_P(SimBarrierTest, SurvivesDrift)
{
    const int procs = 4;
    auto cfg = config(procs);
    cfg.jitterMean = 2.5;
    cfg.seed = 77;
    sim::Machine m(cfg);
    for (int p = 0; p < procs; ++p)
        m.loadProgram(p, buildBarrierLoop(GetParam(), procs, p, 12, 6, 8));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked) << r.deadlockInfo;
    EXPECT_FALSE(r.timedOut);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SimBarrierTest,
    ::testing::Values(SimBarrierKind::Centralized,
                      SimBarrierKind::Dissemination,
                      SimBarrierKind::HardwareFuzzy,
                      SimBarrierKind::HardwarePoint),
    [](const ::testing::TestParamInfo<SimBarrierKind> &info) {
        switch (info.param) {
          case SimBarrierKind::Centralized: return "centralized";
          case SimBarrierKind::Dissemination: return "dissemination";
          case SimBarrierKind::HardwareFuzzy: return "hwfuzzy";
          case SimBarrierKind::HardwarePoint: return "hwpoint";
        }
        return "unknown";
    });

TEST(SimBarriers, HardwareBarrierEpisodeCountsMatch)
{
    const int procs = 3;
    const int episodes = 10;
    sim::Machine m(config(procs));
    for (int p = 0; p < procs; ++p)
        m.loadProgram(p, buildBarrierLoop(SimBarrierKind::HardwareFuzzy,
                                          procs, p, episodes, 4, 6));
    auto r = m.run();
    EXPECT_EQ(r.syncEvents, static_cast<std::uint64_t>(episodes));
    EXPECT_EQ(m.checkSafetyProperty(), "");
}

TEST(SimBarriers, CentralizedGeneratesHotSpot)
{
    const int procs = 8;
    const int episodes = 20;

    auto run = [&](SimBarrierKind kind) {
        sim::Machine m(config(procs));
        for (int p = 0; p < procs; ++p)
            m.loadProgram(p,
                          buildBarrierLoop(kind, procs, p, episodes, 4, 4));
        return m.run();
    };

    auto central = run(SimBarrierKind::Centralized);
    auto dissem = run(SimBarrierKind::Dissemination);
    auto hw = run(SimBarrierKind::HardwareFuzzy);

    // Hardware: the only memory traffic is the final result store.
    EXPECT_EQ(hw.hotSpotAccesses, static_cast<std::uint64_t>(procs));
    // Centralized: a single word absorbs the arrival + spin traffic
    // of all processors — much hotter than any dissemination word.
    EXPECT_GT(central.hotSpotAccesses, dissem.hotSpotAccesses);
    EXPECT_GT(central.hotSpotAccesses, 8u * episodes);
}

TEST(SimBarriers, SoftwareCostExceedsHardware)
{
    // The headline section 1 claim: software barriers spend extra
    // instructions and bus traffic per episode; the hardware
    // mechanism needs none.
    const int procs = 4;
    const int episodes = 30;
    auto cycles = [&](SimBarrierKind kind) {
        sim::Machine m(config(procs));
        for (int p = 0; p < procs; ++p)
            m.loadProgram(p,
                          buildBarrierLoop(kind, procs, p, episodes, 4, 2));
        auto r = m.run();
        EXPECT_FALSE(r.deadlocked);
        return r.cycles;
    };
    EXPECT_LT(cycles(SimBarrierKind::HardwareFuzzy),
              cycles(SimBarrierKind::Centralized));
    EXPECT_LT(cycles(SimBarrierKind::HardwareFuzzy),
              cycles(SimBarrierKind::Dissemination));
}

TEST(SimBarriers, LayoutWordsCoversFlags)
{
    SwBarrierLayout layout;
    EXPECT_GE(layoutWords(layout, 8), static_cast<std::size_t>(
                                          layout.flagsBase + 3 * 8));
    EXPECT_GE(layoutWords(layout, 1),
              static_cast<std::size_t>(layout.flagsBase + 1));
}

} // namespace
} // namespace fb::core
