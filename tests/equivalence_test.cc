/**
 * @file
 * Differential equivalence suite for the event-driven fast-forward
 * core (INTERNALS section 14): every counter in RunResult must be
 * bit-identical between MachineConfig::fastForward = true and the
 * legacy per-cycle loop, across a large population of fuzz-generated
 * programs — including fault-plan and watchdog-recovery runs — and
 * across the machine's timing knobs (pipeline depth, stall model,
 * jitter, multi-issue, sync latency, interrupts).
 */

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/machine_pool.hh"
#include "exec/program_cache.hh"
#include "fault/plan.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "verify/generator.hh"
#include "verify/scenario.hh"

namespace
{

using namespace fb;

/** Machine knobs varied per seed, on top of the scenario itself. */
struct Knobs
{
    int pipelineDepth = 1;
    int issueWidth = 1;
    double jitterMean = 0.0;
    std::uint32_t syncLatency = 0;
    sim::StallModel stall = sim::StallModel::hardware();
};

/** Derive timing knobs from the seed so the population covers the
 * whole matrix without a combinatorial test explosion. */
Knobs
knobsFor(std::uint64_t seed)
{
    Knobs k;
    k.pipelineDepth = 1 + static_cast<int>(seed % 4);         // 1..4
    k.issueWidth = (seed % 3 == 0) ? 4 : 1;
    k.jitterMean = (seed % 5 == 0) ? 1.5 : 0.0;
    k.syncLatency = static_cast<std::uint32_t>((seed / 3) % 4);
    if (seed % 4 == 1)
        k.stall = sim::StallModel::software(20, 20);
    return k;
}

sim::MachineConfig
configFor(const verify::Scenario &sc, const Knobs &k, bool fast_forward)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = sc.procs();
    cfg.memWords = 4096;
    cfg.pipelineDepth = k.pipelineDepth;
    cfg.issueWidth = k.issueWidth;
    cfg.jitterMean = k.jitterMean;
    cfg.syncLatency = k.syncLatency;
    cfg.stall = k.stall;
    cfg.seed = 42;
    cfg.maxCycles = 5'000'000;
    cfg.interruptPeriod = sc.interruptPeriod;
    cfg.isrEntry = sc.isrEntry;
    cfg.fastForward = fast_forward;
    if (sc.hasFaults()) {
        cfg.faultPlan = &sc.faults;
        cfg.watchdog = sc.watchdog;
    }
    return cfg;
}

/** Everything observable about one run, for exact comparison. */
struct Observation
{
    sim::RunResult result;
    std::vector<std::vector<std::int64_t>> regs;
    std::string safety;
    std::size_t syncRecords = 0;
};

Observation
observeRun(const verify::Scenario &sc,
           const std::vector<isa::Program> &programs, sim::Machine &m)
{
    for (int p = 0; p < sc.procs(); ++p)
        m.loadProgram(p, programs[static_cast<std::size_t>(p)]);
    Observation obs;
    obs.result = m.run();
    for (int p = 0; p < sc.procs(); ++p) {
        std::vector<std::int64_t> r;
        for (int i = 0; i < isa::numRegisters; ++i)
            r.push_back(m.processor(p).reg(i));
        obs.regs.push_back(std::move(r));
    }
    obs.safety = m.checkSafetyProperty();
    obs.syncRecords = m.syncRecords().size();
    return obs;
}

/** Pooled when @p pool is set (the generator sweeps recycle machines
 * through the campaign engine's pool), fresh otherwise. */
Observation
runOnce(const verify::Scenario &sc,
        const std::vector<isa::Program> &programs, const Knobs &k,
        bool fast_forward, exec::MachinePool *pool = nullptr)
{
    sim::MachineConfig cfg = configFor(sc, k, fast_forward);
    if (pool) {
        auto lease = pool->acquire(cfg);
        return observeRun(sc, programs, *lease);
    }
    sim::Machine m(cfg);
    return observeRun(sc, programs, m);
}

/** Assert every RunResult field (and final machine state) matches. */
void
expectIdentical(const Observation &ff, const Observation &legacy,
                const std::string &ctx)
{
    const auto &a = ff.result;
    const auto &b = legacy.result;
    EXPECT_EQ(a.cycles, b.cycles) << ctx;
    EXPECT_EQ(a.deadlocked, b.deadlocked) << ctx;
    EXPECT_EQ(a.timedOut, b.timedOut) << ctx;
    EXPECT_EQ(a.deadlockInfo, b.deadlockInfo) << ctx;
    EXPECT_EQ(a.syncEvents, b.syncEvents) << ctx;
    EXPECT_EQ(a.busRequests, b.busRequests) << ctx;
    EXPECT_EQ(a.busQueueDelay, b.busQueueDelay) << ctx;
    EXPECT_EQ(a.memAccesses, b.memAccesses) << ctx;
    EXPECT_EQ(a.hotSpotAccesses, b.hotSpotAccesses) << ctx;
    EXPECT_EQ(a.invalidationsSent, b.invalidationsSent) << ctx;
    EXPECT_EQ(a.invalidationsAvoided, b.invalidationsAvoided) << ctx;
    EXPECT_EQ(a.correctedFaults, b.correctedFaults) << ctx;
    EXPECT_EQ(a.membershipViolation, b.membershipViolation) << ctx;
    EXPECT_EQ(a.deadDeclared, b.deadDeclared) << ctx;

    ASSERT_EQ(a.recoveries.size(), b.recoveries.size()) << ctx;
    for (std::size_t i = 0; i < a.recoveries.size(); ++i) {
        EXPECT_EQ(a.recoveries[i].cycle, b.recoveries[i].cycle) << ctx;
        EXPECT_EQ(a.recoveries[i].deadProc, b.recoveries[i].deadProc)
            << ctx;
        EXPECT_EQ(a.recoveries[i].survivors, b.recoveries[i].survivors)
            << ctx;
    }

    EXPECT_EQ(a.faultStats.pulseDropCycles, b.faultStats.pulseDropCycles)
        << ctx;
    EXPECT_EQ(a.faultStats.bitsFlipped, b.faultStats.bitsFlipped) << ctx;
    EXPECT_EQ(a.faultStats.kills, b.faultStats.kills) << ctx;
    EXPECT_EQ(a.faultStats.freezes, b.faultStats.freezes) << ctx;
    EXPECT_EQ(a.faultStats.forcedInterrupts,
              b.faultStats.forcedInterrupts)
        << ctx;
    EXPECT_EQ(a.watchdogStats.timeouts, b.watchdogStats.timeouts) << ctx;
    EXPECT_EQ(a.watchdogStats.rearms, b.watchdogStats.rearms) << ctx;
    EXPECT_EQ(a.watchdogStats.deadDeclared, b.watchdogStats.deadDeclared)
        << ctx;

    ASSERT_EQ(a.perProcessor.size(), b.perProcessor.size()) << ctx;
    for (std::size_t p = 0; p < a.perProcessor.size(); ++p) {
        const auto &pa = a.perProcessor[p];
        const auto &pb = b.perProcessor[p];
        std::string pctx = ctx + " cpu" + std::to_string(p);
        EXPECT_EQ(pa.instructions, pb.instructions) << pctx;
        EXPECT_EQ(pa.barrierWaitCycles, pb.barrierWaitCycles) << pctx;
        EXPECT_EQ(pa.contextSwitchCycles, pb.contextSwitchCycles)
            << pctx;
        EXPECT_EQ(pa.contextSwitches, pb.contextSwitches) << pctx;
        EXPECT_EQ(pa.interruptsTaken, pb.interruptsTaken) << pctx;
        EXPECT_EQ(pa.barrierEpisodes, pb.barrierEpisodes) << pctx;
        EXPECT_EQ(pa.stalledEpisodes, pb.stalledEpisodes) << pctx;
        EXPECT_EQ(pa.stallCycles, pb.stallCycles) << pctx;
        EXPECT_EQ(pa.cacheHits, pb.cacheHits) << pctx;
        EXPECT_EQ(pa.cacheMisses, pb.cacheMisses) << pctx;
    }

    EXPECT_EQ(ff.regs, legacy.regs) << ctx;
    EXPECT_EQ(ff.safety, legacy.safety) << ctx;
    EXPECT_EQ(ff.syncRecords, legacy.syncRecords) << ctx;
}

/** Assemble the scenario's programs under its baseline encoding,
 * through the shared intern cache when @p cache is set. */
bool
assemblePrograms(const verify::Scenario &sc,
                 std::vector<isa::Program> &out,
                 exec::ProgramCache *cache = nullptr)
{
    for (int p = 0; p < sc.procs(); ++p) {
        const auto &source = sc.sources[static_cast<std::size_t>(p)];
        isa::Program prog;
        if (cache) {
            auto interned = cache->intern(source);
            if (!interned->ok)
                return false;
            prog = sc.encoding == verify::Encoding::Markers
                       ? interned->markers
                       : interned->bits;
        } else {
            std::string err;
            if (!isa::Assembler::assemble(source, prog, err))
                return false;
            if (sc.encoding == verify::Encoding::Markers)
                prog = prog.toMarkerEncoding();
        }
        out.push_back(std::move(prog));
    }
    return true;
}

/** Run one seed's scenario under both cores and compare. */
void
checkSeed(std::uint64_t seed, bool with_faults,
          exec::MachinePool *pool = nullptr,
          exec::ProgramCache *cache = nullptr)
{
    verify::ProgramSpec spec = verify::randomSpec(seed);
    verify::Scenario sc = verify::render(spec);
    if (with_faults) {
        sc.faults = fault::randomFaultPlan(seed * 31 + 7, sc.procs(),
                                           sc.groupSizes);
        sc.faultSeed = seed * 31 + 7;
        sc.watchdog.enabled = true;
        sc.watchdog.timeoutCycles = 2000;
        sc.watchdog.maxAttempts = 3;
    }
    std::vector<isa::Program> programs;
    ASSERT_TRUE(assemblePrograms(sc, programs, cache))
        << "seed " << seed;

    Knobs k = knobsFor(seed);
    std::ostringstream ctx;
    ctx << "seed=" << seed << (with_faults ? " faults" : "")
        << " depth=" << k.pipelineDepth << " width=" << k.issueWidth
        << " jitter=" << k.jitterMean << " synclat=" << k.syncLatency;

    Observation ff = runOnce(sc, programs, k, true, pool);
    Observation legacy = runOnce(sc, programs, k, false, pool);
    expectIdentical(ff, legacy, ctx.str());
}

// 140 fault-free + 80 fault-plan scenarios = 220 fuzz-generated
// programs cross-checked per run, exceeding the 200-program floor.

TEST(Equivalence, FastForwardMatchesLegacyOnFuzzPrograms)
{
    // The sweep runs on pooled machines: every seed after the first
    // exercises Machine::reset() reuse on top of the core comparison.
    exec::MachinePool pool;
    exec::ProgramCache cache;
    for (std::uint64_t seed = 1; seed <= 140; ++seed)
        checkSeed(seed, false, &pool, &cache);
    EXPECT_GT(pool.reuses(), 0u);
}

TEST(Equivalence, FastForwardMatchesLegacyUnderFaults)
{
    exec::MachinePool pool;
    exec::ProgramCache cache;
    for (std::uint64_t seed = 1; seed <= 80; ++seed)
        checkSeed(seed, true, &pool, &cache);
    EXPECT_GT(pool.reuses(), 0u);
}

TEST(Equivalence, CoversWatchdogRecovery)
{
    // The fault population must actually exercise the watchdog +
    // mask-shrink recovery path (fatal faults that fence a processor)
    // or the fault-mode half of the suite proves nothing.
    int recoveries = 0;
    for (std::uint64_t seed = 1; seed <= 80; ++seed) {
        fault::FaultPlan plan = fault::randomFaultPlan(
            seed * 31 + 7, verify::randomSpec(seed).procs(),
            verify::randomSpec(seed).groupSizes);
        if (plan.hasFatal())
            ++recoveries;
    }
    EXPECT_GE(recoveries, 10)
        << "fault-seed population exercises too few fatal plans";
}

TEST(Equivalence, DeadlockDetectionMatches)
{
    // Mismatched tags deadlock (the paper's Fig. 2 scenario); both
    // cores must report it at the identical cycle with the identical
    // diagnosis, even though a fast-forward skip could be tempted to
    // jump past the no-progress cycle.
    verify::Scenario sc;
    sc.groupSizes = {2};
    sc.episodes = 1;
    sc.sources = {
        "settag 1\nsetmask 3\n.region\nnop\n.endregion\nnop\n"
        "halt\n",
        "settag 1\nsetmask 3\n.region\nnop\n.endregion\n"
        "settag 2\n.region\nnop\n.endregion\nnop\nhalt\n",
    };
    std::vector<isa::Program> programs;
    ASSERT_TRUE(assemblePrograms(sc, programs));
    Knobs k;
    Observation ff = runOnce(sc, programs, k, true);
    Observation legacy = runOnce(sc, programs, k, false);
    EXPECT_TRUE(legacy.result.deadlocked);
    expectIdentical(ff, legacy, "fig2-deadlock");
}

TEST(Equivalence, TimeoutMatches)
{
    // A processor spinning forever must hit the maxCycles guard at
    // the same cycle in both cores (the fast-forward clamp must not
    // overshoot the guard).
    verify::Scenario sc;
    sc.groupSizes = {2};
    sc.episodes = 1;
    sc.sources = {
        "settag 1\nsetmask 3\nli r1, 0\nloop:\naddi r1, r1, 1\n"
        "jmp loop\n",
        "settag 1\nsetmask 3\n.region\nnop\n.endregion\nnop\n"
        "halt\n",
    };
    std::vector<isa::Program> programs;
    ASSERT_TRUE(assemblePrograms(sc, programs));
    Knobs k;
    sim::MachineConfig cfg_ff = configFor(sc, k, true);
    sim::MachineConfig cfg_legacy = configFor(sc, k, false);
    cfg_ff.maxCycles = cfg_legacy.maxCycles = 5000;

    sim::Machine m_ff(cfg_ff);
    sim::Machine m_legacy(cfg_legacy);
    for (int p = 0; p < sc.procs(); ++p) {
        m_ff.loadProgram(p, programs[static_cast<std::size_t>(p)]);
        m_legacy.loadProgram(p, programs[static_cast<std::size_t>(p)]);
    }
    auto ra = m_ff.run();
    auto rb = m_legacy.run();
    EXPECT_TRUE(rb.timedOut);
    EXPECT_EQ(ra.timedOut, rb.timedOut);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.cycles, 5000u);
}

} // namespace
