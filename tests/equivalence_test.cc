/**
 * @file
 * Differential equivalence suite for the event-driven fast-forward
 * core (INTERNALS section 14): every counter in RunResult must be
 * bit-identical between MachineConfig::fastForward = true and the
 * legacy per-cycle loop, across a large population of fuzz-generated
 * programs — including fault-plan and watchdog-recovery runs — and
 * across the machine's timing knobs (pipeline depth, stall model,
 * jitter, multi-issue, sync latency, interrupts). The corpus driver
 * (knobs, config assembly, run observer, exact-match oracle) lives in
 * tests/harness.hh, shared with the sharded and campaign suites.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "barrier/topology.hh"
#include "exec/machine_pool.hh"
#include "exec/program_cache.hh"
#include "fault/plan.hh"
#include "harness.hh"
#include "sim/machine.hh"
#include "verify/generator.hh"
#include "verify/scenario.hh"

namespace
{

using namespace fb;
using namespace fb::harness;

/**
 * Run one seed's scenario under the legacy per-cycle interpreter
 * (the oracle), then under every backend combination the simulator
 * ships — fast-forward with the pre-decoded threaded-code dispatch
 * on and off, each at shard counts 1 and 4 — and require all of
 * them bit-identical. Predecoded runs reuse the ProgramCache's
 * interned threaded-code blocks when a cache is supplied, so the
 * sweep also covers Machine::loadProgram's shared-block path.
 */
void
checkSeed(std::uint64_t seed, bool with_faults,
          exec::MachinePool *pool = nullptr,
          exec::ProgramCache *cache = nullptr)
{
    verify::ProgramSpec spec = verify::randomSpec(seed);
    verify::Scenario sc = verify::render(spec);
    if (with_faults)
        attachFaults(sc, corpusFaultSeed(seed));
    std::vector<isa::Program> programs;
    std::vector<std::shared_ptr<const sim::DecodedProgram>> decoded;
    ASSERT_TRUE(assemblePrograms(sc, programs, cache, &decoded))
        << "seed " << seed;

    Knobs k = knobsFor(seed);
    const std::string ctx = describeSeed(seed, with_faults, k);
    Observation legacy = runOnce(
        sc, programs, configFor(sc, k, false, /*predecode=*/false),
        pool);

    struct Variant
    {
        bool predecode;
        int shards;
        const char *name;
    };
    constexpr Variant variants[] = {
        {true, 1, " [predecode shards=1]"},
        {false, 1, " [legacy-dispatch shards=1]"},
        {true, 4, " [predecode shards=4]"},
        {false, 4, " [legacy-dispatch shards=4]"},
    };
    for (const Variant &v : variants) {
        sim::MachineConfig cfg =
            configFor(sc, k, true, v.predecode, v.shards);
        Observation obs = runOnce(sc, programs, cfg, pool,
                                  v.predecode ? &decoded : nullptr);
        expectIdentical(obs, legacy, ctx + v.name);
    }
}

TEST(Equivalence, FastForwardMatchesLegacyOnFuzzPrograms)
{
    // The sweep runs on pooled machines: every seed after the first
    // exercises Machine::reset() reuse on top of the core comparison.
    exec::MachinePool pool;
    exec::ProgramCache cache;
    for (std::uint64_t seed = 1; seed <= kFaultFreeSeeds; ++seed)
        checkSeed(seed, false, &pool, &cache);
    EXPECT_GT(pool.reuses(), 0u);
}

TEST(Equivalence, FastForwardMatchesLegacyUnderFaults)
{
    exec::MachinePool pool;
    exec::ProgramCache cache;
    for (std::uint64_t seed = 1; seed <= kFaultSeeds; ++seed)
        checkSeed(seed, true, &pool, &cache);
    EXPECT_GT(pool.reuses(), 0u);
}

TEST(Equivalence, TopologySweepPreservesResults)
{
    // Hierarchical barrier topologies move delivery *cycles*, never
    // results: over a slice of the fuzz corpus, flat vs tree vs
    // cluster must agree on every per-processor episode count, the
    // differ's timing-invariant register set, and the safety oracle.
    // (Cycle counts legitimately differ — that is the point of the
    // topology — so the full bit-identity oracle does not apply.)
    constexpr int kDiffedRegs[] = {1, 2, 3, 4, 5, 6, 25};
    exec::MachinePool pool;
    exec::ProgramCache cache;
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        verify::ProgramSpec spec = verify::randomSpec(seed);
        verify::Scenario sc = verify::render(spec);
        std::vector<isa::Program> programs;
        ASSERT_TRUE(assemblePrograms(sc, programs, &cache))
            << "seed " << seed;
        Knobs k = knobsFor(seed);
        const sim::MachineConfig cfg = configFor(sc, k, true);
        Observation flat = runOnce(sc, programs, cfg, &pool);
        ASSERT_FALSE(flat.result.deadlocked) << "seed " << seed;
        ASSERT_FALSE(flat.result.timedOut) << "seed " << seed;

        for (const char *name : {"tree:4", "cluster:8", "tree:2:3"}) {
            sim::MachineConfig tcfg = cfg;
            ASSERT_TRUE(barrier::Topology::parse(name, tcfg.topology));
            Observation obs = runOnce(sc, programs, tcfg, &pool);
            const std::string ctx =
                describeSeed(seed, false, k) + " [" + name + "]";
            EXPECT_EQ(obs.result.deadlocked, flat.result.deadlocked)
                << ctx;
            EXPECT_EQ(obs.result.timedOut, flat.result.timedOut) << ctx;
            EXPECT_EQ(obs.safety, flat.safety) << ctx;
            ASSERT_EQ(obs.result.perProcessor.size(),
                      flat.result.perProcessor.size())
                << ctx;
            for (std::size_t p = 0; p < obs.regs.size(); ++p) {
                EXPECT_EQ(obs.result.perProcessor[p].barrierEpisodes,
                          flat.result.perProcessor[p].barrierEpisodes)
                    << ctx << " cpu" << p;
                for (int r : kDiffedRegs)
                    EXPECT_EQ(
                        obs.regs[p][static_cast<std::size_t>(r)],
                        flat.regs[p][static_cast<std::size_t>(r)])
                        << ctx << " cpu" << p << " r" << r;
            }
        }
    }
    EXPECT_GT(pool.reuses(), 0u);
}

TEST(Equivalence, CoversWatchdogRecovery)
{
    // The fault population must actually exercise the watchdog +
    // mask-shrink recovery path (fatal faults that fence a processor)
    // or the fault-mode half of the suite proves nothing.
    int recoveries = 0;
    for (std::uint64_t seed = 1; seed <= kFaultSeeds; ++seed) {
        fault::FaultPlan plan = fault::randomFaultPlan(
            corpusFaultSeed(seed), verify::randomSpec(seed).procs(),
            verify::randomSpec(seed).groupSizes);
        if (plan.hasFatal())
            ++recoveries;
    }
    EXPECT_GE(recoveries, 10)
        << "fault-seed population exercises too few fatal plans";
}

TEST(Equivalence, DeadlockDetectionMatches)
{
    // Mismatched tags deadlock (the paper's Fig. 2 scenario); both
    // cores must report it at the identical cycle with the identical
    // diagnosis, even though a fast-forward skip could be tempted to
    // jump past the no-progress cycle.
    verify::Scenario sc;
    sc.groupSizes = {2};
    sc.episodes = 1;
    sc.sources = {
        "settag 1\nsetmask 3\n.region\nnop\n.endregion\nnop\n"
        "halt\n",
        "settag 1\nsetmask 3\n.region\nnop\n.endregion\n"
        "settag 2\n.region\nnop\n.endregion\nnop\nhalt\n",
    };
    std::vector<isa::Program> programs;
    ASSERT_TRUE(assemblePrograms(sc, programs));
    Knobs k;
    Observation ff = runOnce(sc, programs, k, true);
    Observation legacy = runOnce(sc, programs, k, false);
    EXPECT_TRUE(legacy.result.deadlocked);
    expectIdentical(ff, legacy, "fig2-deadlock");
}

TEST(Equivalence, ProgramCacheSharesDecodedBlocks)
{
    // The intern cache carries one threaded-code block per source ×
    // encoding. Every pooled machine that loads the same interned
    // source must install that exact block (pointer identity — no
    // per-lease re-decode), and a block handed to a *different*
    // program must be rejected by loadProgram's hash check rather
    // than silently executed.
    const std::string src_a =
        "settag 1\nsetmask 3\n.region\nnop\n.endregion\nnop\nhalt\n";
    const std::string src_b =
        "settag 1\nsetmask 3\n.region\nnop\n.endregion\n"
        "addi r1, r1, 7\nhalt\n";

    exec::ProgramCache cache;
    auto interned = cache.intern(src_a);
    ASSERT_TRUE(interned->ok);
    ASSERT_NE(interned->bitsDecoded, nullptr);
    EXPECT_EQ(cache.intern(src_a)->bitsDecoded.get(),
              interned->bitsDecoded.get());

    verify::Scenario sc;
    sc.groupSizes = {2};
    sc.episodes = 1;
    sc.sources = {src_a, src_a};
    std::vector<isa::Program> programs;
    std::vector<std::shared_ptr<const sim::DecodedProgram>> decoded;
    ASSERT_TRUE(assemblePrograms(sc, programs, &cache, &decoded));
    ASSERT_EQ(decoded.size(), 2u);
    EXPECT_EQ(decoded[0].get(), interned->bitsDecoded.get());

    exec::MachinePool pool;
    Knobs k;
    const sim::MachineConfig cfg = configFor(sc, k, true);
    const sim::DecodedProgram *installed[2] = {nullptr, nullptr};
    for (int lease = 0; lease < 2; ++lease) {
        auto m = pool.acquire(cfg);
        for (int p = 0; p < sc.procs(); ++p)
            m->loadProgram(p, programs[static_cast<std::size_t>(p)],
                           decoded[static_cast<std::size_t>(p)]);
        installed[lease] = m->decodedProgram(0).get();
        EXPECT_EQ(installed[lease], interned->bitsDecoded.get());
        EXPECT_FALSE(m->run().deadlocked);
    }
    // Both leases installed the one cached block.
    EXPECT_EQ(installed[0], installed[1]);
    EXPECT_GT(pool.reuses(), 0u);

    // Wrong-program block: src_b assembles to a different program, so
    // src_a's decode must not be accepted for it.
    auto interned_b = cache.intern(src_b);
    ASSERT_TRUE(interned_b->ok);
    sim::Machine victim(cfg);
    EXPECT_DEATH(victim.loadProgram(0, interned_b->bits,
                                    interned->bitsDecoded),
                 "decoded block does not match");
}

TEST(Equivalence, TimeoutMatches)
{
    // A processor spinning forever must hit the maxCycles guard at
    // the same cycle in both cores (the fast-forward clamp must not
    // overshoot the guard).
    verify::Scenario sc;
    sc.groupSizes = {2};
    sc.episodes = 1;
    sc.sources = {
        "settag 1\nsetmask 3\nli r1, 0\nloop:\naddi r1, r1, 1\n"
        "jmp loop\n",
        "settag 1\nsetmask 3\n.region\nnop\n.endregion\nnop\n"
        "halt\n",
    };
    std::vector<isa::Program> programs;
    ASSERT_TRUE(assemblePrograms(sc, programs));
    Knobs k;
    sim::MachineConfig cfg_ff = configFor(sc, k, true);
    sim::MachineConfig cfg_legacy = configFor(sc, k, false);
    cfg_ff.maxCycles = cfg_legacy.maxCycles = 5000;

    sim::Machine m_ff(cfg_ff);
    sim::Machine m_legacy(cfg_legacy);
    for (int p = 0; p < sc.procs(); ++p) {
        m_ff.loadProgram(p, programs[static_cast<std::size_t>(p)]);
        m_legacy.loadProgram(p, programs[static_cast<std::size_t>(p)]);
    }
    auto ra = m_ff.run();
    auto rb = m_legacy.run();
    EXPECT_TRUE(rb.timedOut);
    EXPECT_EQ(ra.timedOut, rb.timedOut);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.cycles, 5000u);
}

} // namespace
