/**
 * @file
 * Unit tests for the three-address intermediate code.
 */

#include <gtest/gtest.h>

#include "ir/block.hh"
#include "ir/builder.hh"
#include "ir/interp.hh"
#include "ir/operand.hh"
#include "ir/tac.hh"

namespace fb::ir
{
namespace
{

// ------------------------------------------------------------------ Operand

TEST(Operand, KindsAndAccessors)
{
    Operand t = Operand::temp(5);
    EXPECT_TRUE(t.isTemp());
    EXPECT_EQ(t.tempId(), 5);
    EXPECT_TRUE(t.isRegisterLike());

    Operand v = Operand::var("i");
    EXPECT_TRUE(v.isVar());
    EXPECT_EQ(v.name(), "i");
    EXPECT_TRUE(v.isRegisterLike());

    Operand c = Operand::constant(-3);
    EXPECT_TRUE(c.isConst());
    EXPECT_EQ(c.value(), -3);
    EXPECT_FALSE(c.isRegisterLike());

    Operand b = Operand::base("P");
    EXPECT_TRUE(b.isBase());
    EXPECT_EQ(b.name(), "P");

    Operand none;
    EXPECT_TRUE(none.isNone());
}

TEST(Operand, Equality)
{
    EXPECT_EQ(Operand::temp(1), Operand::temp(1));
    EXPECT_FALSE(Operand::temp(1) == Operand::temp(2));
    EXPECT_EQ(Operand::var("i"), Operand::var("i"));
    EXPECT_FALSE(Operand::var("i") == Operand::base("i"));
    EXPECT_EQ(Operand::constant(7), Operand::constant(7));
    EXPECT_FALSE(Operand::constant(7) == Operand::constant(8));
}

TEST(Operand, ToString)
{
    EXPECT_EQ(Operand::temp(11).toString(), "T11");
    EXPECT_EQ(Operand::var("j").toString(), "j");
    EXPECT_EQ(Operand::constant(12).toString(), "12");
    EXPECT_EQ(Operand::base("P").toString(), "P");
}

TEST(Operand, OrderingIsStrictWeak)
{
    Operand a = Operand::temp(1);
    Operand b = Operand::var("x");
    EXPECT_TRUE((a < b) != (b < a) || a == b);
    EXPECT_FALSE(a < a);
}

// ----------------------------------------------------------------- TacInstr

TEST(TacInstr, BuildersAndToString)
{
    auto add = TacInstr::arith(TacOp::Add, Operand::temp(3),
                               Operand::temp(1), Operand::temp(2));
    EXPECT_EQ(add.toString(), "T3 = T1 + T2");

    auto copy = TacInstr::copy(Operand::var("i"), Operand::constant(1));
    EXPECT_EQ(copy.toString(), "i = 1");

    auto load = TacInstr::load(Operand::temp(4), Operand::temp(3));
    EXPECT_EQ(load.toString(), "T4 = [T3]");

    auto store = TacInstr::store(Operand::temp(3), Operand::temp(4));
    EXPECT_EQ(store.toString(), "[T3] = T4");
}

TEST(TacInstr, CommentRendered)
{
    auto i = TacInstr::copy(Operand::var("i"), Operand::constant(1));
    i.comment = "init";
    EXPECT_NE(i.toString().find("/* init */"), std::string::npos);
}

TEST(TacInstr, ReadsAndWrites)
{
    auto add = TacInstr::arith(TacOp::Add, Operand::temp(3),
                               Operand::temp(1), Operand::constant(4));
    auto reads = readsOf(add);
    ASSERT_EQ(reads.size(), 1u);  // constants are not register reads
    EXPECT_EQ(reads[0], Operand::temp(1));
    EXPECT_EQ(writeOf(add), Operand::temp(3));

    auto store = TacInstr::store(Operand::temp(1), Operand::temp(2));
    auto sreads = readsOf(store);
    ASSERT_EQ(sreads.size(), 2u);  // address and value
    EXPECT_TRUE(writeOf(store).isNone());

    auto load = TacInstr::load(Operand::temp(5), Operand::temp(1));
    EXPECT_EQ(readsOf(load).size(), 1u);
    EXPECT_EQ(writeOf(load), Operand::temp(5));
}

// -------------------------------------------------------------------- Block

TEST(Block, AppendAndAccess)
{
    Block b;
    EXPECT_TRUE(b.empty());
    auto idx = b.append(TacInstr::copy(Operand::var("i"),
                                       Operand::constant(0)));
    EXPECT_EQ(idx, 0u);
    EXPECT_EQ(b.size(), 1u);
    EXPECT_EQ(b.at(0).op, TacOp::Copy);
}

TEST(Block, MarkedIndices)
{
    Block b;
    b.append(TacInstr::copy(Operand::temp(1), Operand::constant(0)));
    auto ld = TacInstr::load(Operand::temp(2), Operand::temp(1));
    ld.marked = true;
    b.append(ld);
    auto marked = b.markedIndices();
    ASSERT_EQ(marked.size(), 1u);
    EXPECT_EQ(marked[0], 1u);
}

TEST(Block, AnnotatedStringGroupsRegions)
{
    Block b;
    auto r = TacInstr::copy(Operand::temp(1), Operand::constant(0));
    r.inRegion = true;
    b.append(r);
    auto nb = TacInstr::copy(Operand::temp(2), Operand::constant(1));
    nb.marked = true;
    b.append(nb);
    std::string s = b.toAnnotatedString();
    EXPECT_NE(s.find("Barrier:"), std::string::npos);
    EXPECT_NE(s.find("Non-barrier:"), std::string::npos);
    EXPECT_NE(s.find("<marked>"), std::string::npos);
}

// ----------------------------------------------------------------- Builder

TEST(IrBuilder, Addr2DShape)
{
    IrBuilder b;
    Operand addr = b.emitAddr2D("P", Operand::var("i"), Operand::var("j"),
                                12, 4);
    const Block &blk = b.block();
    // Four instructions: mul, add, mul, add.
    ASSERT_EQ(blk.size(), 4u);
    EXPECT_EQ(blk.at(0).op, TacOp::Mul);
    EXPECT_EQ(blk.at(1).op, TacOp::Add);
    EXPECT_EQ(blk.at(2).op, TacOp::Mul);
    EXPECT_EQ(blk.at(3).op, TacOp::Add);
    EXPECT_EQ(blk.at(3).dst, addr);
    EXPECT_NE(blk.at(3).comment.find("address of P[i][j]"),
              std::string::npos);
}

TEST(IrBuilder, LoadStoreCarryArrayAndMark)
{
    IrBuilder b;
    Operand addr = b.newTemp();
    b.emitCopy(addr, Operand::constant(10));
    Operand v = b.emitLoad(addr, "P", true);
    b.emitStore(addr, v, "P", false);
    const Block &blk = b.block();
    EXPECT_EQ(blk.at(1).array, "P");
    EXPECT_TRUE(blk.at(1).marked);
    EXPECT_EQ(blk.at(2).array, "P");
    EXPECT_FALSE(blk.at(2).marked);
}

TEST(IrBuilder, TempIdsIncrease)
{
    IrBuilder b;
    Operand t1 = b.newTemp();
    Operand t2 = b.newTemp();
    EXPECT_NE(t1.tempId(), t2.tempId());
    EXPECT_EQ(b.tempCount(), 2);
}

// ------------------------------------------------------------- Interpreter

TEST(Interp, ArithmeticAndMemory)
{
    IrBuilder b;
    Operand i = Operand::var("i");
    Operand addr = b.emitAddr2D("A", i, Operand::constant(2), 10, 1);
    Operand v = b.emitLoad(addr, "A", false);
    Operand w = b.emitArith(TacOp::Mul, v, Operand::constant(3));
    b.emitStore(addr, w, "A", false);

    InterpState state;
    state.vars["i"] = 1;
    state.bases["A"] = 100;
    state.memory.assign(256, 0);
    state.memory[112] = 7;  // A[1][2] = 100 + 1*10 + 2

    interpret(b.block(), state);
    EXPECT_EQ(state.memory[112], 21);
}

TEST(Interp, VarWrites)
{
    Block b;
    b.append(TacInstr::copy(Operand::var("x"), Operand::constant(4)));
    b.append(TacInstr::arith(TacOp::Add, Operand::var("x"),
                             Operand::var("x"), Operand::constant(1)));
    InterpState state;
    interpret(b, state);
    EXPECT_EQ(state.vars["x"], 5);
}

TEST(Interp, DivTruncates)
{
    Block b;
    b.append(TacInstr::arith(TacOp::Div, Operand::temp(1),
                             Operand::constant(7), Operand::constant(2)));
    InterpState state;
    interpret(b, state);
    EXPECT_EQ(state.temps[1], 3);
}

TEST(Interp, SubAndCopyChain)
{
    Block b;
    b.append(TacInstr::copy(Operand::temp(1), Operand::constant(10)));
    b.append(TacInstr::arith(TacOp::Sub, Operand::temp(2),
                             Operand::temp(1), Operand::constant(4)));
    b.append(TacInstr::copy(Operand::var("out"), Operand::temp(2)));
    InterpState state;
    interpret(b, state);
    EXPECT_EQ(state.vars["out"], 6);
}

} // namespace
} // namespace fb::ir
