/**
 * @file
 * Tests for the fault-injection subsystem: plan serialization and
 * derivation, each fault kind's machine-level effect, the barrier
 * watchdog's straggler/dead distinction, and the epoch/mask-shrink
 * recovery protocol.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "barrier/network.hh"
#include "fault/plan.hh"
#include "fault/watchdog.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"

namespace fb::fault
{
namespace
{

using sim::Machine;
using sim::MachineConfig;

isa::Program
assembleOrDie(const std::string &src)
{
    isa::Program p;
    std::string err;
    if (!isa::Assembler::assemble(src, p, err))
        ADD_FAILURE() << "assembly failed: " << err;
    return p;
}

MachineConfig
config(int procs)
{
    MachineConfig cfg;
    cfg.numProcessors = procs;
    cfg.memWords = 4096;
    cfg.maxCycles = 500'000;
    return cfg;
}

/**
 * A barrier loop: @p iters episodes of @p work non-barrier
 * instructions and @p region barrier-region instructions, group mask
 * @p mask. r3 counts work, r5 counts region iterations.
 */
std::string
loopSource(int iters, int work, int region, std::uint64_t mask,
           bool with_isr = false)
{
    std::ostringstream oss;
    if (with_isr) {
        oss << "jmp main\n";
        oss << "isr:\n";
        oss << "addi r20, r20, 1\n";
        oss << "iret\n";
        oss << "main:\n";
    }
    oss << "settag 1\n";
    oss << "setmask " << mask << "\n";
    oss << "li r1, 0\n";
    oss << "li r2, " << iters << "\n";
    oss << "loop:\n";
    for (int k = 0; k < work; ++k)
        oss << "addi r3, r3, 1\n";
    oss << ".region 1\n";
    for (int k = 0; k < region; ++k)
        oss << "addi r5, r5, 1\n";
    oss << "addi r1, r1, 1\n";
    oss << "bne r1, r2, loop\n";
    oss << ".endregion\n";
    oss << "halt\n";
    return oss.str();
}

// --- FaultPlan -------------------------------------------------------

TEST(FaultPlan, SpecRoundTripsByteExactly)
{
    const std::string spec =
        "drop@100:2:16,fliptag@250:0:3,flipmask@300:1:2,"
        "kill@400:3,freeze@500:1,irqstorm@600:2:8";
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse(spec, plan, err)) << err;
    EXPECT_EQ(plan.events.size(), 6u);
    EXPECT_EQ(plan.toSpec(), spec);

    FaultPlan again;
    ASSERT_TRUE(FaultPlan::parse(plan.toSpec(), again, err)) << err;
    EXPECT_EQ(plan, again);
}

TEST(FaultPlan, ParseRejectsMalformedSpecs)
{
    FaultPlan plan;
    std::string err;
    EXPECT_FALSE(FaultPlan::parse("explode@10:0", plan, err));
    EXPECT_NE(err.find("unknown kind"), std::string::npos);
    EXPECT_FALSE(FaultPlan::parse("kill@10", plan, err));
    EXPECT_FALSE(FaultPlan::parse("kill@-5:0", plan, err));
    EXPECT_FALSE(FaultPlan::parse("drop10:0", plan, err));
}

TEST(FaultPlan, ParseRejectsTrailingAndEmptyFields)
{
    FaultPlan plan;
    std::string err;
    EXPECT_FALSE(FaultPlan::parse("kill@10:0:", plan, err));
    EXPECT_NE(err.find("empty field"), std::string::npos) << err;
    EXPECT_FALSE(FaultPlan::parse("kill@10::0", plan, err));
    EXPECT_NE(err.find("empty field"), std::string::npos) << err;
    EXPECT_FALSE(FaultPlan::parse("drop@10:0:5:9", plan, err));
    EXPECT_NE(err.find("kind@cycle:proc[:arg]"), std::string::npos)
        << err;
    EXPECT_FALSE(FaultPlan::parse("drop@10:0:5x", plan, err));
    EXPECT_NE(err.find("bad argument"), std::string::npos) << err;
    EXPECT_FALSE(FaultPlan::parse("kill@10:0q", plan, err));
    EXPECT_NE(err.find("bad processor"), std::string::npos) << err;
}

TEST(FaultPlan, ParseErrorsArePositional)
{
    FaultPlan plan;
    std::string err;
    EXPECT_FALSE(
        FaultPlan::parse("drop@1:0,fliptag@2:1,kill@zz:1", plan, err));
    EXPECT_NE(err.find("fault spec #3"), std::string::npos) << err;
    EXPECT_NE(err.find("'kill@zz:1'"), std::string::npos) << err;
    EXPECT_NE(err.find("bad cycle"), std::string::npos) << err;
}

TEST(FaultPlan, ParseRejectsAmbiguousDuplicates)
{
    FaultPlan plan;
    std::string err;
    // Same kind, same (cycle, proc), different args: which applies?
    EXPECT_FALSE(
        FaultPlan::parse("drop@10:0:3,drop@10:0:5", plan, err));
    EXPECT_NE(err.find("ambiguous"), std::string::npos) << err;
    // Byte-identical duplicates are equally rejected.
    EXPECT_FALSE(FaultPlan::parse("kill@10:0,kill@10:0", plan, err));
    // Different kinds at the same (cycle, proc) are fine.
    EXPECT_TRUE(FaultPlan::parse("drop@10:0,fliptag@10:0:2", plan, err))
        << err;
    // Same kind at a different cycle or proc is fine.
    EXPECT_TRUE(FaultPlan::parse("drop@10:0:3,drop@11:0:3", plan, err))
        << err;
}

TEST(FaultPlan, ParseChecksProcessorRange)
{
    FaultPlan plan;
    std::string err;
    EXPECT_FALSE(FaultPlan::parse("kill@10:5", 4, plan, err));
    EXPECT_NE(err.find("out of range"), std::string::npos) << err;
    EXPECT_NE(err.find("4 processors"), std::string::npos) << err;
    EXPECT_TRUE(FaultPlan::parse("kill@10:3", 4, plan, err)) << err;
    // A negative processor count disables the check (machine size
    // unknown at parse time).
    EXPECT_TRUE(FaultPlan::parse("kill@10:5", -1, plan, err)) << err;
}

TEST(FaultPlan, FatalClassification)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("freeze@10:0,freeze@20:1:64,kill@30:2",
                                 plan, err))
        << err;
    EXPECT_TRUE(plan.hasFatal());
    // freeze with a finite window is transient; arg 0 is fatal.
    EXPECT_EQ(plan.fatalTargets(), (std::vector<int>{0, 2}));
}

TEST(FaultPlan, RandomPlanIsDeterministic)
{
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        auto a = randomFaultPlan(seed, 8, {8});
        auto b = randomFaultPlan(seed, 8, {8});
        EXPECT_EQ(a, b) << "seed " << seed;
        // Recovery must stay possible: at most one fatal fault.
        EXPECT_LE(a.fatalTargets().size(), 1u) << "seed " << seed;
        for (const auto &ev : a.events) {
            EXPECT_GE(ev.proc, 0);
            EXPECT_LT(ev.proc, 8);
        }
    }
    EXPECT_NE(randomFaultPlan(1, 8, {8}), randomFaultPlan(2, 8, {8}));
}

// --- Transient faults ------------------------------------------------

TEST(FaultTest, DropPulseDelaysButNeverCorrupts)
{
    // cpu0 arrives early and its pulse is hidden while cpu1 is still
    // working; synchronization is delayed, not corrupted.
    auto run = [](const FaultPlan *plan) {
        MachineConfig cfg = config(2);
        cfg.faultPlan = plan;
        Machine m(cfg);
        m.loadProgram(0, assembleOrDie(loopSource(3, 1, 1, 0b11)));
        m.loadProgram(1, assembleOrDie(loopSource(3, 40, 1, 0b11)));
        return std::make_pair(m.run(), m.checkSafetyProperty());
    };

    auto [clean, clean_safety] = run(nullptr);
    ASSERT_FALSE(clean.deadlocked);
    EXPECT_EQ(clean_safety, "");

    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("drop@6:0:80", plan, err)) << err;
    auto [faulty, faulty_safety] = run(&plan);
    EXPECT_FALSE(faulty.deadlocked);
    EXPECT_FALSE(faulty.timedOut);
    EXPECT_EQ(faulty_safety, "");
    EXPECT_GT(faulty.faultStats.pulseDropCycles, 0u);
    EXPECT_EQ(faulty.syncEvents, clean.syncEvents);
    EXPECT_GE(faulty.cycles, clean.cycles);
}

TEST(FaultTest, FlippedBitsAreScrubbedBeforeTheyCanMisSync)
{
    // Tag and mask corruption is corrected by the ECC shadow at the
    // next network evaluation: the run must be indistinguishable from
    // the fault-free one except for the correction counters.
    auto run = [](const FaultPlan *plan) {
        MachineConfig cfg = config(2);
        cfg.faultPlan = plan;
        Machine m(cfg);
        m.loadProgram(0, assembleOrDie(loopSource(4, 3, 1, 0b11)));
        m.loadProgram(1, assembleOrDie(loopSource(4, 5, 2, 0b11)));
        return m.run();
    };

    auto clean = run(nullptr);
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(
        FaultPlan::parse("fliptag@9:0:2,flipmask@13:1:0", plan, err))
        << err;
    auto faulty = run(&plan);

    EXPECT_FALSE(faulty.deadlocked);
    EXPECT_EQ(faulty.faultStats.bitsFlipped, 2u);
    EXPECT_GT(faulty.correctedFaults, 0u);
    EXPECT_EQ(faulty.syncEvents, clean.syncEvents);
    EXPECT_EQ(faulty.cycles, clean.cycles);
}

TEST(FaultTest, IrqStormForcesInterrupts)
{
    MachineConfig cfg = config(2);
    cfg.isrEntry = 1;
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("irqstorm@10:1:12", plan, err)) << err;
    cfg.faultPlan = &plan;
    Machine m(cfg);
    m.loadProgram(0, assembleOrDie(loopSource(3, 2, 1, 0b11, true)));
    m.loadProgram(1, assembleOrDie(loopSource(3, 2, 1, 0b11, true)));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.faultStats.forcedInterrupts, 0u);
    EXPECT_GT(r.perProcessor[1].interruptsTaken, 0u);
    EXPECT_EQ(m.checkSafetyProperty(), "");
}

TEST(FaultTest, EmptyPlanIsByteIdenticalToNoPlan)
{
    // The hook contract: an empty plan builds no injector, so the run
    // loop is exactly the pre-fault simulator.
    auto run = [](const FaultPlan *plan) {
        MachineConfig cfg = config(3);
        cfg.faultPlan = plan;
        Machine m(cfg);
        for (int p = 0; p < 3; ++p)
            m.loadProgram(
                p, assembleOrDie(loopSource(5, 2 + p, 1, 0b111)));
        return m.run();
    };
    FaultPlan empty;
    auto a = run(nullptr);
    auto b = run(&empty);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.syncEvents, b.syncEvents);
}

// --- Fatal faults, watchdog, recovery --------------------------------

TEST(FaultTest, KillOneOfEightShrinksMasksAndCompletes)
{
    // The acceptance scenario: kill one processor mid-run; the
    // watchdog sees a halted blocker, survivors drop its mask bit,
    // bump their epoch, and run every remaining episode.
    const int procs = 8;
    const int episodes = 6;
    MachineConfig cfg = config(procs);
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("kill@40:3", plan, err)) << err;
    cfg.faultPlan = &plan;
    cfg.watchdog.enabled = true;
    cfg.watchdog.timeoutCycles = 200;
    cfg.watchdog.maxAttempts = 3;
    Machine m(cfg);
    for (int p = 0; p < procs; ++p)
        m.loadProgram(p, assembleOrDie(
                             loopSource(episodes, 2 + p, 1, 0xff)));
    auto r = m.run();

    EXPECT_FALSE(r.deadlocked) << r.deadlockInfo;
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.deadDeclared, (std::vector<int>{3}));
    EXPECT_EQ(r.faultStats.kills, 1u);
    ASSERT_EQ(r.recoveries.size(), 1u);
    EXPECT_EQ(r.recoveries[0].deadProc, 3);
    EXPECT_EQ(r.recoveries[0].survivors.size(), 7u);
    EXPECT_EQ(r.membershipViolation, "");
    EXPECT_EQ(m.checkSafetyProperty(), "");
    for (int p = 0; p < procs; ++p) {
        if (p == 3)
            continue;
        EXPECT_EQ(r.perProcessor[static_cast<std::size_t>(p)]
                      .barrierEpisodes,
                  static_cast<std::uint64_t>(episodes))
            << "survivor cpu" << p;
    }
    EXPECT_LT(r.perProcessor[3].barrierEpisodes,
              static_cast<std::uint64_t>(episodes));
}

TEST(FaultTest, ForeverFreezeIsDeclaredDeadViaBackoff)
{
    // A frozen processor still looks alive, so the watchdog cannot
    // shortcut like it does for a halted one: it must re-arm with
    // backoff and only then declare death.
    MachineConfig cfg = config(3);
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("freeze@40:1", plan, err)) << err;
    cfg.faultPlan = &plan;
    cfg.watchdog.enabled = true;
    cfg.watchdog.timeoutCycles = 100;
    cfg.watchdog.maxAttempts = 2;
    Machine m(cfg);
    for (int p = 0; p < 3; ++p)
        m.loadProgram(p, assembleOrDie(loopSource(6, 8, 2, 0b111)));
    auto r = m.run();

    EXPECT_FALSE(r.deadlocked) << r.deadlockInfo;
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.deadDeclared, (std::vector<int>{1}));
    EXPECT_GE(r.watchdogStats.timeouts, 2u);
    EXPECT_GE(r.watchdogStats.rearms, 1u);
    EXPECT_EQ(r.membershipViolation, "");
    EXPECT_EQ(r.perProcessor[0].barrierEpisodes, 6u);
    EXPECT_EQ(r.perProcessor[2].barrierEpisodes, 6u);
}

TEST(FaultTest, SlowStragglerIsNotDeclaredDead)
{
    // The false-positive guard: a live straggler ~6x slower than the
    // watchdog timeout must be waited out by the backoff schedule,
    // never fenced. Death would need T*(2^maxAttempts - 1) = 1550
    // continuously stuck cycles; the straggler arrives by ~330.
    MachineConfig cfg = config(2);
    FaultPlan plan;  // no faults: the straggler is just slow code
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("drop@5:0:1", plan, err)) << err;
    cfg.faultPlan = &plan;
    cfg.watchdog.enabled = true;
    cfg.watchdog.timeoutCycles = 50;
    cfg.watchdog.maxAttempts = 5;
    Machine m(cfg);
    m.loadProgram(0, assembleOrDie(loopSource(3, 1, 1, 0b11)));
    m.loadProgram(1, assembleOrDie(loopSource(3, 300, 1, 0b11)));
    auto r = m.run();

    EXPECT_FALSE(r.deadlocked) << r.deadlockInfo;
    EXPECT_FALSE(r.timedOut);
    EXPECT_TRUE(r.deadDeclared.empty());
    EXPECT_TRUE(r.recoveries.empty());
    EXPECT_GT(r.watchdogStats.timeouts, 0u);
    EXPECT_EQ(r.watchdogStats.deadDeclared, 0u);
    EXPECT_EQ(r.syncEvents, 3u);
    EXPECT_EQ(m.checkSafetyProperty(), "");
}

TEST(FaultTest, FatalFreezeWithoutWatchdogIsAReportedDeadlock)
{
    // Without a watchdog a forever-frozen blocker wedges its group;
    // the machine must diagnose that as a deadlock with a full report,
    // not spin to the cycle guard.
    MachineConfig cfg = config(2);
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("freeze@20:1", plan, err)) << err;
    cfg.faultPlan = &plan;
    Machine m(cfg);
    m.loadProgram(0, assembleOrDie(loopSource(5, 6, 1, 0b11)));
    m.loadProgram(1, assembleOrDie(loopSource(5, 6, 1, 0b11)));
    auto r = m.run();
    EXPECT_TRUE(r.deadlocked);
    EXPECT_NE(r.deadlockInfo, "");
}

TEST(FaultTest, DeadlockReportNamesStuckProcessorsAndBlockers)
{
    // cpu1 halts without ever joining the group; cpu0 waits forever.
    // The DeadlockReport must name the stuck processor, its FSM
    // state, its tag, and the unsatisfied mask bits.
    MachineConfig cfg = config(2);
    Machine m(cfg);
    m.loadProgram(0, assembleOrDie(loopSource(1, 1, 1, 0b11)));
    m.loadProgram(1, assembleOrDie("halt\n"));
    auto r = m.run();
    EXPECT_TRUE(r.deadlocked);
    EXPECT_NE(r.deadlockInfo.find("barrier deadlock"),
              std::string::npos)
        << r.deadlockInfo;
    EXPECT_NE(r.deadlockInfo.find("cpu0"), std::string::npos);
    EXPECT_NE(r.deadlockInfo.find("tag=1"), std::string::npos);
    EXPECT_NE(r.deadlockInfo.find("waiting-on={cpu1}"),
              std::string::npos)
        << r.deadlockInfo;
}

// --- Watchdog boundary behaviour -------------------------------------

/** A 2-proc network where cpu0 waits and cpu1 is the blocker. */
barrier::BarrierNetwork
stuckPair()
{
    barrier::BarrierNetwork net(2);
    for (int p = 0; p < 2; ++p) {
        net.unit(p).setTag(1);
        net.unit(p).setMask(0b11);
    }
    net.unit(0).arrive();
    net.evaluate(0);
    return net;
}

WatchdogConfig
wdConfig(std::uint64_t timeout, int attempts)
{
    WatchdogConfig wd;
    wd.enabled = true;
    wd.timeoutCycles = timeout;
    wd.maxAttempts = attempts;
    return wd;
}

TEST(Watchdog, FiresAtExactlyTheDeadlineCycle)
{
    auto net = stuckPair();
    BarrierWatchdog wd(wdConfig(10, 3), 2);
    const std::vector<bool> halted{false, false};

    // First tick arms the timer: deadline = now + T = 10.
    EXPECT_TRUE(wd.tick(net, halted, 0).empty());
    EXPECT_TRUE(wd.armed());
    EXPECT_EQ(wd.nextDeadline(), 10u);

    // Every cycle strictly before the deadline is quiet.
    for (std::uint64_t now = 1; now < 10; ++now) {
        EXPECT_TRUE(wd.tick(net, halted, now).empty());
        EXPECT_EQ(wd.stats().timeouts, 0u) << "early fire at " << now;
    }

    // At exactly the deadline cycle the timeout fires and the live
    // blocker earns a backoff re-arm, not death.
    EXPECT_TRUE(wd.tick(net, halted, 10).empty());
    EXPECT_EQ(wd.stats().timeouts, 1u);
    EXPECT_EQ(wd.stats().rearms, 1u);
    EXPECT_EQ(wd.stats().deadDeclared, 0u);
    // Re-armed window doubles: deadline = 10 + (T << 1) = 30.
    EXPECT_EQ(wd.nextDeadline(), 30u);
}

TEST(Watchdog, BackoffSaturatesIntoDeathDeclaration)
{
    auto net = stuckPair();
    BarrierWatchdog wd(wdConfig(10, 3), 2);
    const std::vector<bool> halted{false, false};

    EXPECT_TRUE(wd.tick(net, halted, 0).empty());  // arm, deadline 10
    EXPECT_TRUE(wd.tick(net, halted, 10).empty());  // attempt 1 -> 30
    EXPECT_EQ(wd.nextDeadline(), 30u);
    EXPECT_TRUE(wd.tick(net, halted, 30).empty());  // attempt 2 -> 70
    EXPECT_EQ(wd.nextDeadline(), 70u);
    EXPECT_EQ(wd.stats().rearms, 2u);

    // Third expiry exhausts maxAttempts: the blocker is declared dead
    // and the timer disarms.
    EXPECT_EQ(wd.tick(net, halted, 70), (std::vector<int>{1}));
    EXPECT_EQ(wd.stats().timeouts, 3u);
    EXPECT_EQ(wd.stats().deadDeclared, 1u);
    EXPECT_FALSE(wd.armed());
}

TEST(Watchdog, HaltedBlockerSkipsBackoffEntirely)
{
    auto net = stuckPair();
    BarrierWatchdog wd(wdConfig(10, 3), 2);
    const std::vector<bool> halted{false, true};

    EXPECT_TRUE(wd.tick(net, halted, 0).empty());
    // At the very first deadline the fail-stopped blocker is declared
    // dead — no re-arm attempts are burned on a provably dead peer.
    EXPECT_EQ(wd.tick(net, halted, 10), (std::vector<int>{1}));
    EXPECT_EQ(wd.stats().rearms, 0u);
    EXPECT_FALSE(wd.armed());
}

TEST(Watchdog, SkippingStraightToTheDeadlineIsEquivalent)
{
    // The fast-forward core never calls tick() for the quiet cycles
    // between deadlines; jumping from the arming tick directly to the
    // deadline must produce the same verdicts as per-cycle ticking.
    const std::vector<bool> halted{false, false};

    auto perCycle = stuckPair();
    BarrierWatchdog a(wdConfig(10, 2), 2);
    for (std::uint64_t now = 0; now < 10; ++now)
        EXPECT_TRUE(a.tick(perCycle, halted, now).empty());
    EXPECT_TRUE(a.tick(perCycle, halted, 10).empty());

    auto skipping = stuckPair();
    BarrierWatchdog b(wdConfig(10, 2), 2);
    EXPECT_TRUE(b.tick(skipping, halted, 0).empty());  // arm
    EXPECT_TRUE(b.tick(skipping, halted, 10).empty()); // jump to deadline

    EXPECT_EQ(a.stats().timeouts, b.stats().timeouts);
    EXPECT_EQ(a.stats().rearms, b.stats().rearms);
    EXPECT_EQ(a.nextDeadline(), b.nextDeadline());

    // And both declare death at the (identical) saturated deadline.
    EXPECT_EQ(a.tick(perCycle, halted, a.nextDeadline()),
              (std::vector<int>{1}));
    EXPECT_EQ(b.tick(skipping, halted, b.nextDeadline()),
              (std::vector<int>{1}));
}

TEST(Watchdog, DisarmsWhenTheGroupUnsticks)
{
    auto net = stuckPair();
    BarrierWatchdog wd(wdConfig(10, 3), 2);
    const std::vector<bool> halted{false, false};
    EXPECT_TRUE(wd.tick(net, halted, 0).empty());
    EXPECT_TRUE(wd.armed());

    // The blocker arrives; the AND satisfies and sync delivers.
    net.unit(1).arrive();
    net.evaluate(5);
    EXPECT_TRUE(wd.tick(net, halted, 5).empty());
    EXPECT_FALSE(wd.armed());
    EXPECT_EQ(wd.stats().timeouts, 0u);
}

TEST(FaultTest, WatchdogRecoveryIdenticalUnderFastForward)
{
    // The fast-forward core skips to nextDeadline() instead of
    // ticking the watchdog every cycle; a forever-frozen blocker that
    // dies via backoff saturation must produce bit-identical results
    // under both loops.
    sim::RunResult results[2];
    std::int64_t regs[2][3][32];
    for (int ff = 0; ff < 2; ++ff) {
        MachineConfig cfg = config(3);
        cfg.fastForward = ff == 1;
        FaultPlan plan;
        std::string err;
        ASSERT_TRUE(FaultPlan::parse("freeze@40:1", plan, err)) << err;
        cfg.faultPlan = &plan;
        cfg.watchdog.enabled = true;
        cfg.watchdog.timeoutCycles = 100;
        cfg.watchdog.maxAttempts = 3;
        Machine m(cfg);
        for (int p = 0; p < 3; ++p)
            m.loadProgram(p, assembleOrDie(loopSource(6, 8, 2, 0b111)));
        results[ff] = m.run();
        for (int p = 0; p < 3; ++p)
            for (int r = 0; r < 32; ++r)
                regs[ff][p][r] = m.processor(p).reg(r);
    }
    EXPECT_EQ(results[0].cycles, results[1].cycles);
    EXPECT_EQ(results[0].deadDeclared, results[1].deadDeclared);
    EXPECT_EQ(results[0].watchdogStats.timeouts,
              results[1].watchdogStats.timeouts);
    EXPECT_EQ(results[0].watchdogStats.rearms,
              results[1].watchdogStats.rearms);
    EXPECT_EQ(results[0].watchdogStats.deadDeclared,
              results[1].watchdogStats.deadDeclared);
    EXPECT_EQ(results[0].recoveries.size(), results[1].recoveries.size());
    for (int p = 0; p < 3; ++p)
        for (int r = 0; r < 32; ++r)
            EXPECT_EQ(regs[0][p][r], regs[1][p][r])
                << "cpu" << p << " r" << r;
}

} // namespace
} // namespace fb::fault
