/**
 * @file
 * Tests for the fault-injection subsystem: plan serialization and
 * derivation, each fault kind's machine-level effect, the barrier
 * watchdog's straggler/dead distinction, and the epoch/mask-shrink
 * recovery protocol.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "fault/plan.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"

namespace fb::fault
{
namespace
{

using sim::Machine;
using sim::MachineConfig;

isa::Program
assembleOrDie(const std::string &src)
{
    isa::Program p;
    std::string err;
    if (!isa::Assembler::assemble(src, p, err))
        ADD_FAILURE() << "assembly failed: " << err;
    return p;
}

MachineConfig
config(int procs)
{
    MachineConfig cfg;
    cfg.numProcessors = procs;
    cfg.memWords = 4096;
    cfg.maxCycles = 500'000;
    return cfg;
}

/**
 * A barrier loop: @p iters episodes of @p work non-barrier
 * instructions and @p region barrier-region instructions, group mask
 * @p mask. r3 counts work, r5 counts region iterations.
 */
std::string
loopSource(int iters, int work, int region, std::uint64_t mask,
           bool with_isr = false)
{
    std::ostringstream oss;
    if (with_isr) {
        oss << "jmp main\n";
        oss << "isr:\n";
        oss << "addi r20, r20, 1\n";
        oss << "iret\n";
        oss << "main:\n";
    }
    oss << "settag 1\n";
    oss << "setmask " << mask << "\n";
    oss << "li r1, 0\n";
    oss << "li r2, " << iters << "\n";
    oss << "loop:\n";
    for (int k = 0; k < work; ++k)
        oss << "addi r3, r3, 1\n";
    oss << ".region 1\n";
    for (int k = 0; k < region; ++k)
        oss << "addi r5, r5, 1\n";
    oss << "addi r1, r1, 1\n";
    oss << "bne r1, r2, loop\n";
    oss << ".endregion\n";
    oss << "halt\n";
    return oss.str();
}

// --- FaultPlan -------------------------------------------------------

TEST(FaultPlan, SpecRoundTripsByteExactly)
{
    const std::string spec =
        "drop@100:2:16,fliptag@250:0:3,flipmask@300:1:2,"
        "kill@400:3,freeze@500:1,irqstorm@600:2:8";
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse(spec, plan, err)) << err;
    EXPECT_EQ(plan.events.size(), 6u);
    EXPECT_EQ(plan.toSpec(), spec);

    FaultPlan again;
    ASSERT_TRUE(FaultPlan::parse(plan.toSpec(), again, err)) << err;
    EXPECT_EQ(plan, again);
}

TEST(FaultPlan, ParseRejectsMalformedSpecs)
{
    FaultPlan plan;
    std::string err;
    EXPECT_FALSE(FaultPlan::parse("explode@10:0", plan, err));
    EXPECT_NE(err.find("unknown kind"), std::string::npos);
    EXPECT_FALSE(FaultPlan::parse("kill@10", plan, err));
    EXPECT_FALSE(FaultPlan::parse("kill@-5:0", plan, err));
    EXPECT_FALSE(FaultPlan::parse("drop10:0", plan, err));
}

TEST(FaultPlan, FatalClassification)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("freeze@10:0,freeze@20:1:64,kill@30:2",
                                 plan, err))
        << err;
    EXPECT_TRUE(plan.hasFatal());
    // freeze with a finite window is transient; arg 0 is fatal.
    EXPECT_EQ(plan.fatalTargets(), (std::vector<int>{0, 2}));
}

TEST(FaultPlan, RandomPlanIsDeterministic)
{
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        auto a = randomFaultPlan(seed, 8, {8});
        auto b = randomFaultPlan(seed, 8, {8});
        EXPECT_EQ(a, b) << "seed " << seed;
        // Recovery must stay possible: at most one fatal fault.
        EXPECT_LE(a.fatalTargets().size(), 1u) << "seed " << seed;
        for (const auto &ev : a.events) {
            EXPECT_GE(ev.proc, 0);
            EXPECT_LT(ev.proc, 8);
        }
    }
    EXPECT_NE(randomFaultPlan(1, 8, {8}), randomFaultPlan(2, 8, {8}));
}

// --- Transient faults ------------------------------------------------

TEST(FaultTest, DropPulseDelaysButNeverCorrupts)
{
    // cpu0 arrives early and its pulse is hidden while cpu1 is still
    // working; synchronization is delayed, not corrupted.
    auto run = [](const FaultPlan *plan) {
        MachineConfig cfg = config(2);
        cfg.faultPlan = plan;
        Machine m(cfg);
        m.loadProgram(0, assembleOrDie(loopSource(3, 1, 1, 0b11)));
        m.loadProgram(1, assembleOrDie(loopSource(3, 40, 1, 0b11)));
        return std::make_pair(m.run(), m.checkSafetyProperty());
    };

    auto [clean, clean_safety] = run(nullptr);
    ASSERT_FALSE(clean.deadlocked);
    EXPECT_EQ(clean_safety, "");

    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("drop@6:0:80", plan, err)) << err;
    auto [faulty, faulty_safety] = run(&plan);
    EXPECT_FALSE(faulty.deadlocked);
    EXPECT_FALSE(faulty.timedOut);
    EXPECT_EQ(faulty_safety, "");
    EXPECT_GT(faulty.faultStats.pulseDropCycles, 0u);
    EXPECT_EQ(faulty.syncEvents, clean.syncEvents);
    EXPECT_GE(faulty.cycles, clean.cycles);
}

TEST(FaultTest, FlippedBitsAreScrubbedBeforeTheyCanMisSync)
{
    // Tag and mask corruption is corrected by the ECC shadow at the
    // next network evaluation: the run must be indistinguishable from
    // the fault-free one except for the correction counters.
    auto run = [](const FaultPlan *plan) {
        MachineConfig cfg = config(2);
        cfg.faultPlan = plan;
        Machine m(cfg);
        m.loadProgram(0, assembleOrDie(loopSource(4, 3, 1, 0b11)));
        m.loadProgram(1, assembleOrDie(loopSource(4, 5, 2, 0b11)));
        return m.run();
    };

    auto clean = run(nullptr);
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(
        FaultPlan::parse("fliptag@9:0:2,flipmask@13:1:0", plan, err))
        << err;
    auto faulty = run(&plan);

    EXPECT_FALSE(faulty.deadlocked);
    EXPECT_EQ(faulty.faultStats.bitsFlipped, 2u);
    EXPECT_GT(faulty.correctedFaults, 0u);
    EXPECT_EQ(faulty.syncEvents, clean.syncEvents);
    EXPECT_EQ(faulty.cycles, clean.cycles);
}

TEST(FaultTest, IrqStormForcesInterrupts)
{
    MachineConfig cfg = config(2);
    cfg.isrEntry = 1;
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("irqstorm@10:1:12", plan, err)) << err;
    cfg.faultPlan = &plan;
    Machine m(cfg);
    m.loadProgram(0, assembleOrDie(loopSource(3, 2, 1, 0b11, true)));
    m.loadProgram(1, assembleOrDie(loopSource(3, 2, 1, 0b11, true)));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.faultStats.forcedInterrupts, 0u);
    EXPECT_GT(r.perProcessor[1].interruptsTaken, 0u);
    EXPECT_EQ(m.checkSafetyProperty(), "");
}

TEST(FaultTest, EmptyPlanIsByteIdenticalToNoPlan)
{
    // The hook contract: an empty plan builds no injector, so the run
    // loop is exactly the pre-fault simulator.
    auto run = [](const FaultPlan *plan) {
        MachineConfig cfg = config(3);
        cfg.faultPlan = plan;
        Machine m(cfg);
        for (int p = 0; p < 3; ++p)
            m.loadProgram(
                p, assembleOrDie(loopSource(5, 2 + p, 1, 0b111)));
        return m.run();
    };
    FaultPlan empty;
    auto a = run(nullptr);
    auto b = run(&empty);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.syncEvents, b.syncEvents);
}

// --- Fatal faults, watchdog, recovery --------------------------------

TEST(FaultTest, KillOneOfEightShrinksMasksAndCompletes)
{
    // The acceptance scenario: kill one processor mid-run; the
    // watchdog sees a halted blocker, survivors drop its mask bit,
    // bump their epoch, and run every remaining episode.
    const int procs = 8;
    const int episodes = 6;
    MachineConfig cfg = config(procs);
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("kill@40:3", plan, err)) << err;
    cfg.faultPlan = &plan;
    cfg.watchdog.enabled = true;
    cfg.watchdog.timeoutCycles = 200;
    cfg.watchdog.maxAttempts = 3;
    Machine m(cfg);
    for (int p = 0; p < procs; ++p)
        m.loadProgram(p, assembleOrDie(
                             loopSource(episodes, 2 + p, 1, 0xff)));
    auto r = m.run();

    EXPECT_FALSE(r.deadlocked) << r.deadlockInfo;
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.deadDeclared, (std::vector<int>{3}));
    EXPECT_EQ(r.faultStats.kills, 1u);
    ASSERT_EQ(r.recoveries.size(), 1u);
    EXPECT_EQ(r.recoveries[0].deadProc, 3);
    EXPECT_EQ(r.recoveries[0].survivors.size(), 7u);
    EXPECT_EQ(r.membershipViolation, "");
    EXPECT_EQ(m.checkSafetyProperty(), "");
    for (int p = 0; p < procs; ++p) {
        if (p == 3)
            continue;
        EXPECT_EQ(r.perProcessor[static_cast<std::size_t>(p)]
                      .barrierEpisodes,
                  static_cast<std::uint64_t>(episodes))
            << "survivor cpu" << p;
    }
    EXPECT_LT(r.perProcessor[3].barrierEpisodes,
              static_cast<std::uint64_t>(episodes));
}

TEST(FaultTest, ForeverFreezeIsDeclaredDeadViaBackoff)
{
    // A frozen processor still looks alive, so the watchdog cannot
    // shortcut like it does for a halted one: it must re-arm with
    // backoff and only then declare death.
    MachineConfig cfg = config(3);
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("freeze@40:1", plan, err)) << err;
    cfg.faultPlan = &plan;
    cfg.watchdog.enabled = true;
    cfg.watchdog.timeoutCycles = 100;
    cfg.watchdog.maxAttempts = 2;
    Machine m(cfg);
    for (int p = 0; p < 3; ++p)
        m.loadProgram(p, assembleOrDie(loopSource(6, 8, 2, 0b111)));
    auto r = m.run();

    EXPECT_FALSE(r.deadlocked) << r.deadlockInfo;
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.deadDeclared, (std::vector<int>{1}));
    EXPECT_GE(r.watchdogStats.timeouts, 2u);
    EXPECT_GE(r.watchdogStats.rearms, 1u);
    EXPECT_EQ(r.membershipViolation, "");
    EXPECT_EQ(r.perProcessor[0].barrierEpisodes, 6u);
    EXPECT_EQ(r.perProcessor[2].barrierEpisodes, 6u);
}

TEST(FaultTest, SlowStragglerIsNotDeclaredDead)
{
    // The false-positive guard: a live straggler ~6x slower than the
    // watchdog timeout must be waited out by the backoff schedule,
    // never fenced. Death would need T*(2^maxAttempts - 1) = 1550
    // continuously stuck cycles; the straggler arrives by ~330.
    MachineConfig cfg = config(2);
    FaultPlan plan;  // no faults: the straggler is just slow code
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("drop@5:0:1", plan, err)) << err;
    cfg.faultPlan = &plan;
    cfg.watchdog.enabled = true;
    cfg.watchdog.timeoutCycles = 50;
    cfg.watchdog.maxAttempts = 5;
    Machine m(cfg);
    m.loadProgram(0, assembleOrDie(loopSource(3, 1, 1, 0b11)));
    m.loadProgram(1, assembleOrDie(loopSource(3, 300, 1, 0b11)));
    auto r = m.run();

    EXPECT_FALSE(r.deadlocked) << r.deadlockInfo;
    EXPECT_FALSE(r.timedOut);
    EXPECT_TRUE(r.deadDeclared.empty());
    EXPECT_TRUE(r.recoveries.empty());
    EXPECT_GT(r.watchdogStats.timeouts, 0u);
    EXPECT_EQ(r.watchdogStats.deadDeclared, 0u);
    EXPECT_EQ(r.syncEvents, 3u);
    EXPECT_EQ(m.checkSafetyProperty(), "");
}

TEST(FaultTest, FatalFreezeWithoutWatchdogIsAReportedDeadlock)
{
    // Without a watchdog a forever-frozen blocker wedges its group;
    // the machine must diagnose that as a deadlock with a full report,
    // not spin to the cycle guard.
    MachineConfig cfg = config(2);
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("freeze@20:1", plan, err)) << err;
    cfg.faultPlan = &plan;
    Machine m(cfg);
    m.loadProgram(0, assembleOrDie(loopSource(5, 6, 1, 0b11)));
    m.loadProgram(1, assembleOrDie(loopSource(5, 6, 1, 0b11)));
    auto r = m.run();
    EXPECT_TRUE(r.deadlocked);
    EXPECT_NE(r.deadlockInfo, "");
}

TEST(FaultTest, DeadlockReportNamesStuckProcessorsAndBlockers)
{
    // cpu1 halts without ever joining the group; cpu0 waits forever.
    // The DeadlockReport must name the stuck processor, its FSM
    // state, its tag, and the unsatisfied mask bits.
    MachineConfig cfg = config(2);
    Machine m(cfg);
    m.loadProgram(0, assembleOrDie(loopSource(1, 1, 1, 0b11)));
    m.loadProgram(1, assembleOrDie("halt\n"));
    auto r = m.run();
    EXPECT_TRUE(r.deadlocked);
    EXPECT_NE(r.deadlockInfo.find("barrier deadlock"),
              std::string::npos)
        << r.deadlockInfo;
    EXPECT_NE(r.deadlockInfo.find("cpu0"), std::string::npos);
    EXPECT_NE(r.deadlockInfo.find("tag=1"), std::string::npos);
    EXPECT_NE(r.deadlockInfo.find("waiting-on={cpu1}"),
              std::string::npos)
        << r.deadlockInfo;
}

} // namespace
} // namespace fb::fault
