/**
 * @file
 * Campaign-service tests (INTERNALS section 20): the CRC-framed wire
 * protocol, the injectable process/transport fault plan, the
 * crash-safe compacting cursor journal, and the coordinator/worker
 * service itself — whose headline guarantee extends the campaign
 * engine's: the consumer-visible stream is byte-identical at any
 * worker count under any injected fault schedule that does not
 * quarantine an item.
 *
 * The end-to-end tests fork real worker processes (the coordinator's
 * normal mode), so they use trivial arithmetic runners rather than
 * full differential scenarios; the differential workload rides the
 * same code path via tools/fbfuzz and the service-robustness CI job.
 */

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/campaign.hh"
#include "exec/machine_pool.hh"
#include "exec/program_cache.hh"
#include "exec/service/coordinator.hh"
#include "exec/service/journal.hh"
#include "exec/service/wire.hh"

namespace
{

using namespace fb;
using namespace fb::exec;
using namespace fb::exec::svc;
using namespace std::string_literals;

// --- wire format -----------------------------------------------------

TEST(Wire, RoundTripsEveryMessageType)
{
    std::vector<Message> msgs;
    {
        Message m;
        m.type = MsgType::Hello;
        m.a = 4242;
        msgs.push_back(m);
    }
    {
        Message m;
        m.type = MsgType::LeaseGrant;
        m.a = 7;
        m.items = {3, 5, 8, 13, 0xffff'ffff'ffff'fffeULL};
        msgs.push_back(m);
    }
    {
        Message m;
        m.type = MsgType::Heartbeat;
        m.a = 12;
        msgs.push_back(m);
    }
    {
        Message m;
        m.type = MsgType::ItemStart;
        m.a = 99;
        msgs.push_back(m);
    }
    {
        Message m;
        m.type = MsgType::ItemDone;
        m.a = 99;
        m.flag = true;
        m.text = "FAIL seed=99\nline two with \0 embedded"s;
        msgs.push_back(m);
    }
    {
        Message m;
        m.type = MsgType::LeaseDone;
        m.a = 7;
        msgs.push_back(m);
    }
    {
        Message m;
        m.type = MsgType::Shutdown;
        msgs.push_back(m);
    }

    // Concatenate all frames and feed them one byte at a time: the
    // reader must reassemble every message across arbitrary chunking.
    std::vector<std::uint8_t> stream;
    for (const Message &m : msgs) {
        auto f = encodeFrame(m);
        stream.insert(stream.end(), f.begin(), f.end());
    }
    FrameReader reader;
    std::vector<Message> got;
    Message out;
    std::string err;
    for (std::uint8_t byte : stream) {
        reader.feed(&byte, 1);
        for (;;) {
            auto st = reader.next(out, err);
            if (st != FrameReader::Status::Ok)
                break;
            got.push_back(out);
        }
    }
    ASSERT_EQ(got.size(), msgs.size());
    for (std::size_t i = 0; i < msgs.size(); ++i) {
        EXPECT_EQ(got[i].type, msgs[i].type) << i;
        EXPECT_EQ(got[i].a, msgs[i].a) << i;
        EXPECT_EQ(got[i].flag, msgs[i].flag) << i;
        EXPECT_EQ(got[i].text, msgs[i].text) << i;
        EXPECT_EQ(got[i].items, msgs[i].items) << i;
    }
    EXPECT_EQ(reader.framesDecoded(), msgs.size());
    EXPECT_FALSE(reader.corrupt());
}

TEST(Wire, FlippedByteFailsCrcAndLatchesCorrupt)
{
    Message m;
    m.type = MsgType::ItemDone;
    m.a = 5;
    m.text = "payload";
    auto frame = encodeFrame(m);
    frame[frame.size() - 1] ^= 0x01;  // flip a payload byte

    FrameReader reader;
    reader.feed(frame.data(), frame.size());
    Message out;
    std::string err;
    EXPECT_EQ(reader.next(out, err), FrameReader::Status::Corrupt);
    EXPECT_TRUE(reader.corrupt());
    EXPECT_FALSE(err.empty());
    // Latched: even a pristine frame is refused afterwards.
    auto good = encodeFrame(m);
    reader.feed(good.data(), good.size());
    EXPECT_EQ(reader.next(out, err), FrameReader::Status::Corrupt);
}

TEST(Wire, OversizeLengthPrefixIsRejectedBeforeAllocation)
{
    // A garbled length prefix claiming a 1GB frame must be refused
    // immediately, not buffered toward an OOM.
    std::uint8_t junk[8] = {0xff, 0xff, 0xff, 0x3f, 0, 0, 0, 0};
    FrameReader reader;
    reader.feed(junk, sizeof junk);
    Message out;
    std::string err;
    EXPECT_EQ(reader.next(out, err), FrameReader::Status::Corrupt);
}

TEST(Wire, FaultPlanParsesAndRoundTrips)
{
    SvcFaultPlan plan;
    std::string err;
    ASSERT_TRUE(SvcFaultPlan::parse(
        "kill:5,killitem:0,drop:3,garble:7,stallhb:2", plan, err))
        << err;
    EXPECT_EQ(plan.killNthItem, 5u);
    EXPECT_TRUE(plan.killItemArmed);
    EXPECT_EQ(plan.killItemIndex, 0u);
    EXPECT_EQ(plan.dropNthFrame, 3u);
    EXPECT_EQ(plan.garbleNthFrame, 7u);
    EXPECT_EQ(plan.stallAfterHeartbeats, 2u);
    EXPECT_TRUE(plan.any());

    SvcFaultPlan again;
    ASSERT_TRUE(SvcFaultPlan::parse(plan.toSpec(), again, err)) << err;
    EXPECT_EQ(again.toSpec(), plan.toSpec());

    // Respawned incarnations keep only the poison-seed directive.
    SvcFaultPlan respawned = plan.respawnPlan();
    EXPECT_EQ(respawned.killNthItem, 0u);
    EXPECT_EQ(respawned.dropNthFrame, 0u);
    EXPECT_TRUE(respawned.killItemArmed);

    EXPECT_FALSE(SvcFaultPlan::parse("explode:1", plan, err));
    EXPECT_FALSE(SvcFaultPlan::parse("kill", plan, err));
    EXPECT_FALSE(SvcFaultPlan::parse("kill:", plan, err));
    EXPECT_FALSE(SvcFaultPlan::parse("kill:0", plan, err));
    EXPECT_FALSE(SvcFaultPlan::parse("kill:5,,drop:1", plan, err));
    EXPECT_FALSE(SvcFaultPlan::parse("kill:x", plan, err));
}

// --- cursor journal --------------------------------------------------

std::string
freshJournalPath(const std::string &name)
{
    std::string path =
        ::testing::TempDir() + "fb_service_test_" + name + ".cursor";
    std::filesystem::remove(path);
    std::filesystem::remove(path + ".tmp");
    return path;
}

TEST(CursorJournal, RecordsAndReloads)
{
    const std::string path = freshJournalPath("reload");
    const std::string header = "test-journal v1 params=abc";
    std::string err;
    {
        CursorJournal j;
        ASSERT_TRUE(j.open(path, header, 10, err)) << err;
        EXPECT_EQ(j.resumedItems(), 0u);
        j.record(0, false);
        j.record(1, true);
        j.record(3, false);
    }
    CursorJournal j2;
    ASSERT_TRUE(j2.open(path, header, 10, err)) << err;
    EXPECT_EQ(j2.state(0), 'p');
    EXPECT_EQ(j2.state(1), 'f');
    EXPECT_EQ(j2.state(2), '\0');
    EXPECT_EQ(j2.state(3), 'p');
    EXPECT_EQ(j2.resumedItems(), 3u);
}

TEST(CursorJournal, HeaderMismatchIsRejected)
{
    const std::string path = freshJournalPath("header");
    std::string err;
    {
        CursorJournal j;
        ASSERT_TRUE(j.open(path, "campaign A", 5, err)) << err;
        j.record(0, false);
    }
    CursorJournal j2;
    EXPECT_FALSE(j2.open(path, "campaign B", 5, err));
    EXPECT_NE(err.find("records a different campaign"),
              std::string::npos)
        << err;
}

TEST(CursorJournal, TornTailIsDiscarded)
{
    const std::string path = freshJournalPath("torn");
    const std::string header = "test-journal torn";
    std::string err;
    {
        CursorJournal j;
        ASSERT_TRUE(j.open(path, header, 10, err)) << err;
        j.record(0, false);
        j.record(1, false);
    }
    // Simulate a SIGKILL mid-append: a valid line, then a torn one.
    {
        std::ofstream out(path, std::ios::app);
        out << "done 2 pass\n";
        out << "done 3 pa";  // torn mid-write
    }
    CursorJournal j2;
    ASSERT_TRUE(j2.open(path, header, 10, err)) << err;
    EXPECT_EQ(j2.state(2), 'p');
    EXPECT_EQ(j2.state(3), '\0') << "torn line must not be trusted";

    // And a torn line discards everything after it, even valid lines
    // (nothing downstream of a tear is trustworthy).
    {
        std::ofstream out(path, std::ios::app);
        out << "garbage line\n";
        out << "done 4 pass\n";
    }
    CursorJournal j3;
    ASSERT_TRUE(j3.open(path, header, 10, err)) << err;
    EXPECT_EQ(j3.state(4), '\0');
}

TEST(CursorJournal, CompactionBoundsGrowthAndPreservesState)
{
    const std::string path = freshJournalPath("compact");
    const std::string header = "test-journal compact";
    std::string err;
    constexpr std::uint64_t items = 400;
    {
        CursorJournal j;
        ASSERT_TRUE(j.open(path, header, items, err)) << err;
        j.setCompactionThreshold(32);
        for (std::uint64_t i = 0; i < items; ++i)
            j.record(i, false);
        EXPECT_GT(j.compactions(), 0u);
    }
    // A fully-passing 400-item journal compacts to a header, one
    // prefix line, and at most a threshold's worth of records
    // appended since the last compaction — far below one line per
    // item.
    const auto size = std::filesystem::file_size(path);
    EXPECT_LT(size, 2048u) << "journal did not stay bounded";
    {
        std::ifstream in(path);
        std::string first, second;
        std::getline(in, first);
        std::getline(in, second);
        EXPECT_EQ(first, header);
        ASSERT_EQ(second.rfind("prefix ", 0), 0u) << second;
        std::uint64_t prefix =
            std::stoull(second.substr(std::string("prefix ").size()));
        EXPECT_GE(prefix, 32u);   // at least the threshold folded in
        EXPECT_LE(prefix, items); // never past what was recorded
    }
    CursorJournal j2;
    ASSERT_TRUE(j2.open(path, header, items, err)) << err;
    for (std::uint64_t i = 0; i < items; ++i)
        EXPECT_EQ(j2.state(i), 'p') << i;
    EXPECT_EQ(j2.resumedItems(), items);
}

TEST(CursorJournal, FailRecordsAreDroppedByCompaction)
{
    // `done I fail` is semantically equivalent to no record (failing
    // items re-run on resume either way) — re-appending them forever
    // was exactly the PR 4 unbounded-growth bug. The canonical rewrite
    // must drop them.
    // The header must not contain the substring "fail" — the check
    // below scans the whole file for leftover `done I fail` records.
    const std::string path = freshJournalPath("dropped-verdicts");
    const std::string header = "test-journal dropped-verdicts";
    std::string err;
    {
        CursorJournal j;
        ASSERT_TRUE(j.open(path, header, 8, err)) << err;
        j.record(0, false);
        j.record(1, true);
        j.record(2, true);
    }
    {
        // Reopen: canonical rewrite drops the fail lines on disk even
        // though this opener still sees them in memory.
        CursorJournal j;
        ASSERT_TRUE(j.open(path, header, 8, err)) << err;
        EXPECT_EQ(j.state(1), 'f');
    }
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(text.find("fail"), std::string::npos) << text;
    EXPECT_NE(text.find("done 0 pass"), std::string::npos) << text;
}

// --- the service itself ----------------------------------------------

/**
 * Deterministic synthetic workload: payload is a pure function of the
 * index, every 7th item fails. Cheap enough that end-to-end service
 * tests complete in milliseconds of actual work.
 */
ItemResult
syntheticItem(std::uint64_t i, WorkerContext &)
{
    ItemResult r;
    std::ostringstream oss;
    if (i % 7 == 3) {
        r.failed = true;
        oss << "FAIL item=" << i << " detail=" << (i * 2654435761u % 997)
            << "\n";
    } else {
        oss << "ok item=" << i << " v=" << (i * i % 1009) << "\n";
    }
    r.payload = oss.str();
    return r;
}

/** Reference stream: the in-process engine at jobs=1. */
std::string
referenceStream(std::uint64_t count)
{
    CampaignOptions copt;
    copt.jobs = 1;
    std::string out;
    runCampaign(count, copt, syntheticItem,
                [&](std::uint64_t, const ItemResult &r) {
                    out += r.payload;
                });
    return out;
}

struct ServiceRun
{
    std::string stream;
    std::vector<std::uint64_t> quarantinedItems;
    ServiceStats stats;
};

ServiceRun
runService(std::uint64_t count, ServiceOptions sopt,
           CursorJournal *journal = nullptr,
           const ItemRunner &runner = syntheticItem)
{
    ServiceRun out;
    out.stats = runCampaignService(
        count, sopt, runner,
        [&](std::uint64_t i, const ItemResult &r) {
            out.stream += r.payload;
            if (r.quarantined)
                out.quarantinedItems.push_back(i);
        },
        journal);
    return out;
}

TEST(Service, MatchesInProcessEngineAtAnyWorkerCount)
{
    constexpr std::uint64_t count = 60;
    const std::string ref = referenceStream(count);
    for (int workers : {1, 3}) {
        ServiceOptions sopt;
        sopt.workers = workers;
        sopt.leaseItems = 7;
        auto run = runService(count, sopt);
        EXPECT_EQ(run.stream, ref) << workers << " workers";
        EXPECT_FALSE(run.stats.aborted) << run.stats.error;
        EXPECT_EQ(run.stats.failures, (count + 3) / 7);
        EXPECT_EQ(run.stats.workerDeaths, 0u);
        EXPECT_EQ(run.stats.quarantined, 0u);
        EXPECT_GT(run.stats.leasesGranted, 0u);
    }
}

TEST(Service, SurvivesWorkerKillByteIdentically)
{
    constexpr std::uint64_t count = 40;
    const std::string ref = referenceStream(count);
    ServiceOptions sopt;
    sopt.workers = 2;
    sopt.leaseItems = 5;
    std::string err;
    ASSERT_TRUE(SvcFaultPlan::parse("kill:3", sopt.fault, err)) << err;
    auto run = runService(count, sopt);
    EXPECT_EQ(run.stream, ref);
    EXPECT_FALSE(run.stats.aborted) << run.stats.error;
    EXPECT_EQ(run.stats.workerDeaths, 1u);
    // No respawn assertion: the surviving worker may finish the whole
    // campaign before the dead slot's backoff elapses, which is a
    // legitimate (and faster) recovery.
    EXPECT_GE(run.stats.leasesReassigned, 1u);
    EXPECT_EQ(run.stats.quarantined, 0u)
        << "a transient crash must not quarantine the item it died on";
}

TEST(Service, DroppedResultFrameIsReRunNotLost)
{
    constexpr std::uint64_t count = 40;
    const std::string ref = referenceStream(count);
    ServiceOptions sopt;
    sopt.workers = 2;
    sopt.leaseItems = 5;
    std::string err;
    // Frame 4 from worker 0: Hello, ItemStart, ItemDone, ItemStart —
    // drops mid-lease traffic regardless of exact interleaving.
    ASSERT_TRUE(SvcFaultPlan::parse("drop:4", sopt.fault, err)) << err;
    auto run = runService(count, sopt);
    EXPECT_EQ(run.stream, ref);
    EXPECT_FALSE(run.stats.aborted) << run.stats.error;
    EXPECT_EQ(run.stats.quarantined, 0u);
}

TEST(Service, GarbledFrameRecyclesTheConnection)
{
    constexpr std::uint64_t count = 40;
    const std::string ref = referenceStream(count);
    ServiceOptions sopt;
    sopt.workers = 2;
    sopt.leaseItems = 5;
    std::string err;
    ASSERT_TRUE(SvcFaultPlan::parse("garble:4", sopt.fault, err)) << err;
    auto run = runService(count, sopt);
    EXPECT_EQ(run.stream, ref);
    EXPECT_FALSE(run.stats.aborted) << run.stats.error;
    EXPECT_GE(run.stats.corruptStreams, 1u);
    EXPECT_GE(run.stats.workerDeaths, 1u);
    EXPECT_EQ(run.stats.quarantined, 0u);
}

TEST(Service, WedgedWorkerIsReclaimedByHeartbeatTimeout)
{
    constexpr std::uint64_t count = 60;
    const std::string ref = referenceStream(count);
    ServiceOptions sopt;
    sopt.workers = 2;
    sopt.leaseItems = 8;
    sopt.heartbeatIntervalMs = 5;
    sopt.heartbeatTimeoutMs = 150;
    std::string err;
    ASSERT_TRUE(SvcFaultPlan::parse("stallhb:1", sopt.fault, err)) << err;
    // Slow the items slightly so worker 0 heartbeats (and therefore
    // wedges) while still holding un-run lease items.
    auto slowItem = [](std::uint64_t i, WorkerContext &ctx) {
        ::usleep(2000);
        return syntheticItem(i, ctx);
    };
    auto run = runService(count, sopt, nullptr, slowItem);
    EXPECT_EQ(run.stream, ref);
    EXPECT_FALSE(run.stats.aborted) << run.stats.error;
    EXPECT_GE(run.stats.heartbeatTimeouts, 1u);
    EXPECT_GE(run.stats.workerDeaths, 1u);
    EXPECT_EQ(run.stats.quarantined, 0u);
}

TEST(Service, PoisonItemIsQuarantinedWithArtifact)
{
    constexpr std::uint64_t count = 30;
    const std::string ref = referenceStream(count);
    ServiceOptions sopt;
    sopt.workers = 2;
    sopt.leaseItems = 4;
    std::string err;
    ASSERT_TRUE(SvcFaultPlan::parse("killitem:11", sopt.fault, err))
        << err;
    sopt.quarantineArtifact = [](std::uint64_t index, int kills) {
        std::ostringstream oss;
        oss << "QUARANTINE item=" << index << " kills=" << kills << "\n";
        return oss.str();
    };
    auto run = runService(count, sopt);
    EXPECT_FALSE(run.stats.aborted) << run.stats.error;
    EXPECT_EQ(run.stats.quarantined, 1u);
    ASSERT_EQ(run.quarantinedItems.size(), 1u);
    EXPECT_EQ(run.quarantinedItems[0], 11u);
    // Threshold 2 kills, then the solo probe dies too: three total.
    EXPECT_EQ(run.stats.workerDeaths, 3u);
    EXPECT_NE(run.stream.find("QUARANTINE item=11 kills=3"),
              std::string::npos)
        << run.stream;

    // Every seed except the poisoned one is byte-identical to the
    // in-process reference: splice the reference's item-11 line out
    // and the artifact line in.
    std::string expected;
    {
        std::istringstream in(ref);
        std::string line;
        std::uint64_t i = 0;
        while (std::getline(in, line)) {
            if (i == 11)
                expected += "QUARANTINE item=11 kills=3\n";
            else
                expected += line + "\n";
            ++i;
        }
    }
    EXPECT_EQ(run.stream, expected);
}

TEST(Service, ThrowingRunnerBecomesFailedResultNotWorkerLoss)
{
    // Satellite guarantee at the service level: an exception inside
    // the runner is a failed item, not a dead worker.
    constexpr std::uint64_t count = 20;
    auto throwyItem = [](std::uint64_t i,
                         WorkerContext &ctx) -> ItemResult {
        if (i == 9)
            throw std::runtime_error("synthetic runner bug");
        return syntheticItem(i, ctx);
    };
    ServiceOptions sopt;
    sopt.workers = 2;
    sopt.leaseItems = 4;
    auto run = runService(count, sopt, nullptr, throwyItem);
    EXPECT_FALSE(run.stats.aborted) << run.stats.error;
    EXPECT_EQ(run.stats.workerDeaths, 0u);
    EXPECT_NE(run.stream.find("EXCEPTION item=9: synthetic runner bug"),
              std::string::npos)
        << run.stream;
}

TEST(Service, JournalSkipsRecordedPassesAndRecordsNewOnes)
{
    constexpr std::uint64_t count = 30;
    const std::string path = freshJournalPath("service_resume");
    const std::string header = "service resume test";
    std::string err;

    // First run: complete the campaign, journaling every verdict.
    {
        CursorJournal journal;
        ASSERT_TRUE(journal.open(path, header, count, err)) << err;
        ServiceOptions sopt;
        sopt.workers = 2;
        sopt.leaseItems = 4;
        auto run = runService(count, sopt, &journal);
        EXPECT_FALSE(run.stats.aborted) << run.stats.error;
        EXPECT_EQ(run.stats.itemsSkippedByJournal, 0u);
    }

    // Second run against the same journal: passes skip (empty
    // results), failures re-run and reproduce their exact payloads.
    CursorJournal journal;
    ASSERT_TRUE(journal.open(path, header, count, err)) << err;
    ServiceOptions sopt;
    sopt.workers = 2;
    sopt.leaseItems = 4;
    std::string stream;
    std::uint64_t skippedSeen = 0;
    auto stats = runCampaignService(
        count, sopt, syntheticItem,
        [&](std::uint64_t i, const ItemResult &r) {
            if (r.payload.empty() && !r.failed)
                ++skippedSeen;
            stream += r.payload;
            (void)i;
        },
        &journal);
    EXPECT_FALSE(stats.aborted) << stats.error;
    const std::uint64_t fails = (count + 3) / 7;
    EXPECT_EQ(stats.itemsSkippedByJournal, count - fails);
    EXPECT_EQ(skippedSeen, count - fails);
    // The re-run stream is exactly the failing lines, in item order.
    MachinePool machines;
    ProgramCache programs;
    WorkerContext ctx{0, machines, programs};
    std::string expected;
    for (std::uint64_t i = 0; i < count; ++i)
        if (i % 7 == 3)
            expected += syntheticItem(i, ctx).payload;
    EXPECT_EQ(stream, expected);
}

TEST(Service, AbortsWhenDeathBudgetExhausted)
{
    // killitem with threshold raised so high the item is never
    // quarantined: deaths accumulate until the budget trips, and the
    // service reports an aborted, incomplete campaign instead of
    // spinning forever.
    constexpr std::uint64_t count = 10;
    ServiceOptions sopt;
    sopt.workers = 2;
    sopt.leaseItems = 2;
    sopt.quarantineKillThreshold = 1000;
    sopt.maxWorkerDeaths = 4;
    sopt.respawnBackoffInitialMs = 1;
    sopt.respawnBackoffMaxMs = 5;
    std::string err;
    ASSERT_TRUE(SvcFaultPlan::parse("killitem:5", sopt.fault, err))
        << err;
    auto run = runService(count, sopt);
    EXPECT_TRUE(run.stats.aborted);
    EXPECT_NE(run.stats.error.find("budget"), std::string::npos)
        << run.stats.error;
}

} // namespace
