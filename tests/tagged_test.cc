/**
 * @file
 * Tests for BarrierDomain — multiple logical barriers over thread
 * subsets (the section 5 tag/mask mechanism in software).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "swbarrier/tagged.hh"

namespace fb::sw
{
namespace
{

TEST(BarrierDomain, CreateAndDestroy)
{
    BarrierDomain domain(4);
    EXPECT_EQ(domain.liveBarriers(), 0u);
    domain.createBarrier(1, {0, 1});
    domain.createBarrier(2, {2, 3});
    EXPECT_EQ(domain.liveBarriers(), 2u);
    domain.destroyBarrier(1);
    EXPECT_EQ(domain.liveBarriers(), 1u);
}

TEST(BarrierDomain, PairSynchronizes)
{
    BarrierDomain domain(2);
    domain.createBarrier(7, {0, 1});
    std::atomic<int> before{0};
    std::atomic<int> violations{0};

    auto worker = [&](int tid) {
        for (int e = 0; e < 50; ++e) {
            before.fetch_add(1);
            domain.arrive(7, tid);
            domain.wait(7, tid);
            if (before.load() < 2 * (e + 1))
                violations.fetch_add(1);
        }
    };
    std::thread a(worker, 0), b(worker, 1);
    a.join();
    b.join();
    EXPECT_EQ(violations.load(), 0);
}

TEST(BarrierDomain, DisjointSubsetsIndependent)
{
    // Two pairs synchronize under different tags; the pairs never
    // block each other even with wildly different episode rates.
    BarrierDomain domain(4);
    domain.createBarrier(1, {0, 1});
    domain.createBarrier(2, {2, 3});

    std::atomic<int> done{0};
    auto pair_worker = [&](int tag, int tid, int episodes) {
        for (int e = 0; e < episodes; ++e)
            domain.synchronize(tag, tid);
        done.fetch_add(1);
    };
    std::vector<std::thread> pool;
    pool.emplace_back(pair_worker, 1, 0, 200);
    pool.emplace_back(pair_worker, 1, 1, 200);
    pool.emplace_back(pair_worker, 2, 2, 10);
    pool.emplace_back(pair_worker, 2, 3, 10);
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(done.load(), 4);
}

TEST(BarrierDomain, Fig6StreamMerge)
{
    // The paper's Fig. 6: P1 and P2 merge at B3, P2 and P3 at B4,
    // then all three at B2 — each subset under its own tag.
    BarrierDomain domain(3);
    domain.createBarrier(3, {0, 1});
    domain.createBarrier(4, {1, 2});
    domain.createBarrier(2, {0, 1, 2});

    std::vector<int> log[3];
    auto record = [&](int tid, int event) {
        log[tid].push_back(event);
    };

    std::thread p1([&] {
        record(0, 3);
        domain.synchronize(3, 0);
        record(0, 2);
        domain.synchronize(2, 0);
    });
    std::thread p2([&] {
        record(1, 3);
        domain.synchronize(3, 1);
        record(1, 4);
        domain.synchronize(4, 1);
        record(1, 2);
        domain.synchronize(2, 1);
    });
    std::thread p3([&] {
        record(2, 4);
        domain.synchronize(4, 2);
        record(2, 2);
        domain.synchronize(2, 2);
    });
    p1.join();
    p2.join();
    p3.join();

    EXPECT_EQ(log[0], (std::vector<int>{3, 2}));
    EXPECT_EQ(log[1], (std::vector<int>{3, 4, 2}));
    EXPECT_EQ(log[2], (std::vector<int>{4, 2}));
}

TEST(BarrierDomain, SplitPhaseAcrossSubset)
{
    // Fuzzy usage on a 3-of-5 subset: region work between arrive and
    // wait, values written before arrive visible after wait.
    BarrierDomain domain(5);
    domain.createBarrier(9, {0, 2, 4});

    std::vector<std::atomic<int>> slot(5);
    for (auto &s : slot)
        s.store(-1);
    std::atomic<int> errors{0};

    auto member = [&](int tid) {
        for (int e = 0; e < 30; ++e) {
            slot[static_cast<std::size_t>(tid)].store(
                e, std::memory_order_release);
            domain.arrive(9, tid);
            volatile int sink = 0;
            for (int k = 0; k < 50 * tid; ++k)
                sink += k;
            domain.wait(9, tid);
            for (int other : {0, 2, 4}) {
                if (slot[static_cast<std::size_t>(other)].load(
                        std::memory_order_acquire) < e)
                    errors.fetch_add(1);
            }
        }
    };
    std::thread a(member, 0), b(member, 2), c(member, 4);
    a.join();
    b.join();
    c.join();
    EXPECT_EQ(errors.load(), 0);
}

TEST(BarrierDomain, ReuseTagAfterDestroy)
{
    BarrierDomain domain(2);
    domain.createBarrier(1, {0, 1});
    domain.destroyBarrier(1);
    domain.createBarrier(1, {0});  // same tag, new subset
    domain.synchronize(1, 0);      // single member: never blocks
    EXPECT_EQ(domain.liveBarriers(), 1u);
}

} // namespace
} // namespace fb::sw
