/**
 * @file
 * Regression tests replaying the stored reproducer corpus under
 * tests/corpus/. Each file is a scenario that once exercised an
 * interesting corner — tag groups, interrupts during regions,
 * DrainWait at deep pipelines, inherited-region calls — and must
 * keep passing the full differential matrix, deterministically.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "verify/differ.hh"

namespace fb::verify
{
namespace
{

std::vector<std::filesystem::path>
corpusFiles()
{
    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(FB_CORPUS_DIR)) {
        if (entry.path().extension() == ".fbrepro")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::string
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

TEST(Corpus, HasAtLeastThreeSeeds)
{
    EXPECT_GE(corpusFiles().size(), 3u);
}

TEST(Corpus, EverySeedReplaysClean)
{
    for (const auto &path : corpusFiles()) {
        SCOPED_TRACE(path.filename().string());
        Scenario sc;
        std::string err;
        ASSERT_TRUE(Scenario::fromReproducer(readFile(path), sc, err))
            << err;
        DiffReport rep = runDifferential(sc);
        EXPECT_TRUE(rep.ok)
            << rep.variant << ": " << rep.failure;
    }
}

TEST(Corpus, ReplayIsDeterministic)
{
    for (const auto &path : corpusFiles()) {
        SCOPED_TRACE(path.filename().string());
        Scenario sc;
        std::string err;
        ASSERT_TRUE(Scenario::fromReproducer(readFile(path), sc, err))
            << err;
        DiffReport a = runDifferential(sc);
        DiffReport b = runDifferential(sc);
        EXPECT_EQ(a.ok, b.ok);
        EXPECT_EQ(a.baseline.hash(), b.baseline.hash());
        EXPECT_EQ(a.baseline.summary(), b.baseline.summary());
    }
}

/**
 * The corpus must actually cover the features it exists to pin down
 * (docs/INTERNALS.md sections 2, 5, 7): at least one multi-group
 * scenario, one with interrupts, and one with a multi-cycle tail
 * that forces DrainWait at pipeline depth > 1.
 */
TEST(Corpus, CoversAdvertisedFeatures)
{
    bool tag_groups = false;
    bool interrupts = false;
    bool slow_tail = false;
    bool calls = false;
    bool fatal_fault = false;
    bool transient_fault = false;
    bool watchdog = false;
    for (const auto &path : corpusFiles()) {
        Scenario sc;
        std::string err;
        ASSERT_TRUE(Scenario::fromReproducer(readFile(path), sc, err))
            << err;
        tag_groups |= sc.groups() > 1;
        interrupts |= sc.interruptPeriod > 0;
        for (const auto &src : sc.sources) {
            slow_tail |= src.find("muli r3, r3, 1\n") != std::string::npos;
            calls |= src.find("call") != std::string::npos;
        }
        fatal_fault |= sc.faults.hasFatal();
        for (const auto &ev : sc.faults.events)
            transient_fault |= !ev.fatal();
        watchdog |= sc.watchdog.enabled;
    }
    EXPECT_TRUE(tag_groups) << "no corpus seed exercises tag groups";
    EXPECT_TRUE(interrupts) << "no corpus seed exercises interrupts";
    EXPECT_TRUE(slow_tail) << "no corpus seed exercises DrainWait tails";
    EXPECT_TRUE(calls) << "no corpus seed exercises procedure calls";
    EXPECT_TRUE(fatal_fault)
        << "no corpus seed exercises watchdog recovery (fatal fault)";
    EXPECT_TRUE(transient_fault)
        << "no corpus seed exercises transient faults";
    EXPECT_TRUE(watchdog) << "no corpus seed arms the barrier watchdog";
}

} // namespace
} // namespace fb::verify
