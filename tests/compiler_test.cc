/**
 * @file
 * Unit tests for the fuzzy-barrier compiler: dependence DAG, marked
 * instructions, region construction, three-phase reordering,
 * statement-level transforms, and code generation.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "compiler/codegen.hh"
#include "compiler/dag.hh"
#include "compiler/region.hh"
#include "compiler/reorder.hh"
#include "compiler/transforms.hh"
#include "core/workloads.hh"
#include "ir/builder.hh"
#include "ir/interp.hh"
#include "sim/machine.hh"

namespace fb::compiler
{
namespace
{

using ir::Block;
using ir::IrBuilder;
using ir::Operand;
using ir::TacInstr;
using ir::TacOp;

// ---------------------------------------------------------------------- DAG

TEST(DependenceDag, RawEdge)
{
    Block b;
    b.append(TacInstr::copy(Operand::temp(1), Operand::constant(1)));
    b.append(TacInstr::arith(TacOp::Add, Operand::temp(2),
                             Operand::temp(1), Operand::constant(1)));
    DependenceDag dag(b);
    ASSERT_EQ(dag.edges().size(), 1u);
    EXPECT_EQ(dag.edges()[0].kind, DepKind::Raw);
    EXPECT_EQ(dag.edges()[0].from, 0u);
    EXPECT_EQ(dag.edges()[0].to, 1u);
}

TEST(DependenceDag, WarEdge)
{
    Block b;
    // 0 reads T1; 1 writes T1 -> WAR 0->1
    b.append(TacInstr::arith(TacOp::Add, Operand::temp(2),
                             Operand::temp(1), Operand::constant(1)));
    b.at(0).a = Operand::temp(1);
    b.append(TacInstr::copy(Operand::temp(1), Operand::constant(9)));
    DependenceDag dag(b);
    bool found = false;
    for (const auto &e : dag.edges())
        found |= e.kind == DepKind::War && e.from == 0 && e.to == 1;
    EXPECT_TRUE(found);
}

TEST(DependenceDag, WawEdge)
{
    Block b;
    b.append(TacInstr::copy(Operand::temp(1), Operand::constant(1)));
    b.append(TacInstr::copy(Operand::temp(1), Operand::constant(2)));
    DependenceDag dag(b);
    bool found = false;
    for (const auto &e : dag.edges())
        found |= e.kind == DepKind::Waw && e.from == 0 && e.to == 1;
    EXPECT_TRUE(found);
}

TEST(DependenceDag, MemEdgesSameArray)
{
    Block b;
    auto st = TacInstr::store(Operand::temp(1), Operand::temp(2));
    st.array = "A";
    auto ld = TacInstr::load(Operand::temp(3), Operand::temp(1));
    ld.array = "A";
    b.append(TacInstr::copy(Operand::temp(1), Operand::constant(5)));
    b.append(TacInstr::copy(Operand::temp(2), Operand::constant(6)));
    b.append(st);  // 2
    b.append(ld);  // 3
    DependenceDag dag(b);
    bool found = false;
    for (const auto &e : dag.edges())
        found |= e.kind == DepKind::Mem && e.from == 2 && e.to == 3;
    EXPECT_TRUE(found);
}

TEST(DependenceDag, NoMemEdgeDifferentArrays)
{
    Block b;
    b.append(TacInstr::copy(Operand::temp(1), Operand::constant(5)));
    auto st = TacInstr::store(Operand::temp(1), Operand::temp(1));
    st.array = "A";
    auto ld = TacInstr::load(Operand::temp(2), Operand::temp(1));
    ld.array = "B";
    b.append(st);
    b.append(ld);
    DependenceDag dag(b);
    for (const auto &e : dag.edges())
        EXPECT_NE(e.kind, DepKind::Mem);
}

TEST(DependenceDag, EmptyArrayNameAliasesEverything)
{
    Block b;
    b.append(TacInstr::copy(Operand::temp(1), Operand::constant(5)));
    auto st = TacInstr::store(Operand::temp(1), Operand::temp(1));
    st.array = "A";
    auto ld = TacInstr::load(Operand::temp(2), Operand::temp(1));
    ld.array = "";  // unknown target
    b.append(st);
    b.append(ld);
    DependenceDag dag(b);
    bool found = false;
    for (const auto &e : dag.edges())
        found |= e.kind == DepKind::Mem && e.from == 1 && e.to == 2;
    EXPECT_TRUE(found);
}

TEST(DependenceDag, LoadsDoNotOrderAgainstLoads)
{
    Block b;
    b.append(TacInstr::copy(Operand::temp(1), Operand::constant(5)));
    auto l1 = TacInstr::load(Operand::temp(2), Operand::temp(1));
    l1.array = "A";
    auto l2 = TacInstr::load(Operand::temp(3), Operand::temp(1));
    l2.array = "A";
    b.append(l1);
    b.append(l2);
    DependenceDag dag(b);
    for (const auto &e : dag.edges())
        EXPECT_NE(e.kind, DepKind::Mem);
}

TEST(DependenceDag, ValidOrderChecks)
{
    Block b;
    b.append(TacInstr::copy(Operand::temp(1), Operand::constant(1)));
    b.append(TacInstr::arith(TacOp::Add, Operand::temp(2),
                             Operand::temp(1), Operand::constant(1)));
    b.append(TacInstr::copy(Operand::temp(3), Operand::constant(3)));
    DependenceDag dag(b);
    EXPECT_TRUE(dag.validOrder({0, 1, 2}));
    EXPECT_TRUE(dag.validOrder({2, 0, 1}));
    EXPECT_FALSE(dag.validOrder({1, 0, 2}));
    EXPECT_FALSE(dag.validOrder({0, 1}));      // wrong size
    EXPECT_FALSE(dag.validOrder({0, 0, 2}));   // not a permutation
}

TEST(DependenceDag, DependsOnAnyTransitive)
{
    Block b;
    b.append(TacInstr::copy(Operand::temp(1), Operand::constant(1)));
    b.append(TacInstr::arith(TacOp::Add, Operand::temp(2),
                             Operand::temp(1), Operand::constant(1)));
    b.append(TacInstr::arith(TacOp::Add, Operand::temp(3),
                             Operand::temp(2), Operand::constant(1)));
    b.append(TacInstr::copy(Operand::temp(4), Operand::constant(4)));
    DependenceDag dag(b);
    EXPECT_TRUE(dag.dependsOnAny(2, {0}));
    EXPECT_FALSE(dag.dependsOnAny(3, {0}));
    EXPECT_FALSE(dag.dependsOnAny(0, {2}));
}

// ---------------------------------------------------- marking and regions

TEST(Marking, MarksSharedArrayAccesses)
{
    Block b;
    b.append(TacInstr::copy(Operand::temp(1), Operand::constant(5)));
    auto ld = TacInstr::load(Operand::temp(2), Operand::temp(1));
    ld.array = "P";
    b.append(ld);
    auto ld2 = TacInstr::load(Operand::temp(3), Operand::temp(1));
    ld2.array = "local";
    b.append(ld2);
    EXPECT_EQ(markSharedArrayAccesses(b, {"P"}), 1u);
    EXPECT_TRUE(b.at(1).marked);
    EXPECT_FALSE(b.at(2).marked);
    clearMarks(b);
    EXPECT_FALSE(b.at(1).marked);
}

TEST(Regions, SpanFirstToLastMarked)
{
    Block b;
    for (int k = 0; k < 6; ++k)
        b.append(TacInstr::copy(Operand::temp(k + 1),
                                Operand::constant(k)));
    b.at(2).marked = true;
    b.at(4).marked = true;
    auto ra = assignRegions(b);
    EXPECT_TRUE(ra.hasNonBarrier);
    EXPECT_EQ(ra.nbBegin, 2u);
    EXPECT_EQ(ra.nbEnd, 4u);
    EXPECT_EQ(ra.nonBarrierSize(), 3u);
    EXPECT_TRUE(b.at(0).inRegion);
    EXPECT_TRUE(b.at(1).inRegion);
    EXPECT_FALSE(b.at(2).inRegion);
    EXPECT_FALSE(b.at(3).inRegion);
    EXPECT_FALSE(b.at(4).inRegion);
    EXPECT_TRUE(b.at(5).inRegion);
}

TEST(Regions, NoMarksMeansAllRegion)
{
    Block b;
    b.append(TacInstr::copy(Operand::temp(1), Operand::constant(0)));
    auto ra = assignRegions(b);
    EXPECT_FALSE(ra.hasNonBarrier);
    EXPECT_EQ(ra.nonBarrierSize(), 0u);
    EXPECT_TRUE(b.at(0).inRegion);
}

// ---------------------------------------------------------------- reorder

TEST(Reorder, ShrinksPoissonNonBarrierRegion)
{
    core::PoissonWorkload wl(2);
    Block naive = wl.naiveBody();
    Block naive_copy = naive;
    auto naive_ra = assignRegions(naive_copy);

    auto result = threePhaseReorder(naive);
    EXPECT_EQ(result.block.size(), naive.size());
    // Same marked instructions survive.
    EXPECT_EQ(result.block.markedIndices().size(),
              naive.markedIndices().size());
    // The non-barrier region shrank strictly (Fig. 4(a) -> 4(b)).
    EXPECT_LT(result.regions.nonBarrierSize(),
              naive_ra.nonBarrierSize());
    // All address arithmetic moved before the first marked load: the
    // region instructions at the top should cover every Mul/Add that
    // feeds addresses.
    EXPECT_GE(result.phase1, 16u);
    // Nothing is left for phase 3 in this example (paper: "there are
    // no instructions left to be scheduled during this phase").
    EXPECT_EQ(result.phase3, 0u);
}

TEST(Reorder, PreservesSemanticsOnPoisson)
{
    core::PoissonWorkload wl(2);
    Block naive = wl.naiveBody();
    auto result = threePhaseReorder(naive);

    auto run = [&](const Block &body) {
        ir::InterpState st;
        st.vars["i"] = 1;
        st.vars["j"] = 2;
        st.bases["P"] = 0;
        st.memory.assign(wl.gridWords(), 0);
        // Distinct neighbor values so any mixup changes the result.
        st.memory[wl.addrOf(1, 1)] = 11;
        st.memory[wl.addrOf(1, 3)] = 13;
        st.memory[wl.addrOf(0, 2)] = 3;
        st.memory[wl.addrOf(2, 2)] = 23;
        interpret(body, st);
        return st.memory;
    };
    EXPECT_EQ(run(naive), run(result.block));
}

TEST(Reorder, RespectsDependences)
{
    core::PoissonWorkload wl(3);
    Block naive = wl.naiveBody();
    auto result = threePhaseReorder(naive);
    // Reordered block must itself be a legal order of its own DAG.
    DependenceDag dag(result.block);
    std::vector<std::size_t> identity(result.block.size());
    std::iota(identity.begin(), identity.end(), 0);
    EXPECT_TRUE(dag.validOrder(identity));
}

TEST(Reorder, AllMarkedBlockStaysNonBarrier)
{
    IrBuilder b;
    Operand addr = b.newTemp();
    b.emitCopy(addr, Operand::constant(1));
    b.mutableBlock().at(0).marked = true;  // even the init marked
    Operand v = b.emitLoad(addr, "A", true);
    b.emitStore(addr, v, "A", true);
    auto result = threePhaseReorder(b.block());
    EXPECT_EQ(result.phase1, 0u);
    EXPECT_EQ(result.phase3, 0u);
    EXPECT_EQ(result.regions.nonBarrierSize(), 3u);
}

TEST(Reorder, UnmarkedBlockAllRegion)
{
    IrBuilder b;
    b.emitArith(TacOp::Add, Operand::constant(1), Operand::constant(2));
    auto result = threePhaseReorder(b.block());
    EXPECT_EQ(result.phase1, 1u);
    EXPECT_FALSE(result.regions.hasNonBarrier);
}

// -------------------------------------------------------------- transforms

TEST(Transforms, DistributionSplitsStatements)
{
    std::vector<Statement> stmts(2);
    stmts[0].name = "S1";
    stmts[0].carriesLoopDep = true;
    stmts[1].name = "S2";
    stmts[1].carriesLoopDep = false;
    auto loops = distributeLoop(stmts);
    ASSERT_EQ(loops.size(), 2u);
    EXPECT_EQ(loops[0].stmt.name, "S1");
    EXPECT_FALSE(loops[0].inBarrierRegion);
    EXPECT_EQ(loops[1].stmt.name, "S2");
    EXPECT_TRUE(loops[1].inBarrierRegion);
}

TEST(Transforms, RegionExecutionCounts)
{
    std::vector<Statement> stmts(2);
    stmts[0].carriesLoopDep = true;
    stmts[1].carriesLoopDep = false;
    // Fig. 5: without distribution only the final S2 execution is in
    // the region; with distribution the entire S2 loop is.
    EXPECT_EQ(regionExecutionsWithoutDistribution(stmts, 10), 1u);
    EXPECT_EQ(regionExecutionsWithDistribution(stmts, 10), 10u);
}

TEST(Transforms, SubstituteVarOffset)
{
    IrBuilder b;
    Operand j = Operand::var("j");
    Operand t = b.emitArith(TacOp::Mul, j, Operand::constant(3));
    b.emitCopy(Operand::var("out"), t);

    int next_temp = 100;
    Block shifted = substituteVarOffset(b.block(), "j", 2, next_temp);

    ir::InterpState st;
    st.vars["j"] = 5;
    interpret(shifted, st);
    EXPECT_EQ(st.vars["out"], 21);  // (5 + 2) * 3
    EXPECT_EQ(st.vars["j"], 5);     // counter itself untouched
}

TEST(Transforms, UnrollBodyConcatenatesWithOffsets)
{
    IrBuilder b;
    Operand j = Operand::var("j");
    Operand t = b.emitArith(TacOp::Mul, j, Operand::constant(10));
    Operand addr =
        b.emitArith(TacOp::Add, t, Operand::constant(0));
    b.emitStore(addr, j, "A", false);

    Block unrolled = unrollBody(b.block(), "j", 1, 3);
    EXPECT_GT(unrolled.size(), b.block().size() * 2);

    ir::InterpState st;
    st.vars["j"] = 1;
    st.memory.assign(64, -1);
    interpret(unrolled, st);
    // Copies for offsets 0,1,2 stored j+k at (j+k)*10... the stored
    // value is the shifted counter read.
    EXPECT_EQ(st.memory[10], 1);
    EXPECT_EQ(st.memory[20], 2);
    EXPECT_EQ(st.memory[30], 3);
}

TEST(Transforms, CycleShrinkGroups)
{
    auto groups = cycleShrink(10, 4);
    ASSERT_EQ(groups.size(), 3u);
    EXPECT_EQ(groups[0], (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(groups[1], (std::vector<int>{4, 5, 6, 7}));
    EXPECT_EQ(groups[2], (std::vector<int>{8, 9}));
}

TEST(Transforms, CycleShrinkDegenerateCases)
{
    // Distance 1: fully sequential — one iteration per group.
    auto seq = cycleShrink(4, 1);
    ASSERT_EQ(seq.size(), 4u);
    for (std::size_t g = 0; g < 4; ++g)
        EXPECT_EQ(seq[g], (std::vector<int>{static_cast<int>(g)}));
    // Distance >= trip count: one fully parallel group.
    auto par = cycleShrink(4, 10);
    ASSERT_EQ(par.size(), 1u);
    EXPECT_EQ(par[0].size(), 4u);
    // Empty loop.
    EXPECT_TRUE(cycleShrink(0, 3).empty());
}

TEST(Transforms, CycleShrinkCoversAllIterations)
{
    auto groups = cycleShrink(17, 5);
    int count = 0;
    int expected = 0;
    for (const auto &g : groups) {
        for (int i : g) {
            EXPECT_EQ(i, expected++);
            ++count;
        }
    }
    EXPECT_EQ(count, 17);
}

TEST(Transforms, Roles)
{
    EXPECT_EQ(roleFor(true, false), IterationRole::First);
    EXPECT_EQ(roleFor(false, true), IterationRole::Last);
    EXPECT_EQ(roleFor(false, false), IterationRole::Middle);
    EXPECT_EQ(roleFor(true, true), IterationRole::Only);

    EXPECT_TRUE(roleStartsWithBarrier(IterationRole::First));
    EXPECT_TRUE(roleStartsWithBarrier(IterationRole::Only));
    EXPECT_FALSE(roleStartsWithBarrier(IterationRole::Middle));
    EXPECT_TRUE(roleEndsWithBarrier(IterationRole::Last));
    EXPECT_TRUE(roleEndsWithBarrier(IterationRole::Only));
    EXPECT_FALSE(roleEndsWithBarrier(IterationRole::First));
    EXPECT_STREQ(iterationRoleName(IterationRole::Middle), "middle");
}

// ----------------------------------------------------------------- codegen

TEST(Codegen, CompiledBlockMatchesInterpreter)
{
    // Build a little computation, run it through the interpreter and
    // through codegen + the simulated machine; results must agree.
    IrBuilder b;
    Operand i = Operand::var("i");
    Operand addr = b.emitAddr2D("A", i, Operand::constant(3), 8, 1);
    Operand v = b.emitLoad(addr, "A", false);
    Operand w = b.emitArith(TacOp::Mul, v, Operand::constant(5));
    Operand w2 = b.emitArith(TacOp::Sub, w, Operand::constant(1));
    Operand w3 = b.emitArith(TacOp::Div, w2, Operand::constant(2));
    b.emitStore(addr, w3, "A", false);
    Block body = b.take();

    // Interpreter.
    ir::InterpState st;
    st.vars["i"] = 2;
    st.bases["A"] = 50;
    st.memory.assign(256, 0);
    st.memory[50 + 2 * 8 + 3] = 9;
    interpret(body, st);

    // Machine.
    CodegenOptions opts;
    opts.baseAddresses = {{"A", 50}};
    opts.tag = 0;  // no synchronization
    CodeEmitter em(opts);
    em.emitPrologue();
    em.setVarConst("i", 2);
    em.emitBlock(body, 0);
    em.emitHalt();

    sim::MachineConfig cfg;
    cfg.numProcessors = 1;
    cfg.memWords = 256;
    sim::Machine machine(cfg);
    machine.memory().poke(50 + 2 * 8 + 3, 9);
    machine.loadProgram(0, em.finish());
    auto result = machine.run();
    EXPECT_FALSE(result.deadlocked);
    EXPECT_EQ(machine.memory().peek(50 + 2 * 8 + 3),
              st.memory[50 + 2 * 8 + 3]);
    EXPECT_EQ(st.memory[50 + 2 * 8 + 3], (9 * 5 - 1) / 2);
}

TEST(Codegen, RegionBitsFollowTacFlags)
{
    IrBuilder b;
    Operand t = b.emitArith(TacOp::Add, Operand::constant(1),
                            Operand::constant(2));
    b.mutableBlock().at(0).inRegion = true;
    b.emitCopy(Operand::var("x"), t);

    CodegenOptions opts;
    CodeEmitter em(opts);
    em.emitBlock(b.block());
    em.emitHalt();
    auto prog = em.finish();
    ASSERT_GE(prog.size(), 2u);
    EXPECT_TRUE(prog.at(0).inRegion);
    EXPECT_FALSE(prog.at(1).inRegion);
}

TEST(Codegen, CompileLoopRunsToCompletion)
{
    // sum = sum + k for k in 1..5, with loop control in the region.
    IrBuilder b;
    b.emitArithTo(Operand::var("sum"), TacOp::Add, Operand::var("sum"),
                  Operand::var("k"));
    b.mutableBlock().at(0).marked = true;

    LoopSpec spec;
    spec.counter = "k";
    spec.begin = 1;
    spec.limit = 6;
    spec.step = 1;
    spec.body = b.take();
    assignRegions(spec.body);
    spec.varInit = {{"sum", 0}};
    spec.epilogueStores = {{"sum", 200}};

    CodegenOptions opts;
    opts.tag = 1;
    opts.mask = 0b1;

    sim::MachineConfig cfg;
    cfg.numProcessors = 1;
    cfg.memWords = 1024;
    sim::Machine machine(cfg);
    machine.loadProgram(0, compileLoop(spec, opts));
    auto result = machine.run();
    EXPECT_FALSE(result.deadlocked);
    EXPECT_FALSE(result.timedOut);
    EXPECT_EQ(machine.memory().peek(200), 15);
}

TEST(Codegen, TempRegistersRecycle)
{
    // A long chain of temps would exhaust the register file if
    // last-use recycling failed.
    IrBuilder b;
    Operand acc = b.emitArith(TacOp::Add, Operand::constant(0),
                              Operand::constant(0));
    for (int k = 0; k < 120; ++k)
        acc = b.emitArith(TacOp::Add, acc, Operand::constant(1));
    b.emitCopy(Operand::var("out"), acc);

    CodegenOptions opts;
    CodeEmitter em(opts);
    em.emitBlock(b.block(), 0);
    em.storeVarTo("out", 100);
    em.emitHalt();

    sim::MachineConfig cfg;
    cfg.numProcessors = 1;
    cfg.memWords = 256;
    sim::Machine machine(cfg);
    machine.loadProgram(0, em.finish());
    machine.run();
    EXPECT_EQ(machine.memory().peek(100), 120);
}

TEST(Codegen, BranchVarNeZero)
{
    CodegenOptions opts;
    CodeEmitter em(opts);
    em.emitPrologue();
    em.setVarConst("x", 3);
    em.setVarConst("count", 0);
    em.label("top");
    em.addVarConst("count", 1);
    em.addVarConst("x", -1);
    em.branchVarNeZero("x", "top");
    em.storeVarTo("count", 100);
    em.emitHalt();

    sim::MachineConfig cfg;
    cfg.numProcessors = 1;
    cfg.memWords = 256;
    sim::Machine machine(cfg);
    machine.loadProgram(0, em.finish());
    machine.run();
    EXPECT_EQ(machine.memory().peek(100), 3);
}

} // namespace
} // namespace fb::compiler
