/**
 * @file
 * Tests for the section-9 extensions: procedure calls from barrier
 * regions (region inheritance) and interrupts/traps.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "isa/assembler.hh"
#include "sim/machine.hh"

namespace fb::sim
{
namespace
{

isa::Program
assembleOrDie(const std::string &src)
{
    isa::Program p;
    std::string err;
    if (!isa::Assembler::assemble(src, p, err))
        ADD_FAILURE() << "assembly failed: " << err;
    return p;
}

MachineConfig
config(int procs)
{
    MachineConfig cfg;
    cfg.numProcessors = procs;
    cfg.memWords = 4096;
    cfg.maxCycles = 2'000'000;
    return cfg;
}

// -------------------------------------------------------------------- CALL

TEST(Calls, CallAndReturn)
{
    Machine m(config(1));
    m.loadProgram(0, assembleOrDie(R"(
        li r1, 20
        call r27, double
        st r2, 100(r0)
        halt
    double:
        add r2, r1, r1
        ret r27
    )"));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_EQ(m.memory().peek(100), 40);
}

TEST(Calls, NestedCalls)
{
    Machine m(config(1));
    m.loadProgram(0, assembleOrDie(R"(
        li r1, 3
        call r27, f
        st r1, 100(r0)
        halt
    f:
        addi r1, r1, 10
        call r26, g
        ret r27
    g:
        addi r1, r1, 100
        ret r26
    )"));
    m.run();
    EXPECT_EQ(m.memory().peek(100), 113);
    EXPECT_EQ(m.processor(0).callDepth(), 0u);
}

TEST(Calls, RecursionWithMemoryStack)
{
    // sum(n) = n + sum(n-1), sum(0) = 0, via a software stack at 1024.
    Machine m(config(1));
    m.loadProgram(0, assembleOrDie(R"(
        li r20, 1024        ; stack pointer
        li r1, 5            ; n
        li r2, 0            ; accumulator
        call r27, sum
        st r2, 100(r0)
        halt
    sum:
        beq r1, r0, done
        st r27, 0(r20)      ; push return address
        addi r20, r20, 1
        add r2, r2, r1
        addi r1, r1, -1
        call r27, sum
        addi r20, r20, -1
        ld r27, 0(r20)      ; pop return address
    done:
        ret r27
    )"));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(m.memory().peek(100), 15);
}

TEST(Calls, CallFromRegionInheritsRegionStatus)
{
    // Alternating-phase load (equal totals, per-iteration drift of 30
    // instructions). The barrier region's content is one procedure
    // CALL; with region inheritance the 40-instruction callee absorbs
    // the drift exactly as inline region code would.
    auto make = [](int phase, bool call_in_region) {
        std::ostringstream oss;
        oss << "settag 1\nsetmask 3\n";
        oss << "li r1, 0\nli r2, 8\n";
        oss << "li r7, 1\nli r8, " << phase << "\n";
        oss << "loop:\n";
        oss << "and r6, r1, r7\n";
        oss << "bne r6, r8, light\n";
        for (int k = 0; k < 30; ++k)
            oss << "addi r3, r3, 1\n";
        oss << "light:\n";
        oss << "addi r3, r3, 1\n";
        if (call_in_region) {
            oss << ".region 1\n";
            oss << "call r27, helper\n";
            oss << "addi r1, r1, 1\n";
            oss << "bne r1, r2, loop\n";
            oss << ".endregion\n";
        } else {
            // Baseline: same callee executed as non-barrier work, a
            // point barrier carries the synchronization.
            oss << "call r27, helper\n";
            oss << ".region 1\nnop\n.endregion\n";
            oss << "addi r1, r1, 1\n";
            oss << "bne r1, r2, loop\n";
        }
        oss << "st r3, 100(r0)\nhalt\n";
        oss << "helper:\n";
        for (int k = 0; k < 40; ++k)
            oss << "addi r4, r4, 1\n";
        oss << "ret r27\n";
        return oss.str();
    };

    auto run = [&](bool call_in_region) {
        Machine m(config(2));
        m.loadProgram(0, assembleOrDie(make(0, call_in_region)));
        m.loadProgram(1, assembleOrDie(make(1, call_in_region)));
        auto r = m.run();
        EXPECT_FALSE(r.deadlocked) << r.deadlockInfo;
        EXPECT_FALSE(r.timedOut);
        EXPECT_EQ(r.syncEvents, 8u);
        EXPECT_EQ(m.checkSafetyProperty(), "");
        return r;
    };

    auto inherited = run(true);
    auto baseline = run(false);
    // The inherited-region callee fully absorbs the 30-cycle drift...
    EXPECT_EQ(inherited.perProcessor[0].stalledEpisodes, 0u);
    EXPECT_EQ(inherited.perProcessor[1].stalledEpisodes, 0u);
    // ...while the point-barrier baseline stalls constantly.
    EXPECT_GT(baseline.totalBarrierWait(),
              inherited.totalBarrierWait() + 100);
}

TEST(Calls, CalleeDoesNotCrossBarrier)
{
    // The callee contains plain (non-region-bit) instructions; called
    // from inside a region they must NOT count as crossing the
    // barrier. If they did, the barrier would complete early and the
    // partner's dependent store order would break — detectable via
    // episode counts.
    Machine m(config(2));
    const std::string src = R"(
        settag 1
        setmask 3
        nop
    .region 1
        call r27, helper
    .endregion
        nop                 ; the real crossing happens here
        halt
    helper:
        addi r4, r4, 1
        addi r4, r4, 1
        ret r27
    )";
    m.loadProgram(0, assembleOrDie(src));
    m.loadProgram(1, assembleOrDie(src));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_EQ(r.syncEvents, 1u);
    EXPECT_EQ(m.checkSafetyProperty(), "");
}

TEST(Calls, CallFromNonRegionStaysNonRegion)
{
    // A call outside any region must not arm the barrier.
    Machine m(config(1));
    m.loadProgram(0, assembleOrDie(R"(
        settag 1
        setmask 1
        call r27, f
        halt
    f:
        addi r1, r1, 1
        ret r27
    )"));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_EQ(r.perProcessor[0].barrierEpisodes, 0u);
}

TEST(Calls, MarkerEncodingPreservesCallInheritance)
{
    const std::string src = R"(
        settag 1
        setmask 3
        nop
    .region 1
        call r27, helper
        addi r1, r1, 1
    .endregion
        st r1, 100(r0)
        halt
    helper:
        addi r1, r1, 5
        ret r27
    )";
    Machine bits(config(2));
    bits.loadProgram(0, assembleOrDie(src));
    bits.loadProgram(1, assembleOrDie(src));
    auto rb = bits.run();

    Machine markers(config(2));
    markers.loadProgram(0, assembleOrDie(src).toMarkerEncoding());
    markers.loadProgram(1, assembleOrDie(src).toMarkerEncoding());
    auto rm = markers.run();

    EXPECT_FALSE(rb.deadlocked);
    EXPECT_FALSE(rm.deadlocked);
    EXPECT_EQ(rb.syncEvents, rm.syncEvents);
    EXPECT_EQ(bits.memory().peek(100), markers.memory().peek(100));
    EXPECT_EQ(bits.memory().peek(100), 6);
}

// -------------------------------------------------------------- interrupts

TEST(Interrupts, TimerInterruptFires)
{
    MachineConfig cfg = config(1);
    cfg.interruptPeriod = 50;

    // Main program: long busy loop. ISR at label isr: bumps word 200.
    const std::string src = R"(
        li r1, 0
        li r2, 300
    loop:
        addi r1, r1, 1
        bne r1, r2, loop
        halt
    isr:
        ld r10, 200(r0)
        addi r10, r10, 1
        st r10, 200(r0)
        iret
    )";
    auto prog = assembleOrDie(src);
    cfg.isrEntry =
        static_cast<std::int64_t>(prog.labelIndex("isr").value());
    Machine m(cfg);
    m.loadProgram(0, std::move(prog));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.perProcessor[0].interruptsTaken, 5u);
    EXPECT_EQ(m.memory().peek(200),
              static_cast<std::int64_t>(
                  r.perProcessor[0].interruptsTaken));
}

TEST(Interrupts, DisabledByDefault)
{
    Machine m(config(1));
    m.loadProgram(0, assembleOrDie("nop\nnop\nhalt\n"));
    auto r = m.run();
    EXPECT_EQ(r.perProcessor[0].interruptsTaken, 0u);
}

TEST(Interrupts, ServicedWhileStalledAtBarrier)
{
    // Processor 0 reaches the barrier long before processor 1 and
    // stalls; timer interrupts keep firing during the stall, so the
    // stalled processor does useful ISR work while it waits — and the
    // barrier still synchronizes correctly afterwards.
    // The machine config holds one ISR entry index for all
    // processors, so both run the same program text; the per-CPU work
    // imbalance is passed in register r5 before the run.
    MachineConfig cfg = config(2);
    cfg.interruptPeriod = 40;

    const std::string src = R"(
        settag 1
        setmask 3
        li r1, 0
        li r2, 4
    loop:
        li r6, 0
    work:
        addi r3, r3, 1
        addi r6, r6, 1
        bne r6, r5, work
    .region 1
        nop
    .endregion
        addi r1, r1, 1
        bne r1, r2, loop
        halt
    isr:
        li r10, 1
        faa r9, 200(r0), r10
        iret
    )";
    auto prog = assembleOrDie(src);
    MachineConfig run_cfg = cfg;
    run_cfg.isrEntry =
        static_cast<std::int64_t>(prog.labelIndex("isr").value());
    Machine m(run_cfg);
    m.loadProgram(0, prog);
    m.loadProgram(1, prog);
    m.processor(0).setReg(5, 2);    // fast
    m.processor(1).setReg(5, 120);  // slow
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked) << r.deadlockInfo;
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.syncEvents, 4u);
    EXPECT_EQ(m.checkSafetyProperty(), "");
    // The fast processor stalled...
    EXPECT_GT(r.perProcessor[0].stalledEpisodes, 0u);
    // ...and serviced interrupts while doing so.
    EXPECT_GT(r.perProcessor[0].interruptsTaken, 3u);
    EXPECT_EQ(m.memory().peek(200),
              static_cast<std::int64_t>(
                  r.perProcessor[0].interruptsTaken +
                  r.perProcessor[1].interruptsTaken));
}

TEST(Interrupts, IsrDoesNotCrossBarrier)
{
    // An ISR running while the unit is armed must not count as
    // crossing: the barrier episode completes only via the stream's
    // own non-region instruction.
    MachineConfig cfg = config(2);
    cfg.interruptPeriod = 10;
    const std::string src = R"(
        settag 1
        setmask 3
        li r5, 60
        li r6, 0
    work:
        addi r6, r6, 1
        bne r6, r5, work
    .region 1
        nop
    .endregion
        st r6, 100(r0)
        halt
    isr:
        addi r10, r10, 1
        iret
    )";
    auto prog = assembleOrDie(src);
    cfg.isrEntry =
        static_cast<std::int64_t>(prog.labelIndex("isr").value());
    Machine m(cfg);
    m.loadProgram(0, prog);
    m.loadProgram(1, prog);
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_EQ(r.syncEvents, 1u);
    EXPECT_EQ(m.checkSafetyProperty(), "");
    EXPECT_GT(r.perProcessor[0].interruptsTaken, 0u);
}

} // namespace
} // namespace fb::sim
