/**
 * @file
 * Randomized property tests: structurally valid random programs must
 * never deadlock, must satisfy the barrier safety condition, and must
 * behave identically under the region-bit and marker encodings and
 * under different pipeline depths.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "support/random.hh"

namespace fb::sim
{
namespace
{

isa::Program
assembleOrDie(const std::string &src)
{
    isa::Program p;
    std::string err;
    if (!isa::Assembler::assemble(src, p, err))
        ADD_FAILURE() << "assembly failed: " << err << "\n" << src;
    return p;
}

/**
 * Generate a structurally valid fuzzy-barrier stream: a loop whose
 * body is a random non-barrier work section (optionally with an
 * if/else of different path lengths) followed by a barrier region of
 * random size (optionally containing its own if/else), with the loop
 * control inside the region. Every processor generated with the same
 * @p episodes count is compatible.
 */
std::string
randomStream(RandomSource &rng, int procs, int episodes)
{
    std::ostringstream oss;
    oss << "settag 1\n";
    oss << "setmask " << ((1ull << procs) - 1) << "\n";
    oss << "li r1, 0\n";
    oss << "li r2, " << episodes << "\n";
    oss << "li r7, 1\n";
    // Per-processor LCG seed for data-dependent branches.
    oss << "li r10, " << (1 + rng.nextBounded(100000)) << "\n";
    oss << "li r11, 16\n";
    oss << "loop:\n";

    // Non-barrier work. At least one instruction must separate the
    // backedge's region from the next iteration's region, or every
    // iteration merges into a single barrier episode (the null
    // non-barrier region hazard — a real property, but fatal to a
    // stream whose partners expect one episode per iteration).
    int work = 1 + static_cast<int>(rng.nextBounded(11));
    for (int k = 0; k < work; ++k)
        oss << "addi r3, r3, 1\n";

    if (rng.nextBool(0.5)) {
        // Data-dependent if/else in the non-barrier section.
        oss << "muli r10, r10, 1103515245\n";
        oss << "addi r10, r10, 12345\n";
        oss << "shr r13, r10, r11\n";
        oss << "and r13, r13, r7\n";
        oss << "beq r13, r0, nb_else\n";
        int then_len = 1 + static_cast<int>(rng.nextBounded(8));
        for (int k = 0; k < then_len; ++k)
            oss << "addi r4, r4, 1\n";
        oss << "jmp nb_endif\n";
        oss << "nb_else:\n";
        oss << "addi r4, r4, 1\n";
        oss << "nb_endif:\n";
    }

    oss << ".region 1\n";
    int region = static_cast<int>(rng.nextBounded(10));
    for (int k = 0; k < region; ++k)
        oss << "addi r5, r5, 1\n";
    if (rng.nextBool(0.4)) {
        // If/else entirely inside the barrier region (multiple exits
        // and entries within the region are legal, section 3).
        oss << "and r14, r1, r7\n";
        oss << "beq r14, r0, rg_else\n";
        int then_len = 1 + static_cast<int>(rng.nextBounded(6));
        for (int k = 0; k < then_len; ++k)
            oss << "addi r6, r6, 1\n";
        oss << "jmp rg_endif\n";
        oss << "rg_else:\n";
        oss << "addi r6, r6, 1\n";
        oss << "rg_endif:\n";
    }
    oss << "addi r1, r1, 1\n";
    oss << "bne r1, r2, loop\n";
    oss << ".endregion\n";

    oss << "st r3, " << 100 << "(r0)\n";
    oss << "st r4, " << 110 << "(r0)\n";
    oss << "st r5, " << 120 << "(r0)\n";
    oss << "halt\n";
    return oss.str();
}

struct Snapshot
{
    std::uint64_t syncEvents;
    bool deadlocked;
    bool timedOut;
    std::vector<std::int64_t> regs;  // r1..r6 of every processor
};

Snapshot
runPrograms(const std::vector<isa::Program> &programs, int pipeline,
            double jitter, std::uint64_t seed, int width = 1)
{
    MachineConfig cfg;
    cfg.numProcessors = static_cast<int>(programs.size());
    cfg.memWords = 4096;
    cfg.pipelineDepth = pipeline;
    cfg.jitterMean = jitter;
    cfg.seed = seed;
    cfg.issueWidth = width;
    cfg.maxCycles = 5'000'000;
    Machine m(cfg);
    for (std::size_t p = 0; p < programs.size(); ++p)
        m.loadProgram(static_cast<int>(p), programs[p]);
    auto r = m.run();

    Snapshot snap;
    snap.syncEvents = r.syncEvents;
    snap.deadlocked = r.deadlocked;
    snap.timedOut = r.timedOut;
    EXPECT_EQ(m.checkSafetyProperty(), "");
    for (int p = 0; p < cfg.numProcessors; ++p)
        for (int reg = 1; reg <= 6; ++reg)
            snap.regs.push_back(m.processor(p).reg(reg));
    return snap;
}

class RandomProgramFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomProgramFuzz, LivenessSafetyAndEncodingEquivalence)
{
    RandomSource rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
    const int procs = 2 + static_cast<int>(rng.nextBounded(5));
    const int episodes = 3 + static_cast<int>(rng.nextBounded(8));

    std::vector<isa::Program> bits;
    std::vector<isa::Program> markers;
    for (int p = 0; p < procs; ++p) {
        auto prog = assembleOrDie(randomStream(rng, procs, episodes));
        ASSERT_FALSE(prog.checkRegionBranches().has_value());
        markers.push_back(prog.toMarkerEncoding());
        bits.push_back(std::move(prog));
    }

    auto base = runPrograms(bits, 1, 0.0, 1);
    EXPECT_FALSE(base.deadlocked);
    EXPECT_FALSE(base.timedOut);
    EXPECT_EQ(base.syncEvents, static_cast<std::uint64_t>(episodes));

    // Marker encoding: identical behaviour.
    auto marked = runPrograms(markers, 1, 0.0, 1);
    EXPECT_FALSE(marked.deadlocked);
    EXPECT_EQ(marked.syncEvents, base.syncEvents);
    EXPECT_EQ(marked.regs, base.regs);

    // Pipelining changes timing, never results.
    auto piped = runPrograms(bits, 4, 0.0, 1);
    EXPECT_FALSE(piped.deadlocked);
    EXPECT_EQ(piped.syncEvents, base.syncEvents);
    EXPECT_EQ(piped.regs, base.regs);

    // Drift changes timing, never results.
    auto drifted = runPrograms(bits, 1, 2.0, 99);
    EXPECT_FALSE(drifted.deadlocked);
    EXPECT_EQ(drifted.syncEvents, base.syncEvents);
    EXPECT_EQ(drifted.regs, base.regs);

    // VLIW-style multi-issue changes timing, never results.
    auto wide = runPrograms(bits, 1, 0.0, 1, 4);
    EXPECT_FALSE(wide.deadlocked);
    EXPECT_EQ(wide.syncEvents, base.syncEvents);
    EXPECT_EQ(wide.regs, base.regs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramFuzz,
                         ::testing::Range(0, 24));

} // namespace
} // namespace fb::sim
