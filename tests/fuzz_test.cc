/**
 * @file
 * Randomized property tests over the fb::verify differential
 * subsystem: structurally valid random programs must never deadlock,
 * must satisfy the barrier safety condition, and must behave
 * identically under the region-bit and marker encodings, pipeline
 * depths, stall models, jitter, and VLIW multi-issue — plus agree
 * with the real-thread swbarrier reference implementations.
 *
 * The generator and executors live in src/verify/ (shared with the
 * fbfuzz driver); this suite pins a fixed seed range so CI failures
 * name a seed that reproduces locally with `fbfuzz --seed S --runs 1`.
 */

#include <gtest/gtest.h>

#include "verify/differ.hh"
#include "verify/generator.hh"

namespace fb::verify
{
namespace
{

class RandomProgramFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomProgramFuzz, DifferentialMatrixAgrees)
{
    const auto seed =
        static_cast<std::uint64_t>(GetParam()) * 7919 + 3;
    ProgramSpec spec = randomSpec(seed);
    Scenario sc = render(spec);

    DiffReport rep = runDifferential(sc);
    EXPECT_TRUE(rep.ok)
        << "seed " << seed << ", executor '" << rep.variant
        << "': " << rep.failure << "\nreproducer:\n"
        << sc.toReproducer();
    EXPECT_GE(rep.variantsRun, 7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramFuzz,
                         ::testing::Range(0, 24));

} // namespace
} // namespace fb::verify
