/**
 * @file
 * Tests for the cross-processor dependence analysis: the paper's
 * workloads must classify exactly as sections 4 and 7.2 describe, and
 * the derived marks must reproduce the hand-marked regions.
 */

#include <gtest/gtest.h>

#include "compiler/depanalysis.hh"
#include "compiler/region.hh"
#include "compiler/reorder.hh"
#include "core/workloads.hh"
#include "ir/builder.hh"

namespace fb::compiler
{
namespace
{

using ir::IrBuilder;
using ir::Operand;
using ir::TacOp;

TEST(DepAnalysis, PoissonIsLoopCarriedOnly)
{
    // Fig. 3/4: every neighbor access crosses processors; since the
    // loads textually precede the store, the values must come from
    // the previous outer iteration — loop carried, no lexically
    // forward dependences.
    core::PoissonWorkload wl(2);
    auto body = wl.naiveBody();
    auto analysis = analyzeCrossDeps(body, {"k"}, {"i", "j"});

    ASSERT_EQ(analysis.deps.size(), 4u);  // the store x 4 neighbor loads
    EXPECT_TRUE(analysis.needsLoopCarriedBarrier());
    EXPECT_FALSE(analysis.needsLexForwardBarrier());
    for (const auto &d : analysis.deps)
        EXPECT_EQ(d.cls, DepClass::LoopCarried);
}

TEST(DepAnalysis, PoissonMarksMatchHandMarks)
{
    core::PoissonWorkload wl(2);
    auto hand = wl.naiveBody();
    auto derived = wl.naiveBody();
    clearMarks(derived);

    auto analysis = analyzeCrossDeps(derived, {"k"}, {"i", "j"});
    std::size_t n = markFromAnalysis(derived, analysis);
    EXPECT_EQ(n, 5u);
    for (std::size_t i = 0; i < hand.size(); ++i)
        EXPECT_EQ(derived.at(i).marked, hand.at(i).marked) << "instr " << i;

    // And the derived marks produce the same regions after reorder.
    auto hand_result = threePhaseReorder(hand);
    auto derived_result = threePhaseReorder(derived);
    EXPECT_EQ(hand_result.regions.nonBarrierSize(),
              derived_result.regions.nonBarrierSize());
}

TEST(DepAnalysis, LexForwardNeedsBothBarriers)
{
    // Figs. 8/9: a[j][i] = a[j-1][i-1] + i*j unrolled by two has a
    // lexically forward dependence (S2 reads a[j][i-1] written by S1
    // on the neighboring processor) and loop-carried dependences.
    core::LexForwardWorkload wl(4, 10);
    auto body = wl.naiveBody();
    auto analysis = analyzeCrossDeps(body, {"j"}, {"i"});

    EXPECT_TRUE(analysis.needsLoopCarriedBarrier());
    EXPECT_TRUE(analysis.needsLexForwardBarrier());

    // The lexically forward pair: store a[j][i] (statement 1) -> load
    // a[j][i-1] (statement 2).
    bool found = false;
    for (const auto &d : analysis.deps) {
        if (d.cls == DepClass::LexicallyForward) {
            EXPECT_LT(d.storeIdx, d.loadIdx);
            EXPECT_EQ(d.procDistance, 1);
            EXPECT_EQ(d.seqDistance, 0);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(DepAnalysis, PrivateAccessIsIntra)
{
    // A processor reading back exactly what it wrote, same iteration:
    // no barrier required.
    IrBuilder b;
    Operand addr = b.emitAddr2DSub("t", "i", 0, "j", 0, 8, 1);
    b.emitStore(addr, Operand::constant(1), "t", false);
    Operand addr2 = b.emitAddr2DSub("t", "i", 0, "j", 0, 8, 1);
    b.emitLoad(addr2, "t", false);
    auto block = b.take();

    auto analysis = analyzeCrossDeps(block, {"k"}, {"i", "j"});
    ASSERT_EQ(analysis.deps.size(), 1u);
    EXPECT_EQ(analysis.deps[0].cls, DepClass::Intra);
    EXPECT_FALSE(analysis.needsLoopCarriedBarrier());
    EXPECT_FALSE(analysis.needsLexForwardBarrier());
    EXPECT_TRUE(analysis.crossInstructions().empty());
}

TEST(DepAnalysis, SequentialDistanceIsCarried)
{
    // store a[k][i], load a[k-1][i]: same processor column but the
    // value crosses outer iterations of the sequential loop k —
    // loop carried (the consumer may be scheduled on any processor
    // next iteration under dynamic scheduling; treated as carried).
    IrBuilder b;
    Operand laddr = b.emitAddr2DSub("a", "k", -1, "i", 0, 16, 1);
    b.emitLoad(laddr, "a", false);
    Operand saddr = b.emitAddr2DSub("a", "k", 0, "i", 0, 16, 1);
    b.emitStore(saddr, Operand::constant(3), "a", false);
    auto block = b.take();

    auto analysis = analyzeCrossDeps(block, {"k"}, {"i"});
    ASSERT_EQ(analysis.deps.size(), 1u);
    EXPECT_EQ(analysis.deps[0].cls, DepClass::LoopCarried);
    EXPECT_EQ(analysis.deps[0].seqDistance, 1);
}

TEST(DepAnalysis, UnknownSubscriptIsConservative)
{
    // Accesses without structured subscripts on a shared array are
    // classified loop-carried.
    IrBuilder b;
    Operand addr = b.newTemp();
    b.emitCopy(addr, Operand::constant(64));
    b.emitStore(addr, Operand::constant(1), "shared", false);
    b.emitLoad(addr, "shared", false);
    auto block = b.take();

    auto analysis = analyzeCrossDeps(block, {"k"}, {"i"});
    ASSERT_EQ(analysis.deps.size(), 1u);
    EXPECT_EQ(analysis.deps[0].cls, DepClass::LoopCarried);
}

TEST(DepAnalysis, DifferentArraysIndependent)
{
    IrBuilder b;
    Operand a1 = b.emitAddr2DSub("a", "i", 0, "j", 0, 8, 1);
    b.emitStore(a1, Operand::constant(1), "a", false);
    Operand a2 = b.emitAddr2DSub("b", "i", 0, "j", 1, 8, 1);
    b.emitLoad(a2, "b", false);
    auto block = b.take();
    auto analysis = analyzeCrossDeps(block, {"k"}, {"i", "j"});
    EXPECT_TRUE(analysis.deps.empty());
}

TEST(DepAnalysis, ClassNames)
{
    EXPECT_STREQ(depClassName(DepClass::Intra), "intra");
    EXPECT_STREQ(depClassName(DepClass::LexicallyForward),
                 "lexically-forward");
    EXPECT_STREQ(depClassName(DepClass::LoopCarried), "loop-carried");
}

} // namespace
} // namespace fb::compiler
