/**
 * @file
 * Unit tests for the ISA: opcodes, instructions, programs, assembler.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/instruction.hh"
#include "isa/opcode.hh"
#include "isa/program.hh"

namespace fb::isa
{
namespace
{

// ------------------------------------------------------------------ Opcodes

TEST(Opcode, NameRoundTrip)
{
    for (int i = 0; i <= static_cast<int>(Opcode::HALT); ++i) {
        auto op = static_cast<Opcode>(i);
        Opcode back;
        ASSERT_TRUE(opcodeFromName(opcodeName(op), back))
            << opcodeName(op);
        EXPECT_EQ(back, op);
    }
}

TEST(Opcode, UnknownNameRejected)
{
    Opcode op;
    EXPECT_FALSE(opcodeFromName("bogus", op));
}

TEST(Opcode, Classification)
{
    EXPECT_TRUE(isBranch(Opcode::BEQ));
    EXPECT_TRUE(isBranch(Opcode::JMP));
    EXPECT_FALSE(isBranch(Opcode::ADD));
    EXPECT_TRUE(isMemory(Opcode::LD));
    EXPECT_TRUE(isMemory(Opcode::ST));
    EXPECT_FALSE(isMemory(Opcode::NOP));
}

TEST(Opcode, Latencies)
{
    EXPECT_EQ(baseLatency(Opcode::ADD), 1);
    EXPECT_GT(baseLatency(Opcode::MUL), 1);
    EXPECT_GT(baseLatency(Opcode::DIV), baseLatency(Opcode::MUL));
}

// ------------------------------------------------------------- Instruction

TEST(Instruction, BuildersSetFields)
{
    auto add = Instruction::rrr(Opcode::ADD, 1, 2, 3);
    EXPECT_EQ(add.op, Opcode::ADD);
    EXPECT_EQ(add.rd, 1);
    EXPECT_EQ(add.rs1, 2);
    EXPECT_EQ(add.rs2, 3);
    EXPECT_FALSE(add.inRegion);

    auto ld = Instruction::ld(4, 5, -8);
    EXPECT_EQ(ld.op, Opcode::LD);
    EXPECT_EQ(ld.imm, -8);

    auto st = Instruction::st(6, 16, 7);
    EXPECT_EQ(st.rs1, 6);
    EXPECT_EQ(st.rs2, 7);
    EXPECT_EQ(st.imm, 16);

    auto b = Instruction::branch(Opcode::BNE, 1, 2, 10);
    EXPECT_EQ(b.imm, 10);
}

TEST(Instruction, RegionChaining)
{
    auto i = Instruction::simple(Opcode::NOP).region();
    EXPECT_TRUE(i.inRegion);
    EXPECT_NE(i.toString().find("[region]"), std::string::npos);
}

TEST(Instruction, ToStringForms)
{
    EXPECT_EQ(Instruction::rrr(Opcode::ADD, 1, 2, 3).toString(),
              "add r1, r2, r3");
    EXPECT_EQ(Instruction::li(2, -5).toString(), "li r2, -5");
    EXPECT_EQ(Instruction::ld(1, 2, 8).toString(), "ld r1, 8(r2)");
    EXPECT_EQ(Instruction::st(2, 8, 1).toString(), "st r1, 8(r2)");
    EXPECT_EQ(Instruction::jmp(7).toString(), "jmp 7");
    EXPECT_EQ(Instruction::settag(3).toString(), "settag 3");
    EXPECT_EQ(Instruction::simple(Opcode::HALT).toString(), "halt");
}

// ------------------------------------------------------------------ Program

TEST(Program, LabelsResolve)
{
    Program p;
    p.defineLabel("top");
    p.append(Instruction::li(1, 0));
    p.appendBranchTo(Opcode::BEQ, 1, 0, "end");
    p.appendJumpTo("top");
    p.defineLabel("end");
    p.append(Instruction::simple(Opcode::HALT));
    p.finalize();

    EXPECT_EQ(p.labelIndex("top").value(), 0u);
    EXPECT_EQ(p.labelIndex("end").value(), 3u);
    EXPECT_EQ(p.at(1).imm, 3);
    EXPECT_EQ(p.at(2).imm, 0);
    EXPECT_FALSE(p.labelIndex("missing").has_value());
}

TEST(Program, TrailingLabelBindsPastEnd)
{
    Program p;
    p.appendJumpTo("end");
    p.defineLabel("end");
    p.finalize();
    EXPECT_EQ(p.at(0).imm, 1);
}

TEST(Program, RegionRuns)
{
    Program p;
    p.append(Instruction::li(1, 0));                              // 0
    p.append(Instruction::simple(Opcode::NOP).region(), 1);       // 1
    p.append(Instruction::simple(Opcode::NOP).region(), 1);       // 2
    p.append(Instruction::li(2, 0));                              // 3
    p.append(Instruction::simple(Opcode::NOP).region(), 2);       // 4
    p.finalize();

    auto runs = p.regionRuns();
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[0].first, 1u);
    EXPECT_EQ(runs[0].last, 2u);
    EXPECT_EQ(runs[0].barrierId, 1);
    EXPECT_EQ(runs[1].first, 4u);
    EXPECT_EQ(runs[1].last, 4u);
    EXPECT_EQ(runs[1].barrierId, 2);
    EXPECT_DOUBLE_EQ(p.regionFraction(), 3.0 / 5.0);
}

TEST(Program, RegionFractionEmpty)
{
    Program p;
    p.finalize();
    EXPECT_DOUBLE_EQ(p.regionFraction(), 0.0);
}

TEST(Program, ValidRegionBranchesAccepted)
{
    // A loop whose barrier region spans the backedge: branch from the
    // region's tail back to region code with the SAME barrier id — the
    // legal pattern from Fig. 4 of the paper.
    Program p;
    p.defineLabel("top");
    p.append(Instruction::simple(Opcode::NOP).region(), 1);   // 0 region
    p.append(Instruction::li(1, 1));                          // 1 non-barrier
    p.append(Instruction::rri(Opcode::ADDI, 2, 2, 1).region(), 1); // 2
    p.appendBranchTo(Opcode::BNE, 2, 3, "top", 1);            // 3 region
    p.at(3).inRegion = true;
    p.append(Instruction::simple(Opcode::HALT));              // 4
    p.finalize();
    EXPECT_FALSE(p.checkRegionBranches().has_value());
}

TEST(Program, InvalidBranchBetweenBarriersDetected)
{
    // Fig. 2: a branch transfers control directly from barrier 1's
    // region into barrier 2's region.
    Program p;
    p.append(Instruction::simple(Opcode::NOP).region(), 1);   // 0
    p.appendJumpTo("other", 1);                               // 1
    p.at(1).inRegion = true;
    p.append(Instruction::li(1, 0));                          // 2
    p.defineLabel("other");
    p.append(Instruction::simple(Opcode::NOP).region(), 2);   // 3
    p.append(Instruction::simple(Opcode::HALT));              // 4
    p.finalize();
    auto err = p.checkRegionBranches();
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("invalid branch"), std::string::npos);
}

TEST(Program, AdjacentDistinctRegionsDetectedViaFallthrough)
{
    Program p;
    p.append(Instruction::simple(Opcode::NOP).region(), 1);
    p.append(Instruction::simple(Opcode::NOP).region(), 2);
    p.finalize();
    EXPECT_TRUE(p.checkRegionBranches().has_value());
}

TEST(Program, MarkerEncodingInsertsMarkers)
{
    Program p;
    p.append(Instruction::li(1, 0));                           // 0
    p.append(Instruction::simple(Opcode::NOP).region(), 1);    // 1
    p.append(Instruction::simple(Opcode::NOP).region(), 1);    // 2
    p.append(Instruction::li(2, 0));                           // 3
    p.finalize();

    Program m = p.toMarkerEncoding();
    // li, BRENTER, nop, nop, BREXIT, li
    ASSERT_EQ(m.size(), 6u);
    EXPECT_EQ(m.at(0).op, Opcode::LI);
    EXPECT_EQ(m.at(1).op, Opcode::BRENTER);
    EXPECT_EQ(m.at(2).op, Opcode::NOP);
    EXPECT_EQ(m.at(4).op, Opcode::BREXIT);
    EXPECT_EQ(m.at(5).op, Opcode::LI);
    for (std::size_t i = 0; i < m.size(); ++i)
        EXPECT_FALSE(m.at(i).inRegion);
}

TEST(Program, MarkerEncodingRepointsBranches)
{
    Program p;
    p.defineLabel("top");
    p.append(Instruction::li(1, 0));                           // 0
    p.append(Instruction::simple(Opcode::NOP).region(), 1);    // 1
    p.appendBranchTo(Opcode::BEQ, 1, 0, "top");                // 2
    p.append(Instruction::simple(Opcode::HALT));               // 3
    p.finalize();

    Program m = p.toMarkerEncoding();
    // Branch targets get a marker matching their regionness so the
    // dynamic flag is correct along every incoming edge:
    // BREXIT, li, BRENTER, nop, BREXIT, beq, halt — beq targets the
    // BREXIT at index 0.
    ASSERT_EQ(m.size(), 7u);
    EXPECT_EQ(m.at(0).op, Opcode::BREXIT);
    EXPECT_EQ(m.at(5).op, Opcode::BEQ);
    EXPECT_EQ(m.at(5).imm, 0);
}

TEST(Program, MarkerEncodingRegionSpanningBackedge)
{
    // A loop whose barrier region spans the backedge (the Fig. 4
    // shape): the loop-top work must be reached through a BREXIT so
    // the marker flag clears on the taken path too.
    Program p;
    p.defineLabel("top");
    p.append(Instruction::rri(Opcode::ADDI, 3, 3, 1));             // work
    p.append(Instruction::rri(Opcode::ADDI, 1, 1, 1).region(), 1); // region
    p.appendBranchTo(Opcode::BNE, 1, 2, "top", 1);                 // region
    p.at(2).inRegion = true;
    p.append(Instruction::simple(Opcode::HALT));
    p.finalize();

    Program m = p.toMarkerEncoding();
    // BREXIT, addi, BRENTER, addi, bne->0, BREXIT, halt
    ASSERT_EQ(m.size(), 7u);
    EXPECT_EQ(m.at(0).op, Opcode::BREXIT);
    EXPECT_EQ(m.at(2).op, Opcode::BRENTER);
    EXPECT_EQ(m.at(4).op, Opcode::BNE);
    EXPECT_EQ(m.at(4).imm, 0);
    EXPECT_EQ(m.at(5).op, Opcode::BREXIT);
}

TEST(Program, MarkerEncodingTrailingRegionClosed)
{
    Program p;
    p.append(Instruction::simple(Opcode::NOP).region(), 1);
    p.finalize();
    Program m = p.toMarkerEncoding();
    ASSERT_EQ(m.size(), 3u);
    EXPECT_EQ(m.at(0).op, Opcode::BRENTER);
    EXPECT_EQ(m.at(2).op, Opcode::BREXIT);
}

TEST(Program, ToStringShowsLabels)
{
    Program p;
    p.defineLabel("loop");
    p.append(Instruction::li(1, 3));
    p.finalize();
    std::string s = p.toString();
    EXPECT_NE(s.find("loop:"), std::string::npos);
    EXPECT_NE(s.find("li r1, 3"), std::string::npos);
}

// ---------------------------------------------------------------- Assembler

TEST(Assembler, RoundTrip)
{
    const std::string src = R"(
        ; a small stream
        settag 1
        setmask 3
        li   r1, 0
        li   r2, 10
    loop:
        add  r3, r3, r1
        ld   r4, 8(r5)
        st   r4, 0(r5)
    .region 1
        addi r1, r1, 1
        bne  r1, r2, loop
    .endregion
        halt
    )";
    Program p;
    std::string err;
    ASSERT_TRUE(Assembler::assemble(src, p, err)) << err;
    ASSERT_EQ(p.size(), 10u);
    EXPECT_EQ(p.at(0).op, Opcode::SETTAG);
    EXPECT_EQ(p.at(0).imm, 1);
    EXPECT_EQ(p.at(1).op, Opcode::SETMASK);
    EXPECT_EQ(p.at(5).op, Opcode::LD);
    EXPECT_EQ(p.at(5).imm, 8);
    EXPECT_TRUE(p.at(7).inRegion);
    EXPECT_TRUE(p.at(8).inRegion);
    EXPECT_EQ(p.barrierId(7), 1);
    EXPECT_FALSE(p.at(9).inRegion);
    // bne targets the loop label at index 4.
    EXPECT_EQ(p.at(8).imm, 4);
    EXPECT_FALSE(p.checkRegionBranches().has_value());
}

TEST(Assembler, CallRetIretRoundTrip)
{
    const std::string src = R"(
        call r27, func
        iret
    func:
        faa r1, 8(r2), r3
        ret r27
    )";
    Program p;
    std::string err;
    ASSERT_TRUE(Assembler::assemble(src, p, err)) << err;
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p.at(0).op, Opcode::CALL);
    EXPECT_EQ(p.at(0).rd, 27);
    EXPECT_EQ(p.at(0).imm, 2);  // func label
    EXPECT_EQ(p.at(1).op, Opcode::IRET);
    EXPECT_EQ(p.at(2).op, Opcode::FAA);
    EXPECT_EQ(p.at(3).op, Opcode::RET);
    EXPECT_EQ(p.at(3).rs1, 27);
    EXPECT_EQ(p.at(0).toString(), "call r27, 2");
    EXPECT_EQ(p.at(3).toString(), "ret r27");
}

TEST(Assembler, CallInRegionKeepsBit)
{
    Program p;
    std::string err;
    ASSERT_TRUE(Assembler::assemble(
        "nop\n.region 1\ncall r27, f\n.endregion\nhalt\nf:\nret r27\n",
        p, err))
        << err;
    EXPECT_TRUE(p.at(1).inRegion);
    EXPECT_EQ(p.barrierId(1), 1);
}

TEST(Assembler, ErrorMalformedCall)
{
    Program p;
    std::string err;
    EXPECT_FALSE(Assembler::assemble("call func\n", p, err));
    EXPECT_FALSE(Assembler::assemble("ret\n", p, err));
}

TEST(Program, MarkerEncodingRepointsCalls)
{
    Program p;
    p.append(Instruction::simple(Opcode::NOP).region(), 1);   // 0
    p.appendCallTo(27, "f");                                  // 1
    p.append(Instruction::simple(Opcode::HALT));              // 2
    p.defineLabel("f");
    p.append(Instruction::ret(27));                           // 3
    p.finalize();

    Program m = p.toMarkerEncoding();
    // BRENTER, nop, BREXIT, call, halt, ret — the call targets ret
    // directly (no marker: procedures inherit region status
    // dynamically).
    ASSERT_EQ(m.size(), 6u);
    EXPECT_EQ(m.at(3).op, Opcode::CALL);
    EXPECT_EQ(m.at(3).imm, 5);
    EXPECT_EQ(m.at(5).op, Opcode::RET);
}

TEST(Assembler, NumericBranchTarget)
{
    Program p;
    std::string err;
    ASSERT_TRUE(Assembler::assemble("jmp 0\nhalt\n", p, err)) << err;
    EXPECT_EQ(p.at(0).imm, 0);
}

TEST(Assembler, ErrorUnknownMnemonic)
{
    Program p;
    std::string err;
    EXPECT_FALSE(Assembler::assemble("frobnicate r1, r2\n", p, err));
    EXPECT_NE(err.find("line 1"), std::string::npos);
    EXPECT_NE(err.find("frobnicate"), std::string::npos);
}

TEST(Assembler, ErrorBadRegister)
{
    Program p;
    std::string err;
    EXPECT_FALSE(Assembler::assemble("add r1, r2, r99\n", p, err));
    EXPECT_FALSE(Assembler::assemble("add r1, r2\n", p, err));
}

TEST(Assembler, ErrorUndefinedLabel)
{
    Program p;
    std::string err;
    EXPECT_FALSE(Assembler::assemble("jmp nowhere\n", p, err));
    EXPECT_NE(err.find("nowhere"), std::string::npos);
}

TEST(Assembler, ErrorUnterminatedRegion)
{
    Program p;
    std::string err;
    EXPECT_FALSE(Assembler::assemble(".region 1\nnop\n", p, err));
    EXPECT_NE(err.find("unterminated"), std::string::npos);
}

TEST(Assembler, ErrorNestedRegion)
{
    Program p;
    std::string err;
    EXPECT_FALSE(
        Assembler::assemble(".region 1\n.region 2\n.endregion\n", p, err));
}

TEST(Assembler, ErrorEndRegionOutsideRegion)
{
    Program p;
    std::string err;
    EXPECT_FALSE(Assembler::assemble(".endregion\n", p, err));
}

TEST(Assembler, ErrorMalformedMemOperand)
{
    Program p;
    std::string err;
    EXPECT_FALSE(Assembler::assemble("ld r1, r2\n", p, err));
    EXPECT_FALSE(Assembler::assemble("ld r1, 4(r2\n", p, err));
}

TEST(Assembler, CommentsAndBlankLines)
{
    Program p;
    std::string err;
    ASSERT_TRUE(Assembler::assemble(
        "; full line comment\n\n   \nnop ; trailing\n", p, err))
        << err;
    EXPECT_EQ(p.size(), 1u);
}

TEST(Assembler, LabelOnOwnLine)
{
    Program p;
    std::string err;
    ASSERT_TRUE(Assembler::assemble("top:\n  jmp top\n", p, err)) << err;
    EXPECT_EQ(p.at(0).imm, 0);
}

TEST(Assembler, RegionBranchCarriesRegionBit)
{
    Program p;
    std::string err;
    ASSERT_TRUE(Assembler::assemble(
        "top:\nnop\n.region 1\nbne r1, r2, top\n.endregion\nhalt\n", p,
        err))
        << err;
    EXPECT_TRUE(p.at(1).inRegion);
}

} // namespace
} // namespace fb::isa
