/**
 * @file
 * Unit tests for the loop iteration schedulers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sched/schedule.hh"

namespace fb::sched
{
namespace
{

/** Every iteration appears exactly once. */
void
expectPartition(const Assignment &a, int iterations)
{
    std::set<int> seen;
    for (const auto &list : a) {
        for (int it : list) {
            EXPECT_GE(it, 0);
            EXPECT_LT(it, iterations);
            EXPECT_TRUE(seen.insert(it).second)
                << "iteration " << it << " assigned twice";
        }
    }
    EXPECT_EQ(static_cast<int>(seen.size()), iterations);
}

TEST(BlockSchedule, ContiguousChunks)
{
    auto a = blockSchedule(10, 3);
    expectPartition(a, 10);
    // ceil(10/3) = 4: loads 4,4,2.
    EXPECT_EQ(loadPerProcessor(a), (std::vector<int>{4, 4, 2}));
    // Each processor's share is contiguous and increasing.
    for (const auto &list : a)
        for (std::size_t k = 1; k < list.size(); ++k)
            EXPECT_EQ(list[k], list[k - 1] + 1);
}

TEST(BlockSchedule, ExactDivision)
{
    auto a = blockSchedule(12, 4);
    expectPartition(a, 12);
    EXPECT_EQ(maxLoad(a), 3);
    EXPECT_EQ(minLoad(a), 3);
}

TEST(BlockSchedule, MoreProcsThanIterations)
{
    auto a = blockSchedule(2, 5);
    expectPartition(a, 2);
    EXPECT_EQ(maxLoad(a), 1);
    EXPECT_EQ(minLoad(a), 0);
}

TEST(CyclicSchedule, RoundRobin)
{
    auto a = cyclicSchedule(7, 3);
    expectPartition(a, 7);
    EXPECT_EQ(a[0], (std::vector<int>{0, 3, 6}));
    EXPECT_EQ(a[1], (std::vector<int>{1, 4}));
    EXPECT_EQ(a[2], (std::vector<int>{2, 5}));
}

TEST(RotatingSchedule, ExtraIterationRotates)
{
    // Fig. 11: 4 iterations on 3 processors; the processor with 2
    // iterations changes with the outer index.
    for (int outer = 0; outer < 6; ++outer) {
        auto a = rotatingSchedule(4, 3, outer);
        expectPartition(a, 4);
        EXPECT_EQ(maxLoad(a), 2);
        EXPECT_EQ(minLoad(a), 1);
        // The heavy processor is outer % 3.
        for (int p = 0; p < 3; ++p) {
            EXPECT_EQ(static_cast<int>(a[static_cast<std::size_t>(p)]
                                           .size()),
                      p == outer % 3 ? 2 : 1)
                << "outer=" << outer << " p=" << p;
        }
    }
}

TEST(RotatingSchedule, BalancedOverFullRotation)
{
    // Over P consecutive outer iterations, every processor does the
    // same total work (the paper's equalization argument).
    std::vector<int> totals(3, 0);
    for (int outer = 0; outer < 3; ++outer) {
        auto a = rotatingSchedule(4, 3, outer);
        for (int p = 0; p < 3; ++p)
            totals[static_cast<std::size_t>(p)] +=
                static_cast<int>(a[static_cast<std::size_t>(p)].size());
    }
    EXPECT_EQ(totals, (std::vector<int>{4, 4, 4}));
}

TEST(ChunkSelfSchedule, FixedChunks)
{
    auto a = chunkSelfSchedule(10, 3, 2);
    expectPartition(a, 10);
    // Chunks of 2 dealt round-robin: p0 gets {0,1,6,7}, p1 {2,3,8,9},
    // p2 {4,5}.
    EXPECT_EQ(a[0], (std::vector<int>{0, 1, 6, 7}));
    EXPECT_EQ(a[1], (std::vector<int>{2, 3, 8, 9}));
    EXPECT_EQ(a[2], (std::vector<int>{4, 5}));
}

TEST(GuidedSelfSchedule, ChunksShrinkGeometrically)
{
    const int iters = 100;
    const int procs = 4;
    auto a = guidedSelfSchedule(iters, procs);
    expectPartition(a, iters);
    // First grab is ceil(100/4) = 25 contiguous iterations on p0.
    ASSERT_GE(a[0].size(), 25u);
    for (int k = 0; k < 25; ++k)
        EXPECT_EQ(a[0][static_cast<std::size_t>(k)], k);
    // GSS balances: completion-time spread is small.
    EXPECT_LE(maxLoad(a) - minLoad(a), 25);
}

TEST(GuidedSelfSchedule, SmallCounts)
{
    auto a = guidedSelfSchedule(3, 4);
    expectPartition(a, 3);
    auto b = guidedSelfSchedule(0, 4);
    EXPECT_EQ(totalAssigned(b), 0);
}

TEST(CostAwareChunk, BalancesFinishTimes)
{
    // Front-loaded costs: early iterations are 10x the late ones. The
    // first-to-finish-grabs model spreads the expensive prefix.
    std::vector<double> costs(20);
    for (int i = 0; i < 20; ++i)
        costs[static_cast<std::size_t>(i)] = i < 5 ? 10.0 : 1.0;
    auto a = chunkSelfSchedule(20, 4, 1, costs);
    expectPartition(a, 20);
    // Per-processor total cost must be within one max-iteration cost
    // of balanced (65 total / 4 ~ 16.25).
    for (const auto &list : a) {
        double total = 0;
        for (int it : list)
            total += costs[static_cast<std::size_t>(it)];
        EXPECT_LE(total, 65.0 / 4 + 10.0);
    }
}

TEST(CostAwareGss, PartitionsAndShrinks)
{
    std::vector<double> costs(30, 1.0);
    auto a = guidedSelfSchedule(30, 3, costs);
    expectPartition(a, 30);
    // First grab is ceil(30/3) = 10 contiguous iterations.
    ASSERT_GE(a[0].size(), 10u);
    for (int k = 0; k < 10; ++k)
        EXPECT_EQ(a[0][static_cast<std::size_t>(k)], k);
}

TEST(CostAwareGss, FirstToFinishGrabs)
{
    // Iterations 0..9 cost 1, so the first grabber finishes early and
    // grabs again before the slow grabber of the expensive chunk.
    std::vector<double> costs = {1, 1, 1, 50, 50, 50, 1, 1, 1, 1};
    auto a = guidedSelfSchedule(10, 2, costs);
    expectPartition(a, 10);
    // p0 grabs {0..4} (cost 103)? No: GSS chunk = ceil(10/2)=5 for p0,
    // then ceil(5/2)=3 for p1 (cost 52), then p1 finishes? p0 is at
    // 103 so p1 (52) grabs the rest.
    double c0 = 0, c1 = 0;
    for (int it : a[0])
        c0 += costs[static_cast<std::size_t>(it)];
    for (int it : a[1])
        c1 += costs[static_cast<std::size_t>(it)];
    // The cheap remainder must have gone to the less-loaded one.
    EXPECT_LE(std::max(c0, c1) - std::min(c0, c1), 103.0);
}

TEST(Helpers, Totals)
{
    auto a = blockSchedule(9, 2);
    EXPECT_EQ(totalAssigned(a), 9);
    EXPECT_EQ(maxLoad(a), 5);
    EXPECT_EQ(minLoad(a), 4);
}

// ---------------------------------------------------- property sweeps

struct SchedParam
{
    int iters;
    int procs;
};

class ScheduleSweep : public ::testing::TestWithParam<SchedParam>
{
};

TEST_P(ScheduleSweep, AllPoliciesPartition)
{
    auto [iters, procs] = GetParam();
    expectPartition(blockSchedule(iters, procs), iters);
    expectPartition(cyclicSchedule(iters, procs), iters);
    expectPartition(chunkSelfSchedule(iters, procs, 3), iters);
    expectPartition(guidedSelfSchedule(iters, procs), iters);
    for (int outer = 0; outer < 3; ++outer)
        expectPartition(rotatingSchedule(iters, procs, outer), iters);
}

TEST_P(ScheduleSweep, LoadBalanceBounds)
{
    auto [iters, procs] = GetParam();
    // Block, cyclic, and rotating are within 1 of perfectly balanced.
    for (const auto &a :
         {cyclicSchedule(iters, procs),
          rotatingSchedule(iters, procs, 1)}) {
        EXPECT_LE(maxLoad(a) - minLoad(a), 1);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ScheduleSweep,
    ::testing::Values(SchedParam{1, 1}, SchedParam{5, 2},
                      SchedParam{16, 4}, SchedParam{17, 4},
                      SchedParam{3, 8}, SchedParam{100, 7},
                      SchedParam{64, 64}),
    [](const ::testing::TestParamInfo<SchedParam> &info) {
        return "i" + std::to_string(info.param.iters) + "_p" +
               std::to_string(info.param.procs);
    });

} // namespace
} // namespace fb::sched
