/**
 * @file
 * Unit tests for the fb::verify subsystem: generator determinism and
 * validity, differential diff logic, reproducer round-trips, the
 * swbarrier reference runner, and the shrinker's guarantees.
 */

#include <gtest/gtest.h>

#include <set>

#include "isa/assembler.hh"
#include "verify/differ.hh"
#include "verify/generator.hh"
#include "verify/shrink.hh"

namespace fb::verify
{
namespace
{

// ------------------------------------------------------------- generator

TEST(Generator, SameSeedSameProgram)
{
    for (std::uint64_t seed : {1ull, 42ull, 987654321ull}) {
        ProgramSpec a = randomSpec(seed);
        ProgramSpec b = randomSpec(seed);
        ASSERT_EQ(a.procs(), b.procs());
        EXPECT_EQ(a.episodes, b.episodes);
        EXPECT_EQ(a.groupSizes, b.groupSizes);
        EXPECT_EQ(a.interruptPeriod, b.interruptPeriod);
        for (int p = 0; p < a.procs(); ++p)
            EXPECT_EQ(renderStream(a, p), renderStream(b, p));
        EXPECT_EQ(render(a).toReproducer(), render(b).toReproducer());
    }
}

TEST(Generator, DifferentSeedsDiffer)
{
    // Not a strict guarantee, but 1:1 collisions over 20 seeds would
    // mean the seed is not actually feeding the generator.
    std::set<std::string> rendered;
    for (std::uint64_t seed = 0; seed < 20; ++seed)
        rendered.insert(render(randomSpec(seed)).toReproducer());
    EXPECT_GT(rendered.size(), 15u);
}

TEST(Generator, GeneratedProgramsAlwaysAssemble)
{
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
        ProgramSpec spec = randomSpec(seed);
        Scenario sc = render(spec);
        ASSERT_EQ(sc.procs(), spec.procs());
        for (int p = 0; p < sc.procs(); ++p) {
            isa::Program prog;
            std::string err;
            ASSERT_TRUE(isa::Assembler::assemble(
                sc.sources[static_cast<std::size_t>(p)], prog, err))
                << "seed " << seed << " proc " << p << ": " << err;
            EXPECT_FALSE(prog.checkRegionBranches().has_value())
                << "seed " << seed << " proc " << p;
            // Marker conversion must be legal for every generated
            // program (regions entered only at their first instruction).
            EXPECT_GT(prog.toMarkerEncoding().size(), prog.size());
        }
    }
}

TEST(Generator, GroupPartitionIsContiguousAndCovering)
{
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        ProgramSpec spec = randomSpec(seed);
        int total = 0;
        for (int g : spec.groupSizes) {
            EXPECT_GE(g, 2);
            total += g;
        }
        EXPECT_EQ(total, spec.procs());
        for (int p = 1; p < spec.procs(); ++p)
            EXPECT_GE(spec.groupOf(p), spec.groupOf(p - 1));
        // Masks of the same group match; different groups are disjoint.
        for (int p = 0; p < spec.procs(); ++p)
            for (int q = 0; q < spec.procs(); ++q) {
                if (spec.groupOf(p) == spec.groupOf(q))
                    EXPECT_EQ(spec.maskOf(p), spec.maskOf(q));
                else
                    EXPECT_EQ(spec.maskOf(p) & spec.maskOf(q), 0u);
            }
    }
}

// ---------------------------------------------------------------- differ

TEST(Differ, CleanScenarioPasses)
{
    Scenario sc = render(randomSpec(7));
    DiffReport rep = runDifferential(sc);
    EXPECT_TRUE(rep.ok) << rep.variant << ": " << rep.failure;
    EXPECT_GE(rep.variantsRun, 7);
    EXPECT_FALSE(rep.baseline.deadlocked);
    EXPECT_EQ(rep.baseline.safety, "");
}

TEST(Differ, TopologySweepRunsHierarchicalVariants)
{
    Scenario sc = render(randomSpec(7));
    DiffOptions off;
    off.topologySweep = false;
    DiffReport base = runDifferential(sc, off);
    ASSERT_TRUE(base.ok) << base.variant << ": " << base.failure;

    // The default matrix re-runs the scenario under tree:4 and
    // cluster:8 and diffs the timing-invariant fields against the
    // flat baseline.
    DiffReport swept = runDifferential(sc);
    ASSERT_TRUE(swept.ok) << swept.variant << ": " << swept.failure;
    EXPECT_EQ(swept.variantsRun, base.variantsRun + 2);

    // A hierarchical baseline passes the oracles too, and its own
    // shape is deduplicated out of the sweep.
    DiffOptions treeBase;
    ASSERT_TRUE(barrier::Topology::parse("tree:4", treeBase.topology));
    DiffReport tree = runDifferential(sc, treeBase);
    ASSERT_TRUE(tree.ok) << tree.variant << ": " << tree.failure;
    EXPECT_EQ(tree.variantsRun, base.variantsRun + 1);
}

TEST(Differ, WrongEpisodeExpectationIsReported)
{
    Scenario sc = render(randomSpec(7));
    sc.episodes += 1;  // lie about the structural invariant
    DiffReport rep = runDifferential(sc);
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.failure.find("episodes"), std::string::npos)
        << rep.failure;
}

TEST(Differ, MismatchedPartnerEpisodesDeadlocks)
{
    // Two partners disagreeing on the episode count is the paper's
    // Fig. 2 failure class; the liveness oracle must catch it.
    ProgramSpec spec;
    spec.groupSizes = {2};
    spec.episodes = 3;
    spec.streams.assign(2, StreamSpec{});
    Scenario sc = render(spec);
    // Rebuild processor 1 with a different episode count.
    ProgramSpec other = spec;
    other.episodes = 4;
    sc.sources[1] = renderStream(other, 1);
    DiffOptions opt;
    opt.maxCycles = 200'000;
    DiffReport rep = runDifferential(sc, opt);
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.failure.find("liveness"), std::string::npos)
        << rep.failure;
}

TEST(Differ, AssemblyErrorIsReportedNotFatal)
{
    Scenario sc = render(randomSpec(3));
    sc.sources[0] = "not an instruction\n";
    DiffReport rep = runDifferential(sc);
    EXPECT_FALSE(rep.ok);
    EXPECT_EQ(rep.variant, "assemble");
}

TEST(Differ, FingerprintHashIsStable)
{
    Scenario sc = render(randomSpec(11));
    DiffReport a = runDifferential(sc);
    DiffReport b = runDifferential(sc);
    EXPECT_EQ(a.baseline.hash(), b.baseline.hash());
    EXPECT_EQ(a.baseline.regs, b.baseline.regs);
    EXPECT_EQ(a.baseline.mem, b.baseline.mem);
}

TEST(Differ, SwBarrierReferenceRuns)
{
    for (auto kind : {sw::BarrierKind::Centralized,
                      sw::BarrierKind::Dissemination})
        EXPECT_EQ(runSwBarrierReference(kind, 4, 25), "");
}

// ------------------------------------------------------------ reproducer

TEST(Reproducer, RoundTripsExactly)
{
    for (std::uint64_t seed : {2ull, 5ull, 19ull}) {
        Scenario sc = render(randomSpec(seed));
        std::string text = sc.toReproducer();
        Scenario back;
        std::string err;
        ASSERT_TRUE(Scenario::fromReproducer(text, back, err)) << err;
        EXPECT_EQ(back.sources, sc.sources);
        EXPECT_EQ(back.groupSizes, sc.groupSizes);
        EXPECT_EQ(back.episodes, sc.episodes);
        EXPECT_EQ(back.encoding, sc.encoding);
        EXPECT_EQ(back.interruptPeriod, sc.interruptPeriod);
        EXPECT_EQ(back.isrEntry, sc.isrEntry);
        EXPECT_EQ(back.watchAddrs, sc.watchAddrs);
        EXPECT_EQ(back.genSeed, sc.genSeed);
        // Serialization is byte-deterministic.
        EXPECT_EQ(back.toReproducer(), text);
    }
}

TEST(Reproducer, RejectsMalformedInput)
{
    Scenario sc;
    std::string err;
    EXPECT_FALSE(Scenario::fromReproducer("", sc, err));
    EXPECT_FALSE(Scenario::fromReproducer("!version 2\n", sc, err));
    EXPECT_FALSE(Scenario::fromReproducer(
        "!version 1\n!program 0\nnop\n", sc, err));  // unterminated
    EXPECT_FALSE(Scenario::fromReproducer(
        "!version 1\n!groupsizes 3\n!program 0\nhalt\n!endprogram\n",
        sc, err));  // groups don't cover procs
}

// --------------------------------------------------------------- shrinker

TEST(Shrinker, MinimizesWhilePreservingFailure)
{
    // Synthetic failure: "any barrier region exists". Monotone under
    // every mutation, so the shrinker should reach the floor: two
    // processors, one episode, unit work, empty region.
    ProgramSpec spec = randomSpec(12345);
    auto fails = [](const Scenario &sc) {
        for (const auto &src : sc.sources)
            if (src.find(".region") != std::string::npos)
                return true;
        return false;
    };
    ASSERT_TRUE(fails(render(spec)));

    ShrinkStats stats;
    ProgramSpec minimal = shrink(spec, fails, &stats);
    Scenario msc = render(minimal);

    EXPECT_TRUE(fails(msc));  // still fails
    EXPECT_LE(minimal.procs(), spec.procs());
    EXPECT_LE(minimal.episodes, spec.episodes);
    EXPECT_LE(msc.totalAsmLines(), render(spec).totalAsmLines());
    // The floor for this predicate.
    EXPECT_EQ(minimal.procs(), 2);
    EXPECT_EQ(minimal.episodes, 1);
    EXPECT_EQ(minimal.interruptPeriod, 0u);
    EXPECT_LT(msc.totalAsmLines(), 30u);
    EXPECT_GT(stats.accepted, 0);
}

TEST(Shrinker, StopsAtNonMonotoneThreshold)
{
    // Failure requires at least 3 episodes and 3 processors; greedy
    // shrinking must stop exactly at the threshold, not below it.
    ProgramSpec spec = randomSpec(777);
    while (spec.procs() < 4 || spec.episodes < 5)
        spec = randomSpec(spec.seed + 1);
    auto fails = [](const Scenario &sc) {
        return sc.episodes >= 3 && sc.procs() >= 3;
    };
    ASSERT_TRUE(fails(render(spec)));
    ProgramSpec minimal = shrink(spec, fails);
    EXPECT_EQ(minimal.episodes, 3);
    EXPECT_EQ(minimal.procs(), 3);
    EXPECT_TRUE(fails(render(minimal)));
}

TEST(Shrinker, RealDifferentialFailureShrinksSmall)
{
    // Treat "partner episode mismatch deadlocks" as the bug under
    // minimization: the predicate renders processor 1 with one extra
    // episode, so every candidate deadlocks. The minimized scenario
    // must stay failing and come out tiny — this is the same path
    // fbfuzz --minimize takes for a real safety/liveness bug.
    ProgramSpec spec = randomSpec(2024);
    while (spec.groups() != 1)
        spec = randomSpec(spec.seed + 1);

    DiffOptions opt;
    opt.maxCycles = 100'000;
    opt.swBarrierReference = false;
    auto sabotage = [&](const Scenario &sc) {
        Scenario bad = sc;
        ProgramSpec mism;
        mism.groupSizes = sc.groupSizes;
        mism.episodes = sc.episodes + 1;
        mism.streams.assign(static_cast<std::size_t>(sc.procs()),
                            StreamSpec{});
        bad.sources[0] = renderStream(mism, 0);
        return !runDifferential(bad, opt).ok;
    };
    ASSERT_TRUE(sabotage(render(spec)));
    ProgramSpec minimal = shrink(spec, sabotage);
    Scenario msc = render(minimal);
    EXPECT_TRUE(sabotage(msc));
    EXPECT_EQ(minimal.procs(), 2);
    EXPECT_EQ(minimal.episodes, 1);
    EXPECT_LT(msc.totalAsmLines(), 30u);
}

} // namespace
} // namespace fb::verify
