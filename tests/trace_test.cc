/**
 * @file
 * Tests for the barrier-state trace and timeline renderer.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"

namespace fb::sim
{
namespace
{

isa::Program
assembleOrDie(const std::string &src)
{
    isa::Program p;
    std::string err;
    if (!isa::Assembler::assemble(src, p, err))
        ADD_FAILURE() << "assembly failed: " << err;
    return p;
}

TEST(BarrierTrace, EmptyRenders)
{
    BarrierTrace t(2);
    EXPECT_NE(t.render().find("(empty trace)"), std::string::npos);
}

TEST(BarrierTrace, RecordsAndRenders)
{
    BarrierTrace t(2);
    using barrier::BarrierState;
    t.record({BarrierState::NonBarrier, BarrierState::Ready},
             {false, false}, false);
    t.record({BarrierState::Ready, BarrierState::Ready}, {false, false},
             true);
    t.record({BarrierState::Synced, BarrierState::Stalled},
             {false, false}, false);
    EXPECT_EQ(t.cycles(), 3u);
    std::string out = t.render();
    EXPECT_NE(out.find("cpu0 |.rs|"), std::string::npos);
    EXPECT_NE(out.find("cpu1 |rr#|"), std::string::npos);
    // Sync marker in the middle column.
    EXPECT_NE(out.find("| | |"), std::string::npos);
}

TEST(BarrierTrace, DownsamplingKeepsStalls)
{
    BarrierTrace t(1);
    using barrier::BarrierState;
    // 200 cycles of NonBarrier with a single stalled cycle: the stall
    // must survive downsampling to 10 columns.
    for (int k = 0; k < 200; ++k) {
        t.record({k == 137 ? BarrierState::Stalled
                           : BarrierState::NonBarrier},
                 {false}, false);
    }
    std::string out = t.render(10);
    EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(BarrierTrace, MachineIntegration)
{
    MachineConfig cfg;
    cfg.numProcessors = 2;
    cfg.memWords = 1024;
    cfg.traceBarrierStates = true;
    Machine m(cfg);
    const std::string src = R"(
        settag 1
        setmask 3
        nop
        nop
    .region 1
        nop
    .endregion
        halt
    )";
    m.loadProgram(0, assembleOrDie(src));
    m.loadProgram(1, assembleOrDie(src));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    ASSERT_NE(m.trace(), nullptr);
    EXPECT_GT(m.trace()->cycles(), 0u);
    std::string out = m.trace()->render();
    EXPECT_NE(out.find("cpu0"), std::string::npos);
    EXPECT_NE(out.find('|'), std::string::npos);
}

TEST(BarrierTrace, DisabledByDefault)
{
    MachineConfig cfg;
    cfg.numProcessors = 1;
    cfg.memWords = 64;
    Machine m(cfg);
    m.loadProgram(0, assembleOrDie("halt\n"));
    m.run();
    EXPECT_EQ(m.trace(), nullptr);
}

} // namespace
} // namespace fb::sim
