/**
 * @file
 * Red-black relaxation: exact determinism through the barrier
 * machinery. The parallel machine result must equal the sequential
 * reference bit-for-bit, under every timing perturbation.
 */

#include <gtest/gtest.h>

#include "core/redblack.hh"

namespace fb::core
{
namespace
{

sim::MachineConfig
config(int procs)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = procs;
    cfg.memWords = 1 << 14;
    cfg.maxCycles = 50'000'000;
    return cfg;
}

TEST(RedBlack, ReferenceConvergesTowardBoundary)
{
    RedBlackWorkload wl(4, 40);
    auto g = wl.reference(100, 0);
    // After many sweeps the interior approaches the boundary value.
    for (int r = 1; r <= 4; ++r)
        for (int c = 1; c <= 4; ++c)
            EXPECT_GE(g[static_cast<std::size_t>(r * 6 + c)], 95);
}

TEST(RedBlack, MachineMatchesReferenceExactly)
{
    RedBlackWorkload wl(4, 10);
    auto result = wl.execute(config(4), 80, 0, true);
    EXPECT_FALSE(result.run.deadlocked);
    EXPECT_FALSE(result.run.timedOut);
    EXPECT_EQ(result.mismatches, 0u);
    EXPECT_TRUE(result.correct);
    // Two barrier episodes per sweep.
    EXPECT_EQ(result.run.syncEvents, 20u);
}

TEST(RedBlack, PointBarrierAlsoExactButSlower)
{
    RedBlackWorkload wl(4, 8);
    auto cfg = config(4);
    cfg.jitterMean = 2.0;
    cfg.seed = 5;
    auto fuzzy = wl.execute(cfg, 80, 0, true);
    auto point = wl.execute(cfg, 80, 0, false);
    EXPECT_TRUE(fuzzy.correct);
    EXPECT_TRUE(point.correct);
    // Under drift the fuzzy regions absorb part of the wait.
    EXPECT_LE(fuzzy.run.totalBarrierWait(),
              point.run.totalBarrierWait());
}

TEST(RedBlack, ExactUnderAllPerturbations)
{
    // The killer property: jitter, pipelining, and multi-issue change
    // the interleaving, yet the result stays bit-identical — the
    // red/black barriers fully determine the dataflow.
    RedBlackWorkload wl(3, 6);
    for (double jitter : {0.0, 3.0}) {
        for (int depth : {1, 4}) {
            for (int width : {1, 4}) {
                auto cfg = config(3);
                cfg.jitterMean = jitter;
                cfg.seed = 17;
                cfg.pipelineDepth = depth;
                cfg.issueWidth = width;
                auto result = wl.execute(cfg, 64, 8, true);
                EXPECT_TRUE(result.correct)
                    << "jitter=" << jitter << " depth=" << depth
                    << " width=" << width
                    << " mismatches=" << result.mismatches;
            }
        }
    }
}

TEST(RedBlack, SingleRowGrid)
{
    RedBlackWorkload wl(1, 4);
    auto result = wl.execute(config(1), 9, 1, true);
    EXPECT_TRUE(result.correct);
}

TEST(RedBlack, OddGridSize)
{
    RedBlackWorkload wl(5, 5);
    auto result = wl.execute(config(5), 50, 2, true);
    EXPECT_TRUE(result.correct);
    EXPECT_EQ(result.run.syncEvents, 10u);
}

} // namespace
} // namespace fb::core
