/**
 * @file
 * Tests for the VLIW-style multi-issue mode (section 9: the prototype
 * "will be used for executing code in VLIW mode").
 */

#include <gtest/gtest.h>

#include <sstream>

#include "isa/assembler.hh"
#include "sim/machine.hh"

namespace fb::sim
{
namespace
{

isa::Program
assembleOrDie(const std::string &src)
{
    isa::Program p;
    std::string err;
    if (!isa::Assembler::assemble(src, p, err))
        ADD_FAILURE() << "assembly failed: " << err;
    return p;
}

MachineConfig
config(int procs, int width)
{
    MachineConfig cfg;
    cfg.numProcessors = procs;
    cfg.memWords = 4096;
    cfg.issueWidth = width;
    cfg.maxCycles = 2'000'000;
    return cfg;
}

/** Independent ops: perfect 4-wide ILP. */
const char *kIndependent = R"(
    li r1, 1
    li r2, 2
    li r3, 3
    li r4, 4
    add r5, r1, r2
    add r6, r3, r4
    add r7, r1, r3
    add r8, r2, r4
    halt
)";

/** A strict dependence chain: no ILP at all. */
const char *kChain = R"(
    li r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    halt
)";

std::uint64_t
cyclesFor(const char *src, int width)
{
    Machine m(config(1, width));
    m.loadProgram(0, assembleOrDie(src));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    return r.cycles;
}

TEST(Vliw, IndependentCodeSpeedsUp)
{
    auto scalar = cyclesFor(kIndependent, 1);
    auto wide = cyclesFor(kIndependent, 4);
    // 8 single-cycle instructions: 4-wide needs well under half.
    EXPECT_LT(wide * 2, scalar + 2);
}

TEST(Vliw, DependenceChainGetsNoBenefit)
{
    auto scalar = cyclesFor(kChain, 1);
    auto wide = cyclesFor(kChain, 4);
    EXPECT_EQ(scalar, wide);
}

TEST(Vliw, ResultsIdenticalAcrossWidths)
{
    for (const char *src : {kIndependent, kChain}) {
        Machine scalar(config(1, 1));
        scalar.loadProgram(0, assembleOrDie(src));
        scalar.run();
        Machine wide(config(1, 8));
        wide.loadProgram(0, assembleOrDie(src));
        wide.run();
        for (int r = 1; r < 16; ++r)
            EXPECT_EQ(scalar.processor(0).reg(r), wide.processor(0).reg(r))
                << "reg " << r;
    }
}

TEST(Vliw, MemoryOpsIssueAlone)
{
    // A load between independent adds breaks the bundle; correctness
    // is preserved and the load's latency still applies.
    const char *src = R"(
        li r1, 5
        st r1, 100(r0)
        ld r2, 100(r0)
        addi r3, r2, 1
        halt
    )";
    Machine m(config(1, 4));
    m.loadProgram(0, assembleOrDie(src));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_EQ(m.processor(0).reg(3), 6);
}

TEST(Vliw, BarrierSemanticsPreservedWideIssue)
{
    // Two processors, alternating drift, fuzzy regions — 4-wide issue
    // must preserve episodes, safety, and results.
    auto make = [](int phase) {
        std::ostringstream oss;
        oss << "settag 1\nsetmask 3\n";
        oss << "li r1, 0\nli r2, 8\nli r7, 1\nli r8, " << phase << "\n";
        oss << "loop:\n";
        oss << "and r6, r1, r7\n";
        oss << "bne r6, r8, light\n";
        for (int k = 0; k < 16; ++k)
            oss << "addi r3, r3, 1\n";
        oss << "light:\n";
        oss << "addi r3, r3, 1\n";
        oss << ".region 1\n";
        for (int k = 0; k < 12; ++k)
            oss << "addi r4, r4, 1\n";
        oss << "addi r1, r1, 1\n";
        oss << "bne r1, r2, loop\n";
        oss << ".endregion\n";
        oss << "st r3, 100(r0)\nhalt\n";
        return oss.str();
    };

    for (int width : {1, 2, 4}) {
        Machine m(config(2, width));
        m.loadProgram(0, assembleOrDie(make(0)));
        m.loadProgram(1, assembleOrDie(make(1)));
        auto r = m.run();
        EXPECT_FALSE(r.deadlocked) << "width " << width;
        EXPECT_EQ(r.syncEvents, 8u) << "width " << width;
        EXPECT_EQ(m.checkSafetyProperty(), "") << "width " << width;
        EXPECT_EQ(m.memory().peek(100), 8 + 4 * 16) << "width " << width;
    }
}

TEST(Vliw, WideIssueShrinksRegionTimeNotCorrectness)
{
    // The same region work completes in fewer cycles at width 4, so
    // wide issue *reduces* the drift a region can absorb in wall
    // time — the compiler's region size is in instructions, and the
    // machine still synchronizes correctly.
    std::ostringstream oss;
    oss << "settag 1\nsetmask 3\nli r1, 0\nli r2, 6\n";
    oss << "loop:\n";
    oss << "addi r3, r3, 1\n";
    oss << ".region 1\n";
    for (int k = 0; k < 16; ++k)
        oss << "li r" << (10 + k % 8) << ", " << k << "\n";
    oss << "addi r1, r1, 1\n";
    oss << "bne r1, r2, loop\n";
    oss << ".endregion\n";
    oss << "halt\n";
    auto src = oss.str();

    auto run = [&](int width) {
        Machine m(config(2, width));
        m.loadProgram(0, assembleOrDie(src));
        m.loadProgram(1, assembleOrDie(src));
        auto r = m.run();
        EXPECT_FALSE(r.deadlocked);
        EXPECT_EQ(r.syncEvents, 6u);
        return r.cycles;
    };
    EXPECT_LT(run(4), run(1));
}

} // namespace
} // namespace fb::sim
