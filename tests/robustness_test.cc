/**
 * @file
 * Robustness: invalid programs and misuse must fail loudly (panic via
 * FB_ASSERT or fatal) instead of corrupting the simulation, and edge
 * cases must be handled. Death tests document the failure contract.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "support/table.hh"

namespace fb::sim
{
namespace
{

isa::Program
assembleOrDie(const std::string &src)
{
    isa::Program p;
    std::string err;
    if (!isa::Assembler::assemble(src, p, err))
        ADD_FAILURE() << "assembly failed: " << err;
    return p;
}

MachineConfig
config(int procs)
{
    MachineConfig cfg;
    cfg.numProcessors = procs;
    cfg.memWords = 1024;
    cfg.maxCycles = 100'000;
    return cfg;
}

using RobustnessDeathTest = ::testing::Test;

TEST(RobustnessDeathTest, RetWithoutCallPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Machine m(config(1));
    m.loadProgram(0, assembleOrDie("ret r27\n"));
    EXPECT_DEATH(m.run(), "RET without matching CALL");
}

TEST(RobustnessDeathTest, DivisionByZeroPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Machine m(config(1));
    m.loadProgram(0, assembleOrDie("li r1, 5\ndiv r2, r1, r3\nhalt\n"));
    EXPECT_DEATH(m.run(), "division by zero");
}

TEST(RobustnessDeathTest, OutOfRangeStorePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Machine m(config(1));
    m.loadProgram(0, assembleOrDie("li r1, 999999\nst r1, 0(r1)\nhalt\n"));
    EXPECT_DEATH(m.run(), "out-of-range");
}

TEST(RobustnessDeathTest, IretOutsideIsrPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Machine m(config(1));
    m.loadProgram(0, assembleOrDie("iret\n"));
    EXPECT_DEATH(m.run(), "IRET outside");
}

TEST(Robustness, RunOffEndOfProgramHaltsCleanly)
{
    // A stream without HALT simply ends at the last instruction.
    Machine m(config(1));
    m.loadProgram(0, assembleOrDie("li r1, 3\naddi r1, r1, 1\n"));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(m.processor(0).reg(1), 4);
}

TEST(Robustness, BranchToEndTerminates)
{
    Machine m(config(1));
    m.loadProgram(0, assembleOrDie("jmp end\nnop\nend:\n"));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_EQ(m.processor(0).instructions(), 1u);
}

TEST(Robustness, SelfMaskedProcessorSyncsAlone)
{
    // A mask naming only yourself is an empty group: every episode
    // completes immediately.
    Machine m(config(1));
    m.loadProgram(0, assembleOrDie(R"(
        settag 1
        setmask 1
        nop
    .region 1
        nop
    .endregion
        halt
    )"));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_EQ(r.syncEvents, 1u);
}

TEST(Robustness, SixtyFourProcessors)
{
    // The documented upper bound: all 64 processors synchronize.
    MachineConfig cfg = config(64);
    cfg.memWords = 1 << 14;
    Machine m(cfg);
    std::ostringstream oss;
    oss << "settag 1\n";
    oss << "setmask " << -1 << "\n";  // all bits set
    oss << "nop\n.region 1\nnop\n.endregion\nhalt\n";
    auto prog = assembleOrDie(oss.str());
    m.loadAllPrograms(prog);
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_EQ(r.syncEvents, 1u);
    EXPECT_EQ(m.checkSafetyProperty(), "");
}

TEST(Robustness, MaxTagValueWorks)
{
    Machine m(config(2));
    const std::string src = R"(
        settag 4294967295
        setmask 3
        nop
    .region 1
        nop
    .endregion
        halt
    )";
    m.loadProgram(0, assembleOrDie(src));
    m.loadProgram(1, assembleOrDie(src));
    auto r = m.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_EQ(r.syncEvents, 1u);
}

TEST(Robustness, TableCsvEscaping)
{
    Table t("x");
    t.setHeader({"name", "value"});
    t.row().cell("has,comma").cell(std::int64_t{1});
    t.row().cell("has\"quote").cell(std::int64_t{2});
    t.row().cell("plain").cell(std::int64_t{3});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "name,value\n"
                         "\"has,comma\",1\n"
                         "\"has\"\"quote\",2\n"
                         "plain,3\n");
}

} // namespace
} // namespace fb::sim
