file(REMOVE_RECURSE
  "CMakeFiles/fbsim.dir/fbsim.cc.o"
  "CMakeFiles/fbsim.dir/fbsim.cc.o.d"
  "fbsim"
  "fbsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
