# Empty compiler generated dependencies file for fbsim.
# This may be replaced when dependencies are built.
