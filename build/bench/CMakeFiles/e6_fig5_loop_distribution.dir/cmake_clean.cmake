file(REMOVE_RECURSE
  "CMakeFiles/e6_fig5_loop_distribution.dir/e6_fig5_loop_distribution.cpp.o"
  "CMakeFiles/e6_fig5_loop_distribution.dir/e6_fig5_loop_distribution.cpp.o.d"
  "e6_fig5_loop_distribution"
  "e6_fig5_loop_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_fig5_loop_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
