# Empty dependencies file for e6_fig5_loop_distribution.
# This may be replaced when dependencies are built.
