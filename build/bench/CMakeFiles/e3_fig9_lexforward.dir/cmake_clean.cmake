file(REMOVE_RECURSE
  "CMakeFiles/e3_fig9_lexforward.dir/e3_fig9_lexforward.cpp.o"
  "CMakeFiles/e3_fig9_lexforward.dir/e3_fig9_lexforward.cpp.o.d"
  "e3_fig9_lexforward"
  "e3_fig9_lexforward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_fig9_lexforward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
