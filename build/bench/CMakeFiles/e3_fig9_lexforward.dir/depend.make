# Empty dependencies file for e3_fig9_lexforward.
# This may be replaced when dependencies are built.
