file(REMOVE_RECURSE
  "CMakeFiles/e14_selfsched_runtime.dir/e14_selfsched_runtime.cpp.o"
  "CMakeFiles/e14_selfsched_runtime.dir/e14_selfsched_runtime.cpp.o.d"
  "e14_selfsched_runtime"
  "e14_selfsched_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e14_selfsched_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
