# Empty dependencies file for e14_selfsched_runtime.
# This may be replaced when dependencies are built.
