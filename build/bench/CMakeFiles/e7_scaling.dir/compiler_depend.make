# Empty compiler generated dependencies file for e7_scaling.
# This may be replaced when dependencies are built.
