file(REMOVE_RECURSE
  "CMakeFiles/e7_scaling.dir/e7_scaling.cpp.o"
  "CMakeFiles/e7_scaling.dir/e7_scaling.cpp.o.d"
  "e7_scaling"
  "e7_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
