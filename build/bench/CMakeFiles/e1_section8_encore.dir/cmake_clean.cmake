file(REMOVE_RECURSE
  "CMakeFiles/e1_section8_encore.dir/e1_section8_encore.cpp.o"
  "CMakeFiles/e1_section8_encore.dir/e1_section8_encore.cpp.o.d"
  "e1_section8_encore"
  "e1_section8_encore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_section8_encore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
