# Empty dependencies file for e1_section8_encore.
# This may be replaced when dependencies are built.
