file(REMOVE_RECURSE
  "CMakeFiles/e12_encoding_ablation.dir/e12_encoding_ablation.cpp.o"
  "CMakeFiles/e12_encoding_ablation.dir/e12_encoding_ablation.cpp.o.d"
  "e12_encoding_ablation"
  "e12_encoding_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e12_encoding_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
