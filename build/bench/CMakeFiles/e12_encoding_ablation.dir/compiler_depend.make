# Empty compiler generated dependencies file for e12_encoding_ablation.
# This may be replaced when dependencies are built.
