# Empty compiler generated dependencies file for e13_cycle_shrinking.
# This may be replaced when dependencies are built.
