file(REMOVE_RECURSE
  "CMakeFiles/e13_cycle_shrinking.dir/e13_cycle_shrinking.cpp.o"
  "CMakeFiles/e13_cycle_shrinking.dir/e13_cycle_shrinking.cpp.o.d"
  "e13_cycle_shrinking"
  "e13_cycle_shrinking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e13_cycle_shrinking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
