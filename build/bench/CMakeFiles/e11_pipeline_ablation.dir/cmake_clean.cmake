file(REMOVE_RECURSE
  "CMakeFiles/e11_pipeline_ablation.dir/e11_pipeline_ablation.cpp.o"
  "CMakeFiles/e11_pipeline_ablation.dir/e11_pipeline_ablation.cpp.o.d"
  "e11_pipeline_ablation"
  "e11_pipeline_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e11_pipeline_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
