# Empty dependencies file for e11_pipeline_ablation.
# This may be replaced when dependencies are built.
