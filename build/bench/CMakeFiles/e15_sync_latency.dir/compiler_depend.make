# Empty compiler generated dependencies file for e15_sync_latency.
# This may be replaced when dependencies are built.
