file(REMOVE_RECURSE
  "CMakeFiles/e15_sync_latency.dir/e15_sync_latency.cpp.o"
  "CMakeFiles/e15_sync_latency.dir/e15_sync_latency.cpp.o.d"
  "e15_sync_latency"
  "e15_sync_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e15_sync_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
