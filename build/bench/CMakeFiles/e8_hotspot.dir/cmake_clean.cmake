file(REMOVE_RECURSE
  "CMakeFiles/e8_hotspot.dir/e8_hotspot.cpp.o"
  "CMakeFiles/e8_hotspot.dir/e8_hotspot.cpp.o.d"
  "e8_hotspot"
  "e8_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
