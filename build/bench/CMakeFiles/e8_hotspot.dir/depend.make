# Empty dependencies file for e8_hotspot.
# This may be replaced when dependencies are built.
