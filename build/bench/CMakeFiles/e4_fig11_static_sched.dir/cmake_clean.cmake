file(REMOVE_RECURSE
  "CMakeFiles/e4_fig11_static_sched.dir/e4_fig11_static_sched.cpp.o"
  "CMakeFiles/e4_fig11_static_sched.dir/e4_fig11_static_sched.cpp.o.d"
  "e4_fig11_static_sched"
  "e4_fig11_static_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_fig11_static_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
