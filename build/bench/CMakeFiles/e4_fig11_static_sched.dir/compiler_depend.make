# Empty compiler generated dependencies file for e4_fig11_static_sched.
# This may be replaced when dependencies are built.
