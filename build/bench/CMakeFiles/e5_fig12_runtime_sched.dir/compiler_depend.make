# Empty compiler generated dependencies file for e5_fig12_runtime_sched.
# This may be replaced when dependencies are built.
