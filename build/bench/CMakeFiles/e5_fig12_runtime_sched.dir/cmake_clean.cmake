file(REMOVE_RECURSE
  "CMakeFiles/e5_fig12_runtime_sched.dir/e5_fig12_runtime_sched.cpp.o"
  "CMakeFiles/e5_fig12_runtime_sched.dir/e5_fig12_runtime_sched.cpp.o.d"
  "e5_fig12_runtime_sched"
  "e5_fig12_runtime_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_fig12_runtime_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
