# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for e2_fig7_if_statements.
