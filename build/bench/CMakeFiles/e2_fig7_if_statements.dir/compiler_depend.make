# Empty compiler generated dependencies file for e2_fig7_if_statements.
# This may be replaced when dependencies are built.
