file(REMOVE_RECURSE
  "CMakeFiles/e2_fig7_if_statements.dir/e2_fig7_if_statements.cpp.o"
  "CMakeFiles/e2_fig7_if_statements.dir/e2_fig7_if_statements.cpp.o.d"
  "e2_fig7_if_statements"
  "e2_fig7_if_statements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_fig7_if_statements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
