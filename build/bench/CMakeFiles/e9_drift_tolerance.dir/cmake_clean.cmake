file(REMOVE_RECURSE
  "CMakeFiles/e9_drift_tolerance.dir/e9_drift_tolerance.cpp.o"
  "CMakeFiles/e9_drift_tolerance.dir/e9_drift_tolerance.cpp.o.d"
  "e9_drift_tolerance"
  "e9_drift_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_drift_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
