# Empty dependencies file for e9_drift_tolerance.
# This may be replaced when dependencies are built.
