file(REMOVE_RECURSE
  "CMakeFiles/e10_microbench.dir/e10_microbench.cpp.o"
  "CMakeFiles/e10_microbench.dir/e10_microbench.cpp.o.d"
  "e10_microbench"
  "e10_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
