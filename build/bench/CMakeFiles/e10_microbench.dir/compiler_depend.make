# Empty compiler generated dependencies file for e10_microbench.
# This may be replaced when dependencies are built.
