# Empty dependencies file for multiple_barriers.
# This may be replaced when dependencies are built.
