file(REMOVE_RECURSE
  "CMakeFiles/multiple_barriers.dir/multiple_barriers.cpp.o"
  "CMakeFiles/multiple_barriers.dir/multiple_barriers.cpp.o.d"
  "multiple_barriers"
  "multiple_barriers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiple_barriers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
