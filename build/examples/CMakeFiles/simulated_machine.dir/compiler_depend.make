# Empty compiler generated dependencies file for simulated_machine.
# This may be replaced when dependencies are built.
