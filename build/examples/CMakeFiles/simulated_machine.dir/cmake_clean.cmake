file(REMOVE_RECURSE
  "CMakeFiles/simulated_machine.dir/simulated_machine.cpp.o"
  "CMakeFiles/simulated_machine.dir/simulated_machine.cpp.o.d"
  "simulated_machine"
  "simulated_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulated_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
