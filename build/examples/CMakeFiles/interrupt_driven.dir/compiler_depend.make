# Empty compiler generated dependencies file for interrupt_driven.
# This may be replaced when dependencies are built.
