file(REMOVE_RECURSE
  "CMakeFiles/interrupt_driven.dir/interrupt_driven.cpp.o"
  "CMakeFiles/interrupt_driven.dir/interrupt_driven.cpp.o.d"
  "interrupt_driven"
  "interrupt_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interrupt_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
