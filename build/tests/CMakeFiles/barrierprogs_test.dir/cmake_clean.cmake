file(REMOVE_RECURSE
  "CMakeFiles/barrierprogs_test.dir/barrierprogs_test.cc.o"
  "CMakeFiles/barrierprogs_test.dir/barrierprogs_test.cc.o.d"
  "barrierprogs_test"
  "barrierprogs_test.pdb"
  "barrierprogs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barrierprogs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
