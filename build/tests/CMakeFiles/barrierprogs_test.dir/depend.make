# Empty dependencies file for barrierprogs_test.
# This may be replaced when dependencies are built.
