# Empty dependencies file for depanalysis_test.
# This may be replaced when dependencies are built.
