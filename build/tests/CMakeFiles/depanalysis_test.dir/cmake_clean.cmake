file(REMOVE_RECURSE
  "CMakeFiles/depanalysis_test.dir/depanalysis_test.cc.o"
  "CMakeFiles/depanalysis_test.dir/depanalysis_test.cc.o.d"
  "depanalysis_test"
  "depanalysis_test.pdb"
  "depanalysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depanalysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
