# Empty compiler generated dependencies file for swbarrier_test.
# This may be replaced when dependencies are built.
