file(REMOVE_RECURSE
  "CMakeFiles/swbarrier_test.dir/swbarrier_test.cc.o"
  "CMakeFiles/swbarrier_test.dir/swbarrier_test.cc.o.d"
  "swbarrier_test"
  "swbarrier_test.pdb"
  "swbarrier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swbarrier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
