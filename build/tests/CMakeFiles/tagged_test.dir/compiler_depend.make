# Empty compiler generated dependencies file for tagged_test.
# This may be replaced when dependencies are built.
