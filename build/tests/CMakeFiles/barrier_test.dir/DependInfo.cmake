
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/barrier_test.cc" "tests/CMakeFiles/barrier_test.dir/barrier_test.cc.o" "gcc" "tests/CMakeFiles/barrier_test.dir/barrier_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/fb_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/fb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/swbarrier/CMakeFiles/fb_swbarrier.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/barrier/CMakeFiles/fb_barrier.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/fb_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fb_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
