# Empty dependencies file for calls_interrupts_test.
# This may be replaced when dependencies are built.
