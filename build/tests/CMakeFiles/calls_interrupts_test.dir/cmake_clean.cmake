file(REMOVE_RECURSE
  "CMakeFiles/calls_interrupts_test.dir/calls_interrupts_test.cc.o"
  "CMakeFiles/calls_interrupts_test.dir/calls_interrupts_test.cc.o.d"
  "calls_interrupts_test"
  "calls_interrupts_test.pdb"
  "calls_interrupts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calls_interrupts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
