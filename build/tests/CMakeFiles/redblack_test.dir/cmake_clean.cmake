file(REMOVE_RECURSE
  "CMakeFiles/redblack_test.dir/redblack_test.cc.o"
  "CMakeFiles/redblack_test.dir/redblack_test.cc.o.d"
  "redblack_test"
  "redblack_test.pdb"
  "redblack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redblack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
