# Empty compiler generated dependencies file for redblack_test.
# This may be replaced when dependencies are built.
