# Empty compiler generated dependencies file for doacross_test.
# This may be replaced when dependencies are built.
