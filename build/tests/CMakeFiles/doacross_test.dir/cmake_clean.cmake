file(REMOVE_RECURSE
  "CMakeFiles/doacross_test.dir/doacross_test.cc.o"
  "CMakeFiles/doacross_test.dir/doacross_test.cc.o.d"
  "doacross_test"
  "doacross_test.pdb"
  "doacross_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doacross_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
