# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/barrier_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/swbarrier_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/barrierprogs_test[1]_include.cmake")
include("/root/repo/build/tests/calls_interrupts_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/tagged_test[1]_include.cmake")
include("/root/repo/build/tests/vliw_test[1]_include.cmake")
include("/root/repo/build/tests/depanalysis_test[1]_include.cmake")
include("/root/repo/build/tests/redblack_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/doacross_test[1]_include.cmake")
