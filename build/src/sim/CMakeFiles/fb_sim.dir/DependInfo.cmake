
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/fb_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/fb_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/fb_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/fb_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/fb_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/fb_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/processor.cc" "src/sim/CMakeFiles/fb_sim.dir/processor.cc.o" "gcc" "src/sim/CMakeFiles/fb_sim.dir/processor.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/fb_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/fb_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fb_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/barrier/CMakeFiles/fb_barrier.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
