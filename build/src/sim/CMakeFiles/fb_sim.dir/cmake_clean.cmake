file(REMOVE_RECURSE
  "CMakeFiles/fb_sim.dir/cache.cc.o"
  "CMakeFiles/fb_sim.dir/cache.cc.o.d"
  "CMakeFiles/fb_sim.dir/machine.cc.o"
  "CMakeFiles/fb_sim.dir/machine.cc.o.d"
  "CMakeFiles/fb_sim.dir/memory.cc.o"
  "CMakeFiles/fb_sim.dir/memory.cc.o.d"
  "CMakeFiles/fb_sim.dir/processor.cc.o"
  "CMakeFiles/fb_sim.dir/processor.cc.o.d"
  "CMakeFiles/fb_sim.dir/trace.cc.o"
  "CMakeFiles/fb_sim.dir/trace.cc.o.d"
  "libfb_sim.a"
  "libfb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
