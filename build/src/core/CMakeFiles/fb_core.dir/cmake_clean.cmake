file(REMOVE_RECURSE
  "CMakeFiles/fb_core.dir/barrierprogs.cc.o"
  "CMakeFiles/fb_core.dir/barrierprogs.cc.o.d"
  "CMakeFiles/fb_core.dir/experiment.cc.o"
  "CMakeFiles/fb_core.dir/experiment.cc.o.d"
  "CMakeFiles/fb_core.dir/redblack.cc.o"
  "CMakeFiles/fb_core.dir/redblack.cc.o.d"
  "CMakeFiles/fb_core.dir/workloads.cc.o"
  "CMakeFiles/fb_core.dir/workloads.cc.o.d"
  "libfb_core.a"
  "libfb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
