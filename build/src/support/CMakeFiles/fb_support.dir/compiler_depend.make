# Empty compiler generated dependencies file for fb_support.
# This may be replaced when dependencies are built.
