file(REMOVE_RECURSE
  "CMakeFiles/fb_support.dir/bitvector.cc.o"
  "CMakeFiles/fb_support.dir/bitvector.cc.o.d"
  "CMakeFiles/fb_support.dir/logging.cc.o"
  "CMakeFiles/fb_support.dir/logging.cc.o.d"
  "CMakeFiles/fb_support.dir/random.cc.o"
  "CMakeFiles/fb_support.dir/random.cc.o.d"
  "CMakeFiles/fb_support.dir/stats.cc.o"
  "CMakeFiles/fb_support.dir/stats.cc.o.d"
  "CMakeFiles/fb_support.dir/strutil.cc.o"
  "CMakeFiles/fb_support.dir/strutil.cc.o.d"
  "CMakeFiles/fb_support.dir/table.cc.o"
  "CMakeFiles/fb_support.dir/table.cc.o.d"
  "libfb_support.a"
  "libfb_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fb_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
