file(REMOVE_RECURSE
  "libfb_support.a"
)
