file(REMOVE_RECURSE
  "libfb_isa.a"
)
