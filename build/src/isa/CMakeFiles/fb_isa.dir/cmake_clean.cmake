file(REMOVE_RECURSE
  "CMakeFiles/fb_isa.dir/assembler.cc.o"
  "CMakeFiles/fb_isa.dir/assembler.cc.o.d"
  "CMakeFiles/fb_isa.dir/instruction.cc.o"
  "CMakeFiles/fb_isa.dir/instruction.cc.o.d"
  "CMakeFiles/fb_isa.dir/opcode.cc.o"
  "CMakeFiles/fb_isa.dir/opcode.cc.o.d"
  "CMakeFiles/fb_isa.dir/program.cc.o"
  "CMakeFiles/fb_isa.dir/program.cc.o.d"
  "libfb_isa.a"
  "libfb_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fb_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
