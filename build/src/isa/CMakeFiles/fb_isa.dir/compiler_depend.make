# Empty compiler generated dependencies file for fb_isa.
# This may be replaced when dependencies are built.
