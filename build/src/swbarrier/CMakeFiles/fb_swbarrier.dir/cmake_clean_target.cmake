file(REMOVE_RECURSE
  "libfb_swbarrier.a"
)
