# Empty compiler generated dependencies file for fb_swbarrier.
# This may be replaced when dependencies are built.
