file(REMOVE_RECURSE
  "CMakeFiles/fb_swbarrier.dir/blocking.cc.o"
  "CMakeFiles/fb_swbarrier.dir/blocking.cc.o.d"
  "CMakeFiles/fb_swbarrier.dir/centralized.cc.o"
  "CMakeFiles/fb_swbarrier.dir/centralized.cc.o.d"
  "CMakeFiles/fb_swbarrier.dir/dissemination.cc.o"
  "CMakeFiles/fb_swbarrier.dir/dissemination.cc.o.d"
  "CMakeFiles/fb_swbarrier.dir/factory.cc.o"
  "CMakeFiles/fb_swbarrier.dir/factory.cc.o.d"
  "CMakeFiles/fb_swbarrier.dir/split_barrier.cc.o"
  "CMakeFiles/fb_swbarrier.dir/split_barrier.cc.o.d"
  "CMakeFiles/fb_swbarrier.dir/tagged.cc.o"
  "CMakeFiles/fb_swbarrier.dir/tagged.cc.o.d"
  "CMakeFiles/fb_swbarrier.dir/tree.cc.o"
  "CMakeFiles/fb_swbarrier.dir/tree.cc.o.d"
  "libfb_swbarrier.a"
  "libfb_swbarrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fb_swbarrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
