
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/swbarrier/blocking.cc" "src/swbarrier/CMakeFiles/fb_swbarrier.dir/blocking.cc.o" "gcc" "src/swbarrier/CMakeFiles/fb_swbarrier.dir/blocking.cc.o.d"
  "/root/repo/src/swbarrier/centralized.cc" "src/swbarrier/CMakeFiles/fb_swbarrier.dir/centralized.cc.o" "gcc" "src/swbarrier/CMakeFiles/fb_swbarrier.dir/centralized.cc.o.d"
  "/root/repo/src/swbarrier/dissemination.cc" "src/swbarrier/CMakeFiles/fb_swbarrier.dir/dissemination.cc.o" "gcc" "src/swbarrier/CMakeFiles/fb_swbarrier.dir/dissemination.cc.o.d"
  "/root/repo/src/swbarrier/factory.cc" "src/swbarrier/CMakeFiles/fb_swbarrier.dir/factory.cc.o" "gcc" "src/swbarrier/CMakeFiles/fb_swbarrier.dir/factory.cc.o.d"
  "/root/repo/src/swbarrier/split_barrier.cc" "src/swbarrier/CMakeFiles/fb_swbarrier.dir/split_barrier.cc.o" "gcc" "src/swbarrier/CMakeFiles/fb_swbarrier.dir/split_barrier.cc.o.d"
  "/root/repo/src/swbarrier/tagged.cc" "src/swbarrier/CMakeFiles/fb_swbarrier.dir/tagged.cc.o" "gcc" "src/swbarrier/CMakeFiles/fb_swbarrier.dir/tagged.cc.o.d"
  "/root/repo/src/swbarrier/tree.cc" "src/swbarrier/CMakeFiles/fb_swbarrier.dir/tree.cc.o" "gcc" "src/swbarrier/CMakeFiles/fb_swbarrier.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
