file(REMOVE_RECURSE
  "libfb_barrier.a"
)
