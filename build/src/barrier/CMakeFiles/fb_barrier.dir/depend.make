# Empty dependencies file for fb_barrier.
# This may be replaced when dependencies are built.
