file(REMOVE_RECURSE
  "CMakeFiles/fb_barrier.dir/network.cc.o"
  "CMakeFiles/fb_barrier.dir/network.cc.o.d"
  "CMakeFiles/fb_barrier.dir/unit.cc.o"
  "CMakeFiles/fb_barrier.dir/unit.cc.o.d"
  "libfb_barrier.a"
  "libfb_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fb_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
