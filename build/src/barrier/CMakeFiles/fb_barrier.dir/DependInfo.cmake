
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/barrier/network.cc" "src/barrier/CMakeFiles/fb_barrier.dir/network.cc.o" "gcc" "src/barrier/CMakeFiles/fb_barrier.dir/network.cc.o.d"
  "/root/repo/src/barrier/unit.cc" "src/barrier/CMakeFiles/fb_barrier.dir/unit.cc.o" "gcc" "src/barrier/CMakeFiles/fb_barrier.dir/unit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
