file(REMOVE_RECURSE
  "libfb_sched.a"
)
