file(REMOVE_RECURSE
  "CMakeFiles/fb_sched.dir/schedule.cc.o"
  "CMakeFiles/fb_sched.dir/schedule.cc.o.d"
  "libfb_sched.a"
  "libfb_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fb_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
