# Empty dependencies file for fb_sched.
# This may be replaced when dependencies are built.
