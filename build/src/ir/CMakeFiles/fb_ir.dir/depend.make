# Empty dependencies file for fb_ir.
# This may be replaced when dependencies are built.
