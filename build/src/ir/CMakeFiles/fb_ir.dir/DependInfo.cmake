
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/block.cc" "src/ir/CMakeFiles/fb_ir.dir/block.cc.o" "gcc" "src/ir/CMakeFiles/fb_ir.dir/block.cc.o.d"
  "/root/repo/src/ir/builder.cc" "src/ir/CMakeFiles/fb_ir.dir/builder.cc.o" "gcc" "src/ir/CMakeFiles/fb_ir.dir/builder.cc.o.d"
  "/root/repo/src/ir/interp.cc" "src/ir/CMakeFiles/fb_ir.dir/interp.cc.o" "gcc" "src/ir/CMakeFiles/fb_ir.dir/interp.cc.o.d"
  "/root/repo/src/ir/operand.cc" "src/ir/CMakeFiles/fb_ir.dir/operand.cc.o" "gcc" "src/ir/CMakeFiles/fb_ir.dir/operand.cc.o.d"
  "/root/repo/src/ir/tac.cc" "src/ir/CMakeFiles/fb_ir.dir/tac.cc.o" "gcc" "src/ir/CMakeFiles/fb_ir.dir/tac.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
