file(REMOVE_RECURSE
  "libfb_ir.a"
)
