file(REMOVE_RECURSE
  "CMakeFiles/fb_ir.dir/block.cc.o"
  "CMakeFiles/fb_ir.dir/block.cc.o.d"
  "CMakeFiles/fb_ir.dir/builder.cc.o"
  "CMakeFiles/fb_ir.dir/builder.cc.o.d"
  "CMakeFiles/fb_ir.dir/interp.cc.o"
  "CMakeFiles/fb_ir.dir/interp.cc.o.d"
  "CMakeFiles/fb_ir.dir/operand.cc.o"
  "CMakeFiles/fb_ir.dir/operand.cc.o.d"
  "CMakeFiles/fb_ir.dir/tac.cc.o"
  "CMakeFiles/fb_ir.dir/tac.cc.o.d"
  "libfb_ir.a"
  "libfb_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fb_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
