# Empty dependencies file for fb_compiler.
# This may be replaced when dependencies are built.
