
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/codegen.cc" "src/compiler/CMakeFiles/fb_compiler.dir/codegen.cc.o" "gcc" "src/compiler/CMakeFiles/fb_compiler.dir/codegen.cc.o.d"
  "/root/repo/src/compiler/dag.cc" "src/compiler/CMakeFiles/fb_compiler.dir/dag.cc.o" "gcc" "src/compiler/CMakeFiles/fb_compiler.dir/dag.cc.o.d"
  "/root/repo/src/compiler/depanalysis.cc" "src/compiler/CMakeFiles/fb_compiler.dir/depanalysis.cc.o" "gcc" "src/compiler/CMakeFiles/fb_compiler.dir/depanalysis.cc.o.d"
  "/root/repo/src/compiler/region.cc" "src/compiler/CMakeFiles/fb_compiler.dir/region.cc.o" "gcc" "src/compiler/CMakeFiles/fb_compiler.dir/region.cc.o.d"
  "/root/repo/src/compiler/reorder.cc" "src/compiler/CMakeFiles/fb_compiler.dir/reorder.cc.o" "gcc" "src/compiler/CMakeFiles/fb_compiler.dir/reorder.cc.o.d"
  "/root/repo/src/compiler/transforms.cc" "src/compiler/CMakeFiles/fb_compiler.dir/transforms.cc.o" "gcc" "src/compiler/CMakeFiles/fb_compiler.dir/transforms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/fb_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fb_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
