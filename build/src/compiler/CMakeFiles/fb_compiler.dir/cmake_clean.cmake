file(REMOVE_RECURSE
  "CMakeFiles/fb_compiler.dir/codegen.cc.o"
  "CMakeFiles/fb_compiler.dir/codegen.cc.o.d"
  "CMakeFiles/fb_compiler.dir/dag.cc.o"
  "CMakeFiles/fb_compiler.dir/dag.cc.o.d"
  "CMakeFiles/fb_compiler.dir/depanalysis.cc.o"
  "CMakeFiles/fb_compiler.dir/depanalysis.cc.o.d"
  "CMakeFiles/fb_compiler.dir/region.cc.o"
  "CMakeFiles/fb_compiler.dir/region.cc.o.d"
  "CMakeFiles/fb_compiler.dir/reorder.cc.o"
  "CMakeFiles/fb_compiler.dir/reorder.cc.o.d"
  "CMakeFiles/fb_compiler.dir/transforms.cc.o"
  "CMakeFiles/fb_compiler.dir/transforms.cc.o.d"
  "libfb_compiler.a"
  "libfb_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fb_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
