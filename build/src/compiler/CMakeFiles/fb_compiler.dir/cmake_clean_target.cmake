file(REMOVE_RECURSE
  "libfb_compiler.a"
)
