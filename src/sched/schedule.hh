/**
 * @file
 * Iteration-scheduling policies for parallel loops (paper sections
 * 7.3 and 7.4).
 */

#ifndef FB_SCHED_SCHEDULE_HH
#define FB_SCHED_SCHEDULE_HH

#include <vector>

namespace fb::sched
{

/**
 * An assignment of the iterations 0..I-1 of one parallel loop
 * instance to processors: assignment[p] lists, in execution order,
 * the iterations processor p runs.
 */
using Assignment = std::vector<std::vector<int>>;

/** Contiguous blocks of ceil(I/P) iterations (the Fig. 5 split). */
Assignment blockSchedule(int iterations, int procs);

/** Round-robin: processor p runs iterations p, p+P, p+2P, ... */
Assignment cyclicSchedule(int iterations, int procs);

/**
 * The Fig. 11 static schedule: when I is not divisible by P, the
 * processors take turns executing the extra iterations, rotating
 * with the outer-loop index so that the load evens out over outer
 * iterations.
 */
Assignment rotatingSchedule(int iterations, int procs, int outer_index);

/**
 * Self-scheduling with fixed chunk size, modeled deterministically
 * for equal-speed processors: processors take chunks in round-robin
 * order.
 */
Assignment chunkSelfSchedule(int iterations, int procs, int chunk);

/**
 * Cost-aware model of fixed-chunk self-scheduling: the next chunk is
 * grabbed by the processor that would finish its work so far first
 * (what actually happens on real hardware when iteration costs vary).
 * @p costs gives the cost of each iteration.
 */
Assignment chunkSelfSchedule(int iterations, int procs, int chunk,
                             const std::vector<double> &costs);

/**
 * Guided self-scheduling [Polychronopoulos & Kuck]: each grab takes
 * ceil(remaining / P) iterations, so chunks shrink geometrically and
 * processors finish at about the same time. Deterministic model for
 * equal-speed processors (round-robin grab order).
 */
Assignment guidedSelfSchedule(int iterations, int procs);

/** Cost-aware GSS model: first-to-finish grabs the next chunk. */
Assignment guidedSelfSchedule(int iterations, int procs,
                              const std::vector<double> &costs);

/** Total iterations in an assignment (sanity checking). */
int totalAssigned(const Assignment &assignment);

/** Iterations per processor. */
std::vector<int> loadPerProcessor(const Assignment &assignment);

/** Largest per-processor load. */
int maxLoad(const Assignment &assignment);

/** Smallest per-processor load. */
int minLoad(const Assignment &assignment);

} // namespace fb::sched

#endif // FB_SCHED_SCHEDULE_HH
