#include "sched/schedule.hh"

#include <algorithm>

#include "support/logging.hh"

namespace fb::sched
{

namespace
{

void
checkArgs(int iterations, int procs)
{
    FB_ASSERT(iterations >= 0, "negative iteration count");
    FB_ASSERT(procs > 0, "need at least one processor");
}

} // namespace

Assignment
blockSchedule(int iterations, int procs)
{
    checkArgs(iterations, procs);
    Assignment out(static_cast<std::size_t>(procs));
    int chunk = (iterations + procs - 1) / procs;
    for (int it = 0; it < iterations; ++it)
        out[static_cast<std::size_t>(std::min(it / std::max(chunk, 1),
                                              procs - 1))]
            .push_back(it);
    return out;
}

Assignment
cyclicSchedule(int iterations, int procs)
{
    checkArgs(iterations, procs);
    Assignment out(static_cast<std::size_t>(procs));
    for (int it = 0; it < iterations; ++it)
        out[static_cast<std::size_t>(it % procs)].push_back(it);
    return out;
}

Assignment
rotatingSchedule(int iterations, int procs, int outer_index)
{
    checkArgs(iterations, procs);
    FB_ASSERT(outer_index >= 0, "negative outer index");
    Assignment out(static_cast<std::size_t>(procs));
    int base = iterations / procs;
    int extra = iterations % procs;
    // Processors (outer_index + 0..extra-1) mod P take base+1
    // iterations this time around; the rest take base. Iterations are
    // handed out contiguously in processor order starting from the
    // rotation point so each processor's share is a contiguous range.
    int next = 0;
    for (int k = 0; k < procs; ++k) {
        int p = (outer_index + k) % procs;
        int take = base + (k < extra ? 1 : 0);
        for (int t = 0; t < take; ++t)
            out[static_cast<std::size_t>(p)].push_back(next++);
    }
    FB_ASSERT(next == iterations, "rotating schedule lost iterations");
    return out;
}

Assignment
chunkSelfSchedule(int iterations, int procs, int chunk)
{
    checkArgs(iterations, procs);
    FB_ASSERT(chunk > 0, "chunk must be positive");
    Assignment out(static_cast<std::size_t>(procs));
    int next = 0;
    int turn = 0;
    while (next < iterations) {
        int take = std::min(chunk, iterations - next);
        for (int t = 0; t < take; ++t)
            out[static_cast<std::size_t>(turn % procs)].push_back(next++);
        ++turn;
    }
    return out;
}

Assignment
guidedSelfSchedule(int iterations, int procs)
{
    checkArgs(iterations, procs);
    Assignment out(static_cast<std::size_t>(procs));
    int next = 0;
    int turn = 0;
    while (next < iterations) {
        int remaining = iterations - next;
        int take = (remaining + procs - 1) / procs;  // ceil(R / P)
        for (int t = 0; t < take; ++t)
            out[static_cast<std::size_t>(turn % procs)].push_back(next++);
        ++turn;
    }
    return out;
}

namespace
{

/** Shared cost-aware grabbing loop: @p next_take yields the size of
 * the next chunk given the remaining count. */
template <typename NextTake>
Assignment
greedyGrab(int iterations, int procs, const std::vector<double> &costs,
           NextTake next_take)
{
    FB_ASSERT(static_cast<int>(costs.size()) >= iterations,
              "costs vector shorter than the iteration count");
    Assignment out(static_cast<std::size_t>(procs));
    std::vector<double> finish(static_cast<std::size_t>(procs), 0.0);
    int next = 0;
    while (next < iterations) {
        // The processor that finishes first grabs the next chunk.
        int winner = 0;
        for (int p = 1; p < procs; ++p) {
            if (finish[static_cast<std::size_t>(p)] <
                finish[static_cast<std::size_t>(winner)])
                winner = p;
        }
        int take = std::min(next_take(iterations - next),
                            iterations - next);
        for (int t = 0; t < take; ++t) {
            out[static_cast<std::size_t>(winner)].push_back(next);
            finish[static_cast<std::size_t>(winner)] +=
                costs[static_cast<std::size_t>(next)];
            ++next;
        }
    }
    return out;
}

} // namespace

Assignment
chunkSelfSchedule(int iterations, int procs, int chunk,
                  const std::vector<double> &costs)
{
    checkArgs(iterations, procs);
    FB_ASSERT(chunk > 0, "chunk must be positive");
    return greedyGrab(iterations, procs, costs,
                      [chunk](int) { return chunk; });
}

Assignment
guidedSelfSchedule(int iterations, int procs,
                   const std::vector<double> &costs)
{
    checkArgs(iterations, procs);
    return greedyGrab(iterations, procs, costs, [procs](int remaining) {
        return (remaining + procs - 1) / procs;
    });
}

int
totalAssigned(const Assignment &assignment)
{
    int total = 0;
    for (const auto &list : assignment)
        total += static_cast<int>(list.size());
    return total;
}

std::vector<int>
loadPerProcessor(const Assignment &assignment)
{
    std::vector<int> out;
    out.reserve(assignment.size());
    for (const auto &list : assignment)
        out.push_back(static_cast<int>(list.size()));
    return out;
}

int
maxLoad(const Assignment &assignment)
{
    int best = 0;
    for (const auto &list : assignment)
        best = std::max(best, static_cast<int>(list.size()));
    return best;
}

int
minLoad(const Assignment &assignment)
{
    FB_ASSERT(!assignment.empty(), "empty assignment");
    int best = static_cast<int>(assignment.front().size());
    for (const auto &list : assignment)
        best = std::min(best, static_cast<int>(list.size()));
    return best;
}

} // namespace fb::sched
