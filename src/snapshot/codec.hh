/**
 * @file
 * Byte-level codec for machine snapshots.
 *
 * Every multi-byte value is encoded little-endian at a fixed width so
 * a snapshot written on one host decodes bit-identically on any other.
 * The Decoder is bounds-checked and sticky-failing: any read past the
 * end of the buffer latches the failure flag and returns zero values,
 * so call sites decode a whole struct and check ok() once at the end.
 */

#ifndef FB_SNAPSHOT_CODEC_HH
#define FB_SNAPSHOT_CODEC_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/bitvector.hh"

namespace fb::snapshot
{

/** CRC-32 (IEEE 802.3, reflected) over @p len bytes. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t len);

/** CRC-32 over a whole byte vector. */
std::uint32_t crc32(const std::vector<std::uint8_t> &data);

/**
 * Incremental CRC-32 with the same parameters as crc32(), for
 * checksumming discontiguous spans (e.g. a section's metadata and its
 * payload) without concatenating them.
 */
class Crc32
{
  public:
    void update(const std::uint8_t *data, std::size_t len);

    void update(const std::vector<std::uint8_t> &data)
    {
        update(data.data(), data.size());
    }

    std::uint32_t value() const { return _state ^ 0xffffffffu; }

  private:
    std::uint32_t _state = 0xffffffffu;
};

/**
 * Append-only little-endian encoder.
 */
class Encoder
{
  public:
    void u8(std::uint8_t v) { _buf.push_back(v); }

    void u32(std::uint32_t v)
    {
        // One capacity check + memcpy instead of four push_backs:
        // snapshots are built from millions of these.
        std::uint8_t le[4];
        for (int i = 0; i < 4; ++i)
            le[i] = static_cast<std::uint8_t>(v >> (8 * i));
        _buf.insert(_buf.end(), le, le + 4);
    }

    void u64(std::uint64_t v)
    {
        std::uint8_t le[8];
        for (int i = 0; i < 8; ++i)
            le[i] = static_cast<std::uint8_t>(v >> (8 * i));
        _buf.insert(_buf.end(), le, le + 8);
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    void b(bool v) { u8(v ? 1 : 0); }

    /** Length-prefixed UTF-8/byte string. */
    void str(const std::string &s)
    {
        u64(s.size());
        _buf.insert(_buf.end(), s.begin(), s.end());
    }

    /** Raw byte run (no length prefix — callers frame it themselves). */
    void bytes(const std::uint8_t *data, std::size_t len)
    {
        _buf.insert(_buf.end(), data, data + len);
    }

    void bytes(const std::vector<std::uint8_t> &data)
    {
        bytes(data.data(), data.size());
    }

    /** Pre-size the buffer for @p n further bytes (pure optimization). */
    void reserve(std::size_t n) { _buf.reserve(_buf.size() + n); }

    /** Length-prefixed bool vector, one byte per element. */
    void boolVec(const std::vector<bool> &v)
    {
        u64(v.size());
        for (bool x : v)
            b(x);
    }

    /** Length-prefixed u64 vector. */
    void u64Vec(const std::vector<std::uint64_t> &v)
    {
        // One resize + direct stores instead of an insert per element:
        // sync-record trails push megabytes through this path.
        u64(v.size());
        const std::size_t off = _buf.size();
        _buf.resize(off + v.size() * 8);
        std::uint8_t *p = _buf.data() + off;
        for (std::uint64_t x : v) {
            for (int i = 0; i < 8; ++i)
                p[i] = static_cast<std::uint8_t>(x >> (8 * i));
            p += 8;
        }
    }

    /** BitVector: bit count then the bits packed 8 per byte. */
    void bits(const BitVector &v)
    {
        u64(v.size());
        std::uint8_t acc = 0;
        for (std::size_t i = 0; i < v.size(); ++i) {
            if (v.test(i))
                acc |= static_cast<std::uint8_t>(1u << (i % 8));
            if (i % 8 == 7) {
                u8(acc);
                acc = 0;
            }
        }
        if (v.size() % 8 != 0)
            u8(acc);
    }

    const std::vector<std::uint8_t> &buffer() const { return _buf; }

    std::vector<std::uint8_t> take() { return std::move(_buf); }

  private:
    std::vector<std::uint8_t> _buf;
};

/**
 * Bounds-checked little-endian decoder over a borrowed buffer.
 */
class Decoder
{
  public:
    Decoder(const std::uint8_t *data, std::size_t size)
        : _data(data), _size(size)
    {
    }

    explicit Decoder(const std::vector<std::uint8_t> &buf)
        : Decoder(buf.data(), buf.size())
    {
    }

    std::uint8_t u8()
    {
        if (!need(1))
            return 0;
        return _data[_pos++];
    }

    std::uint32_t u32()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(_data[_pos++]) << (8 * i);
        return v;
    }

    std::uint64_t u64()
    {
        if (!need(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(_data[_pos++]) << (8 * i);
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    bool b() { return u8() != 0; }

    std::string str()
    {
        std::uint64_t n = u64();
        if (!need(n))
            return {};
        std::string s(reinterpret_cast<const char *>(_data + _pos),
                      static_cast<std::size_t>(n));
        _pos += static_cast<std::size_t>(n);
        return s;
    }

    void boolVec(std::vector<bool> &out)
    {
        std::uint64_t n = u64();
        if (!need(n)) {
            out.clear();
            return;
        }
        out.assign(static_cast<std::size_t>(n), false);
        for (std::uint64_t i = 0; i < n; ++i)
            out[static_cast<std::size_t>(i)] = b();
    }

    void u64Vec(std::vector<std::uint64_t> &out)
    {
        std::uint64_t n = u64();
        if (!need(n * 8)) {
            out.clear();
            return;
        }
        out.assign(static_cast<std::size_t>(n), 0);
        for (std::uint64_t i = 0; i < n; ++i)
            out[static_cast<std::size_t>(i)] = u64();
    }

    void bits(BitVector &out)
    {
        std::uint64_t n = u64();
        if (!need((n + 7) / 8)) {
            out = BitVector(0);
            return;
        }
        out = BitVector(static_cast<std::size_t>(n));
        std::uint8_t acc = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
            if (i % 8 == 0)
                acc = u8();
            out.set(static_cast<std::size_t>(i),
                    (acc >> (i % 8)) & 1u);
        }
    }

    /** True iff no read has overrun the buffer. */
    bool ok() const { return !_failed; }

    /** True iff the buffer is fully consumed and no read failed. */
    bool done() const { return !_failed && _pos == _size; }

    std::size_t remaining() const { return _size - _pos; }

  private:
    bool need(std::uint64_t n)
    {
        if (_failed || n > _size - _pos) {
            _failed = true;
            return false;
        }
        return true;
    }

    const std::uint8_t *_data;
    std::size_t _size;
    std::size_t _pos = 0;
    bool _failed = false;
};

} // namespace fb::snapshot

#endif // FB_SNAPSHOT_CODEC_HH
