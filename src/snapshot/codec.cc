#include "snapshot/codec.hh"

#include <array>

namespace fb::snapshot
{

namespace
{

std::array<std::uint32_t, 256>
buildCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t len)
{
    Crc32 c;
    c.update(data, len);
    return c.value();
}

void
Crc32::update(const std::uint8_t *data, std::size_t len)
{
    static const std::array<std::uint32_t, 256> table = buildCrcTable();
    for (std::size_t i = 0; i < len; ++i)
        _state = table[(_state ^ data[i]) & 0xffu] ^ (_state >> 8);
}

std::uint32_t
crc32(const std::vector<std::uint8_t> &data)
{
    return crc32(data.data(), data.size());
}

} // namespace fb::snapshot
