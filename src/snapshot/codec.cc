#include "snapshot/codec.hh"

#include <array>

namespace fb::snapshot
{

namespace
{

/**
 * Slice-by-8 lookup tables. Table 0 is the classic byte-at-a-time
 * table; table k folds a byte that sits k positions further ahead in
 * the stream, so eight table lookups advance the CRC by eight bytes
 * at once. The polynomial and reflection match crc32() exactly — the
 * slicing is a pure strength reduction, not a format change.
 */
std::array<std::array<std::uint32_t, 256>, 8>
buildCrcTables()
{
    std::array<std::array<std::uint32_t, 256>, 8> tables{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        tables[0][i] = c;
    }
    for (std::size_t t = 1; t < 8; ++t)
        for (std::uint32_t i = 0; i < 256; ++i)
            tables[t][i] = tables[0][tables[t - 1][i] & 0xffu] ^
                           (tables[t - 1][i] >> 8);
    return tables;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t len)
{
    Crc32 c;
    c.update(data, len);
    return c.value();
}

void
Crc32::update(const std::uint8_t *data, std::size_t len)
{
    static const auto tables = buildCrcTables();
    std::uint32_t crc = _state;
    // Eight bytes per iteration: the CRC register folds through the
    // first four bytes, the next four contribute independently. The
    // explicit little-endian assembly keeps the result identical on
    // any host endianness (the compiler turns it into a plain load on
    // little-endian targets).
    while (len >= 8) {
        const std::uint32_t lo = crc ^
            (static_cast<std::uint32_t>(data[0]) |
             static_cast<std::uint32_t>(data[1]) << 8 |
             static_cast<std::uint32_t>(data[2]) << 16 |
             static_cast<std::uint32_t>(data[3]) << 24);
        const std::uint32_t hi =
            static_cast<std::uint32_t>(data[4]) |
            static_cast<std::uint32_t>(data[5]) << 8 |
            static_cast<std::uint32_t>(data[6]) << 16 |
            static_cast<std::uint32_t>(data[7]) << 24;
        crc = tables[7][lo & 0xffu] ^ tables[6][(lo >> 8) & 0xffu] ^
              tables[5][(lo >> 16) & 0xffu] ^ tables[4][lo >> 24] ^
              tables[3][hi & 0xffu] ^ tables[2][(hi >> 8) & 0xffu] ^
              tables[1][(hi >> 16) & 0xffu] ^ tables[0][hi >> 24];
        data += 8;
        len -= 8;
    }
    for (std::size_t i = 0; i < len; ++i)
        crc = tables[0][(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
    _state = crc;
}

std::uint32_t
crc32(const std::vector<std::uint8_t> &data)
{
    return crc32(data.data(), data.size());
}

} // namespace fb::snapshot
