/**
 * @file
 * Background snapshot writer with bounded-queue backpressure and a
 * graceful degradation ladder.
 *
 * The simulation loop hands each staged capture (header + sections,
 * unassembled) to submit() and continues immediately; a single
 * background thread assembles the byte stream and persists it through
 * the SnapshotStore. Serialization and fsync latency therefore never
 * block Machine::run — the run only stalls when it outpaces the disk
 * badly enough to fill the bounded queue. (On a single-hardware-thread
 * host the persist happens inline instead — see WriterThreading::Auto
 * — with the fsync still deferred, so the no-stable-storage-wait
 * property survives even where true overlap is impossible.)
 *
 * Persistence failures never abort the run. Each save is retried with
 * exponential backoff; a capture that still fails is dropped and the
 * writer walks down a degradation ladder (INTERNALS section 18):
 *
 *   async-delta -> sync-delta -> sync-full -> disabled
 *
 * Every step is reported back through the SubmitVerdict so the
 * machine can re-base its delta chain (a dropped capture makes the
 * on-disk chain head stale) and record the degradation in RunResult.
 */

#ifndef FB_SNAPSHOT_WRITER_HH
#define FB_SNAPSHOT_WRITER_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "snapshot/format.hh"
#include "snapshot/store.hh"

namespace fb::snapshot
{

/** Position on the writer's degradation ladder. */
enum class WriterMode
{
    AsyncDelta, ///< normal: background persistence, deltas allowed
    SyncDelta,  ///< async writes failed: persist inline, deltas allowed
    SyncFull,   ///< sync deltas failed too: inline full snapshots only
    Disabled,   ///< even full snapshots fail: checkpointing off
};

/** Human-readable ladder position. */
const char *writerModeName(WriterMode mode);

/** How the writer persists captures while on the async rung. */
enum class WriterThreading
{
    /**
     * Background thread, except on single-hardware-thread hosts. A
     * lone core cannot overlap the writer with the simulation — the
     * thread hop only adds context switches — so Auto persists inline
     * there (fsync still deferred to drain(), so the run still never
     * waits on stable storage).
     */
    Auto,
    Background, ///< always use the background thread
    Inline,     ///< never spawn a thread (deterministic tests)
};

/** Tuning knobs for AsyncSnapshotWriter. */
struct WriterConfig
{
    /** Captures in flight before submit() blocks (>= 1). */
    std::size_t queueCapacity = 2;
    /** Retries per capture after the initial attempt. */
    int maxRetries = 3;
    /** First retry delay; doubles per retry. 0 = no sleeping (tests). */
    std::uint32_t backoffInitialMs = 1;
    /**
     * Run the store under Durability::Deferred while on the async
     * rung: saves land without fsync and drain() batches the flushes
     * (far cheaper than per-save fsync, and torn tails are already
     * covered by the load-time walk-back). Any degradation off the
     * async rung flips the store back to Strict — the sync rungs are
     * durable per save.
     */
    bool deferDurability = true;
    /** See WriterThreading — Auto picks per host parallelism. */
    WriterThreading threading = WriterThreading::Auto;
};

/** Counters exposed for tests, benchmarks and RunResult reporting. */
struct WriterStats
{
    std::uint64_t submitted = 0;    ///< captures handed to submit()
    std::uint64_t persisted = 0;    ///< captures durably in the store
    std::uint64_t asyncPersisted = 0; ///< ... via the background thread
    std::uint64_t syncPersisted = 0;  ///< ... inline after degradation
    std::uint64_t retries = 0;      ///< individual save retries
    std::uint64_t dropped = 0;      ///< captures lost after all retries
    std::uint64_t backpressureWaits = 0; ///< submit() blocked on queue
    std::uint64_t degradations = 0; ///< ladder steps taken
    WriterMode mode = WriterMode::AsyncDelta;
    std::string lastError;          ///< most recent persist failure
};

/**
 * submit()'s synchronous answer — mirrors sim::Machine::CheckpointAck
 * without depending on the sim layer.
 */
struct SubmitVerdict
{
    bool keep = true;      ///< false: stop checkpointing entirely
    bool forceFull = false; ///< next capture must re-base the chain
    bool deltasOk = true;  ///< false: stop producing deltas
    std::string degradation; ///< non-empty: ladder step to record
};

/**
 * Double-buffered background writer. One instance owns one background
 * thread for its whole lifetime; the destructor drains the queue and
 * joins. Thread-safe only in the intended shape: one producer calling
 * submit()/drain(), any thread calling stats().
 */
class AsyncSnapshotWriter
{
  public:
    explicit AsyncSnapshotWriter(SnapshotStore &store,
                                 WriterConfig config = {});

    /** Drains outstanding captures, then stops the thread. */
    ~AsyncSnapshotWriter();

    AsyncSnapshotWriter(const AsyncSnapshotWriter &) = delete;
    AsyncSnapshotWriter &operator=(const AsyncSnapshotWriter &) = delete;

    /**
     * Take ownership of one staged capture. In async mode the capture
     * is queued (blocking only while the queue is full) and the call
     * returns before anything touches the disk; in the degraded sync
     * modes it is persisted inline. The verdict reports any ladder
     * step taken since the previous submit.
     */
    SubmitVerdict submit(SnapshotHeader header,
                         std::vector<Section> sections);

    /**
     * Block until every queued capture has been persisted or dropped,
     * then flush any deferred fsyncs — on return the store is durable
     * up to the last accepted capture.
     */
    void drain();

    /** Snapshot of the counters (consistent under the writer lock). */
    WriterStats stats() const;

  private:
    struct Job
    {
        SnapshotHeader header;
        std::vector<Section> sections;
    };

    void workerMain();

    /** Assemble and save with retry/backoff. Lock NOT held. */
    bool persistWithRetry(const SnapshotHeader &header,
                          const std::vector<Section> &sections,
                          std::string &error);

    /** Record a dropped capture and break the chain. Lock held. */
    void noteDrop(const SnapshotHeader &header, const std::string &error);

    /** Step down the ladder. Lock held. */
    void degradeTo(WriterMode mode, const std::string &why);

    SnapshotStore &_store;
    WriterConfig _config;

    mutable std::mutex _lock;
    std::condition_variable _cv;      ///< worker wakeups
    std::condition_variable _doneCv;  ///< producer wakeups (drain/space)
    std::deque<Job> _queue;
    bool _stopping = false;
    bool _workerBusy = false;

    WriterMode _mode = WriterMode::AsyncDelta;
    /**
     * The on-disk chain is broken: a capture was dropped, so deltas
     * against the in-memory predecessor would name a snapshot the
     * store never received. Deltas are discarded (not persisted)
     * until the next full snapshot lands and re-anchors the chain.
     */
    bool _chainBroken = false;
    /** A ladder step not yet reported through a SubmitVerdict. */
    std::string _pendingDegradation;

    WriterStats _stats;

    /** Resolved WriterThreading: persist on the caller's thread. */
    bool _inline = false;

    std::thread _worker;
};

} // namespace fb::snapshot

#endif // FB_SNAPSHOT_WRITER_HH
