#include "snapshot/format.hh"

#include <cstring>
#include <sstream>

#include "snapshot/codec.hh"

namespace fb::snapshot
{

namespace
{

// magic(8) + version(4) + fingerprint(8) + cycle(8) + generation(8) +
// baseFull(8) + prev(8) + sectionCount(4) + headerCrc(4). The chain
// fields sit after the generation so the generation keeps its v1
// offset (28) — corruption injectors and offset-pinned tests rely on
// that.
constexpr std::size_t headerBytes = 8 + 4 + 8 + 8 + 8 + 8 + 8 + 4 + 4;

} // namespace

std::vector<std::uint8_t>
assemble(const SnapshotHeader &header, const std::vector<Section> &sections)
{
    std::size_t total = headerBytes;
    for (const Section &s : sections)
        total += 4 + 8 + 4 + s.payload.size();

    Encoder e;
    e.reserve(total);
    for (std::uint8_t m : magic)
        e.u8(m);
    e.u32(header.version);
    e.u64(header.configFingerprint);
    e.u64(header.cycle);
    e.u64(header.generation);
    e.u64(header.baseFull);
    e.u64(header.prev);
    e.u32(static_cast<std::uint32_t>(sections.size()));
    e.u32(crc32(e.buffer()));

    for (const Section &s : sections) {
        // The section CRC covers the id and declared size as well as
        // the payload, so a flipped bit in the metadata fields cannot
        // slip through either.
        Encoder meta;
        meta.u32(s.id);
        meta.u64(s.payload.size());
        Crc32 crc;
        crc.update(meta.buffer());
        crc.update(s.payload);
        e.bytes(meta.buffer());
        e.u32(crc.value());
        e.bytes(s.payload);
    }
    return e.take();
}

bool
peekHeader(const std::vector<std::uint8_t> &bytes, SnapshotHeader &header,
           std::string &error)
{
    if (bytes.size() < headerBytes) {
        std::ostringstream oss;
        oss << "truncated header: " << bytes.size() << " bytes, need "
            << headerBytes;
        error = oss.str();
        return false;
    }
    if (std::memcmp(bytes.data(), magic, sizeof(magic)) != 0) {
        error = "bad magic";
        return false;
    }
    Decoder d(bytes.data() + sizeof(magic), headerBytes - sizeof(magic));
    header.version = d.u32();
    header.configFingerprint = d.u64();
    header.cycle = d.u64();
    header.generation = d.u64();
    header.baseFull = d.u64();
    header.prev = d.u64();
    const std::uint32_t section_count = d.u32();
    (void)section_count;
    const std::uint32_t file_crc = d.u32();
    if (crc32(bytes.data(), headerBytes - 4) != file_crc) {
        error = "header CRC mismatch";
        return false;
    }
    if (header.version != formatVersion) {
        std::ostringstream oss;
        oss << "unsupported format version " << header.version
            << " (expected " << formatVersion << ")";
        error = oss.str();
        return false;
    }
    return true;
}

bool
disassemble(const std::vector<std::uint8_t> &bytes, SnapshotHeader &header,
            std::vector<Section> &sections, std::string &error)
{
    if (!peekHeader(bytes, header, error))
        return false;

    Decoder d(bytes.data() + sizeof(magic), bytes.size() - sizeof(magic));
    d.u32();  // version
    d.u64();  // fingerprint
    d.u64();  // cycle
    d.u64();  // generation
    d.u64();  // baseFull
    d.u64();  // prev
    const std::uint32_t section_count = d.u32();
    d.u32();  // header CRC

    sections.clear();
    for (std::uint32_t i = 0; i < section_count; ++i) {
        Section s;
        s.id = d.u32();
        const std::uint64_t size = d.u64();
        const std::uint32_t payload_crc = d.u32();
        if (!d.ok() || size > d.remaining()) {
            std::ostringstream oss;
            oss << "section " << i << " (id " << s.id
                << "): truncated (declares " << size << " bytes, "
                << d.remaining() << " remain)";
            error = oss.str();
            return false;
        }
        s.payload.resize(static_cast<std::size_t>(size));
        for (std::uint64_t k = 0; k < size; ++k)
            s.payload[static_cast<std::size_t>(k)] = d.u8();
        Encoder meta;
        meta.u32(s.id);
        meta.u64(size);
        Crc32 crc;
        crc.update(meta.buffer());
        crc.update(s.payload);
        if (crc.value() != payload_crc) {
            std::ostringstream oss;
            oss << "section " << i << " (id " << s.id
                << "): section CRC mismatch";
            error = oss.str();
            return false;
        }
        sections.push_back(std::move(s));
    }
    if (d.remaining() != 0) {
        std::ostringstream oss;
        oss << d.remaining() << " trailing byte(s) after last section";
        error = oss.str();
        return false;
    }
    return true;
}

} // namespace fb::snapshot
