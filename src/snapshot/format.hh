/**
 * @file
 * The versioned binary snapshot container (see docs/INTERNALS.md
 * section 15 for the byte-level layout).
 *
 * A snapshot is a header followed by typed sections. The header pins
 * the magic, format version, the machine-configuration fingerprint
 * (so a snapshot can never be silently restored into a differently
 * configured machine), the cycle the state was captured at, and the
 * store generation. Header and every section carry independent CRC32s:
 * a torn write or a flipped bit is detected before any state is
 * decoded, never after.
 */

#ifndef FB_SNAPSHOT_FORMAT_HH
#define FB_SNAPSHOT_FORMAT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fb::snapshot
{

/**
 * Current container format version. Version 2 added the delta-chain
 * linkage fields (`baseFull`, `prev`) to the header and the delta
 * section ids; version 3 added the rotated-out sync-record count to
 * the MachineCore and CoreDelta sections (the sync-record window).
 * Older streams are rejected, not migrated — a snapshot store is
 * regenerated from a live machine, never converted.
 */
constexpr std::uint32_t formatVersion = 3;

/** 8-byte magic at offset 0: "FBSNAP" + version tag bytes. */
constexpr std::uint8_t magic[8] = {'F', 'B', 'S', 'N', 'A', 'P',
                                   '0', '1'};

/** Section identifiers (one section per machine component). */
enum class SectionId : std::uint32_t
{
    MachineCore = 1,  ///< clock, fences, recoveries, oracle bookkeeping
    Memory = 2,       ///< shared memory (sparse dirty pages)
    Bus = 3,          ///< interconnect busy state and counters
    Network = 4,      ///< barrier units + in-flight deliveries
    Caches = 5,       ///< per-processor cache tags and counters
    Processors = 6,   ///< per-processor core state
    Injector = 7,     ///< fault-plan cursors (optional)
    Watchdog = 8,     ///< armed timers and backoff state (optional)
    MemoryDelta = 9,  ///< epoch-dirty memory pages + stats (delta only)
    BusDelta = 10,    ///< epoch-dirty bank pages (delta only)
    CoreDelta = 11,   ///< clock/fences + new sync records + sharer patches
    CacheDelta = 12,  ///< per-cache epoch-filled lines + counters
};

/**
 * Fixed-size metadata preceding the sections.
 *
 * The chain linkage lives in the header so the store can reason about
 * delta chains (prune safely, walk back past corrupt links) with a
 * `peekHeader()` probe, without decoding any payload. A *full*
 * snapshot carries `baseFull == prev == generation`; a *delta*
 * carries `prev` = the generation it applies on top of and
 * `baseFull` = the full snapshot anchoring its chain.
 */
struct SnapshotHeader
{
    std::uint32_t version = formatVersion;
    std::uint64_t configFingerprint = 0;
    std::uint64_t cycle = 0;       ///< machine clock at capture
    std::uint64_t generation = 0;  ///< store generation number
    std::uint64_t baseFull = 0;    ///< chain anchor (== generation: full)
    std::uint64_t prev = 0;        ///< predecessor (== generation: full)

    bool isDelta() const { return prev != generation; }
};

/** One typed, CRC-protected payload. */
struct Section
{
    std::uint32_t id = 0;
    std::vector<std::uint8_t> payload;
};

/** Serialize header + sections into the on-disk byte stream. */
std::vector<std::uint8_t> assemble(const SnapshotHeader &header,
                                   const std::vector<Section> &sections);

/**
 * Parse and fully validate a snapshot byte stream: magic, version,
 * header CRC, section table bounds, and every section CRC. Returns
 * false with a positional diagnostic in @p error on any mismatch; on
 * success every payload is known intact.
 */
bool disassemble(const std::vector<std::uint8_t> &bytes,
                 SnapshotHeader &header, std::vector<Section> &sections,
                 std::string &error);

/**
 * Validate only the header (magic, version, header CRC) and return
 * it — cheap enough to probe candidate files during the generation
 * walk-back without decoding payloads.
 */
bool peekHeader(const std::vector<std::uint8_t> &bytes,
                SnapshotHeader &header, std::string &error);

/**
 * Incremental FNV-1a hasher used for the configuration fingerprint.
 */
class Fnv1a
{
  public:
    void mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            _h ^= (v >> (8 * i)) & 0xffu;
            _h *= 0x100000001b3ULL;
        }
    }

    void mixString(const std::string &s)
    {
        mix(s.size());
        for (char c : s) {
            _h ^= static_cast<std::uint8_t>(c);
            _h *= 0x100000001b3ULL;
        }
    }

    std::uint64_t value() const { return _h; }

  private:
    std::uint64_t _h = 0xcbf29ce484222325ULL;
};

} // namespace fb::snapshot

#endif // FB_SNAPSHOT_FORMAT_HH
