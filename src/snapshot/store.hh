/**
 * @file
 * Durable, generation-numbered snapshot persistence.
 *
 * Every write goes to a temporary file, is fsync'd, and is then
 * atomically renamed into place (followed by a directory fsync), so a
 * crash at any instant leaves either the previous generation or the
 * new one — never a half-written file under a final name. The store
 * keeps the newest @c keepGenerations snapshots and prunes older ones.
 * On load it walks generations newest-first, skipping any file that
 * fails magic/version/CRC validation or whose embedded generation
 * disagrees with its filename (a stale or copied-over snapshot), and
 * returns the newest valid one.
 */

#ifndef FB_SNAPSHOT_STORE_HH
#define FB_SNAPSHOT_STORE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fb::snapshot
{

class SnapshotStore
{
  public:
    /**
     * @param directory  created if missing
     * @param keepGenerations  how many newest snapshots to retain (>= 1)
     */
    explicit SnapshotStore(std::string directory,
                           std::size_t keepGenerations = 3);

    /**
     * Durably persist @p bytes as generation @p generation
     * (write-temp / fsync / atomic-rename / fsync-directory), then
     * prune generations beyond the retention window. Returns false
     * with a diagnostic in @p error on any I/O failure.
     */
    bool save(std::uint64_t generation,
              const std::vector<std::uint8_t> &bytes, std::string &error);

    /**
     * Load the newest snapshot that passes full validation
     * (magic, version, header CRC, every section CRC, and
     * embedded-generation == filename-generation). Corrupt or torn
     * candidates are skipped; their diagnostics are appended to
     * @p diagnostics. Returns false only when no valid snapshot
     * exists at all.
     */
    bool loadLatest(std::vector<std::uint8_t> &bytes,
                    std::uint64_t &generation,
                    std::vector<std::string> &diagnostics) const;

    /** All (generation, path) pairs present on disk, ascending. */
    std::vector<std::pair<std::uint64_t, std::string>> list() const;

    /** Newest generation on disk, or 0 when the store is empty. */
    std::uint64_t newestGeneration() const;

    const std::string &directory() const { return _dir; }

    /** Path a given generation is stored under. */
    std::string pathFor(std::uint64_t generation) const;

  private:
    std::string _dir;
    std::size_t _keep;
};

/** Read a whole file into @p bytes; false + diagnostic on failure. */
bool readFile(const std::string &path, std::vector<std::uint8_t> &bytes,
              std::string &error);

} // namespace fb::snapshot

#endif // FB_SNAPSHOT_STORE_HH
