/**
 * @file
 * Durable, generation-numbered snapshot persistence.
 *
 * Every write goes to a temporary file, is fsync'd, and is then
 * atomically renamed into place (followed by a directory fsync), so a
 * crash at any instant leaves either the previous generation or the
 * new one — never a half-written file under a final name. Under
 * Durability::Deferred the per-save fsyncs are batched into sync()
 * instead — a crash can then tear the not-yet-synced tail, which the
 * CRC-validating load walk-back treats exactly like any other
 * corruption. The store
 * keeps the newest @c keepGenerations snapshots and prunes older ones,
 * but never a generation that a retained delta chain still links to
 * (a delta is worthless without its base). On load it walks
 * generations newest-first, skipping any file that fails
 * magic/version/CRC validation or whose embedded generation disagrees
 * with its filename (a stale or copied-over snapshot), and returns
 * the newest valid one — or, for delta stores, the newest generation
 * whose *entire* chain back to its full base validates.
 *
 * An injectable I/O-fault shim covers the syscalls a real disk can
 * betray: a failing write, a short write that the kernel nonetheless
 * reported as complete, and a failing fsync. Tests drive every
 * recovery path deterministically through it.
 */

#ifndef FB_SNAPSHOT_STORE_HH
#define FB_SNAPSHOT_STORE_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace fb::snapshot
{

/**
 * When the store flushes a save to stable storage.
 *
 * Restorability never depends on this choice: every load path
 * validates CRCs and walks back past torn or half-written files, so a
 * crash under Deferred durability costs at most the not-yet-synced
 * tail of the chain — never the store's integrity. What Strict buys
 * is a durability *deadline*: save() returning true means the bytes
 * survive a crash from that instant on.
 */
enum class Durability
{
    /** fsync file + directory inside every save() (the default). */
    Strict,
    /** save() skips both fsyncs; sync() batches them later. */
    Deferred,
};

/**
 * Deterministic I/O-fault injection for SnapshotStore. Ordinals are
 * 1-based and counted across the store's lifetime, so "fail the Nth
 * write" sweeps enumerate every write a campaign will ever issue.
 * `shortNthWrite` is the nastiest case: only half the requested bytes
 * reach the file but the call reports full success, so the save path
 * happily fsyncs and renames a torn file into place under its final
 * name — exactly what the load-time walk-back must catch.
 */
struct IoFaultShim
{
    std::uint64_t failNthWrite = 0;   ///< 1-based; 0 = never
    std::uint64_t shortNthWrite = 0;  ///< 1-based; 0 = never
    std::uint64_t failNthFsync = 0;   ///< 1-based; 0 = never
    int errnoToReport = 28;           ///< ENOSPC by default
    /** Keep failing every call from the Nth on (a full disk stays
     *  full), instead of failing exactly once (a transient error). */
    bool persistent = false;

    // Observability for tests: calls seen and failures injected.
    std::uint64_t writeCalls = 0;
    std::uint64_t fsyncCalls = 0;
    std::uint64_t injected = 0;
};

class SnapshotStore
{
  public:
    /**
     * @param directory  created if missing
     * @param keepGenerations  how many newest snapshots to retain (>= 1)
     *
     * Construction sweeps the directory for stale `.tmp` files left
     * by a previous writer that crashed mid-save and deletes them —
     * they were never renamed into place, so they hold no restorable
     * state and would otherwise linger forever.
     */
    explicit SnapshotStore(std::string directory,
                           std::size_t keepGenerations = 3);

    /**
     * Durably persist @p bytes as generation @p generation
     * (write-temp / fsync / atomic-rename / fsync-directory), then
     * prune generations beyond the retention window. Returns false
     * with a diagnostic in @p error on any I/O failure.
     */
    bool save(std::uint64_t generation,
              const std::vector<std::uint8_t> &bytes, std::string &error);

    /**
     * Load the newest snapshot that passes full validation
     * (magic, version, header CRC, every section CRC, and
     * embedded-generation == filename-generation). Corrupt or torn
     * candidates are skipped; their diagnostics are appended to
     * @p diagnostics. Returns false only when no valid snapshot
     * exists at all; @p generation is written only on success.
     *
     * Note: a delta snapshot can be "valid" here yet unrestorable on
     * its own — machine restore paths should use loadLatestChain().
     */
    bool loadLatest(std::vector<std::uint8_t> &bytes,
                    std::uint64_t &generation,
                    std::vector<std::string> &diagnostics) const;

    /**
     * Load the newest *restorable* state: the newest generation whose
     * full delta chain — the file itself, every predecessor named by
     * its `prev` links, and the full base — validates. On success
     * @p chain holds the raw streams ordered base-first (a full-only
     * store yields a single-element chain) and @p generation the head
     * generation. A corrupt link anywhere disqualifies that head and
     * the walk-back retries from the next-older candidate, appending
     * per-file diagnostics. Returns false when no intact chain exists;
     * @p generation is written only on success.
     */
    bool loadLatestChain(std::vector<std::vector<std::uint8_t>> &chain,
                         std::uint64_t &generation,
                         std::vector<std::string> &diagnostics) const;

    /** All (generation, path) pairs present on disk, ascending. */
    std::vector<std::pair<std::uint64_t, std::string>> list() const;

    /** Newest generation on disk, or 0 when the store is empty. */
    std::uint64_t newestGeneration() const;

    const std::string &directory() const { return _dir; }

    /** Path a given generation is stored under. */
    std::string pathFor(std::uint64_t generation) const;

    /**
     * Install (or clear, with nullptr) the I/O-fault shim. The shim
     * is borrowed, not owned; it must outlive the store or be cleared
     * first. Counters accumulate in the caller's struct.
     */
    void setIoFaultShim(IoFaultShim *shim) { _shim = shim; }

    /**
     * Switch durability policy. Under Durability::Deferred every
     * save() lands the file under its final name without fsync; the
     * backlog becomes durable at the next sync(). Switching back to
     * Strict flushes the backlog immediately.
     */
    void setDurability(Durability durability);

    Durability durability() const { return _durability; }

    /**
     * Make every deferred save durable. On Linux this is one
     * syncfs(): a single journal/device flush covers every pending
     * write and rename, which costs a fraction of one commit per file
     * — the entire point of deferring. Elsewhere it falls back to one
     * fsync per pending file plus a directory fsync. A no-op under
     * Strict or with nothing pending; returns false with a diagnostic
     * in @p error when the flush fails (the backlog stays pending for
     * a retry).
     */
    bool sync(std::string &error);

  private:
    /** Chain linkage of one on-disk generation, as seen at save time. */
    struct ChainLink
    {
        bool isDelta = false;
        std::uint64_t prev = 0;
    };

    ssize_t shimWrite(int fd, const std::uint8_t *data, std::size_t len);
    int shimFsync(int fd, bool wholeFs = false);
    void removeStaleTemporaries() const;
    void pruneRetired();

    std::string _dir;
    std::size_t _keep;
    IoFaultShim *_shim = nullptr;
    Durability _durability = Durability::Strict;
    bool _dirEnsured = false;
    /** Final paths saved but not yet flushed (Deferred only). */
    std::vector<std::string> _pendingSync;
    /**
     * Save-time linkage of every generation the store holds, so the
     * chain-protecting prune never re-reads headers off the disk on
     * the hot save path. Seeded from a one-time directory scan at
     * construction; the store assumes single-writer ownership of its
     * directory (as save() always has), so the index stays exact.
     */
    std::map<std::uint64_t, ChainLink> _chainIndex;
};

/** Read a whole file into @p bytes; false + diagnostic on failure. */
bool readFile(const std::string &path, std::vector<std::uint8_t> &bytes,
              std::string &error);

} // namespace fb::snapshot

#endif // FB_SNAPSHOT_STORE_HH
