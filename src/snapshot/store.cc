#include "snapshot/store.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "snapshot/format.hh"

namespace fb::snapshot
{

namespace
{

constexpr const char *filePrefix = "snap-";
constexpr const char *fileSuffix = ".fbsnap";

std::string
errnoString()
{
    return std::strerror(errno);
}

/** Parse "snap-<generation>.fbsnap"; false if the name doesn't match. */
bool
parseGeneration(const std::string &name, std::uint64_t &generation)
{
    const std::size_t prefix_len = std::strlen(filePrefix);
    const std::size_t suffix_len = std::strlen(fileSuffix);
    if (name.size() <= prefix_len + suffix_len)
        return false;
    if (name.compare(0, prefix_len, filePrefix) != 0)
        return false;
    if (name.compare(name.size() - suffix_len, suffix_len, fileSuffix) != 0)
        return false;
    const std::string digits =
        name.substr(prefix_len, name.size() - prefix_len - suffix_len);
    if (digits.empty())
        return false;
    std::uint64_t g = 0;
    for (char c : digits) {
        if (c < '0' || c > '9')
            return false;
        g = g * 10 + static_cast<std::uint64_t>(c - '0');
    }
    generation = g;
    return true;
}

bool
fsyncPath(const std::string &path, std::string &error)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        error = "open '" + path + "' for fsync: " + errnoString();
        return false;
    }
    if (::fsync(fd) != 0) {
        error = "fsync '" + path + "': " + errnoString();
        ::close(fd);
        return false;
    }
    ::close(fd);
    return true;
}

} // namespace

SnapshotStore::SnapshotStore(std::string directory,
                             std::size_t keepGenerations)
    : _dir(std::move(directory)),
      _keep(keepGenerations == 0 ? 1 : keepGenerations)
{
}

std::string
SnapshotStore::pathFor(std::uint64_t generation) const
{
    std::ostringstream oss;
    oss << _dir << '/' << filePrefix << generation << fileSuffix;
    return oss.str();
}

bool
SnapshotStore::save(std::uint64_t generation,
                    const std::vector<std::uint8_t> &bytes,
                    std::string &error)
{
    if (::mkdir(_dir.c_str(), 0777) != 0 && errno != EEXIST) {
        error = "mkdir '" + _dir + "': " + errnoString();
        return false;
    }

    const std::string final_path = pathFor(generation);
    const std::string tmp_path = final_path + ".tmp";

    int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        error = "open '" + tmp_path + "': " + errnoString();
        return false;
    }
    std::size_t written = 0;
    while (written < bytes.size()) {
        ssize_t n = ::write(fd, bytes.data() + written,
                            bytes.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = "write '" + tmp_path + "': " + errnoString();
            ::close(fd);
            ::unlink(tmp_path.c_str());
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        error = "fsync '" + tmp_path + "': " + errnoString();
        ::close(fd);
        ::unlink(tmp_path.c_str());
        return false;
    }
    ::close(fd);

    if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
        error = "rename '" + tmp_path + "' -> '" + final_path +
                "': " + errnoString();
        ::unlink(tmp_path.c_str());
        return false;
    }
    // Make the rename itself durable.
    if (!fsyncPath(_dir, error))
        return false;

    // Prune beyond the retention window. Best-effort: a failed unlink
    // only leaves an extra old generation behind.
    auto entries = list();
    if (entries.size() > _keep) {
        for (std::size_t i = 0; i + _keep < entries.size(); ++i)
            ::unlink(entries[i].second.c_str());
    }
    return true;
}

std::vector<std::pair<std::uint64_t, std::string>>
SnapshotStore::list() const
{
    std::vector<std::pair<std::uint64_t, std::string>> out;
    DIR *d = ::opendir(_dir.c_str());
    if (d == nullptr)
        return out;
    while (dirent *ent = ::readdir(d)) {
        std::uint64_t g = 0;
        if (parseGeneration(ent->d_name, g))
            out.emplace_back(g, _dir + '/' + ent->d_name);
    }
    ::closedir(d);
    std::sort(out.begin(), out.end());
    return out;
}

std::uint64_t
SnapshotStore::newestGeneration() const
{
    auto entries = list();
    return entries.empty() ? 0 : entries.back().first;
}

bool
SnapshotStore::loadLatest(std::vector<std::uint8_t> &bytes,
                          std::uint64_t &generation,
                          std::vector<std::string> &diagnostics) const
{
    auto entries = list();
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        std::vector<std::uint8_t> candidate;
        std::string error;
        if (!readFile(it->second, candidate, error)) {
            diagnostics.push_back(it->second + ": " + error);
            continue;
        }
        SnapshotHeader header;
        std::vector<Section> sections;
        if (!disassemble(candidate, header, sections, error)) {
            diagnostics.push_back(it->second + ": " + error);
            continue;
        }
        if (header.generation != it->first) {
            std::ostringstream oss;
            oss << it->second << ": stale snapshot (embedded generation "
                << header.generation << " != filename generation "
                << it->first << ")";
            diagnostics.push_back(oss.str());
            continue;
        }
        bytes = std::move(candidate);
        generation = it->first;
        return true;
    }
    if (entries.empty())
        diagnostics.push_back("no snapshots in '" + _dir + "'");
    return false;
}

bool
readFile(const std::string &path, std::vector<std::uint8_t> &bytes,
         std::string &error)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        error = "open: " + errnoString();
        return false;
    }
    bytes.clear();
    std::uint8_t buf[65536];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = "read: " + errnoString();
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        bytes.insert(bytes.end(), buf, buf + n);
    }
    ::close(fd);
    return true;
}

} // namespace fb::snapshot
