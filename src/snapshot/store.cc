#include "snapshot/store.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <sstream>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "snapshot/format.hh"

namespace fb::snapshot
{

namespace
{

constexpr const char *filePrefix = "snap-";
constexpr const char *fileSuffix = ".fbsnap";
constexpr const char *tmpSuffix = ".tmp";

std::string
errnoString()
{
    return std::strerror(errno);
}

/** Parse "snap-<generation>.fbsnap"; false if the name doesn't match. */
bool
parseGeneration(const std::string &name, std::uint64_t &generation)
{
    const std::size_t prefix_len = std::strlen(filePrefix);
    const std::size_t suffix_len = std::strlen(fileSuffix);
    if (name.size() <= prefix_len + suffix_len)
        return false;
    if (name.compare(0, prefix_len, filePrefix) != 0)
        return false;
    if (name.compare(name.size() - suffix_len, suffix_len, fileSuffix) != 0)
        return false;
    const std::string digits =
        name.substr(prefix_len, name.size() - prefix_len - suffix_len);
    if (digits.empty())
        return false;
    std::uint64_t g = 0;
    for (char c : digits) {
        if (c < '0' || c > '9')
            return false;
        g = g * 10 + static_cast<std::uint64_t>(c - '0');
    }
    generation = g;
    return true;
}

/**
 * Read just enough of @p path to validate its header. Cheap probe for
 * prune-time chain walking — no section payloads are touched.
 */
bool
peekFile(const std::string &path, SnapshotHeader &header,
         std::string &error)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        error = "open: " + errnoString();
        return false;
    }
    std::vector<std::uint8_t> head(256);
    std::size_t got = 0;
    while (got < head.size()) {
        ssize_t n = ::read(fd, head.data() + got, head.size() - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = "read: " + errnoString();
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        got += static_cast<std::size_t>(n);
    }
    ::close(fd);
    head.resize(got);
    return peekHeader(head, header, error);
}

} // namespace

SnapshotStore::SnapshotStore(std::string directory,
                             std::size_t keepGenerations)
    : _dir(std::move(directory)),
      _keep(keepGenerations == 0 ? 1 : keepGenerations)
{
    removeStaleTemporaries();
    // Seed the chain index from whatever a previous writer left
    // behind. A header that won't even peek is indexed as a chainless
    // full: nothing may depend on it, so pruning it early is safe.
    for (const auto &[generation, path] : list()) {
        SnapshotHeader header;
        std::string error;
        ChainLink link;
        if (peekFile(path, header, error)) {
            link.isDelta = header.isDelta();
            link.prev = header.prev;
        } else {
            link.prev = generation;
        }
        _chainIndex.emplace(generation, link);
    }
}

void
SnapshotStore::removeStaleTemporaries() const
{
    // A `.tmp` in the directory at construction time is the debris of
    // a writer that died between open and rename. It was never
    // renamed into place, so no restore path can use it — delete it
    // rather than letting it accumulate forever. (The store assumes
    // single-writer ownership of its directory, as save() always has.)
    DIR *d = ::opendir(_dir.c_str());
    if (d == nullptr)
        return;
    const std::size_t tmp_len = std::strlen(tmpSuffix);
    while (dirent *ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (name.size() <= tmp_len ||
            name.compare(name.size() - tmp_len, tmp_len, tmpSuffix) != 0)
            continue;
        std::uint64_t g = 0;
        if (!parseGeneration(name.substr(0, name.size() - tmp_len), g))
            continue;
        ::unlink((_dir + '/' + name).c_str());
    }
    ::closedir(d);
}

std::string
SnapshotStore::pathFor(std::uint64_t generation) const
{
    std::ostringstream oss;
    oss << _dir << '/' << filePrefix << generation << fileSuffix;
    return oss.str();
}

ssize_t
SnapshotStore::shimWrite(int fd, const std::uint8_t *data, std::size_t len)
{
    if (_shim != nullptr) {
        const std::uint64_t n = ++_shim->writeCalls;
        if (_shim->failNthWrite != 0 &&
            (n == _shim->failNthWrite ||
             (_shim->persistent && n > _shim->failNthWrite))) {
            ++_shim->injected;
            errno = _shim->errnoToReport;
            return -1;
        }
        if (_shim->shortNthWrite != 0 && n == _shim->shortNthWrite) {
            // Write only half the bytes but report complete success:
            // the save path will fsync and rename a torn file into
            // place under its final name.
            ++_shim->injected;
            std::size_t half = len / 2;
            std::size_t put = 0;
            while (put < half) {
                ssize_t w = ::write(fd, data + put, half - put);
                if (w < 0) {
                    if (errno == EINTR)
                        continue;
                    break;
                }
                put += static_cast<std::size_t>(w);
            }
            return static_cast<ssize_t>(len);
        }
    }
    return ::write(fd, data, len);
}

int
SnapshotStore::shimFsync(int fd, bool wholeFs)
{
    if (_shim != nullptr) {
        const std::uint64_t n = ++_shim->fsyncCalls;
        if (_shim->failNthFsync != 0 &&
            (n == _shim->failNthFsync ||
             (_shim->persistent && n > _shim->failNthFsync))) {
            ++_shim->injected;
            errno = _shim->errnoToReport;
            return -1;
        }
    }
#ifdef __linux__
    if (wholeFs)
        return ::syncfs(fd);
#else
    (void)wholeFs;
#endif
    return ::fsync(fd);
}

bool
SnapshotStore::save(std::uint64_t generation,
                    const std::vector<std::uint8_t> &bytes,
                    std::string &error)
{
    if (!_dirEnsured) {
        if (::mkdir(_dir.c_str(), 0777) != 0 && errno != EEXIST) {
            error = "mkdir '" + _dir + "': " + errnoString();
            return false;
        }
        _dirEnsured = true;
    }

    const std::string final_path = pathFor(generation);
    const std::string tmp_path = final_path + tmpSuffix;

    int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        error = "open '" + tmp_path + "': " + errnoString();
        return false;
    }
    std::size_t written = 0;
    while (written < bytes.size()) {
        ssize_t n = shimWrite(fd, bytes.data() + written,
                              bytes.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = "write '" + tmp_path + "': " + errnoString();
            ::close(fd);
            ::unlink(tmp_path.c_str());
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    if (_durability == Durability::Strict && shimFsync(fd) != 0) {
        error = "fsync '" + tmp_path + "': " + errnoString();
        ::close(fd);
        ::unlink(tmp_path.c_str());
        return false;
    }
    ::close(fd);

    if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
        error = "rename '" + tmp_path + "' -> '" + final_path +
                "': " + errnoString();
        ::unlink(tmp_path.c_str());
        return false;
    }
    if (_durability == Durability::Strict) {
        // Make the rename itself durable.
        int dirfd = ::open(_dir.c_str(), O_RDONLY);
        if (dirfd < 0) {
            error = "open '" + _dir + "' for fsync: " + errnoString();
            return false;
        }
        if (shimFsync(dirfd) != 0) {
            error = "fsync '" + _dir + "': " + errnoString();
            ::close(dirfd);
            return false;
        }
        ::close(dirfd);
    } else {
        _pendingSync.push_back(final_path);
    }

    // Index the new generation by the linkage its own header declares
    // (peeked from the in-memory bytes — the hot save path never
    // re-reads the disk). Bytes that don't even peek are indexed as a
    // chainless full: nothing may legitimately depend on them.
    {
        SnapshotHeader header;
        std::string peek_error;
        ChainLink link;
        if (peekHeader(bytes, header, peek_error)) {
            link.isDelta = header.isDelta();
            link.prev = header.prev;
        } else {
            link.prev = generation;
        }
        _chainIndex[generation] = link;
    }
    pruneRetired();
    return true;
}

void
SnapshotStore::pruneRetired()
{
    // Prune beyond the retention window — but never a generation that
    // a retained delta chain still links to: deleting a delta's base
    // (or any intermediate link) would orphan every newer delta built
    // on it. Chains are walked through the in-memory index.
    // Best-effort: a failed unlink only leaves an extra old
    // generation behind.
    if (_chainIndex.size() <= _keep)
        return;
    std::set<std::uint64_t> keep_set;
    auto newest = _chainIndex.rbegin();
    for (std::size_t i = 0; i < _keep && newest != _chainIndex.rend();
         ++i, ++newest) {
        std::uint64_t g = newest->first;
        // Follow prev links until a full snapshot, a missing link, or
        // non-decreasing linkage (corrupt — stop rather than loop).
        while (keep_set.insert(g).second) {
            auto it = _chainIndex.find(g);
            if (it == _chainIndex.end())
                break;
            if (!it->second.isDelta || it->second.prev >= g)
                break;
            g = it->second.prev;
        }
    }
    for (auto it = _chainIndex.begin(); it != _chainIndex.end();) {
        if (keep_set.count(it->first) != 0) {
            ++it;
            continue;
        }
        const std::string path = pathFor(it->first);
        ::unlink(path.c_str());
        ::unlink((path + tmpSuffix).c_str());
        // A pruned file has nothing left to make durable.
        _pendingSync.erase(std::remove(_pendingSync.begin(),
                                       _pendingSync.end(), path),
                           _pendingSync.end());
        it = _chainIndex.erase(it);
    }
}

void
SnapshotStore::setDurability(Durability durability)
{
    if (_durability == durability)
        return;
    _durability = durability;
    if (_durability == Durability::Strict && !_pendingSync.empty()) {
        // Tightening the policy must not leave an unsynced backlog
        // behind: everything saved under Deferred becomes durable now.
        // Best-effort — a failure here leaves the paths pending, and
        // the caller can retry through sync().
        std::string error;
        (void)sync(error);
    }
}

bool
SnapshotStore::sync(std::string &error)
{
    if (_pendingSync.empty())
        return true;
#ifdef __linux__
    // One whole-filesystem flush makes every pending write and rename
    // durable in a single journal/device round trip — measurably
    // cheaper than one journal commit per file, which is the entire
    // point of deferring. (It may flush unrelated dirty data sharing
    // the filesystem; a snapshot store directory accepts that trade.)
    {
        int dirfd = ::open(_dir.c_str(), O_RDONLY);
        if (dirfd < 0) {
            error = "open '" + _dir + "' for sync: " + errnoString();
            return false;
        }
        const int rc = shimFsync(dirfd, /*wholeFs=*/true);
        const std::string why = rc != 0 ? errnoString() : std::string();
        ::close(dirfd);
        if (rc != 0) {
            error = "syncfs '" + _dir + "': " + why;
            return false;
        }
        _pendingSync.clear();
        return true;
    }
#else
    // Portable fallback: one fsync per pending file, then one
    // directory fsync covering every rename at once. Flushed paths
    // are dropped from the front as they succeed so a failure keeps
    // exactly the unflushed tail pending for a retry.
    while (!_pendingSync.empty()) {
        const std::string path = _pendingSync.front();
        int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0) {
            if (errno == ENOENT) {
                // Pruned or replaced since the save; nothing to flush.
                _pendingSync.erase(_pendingSync.begin());
                continue;
            }
            error = "open '" + path + "' for sync: " + errnoString();
            return false;
        }
        if (shimFsync(fd) != 0) {
            error = "sync '" + path + "': " + errnoString();
            ::close(fd);
            return false;
        }
        ::close(fd);
        _pendingSync.erase(_pendingSync.begin());
    }
    int dirfd = ::open(_dir.c_str(), O_RDONLY);
    if (dirfd < 0) {
        if (errno == ENOENT)
            return true; // nothing was ever saved
        error = "open '" + _dir + "' for sync: " + errnoString();
        return false;
    }
    if (shimFsync(dirfd) != 0) {
        error = "sync '" + _dir + "': " + errnoString();
        ::close(dirfd);
        return false;
    }
    ::close(dirfd);
    return true;
#endif
}

std::vector<std::pair<std::uint64_t, std::string>>
SnapshotStore::list() const
{
    std::vector<std::pair<std::uint64_t, std::string>> out;
    DIR *d = ::opendir(_dir.c_str());
    if (d == nullptr)
        return out;
    while (dirent *ent = ::readdir(d)) {
        std::uint64_t g = 0;
        if (parseGeneration(ent->d_name, g))
            out.emplace_back(g, _dir + '/' + ent->d_name);
    }
    ::closedir(d);
    std::sort(out.begin(), out.end());
    return out;
}

std::uint64_t
SnapshotStore::newestGeneration() const
{
    auto entries = list();
    return entries.empty() ? 0 : entries.back().first;
}

bool
SnapshotStore::loadLatest(std::vector<std::uint8_t> &bytes,
                          std::uint64_t &generation,
                          std::vector<std::string> &diagnostics) const
{
    auto entries = list();
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        std::vector<std::uint8_t> candidate;
        std::string error;
        if (!readFile(it->second, candidate, error)) {
            diagnostics.push_back(it->second + ": " + error);
            continue;
        }
        SnapshotHeader header;
        std::vector<Section> sections;
        if (!disassemble(candidate, header, sections, error)) {
            diagnostics.push_back(it->second + ": " + error);
            continue;
        }
        if (header.generation != it->first) {
            std::ostringstream oss;
            oss << it->second << ": stale snapshot (embedded generation "
                << header.generation << " != filename generation "
                << it->first << ")";
            diagnostics.push_back(oss.str());
            continue;
        }
        bytes = std::move(candidate);
        generation = it->first;
        return true;
    }
    if (entries.empty())
        diagnostics.push_back("no snapshots in '" + _dir + "'");
    else {
        std::ostringstream oss;
        oss << "no valid snapshot in '" << _dir << "' ("
            << entries.size() << " candidate(s), all rejected)";
        diagnostics.push_back(oss.str());
    }
    return false;
}

bool
SnapshotStore::loadLatestChain(std::vector<std::vector<std::uint8_t>> &chain,
                               std::uint64_t &generation,
                               std::vector<std::string> &diagnostics) const
{
    auto entries = list();
    std::map<std::uint64_t, std::string> by_gen(entries.begin(),
                                                entries.end());
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        // Try a chain headed at this generation: the head itself, then
        // every predecessor its prev links name, down to the full
        // base. Any broken link disqualifies the whole head and the
        // walk-back resumes from the next-older candidate.
        std::vector<std::vector<std::uint8_t>> links;  // head-first
        bool ok = true;
        std::uint64_t g = it->first;
        std::string path = it->second;
        std::uint64_t base_full = 0;
        for (;;) {
            std::vector<std::uint8_t> candidate;
            std::string error;
            if (!readFile(path, candidate, error)) {
                diagnostics.push_back(path + ": " + error);
                ok = false;
                break;
            }
            SnapshotHeader header;
            std::vector<Section> sections;
            if (!disassemble(candidate, header, sections, error)) {
                diagnostics.push_back(path + ": " + error);
                ok = false;
                break;
            }
            if (header.generation != g) {
                std::ostringstream oss;
                oss << path << ": stale snapshot (embedded generation "
                    << header.generation << " != expected " << g << ")";
                diagnostics.push_back(oss.str());
                ok = false;
                break;
            }
            if (links.empty())
                base_full = header.baseFull;
            else if (header.isDelta() && header.baseFull != base_full) {
                std::ostringstream oss;
                oss << path << ": chain manifest mismatch (delta names "
                    << "base " << header.baseFull << ", chain head names "
                    << base_full << ")";
                diagnostics.push_back(oss.str());
                ok = false;
                break;
            }
            links.push_back(std::move(candidate));
            if (!header.isDelta()) {
                if (header.generation != base_full) {
                    std::ostringstream oss;
                    oss << path << ": chain base generation "
                        << header.generation
                        << " disagrees with manifest base " << base_full;
                    diagnostics.push_back(oss.str());
                    ok = false;
                }
                break;
            }
            if (header.prev >= g) {
                std::ostringstream oss;
                oss << path << ": corrupt chain linkage (prev "
                    << header.prev << " >= generation " << g << ")";
                diagnostics.push_back(oss.str());
                ok = false;
                break;
            }
            g = header.prev;
            auto next = by_gen.find(g);
            if (next == by_gen.end()) {
                std::ostringstream oss;
                oss << path << ": chain predecessor generation " << g
                    << " is missing from the store";
                diagnostics.push_back(oss.str());
                ok = false;
                break;
            }
            path = next->second;
        }
        if (!ok)
            continue;
        chain.assign(std::make_move_iterator(links.rbegin()),
                     std::make_move_iterator(links.rend()));
        generation = it->first;
        return true;
    }
    if (entries.empty())
        diagnostics.push_back("no snapshots in '" + _dir + "'");
    else {
        std::ostringstream oss;
        oss << "no intact snapshot chain in '" << _dir << "' ("
            << entries.size() << " candidate(s), all rejected)";
        diagnostics.push_back(oss.str());
    }
    return false;
}

bool
readFile(const std::string &path, std::vector<std::uint8_t> &bytes,
         std::string &error)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        error = "open: " + errnoString();
        return false;
    }
    bytes.clear();
    std::uint8_t buf[65536];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = "read: " + errnoString();
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        bytes.insert(bytes.end(), buf, buf + n);
    }
    ::close(fd);
    return true;
}

} // namespace fb::snapshot
