#include "snapshot/writer.hh"

#include <chrono>
#include <utility>

#include "support/logging.hh"

namespace fb::snapshot
{

const char *
writerModeName(WriterMode mode)
{
    switch (mode) {
      case WriterMode::AsyncDelta: return "async-delta";
      case WriterMode::SyncDelta: return "sync-delta";
      case WriterMode::SyncFull: return "sync-full";
      case WriterMode::Disabled: return "disabled";
    }
    return "?";
}

AsyncSnapshotWriter::AsyncSnapshotWriter(SnapshotStore &store,
                                         WriterConfig config)
    : _store(store), _config(config)
{
    if (_config.queueCapacity == 0)
        _config.queueCapacity = 1;
    if (_config.deferDurability)
        _store.setDurability(Durability::Deferred);
    switch (_config.threading) {
      case WriterThreading::Background: break;
      case WriterThreading::Inline: _inline = true; break;
      case WriterThreading::Auto:
        _inline = std::thread::hardware_concurrency() == 1;
        break;
    }
    if (!_inline)
        _worker = std::thread([this] { workerMain(); });
}

AsyncSnapshotWriter::~AsyncSnapshotWriter()
{
    {
        std::lock_guard<std::mutex> lk(_lock);
        _stopping = true;
    }
    _cv.notify_all();
    if (_worker.joinable())
        _worker.join();
    // The worker processed everything still queued before exiting;
    // flush deferred fsyncs so teardown leaves the store durable.
    // Best-effort — there is nobody left to report a failure to.
    std::string error;
    (void)_store.sync(error);
}

void
AsyncSnapshotWriter::degradeTo(WriterMode mode, const std::string &why)
{
    if (static_cast<int>(mode) <= static_cast<int>(_mode))
        return;
    if (_mode == WriterMode::AsyncDelta) {
        // Leaving the async rung: the sync rungs promise per-save
        // durability, so stop deferring fsyncs (this also flushes the
        // deferred backlog).
        _store.setDurability(Durability::Strict);
    }
    _mode = mode;
    _stats.mode = mode;
    ++_stats.degradations;
    _pendingDegradation =
        std::string("checkpoint writer degraded to ") +
        writerModeName(mode) + ": " + why;
    // Operators of long-running services watch stderr, not RunResult:
    // surface every ladder step there too. Keyed per rung, so the
    // first writer to reach a rung reports immediately and a fleet of
    // writers hitting the same failing disk collapses to one line per
    // hundred instead of a stderr storm.
    warnRatelimited(std::string("snapshot-writer-degrade:") +
                        writerModeName(mode),
                    _pendingDegradation);
}

void
AsyncSnapshotWriter::noteDrop(const SnapshotHeader &header,
                              const std::string &error)
{
    ++_stats.dropped;
    _chainBroken = true;
    _stats.lastError = error;
    (void)header;
}

bool
AsyncSnapshotWriter::persistWithRetry(
    const SnapshotHeader &header, const std::vector<Section> &sections,
    std::string &error)
{
    const std::vector<std::uint8_t> bytes = assemble(header, sections);
    std::uint32_t backoff_ms = _config.backoffInitialMs;
    for (int attempt = 0;; ++attempt) {
        if (_store.save(header.generation, bytes, error))
            return true;
        if (attempt >= _config.maxRetries)
            return false;
        {
            std::lock_guard<std::mutex> lk(_lock);
            ++_stats.retries;
        }
        if (backoff_ms != 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff_ms));
        backoff_ms *= 2;
    }
}

void
AsyncSnapshotWriter::workerMain()
{
    for (;;) {
        std::unique_lock<std::mutex> lk(_lock);
        _cv.wait(lk, [this] { return _stopping || !_queue.empty(); });
        if (_queue.empty()) {
            if (_stopping)
                return;
            continue;
        }
        Job job = std::move(_queue.front());
        _queue.pop_front();
        _workerBusy = true;
        // A delta whose predecessor never reached the disk is
        // worthless; discard it rather than persisting a chain with a
        // hole. The next full snapshot re-anchors.
        const bool skip = _chainBroken && job.header.isDelta();
        lk.unlock();

        std::string error;
        bool ok = false;
        if (!skip)
            ok = persistWithRetry(job.header, job.sections, error);

        lk.lock();
        _workerBusy = false;
        if (skip) {
            ++_stats.dropped;
        } else if (ok) {
            ++_stats.persisted;
            ++_stats.asyncPersisted;
            if (!job.header.isDelta())
                _chainBroken = false;
        } else {
            noteDrop(job.header, error);
            degradeTo(WriterMode::SyncDelta, error);
        }
        lk.unlock();
        _doneCv.notify_all();
    }
}

SubmitVerdict
AsyncSnapshotWriter::submit(SnapshotHeader header,
                            std::vector<Section> sections)
{
    std::unique_lock<std::mutex> lk(_lock);
    ++_stats.submitted;
    SubmitVerdict verdict;

    if (_mode == WriterMode::AsyncDelta) {
        if (_chainBroken && header.isDelta()) {
            // The worker would discard it anyway; skip the round trip.
            ++_stats.dropped;
        } else if (_inline) {
            // Same bookkeeping as the worker loop, minus the thread
            // hop (see WriterThreading::Auto). The fsync is still
            // deferred, so this blocks on the page cache, not on
            // stable storage.
            lk.unlock();
            std::string error;
            const bool ok = persistWithRetry(header, sections, error);
            lk.lock();
            if (ok) {
                ++_stats.persisted;
                ++_stats.asyncPersisted;
                if (!header.isDelta())
                    _chainBroken = false;
            } else {
                noteDrop(header, error);
                degradeTo(WriterMode::SyncDelta, error);
            }
        } else {
            while (_queue.size() >= _config.queueCapacity &&
                   !_stopping) {
                ++_stats.backpressureWaits;
                _doneCv.wait(lk);
            }
            _queue.push_back(
                Job{std::move(header), std::move(sections)});
            _cv.notify_one();
        }
        verdict.forceFull = _chainBroken;
        verdict.degradation = std::exchange(_pendingDegradation, {});
        return verdict;
    }

    if (_mode == WriterMode::Disabled) {
        verdict.keep = false;
        verdict.degradation = std::exchange(_pendingDegradation, {});
        return verdict;
    }

    // Sync modes persist inline on the caller's thread. Wait out any
    // leftover async jobs first — SnapshotStore is not reentrant.
    _doneCv.wait(lk, [this] { return _queue.empty() && !_workerBusy; });

    const bool unwanted_delta =
        header.isDelta() &&
        (_mode == WriterMode::SyncFull || _chainBroken);
    if (unwanted_delta) {
        ++_stats.dropped;
    } else {
        lk.unlock();
        std::string error;
        const bool ok = persistWithRetry(header, sections, error);
        lk.lock();
        if (ok) {
            ++_stats.persisted;
            ++_stats.syncPersisted;
            if (!header.isDelta())
                _chainBroken = false;
        } else {
            noteDrop(header, error);
            degradeTo(_mode == WriterMode::SyncDelta
                          ? WriterMode::SyncFull
                          : WriterMode::Disabled,
                      error);
        }
    }

    verdict.keep = _mode != WriterMode::Disabled;
    verdict.deltasOk = _mode == WriterMode::AsyncDelta ||
                       _mode == WriterMode::SyncDelta;
    verdict.forceFull = _chainBroken;
    verdict.degradation = std::exchange(_pendingDegradation, {});
    return verdict;
}

void
AsyncSnapshotWriter::drain()
{
    std::unique_lock<std::mutex> lk(_lock);
    _doneCv.wait(lk, [this] { return _queue.empty() && !_workerBusy; });
    // The worker is idle and the producer is here, so nobody else can
    // touch the store: flush the deferred fsync backlog. A disk that
    // refuses the flush is treated like any other persist failure —
    // step down the ladder and report it on the next submit.
    std::string error;
    if (!_store.sync(error)) {
        _stats.lastError = error;
        degradeTo(WriterMode::SyncDelta, error);
    }
}

WriterStats
AsyncSnapshotWriter::stats() const
{
    std::lock_guard<std::mutex> lk(_lock);
    return _stats;
}

} // namespace fb::snapshot
