#include "ir/builder.hh"

namespace fb::ir
{

Operand
IrBuilder::emitArith(TacOp op, Operand a, Operand b)
{
    Operand dst = newTemp();
    _block.append(TacInstr::arith(op, dst, a, b));
    return dst;
}

void
IrBuilder::emitArithTo(Operand dst, TacOp op, Operand a, Operand b)
{
    _block.append(TacInstr::arith(op, dst, a, b));
}

void
IrBuilder::emitCopy(Operand dst, Operand a)
{
    _block.append(TacInstr::copy(dst, a));
}

Operand
IrBuilder::emitAddr2D(const std::string &base, Operand row, Operand col,
                      std::int64_t row_stride, std::int64_t elem_size)
{
    // The Fig. 4 expansion of addr(P[row][col]):
    //   Tr = row_stride * row
    //   Tb = Tr + P
    //   Tc = elem_size * col
    //   Ta = Tb + Tc
    Operand tr = emitArith(TacOp::Mul, Operand::constant(row_stride), row);
    Operand tb = emitArith(TacOp::Add, tr, Operand::base(base));
    Operand tc = emitArith(TacOp::Mul, Operand::constant(elem_size), col);
    Operand ta = emitArith(TacOp::Add, tb, tc);
    _block.at(_block.size() - 1).comment =
        ta.toString() + " <- address of " + base + "[" + row.toString() +
        "][" + col.toString() + "]";
    return ta;
}

Operand
IrBuilder::emitAddr2DSub(const std::string &base,
                         const std::string &row_var, std::int64_t row_off,
                         const std::string &col_var, std::int64_t col_off,
                         std::int64_t row_stride, std::int64_t elem_size)
{
    Operand row = row_off == 0
                      ? Operand::var(row_var)
                      : emitArith(TacOp::Add, Operand::var(row_var),
                                  Operand::constant(row_off));
    Operand col = col_off == 0
                      ? Operand::var(col_var)
                      : emitArith(TacOp::Add, Operand::var(col_var),
                                  Operand::constant(col_off));
    Operand addr = emitAddr2D(base, row, col, row_stride, elem_size);
    Subscript sub;
    sub.known = true;
    sub.rowVar = row_var;
    sub.rowOff = row_off;
    sub.colVar = col_var;
    sub.colOff = col_off;
    _subscripts[addr.tempId()] = sub;
    return addr;
}

Operand
IrBuilder::emitLoad(Operand addr, const std::string &array, bool marked)
{
    Operand dst = newTemp();
    TacInstr instr = TacInstr::load(dst, addr);
    instr.array = array;
    instr.marked = marked;
    if (addr.isTemp()) {
        auto it = _subscripts.find(addr.tempId());
        if (it != _subscripts.end())
            instr.subscript = it->second;
    }
    _block.append(std::move(instr));
    return dst;
}

void
IrBuilder::emitStore(Operand addr, Operand value, const std::string &array,
                     bool marked)
{
    TacInstr instr = TacInstr::store(addr, value);
    instr.array = array;
    instr.marked = marked;
    if (addr.isTemp()) {
        auto it = _subscripts.find(addr.tempId());
        if (it != _subscripts.end())
            instr.subscript = it->second;
    }
    _block.append(std::move(instr));
}

} // namespace fb::ir
