#include "ir/tac.hh"

#include <sstream>

#include "support/logging.hh"

namespace fb::ir
{

const char *
tacOpName(TacOp op)
{
    switch (op) {
      case TacOp::Add: return "add";
      case TacOp::Sub: return "sub";
      case TacOp::Mul: return "mul";
      case TacOp::Div: return "div";
      case TacOp::Copy: return "copy";
      case TacOp::Load: return "load";
      case TacOp::Store: return "store";
    }
    panic("unknown TacOp");
}

const char *
tacOpSymbol(TacOp op)
{
    switch (op) {
      case TacOp::Add: return "+";
      case TacOp::Sub: return "-";
      case TacOp::Mul: return "*";
      case TacOp::Div: return "/";
      default: panic("tacOpSymbol on non-arithmetic op");
    }
}

TacInstr
TacInstr::arith(TacOp op, Operand dst, Operand a, Operand b)
{
    FB_ASSERT(op == TacOp::Add || op == TacOp::Sub || op == TacOp::Mul ||
                  op == TacOp::Div,
              "arith() requires an arithmetic op");
    FB_ASSERT(dst.isRegisterLike(), "arith dst must be temp or var");
    TacInstr i;
    i.op = op;
    i.dst = dst;
    i.a = a;
    i.b = b;
    return i;
}

TacInstr
TacInstr::copy(Operand dst, Operand a)
{
    FB_ASSERT(dst.isRegisterLike(), "copy dst must be temp or var");
    TacInstr i;
    i.op = TacOp::Copy;
    i.dst = dst;
    i.a = a;
    return i;
}

TacInstr
TacInstr::load(Operand dst, Operand addr)
{
    FB_ASSERT(dst.isRegisterLike(), "load dst must be temp or var");
    FB_ASSERT(addr.isRegisterLike(), "load address must be temp or var");
    TacInstr i;
    i.op = TacOp::Load;
    i.dst = dst;
    i.a = addr;
    return i;
}

TacInstr
TacInstr::store(Operand addr, Operand src)
{
    FB_ASSERT(addr.isRegisterLike(), "store address must be temp or var");
    TacInstr i;
    i.op = TacOp::Store;
    i.dst = addr;
    i.a = src;
    return i;
}

std::string
TacInstr::toString() const
{
    std::ostringstream oss;
    switch (op) {
      case TacOp::Add:
      case TacOp::Sub:
      case TacOp::Mul:
      case TacOp::Div:
        oss << dst.toString() << " = " << a.toString() << " "
            << tacOpSymbol(op) << " " << b.toString();
        break;
      case TacOp::Copy:
        oss << dst.toString() << " = " << a.toString();
        break;
      case TacOp::Load:
        oss << dst.toString() << " = [" << a.toString() << "]";
        break;
      case TacOp::Store:
        oss << "[" << dst.toString() << "] = " << a.toString();
        break;
    }
    if (!comment.empty())
        oss << "    /* " << comment << " */";
    return oss.str();
}

} // namespace fb::ir
