/**
 * @file
 * Reference interpreter for three-address code.
 *
 * Executes a Block directly on host data structures. Used to
 * cross-check the code generator and to prove reorderings preserve
 * semantics: interpret(naive) == interpret(reordered) on the same
 * inputs.
 */

#ifndef FB_IR_INTERP_HH
#define FB_IR_INTERP_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/block.hh"

namespace fb::ir
{

/** Execution environment for the interpreter. */
struct InterpState
{
    /** Variable values (loop counters etc.). */
    std::map<std::string, std::int64_t> vars;

    /** Word address of each array base symbol. */
    std::map<std::string, std::int64_t> bases;

    /** Flat word-addressed memory. */
    std::vector<std::int64_t> memory;

    /** Temporaries (populated during interpretation). */
    std::map<int, std::int64_t> temps;
};

/**
 * Interpret @p block over @p state, mutating vars, temps, and memory.
 * Calls fatal() on use of an undefined temp/var/base or an
 * out-of-range memory access — those are bugs in the code under test.
 */
void interpret(const Block &block, InterpState &state);

} // namespace fb::ir

#endif // FB_IR_INTERP_HH
