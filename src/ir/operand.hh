/**
 * @file
 * Operands of the three-address intermediate code.
 *
 * The paper's compiler examples (Figs. 4 and 10) work on classic
 * Aho/Sethi/Ullman-style intermediate code: temporaries T1, T2, ...,
 * named program variables (i, j, k), integer constants, and symbolic
 * array base addresses.
 */

#ifndef FB_IR_OPERAND_HH
#define FB_IR_OPERAND_HH

#include <cstdint>
#include <string>

namespace fb::ir
{

/** Kinds of operand. */
enum class OperandKind
{
    None,   ///< unused slot
    Temp,   ///< compiler temporary Tn
    Var,    ///< named program variable
    Const,  ///< integer literal
    Base,   ///< symbolic array base address
};

/**
 * One operand. Value semantics; cheap to copy.
 */
class Operand
{
  public:
    /** The empty operand. */
    Operand() = default;

    /** Temporary Tn. */
    static Operand temp(int id);

    /** Named variable. */
    static Operand var(std::string name);

    /** Integer constant. */
    static Operand constant(std::int64_t value);

    /** Array base address symbol. */
    static Operand base(std::string name);

    OperandKind kind() const { return _kind; }
    bool isNone() const { return _kind == OperandKind::None; }
    bool isTemp() const { return _kind == OperandKind::Temp; }
    bool isVar() const { return _kind == OperandKind::Var; }
    bool isConst() const { return _kind == OperandKind::Const; }
    bool isBase() const { return _kind == OperandKind::Base; }

    /** Temp id. @pre isTemp() */
    int tempId() const;

    /** Variable or base name. @pre isVar() || isBase() */
    const std::string &name() const;

    /** Constant value. @pre isConst() */
    std::int64_t value() const;

    /** True for temps and vars — operands that name storage. */
    bool isRegisterLike() const { return isTemp() || isVar(); }

    /** Equality over kind and payload. */
    bool operator==(const Operand &other) const;

    /** Ordering so operands can key std::map. */
    bool operator<(const Operand &other) const;

    /** Render as in the paper: T5, i, 12, P. */
    std::string toString() const;

  private:
    OperandKind _kind = OperandKind::None;
    int _id = 0;
    std::int64_t _value = 0;
    std::string _name;
};

} // namespace fb::ir

#endif // FB_IR_OPERAND_HH
