/**
 * @file
 * Three-address-code instructions.
 */

#ifndef FB_IR_TAC_HH
#define FB_IR_TAC_HH

#include <string>

#include "ir/operand.hh"

namespace fb::ir
{

/** Three-address operation codes. */
enum class TacOp
{
    Add,    ///< dst = a + b
    Sub,    ///< dst = a - b
    Mul,    ///< dst = a * b
    Div,    ///< dst = a / b
    Copy,   ///< dst = a
    Load,   ///< dst = [a]       (a holds an address)
    Store,  ///< [dst] = a       (dst holds an address)
};

/** Mnemonic-ish name for a TacOp. */
const char *tacOpName(TacOp op);

/**
 * Structured subscript of a 2-D array access, attached to Load/Store
 * instructions when the builder knows it statically: the access
 * targets array[rowVar + rowOff][colVar + colOff]. This is what the
 * dependence analysis (compiler/depanalysis) consumes to classify
 * loop-carried versus lexically forward dependences.
 */
struct Subscript
{
    bool known = false;
    std::string rowVar;
    std::int64_t rowOff = 0;
    std::string colVar;
    std::int64_t colOff = 0;
};

/** Infix symbol for arithmetic ops ("+", "-", "*", "/"). */
const char *tacOpSymbol(TacOp op);

/**
 * One intermediate-code instruction, annotated with the properties
 * the fuzzy-barrier compiler needs: whether it is *marked* (involved
 * in a cross-processor dependence, paper section 4) and whether it
 * was placed in a barrier region.
 */
struct TacInstr
{
    TacOp op = TacOp::Copy;
    Operand dst;  ///< destination (address operand for Store)
    Operand a;    ///< first source
    Operand b;    ///< second source (arithmetic only)

    /**
     * Marked instructions "either access a value computed by another
     * processor or compute a value that will be accessed by another
     * processor" and must stay in the non-barrier region.
     */
    bool marked = false;

    /** Region placement decided by the region builder. */
    bool inRegion = false;

    /**
     * For Load/Store: the array the access targets, when statically
     * known (our IR builders always know). Empty means unknown; the
     * dependence analysis is then conservative and orders the access
     * against every other memory operation.
     */
    std::string array;

    /** For Load/Store: the structured subscript, when known. */
    Subscript subscript;

    /** Free-text annotation shown by the printer (paper-style). */
    std::string comment;

    /** Build an arithmetic instruction. */
    static TacInstr arith(TacOp op, Operand dst, Operand a, Operand b);

    /** Build a copy. */
    static TacInstr copy(Operand dst, Operand a);

    /** Build a load from the address in @p addr. */
    static TacInstr load(Operand dst, Operand addr);

    /** Build a store of @p src to the address in @p addr. */
    static TacInstr store(Operand addr, Operand src);

    /** Render in the paper's style, e.g. "T5 = T3 + T4". */
    std::string toString() const;
};

} // namespace fb::ir

#endif // FB_IR_TAC_HH
