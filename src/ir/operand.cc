#include "ir/operand.hh"

#include <tuple>

#include "support/logging.hh"

namespace fb::ir
{

Operand
Operand::temp(int id)
{
    Operand o;
    o._kind = OperandKind::Temp;
    o._id = id;
    return o;
}

Operand
Operand::var(std::string name)
{
    Operand o;
    o._kind = OperandKind::Var;
    o._name = std::move(name);
    return o;
}

Operand
Operand::constant(std::int64_t value)
{
    Operand o;
    o._kind = OperandKind::Const;
    o._value = value;
    return o;
}

Operand
Operand::base(std::string name)
{
    Operand o;
    o._kind = OperandKind::Base;
    o._name = std::move(name);
    return o;
}

int
Operand::tempId() const
{
    FB_ASSERT(isTemp(), "tempId() on non-temp operand");
    return _id;
}

const std::string &
Operand::name() const
{
    FB_ASSERT(isVar() || isBase(), "name() on unnamed operand");
    return _name;
}

std::int64_t
Operand::value() const
{
    FB_ASSERT(isConst(), "value() on non-constant operand");
    return _value;
}

bool
Operand::operator==(const Operand &other) const
{
    if (_kind != other._kind)
        return false;
    switch (_kind) {
      case OperandKind::None: return true;
      case OperandKind::Temp: return _id == other._id;
      case OperandKind::Var:
      case OperandKind::Base: return _name == other._name;
      case OperandKind::Const: return _value == other._value;
    }
    return false;
}

bool
Operand::operator<(const Operand &other) const
{
    return std::tie(_kind, _id, _value, _name) <
           std::tie(other._kind, other._id, other._value, other._name);
}

std::string
Operand::toString() const
{
    switch (_kind) {
      case OperandKind::None: return "<none>";
      case OperandKind::Temp: return "T" + std::to_string(_id);
      case OperandKind::Var: return _name;
      case OperandKind::Const: return std::to_string(_value);
      case OperandKind::Base: return _name;
    }
    return "?";
}

} // namespace fb::ir
