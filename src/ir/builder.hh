/**
 * @file
 * Convenience builder that emits paper-style address arithmetic.
 */

#ifndef FB_IR_BUILDER_HH
#define FB_IR_BUILDER_HH

#include <map>
#include <string>

#include "ir/block.hh"

namespace fb::ir
{

/**
 * Emits three-address code into a Block, handing out fresh
 * temporaries, with helpers for the 2-D array address patterns the
 * paper's Figs. 4 and 10 use: addr(A[r][c]) = base + r*rowStride +
 * c*elemSize.
 */
class IrBuilder
{
  public:
    IrBuilder() = default;

    /** The block built so far. */
    const Block &block() const { return _block; }

    /** Mutable access, for annotating region flags while building. */
    Block &mutableBlock() { return _block; }

    /** Move the built block out. */
    Block take() { return std::move(_block); }

    /** Allocate a fresh temporary. */
    Operand newTemp() { return Operand::temp(_nextTemp++); }

    /** Highest temp id handed out so far. */
    int tempCount() const { return _nextTemp - 1; }

    /** Emit dst = a op b into a fresh temp and return it. */
    Operand emitArith(TacOp op, Operand a, Operand b);

    /** Emit an arithmetic op into an existing destination. */
    void emitArithTo(Operand dst, TacOp op, Operand a, Operand b);

    /** Emit dst = a (dst may be a Var). */
    void emitCopy(Operand dst, Operand a);

    /**
     * Emit the address of @p base [ @p row ][ @p col ] using the
     * paper's expansion (row scaled by @p row_stride, column by
     * @p elem_size); returns the temp holding the address. The last
     * instruction is annotated with a comment naming the element.
     */
    Operand emitAddr2D(const std::string &base, Operand row, Operand col,
                       std::int64_t row_stride, std::int64_t elem_size);

    /**
     * Emit the address of base[row_var + row_off][col_var + col_off]
     * and record the structured subscript so loads/stores through the
     * returned temp carry it (for dependence analysis).
     */
    Operand emitAddr2DSub(const std::string &base,
                          const std::string &row_var,
                          std::int64_t row_off,
                          const std::string &col_var,
                          std::int64_t col_off, std::int64_t row_stride,
                          std::int64_t elem_size);

    /**
     * Emit a load from @p addr. @p array names the array for
     * dependence analysis; @p marked tags the instruction as involved
     * in a cross-processor dependence.
     */
    Operand emitLoad(Operand addr, const std::string &array, bool marked);

    /** Emit a store of @p value to @p addr. */
    void emitStore(Operand addr, Operand value, const std::string &array,
                   bool marked);

  private:
    Block _block;
    int _nextTemp = 1;
    /** Subscript recorded for an address-holding temp. */
    std::map<int, Subscript> _subscripts;
};

} // namespace fb::ir

#endif // FB_IR_BUILDER_HH
