#include "ir/block.hh"

#include <sstream>

#include "support/logging.hh"

namespace fb::ir
{

std::vector<Operand>
readsOf(const TacInstr &instr)
{
    std::vector<Operand> reads;
    auto add = [&](const Operand &o) {
        if (o.isRegisterLike())
            reads.push_back(o);
    };
    switch (instr.op) {
      case TacOp::Add:
      case TacOp::Sub:
      case TacOp::Mul:
      case TacOp::Div:
        add(instr.a);
        add(instr.b);
        break;
      case TacOp::Copy:
      case TacOp::Load:
        add(instr.a);
        break;
      case TacOp::Store:
        add(instr.dst);  // address
        add(instr.a);    // value
        break;
    }
    return reads;
}

Operand
writeOf(const TacInstr &instr)
{
    if (instr.op == TacOp::Store)
        return Operand();  // writes memory, not a register
    return instr.dst;
}

const TacInstr &
Block::at(std::size_t idx) const
{
    FB_ASSERT(idx < _instrs.size(), "block index " << idx
                                                   << " out of range");
    return _instrs[idx];
}

TacInstr &
Block::at(std::size_t idx)
{
    FB_ASSERT(idx < _instrs.size(), "block index " << idx
                                                   << " out of range");
    return _instrs[idx];
}

std::vector<std::size_t>
Block::markedIndices() const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < _instrs.size(); ++i)
        if (_instrs[i].marked)
            out.push_back(i);
    return out;
}

std::size_t
Block::regionCount() const
{
    std::size_t count = 0;
    for (const auto &instr : _instrs)
        count += instr.inRegion ? 1 : 0;
    return count;
}

std::string
Block::toString() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < _instrs.size(); ++i)
        oss << i << ": " << _instrs[i].toString() << "\n";
    return oss.str();
}

std::string
Block::toAnnotatedString() const
{
    std::ostringstream oss;
    bool first = true;
    bool in_region = false;
    for (const auto &instr : _instrs) {
        if (first || instr.inRegion != in_region) {
            if (!first)
                oss << std::string(66, '-') << "\n";
            oss << (instr.inRegion ? "Barrier:" : "Non-barrier:") << "\n";
            in_region = instr.inRegion;
            first = false;
        }
        oss << "    " << instr.toString();
        if (instr.marked)
            oss << "    <marked>";
        oss << "\n";
    }
    return oss.str();
}

} // namespace fb::ir
