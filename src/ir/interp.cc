#include "ir/interp.hh"

#include "support/logging.hh"

namespace fb::ir
{

namespace
{

std::int64_t
readOperand(const Operand &op, const InterpState &state)
{
    switch (op.kind()) {
      case OperandKind::Const:
        return op.value();
      case OperandKind::Temp: {
        auto it = state.temps.find(op.tempId());
        if (it == state.temps.end())
            fatal("interpreter: temp " + op.toString() +
                  " read before write");
        return it->second;
      }
      case OperandKind::Var: {
        auto it = state.vars.find(op.name());
        if (it == state.vars.end())
            fatal("interpreter: undefined variable " + op.name());
        return it->second;
      }
      case OperandKind::Base: {
        auto it = state.bases.find(op.name());
        if (it == state.bases.end())
            fatal("interpreter: unknown array base " + op.name());
        return it->second;
      }
      case OperandKind::None:
        fatal("interpreter: read of empty operand");
    }
    return 0;
}

void
writeOperand(const Operand &op, std::int64_t value, InterpState &state)
{
    if (op.isTemp())
        state.temps[op.tempId()] = value;
    else if (op.isVar())
        state.vars[op.name()] = value;
    else
        fatal("interpreter: write to non-register operand");
}

std::int64_t &
memWord(std::int64_t addr, InterpState &state)
{
    if (addr < 0 ||
        static_cast<std::size_t>(addr) >= state.memory.size())
        fatal("interpreter: memory access out of range at address " +
              std::to_string(addr));
    return state.memory[static_cast<std::size_t>(addr)];
}

} // namespace

void
interpret(const Block &block, InterpState &state)
{
    for (const TacInstr &instr : block) {
        switch (instr.op) {
          case TacOp::Add:
            writeOperand(instr.dst,
                         readOperand(instr.a, state) +
                             readOperand(instr.b, state),
                         state);
            break;
          case TacOp::Sub:
            writeOperand(instr.dst,
                         readOperand(instr.a, state) -
                             readOperand(instr.b, state),
                         state);
            break;
          case TacOp::Mul:
            writeOperand(instr.dst,
                         readOperand(instr.a, state) *
                             readOperand(instr.b, state),
                         state);
            break;
          case TacOp::Div: {
            std::int64_t divisor = readOperand(instr.b, state);
            if (divisor == 0)
                fatal("interpreter: division by zero");
            writeOperand(instr.dst, readOperand(instr.a, state) / divisor,
                         state);
            break;
          }
          case TacOp::Copy:
            writeOperand(instr.dst, readOperand(instr.a, state), state);
            break;
          case TacOp::Load:
            writeOperand(instr.dst,
                         memWord(readOperand(instr.a, state), state),
                         state);
            break;
          case TacOp::Store:
            memWord(readOperand(instr.dst, state), state) =
                readOperand(instr.a, state);
            break;
        }
    }
}

} // namespace fb::ir
