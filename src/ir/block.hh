/**
 * @file
 * A straight-line block of three-address code — the unit the fuzzy
 * barrier compiler analyzes and reorders (the loop body in the
 * paper's examples).
 */

#ifndef FB_IR_BLOCK_HH
#define FB_IR_BLOCK_HH

#include <string>
#include <vector>

#include "ir/tac.hh"

namespace fb::ir
{

/** Registers (temps/vars) read by an instruction. */
std::vector<Operand> readsOf(const TacInstr &instr);

/** The register (temp/var) written by an instruction, or None. */
Operand writeOf(const TacInstr &instr);

/**
 * A basic block: straight-line TAC.
 */
class Block
{
  public:
    Block() = default;

    /** Append an instruction; returns its index. */
    std::size_t
    append(TacInstr instr)
    {
        _instrs.push_back(std::move(instr));
        return _instrs.size() - 1;
    }

    /** Number of instructions. */
    std::size_t size() const { return _instrs.size(); }

    /** True if empty. */
    bool empty() const { return _instrs.empty(); }

    /** Access instruction @p idx. */
    const TacInstr &at(std::size_t idx) const;

    /** Mutable access. */
    TacInstr &at(std::size_t idx);

    /** Iteration support. */
    auto begin() const { return _instrs.begin(); }
    auto end() const { return _instrs.end(); }

    /** Indices of marked instructions. */
    std::vector<std::size_t> markedIndices() const;

    /** Number of instructions with inRegion set. */
    std::size_t regionCount() const;

    /** Plain listing, one instruction per line. */
    std::string toString() const;

    /**
     * Paper-style annotated listing: instructions grouped under
     * "Barrier:" / "Non-barrier:" headings with a dashed separator at
     * each transition, as in Figs. 4(a)/4(b).
     */
    std::string toAnnotatedString() const;

  private:
    std::vector<TacInstr> _instrs;
};

} // namespace fb::ir

#endif // FB_IR_BLOCK_HH
