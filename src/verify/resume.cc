#include "verify/resume.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "snapshot/format.hh"

#include "exec/machine_pool.hh"
#include "exec/program_cache.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "support/random.hh"

namespace fb::verify
{

namespace
{

sim::MachineConfig
baselineConfig(const Scenario &sc, bool fast_forward,
               std::uint64_t max_cycles)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = sc.procs();
    cfg.memWords = 4096;
    cfg.pipelineDepth = 1;
    cfg.issueWidth = 1;
    cfg.jitterMean = 0.0;
    cfg.seed = 1;
    cfg.stall = sim::StallModel::hardware();
    cfg.maxCycles = max_cycles;
    cfg.fastForward = fast_forward;
    cfg.interruptPeriod = sc.interruptPeriod;
    cfg.isrEntry = sc.isrEntry;
    if (sc.hasFaults()) {
        cfg.faultPlan = &sc.faults;
        cfg.watchdog = sc.watchdog;
    }
    return cfg;
}

/** Compare two RunResults field by field; empty string if identical. */
std::string
diffRunResults(const sim::RunResult &a, const sim::RunResult &b)
{
    std::ostringstream oss;
#define FB_DIFF(field)                                                   \
    do {                                                                 \
        if (a.field != b.field) {                                        \
            oss << #field << ": reference " << a.field << " vs "         \
                << b.field;                                              \
            return oss.str();                                            \
        }                                                                \
    } while (0)
    FB_DIFF(cycles);
    FB_DIFF(deadlocked);
    FB_DIFF(timedOut);
    FB_DIFF(deadlockInfo);
    FB_DIFF(syncEvents);
    FB_DIFF(busRequests);
    FB_DIFF(busQueueDelay);
    FB_DIFF(memAccesses);
    FB_DIFF(hotSpotAccesses);
    FB_DIFF(invalidationsSent);
    FB_DIFF(invalidationsAvoided);
    FB_DIFF(correctedFaults);
    FB_DIFF(membershipViolation);
    FB_DIFF(faultStats.pulseDropCycles);
    FB_DIFF(faultStats.bitsFlipped);
    FB_DIFF(faultStats.kills);
    FB_DIFF(faultStats.freezes);
    FB_DIFF(faultStats.forcedInterrupts);
    FB_DIFF(watchdogStats.timeouts);
    FB_DIFF(watchdogStats.rearms);
    FB_DIFF(watchdogStats.deadDeclared);
#undef FB_DIFF

    if (a.deadDeclared != b.deadDeclared)
        return "deadDeclared sets differ";
    if (a.perProcessor.size() != b.perProcessor.size())
        return "perProcessor size differs";
    for (std::size_t p = 0; p < a.perProcessor.size(); ++p) {
        const auto &pa = a.perProcessor[p];
        const auto &pb = b.perProcessor[p];
#define FB_DIFF_P(field)                                                 \
    do {                                                                 \
        if (pa.field != pb.field) {                                      \
            oss << "cpu" << p << " " << #field << ": reference "         \
                << pa.field << " vs " << pb.field;                       \
            return oss.str();                                            \
        }                                                                \
    } while (0)
        FB_DIFF_P(instructions);
        FB_DIFF_P(barrierWaitCycles);
        FB_DIFF_P(contextSwitchCycles);
        FB_DIFF_P(contextSwitches);
        FB_DIFF_P(interruptsTaken);
        FB_DIFF_P(barrierEpisodes);
        FB_DIFF_P(stalledEpisodes);
        FB_DIFF_P(stallCycles);
        FB_DIFF_P(cacheHits);
        FB_DIFF_P(cacheMisses);
#undef FB_DIFF_P
    }
    if (a.recoveries.size() != b.recoveries.size())
        return "recovery counts differ";
    for (std::size_t i = 0; i < a.recoveries.size(); ++i) {
        const auto &ra = a.recoveries[i];
        const auto &rb = b.recoveries[i];
        if (ra.cycle != rb.cycle || ra.deadProc != rb.deadProc ||
            ra.survivors != rb.survivors) {
            oss << "recovery " << i << " differs (cycle " << ra.cycle
                << " vs " << rb.cycle << ")";
            return oss.str();
        }
    }
    return "";
}

/** Final architectural state beyond what RunResult carries. */
std::string
diffFinalState(const Scenario &sc, sim::Machine &a, sim::Machine &b)
{
    std::ostringstream oss;
    for (int p = 0; p < sc.procs(); ++p) {
        for (int r = 0; r < 32; ++r) {
            if (a.processor(p).reg(r) != b.processor(p).reg(r)) {
                oss << "cpu" << p << " r" << r << ": reference "
                    << a.processor(p).reg(r) << " vs "
                    << b.processor(p).reg(r);
                return oss.str();
            }
        }
    }
    if (a.checkSafetyProperty() != b.checkSafetyProperty())
        return "safety-oracle verdicts differ";
    for (std::size_t addr : sc.watchAddrs) {
        if (a.memory().peek(addr) != b.memory().peek(addr)) {
            oss << "mem[" << addr << "]: reference "
                << a.memory().peek(addr) << " vs "
                << b.memory().peek(addr);
            return oss.str();
        }
    }
    return "";
}

/**
 * One of the A/B/C machines: either a pool lease (reset + reused) or
 * an owned fresh construction. All three slots are alive at once, so
 * the pool hands out three concurrent leases of the same shape.
 */
class MachineSlot
{
  public:
    MachineSlot(const sim::MachineConfig &cfg, exec::MachinePool *pool)
    {
        if (pool)
            _lease = pool->acquire(cfg);
        else
            _owned = std::make_unique<sim::Machine>(cfg);
    }

    sim::Machine &
    operator*()
    {
        return _lease ? *_lease : *_owned;
    }

  private:
    exec::MachinePool::Lease _lease;
    std::unique_ptr<sim::Machine> _owned;
};

/**
 * Assemble (or intern) the scenario's programs. With a cache the
 * interned pre-decoded blocks ride along so every machine below
 * shares one decode per source; without one the vector holds nulls
 * and loadProgram decodes privately.
 */
bool
buildPrograms(const Scenario &sc, exec::ProgramCache *program_cache,
              std::vector<isa::Program> &programs,
              std::vector<std::shared_ptr<const sim::DecodedProgram>>
                  &decoded,
              std::string &error)
{
    for (int p = 0; p < sc.procs(); ++p) {
        const auto &source = sc.sources[static_cast<std::size_t>(p)];
        isa::Program prog;
        std::shared_ptr<const sim::DecodedProgram> block;
        if (program_cache) {
            auto interned = program_cache->intern(source);
            if (!interned->ok) {
                std::ostringstream oss;
                oss << "assemble (processor " << p
                    << "): " << interned->error;
                error = oss.str();
                return false;
            }
            prog = sc.encoding == Encoding::Markers
                       ? interned->markers
                       : interned->bits;
            block = sc.encoding == Encoding::Markers
                        ? interned->markersDecoded
                        : interned->bitsDecoded;
        } else {
            std::string err;
            if (!isa::Assembler::assemble(source, prog, err)) {
                std::ostringstream oss;
                oss << "assemble (processor " << p << "): " << err;
                error = oss.str();
                return false;
            }
            if (sc.encoding == Encoding::Markers)
                prog = prog.toMarkerEncoding();
        }
        programs.push_back(std::move(prog));
        decoded.push_back(std::move(block));
    }
    return true;
}

} // namespace

ResumeReport
checkResumeEquivalence(const Scenario &sc, std::uint64_t k_seed,
                       bool fast_forward, std::uint64_t max_cycles,
                       exec::MachinePool *pool,
                       exec::ProgramCache *program_cache)
{
    ResumeReport rep;
    auto failed = [&rep](std::string why) {
        rep.ok = false;
        rep.failure = std::move(why);
        return rep;
    };

    if (sc.procs() == 0)
        return failed("scenario has no programs");

    std::vector<isa::Program> programs;
    std::vector<std::shared_ptr<const sim::DecodedProgram>> decoded;
    if (std::string err;
        !buildPrograms(sc, program_cache, programs, decoded, err))
        return failed(std::move(err));

    const sim::MachineConfig base_cfg =
        baselineConfig(sc, fast_forward, max_cycles);
    auto load = [&](sim::Machine &m) {
        for (int p = 0; p < sc.procs(); ++p) {
            const auto sp = static_cast<std::size_t>(p);
            m.loadProgram(p, programs[sp], decoded[sp]);
        }
    };

    // A: the uninterrupted reference.
    MachineSlot refSlot(base_cfg, pool);
    sim::Machine &ref = *refSlot;
    load(ref);
    const sim::RunResult ra = ref.run();
    rep.referenceCycles = ra.cycles;

    // Randomize K in [1, A.cycles]. The loop bottom checkpoints after
    // ++_now, so K == A.cycles still fires on halting/deadlocking
    // runs; only a timeout breaks before the final checkpoint.
    std::uint64_t state = k_seed ^ 0x6d656b6b6f6c6c61ULL;
    const std::uint64_t span = ra.cycles == 0 ? 1 : ra.cycles;
    const std::uint64_t k = 1 + splitMix64(state) % span;
    rep.checkpointCycle = k;

    // B: same run, checkpointing at period K; keep the first snapshot.
    sim::MachineConfig cp_cfg = base_cfg;
    cp_cfg.checkpointEveryCycles = k;
    MachineSlot cpSlot(cp_cfg, pool);
    sim::Machine &checkpointed = *cpSlot;
    load(checkpointed);
    std::vector<std::uint8_t> snapshot;
    checkpointed.setCheckpointSink(
        [&snapshot](std::uint64_t, const std::vector<std::uint8_t> &b) {
            snapshot = b;
            return false;  // one snapshot is enough
        });
    const sim::RunResult rb = checkpointed.run();

    if (std::string why = diffRunResults(ra, rb); !why.empty())
        return failed("checkpointing run diverged: " + why);
    if (std::string why = diffFinalState(sc, ref, checkpointed);
        !why.empty())
        return failed("checkpointing run diverged: " + why);

    rep.snapshotTaken = !snapshot.empty();
    if (!rep.snapshotTaken) {
        // Run ended (timeout) before cycle K; A-vs-B equivalence is
        // all that can be checked.
        return rep;
    }

    // C: a fresh machine restored from the snapshot, run to the end.
    MachineSlot resumeSlot(base_cfg, pool);
    sim::Machine &resumed = *resumeSlot;
    load(resumed);
    std::string restore_error;
    if (!resumed.restoreState(snapshot, restore_error))
        return failed("restore failed: " + restore_error);
    const sim::RunResult rc = resumed.run();

    if (std::string why = diffRunResults(ra, rc); !why.empty())
        return failed("resumed run diverged: " + why);
    if (std::string why = diffFinalState(sc, ref, resumed); !why.empty())
        return failed("resumed run diverged: " + why);
    return rep;
}

ResumeReport
checkChainResumeEquivalence(const Scenario &sc, std::uint64_t k_seed,
                            bool fast_forward,
                            std::uint32_t rebase_every,
                            std::uint64_t max_cycles,
                            exec::MachinePool *pool,
                            exec::ProgramCache *program_cache)
{
    ResumeReport rep;
    auto failed = [&rep](std::string why) {
        rep.ok = false;
        rep.failure = std::move(why);
        return rep;
    };

    if (sc.procs() == 0)
        return failed("scenario has no programs");

    std::vector<isa::Program> programs;
    std::vector<std::shared_ptr<const sim::DecodedProgram>> decoded;
    if (std::string err;
        !buildPrograms(sc, program_cache, programs, decoded, err))
        return failed(std::move(err));

    const sim::MachineConfig base_cfg =
        baselineConfig(sc, fast_forward, max_cycles);
    auto load = [&](sim::Machine &m) {
        for (int p = 0; p < sc.procs(); ++p) {
            const auto sp = static_cast<std::size_t>(p);
            m.loadProgram(p, programs[sp], decoded[sp]);
        }
    };

    // A: the uninterrupted reference.
    MachineSlot refSlot(base_cfg, pool);
    sim::Machine &ref = *refSlot;
    load(ref);
    const sim::RunResult ra = ref.run();
    rep.referenceCycles = ra.cycles;

    // Cadence: aim for several captures so a real chain forms — K
    // around span / (4..11), randomized, at least 1.
    std::uint64_t state = k_seed ^ 0x636861696e726573ULL;
    const std::uint64_t span = ra.cycles == 0 ? 1 : ra.cycles;
    const std::uint64_t denom = 4 + splitMix64(state) % 8;
    const std::uint64_t k = std::max<std::uint64_t>(1, span / denom);
    rep.checkpointCycle = k;

    // B: staged (delta) checkpointing at period K; keep every capture
    // assembled in memory, keyed by generation.
    sim::MachineConfig cp_cfg = base_cfg;
    cp_cfg.checkpointEveryCycles = k;
    cp_cfg.checkpointRebaseEvery = std::max<std::uint32_t>(
        1, rebase_every);
    MachineSlot cpSlot(cp_cfg, pool);
    sim::Machine &checkpointed = *cpSlot;
    load(checkpointed);
    std::map<std::uint64_t, snapshot::SnapshotHeader> headers;
    std::map<std::uint64_t, std::vector<std::uint8_t>> captures;
    checkpointed.setStagedCheckpointSink(
        [&headers, &captures](
            snapshot::SnapshotHeader header,
            std::vector<snapshot::Section> sections) {
            captures[header.generation] =
                snapshot::assemble(header, sections);
            headers[header.generation] = header;
            return sim::Machine::CheckpointAck{};
        });
    const sim::RunResult rb = checkpointed.run();
    rep.checkpointsTaken = captures.size();

    if (std::string why = diffRunResults(ra, rb); !why.empty())
        return failed("delta-checkpointing run diverged: " + why);
    if (std::string why = diffFinalState(sc, ref, checkpointed);
        !why.empty())
        return failed("delta-checkpointing run diverged: " + why);

    rep.snapshotTaken = !captures.empty();
    if (!rep.snapshotTaken)
        return rep;

    // Pick a seeded head capture and walk its chain base-first.
    std::vector<std::uint64_t> gens;
    for (const auto &entry : captures)
        gens.push_back(entry.first);
    const std::uint64_t head =
        gens[static_cast<std::size_t>(splitMix64(state) % gens.size())];
    std::vector<std::vector<std::uint8_t>> chain;
    std::uint64_t at = head;
    for (;;) {
        auto h = headers.find(at);
        if (h == headers.end())
            return failed("capture chain names a generation B never "
                          "produced (gen " + std::to_string(at) + ")");
        chain.push_back(captures[at]);
        if (!h->second.isDelta())
            break;
        if (h->second.prev >= at)
            return failed("capture chain does not descend (gen " +
                          std::to_string(at) + ")");
        at = h->second.prev;
    }
    std::reverse(chain.begin(), chain.end());
    rep.chainLength = chain.size();

    // C: restore the whole chain onto a fresh machine, run to the end.
    MachineSlot resumeSlot(base_cfg, pool);
    sim::Machine &resumed = *resumeSlot;
    load(resumed);
    std::string restore_error;
    if (!resumed.restoreChainState(chain, restore_error))
        return failed("chain restore failed: " + restore_error);
    const sim::RunResult rc = resumed.run();

    if (std::string why = diffRunResults(ra, rc); !why.empty())
        return failed("chain-resumed run diverged: " + why);
    if (std::string why = diffFinalState(sc, ref, resumed); !why.empty())
        return failed("chain-resumed run diverged: " + why);
    return rep;
}

} // namespace fb::verify
