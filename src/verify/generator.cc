#include "verify/generator.hh"

#include <sstream>

#include "support/logging.hh"
#include "support/random.hh"

namespace fb::verify
{

int
ProgramSpec::groupOf(int p) const
{
    int first = 0;
    for (std::size_t g = 0; g < groupSizes.size(); ++g) {
        if (p < first + groupSizes[g])
            return static_cast<int>(g);
        first += groupSizes[g];
    }
    panic("processor index outside group partition");
}

std::uint64_t
ProgramSpec::maskOf(int p) const
{
    int g = groupOf(p);
    int first = 0;
    for (int i = 0; i < g; ++i)
        first += groupSizes[i];
    std::uint64_t mask = 0;
    for (int i = 0; i < groupSizes[static_cast<std::size_t>(g)]; ++i)
        mask |= 1ull << (first + i);
    return mask;
}

ProgramSpec
randomSpec(std::uint64_t seed)
{
    RandomSource rng(seed);
    ProgramSpec spec;
    spec.seed = seed;

    const int procs = 2 + static_cast<int>(rng.nextBounded(6));
    spec.groupSizes = {procs};
    if (procs >= 4 && rng.nextBool(0.3)) {
        // Two disjoint tag groups, each with at least two members.
        int first = 2 + static_cast<int>(
                            rng.nextBounded(static_cast<std::uint64_t>(
                                procs - 3)));
        spec.groupSizes = {first, procs - first};
    }
    spec.episodes = 1 + static_cast<int>(rng.nextBounded(10));
    spec.encoding =
        rng.nextBool(0.25) ? Encoding::Markers : Encoding::RegionBits;
    spec.interruptPeriod =
        rng.nextBool(0.25) ? 30 + rng.nextBounded(90) : 0;

    for (int p = 0; p < procs; ++p) {
        StreamSpec s;
        s.workLen = 1 + static_cast<int>(rng.nextBounded(10));
        s.slowTail = rng.nextBool(0.2);
        s.nbBranch.present = rng.nextBool(0.5);
        if (s.nbBranch.present) {
            s.nbBranch.dataDependent = rng.nextBool(0.6);
            s.nbBranch.thenLen = 1 + static_cast<int>(rng.nextBounded(6));
            s.nbBranch.elseLen = 1 + static_cast<int>(rng.nextBounded(3));
            s.nbBranch.nested = rng.nextBool(0.3);
            s.nbBranch.nestedLen =
                1 + static_cast<int>(rng.nextBounded(3));
        }
        s.callFromWork = rng.nextBool(0.2);
        s.regionLen = static_cast<int>(rng.nextBounded(8));
        s.rgBranch.present = rng.nextBool(0.35);
        if (s.rgBranch.present) {
            s.rgBranch.thenLen = 1 + static_cast<int>(rng.nextBounded(4));
            s.rgBranch.elseLen = 1 + static_cast<int>(rng.nextBounded(2));
        }
        s.callFromRegion = rng.nextBool(0.2);
        s.helperLen = 1 + static_cast<int>(rng.nextBounded(5));
        s.lcgSeed =
            1 + static_cast<std::uint32_t>(rng.nextBounded(100000));
        spec.streams.push_back(s);
    }
    return spec;
}

namespace
{

void
emitRepeat(std::ostringstream &oss, int count, const char *line)
{
    for (int k = 0; k < count; ++k)
        oss << line << "\n";
}

} // namespace

std::string
renderStream(const ProgramSpec &spec, int p)
{
    FB_ASSERT(p >= 0 && p < spec.procs(), "stream index out of range");
    const StreamSpec &s = spec.streams[static_cast<std::size_t>(p)];
    const int tag = spec.groupOf(p) + 1;
    const bool helper = s.callFromWork || s.callFromRegion;
    const bool parity = (s.nbBranch.present && !s.nbBranch.dataDependent) ||
                        s.nbBranch.nested || s.rgBranch.present;
    const bool lcg = s.nbBranch.present && s.nbBranch.dataDependent;

    std::ostringstream oss;
    // The ISR must sit in a prefix with no region instructions and no
    // branch targets so its index (1) is identical under both region
    // encodings (toMarkerEncoding never inserts markers before it).
    if (spec.interruptPeriod > 0) {
        oss << "jmp main\n";
        oss << "isr:\n";
        oss << "addi r20, r20, 1\n";
        oss << "iret\n";
        oss << "main:\n";
    }
    oss << "settag " << tag << "\n";
    oss << "setmask " << spec.maskOf(p) << "\n";
    oss << "li r1, 0\n";
    oss << "li r2, " << spec.episodes << "\n";
    if (parity || lcg)
        oss << "li r7, 1\n";
    if (lcg) {
        oss << "li r10, " << s.lcgSeed << "\n";
        oss << "li r11, 16\n";
    }
    oss << "loop:\n";

    // Non-barrier work. workLen >= 1 keeps adjacent episodes from
    // merging across the backedge (the null non-barrier hazard).
    int plain = s.workLen - (s.slowTail ? 1 : 0);
    emitRepeat(oss, plain, "addi r3, r3, 1");
    if (s.slowTail)
        oss << "muli r3, r3, 1\n";

    if (s.nbBranch.present) {
        if (s.nbBranch.dataDependent) {
            oss << "muli r10, r10, 1103515245\n";
            oss << "addi r10, r10, 12345\n";
            oss << "shr r13, r10, r11\n";
            oss << "and r13, r13, r7\n";
        } else {
            oss << "and r13, r1, r7\n";
        }
        oss << "beq r13, r0, nb_else\n";
        emitRepeat(oss, s.nbBranch.thenLen, "addi r4, r4, 1");
        if (s.nbBranch.nested) {
            oss << "and r14, r1, r7\n";
            oss << "beq r14, r0, nb_nested\n";
            emitRepeat(oss, s.nbBranch.nestedLen, "addi r4, r4, 1");
            oss << "nb_nested:\n";
        }
        oss << "jmp nb_endif\n";
        oss << "nb_else:\n";
        emitRepeat(oss, s.nbBranch.elseLen, "addi r4, r4, 1");
        oss << "nb_endif:\n";
    }
    if (s.callFromWork)
        oss << "call r27, helper\n";

    oss << ".region " << tag << "\n";
    emitRepeat(oss, s.regionLen, "addi r5, r5, 1");
    if (s.rgBranch.present) {
        // Multiple exits and entries within a region are legal
        // (section 3); the condition is loop parity so every timing
        // model takes the same path.
        oss << "and r14, r1, r7\n";
        oss << "beq r14, r0, rg_else\n";
        emitRepeat(oss, s.rgBranch.thenLen, "addi r6, r6, 1");
        oss << "jmp rg_endif\n";
        oss << "rg_else:\n";
        emitRepeat(oss, s.rgBranch.elseLen, "addi r6, r6, 1");
        oss << "rg_endif:\n";
    }
    if (s.callFromRegion)
        oss << "call r27, helper\n";
    oss << "addi r1, r1, 1\n";
    oss << "bne r1, r2, loop\n";
    oss << ".endregion\n";

    // Results go to per-processor disjoint addresses so the final
    // memory image is identical across every timing model.
    const std::size_t base = resultBase(p);
    oss << "st r3, " << base << "(r0)\n";
    if (s.nbBranch.present)
        oss << "st r4, " << base + 1 << "(r0)\n";
    if (s.regionLen > 0)
        oss << "st r5, " << base + 2 << "(r0)\n";
    if (s.rgBranch.present)
        oss << "st r6, " << base + 3 << "(r0)\n";
    if (helper)
        oss << "st r25, " << base + 4 << "(r0)\n";
    oss << "halt\n";

    if (helper) {
        oss << "helper:\n";
        emitRepeat(oss, s.helperLen, "addi r25, r25, 1");
        oss << "ret r27\n";
    }
    return oss.str();
}

Scenario
render(const ProgramSpec &spec)
{
    FB_ASSERT(!spec.streams.empty(), "spec has no streams");
    int group_total = 0;
    for (int g : spec.groupSizes)
        group_total += g;
    FB_ASSERT(group_total == spec.procs(),
              "group sizes must cover all processors");

    Scenario sc;
    sc.groupSizes = spec.groupSizes;
    sc.episodes = spec.episodes;
    sc.encoding = spec.encoding;
    sc.interruptPeriod = spec.interruptPeriod;
    sc.isrEntry = spec.interruptPeriod > 0 ? 1 : -1;
    sc.genSeed = spec.seed;
    sc.faults = spec.faults;
    sc.watchdog = spec.watchdog;
    sc.faultSeed = spec.faultSeed;
    for (int p = 0; p < spec.procs(); ++p) {
        sc.sources.push_back(renderStream(spec, p));
        for (std::size_t k = 0; k < 5; ++k)
            sc.watchAddrs.push_back(resultBase(p) + k);
    }
    return sc;
}

} // namespace fb::verify
