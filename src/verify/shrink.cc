#include "verify/shrink.hh"

#include <algorithm>
#include <utility>

#include "support/logging.hh"

namespace fb::verify
{

namespace
{

// Whole-spec mutations; each returns false when it cannot apply.

bool
dropInterrupts(ProgramSpec &s)
{
    if (s.interruptPeriod == 0)
        return false;
    s.interruptPeriod = 0;
    return true;
}

bool
episodesToOne(ProgramSpec &s)
{
    if (s.episodes <= 1)
        return false;
    s.episodes = 1;
    return true;
}

bool
halveEpisodes(ProgramSpec &s)
{
    if (s.episodes <= 1)
        return false;
    s.episodes /= 2;
    return true;
}

bool
decrementEpisodes(ProgramSpec &s)
{
    if (s.episodes <= 1)
        return false;
    --s.episodes;
    return true;
}

/**
 * Keep the fault plan consistent after removing processor @p removed:
 * events targeting it are dropped and higher processor indices shift
 * down by one, matching the stream/group renumbering.
 */
void
remapFaultsAfterRemoval(ProgramSpec &s, int removed)
{
    auto &events = s.faults.events;
    events.erase(std::remove_if(events.begin(), events.end(),
                                [removed](const fault::FaultEvent &ev) {
                                    return ev.proc == removed;
                                }),
                 events.end());
    for (auto &ev : events) {
        if (ev.proc > removed)
            --ev.proc;
    }
}

bool
dropLastGroup(ProgramSpec &s)
{
    if (s.groups() <= 1)
        return false;
    int removed = s.groupSizes.back();
    s.groupSizes.pop_back();
    s.streams.resize(s.streams.size() -
                     static_cast<std::size_t>(removed));
    // Removed processors occupied the top indices: no renumbering of
    // survivors is needed, just drop their fault events.
    const int remaining = s.procs();
    auto &events = s.faults.events;
    events.erase(std::remove_if(events.begin(), events.end(),
                                [remaining](const fault::FaultEvent &ev) {
                                    return ev.proc >= remaining;
                                }),
                 events.end());
    return true;
}

bool
dropOneProcessor(ProgramSpec &s)
{
    // Remove the last member of the largest group that can spare one
    // (groups stay >= 2 so the barrier still synchronizes).
    int best = -1;
    for (std::size_t g = 0; g < s.groupSizes.size(); ++g) {
        if (s.groupSizes[g] > 2 &&
            (best < 0 || s.groupSizes[g] > s.groupSizes[
                             static_cast<std::size_t>(best)]))
            best = static_cast<int>(g);
    }
    if (best < 0)
        return false;
    int last = 0;  // index one past the group's last processor
    for (int g = 0; g <= best; ++g)
        last += s.groupSizes[static_cast<std::size_t>(g)];
    s.streams.erase(s.streams.begin() + (last - 1));
    --s.groupSizes[static_cast<std::size_t>(best)];
    remapFaultsAfterRemoval(s, last - 1);
    return true;
}

// Fault-schedule mutations: try to lose the whole plan first, then
// individual events, then shrink the injection cycles (a minimal
// reproducer should fire its faults as early as possible).

bool
dropAllFaults(ProgramSpec &s)
{
    if (s.faults.empty())
        return false;
    s.faults.events.clear();
    s.watchdog = fault::WatchdogConfig{};
    return true;
}

bool
dropLastFaultEvent(ProgramSpec &s)
{
    if (s.faults.empty())
        return false;
    s.faults.events.pop_back();
    return true;
}

bool
dropTransientFaults(ProgramSpec &s)
{
    auto &events = s.faults.events;
    auto it = std::remove_if(events.begin(), events.end(),
                             [](const fault::FaultEvent &ev) {
                                 return !ev.fatal();
                             });
    if (it == events.end())
        return false;
    events.erase(it, events.end());
    return true;
}

bool
halveFaultCycles(ProgramSpec &s)
{
    bool changed = false;
    for (auto &ev : s.faults.events) {
        if (ev.cycle > 0) {
            ev.cycle /= 2;
            changed = true;
        }
    }
    return changed;
}

bool
regionBitsEncoding(ProgramSpec &s)
{
    if (s.encoding == Encoding::RegionBits)
        return false;
    s.encoding = Encoding::RegionBits;
    return true;
}

/** Apply @p f to every stream; true if anything changed. */
template <typename F>
bool
eachStream(ProgramSpec &s, F f)
{
    bool changed = false;
    for (auto &st : s.streams)
        changed |= f(st);
    return changed;
}

} // namespace

ProgramSpec
shrink(const ProgramSpec &failing, const FailPredicate &fails,
       ShrinkStats *stats)
{
    ShrinkStats local;
    ShrinkStats &st = stats ? *stats : local;

    ProgramSpec best = failing;
    FB_ASSERT(fails(render(best)),
              "shrink() requires a spec that fails the predicate");

    // Per-stream flattening mutators, as plain lambdas wrapped below.
    auto dropRegionCall = [](StreamSpec &x) {
        return std::exchange(x.callFromRegion, false);
    };
    auto dropWorkCall = [](StreamSpec &x) {
        return std::exchange(x.callFromWork, false);
    };
    auto dropRegionBranch = [](StreamSpec &x) {
        return std::exchange(x.rgBranch.present, false);
    };
    auto dropNested = [](StreamSpec &x) {
        return std::exchange(x.nbBranch.nested, false);
    };
    auto dropWorkBranch = [](StreamSpec &x) {
        return std::exchange(x.nbBranch.present, false);
    };
    auto dropSlowTail = [](StreamSpec &x) {
        return std::exchange(x.slowTail, false);
    };
    auto clearRegion = [](StreamSpec &x) {
        return std::exchange(x.regionLen, 0) != 0;
    };
    auto shrinkLengths = [](StreamSpec &x) {
        bool changed = false;
        auto cut = [&changed](int &v, int floor) {
            if (v > floor) {
                v = floor + (v - floor) / 2;
                changed = true;
            }
        };
        cut(x.workLen, 1);
        cut(x.regionLen, 0);
        cut(x.helperLen, 1);
        cut(x.nbBranch.thenLen, 1);
        cut(x.nbBranch.elseLen, 1);
        cut(x.nbBranch.nestedLen, 1);
        cut(x.rgBranch.thenLen, 1);
        cut(x.rgBranch.elseLen, 1);
        return changed;
    };

    using SpecMutation = std::function<bool(ProgramSpec &)>;
    std::vector<SpecMutation> mutations = {
        dropInterrupts,
        episodesToOne,
        halveEpisodes,
        decrementEpisodes,
        dropLastGroup,
        dropOneProcessor,
        regionBitsEncoding,
        dropAllFaults,
        dropLastFaultEvent,
        dropTransientFaults,
        halveFaultCycles,
        [&](ProgramSpec &s) { return eachStream(s, dropRegionCall); },
        [&](ProgramSpec &s) { return eachStream(s, dropWorkCall); },
        [&](ProgramSpec &s) { return eachStream(s, dropRegionBranch); },
        [&](ProgramSpec &s) { return eachStream(s, dropNested); },
        [&](ProgramSpec &s) { return eachStream(s, dropWorkBranch); },
        [&](ProgramSpec &s) { return eachStream(s, dropSlowTail); },
        [&](ProgramSpec &s) { return eachStream(s, clearRegion); },
        [&](ProgramSpec &s) { return eachStream(s, shrinkLengths); },
    };

    bool progress = true;
    while (progress) {
        progress = false;
        ++st.passes;
        for (auto &mutate : mutations) {
            // A mutator may be re-appliable (halving); keep applying
            // it while it both applies and preserves the failure.
            for (;;) {
                ProgramSpec candidate = best;
                if (!mutate(candidate))
                    break;
                ++st.attempts;
                if (!fails(render(candidate)))
                    break;
                best = std::move(candidate);
                ++st.accepted;
                progress = true;
            }
        }
    }
    return best;
}

} // namespace fb::verify
