#include "verify/scenario.hh"

#include <sstream>

#include "support/strutil.hh"

namespace fb::verify
{

const char *
encodingName(Encoding e)
{
    return e == Encoding::RegionBits ? "bits" : "markers";
}

std::size_t
Scenario::totalAsmLines() const
{
    std::size_t lines = 0;
    for (const auto &src : sources) {
        std::istringstream in(src);
        std::string line;
        while (std::getline(in, line)) {
            if (!trim(line).empty())
                ++lines;
        }
    }
    return lines;
}

std::string
Scenario::toReproducer() const
{
    std::ostringstream oss;
    oss << "; fbfuzz reproducer -- replay with: fbfuzz --replay <file>\n";
    oss << "!version 1\n";
    oss << "!encoding " << encodingName(encoding) << "\n";
    oss << "!groupsizes";
    for (int s : groupSizes)
        oss << " " << s;
    oss << "\n";
    oss << "!episodes " << episodes << "\n";
    oss << "!interrupt " << interruptPeriod << "\n";
    oss << "!isr " << isrEntry << "\n";
    oss << "!watch";
    for (auto a : watchAddrs)
        oss << " " << a;
    oss << "\n";
    if (genSeed != 0)
        oss << "!genseed " << genSeed << "\n";
    if (!faults.empty())
        oss << "!fault " << faults.toSpec() << "\n";
    if (watchdog.enabled) {
        oss << "!watchdog " << watchdog.timeoutCycles << ":"
            << watchdog.maxAttempts << "\n";
    }
    if (faultSeed != 0)
        oss << "!faultseed " << faultSeed << "\n";
    for (std::size_t p = 0; p < sources.size(); ++p) {
        oss << "!program " << p << "\n";
        oss << sources[p];
        if (!sources[p].empty() && sources[p].back() != '\n')
            oss << "\n";
        oss << "!endprogram\n";
    }
    return oss.str();
}

bool
Scenario::fromReproducer(const std::string &text, Scenario &out,
                         std::string &error)
{
    Scenario sc;
    sc.groupSizes.clear();
    sc.watchAddrs.clear();

    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    int programs_seen = 0;
    bool in_program = false;
    std::ostringstream body;

    auto fail = [&](const std::string &msg) {
        error = "reproducer line " + std::to_string(line_no) + ": " + msg;
        return false;
    };

    while (std::getline(in, line)) {
        ++line_no;
        if (in_program) {
            if (trim(line) == "!endprogram") {
                sc.sources.push_back(body.str());
                body.str("");
                in_program = false;
            } else {
                body << line << "\n";
            }
            continue;
        }
        std::string t = trim(line);
        if (t.empty() || t[0] == ';')
            continue;
        if (t[0] != '!')
            return fail("expected !directive, got '" + t + "'");
        auto toks = splitWhitespace(t);
        const std::string &key = toks[0];
        auto intArg = [&](std::size_t i, std::int64_t &v) {
            return toks.size() > i && parseInt(toks[i], v);
        };
        std::int64_t v = 0;
        if (key == "!version") {
            if (!intArg(1, v) || v != 1)
                return fail("unsupported reproducer version");
        } else if (key == "!encoding") {
            if (toks.size() < 2)
                return fail("!encoding needs a value");
            if (toks[1] == "bits")
                sc.encoding = Encoding::RegionBits;
            else if (toks[1] == "markers")
                sc.encoding = Encoding::Markers;
            else
                return fail("unknown encoding '" + toks[1] + "'");
        } else if (key == "!groupsizes") {
            for (std::size_t i = 1; i < toks.size(); ++i) {
                if (!parseInt(toks[i], v) || v < 1)
                    return fail("bad group size");
                sc.groupSizes.push_back(static_cast<int>(v));
            }
        } else if (key == "!episodes") {
            if (!intArg(1, v) || v < 0)
                return fail("bad !episodes");
            sc.episodes = static_cast<int>(v);
        } else if (key == "!interrupt") {
            if (!intArg(1, v) || v < 0)
                return fail("bad !interrupt");
            sc.interruptPeriod = static_cast<std::uint64_t>(v);
        } else if (key == "!isr") {
            if (!intArg(1, v))
                return fail("bad !isr");
            sc.isrEntry = v;
        } else if (key == "!watch") {
            for (std::size_t i = 1; i < toks.size(); ++i) {
                if (!parseInt(toks[i], v) || v < 0)
                    return fail("bad watch address");
                sc.watchAddrs.push_back(static_cast<std::size_t>(v));
            }
        } else if (key == "!genseed") {
            if (!intArg(1, v))
                return fail("bad !genseed");
            sc.genSeed = static_cast<std::uint64_t>(v);
        } else if (key == "!fault") {
            std::string spec;
            for (std::size_t i = 1; i < toks.size(); ++i) {
                if (i > 1)
                    spec += " ";
                spec += toks[i];
            }
            std::string fault_error;
            if (!fault::FaultPlan::parse(spec, sc.faults, fault_error))
                return fail("bad !fault: " + fault_error);
        } else if (key == "!watchdog") {
            if (toks.size() < 2)
                return fail("!watchdog needs timeout[:attempts]");
            std::string spec = toks[1];
            std::string timeout_part = spec;
            std::string attempts_part;
            auto colon = spec.find(':');
            if (colon != std::string::npos) {
                timeout_part = spec.substr(0, colon);
                attempts_part = spec.substr(colon + 1);
            }
            if (!parseInt(timeout_part, v) || v < 1)
                return fail("bad !watchdog timeout");
            sc.watchdog.enabled = true;
            sc.watchdog.timeoutCycles = static_cast<std::uint64_t>(v);
            if (!attempts_part.empty()) {
                if (!parseInt(attempts_part, v) || v < 1)
                    return fail("bad !watchdog attempts");
                sc.watchdog.maxAttempts = static_cast<int>(v);
            }
        } else if (key == "!faultseed") {
            if (!intArg(1, v))
                return fail("bad !faultseed");
            sc.faultSeed = static_cast<std::uint64_t>(v);
        } else if (key == "!program") {
            if (!intArg(1, v) || v != programs_seen)
                return fail("!program sections must be dense and in order");
            ++programs_seen;
            in_program = true;
        } else {
            return fail("unknown directive " + key);
        }
    }
    if (in_program)
        return fail("unterminated !program section");
    if (sc.sources.empty())
        return fail("no !program sections");

    int group_total = 0;
    for (int s : sc.groupSizes)
        group_total += s;
    if (group_total != sc.procs())
        return fail("group sizes do not cover all processors");
    if (sc.interruptPeriod > 0 && sc.isrEntry < 0)
        return fail("!interrupt requires a non-negative !isr index");
    for (const auto &ev : sc.faults.events) {
        if (ev.proc < 0 || ev.proc >= sc.procs())
            return fail("!fault targets processor " +
                        std::to_string(ev.proc) + " of " +
                        std::to_string(sc.procs()));
    }

    out = std::move(sc);
    return true;
}

} // namespace fb::verify
