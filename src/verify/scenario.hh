/**
 * @file
 * A differential-verification scenario: one fbasm program per
 * processor plus the structural expectations the oracles check, with
 * a deterministic textual reproducer format for replay.
 */

#ifndef FB_VERIFY_SCENARIO_HH
#define FB_VERIFY_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/plan.hh"
#include "fault/watchdog.hh"

namespace fb::verify
{

/** Which region encoding the baseline executor runs. */
enum class Encoding
{
    RegionBits,  ///< per-instruction region bit (paper section 6)
    Markers,     ///< explicit BRENTER/BREXIT markers
};

/** Name of an encoding ("bits" / "markers"). */
const char *encodingName(Encoding e);

/**
 * A complete, self-describing differential test case.
 *
 * Processors are partitioned into contiguous tag groups:
 * groupSizes = {2, 3} means processors 0-1 synchronize under tag 1
 * and processors 2-4 under tag 2. Every processor executes exactly
 * @ref episodes barrier episodes; that structural invariant is what
 * lets the differ compare runs across timing models.
 *
 * When @ref interruptPeriod is nonzero, @ref isrEntry is the ISR's
 * instruction index, identical in every program. The generator (and
 * the reproducer format) place the ISR in a program prefix that
 * contains no region instructions and no branch targets, so the
 * index survives toMarkerEncoding() unchanged.
 */
struct Scenario
{
    std::vector<std::string> sources;   ///< fbasm text per processor
    std::vector<int> groupSizes = {2};  ///< contiguous tag-group sizes
    int episodes = 1;                   ///< barrier episodes per processor
    Encoding encoding = Encoding::RegionBits;
    std::uint64_t interruptPeriod = 0;  ///< 0 = interrupts off
    std::int64_t isrEntry = -1;         ///< ISR instruction index
    std::vector<std::size_t> watchAddrs; ///< memory words diffed after runs
    std::uint64_t genSeed = 0;          ///< provenance (0 = hand-written)

    /** Fault schedule injected into every variant (empty = none). */
    fault::FaultPlan faults;
    /** Watchdog configuration (enabled automatically with faults). */
    fault::WatchdogConfig watchdog;
    /** Seed the fault plan was generated from (0 = hand-written). */
    std::uint64_t faultSeed = 0;

    /** True if this scenario exercises the fault subsystem. */
    bool hasFaults() const { return !faults.empty(); }

    int procs() const { return static_cast<int>(sources.size()); }
    int groups() const { return static_cast<int>(groupSizes.size()); }

    /** Total fbasm line count over all programs (blank lines excluded). */
    std::size_t totalAsmLines() const;

    /**
     * Serialize to the reproducer format: `!key value` header lines
     * followed by one `!program N` ... `!endprogram` section per
     * processor. Byte-deterministic for a given scenario.
     */
    std::string toReproducer() const;

    /**
     * Parse a reproducer. Returns false and sets @p error on
     * malformed input.
     */
    static bool fromReproducer(const std::string &text, Scenario &out,
                               std::string &error);
};

} // namespace fb::verify

#endif // FB_VERIFY_SCENARIO_HH
