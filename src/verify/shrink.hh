/**
 * @file
 * Greedy test-case minimization for failing ProgramSpecs.
 *
 * The shrinker mutates the structured spec — never the rendered text
 * — so every candidate is structurally valid by construction: drop
 * interrupts, cut episodes, drop whole tag groups and processors,
 * flatten branches, remove procedure calls, and shrink work/region
 * lengths. A mutation is kept iff the re-rendered scenario still
 * fails the caller's predicate; passes repeat until a full pass
 * accepts nothing.
 */

#ifndef FB_VERIFY_SHRINK_HH
#define FB_VERIFY_SHRINK_HH

#include <functional>

#include "verify/generator.hh"

namespace fb::verify
{

/** Returns true while the scenario still exhibits the failure. */
using FailPredicate = std::function<bool(const Scenario &)>;

/** Bookkeeping about one shrink run. */
struct ShrinkStats
{
    int attempts = 0;  ///< candidate scenarios evaluated
    int accepted = 0;  ///< mutations that preserved the failure
    int passes = 0;    ///< full mutation passes until fixpoint
};

/**
 * Minimize @p failing (which must fail @p fails when rendered).
 * Returns the smallest spec found; the result is guaranteed to still
 * fail the predicate and to be no larger than the input.
 */
ProgramSpec shrink(const ProgramSpec &failing, const FailPredicate &fails,
                   ShrinkStats *stats = nullptr);

} // namespace fb::verify

#endif // FB_VERIFY_SHRINK_HH
