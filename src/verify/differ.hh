/**
 * @file
 * Differential executors and oracles for fuzzy-barrier scenarios.
 *
 * One Scenario is executed under a matrix of models that the paper
 * claims are result-equivalent — region-bit vs marker encoding,
 * pipeline depths, hardware vs software (Encore, section 8) stall
 * models, execution jitter, and VLIW multi-issue — and every run is
 * checked against the structural oracles (liveness, per-processor
 * episode counts, the section-2 safety condition) and diffed against
 * the baseline fingerprint (registers, watched memory). The same
 * episode schedule is also cross-checked against the real-thread
 * swbarrier reference implementations.
 */

#ifndef FB_VERIFY_DIFFER_HH
#define FB_VERIFY_DIFFER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "barrier/topology.hh"
#include "swbarrier/factory.hh"
#include "verify/scenario.hh"

namespace fb::exec
{
class MachinePool;
class ProgramCache;
} // namespace fb::exec

namespace fb::verify
{

/** Everything diffed about one execution of a scenario. */
struct Fingerprint
{
    bool deadlocked = false;
    bool timedOut = false;
    std::string safety;                  ///< "" = safety oracle holds
    std::uint64_t syncEvents = 0;
    std::vector<std::uint64_t> episodes; ///< per-processor episode count
    std::vector<std::int64_t> regs;      ///< diffed registers per proc
    std::vector<std::int64_t> mem;       ///< watched memory words
    std::vector<int> deadDeclared;       ///< fenced by recovery (sorted)
    std::string membership;              ///< "" = fault-safety holds

    /** FNV-1a hash over all fields, for compact replay output. */
    std::uint64_t hash() const;

    /** One-line summary (deterministic). */
    std::string summary() const;
};

/** Which executors to run beyond the depth-1 baseline. */
struct DiffOptions
{
    bool otherEncoding = true;          ///< bit <-> marker cross-check
    std::vector<int> pipelineDepths = {2, 4};
    bool softwareStall = true;          ///< Encore-style stall model
    bool jitter = true;                 ///< random execution drift
    bool multiIssue = true;             ///< VLIW width 4
    bool legacyLoop = true;             ///< per-cycle loop (no fast-forward)
    bool legacyDispatch = true;         ///< legacy interpreter (no predecode)
    /**
     * Topology-sweep cross-check: re-run the baseline model under a
     * tree and a cluster synchronization network. The topology only
     * moves delivery cycles, so episodes, registers and watched
     * memory must match the flat baseline bit-for-bit (INTERNALS
     * section 21).
     */
    bool topologySweep = true;
    /**
     * Synchronization-network shape for the baseline and every
     * non-sweep variant (the fbfuzz --topology flag). The sweep skips
     * a shape equal to this one — it would duplicate the baseline.
     */
    barrier::Topology topology;
    bool swBarrierReference = true;     ///< real-thread cross-check
    std::uint64_t maxCycles = 5'000'000;
    std::size_t memWords = 4096;

    /**
     * Delta-chain checkpoint/restore oracle on every scenario: the
     * baseline is re-run with a staged checkpoint sink capturing a
     * full-snapshot-plus-deltas chain in memory, and a fresh machine
     * restored through a whole chain runs to completion — both must
     * match the uninterrupted run bit-for-bit
     * (verify::checkChainResumeEquivalence). On by default: E17's
     * delta+async overhead made checkpointing cheap enough that every
     * campaign now exercises the durability path instead of trusting
     * a separate sweep. Campaigns run it via runCampaign's item
     * runners, which build their DiffOptions from these defaults.
     */
    bool checkpointing = true;

    /**
     * When >= 2, adds a sequential-vs-sharded executor: the baseline
     * machine re-run under exec::ShardedMachine with this many host
     * threads and @ref shardQuantum cycles of permitted skew
     * (INTERNALS section 17). 0 or 1 = off — the default, so
     * single-scenario fuzzing stays cheap and thread-free.
     */
    int shards = 0;
    /** Skew quantum for the sharded executor (cycles). */
    std::uint64_t shardQuantum = 1024;

    /**
     * Master switch for the pre-decoded threaded-code backend: when
     * false every executor in the matrix (baseline included) runs the
     * legacy interpreter and the legacy-dispatch cross-check variant
     * is skipped as redundant. The fbfuzz --no-predecode escape hatch.
     */
    bool predecode = true;

    /**
     * Optional campaign-engine hooks. When set, every variant runs on
     * a reset machine leased from the pool instead of a freshly
     * constructed one, and program assembly goes through the shared
     * intern cache. Both must outlive the call; the pool must belong
     * to the calling worker (MachinePool is not thread-safe).
     */
    exec::MachinePool *machinePool = nullptr;
    exec::ProgramCache *programCache = nullptr;
};

/** Outcome of a differential run. */
struct DiffReport
{
    bool ok = true;
    std::string variant;  ///< executor that failed/diverged ("" if ok)
    std::string failure;  ///< description of the first divergence
    Fingerprint baseline;
    int variantsRun = 0;

    /** Multi-line human-readable report (deterministic). */
    std::string describe() const;
};

/**
 * Assemble and execute @p sc under the full differential matrix.
 * Stops at the first failing or diverging executor.
 */
DiffReport runDifferential(const Scenario &sc,
                           const DiffOptions &opt = {});

/**
 * Run @p episodes arrive/wait episodes over @p threads real threads
 * on a software barrier of @p kind, asserting the fuzzy-barrier
 * safety condition (wait() may not return before every member's
 * arrive()). Returns "" on success or a failure description.
 */
std::string runSwBarrierReference(sw::BarrierKind kind, int threads,
                                  int episodes);

/**
 * Degraded-membership reference: @p threads real threads run
 * @p episodes episodes, but thread @p victim disappears after episode
 * @p kill_at (0-based; it completes episodes [0, kill_at) only). The
 * survivors detect the loss via waitFor() timeout with retry and
 * rebuild the barrier over the surviving membership — the software
 * analog of the watchdog + mask-shrink protocol. Returns "" on
 * success or a failure description.
 */
std::string runSwBarrierDegradedReference(sw::BarrierKind kind,
                                          int threads, int episodes,
                                          int victim, int kill_at);

} // namespace fb::verify

#endif // FB_VERIFY_DIFFER_HH
