/**
 * @file
 * Structured random generation of multi-processor fuzzy-barrier
 * programs.
 *
 * The generator is split into two pure stages so the shrinker can
 * work on structure instead of text:
 *
 *   seed --randomSpec--> ProgramSpec --render--> Scenario (fbasm)
 *
 * A ProgramSpec describes one episode loop per processor: a
 * non-barrier work section (optionally with data-dependent and
 * nested if/else, optionally calling a helper procedure) followed by
 * a barrier region (optionally with its own if/else and an inherited
 * procedure call, section 9), with the loop control inside the
 * region so the region spans the backedge (Fig. 4). All processors
 * in a tag group execute the same episode count, which is the
 * structural invariant the differential oracles rely on.
 *
 * Register map of rendered programs (diffed registers marked *):
 *   r1* loop counter       r2* episode bound    r3* work counter
 *   r4* branch counter     r5* region counter   r6* region-branch ctr
 *   r7  constant 1         r10 LCG state        r11 constant 16
 *   r13/r14 branch scratch r20 ISR counter      r25* helper counter
 *   r27 helper link register
 * r20 is excluded from diffing because interrupt delivery counts are
 * timing-dependent by design.
 */

#ifndef FB_VERIFY_GENERATOR_HH
#define FB_VERIFY_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "verify/scenario.hh"

namespace fb::verify
{

/** An if/else in a generated stream. */
struct BranchSpec
{
    bool present = false;
    /** Condition from a per-stream LCG (vs loop-counter parity). */
    bool dataDependent = false;
    int thenLen = 1;
    int elseLen = 1;
    /** Nested if inside the then-branch. */
    bool nested = false;
    int nestedLen = 1;
};

/** One processor's episode-loop shape. */
struct StreamSpec
{
    /** Non-barrier work instructions per episode (>= 1: a null
     * non-barrier section would merge adjacent episodes). */
    int workLen = 1;
    /** Make the last work instruction a multi-cycle multiply, so
     * deep pipelines hit the DrainWait path (INTERNALS section 2). */
    bool slowTail = false;
    BranchSpec nbBranch;       ///< if/else in the non-barrier section
    bool callFromWork = false; ///< helper call from non-barrier code
    int regionLen = 0;         ///< region filler instructions
    BranchSpec rgBranch;       ///< if/else inside the barrier region
    bool callFromRegion = false; ///< inherited-region call (section 9)
    int helperLen = 2;         ///< helper procedure body length
    std::uint32_t lcgSeed = 1; ///< per-stream LCG seed
};

/** A complete multi-processor test-program shape. */
struct ProgramSpec
{
    std::vector<int> groupSizes = {2}; ///< contiguous tag groups
    int episodes = 1;
    Encoding encoding = Encoding::RegionBits;
    std::uint64_t interruptPeriod = 0; ///< 0 = interrupts off
    std::vector<StreamSpec> streams;   ///< one per processor
    std::uint64_t seed = 0;            ///< provenance

    /** Fault schedule rendered into the scenario (empty = none). */
    fault::FaultPlan faults;
    /** Watchdog settings for fault runs (required with fatal faults). */
    fault::WatchdogConfig watchdog;
    /** Seed the fault plan was derived from (0 = none/hand-written). */
    std::uint64_t faultSeed = 0;

    int procs() const { return static_cast<int>(streams.size()); }
    int groups() const { return static_cast<int>(groupSizes.size()); }

    /** Group index of processor @p p. */
    int groupOf(int p) const;

    /** Barrier mask for processor @p p (all bits of its group). */
    std::uint64_t maskOf(int p) const;
};

/**
 * Base address of processor @p p's 8-word result block. Rendered
 * streams store only inside their own block (disjoint across
 * processors), which is what lets fault-mode differential runs diff
 * survivor memory while excluding a victim's words by address.
 */
constexpr std::size_t
resultBase(int p)
{
    return 100 + static_cast<std::size_t>(p) * 8;
}

/**
 * Derive a random ProgramSpec from @p seed. Identical seeds yield
 * identical specs: processor count 2-7, 1-2 tag groups, 1-10
 * episodes, both encodings, optional interrupts, and per-stream
 * branch/call/region shapes.
 */
ProgramSpec randomSpec(std::uint64_t seed);

/** Render one processor's fbasm text. */
std::string renderStream(const ProgramSpec &spec, int p);

/**
 * Render the whole spec into a runnable Scenario (sources, group
 * layout, expectations, watch addresses).
 */
Scenario render(const ProgramSpec &spec);

} // namespace fb::verify

#endif // FB_VERIFY_GENERATOR_HH
