#include "verify/differ.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <sstream>
#include <thread>

#include "barrier/topology.hh"
#include "exec/machine_pool.hh"
#include "exec/program_cache.hh"
#include "exec/sharded_machine.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "verify/generator.hh"
#include "verify/resume.hh"

namespace fb::verify
{

namespace
{

/** Registers compared across executors (see generator.hh). */
constexpr int diffedRegs[] = {1, 2, 3, 4, 5, 6, 25};

struct Variant
{
    std::string name;
    bool markers = false;     ///< run the marker-encoded programs
    int pipelineDepth = 1;
    int issueWidth = 1;
    double jitterMean = 0.0;
    std::uint64_t machineSeed = 1;
    sim::StallModel stall = sim::StallModel::hardware();
    bool fastForward = true;  ///< event-driven core vs per-cycle loop
    bool predecode = true;    ///< threaded-code backend vs legacy decode
    int shardCount = 1;       ///< host threads (exec::ShardedMachine)
    std::uint64_t shardQuantum = 0;  ///< skew window (0 = sequential)
    /** Sync network override; unset = DiffOptions::topology. */
    std::optional<barrier::Topology> topology;
};

/**
 * The programs of one encoding plus (optionally) their shared
 * pre-decoded blocks. With a program cache the decoded vector is
 * populated from the interned entries, so every pooled machine in a
 * campaign reuses one decode per distinct source; without it the
 * vector stays empty and loadProgram decodes privately.
 */
struct ProgramSet
{
    std::vector<isa::Program> programs;
    std::vector<std::shared_ptr<const sim::DecodedProgram>> decoded;
};

Fingerprint
runOnMachine(const Scenario &sc, const ProgramSet &set, sim::Machine &m)
{
    for (int p = 0; p < sc.procs(); ++p) {
        const auto sp = static_cast<std::size_t>(p);
        m.loadProgram(p, set.programs[sp],
                      set.decoded.empty() ? nullptr : set.decoded[sp]);
    }
    // ShardedMachine honors the machine's shard config and falls back
    // to the plain sequential run() when shardCount <= 1, so routing
    // every variant through it costs nothing for sequential variants.
    exec::ShardedMachine sharded(m);
    auto r = sharded.run();

    Fingerprint fp;
    fp.deadlocked = r.deadlocked;
    fp.timedOut = r.timedOut;
    fp.safety = m.checkSafetyProperty();
    fp.syncEvents = r.syncEvents;
    fp.deadDeclared = r.deadDeclared;
    std::sort(fp.deadDeclared.begin(), fp.deadDeclared.end());
    fp.membership = r.membershipViolation;
    for (int p = 0; p < sc.procs(); ++p) {
        fp.episodes.push_back(
            r.perProcessor[static_cast<std::size_t>(p)].barrierEpisodes);
        for (int reg : diffedRegs)
            fp.regs.push_back(m.processor(p).reg(reg));
    }
    for (auto addr : sc.watchAddrs)
        fp.mem.push_back(m.memory().peek(addr));
    return fp;
}

Fingerprint
runVariant(const Scenario &sc, const ProgramSet &set, const Variant &v,
           const DiffOptions &opt)
{
    sim::MachineConfig cfg;
    cfg.numProcessors = sc.procs();
    cfg.memWords = opt.memWords;
    cfg.pipelineDepth = v.pipelineDepth;
    cfg.issueWidth = v.issueWidth;
    cfg.jitterMean = v.jitterMean;
    cfg.seed = v.machineSeed;
    cfg.stall = v.stall;
    cfg.maxCycles = opt.maxCycles;
    cfg.fastForward = v.fastForward;
    cfg.predecode = v.predecode && opt.predecode;
    cfg.shardCount = v.shardCount;
    cfg.shardQuantum = v.shardQuantum;
    cfg.topology = v.topology ? *v.topology : opt.topology;
    cfg.interruptPeriod = sc.interruptPeriod;
    cfg.isrEntry = sc.isrEntry;
    if (sc.hasFaults()) {
        cfg.faultPlan = &sc.faults;
        cfg.watchdog = sc.watchdog;
    }

    if (opt.machinePool) {
        auto lease = opt.machinePool->acquire(cfg);
        return runOnMachine(sc, set, *lease);
    }
    sim::Machine m(cfg);
    return runOnMachine(sc, set, m);
}

/**
 * Check the structural oracles every executor must satisfy on its
 * own: liveness, safety, and the per-processor episode count.
 * syncEvents is only pinned for a single tag group — with disjoint
 * groups, two groups completing in the same cycle merge into one
 * network event, so the total is timing-dependent.
 */
std::string
checkOracles(const Scenario &sc, const Fingerprint &fp)
{
    std::ostringstream oss;
    if (fp.deadlocked)
        return "liveness: deadlocked";
    if (fp.timedOut)
        return "liveness: timed out (maxCycles guard)";
    if (!fp.safety.empty())
        return "safety: " + fp.safety;
    for (int p = 0; p < sc.procs(); ++p) {
        auto got = fp.episodes[static_cast<std::size_t>(p)];
        if (got != static_cast<std::uint64_t>(sc.episodes)) {
            oss << "episodes: processor " << p << " completed " << got
                << " episodes, expected " << sc.episodes;
            return oss.str();
        }
    }
    if (sc.groups() == 1 &&
        fp.syncEvents != static_cast<std::uint64_t>(sc.episodes)) {
        oss << "episodes: " << fp.syncEvents
            << " group sync events, expected " << sc.episodes;
        return oss.str();
    }
    return "";
}

/**
 * Fault-mode structural oracles:
 *
 *  - recovery-liveness: the run neither deadlocks nor times out —
 *    every episode completes or the machine cleanly reports the
 *    degraded membership and finishes with it;
 *  - fault-safety: no processor crossed a barrier without every live
 *    same-tag same-epoch participant (Machine::checkMembership), and
 *    the watchdog never declared a live processor dead (deadDeclared
 *    must be a subset of the plan's fatal targets);
 *  - survivors complete exactly sc.episodes; fatal targets at most.
 */
std::string
checkFaultOracles(const Scenario &sc, const std::vector<int> &fatal,
                  const Fingerprint &fp)
{
    std::ostringstream oss;
    if (fp.deadlocked)
        return "recovery-liveness: deadlocked under faults";
    if (fp.timedOut)
        return "recovery-liveness: timed out (maxCycles guard)";
    if (!fp.membership.empty())
        return "fault-safety: " + fp.membership;
    if (!fp.safety.empty())
        return "safety: " + fp.safety;
    auto isFatalTarget = [&fatal](int p) {
        return std::find(fatal.begin(), fatal.end(), p) != fatal.end();
    };
    for (int d : fp.deadDeclared) {
        if (!isFatalTarget(d)) {
            oss << "fault-safety: watchdog declared live processor "
                << d << " dead (false positive)";
            return oss.str();
        }
    }
    for (int p = 0; p < sc.procs(); ++p) {
        auto got = fp.episodes[static_cast<std::size_t>(p)];
        auto want = static_cast<std::uint64_t>(sc.episodes);
        if (isFatalTarget(p)) {
            if (got > want) {
                oss << "episodes: fatal target " << p << " completed "
                    << got << " episodes, more than the scheduled "
                    << sc.episodes;
                return oss.str();
            }
        } else if (got != want) {
            oss << "recovery-liveness: survivor " << p << " completed "
                << got << " episodes, expected " << sc.episodes;
            return oss.str();
        }
    }
    return "";
}

/**
 * Diff a variant fingerprint against the baseline. In fault mode
 * @p fatal lists the plan's fatal targets: their registers, episode
 * counts, and result-block memory words are excluded (where a victim
 * dies is timing-dependent), and syncEvents is not compared (episodes
 * the victim still participated in depend on timing too). Survivor
 * state is timing-invariant because rendered streams only write their
 * own disjoint result blocks.
 */
std::string
diffAgainstBaseline(const Scenario &sc, const std::vector<int> &fatal,
                    const Fingerprint &base, const Fingerprint &fp)
{
    std::ostringstream oss;
    auto isFatalTarget = [&fatal](int p) {
        return std::find(fatal.begin(), fatal.end(), p) != fatal.end();
    };
    auto fatalOwnsAddr = [&fatal](std::size_t addr) {
        for (int p : fatal) {
            if (addr >= resultBase(p) && addr < resultBase(p) + 8)
                return true;
        }
        return false;
    };
    const std::size_t perProc = std::size(diffedRegs);
    for (std::size_t p = 0; p < fp.episodes.size(); ++p) {
        if (isFatalTarget(static_cast<int>(p)))
            continue;
        if (fp.episodes[p] != base.episodes[p]) {
            oss << "episodes diverge: processor " << p << " completed "
                << fp.episodes[p] << " vs baseline " << base.episodes[p];
            return oss.str();
        }
    }
    if (fatal.empty() && sc.groups() == 1 &&
        fp.syncEvents != base.syncEvents) {
        oss << "sync events diverge: " << fp.syncEvents << " vs baseline "
            << base.syncEvents;
        return oss.str();
    }
    for (std::size_t i = 0; i < fp.regs.size(); ++i) {
        if (isFatalTarget(static_cast<int>(i / perProc)))
            continue;
        if (fp.regs[i] != base.regs[i]) {
            oss << "register diverges: processor " << i / perProc
                << " r" << diffedRegs[i % perProc] << " = "
                << fp.regs[i] << " vs baseline " << base.regs[i];
            return oss.str();
        }
    }
    for (std::size_t i = 0; i < fp.mem.size(); ++i) {
        if (fatalOwnsAddr(sc.watchAddrs[i]))
            continue;
        if (fp.mem[i] != base.mem[i]) {
            oss << "memory diverges: word " << sc.watchAddrs[i]
                << " = " << fp.mem[i] << " vs baseline "
                << base.mem[i];
            return oss.str();
        }
    }
    return "";
}

} // namespace

std::uint64_t
Fingerprint::hash() const
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    mix(deadlocked ? 1 : 0);
    mix(timedOut ? 1 : 0);
    mix(safety.size());
    mix(syncEvents);
    for (auto e : episodes)
        mix(e);
    for (auto r : regs)
        mix(static_cast<std::uint64_t>(r));
    for (auto m : mem)
        mix(static_cast<std::uint64_t>(m));
    for (auto d : deadDeclared)
        mix(static_cast<std::uint64_t>(d));
    mix(membership.size());
    return h;
}

std::string
Fingerprint::summary() const
{
    std::ostringstream oss;
    oss << "syncs=" << syncEvents << " deadlock=" << (deadlocked ? 1 : 0)
        << " timeout=" << (timedOut ? 1 : 0)
        << " safety=" << (safety.empty() ? "OK" : "VIOLATED");
    if (!deadDeclared.empty()) {
        oss << " dead=";
        for (std::size_t i = 0; i < deadDeclared.size(); ++i)
            oss << (i ? "," : "") << deadDeclared[i];
    }
    if (!membership.empty())
        oss << " membership=VIOLATED";
    oss << " hash=" << std::hex << hash();
    return oss.str();
}

std::string
DiffReport::describe() const
{
    std::ostringstream oss;
    if (ok) {
        oss << "PASS (" << variantsRun << " executors agree)\n";
    } else {
        oss << "FAIL in executor '" << variant << "': " << failure
            << "\n";
    }
    oss << "baseline: " << baseline.summary() << "\n";
    return oss.str();
}

DiffReport
runDifferential(const Scenario &sc, const DiffOptions &opt)
{
    DiffReport rep;

    auto failed = [&rep](const std::string &variant,
                         const std::string &why) {
        rep.ok = false;
        rep.variant = variant;
        rep.failure = why;
        return rep;
    };

    if (sc.procs() == 0)
        return failed("setup", "scenario has no programs");
    if (sc.faults.hasFatal() && !sc.watchdog.enabled) {
        return failed("setup", "fault plan has fatal events but no "
                               "watchdog configured (the survivors "
                               "could never recover)");
    }
    const std::vector<int> fatal = sc.faults.fatalTargets();

    // Assemble both encodings up front. With an intern cache the
    // assembled pair — and its pre-decoded blocks — is shared
    // campaign-wide and only copied into the per-call vectors;
    // otherwise assemble locally as before.
    ProgramSet bits;
    ProgramSet markers;
    for (int p = 0; p < sc.procs(); ++p) {
        const auto &source = sc.sources[static_cast<std::size_t>(p)];
        isa::Program bitProg;
        isa::Program markerProg;
        if (opt.programCache) {
            auto interned = opt.programCache->intern(source);
            if (!interned->ok) {
                std::ostringstream oss;
                oss << "processor " << p << ": " << interned->error;
                return failed("assemble", oss.str());
            }
            if (interned->regionViolation) {
                std::ostringstream oss;
                oss << "processor " << p << ": "
                    << *interned->regionViolation;
                return failed("static-check", oss.str());
            }
            bitProg = interned->bits;
            markerProg = interned->markers;
            bits.decoded.push_back(interned->bitsDecoded);
            markers.decoded.push_back(interned->markersDecoded);
        } else {
            std::string err;
            if (!isa::Assembler::assemble(source, bitProg, err)) {
                std::ostringstream oss;
                oss << "processor " << p << ": " << err;
                return failed("assemble", oss.str());
            }
            if (auto violation = bitProg.checkRegionBranches()) {
                std::ostringstream oss;
                oss << "processor " << p << ": " << *violation;
                return failed("static-check", oss.str());
            }
            markerProg = bitProg.toMarkerEncoding();
        }
        if (sc.interruptPeriod > 0 &&
            (sc.isrEntry < 0 ||
             sc.isrEntry >=
                 static_cast<std::int64_t>(bitProg.size()))) {
            return failed("setup", "ISR entry index outside program");
        }
        markers.programs.push_back(std::move(markerProg));
        bits.programs.push_back(std::move(bitProg));
    }

    const bool baseMarkers = sc.encoding == Encoding::Markers;
    auto &basePrograms = baseMarkers ? markers : bits;
    auto &crossPrograms = baseMarkers ? bits : markers;

    Variant baseVariant;
    baseVariant.name =
        std::string("baseline/") + encodingName(sc.encoding) + "/depth1";
    baseVariant.markers = baseMarkers;
    rep.baseline = runVariant(sc, basePrograms, baseVariant, opt);
    rep.variantsRun = 1;
    auto oracles = [&](const Fingerprint &fp) {
        return sc.hasFaults() ? checkFaultOracles(sc, fatal, fp)
                              : checkOracles(sc, fp);
    };
    if (auto why = oracles(rep.baseline); !why.empty())
        return failed(baseVariant.name, why);

    std::vector<Variant> variants;
    if (opt.otherEncoding) {
        Variant v;
        v.name = std::string("encoding/") +
                 encodingName(baseMarkers ? Encoding::RegionBits
                                          : Encoding::Markers);
        v.markers = !baseMarkers;
        variants.push_back(v);
    }
    for (int depth : opt.pipelineDepths) {
        Variant v;
        v.name = "pipeline/depth" + std::to_string(depth);
        v.markers = baseMarkers;
        v.pipelineDepth = depth;
        variants.push_back(v);
    }
    if (opt.softwareStall) {
        Variant v;
        v.name = "stall/software(20,20)";
        v.markers = baseMarkers;
        v.stall = sim::StallModel::software(20, 20);
        variants.push_back(v);
    }
    if (opt.jitter) {
        Variant v;
        v.name = "jitter/mean1.5";
        v.markers = baseMarkers;
        v.jitterMean = 1.5;
        v.machineSeed = 99;
        variants.push_back(v);
    }
    if (opt.multiIssue) {
        Variant v;
        v.name = "vliw/width4";
        v.markers = baseMarkers;
        v.issueWidth = 4;
        variants.push_back(v);
    }
    if (opt.legacyLoop) {
        // Same machine as the baseline but on the per-cycle loop:
        // every fuzzed scenario continuously cross-checks the
        // event-driven fast-forward core against the legacy loop.
        Variant v;
        v.name = "core/legacy-loop";
        v.markers = baseMarkers;
        v.fastForward = false;
        variants.push_back(v);
    }
    if (opt.legacyDispatch && opt.predecode) {
        // Same machine as the baseline but decoding instruction by
        // instruction: every fuzzed scenario continuously cross-checks
        // the pre-decoded threaded-code backend (with its macro-step
        // windows) against the legacy interpreter. Skipped when the
        // whole matrix already runs without predecode — the variant
        // would duplicate the baseline.
        Variant v;
        v.name = "core/legacy-dispatch";
        v.markers = baseMarkers;
        v.predecode = false;
        variants.push_back(v);
    }
    if (opt.topologySweep) {
        // Hierarchical sync networks only move delivery cycles; the
        // result fields diffed below (episodes, registers, watched
        // memory) must be identical to the flat baseline.
        for (const char *spec : {"tree:4", "cluster:8"}) {
            barrier::Topology topo;
            const bool parsed = barrier::Topology::parse(spec, topo);
            FB_ASSERT(parsed, "bad built-in topology spec " << spec);
            if (topo == opt.topology)
                continue;  // would duplicate the baseline
            Variant v;
            v.name = std::string("topology/") + spec;
            v.markers = baseMarkers;
            v.topology = topo;
            variants.push_back(v);
        }
    }
    if (opt.shards >= 2) {
        // Sequential-vs-sharded: the baseline machine re-run across
        // opt.shards host threads under the skew window. Any
        // divergence from the baseline fingerprint is a determinism
        // bug in the sharded executor.
        Variant v;
        v.name = "core/sharded-" + std::to_string(opt.shards) + "/q" +
                 std::to_string(opt.shardQuantum);
        v.markers = baseMarkers;
        v.shardCount = opt.shards;
        v.shardQuantum = opt.shardQuantum;
        variants.push_back(v);
    }

    for (const auto &v : variants) {
        auto &programs = v.markers == baseMarkers ? basePrograms
                                                  : crossPrograms;
        Fingerprint fp = runVariant(sc, programs, v, opt);
        ++rep.variantsRun;
        if (auto why = oracles(fp); !why.empty())
            return failed(v.name, why);
        if (auto why = diffAgainstBaseline(sc, fatal, rep.baseline, fp);
            !why.empty())
            return failed(v.name, why);
    }

    if (opt.checkpointing) {
        // Checkpointed executor: the scenario once more through the
        // staged delta-chain capture/restore oracle. The oracle's own
        // reference run shares this matrix's baseline model, so any
        // failure here is a checkpointing defect, not a variant
        // divergence. The chain seed derives from the baseline
        // fingerprint: deterministic per scenario, different across
        // scenarios.
        auto rr = checkChainResumeEquivalence(
            sc, rep.baseline.hash(), true, 4, opt.maxCycles,
            opt.machinePool, opt.programCache);
        ++rep.variantsRun;
        if (!rr.ok)
            return failed("checkpoint/delta-chain", rr.failure);
    }

    if (opt.swBarrierReference) {
        int group_start = 0;
        for (std::size_t g = 0; g < sc.groupSizes.size(); ++g) {
            int size = sc.groupSizes[g];
            int start = group_start;
            group_start += size;
            if (size < 2)
                continue;  // a singleton group never blocks
            // If the fault plan kills a member of this group, run the
            // degraded-membership reference: the victim vanishes
            // mid-run and the surviving threads must detect it via
            // timeout and finish on a rebuilt barrier — mirroring the
            // watchdog + mask-shrink recovery checked above.
            int victim = -1;
            for (int p : fatal) {
                if (p >= start && p < start + size) {
                    victim = p - start;
                    break;
                }
            }
            for (auto kind : {sw::BarrierKind::Centralized,
                              sw::BarrierKind::Dissemination}) {
                std::string why =
                    victim < 0
                        ? runSwBarrierReference(kind, size, sc.episodes)
                        : runSwBarrierDegradedReference(
                              kind, size, sc.episodes, victim,
                              sc.episodes / 2);
                ++rep.variantsRun;
                if (!why.empty()) {
                    std::ostringstream oss;
                    oss << "swref/" << sw::barrierKindName(kind)
                        << "/group" << g
                        << (victim < 0 ? "" : "/degraded");
                    return failed(oss.str(), why);
                }
            }
        }
    }
    return rep;
}

std::string
runSwBarrierReference(sw::BarrierKind kind, int threads, int episodes)
{
    auto barrier = sw::makeBarrier(kind, threads);
    // arrivals[e] counts arrive() calls for episode e; when any
    // thread's wait() for episode e returns, all members must have
    // arrived — the same condition Machine::checkSafetyProperty()
    // verifies on the simulated network.
    std::vector<std::atomic<int>> arrivals(
        static_cast<std::size_t>(episodes));
    std::atomic<int> violations{0};
    std::atomic<int> completed{0};

    auto worker = [&](int tid) {
        for (int e = 0; e < episodes; ++e) {
            arrivals[static_cast<std::size_t>(e)].fetch_add(1);
            barrier->arrive(tid);
            barrier->wait(tid);
            if (arrivals[static_cast<std::size_t>(e)].load() < threads)
                violations.fetch_add(1);
        }
        completed.fetch_add(1);
    };
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t)
        pool.emplace_back(worker, t);
    for (auto &t : pool)
        t.join();

    std::ostringstream oss;
    if (completed.load() != threads) {
        oss << "reference barrier '" << barrier->name() << "': only "
            << completed.load() << "/" << threads
            << " threads completed " << episodes << " episodes";
        return oss.str();
    }
    if (violations.load() != 0) {
        oss << "reference barrier '" << barrier->name() << "': "
            << violations.load()
            << " wait() returns before all members arrived";
        return oss.str();
    }
    return "";
}

std::string
runSwBarrierDegradedReference(sw::BarrierKind kind, int threads,
                              int episodes, int victim, int kill_at)
{
    if (episodes <= 0)
        return "";
    if (victim < 0 || victim >= threads)
        return "degraded reference: victim outside thread range";
    if (kill_at < 0)
        kill_at = 0;
    if (kill_at >= episodes)
        return runSwBarrierReference(kind, threads, episodes);

    auto full = sw::makeBarrier(kind, threads);
    // The rebuilt barrier spans only the survivors; ranks are dense
    // (tid above the victim shift down by one), mirroring how the
    // hardware survivors shrink their masks around the dead bit.
    auto degraded = sw::makeBarrier(kind, threads - 1);

    std::vector<std::atomic<int>> arrivals(
        static_cast<std::size_t>(episodes));
    std::atomic<int> violations{0};
    std::atomic<int> timeouts{0};
    std::atomic<int> unexpectedCompletions{0};
    std::atomic<int> completed{0};

    auto survivorWorker = [&](int tid) {
        const int rank = tid < victim ? tid : tid - 1;
        for (int e = 0; e < episodes; ++e) {
            auto &arrived = arrivals[static_cast<std::size_t>(e)];
            arrived.fetch_add(1);
            if (e < kill_at) {
                full->arrive(tid);
                full->wait(tid);
                if (arrived.load() < threads)
                    violations.fetch_add(1);
                continue;
            }
            if (e == kill_at) {
                // First episode without the victim: the full barrier
                // can never complete, so the timed wait must fail
                // even after retries — that is the detection event.
                full->arrive(tid);
                auto r = sw::waitWithRetry(
                    *full, tid, std::chrono::microseconds(500), 3);
                if (r.completed)
                    unexpectedCompletions.fetch_add(1);
                else
                    timeouts.fetch_add(1);
            }
            degraded->arrive(rank);
            degraded->wait(rank);
            if (arrived.load() < threads - 1)
                violations.fetch_add(1);
        }
        completed.fetch_add(1);
    };
    auto victimWorker = [&] {
        for (int e = 0; e < kill_at; ++e) {
            arrivals[static_cast<std::size_t>(e)].fetch_add(1);
            full->arrive(victim);
            full->wait(victim);
        }
    };

    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        if (t == victim)
            pool.emplace_back(victimWorker);
        else
            pool.emplace_back(survivorWorker, t);
    }
    for (auto &t : pool)
        t.join();

    const int survivors = threads - 1;
    std::ostringstream oss;
    if (completed.load() != survivors) {
        oss << "degraded barrier '" << full->name() << "': only "
            << completed.load() << "/" << survivors
            << " survivors completed " << episodes << " episodes";
        return oss.str();
    }
    if (unexpectedCompletions.load() != 0) {
        oss << "degraded barrier '" << full->name() << "': "
            << unexpectedCompletions.load()
            << " waits completed without the dead member's arrival";
        return oss.str();
    }
    if (timeouts.load() != survivors) {
        oss << "degraded barrier '" << full->name() << "': "
            << timeouts.load() << "/" << survivors
            << " survivors observed the detection timeout";
        return oss.str();
    }
    if (violations.load() != 0) {
        oss << "degraded barrier '" << full->name() << "': "
            << violations.load()
            << " wait() returns before all live members arrived";
        return oss.str();
    }
    return "";
}

} // namespace fb::verify
