/**
 * @file
 * Resume-equivalence oracle: restore-at-cycle-K must be invisible.
 *
 * The checkpoint system's correctness condition is exactness: a run
 * that snapshots at cycle K, is discarded, and is resumed from the
 * snapshot on a fresh machine must produce a RunResult — every
 * counter, every verdict, every per-processor statistic — and final
 * architectural state bit-identical to the run that was never
 * interrupted. This oracle checks it three ways per scenario:
 *
 *   A  the uninterrupted reference run;
 *   B  the same run with checkpointing enabled at a randomized period
 *      K in [1, A.cycles] — proves that taking a snapshot (and the
 *      fast-forward clamp to checkpoint boundaries) perturbs nothing;
 *   C  a fresh machine restored from B's first snapshot and run to
 *      completion — proves the snapshot captured the whole state.
 *
 * B and C are each compared field-by-field against A, including the
 * full register files, the safety-oracle verdict, and the scenario's
 * watched memory words.
 */

#ifndef FB_VERIFY_RESUME_HH
#define FB_VERIFY_RESUME_HH

#include <cstdint>
#include <string>

#include "verify/scenario.hh"

namespace fb::exec
{
class MachinePool;
class ProgramCache;
} // namespace fb::exec

namespace fb::verify
{

/** Outcome of one resume-equivalence check. */
struct ResumeReport
{
    bool ok = true;
    /** Description of the first divergence (empty when ok). */
    std::string failure;
    /** The randomized checkpoint period/cycle K that was exercised. */
    std::uint64_t checkpointCycle = 0;
    /** Cycle count of the uninterrupted reference run. */
    std::uint64_t referenceCycles = 0;
    /** False when the run ended before any snapshot was taken (the
     * check then degenerates to A-vs-B equivalence). */
    bool snapshotTaken = false;

    // Delta-chain sweep only (checkChainResumeEquivalence).
    std::uint64_t checkpointsTaken = 0; ///< captures B produced
    std::uint64_t chainLength = 0;      ///< links C restored through
};

/**
 * Run the A/B/C check described above for @p sc under the baseline
 * machine model (depth 1, width 1, no jitter, hardware stall, seed 1
 * — the differ's reference variant), with @p sc's fault plan and
 * watchdog active if present. @p k_seed randomizes K; @p fast_forward
 * selects the event-driven or the legacy per-cycle loop for all three
 * runs.
 *
 * When @p pool is non-null the A/B/C machines are leased from it
 * (three concurrent leases of the same structural shape) instead of
 * constructed fresh, and @p programs, when also non-null, interns the
 * scenario's assembly. Both hooks must outlive the call; the pool
 * must belong to the calling worker.
 */
ResumeReport checkResumeEquivalence(const Scenario &sc,
                                    std::uint64_t k_seed,
                                    bool fast_forward,
                                    std::uint64_t max_cycles = 5'000'000,
                                    exec::MachinePool *pool = nullptr,
                                    exec::ProgramCache *programs = nullptr);

/**
 * Delta-chain variant of the A/B/C check: B runs with a *staged*
 * checkpoint sink at a randomized cadence chosen so several captures
 * fire (full snapshots re-basing every @p rebase_every captures,
 * dirty-page deltas in between), all captures are retained in memory,
 * and C restores a seeded head capture through its entire delta chain
 * (Machine::restoreChainState) before running to completion. Both B
 * and C must match A bit-for-bit, proving that delta capture, the
 * epoch bookkeeping, and chain re-application perturb nothing and
 * lose nothing. The report's chainLength says how many links C
 * actually replayed (1 = the head was a full snapshot).
 */
ResumeReport checkChainResumeEquivalence(
    const Scenario &sc, std::uint64_t k_seed, bool fast_forward,
    std::uint32_t rebase_every = 4,
    std::uint64_t max_cycles = 5'000'000,
    exec::MachinePool *pool = nullptr,
    exec::ProgramCache *programs = nullptr);

} // namespace fb::verify

#endif // FB_VERIFY_RESUME_HH
