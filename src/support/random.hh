/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (cache-miss injection,
 * branch outcomes, workload jitter) draws from a seeded RandomSource so
 * that every experiment is bit-reproducible. The generator is
 * xoshiro256** seeded through SplitMix64, which is both fast and well
 * distributed; std::mt19937_64 is deliberately avoided because its
 * state size makes per-processor generators expensive.
 */

#ifndef FB_SUPPORT_RANDOM_HH
#define FB_SUPPORT_RANDOM_HH

#include <array>
#include <cstdint>

namespace fb
{

/** SplitMix64 step, used for seeding. */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * xoshiro256** generator with convenience distributions.
 */
class RandomSource
{
  public:
    /** Construct with a seed; identical seeds yield identical streams. */
    explicit RandomSource(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p of returning true. */
    bool nextBool(double p = 0.5);

    /**
     * Geometric-ish jitter: returns a non-negative integer with mean
     * approximately @p mean (0 yields always 0). Used to model
     * execution drift.
     */
    std::uint64_t nextJitter(double mean);

    /** Create an independent child stream (for per-processor use). */
    RandomSource split();

    /** Raw generator state, for checkpointing. */
    std::array<std::uint64_t, 4> state() const
    {
        return {_s[0], _s[1], _s[2], _s[3]};
    }

    /** Restore raw generator state captured with state(). */
    void setState(const std::array<std::uint64_t, 4> &s)
    {
        _s[0] = s[0];
        _s[1] = s[1];
        _s[2] = s[2];
        _s[3] = s[3];
    }

  private:
    std::uint64_t _s[4];
};

} // namespace fb

#endif // FB_SUPPORT_RANDOM_HH
