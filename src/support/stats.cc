#include "support/stats.hh"

#include <cmath>
#include <iomanip>

namespace fb
{

void
Distribution::sample(double v)
{
    ++_count;
    _sum += v;
    _sumSq += v * v;
    if (v < _min)
        _min = v;
    if (v > _max)
        _max = v;
}

double
Distribution::mean() const
{
    return _count ? _sum / static_cast<double>(_count) : 0.0;
}

double
Distribution::stddev() const
{
    if (_count < 2)
        return 0.0;
    const double n = static_cast<double>(_count);
    const double var = (_sumSq - _sum * _sum / n) / n;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Distribution::reset()
{
    _count = 0;
    _sum = 0.0;
    _sumSq = 0.0;
    _min = std::numeric_limits<double>::infinity();
    _max = -std::numeric_limits<double>::infinity();
}

void
StatGroup::reset()
{
    for (auto &[name, c] : _counters)
        c.reset();
    for (auto &[name, d] : _dists)
        d.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, c] : _counters)
        os << _name << "." << name << " = " << c.value() << "\n";
    for (const auto &[name, d] : _dists) {
        os << _name << "." << name << " : count=" << d.count()
           << " mean=" << std::fixed << std::setprecision(2) << d.mean()
           << " min=" << d.min() << " max=" << d.max()
           << " stddev=" << d.stddev() << "\n";
        os.unsetf(std::ios::fixed);
    }
}

} // namespace fb
