/**
 * @file
 * Logging, assertion, and error-termination facilities.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for user error
 * (bad configuration or arguments).  Both terminate; panic aborts
 * (core dump friendly), fatal exits with status 1.
 */

#ifndef FB_SUPPORT_LOGGING_HH
#define FB_SUPPORT_LOGGING_HH

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace fb
{

/** Verbosity levels for the global logger. */
enum class LogLevel
{
    Quiet = 0,  ///< nothing but errors
    Warn = 1,   ///< warnings
    Info = 2,   ///< informational progress messages
    Debug = 3,  ///< detailed tracing
};

/**
 * Process-wide logger. All output goes to stderr so bench tables on
 * stdout stay machine-parseable.
 */
class Logger
{
  public:
    /** Access the singleton logger. */
    static Logger &get();

    /** Set the verbosity threshold. */
    void setLevel(LogLevel level) { _level = level; }

    /** Current verbosity threshold. */
    LogLevel level() const { return _level; }

    /** Emit a message if @p level is within the current threshold. */
    void
    log(LogLevel level, const std::string &msg)
    {
        if (static_cast<int>(level) <= static_cast<int>(_level))
            std::cerr << prefix(level) << msg << "\n";
    }

  private:
    Logger() = default;

    static const char *prefix(LogLevel level);

    LogLevel _level = LogLevel::Warn;
};

/** Log at Info level. */
void inform(const std::string &msg);
/** Log at Warn level. */
void warn(const std::string &msg);
/** Log at Debug level. */
void debugLog(const std::string &msg);

/**
 * Warn, but only the first time @p key is seen. Repeatable conditions
 * (a fault firing every cycle, a tool falling back) report once
 * instead of flooding stderr. Thread-safe.
 */
void warnOnce(const std::string &key, const std::string &msg);

/**
 * Warn on the 1st, (N+1)th, (2N+1)th... occurrence of @p key; later
 * repeats carry a suppressed-count suffix so no information is lost,
 * just volume. Thread-safe.
 *
 * @param every_n report one message per this many occurrences (>= 1)
 */
void warnRatelimited(const std::string &key, const std::string &msg,
                     std::uint64_t every_n = 100);

/**
 * Terminate because of an internal invariant violation (library bug).
 * Never returns.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Terminate because of a user error (bad configuration, invalid
 * arguments). Never returns.
 */
[[noreturn]] void fatal(const std::string &msg);

} // namespace fb

/**
 * Always-on assertion used to guard library invariants. Unlike
 * assert(3) this is active in release builds; simulator correctness
 * depends on these checks.
 */
#define FB_ASSERT(cond, msg)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            std::ostringstream fb_assert_oss_;                            \
            fb_assert_oss_ << "assertion failed: " #cond " at "           \
                           << __FILE__ << ":" << __LINE__ << ": " << msg; \
            ::fb::panic(fb_assert_oss_.str());                            \
        }                                                                 \
    } while (0)

#endif // FB_SUPPORT_LOGGING_HH
