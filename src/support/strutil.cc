#include "support/strutil.hh"

#include <cctype>
#include <cstdint>
#include <cstdlib>

namespace fb
{

std::string
trim(const std::string &s)
{
    std::size_t begin = 0;
    while (begin < s.size() &&
           std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    std::size_t end = s.size();
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return s.substr(begin, end - begin);
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t pos = s.find(delim, start);
        if (pos == std::string::npos)
            pos = s.size();
        std::string field = s.substr(start, pos - start);
        if (!field.empty())
            out.push_back(field);
        start = pos + 1;
    }
    return out;
}

std::vector<std::string>
splitWhitespace(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
toLower(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
parseInt(const std::string &s, std::int64_t &out)
{
    if (s.empty())
        return false;
    const char *begin = s.c_str();
    char *end = nullptr;
    long long v = std::strtoll(begin, &end, 0);
    if (end != begin + s.size())
        return false;
    out = v;
    return true;
}

} // namespace fb
