#include "support/random.hh"

#include <cmath>

#include "support/logging.hh"

namespace fb
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

RandomSource::RandomSource(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : _s)
        s = splitMix64(sm);
}

std::uint64_t
RandomSource::next()
{
    const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
    const std::uint64_t t = _s[1] << 17;

    _s[2] ^= _s[0];
    _s[3] ^= _s[1];
    _s[1] ^= _s[2];
    _s[0] ^= _s[3];
    _s[2] ^= t;
    _s[3] = rotl(_s[3], 45);

    return result;
}

std::uint64_t
RandomSource::nextBounded(std::uint64_t bound)
{
    FB_ASSERT(bound > 0, "nextBounded requires positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
RandomSource::nextRange(std::int64_t lo, std::int64_t hi)
{
    FB_ASSERT(lo <= hi, "nextRange requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
RandomSource::nextDouble()
{
    // 53 high bits give a uniform double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

bool
RandomSource::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
RandomSource::nextJitter(double mean)
{
    if (mean <= 0.0)
        return 0;
    // Sample an exponential with the given mean and round down; this
    // gives integer-valued drift with a long tail like real cache-miss
    // streaks.
    double u = nextDouble();
    if (u >= 1.0)
        u = 0.9999999999;
    return static_cast<std::uint64_t>(-mean * std::log(1.0 - u));
}

RandomSource
RandomSource::split()
{
    return RandomSource(next() ^ 0xa5a5a5a55a5a5a5aULL);
}

} // namespace fb
