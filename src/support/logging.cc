#include "support/logging.hh"

#include <cstdlib>

namespace fb
{

Logger &
Logger::get()
{
    static Logger instance;
    return instance;
}

const char *
Logger::prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Quiet:
        return "error: ";
      case LogLevel::Warn:
        return "warn: ";
      case LogLevel::Info:
        return "info: ";
      case LogLevel::Debug:
        return "debug: ";
    }
    return "";
}

void
inform(const std::string &msg)
{
    Logger::get().log(LogLevel::Info, msg);
}

void
warn(const std::string &msg)
{
    Logger::get().log(LogLevel::Warn, msg);
}

void
debugLog(const std::string &msg)
{
    Logger::get().log(LogLevel::Debug, msg);
}

void
panic(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

} // namespace fb
