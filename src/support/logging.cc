#include "support/logging.hh"

#include <cstdlib>
#include <map>
#include <mutex>

namespace fb
{

namespace
{

// Shared state for the warn-once / rate-limited helpers. A plain
// mutex-guarded map: the helpers sit on warning paths, never on the
// simulator hot path, so contention is irrelevant.
std::mutex warn_mutex;
std::map<std::string, std::uint64_t> warn_counts;

} // namespace

Logger &
Logger::get()
{
    static Logger instance;
    return instance;
}

const char *
Logger::prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Quiet:
        return "error: ";
      case LogLevel::Warn:
        return "warn: ";
      case LogLevel::Info:
        return "info: ";
      case LogLevel::Debug:
        return "debug: ";
    }
    return "";
}

void
inform(const std::string &msg)
{
    Logger::get().log(LogLevel::Info, msg);
}

void
warn(const std::string &msg)
{
    Logger::get().log(LogLevel::Warn, msg);
}

void
debugLog(const std::string &msg)
{
    Logger::get().log(LogLevel::Debug, msg);
}

void
warnOnce(const std::string &key, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(warn_mutex);
        if (++warn_counts[key] != 1)
            return;
    }
    Logger::get().log(LogLevel::Warn, msg);
}

void
warnRatelimited(const std::string &key, const std::string &msg,
                std::uint64_t every_n)
{
    if (every_n == 0)
        every_n = 1;
    std::uint64_t count;
    {
        std::lock_guard<std::mutex> lock(warn_mutex);
        count = ++warn_counts[key];
    }
    if (count % every_n != 1 && every_n != 1)
        return;
    if (count == 1) {
        Logger::get().log(LogLevel::Warn, msg);
        return;
    }
    std::ostringstream oss;
    oss << msg << " (" << (every_n - 1)
        << " similar warnings suppressed)";
    Logger::get().log(LogLevel::Warn, oss.str());
}

void
panic(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

} // namespace fb
