#include "support/bitvector.hh"

#include <bit>

#include "support/logging.hh"

namespace fb
{

BitVector::BitVector(std::size_t size)
    : _size(size), _words((size + bitsPerWord - 1) / bitsPerWord, 0)
{
}

void
BitVector::set(std::size_t idx, bool value)
{
    FB_ASSERT(idx < _size, "BitVector index " << idx << " out of range "
                                              << _size);
    if (value)
        _words[wordOf(idx)] |= maskOf(idx);
    else
        _words[wordOf(idx)] &= ~maskOf(idx);
}

void
BitVector::setAll()
{
    for (std::size_t i = 0; i < _size; ++i)
        set(i);
}

void
BitVector::clearAll()
{
    for (auto &w : _words)
        w = 0;
}

std::size_t
BitVector::count() const
{
    std::size_t total = 0;
    for (auto w : _words)
        total += static_cast<std::size_t>(std::popcount(w));
    return total;
}

std::size_t
BitVector::firstSet() const
{
    for (std::size_t i = 0; i < _words.size(); ++i) {
        if (_words[i] != 0)
            return i * bitsPerWord + static_cast<std::size_t>(
                                         std::countr_zero(_words[i]));
    }
    return _size;
}

std::size_t
BitVector::lastSet() const
{
    for (std::size_t i = _words.size(); i-- > 0;) {
        if (_words[i] != 0)
            return i * bitsPerWord + 63 -
                   static_cast<std::size_t>(std::countl_zero(_words[i]));
    }
    return _size;
}

bool
BitVector::covers(const BitVector &other) const
{
    FB_ASSERT(_size == other._size, "BitVector size mismatch");
    for (std::size_t i = 0; i < _words.size(); ++i) {
        if ((_words[i] & other._words[i]) != other._words[i])
            return false;
    }
    return true;
}

bool
BitVector::intersects(const BitVector &other) const
{
    FB_ASSERT(_size == other._size, "BitVector size mismatch");
    for (std::size_t i = 0; i < _words.size(); ++i) {
        if ((_words[i] & other._words[i]) != 0)
            return true;
    }
    return false;
}

BitVector
BitVector::operator&(const BitVector &other) const
{
    FB_ASSERT(_size == other._size, "BitVector size mismatch");
    BitVector out(_size);
    for (std::size_t i = 0; i < _words.size(); ++i)
        out._words[i] = _words[i] & other._words[i];
    return out;
}

BitVector
BitVector::operator|(const BitVector &other) const
{
    FB_ASSERT(_size == other._size, "BitVector size mismatch");
    BitVector out(_size);
    for (std::size_t i = 0; i < _words.size(); ++i)
        out._words[i] = _words[i] | other._words[i];
    return out;
}

bool
BitVector::operator==(const BitVector &other) const
{
    return _size == other._size && _words == other._words;
}

std::string
BitVector::toString() const
{
    std::string out;
    out.reserve(_size);
    for (std::size_t i = 0; i < _size; ++i)
        out.push_back(test(i) ? '1' : '0');
    return out;
}

} // namespace fb
