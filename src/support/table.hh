/**
 * @file
 * ASCII table formatter used by the benchmark harnesses to print
 * paper-style result rows.
 */

#ifndef FB_SUPPORT_TABLE_HH
#define FB_SUPPORT_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace fb
{

/**
 * Collects rows of string cells and prints them with aligned columns.
 *
 * Numeric convenience overloads format with a fixed number of decimal
 * places. Columns are right aligned except the first, which is left
 * aligned (the row label).
 */
class Table
{
  public:
    /** Construct with a title printed above the table. */
    explicit Table(std::string title) : _title(std::move(title)) {}

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Begin a new row. Returns *this for chaining. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &value);

    /** Append an integer cell. */
    Table &cell(std::int64_t value);

    /** Append an unsigned integer cell. */
    Table &cell(std::uint64_t value);

    /** Append a floating point cell with @p precision decimals. */
    Table &cell(double value, int precision = 2);

    /** Number of data rows so far. */
    std::size_t numRows() const { return _rows.size(); }

    /** Print title, header, and all rows to @p os. */
    void print(std::ostream &os) const;

    /**
     * Print as CSV (header + rows, no title) for machine-readable
     * bench output. Cells containing commas or quotes are quoted.
     */
    void printCsv(std::ostream &os) const;

  private:
    std::string _title;
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace fb

#endif // FB_SUPPORT_TABLE_HH
