/**
 * @file
 * Small string helpers shared by the assembler and pretty printers.
 */

#ifndef FB_SUPPORT_STRUTIL_HH
#define FB_SUPPORT_STRUTIL_HH

#include <string>
#include <vector>

namespace fb
{

/** Strip leading/trailing whitespace. */
std::string trim(const std::string &s);

/** Split @p s on @p delim, dropping empty fields. */
std::vector<std::string> split(const std::string &s, char delim);

/** Split on any whitespace run, dropping empty fields. */
std::vector<std::string> splitWhitespace(const std::string &s);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Lower-case an ASCII string. */
std::string toLower(const std::string &s);

/**
 * Parse a signed integer; returns false on malformed input instead of
 * throwing so the assembler can produce positioned diagnostics.
 */
bool parseInt(const std::string &s, std::int64_t &out);

} // namespace fb

#endif // FB_SUPPORT_STRUTIL_HH
