/**
 * @file
 * Fixed-capacity dynamic bit vector.
 *
 * Used for the per-processor participation masks of the fuzzy barrier
 * hardware (paper section 6: "the mask for each processor consists of
 * n-1 bits"). Kept deliberately simple: the simulator never needs more
 * than a few hundred bits.
 */

#ifndef FB_SUPPORT_BITVECTOR_HH
#define FB_SUPPORT_BITVECTOR_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/logging.hh"

namespace fb
{

/**
 * A growable vector of bits with set-algebra helpers.
 */
class BitVector
{
  public:
    /** Construct with @p size bits, all clear. */
    explicit BitVector(std::size_t size = 0);

    /** Number of bits. */
    std::size_t size() const { return _size; }

    /** Set bit @p idx to @p value. */
    void set(std::size_t idx, bool value = true);

    /** Clear bit @p idx. */
    void clear(std::size_t idx) { set(idx, false); }

    /** Read bit @p idx. Inline: this is the innermost operation of
     * the barrier network's per-cycle AND evaluation. */
    bool test(std::size_t idx) const
    {
        FB_ASSERT(idx < _size, "BitVector index "
                                   << idx << " out of range " << _size);
        return (_words[wordOf(idx)] & maskOf(idx)) != 0;
    }

    /** Set every bit. */
    void setAll();

    /** Clear every bit. */
    void clearAll();

    /** Number of set bits. */
    std::size_t count() const;

    /** True if no bit is set. */
    bool none() const { return count() == 0; }

    /** True if every bit is set. */
    bool all() const { return count() == _size; }

    /** True if (this & other) == other, i.e. other is a subset. */
    bool covers(const BitVector &other) const;

    /** True if this and other share at least one set bit. */
    bool intersects(const BitVector &other) const;

    /** Number of 64-bit words backing the vector. */
    std::size_t wordCount() const { return _words.size(); }

    /** Raw 64-bit word @p i (bit k of the word is bit i*64+k). Used
     * by the barrier network's word-at-a-time AND evaluation. */
    std::uint64_t word(std::size_t i) const
    {
        FB_ASSERT(i < _words.size(), "BitVector word index " << i
                                                             << " bad");
        return _words[i];
    }

    /** Index of the lowest set bit, or size() when none is set. */
    std::size_t firstSet() const;

    /** Index of the highest set bit, or size() when none is set. */
    std::size_t lastSet() const;

    /**
     * Invoke @p fn(index) for every set bit in ascending order. Cost
     * is O(words + set bits), not O(size): the innermost loop of the
     * O(active) barrier evaluation.
     */
    template <typename Fn>
    void forEachSet(Fn &&fn) const
    {
        for (std::size_t i = 0; i < _words.size(); ++i) {
            std::uint64_t w = _words[i];
            while (w != 0) {
                const int bit = std::countr_zero(w);
                w &= w - 1;
                fn(i * bitsPerWord + static_cast<std::size_t>(bit));
            }
        }
    }

    /** Bitwise AND (sizes must match). */
    BitVector operator&(const BitVector &other) const;

    /** Bitwise OR (sizes must match). */
    BitVector operator|(const BitVector &other) const;

    /** Equality (sizes and bits). */
    bool operator==(const BitVector &other) const;

    /** Render as a 0/1 string, bit 0 first. */
    std::string toString() const;

  private:
    static constexpr std::size_t bitsPerWord = 64;

    std::size_t wordOf(std::size_t idx) const { return idx / bitsPerWord; }
    std::uint64_t maskOf(std::size_t idx) const
    {
        return std::uint64_t{1} << (idx % bitsPerWord);
    }

    std::size_t _size;
    std::vector<std::uint64_t> _words;
};

} // namespace fb

#endif // FB_SUPPORT_BITVECTOR_HH
