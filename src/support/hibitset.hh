/**
 * @file
 * Two-level hierarchical bitset for O(active) sparse scans.
 *
 * One summary word tracks which of up to 64 payload words are
 * nonzero, so iterating, clearing and min/max queries cost O(set
 * bits), never O(capacity). This is the data structure behind the
 * barrier network's ready/pending/scrub sets and the machine's sparse
 * per-cycle bookkeeping: with 1024 processors of which a handful are
 * active, every per-cycle walk touches only the words that actually
 * hold members. Capacity is therefore 64 * 64 = 4096 bits, which caps
 * the simulated processor count.
 */

#ifndef FB_SUPPORT_HIBITSET_HH
#define FB_SUPPORT_HIBITSET_HH

#include <bit>
#include <cstddef>
#include <cstdint>

#include "support/logging.hh"

namespace fb
{

/**
 * Fixed-capacity set of small integers with a one-word summary level.
 */
class HiBitset
{
  public:
    static constexpr std::size_t bitsPerWord = 64;
    static constexpr std::size_t maxCapacity = bitsPerWord * bitsPerWord;

    explicit HiBitset(std::size_t size = 0) { resize(size); }

    /** Reset to @p size bits, all clear. */
    void resize(std::size_t size)
    {
        FB_ASSERT(size <= maxCapacity,
                  "HiBitset capacity is " << maxCapacity << " bits, "
                                          << size << " requested");
        _size = size;
        _summary = 0;
        for (auto &w : _words)
            w = 0;
    }

    std::size_t size() const { return _size; }

    bool test(std::size_t idx) const
    {
        FB_ASSERT(idx < _size, "HiBitset index " << idx
                                                 << " out of range "
                                                 << _size);
        return (_words[idx / bitsPerWord] &
                (std::uint64_t{1} << (idx % bitsPerWord))) != 0;
    }

    void set(std::size_t idx)
    {
        FB_ASSERT(idx < _size, "HiBitset index " << idx
                                                 << " out of range "
                                                 << _size);
        const std::size_t w = idx / bitsPerWord;
        _words[w] |= std::uint64_t{1} << (idx % bitsPerWord);
        _summary |= std::uint64_t{1} << w;
    }

    void clear(std::size_t idx)
    {
        FB_ASSERT(idx < _size, "HiBitset index " << idx
                                                 << " out of range "
                                                 << _size);
        const std::size_t w = idx / bitsPerWord;
        _words[w] &= ~(std::uint64_t{1} << (idx % bitsPerWord));
        if (_words[w] == 0)
            _summary &= ~(std::uint64_t{1} << w);
    }

    bool empty() const { return _summary == 0; }

    /** Clear every set bit; O(nonzero words), not O(capacity). */
    void clearAll()
    {
        std::uint64_t s = _summary;
        while (s != 0) {
            const int w = std::countr_zero(s);
            s &= s - 1;
            _words[w] = 0;
        }
        _summary = 0;
    }

    /** Copy from @p other (sizes must match); O(other's words). */
    void assignFrom(const HiBitset &other)
    {
        FB_ASSERT(_size == other._size, "HiBitset size mismatch");
        clearAll();
        std::uint64_t s = other._summary;
        while (s != 0) {
            const int w = std::countr_zero(s);
            s &= s - 1;
            _words[w] = other._words[w];
        }
        _summary = other._summary;
    }

    /** Make this the union of @p a and @p b (sizes must match). */
    void assignUnion(const HiBitset &a, const HiBitset &b)
    {
        FB_ASSERT(_size == a._size && _size == b._size,
                  "HiBitset size mismatch");
        clearAll();
        std::uint64_t s = a._summary | b._summary;
        _summary = s;
        while (s != 0) {
            const int w = std::countr_zero(s);
            s &= s - 1;
            _words[w] = a._words[w] | b._words[w];
        }
    }

    /** Payload word @p i (zero when outside the summary). */
    std::uint64_t word(std::size_t i) const
    {
        return i < bitsPerWord ? _words[i] : 0;
    }

    std::size_t count() const
    {
        std::size_t total = 0;
        std::uint64_t s = _summary;
        while (s != 0) {
            const int w = std::countr_zero(s);
            s &= s - 1;
            total += static_cast<std::size_t>(std::popcount(_words[w]));
        }
        return total;
    }

    /** Lowest member, or size() when empty. */
    std::size_t first() const
    {
        if (_summary == 0)
            return _size;
        const int w = std::countr_zero(_summary);
        return static_cast<std::size_t>(w) * bitsPerWord +
               static_cast<std::size_t>(std::countr_zero(_words[w]));
    }

    /** Invoke @p fn(index) for every member in ascending order. */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        std::uint64_t s = _summary;
        while (s != 0) {
            const int wi = std::countr_zero(s);
            s &= s - 1;
            std::uint64_t w = _words[wi];
            while (w != 0) {
                const int bit = std::countr_zero(w);
                w &= w - 1;
                fn(static_cast<std::size_t>(wi) * bitsPerWord +
                   static_cast<std::size_t>(bit));
            }
        }
    }

  private:
    std::size_t _size = 0;
    std::uint64_t _summary = 0;
    std::uint64_t _words[bitsPerWord] = {};
};

} // namespace fb

#endif // FB_SUPPORT_HIBITSET_HH
