#include "support/table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "support/logging.hh"

namespace fb
{

void
Table::setHeader(std::vector<std::string> header)
{
    _header = std::move(header);
}

Table &
Table::row()
{
    _rows.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    FB_ASSERT(!_rows.empty(), "cell() before row()");
    _rows.back().push_back(value);
    return *this;
}

Table &
Table::cell(std::int64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return cell(oss.str());
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto widen = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(_header);
    for (const auto &r : _rows)
        widen(r);

    os << "\n== " << _title << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i > 0)
                os << "  ";
            if (i == 0)
                os << std::left << std::setw(static_cast<int>(widths[i]))
                   << cells[i];
            else
                os << std::right << std::setw(static_cast<int>(widths[i]))
                   << cells[i];
        }
        os << "\n";
    };
    if (!_header.empty()) {
        emit(_header);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i > 0 ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : _rows)
        emit(r);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i > 0)
                os << ",";
            const std::string &c = cells[i];
            if (c.find_first_of(",\"\n") != std::string::npos) {
                os << '"';
                for (char ch : c) {
                    if (ch == '"')
                        os << '"';
                    os << ch;
                }
                os << '"';
            } else {
                os << c;
            }
        }
        os << "\n";
    };
    if (!_header.empty())
        emit(_header);
    for (const auto &r : _rows)
        emit(r);
}

} // namespace fb
