/**
 * @file
 * Lightweight statistics package in the spirit of gem5's stats.
 *
 * Simulator components register named Counter / Distribution objects in
 * a StatGroup; experiment drivers dump the group for reporting. All
 * stats are plain integers/doubles — the simulator is single threaded.
 */

#ifndef FB_SUPPORT_STATS_HH
#define FB_SUPPORT_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace fb
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    /** Add @p n to the counter. */
    void inc(std::uint64_t n = 1) { _value += n; }

    /** Current value. */
    std::uint64_t value() const { return _value; }

    /** Reset to zero. */
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/**
 * Accumulates samples and reports count/min/max/mean/stddev.
 */
class Distribution
{
  public:
    Distribution() = default;

    /** Record one sample. */
    void sample(double v);

    /** Number of samples. */
    std::uint64_t count() const { return _count; }

    /** Smallest sample (0 when empty). */
    double min() const { return _count ? _min : 0.0; }

    /** Largest sample (0 when empty). */
    double max() const { return _count ? _max : 0.0; }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Sum of all samples. */
    double sum() const { return _sum; }

    /** Population standard deviation (0 when < 2 samples). */
    double stddev() const;

    /** Forget all samples. */
    void reset();

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _sumSq = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/**
 * A named collection of counters and distributions.
 *
 * Components ask the group for stats by name; asking twice for the
 * same name returns the same object, so independent components can
 * contribute to a shared stat.
 */
class StatGroup
{
  public:
    /** Construct with a group name used as a dump prefix. */
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    /** Get or create the counter called @p name. */
    Counter &counter(const std::string &name) { return _counters[name]; }

    /** Get or create the distribution called @p name. */
    Distribution &distribution(const std::string &name)
    {
        return _dists[name];
    }

    /** True if a counter with this name exists already. */
    bool hasCounter(const std::string &name) const
    {
        return _counters.count(name) != 0;
    }

    /** Group name. */
    const std::string &name() const { return _name; }

    /** Reset every stat in the group. */
    void reset();

    /** Write a human-readable dump of all stats to @p os. */
    void dump(std::ostream &os) const;

  private:
    std::string _name;
    std::map<std::string, Counter> _counters;
    std::map<std::string, Distribution> _dists;
};

} // namespace fb

#endif // FB_SUPPORT_STATS_HH
