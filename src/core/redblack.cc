#include "core/redblack.hh"

#include <sstream>

#include "isa/assembler.hh"
#include "support/logging.hh"

namespace fb::core
{

namespace
{

/**
 * Emit one phase of one row: update cells (row, j) for j of the given
 * parity. r10 holds the address of (row, 0); the column cursor lives
 * in r2. Register budget: r20..r26 scratch.
 */
void
emitPhase(std::ostringstream &oss, int row, int parity,
          std::int64_t stride, int m, const char *label)
{
    int j0 = (row % 2 == parity % 2) ? 2 : 1;
    // The phase may own zero cells of this parity if j0 > m.
    if (j0 > m)
        return;
    oss << "li r2, " << j0 << "\n";
    oss << label << ":\n";
    oss << "add r20, r10, r2\n";               // &grid[row][j]
    oss << "addi r21, r20, " << -stride << "\n";
    oss << "ld r22, 0(r21)\n";                 // up
    oss << "addi r21, r20, " << stride << "\n";
    oss << "ld r23, 0(r21)\n";                 // down
    oss << "ld r24, -1(r20)\n";                // left
    oss << "ld r25, 1(r20)\n";                 // right
    oss << "add r22, r22, r23\n";
    oss << "add r22, r22, r24\n";
    oss << "add r22, r22, r25\n";
    oss << "li r26, 4\n";
    oss << "div r22, r22, r26\n";
    oss << "st r22, 0(r20)\n";
    oss << "addi r2, r2, 2\n";
    oss << "li r26, " << m << "\n";
    oss << "bge r26, r2, " << label << "\n";   // while j <= m
}

} // namespace

isa::Program
RedBlackWorkload::buildProgram(int self, bool fuzzy) const
{
    FB_ASSERT(self >= 0 && self < m, "row index out of range");
    const int row = self + 1;
    const std::int64_t stride = rowStride();

    std::ostringstream oss;
    oss << "settag 1\n";
    oss << "setmask " << ((1ll << m) - 1) << "\n";
    oss << "li r10, " << (baseAddr + row * stride) << "\n";
    oss << "li r1, 0\n";
    oss << "li r3, " << sweeps << "\n";
    oss << "sweep:\n";

    emitPhase(oss, row, 0, stride, m, "red");
    oss << ".region 1\n";
    if (fuzzy) {
        // Slack the compiler would fill with the black phase's setup.
        for (int k = 0; k < 10; ++k)
            oss << "addi r4, r4, 1\n";
    } else {
        oss << "nop\n";
    }
    oss << ".endregion\n";

    emitPhase(oss, row, 1, stride, m, "black");
    oss << ".region 1\n";
    if (fuzzy) {
        for (int k = 0; k < 10; ++k)
            oss << "addi r4, r4, 1\n";
    }
    oss << "addi r1, r1, 1\n";
    oss << "blt r1, r3, sweepback\n";
    oss << ".endregion\n";
    oss << "halt\n";
    // The backedge must land on non-region code (the red phase) via a
    // plain trampoline so the two barriers stay distinct episodes.
    oss << "sweepback:\n";
    oss << "jmp sweep\n";

    isa::Program prog;
    std::string err;
    if (!isa::Assembler::assemble(oss.str(), prog, err))
        panic("red-black program failed to assemble: " + err);
    return prog;
}

void
RedBlackWorkload::initGrid(sim::SharedMemory &mem, std::int64_t boundary,
                           std::int64_t interior) const
{
    for (int r = 0; r <= m + 1; ++r) {
        for (int c = 0; c <= m + 1; ++c) {
            bool edge = r == 0 || c == 0 || r == m + 1 || c == m + 1;
            mem.poke(addrOf(r, c), edge ? boundary : interior);
        }
    }
}

std::vector<std::int64_t>
RedBlackWorkload::reference(std::int64_t boundary,
                            std::int64_t interior) const
{
    std::vector<std::int64_t> g(gridWords());
    auto at = [&](int r, int c) -> std::int64_t & {
        return g[static_cast<std::size_t>(r * rowStride() + c)];
    };
    for (int r = 0; r <= m + 1; ++r)
        for (int c = 0; c <= m + 1; ++c)
            at(r, c) = (r == 0 || c == 0 || r == m + 1 || c == m + 1)
                           ? boundary
                           : interior;
    for (int s = 0; s < sweeps; ++s) {
        for (int parity : {0, 1}) {
            for (int r = 1; r <= m; ++r) {
                for (int c = 1; c <= m; ++c) {
                    if ((r + c) % 2 != parity)
                        continue;
                    at(r, c) = (at(r - 1, c) + at(r + 1, c) +
                                at(r, c - 1) + at(r, c + 1)) /
                               4;
                }
            }
        }
    }
    return g;
}

RedBlackWorkload::Result
RedBlackWorkload::execute(const sim::MachineConfig &cfg,
                          std::int64_t boundary, std::int64_t interior,
                          bool fuzzy) const
{
    FB_ASSERT(cfg.numProcessors == m,
              "need one processor per interior row");
    FB_ASSERT(cfg.memWords >=
                  static_cast<std::size_t>(baseAddr) + gridWords(),
              "memory too small for the grid");
    sim::Machine machine(cfg);
    initGrid(machine.memory(), boundary, interior);
    for (int p = 0; p < m; ++p)
        machine.loadProgram(p, buildProgram(p, fuzzy));

    Result out;
    out.run = machine.run();
    auto ref = reference(boundary, interior);
    for (std::size_t k = 0; k < ref.size(); ++k) {
        if (machine.memory().peek(static_cast<std::size_t>(baseAddr) +
                                  k) != ref[k])
            ++out.mismatches;
    }
    out.correct = !out.run.deadlocked && !out.run.timedOut &&
                  out.mismatches == 0;
    return out;
}

} // namespace fb::core
