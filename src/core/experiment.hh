/**
 * @file
 * Turn-key experiment drivers used by the examples, tests, and
 * benchmark harnesses.
 */

#ifndef FB_CORE_EXPERIMENT_HH
#define FB_CORE_EXPERIMENT_HH

#include <memory>

#include "core/workloads.hh"
#include "sim/machine.hh"

namespace fb::core
{

/** Result of a LexForward run. */
struct LexForwardRun
{
    sim::RunResult result;
    bool correct = false;      ///< final array matches the reference
    std::size_t mismatches = 0;
};

/**
 * Run the Fig. 9/10 workload on an n-processor machine.
 *
 * @param wl workload geometry
 * @param cfg machine configuration (numProcessors must equal wl.n)
 * @param reordered true: the Fig. 10 reordered body (large barrier
 *        regions); false: the naive body wrapped in a point barrier
 *        per statement (everything non-barrier except a minimal
 *        region), the no-fuzzy baseline
 */
LexForwardRun runLexForward(const LexForwardWorkload &wl,
                            const sim::MachineConfig &cfg,
                            bool reordered);

/** Result of a Poisson run. */
struct PoissonRun
{
    sim::RunResult result;
    /** Largest |cell - boundary| over the interior after the run:
     * convergence indicator (0 = fully converged). */
    std::int64_t maxResidual = 0;
};

/**
 * Run the Fig. 3/4 Poisson solver with M*M processors (one per
 * interior cell), boundary value @p boundary, for @p iters outer
 * iterations.
 *
 * @param reordered true compiles the three-phase-reordered body
 *        (Fig. 4(b)); false the naive body (Fig. 4(a)).
 */
PoissonRun runPoisson(const PoissonWorkload &wl,
                      const sim::MachineConfig &cfg, int iters,
                      std::int64_t boundary, bool reordered);

} // namespace fb::core

#endif // FB_CORE_EXPERIMENT_HH
