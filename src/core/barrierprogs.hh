/**
 * @file
 * Generators for barrier benchmark programs that run on the simulated
 * multiprocessor: shared-variable software barriers written in the
 * machine's own ISA (the kind the paper criticizes) and the hardware
 * fuzzy barrier equivalent.
 *
 * These make the paper's section 1 claims measurable inside one
 * machine model: instruction overhead and hot-spot memory traffic of
 * centralized (linear cost) and dissemination (logarithmic cost)
 * barriers versus the zero-instruction hardware mechanism.
 */

#ifndef FB_CORE_BARRIERPROGS_HH
#define FB_CORE_BARRIERPROGS_HH

#include <cstdint>
#include <string>

#include "isa/program.hh"

namespace fb::core
{

/** Shared-memory layout of the software barrier data structures. */
struct SwBarrierLayout
{
    std::int64_t countAddr = 8;    ///< centralized arrival counter
    std::int64_t senseAddr = 9;    ///< centralized release flag
    std::int64_t flagsBase = 16;   ///< dissemination flags
                                   ///< (flagsBase + round*P + proc)
};

/** Which barrier implementation a generated program uses. */
enum class SimBarrierKind
{
    Centralized,    ///< shared counter + sense flag (spin)
    Dissemination,  ///< log2(P) rounds of pairwise flags (spin)
    HardwareFuzzy,  ///< the proposed mechanism, with a region
    HardwarePoint,  ///< the mechanism with a null (one-NOP) region
};

/** Name for reports. */
const char *simBarrierKindName(SimBarrierKind kind);

/**
 * Build processor @p self's program: @p episodes iterations of
 * @p work_instrs single-cycle work instructions followed by one
 * barrier of the given kind. For HardwareFuzzy the barrier region
 * holds @p region_instrs filler instructions plus the loop control;
 * the software kinds and HardwarePoint ignore @p region_instrs.
 *
 * All processors 0..procs-1 participate.
 */
isa::Program buildBarrierLoop(SimBarrierKind kind, int procs, int self,
                              int episodes, int work_instrs,
                              int region_instrs,
                              const SwBarrierLayout &layout = {});

/** Memory words the layout requires for @p procs processors. */
std::size_t layoutWords(const SwBarrierLayout &layout, int procs);

} // namespace fb::core

#endif // FB_CORE_BARRIERPROGS_HH
