/**
 * @file
 * The paper's example workloads, reconstructed as IR builders and
 * machine-level program generators.
 */

#ifndef FB_CORE_WORKLOADS_HH
#define FB_CORE_WORKLOADS_HH

#include <cstdint>
#include <vector>

#include "compiler/codegen.hh"
#include "ir/block.hh"
#include "sim/machine.hh"

namespace fb::core
{

/**
 * The Poisson solver of Figs. 3 and 4.
 *
 * M² processors each own one interior cell (l, m) of an
 * (M+2) x (M+2) grid and repeatedly execute
 *
 *     P[l][m] = (P[l][m+1] + P[l][m-1] + P[l+1][m] + P[l-1][m]) / 4
 *
 * for 10*M outer iterations, with a barrier between iterations.
 */
struct PoissonWorkload
{
    int m;                   ///< interior grid dimension M
    std::int64_t baseAddr;   ///< word address of P[0][0]

    explicit PoissonWorkload(int m_, std::int64_t base = 0)
        : m(m_), baseAddr(base)
    {
    }

    /** Row stride in words of the (M+2)-wide array. */
    std::int64_t rowStride() const { return m + 2; }

    /** Total words the grid occupies. */
    std::size_t gridWords() const
    {
        return static_cast<std::size_t>((m + 2) * (m + 2));
    }

    /**
     * The loop body in naive evaluation order, as a code generator
     * would first emit it (Fig. 4(a) before reordering): each
     * operand's address arithmetic immediately precedes its marked
     * load. Marked instructions are the four loads and the store of
     * array P.
     */
    ir::Block naiveBody() const;

    /**
     * Build the per-processor loop (Fig. 3(b)): private i=l, j=m,
     * outer counter k, body @p body (naive or reordered), barrier
     * region across the backedge.
     */
    compiler::LoopSpec loopSpec(int l_row, int m_col, int iters,
                                ir::Block body) const;

    /** Word address of grid element (row, col). */
    std::size_t
    addrOf(int row, int col) const
    {
        return static_cast<std::size_t>(baseAddr + row * rowStride() +
                                        col);
    }

    /** Set all four boundary edges of the grid in @p mem to value. */
    void initBoundary(sim::SharedMemory &mem, std::int64_t value) const;
};

/**
 * The lexically-forward dependence loop of Figs. 9 and 10:
 *
 *     for (j = 1; j < 10; j++) seq
 *       for (i = 1; i < N; i++) par
 *         a[j][i] = a[j-1][i-1] + i*j;
 *
 * with the outer loop unrolled once so each task executes S(j) and
 * S(j+1), separated by a barrier for the lexically forward dependence
 * (processor i reads a[j][i-1] written by processor i-1) and followed
 * by a barrier for the loop-carried dependence.
 */
struct LexForwardWorkload
{
    int n;                  ///< number of processors / inner iterations
    int jLimit;             ///< outer loop bound (exclusive), even span
    std::int64_t baseAddr;  ///< word address of a[0][0]

    LexForwardWorkload(int n_, int j_limit, std::int64_t base = 0)
        : n(n_), jLimit(j_limit), baseAddr(base)
    {
    }

    /** Row stride in words (columns 0..n). */
    std::int64_t rowStride() const { return n + 1; }

    /** Words the array occupies (rows 0..jLimit+1). */
    std::size_t arrayWords() const
    {
        return static_cast<std::size_t>((jLimit + 2) * rowStride());
    }

    /**
     * The unrolled-by-two body in the reordered form of Fig. 10: two
     * barrier regions (address arithmetic) alternating with two
     * two-instruction non-barrier regions (the marked accesses).
     */
    ir::Block reorderedBody() const;

    /** The same computation in naive order, for the reorder pass. */
    ir::Block naiveBody() const;

    /**
     * One of the two unrolled statements (0 = S(j), 1 = S(j+1)) in
     * naive order with no region flags — building material for the
     * point-barrier baseline.
     */
    ir::Block statementNaive(int which) const;

    /** Per-processor loop spec for column @p i_col. */
    compiler::LoopSpec loopSpec(int i_col, ir::Block body) const;

    /** Word address of a[j][i]. */
    std::size_t
    addrOf(int j, int i) const
    {
        return static_cast<std::size_t>(baseAddr + j * rowStride() + i);
    }

    /** Initialize row 0 and column 0 of @p mem to make the recurrence
     * well-defined (a[0][i] = i, a[j][0] = 0). */
    void initArray(sim::SharedMemory &mem) const;

    /**
     * Host-side reference: the exact values the array must hold after
     * the run if every dependence was honored.
     */
    std::vector<std::int64_t> reference() const;
};

} // namespace fb::core

#endif // FB_CORE_WORKLOADS_HH
