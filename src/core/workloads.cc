#include "core/workloads.hh"

#include "ir/builder.hh"
#include "support/logging.hh"

namespace fb::core
{

using ir::IrBuilder;
using ir::Operand;
using ir::TacOp;

ir::Block
PoissonWorkload::naiveBody() const
{
    IrBuilder b;
    const std::int64_t stride = rowStride();

    // P[i][j+1]
    Operand a1 = b.emitAddr2DSub("P", "i", 0, "j", +1, stride, 1);
    Operand l1 = b.emitLoad(a1, "P", true);
    // P[i][j-1]
    Operand a2 = b.emitAddr2DSub("P", "i", 0, "j", -1, stride, 1);
    Operand l2 = b.emitLoad(a2, "P", true);
    Operand s1 = b.emitArith(TacOp::Add, l1, l2);
    // P[i+1][j]
    Operand a3 = b.emitAddr2DSub("P", "i", +1, "j", 0, stride, 1);
    Operand l3 = b.emitLoad(a3, "P", true);
    Operand s2 = b.emitArith(TacOp::Add, s1, l3);
    // P[i-1][j]
    Operand a4 = b.emitAddr2DSub("P", "i", -1, "j", 0, stride, 1);
    Operand l4 = b.emitLoad(a4, "P", true);
    Operand s3 = b.emitArith(TacOp::Add, s2, l4);
    Operand v = b.emitArith(TacOp::Div, s3, Operand::constant(4));
    // P[i][j]
    Operand a5 = b.emitAddr2DSub("P", "i", 0, "j", 0, stride, 1);
    b.emitStore(a5, v, "P", true);
    return b.take();
}

compiler::LoopSpec
PoissonWorkload::loopSpec(int l_row, int m_col, int iters,
                          ir::Block body) const
{
    FB_ASSERT(l_row >= 1 && l_row <= m && m_col >= 1 && m_col <= m,
              "cell (" << l_row << "," << m_col << ") outside the grid");
    compiler::LoopSpec spec;
    spec.counter = "k";
    spec.begin = 1;
    spec.limit = iters + 1;
    spec.step = 1;
    spec.body = std::move(body);
    spec.varInit = {{"i", l_row}, {"j", m_col}};
    spec.controlInRegion = true;
    spec.initInRegion = true;
    return spec;
}

void
PoissonWorkload::initBoundary(sim::SharedMemory &mem,
                              std::int64_t value) const
{
    for (int c = 0; c <= m + 1; ++c) {
        mem.poke(addrOf(0, c), value);
        mem.poke(addrOf(m + 1, c), value);
    }
    for (int r = 0; r <= m + 1; ++r) {
        mem.poke(addrOf(r, 0), value);
        mem.poke(addrOf(r, m + 1), value);
    }
}

namespace
{

/**
 * Emit one statement of the Fig. 10 pair: a[row_off'd j][...] =
 * a[...] + i*factor, with the address arithmetic region-flagged and
 * the marked access sequence non-barrier.
 *
 * @param b builder
 * @param stride row stride of a
 * @param j_read row offset of the read (relative to var j)
 * @param i_read column offset of the read (relative to var i)
 * @param j_write row offset of the write
 * @param j_factor offset of the multiplier: value = i * (j + j_factor)
 * @param naive if true, emit in naive interleaved order with no
 *              region flags; if false, addresses first (region),
 *              marked accesses last (non-barrier)
 */
void
emitLexStatement(IrBuilder &b, std::int64_t stride, int j_read,
                 int i_read, int j_write, int j_factor, bool naive)
{
    Operand i = Operand::var("i");
    Operand j = Operand::var("j");

    ir::Block &blk = b.mutableBlock();
    std::size_t region_begin = blk.size();

    Operand raddr =
        b.emitAddr2DSub("a", "j", j_read, "i", i_read, stride, 1);
    Operand factor = j_factor == 0
                         ? j
                         : b.emitArith(TacOp::Add, j,
                                       Operand::constant(j_factor));
    Operand prod = b.emitArith(TacOp::Mul, i, factor);
    Operand waddr =
        b.emitAddr2DSub("a", "j", j_write, "i", 0, stride, 1);

    std::size_t marked_begin = blk.size();
    Operand loaded = b.emitLoad(raddr, "a", true);
    Operand sum = b.emitArith(TacOp::Add, loaded, prod);
    b.emitStore(waddr, sum, "a", true);

    if (!naive) {
        for (std::size_t k = region_begin; k < marked_begin; ++k)
            blk.at(k).inRegion = true;
        // The marked accesses and the add between them stay
        // non-barrier.
    }
}

} // namespace

ir::Block
LexForwardWorkload::reorderedBody() const
{
    IrBuilder b;
    const std::int64_t stride = rowStride();
    // S(j):   a[j][i]   = a[j-1][i-1] + i*j        (addresses in the
    //         loop-carried barrier region)
    emitLexStatement(b, stride, -1, -1, 0, 0, false);
    // S(j+1): a[j+1][i] = a[j][i-1]   + i*(j+1)    (addresses in the
    //         lexically-forward barrier region)
    emitLexStatement(b, stride, 0, -1, +1, +1, false);
    return b.take();
}

ir::Block
LexForwardWorkload::naiveBody() const
{
    IrBuilder b;
    const std::int64_t stride = rowStride();
    emitLexStatement(b, stride, -1, -1, 0, 0, true);
    emitLexStatement(b, stride, 0, -1, +1, +1, true);
    return b.take();
}

ir::Block
LexForwardWorkload::statementNaive(int which) const
{
    FB_ASSERT(which == 0 || which == 1, "statement index must be 0 or 1");
    IrBuilder b;
    const std::int64_t stride = rowStride();
    if (which == 0)
        emitLexStatement(b, stride, -1, -1, 0, 0, true);
    else
        emitLexStatement(b, stride, 0, -1, +1, +1, true);
    return b.take();
}

compiler::LoopSpec
LexForwardWorkload::loopSpec(int i_col, ir::Block body) const
{
    FB_ASSERT(i_col >= 1 && i_col <= n, "column " << i_col
                                                  << " outside 1..n");
    FB_ASSERT(jLimit % 2 == 0,
              "unrolled-by-two loop needs an even jLimit");
    compiler::LoopSpec spec;
    spec.counter = "j";
    spec.begin = 1;
    spec.limit = jLimit;
    spec.step = 2;
    spec.body = std::move(body);
    spec.varInit = {{"i", i_col}};
    spec.controlInRegion = true;
    spec.initInRegion = true;
    return spec;
}

void
LexForwardWorkload::initArray(sim::SharedMemory &mem) const
{
    for (int i = 0; i <= n; ++i)
        mem.poke(addrOf(0, i), i);
}

std::vector<std::int64_t>
LexForwardWorkload::reference() const
{
    std::vector<std::int64_t> a(arrayWords(), 0);
    auto at = [&](int j, int i) -> std::int64_t & {
        return a[static_cast<std::size_t>(j) *
                     static_cast<std::size_t>(rowStride()) +
                 static_cast<std::size_t>(i)];
    };
    for (int i = 0; i <= n; ++i)
        at(0, i) = i;
    // Both unrolled statements implement a[r][i] = a[r-1][i-1] + i*r.
    // The unrolled-by-two loop writes rows 1..jLimit.
    for (int r = 1; r <= jLimit; ++r)
        for (int i = 1; i <= n; ++i)
            at(r, i) = at(r - 1, i - 1) + static_cast<std::int64_t>(i) * r;
    return a;
}

} // namespace fb::core
