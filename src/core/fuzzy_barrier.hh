/**
 * @file
 * Umbrella header for the fuzzy-barrier library.
 *
 * The library reproduces "The Fuzzy Barrier: A Mechanism for High
 * Speed Synchronization of Processors" (Gupta, ASPLOS 1989) as five
 * cooperating layers:
 *
 *  - fb::barrier — the hardware mechanism: per-processor four-state
 *    FSM, tag/mask registers, broadcast network (paper section 6).
 *  - fb::isa / fb::sim — a RISC-style multiprocessor simulator whose
 *    instructions carry the barrier-region bit (or BRENTER/BREXIT
 *    markers) and whose processors stall exactly per the section 2
 *    semantics.
 *  - fb::ir / fb::compiler — three-address code, marked-instruction
 *    analysis, barrier/non-barrier region construction, three-phase
 *    code reordering (section 4), loop distribution / unrolling /
 *    multi-version roles (sections 7.1-7.4).
 *  - fb::sched — static and self-scheduling policies for parallel
 *    loop iterations (Figs. 11 and 12).
 *  - fb::sw — split-phase (arrive/wait) software barriers for real
 *    threads: centralized, combining tree, dissemination, and a
 *    C++20 std::barrier adapter (the section 8 software approach).
 *
 * Quick start (simulated machine):
 * @code
 *   fb::sim::MachineConfig cfg;
 *   cfg.numProcessors = 4;
 *   fb::sim::Machine machine(cfg);
 *   ... assemble per-processor programs with .region directives ...
 *   machine.loadProgram(p, program);
 *   auto result = machine.run();
 * @endcode
 *
 * Quick start (real threads):
 * @code
 *   fb::sw::DisseminationBarrier bar(4);
 *   // on each thread, per episode:
 *   bar.arrive(tid);   // ready to synchronize
 *   ... barrier-region work ...
 *   bar.wait(tid);     // must synchronize before continuing
 * @endcode
 */

#ifndef FB_CORE_FUZZY_BARRIER_HH
#define FB_CORE_FUZZY_BARRIER_HH

#include "barrier/network.hh"
#include "barrier/state.hh"
#include "barrier/unit.hh"
#include "compiler/codegen.hh"
#include "compiler/dag.hh"
#include "compiler/depanalysis.hh"
#include "compiler/region.hh"
#include "compiler/reorder.hh"
#include "compiler/transforms.hh"
#include "core/barrierprogs.hh"
#include "core/experiment.hh"
#include "core/redblack.hh"
#include "core/workloads.hh"
#include "ir/block.hh"
#include "ir/builder.hh"
#include "isa/assembler.hh"
#include "isa/program.hh"
#include "sched/schedule.hh"
#include "sim/machine.hh"
#include "swbarrier/blocking.hh"
#include "swbarrier/centralized.hh"
#include "swbarrier/dissemination.hh"
#include "swbarrier/factory.hh"
#include "swbarrier/stdbarrier.hh"
#include "swbarrier/tagged.hh"
#include "swbarrier/tree.hh"

#endif // FB_CORE_FUZZY_BARRIER_HH
