#include "core/experiment.hh"

#include <cstdlib>

#include "compiler/reorder.hh"
#include "support/logging.hh"

namespace fb::core
{

LexForwardRun
runLexForward(const LexForwardWorkload &wl, const sim::MachineConfig &cfg,
              bool reordered)
{
    FB_ASSERT(cfg.numProcessors == wl.n,
              "machine must have one processor per column");
    FB_ASSERT(cfg.memWords >=
                  static_cast<std::size_t>(wl.baseAddr) + wl.arrayWords(),
              "memory too small for the array");

    sim::Machine machine(cfg);
    wl.initArray(machine.memory());

    compiler::CodegenOptions opts;
    opts.baseAddresses = {{"a", wl.baseAddr}};
    opts.tag = 1;
    opts.mask = (1ull << wl.n) - 1;

    for (int p = 0; p < wl.n; ++p) {
        int i_col = p + 1;
        if (reordered) {
            auto spec = wl.loopSpec(i_col, wl.reorderedBody());
            machine.loadProgram(p, compiler::compileLoop(spec, opts));
        } else {
            // Point-barrier baseline: every instruction is
            // non-barrier; a minimal (one-NOP) region sits at each of
            // the two synchronization points.
            compiler::CodeEmitter em(opts);
            em.emitPrologue();
            em.setVarConst("i", i_col);
            em.setVarConst("j", 1);
            em.label("Lloop");
            em.emitBlock(wl.statementNaive(0), 0);
            em.emitPointBarrier();  // lexically-forward barrier
            em.emitBlock(wl.statementNaive(1), 0);
            em.emitPointBarrier();  // loop-carried barrier
            em.addVarConst("j", 2, false);
            em.branchVarLtConst("j", wl.jLimit, "Lloop", false);
            em.emitHalt();
            machine.loadProgram(p, em.finish());
        }
    }

    LexForwardRun out;
    out.result = machine.run();
    const auto ref = wl.reference();
    out.mismatches = 0;
    for (int j = 0; j <= wl.jLimit; ++j) {
        for (int i = 0; i <= wl.n; ++i) {
            std::size_t addr = wl.addrOf(j, i);
            if (machine.memory().peek(addr) !=
                ref[addr - static_cast<std::size_t>(wl.baseAddr)])
                ++out.mismatches;
        }
    }
    out.correct = !out.result.deadlocked && !out.result.timedOut &&
                  out.mismatches == 0;
    return out;
}

PoissonRun
runPoisson(const PoissonWorkload &wl, const sim::MachineConfig &cfg,
           int iters, std::int64_t boundary, bool reordered)
{
    const int procs = wl.m * wl.m;
    FB_ASSERT(cfg.numProcessors == procs,
              "machine must have one processor per interior cell");
    FB_ASSERT(cfg.memWords >= static_cast<std::size_t>(wl.baseAddr) +
                                  wl.gridWords(),
              "memory too small for the grid");

    sim::Machine machine(cfg);
    wl.initBoundary(machine.memory(), boundary);

    compiler::CodegenOptions opts;
    opts.baseAddresses = {{"P", wl.baseAddr}};
    opts.tag = 1;
    opts.mask = (1ull << procs) - 1;

    ir::Block body = wl.naiveBody();
    if (reordered)
        body = compiler::threePhaseReorder(body).block;
    else
        compiler::assignRegions(body);

    int p = 0;
    for (int l = 1; l <= wl.m; ++l) {
        for (int mc = 1; mc <= wl.m; ++mc, ++p) {
            auto spec = wl.loopSpec(l, mc, iters, body);
            machine.loadProgram(p, compiler::compileLoop(spec, opts));
        }
    }

    PoissonRun out;
    out.result = machine.run();
    out.maxResidual = 0;
    for (int r = 1; r <= wl.m; ++r) {
        for (int c = 1; c <= wl.m; ++c) {
            std::int64_t v = machine.memory().peek(wl.addrOf(r, c));
            std::int64_t res = std::llabs(v - boundary);
            out.maxResidual = std::max(out.maxResidual, res);
        }
    }
    return out;
}

} // namespace fb::core
