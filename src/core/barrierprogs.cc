#include "core/barrierprogs.hh"

#include <algorithm>
#include <sstream>

#include "isa/assembler.hh"
#include "support/logging.hh"

namespace fb::core
{

const char *
simBarrierKindName(SimBarrierKind kind)
{
    switch (kind) {
      case SimBarrierKind::Centralized: return "sw-centralized";
      case SimBarrierKind::Dissemination: return "sw-dissemination";
      case SimBarrierKind::HardwareFuzzy: return "hw-fuzzy";
      case SimBarrierKind::HardwarePoint: return "hw-point";
    }
    panic("unknown SimBarrierKind");
}

std::size_t
layoutWords(const SwBarrierLayout &layout, int procs)
{
    int rounds = 0;
    int reach = 1;
    while (reach < procs) {
        reach *= 2;
        ++rounds;
    }
    std::size_t flags_end = static_cast<std::size_t>(
        layout.flagsBase + std::max(1, rounds) * procs);
    return std::max({flags_end,
                     static_cast<std::size_t>(layout.countAddr + 1),
                     static_cast<std::size_t>(layout.senseAddr + 1)});
}

namespace
{

/**
 * Registers used by the generated code:
 *   r1 iteration counter, r2 episode limit, r3 work accumulator,
 *   r4 region filler accumulator, r19 = P, r20 local sense / epoch,
 *   r21..r26 barrier scratch.
 */
void
emitWork(std::ostringstream &oss, int work_instrs)
{
    for (int k = 0; k < work_instrs; ++k)
        oss << "addi r3, r3, 1\n";
}

void
emitCentralizedEpisode(std::ostringstream &oss,
                       const SwBarrierLayout &layout)
{
    // Sense-reversing centralized barrier; every arrival performs a
    // fetch-and-add on one counter and spins on one flag word — the
    // hot spot.
    oss << "li r24, 1\n";
    oss << "sub r20, r24, r20\n";                      // flip local sense
    oss << "faa r21, " << layout.countAddr << "(r0), r24\n";
    oss << "addi r25, r21, 1\n";
    oss << "bne r25, r19, bspin\n";                    // not last: spin
    oss << "st r0, " << layout.countAddr << "(r0)\n";  // reset counter
    oss << "st r20, " << layout.senseAddr << "(r0)\n"; // release
    oss << "jmp bdone\n";
    oss << "bspin:\n";
    oss << "ld r26, " << layout.senseAddr << "(r0)\n";
    oss << "bne r26, r20, bspin\n";
    oss << "bdone:\n";
}

void
emitDisseminationEpisode(std::ostringstream &oss,
                         const SwBarrierLayout &layout, int procs,
                         int self)
{
    oss << "addi r20, r20, 1\n";  // next epoch
    int reach = 1;
    int round = 0;
    while (reach < procs) {
        int partner = (self + reach) % procs;
        std::int64_t signal_addr =
            layout.flagsBase + round * procs + partner;
        std::int64_t my_addr = layout.flagsBase + round * procs + self;
        oss << "st r20, " << signal_addr << "(r0)\n";
        oss << "dspin" << round << ":\n";
        oss << "ld r26, " << my_addr << "(r0)\n";
        oss << "blt r26, r20, dspin" << round << "\n";
        reach *= 2;
        ++round;
    }
}

} // namespace

isa::Program
buildBarrierLoop(SimBarrierKind kind, int procs, int self, int episodes,
                 int work_instrs, int region_instrs,
                 const SwBarrierLayout &layout)
{
    FB_ASSERT(procs >= 1 && self >= 0 && self < procs,
              "bad processor index");
    std::ostringstream oss;

    const bool hardware = kind == SimBarrierKind::HardwareFuzzy ||
                          kind == SimBarrierKind::HardwarePoint;
    if (hardware) {
        oss << "settag 1\n";
        // The literal mask names processors 0..procs-1 in a signed
        // 64-bit immediate, which tops out at 62 members; beyond that
        // emit the wide all-processors form (setmask -1).
        if (procs > 62)
            oss << "setmask -1\n";
        else
            oss << "setmask " << ((1ll << procs) - 1) << "\n";
    }
    oss << "li r19, " << procs << "\n";
    oss << "li r1, 0\n";
    oss << "li r2, " << episodes << "\n";
    oss << "loop:\n";
    emitWork(oss, work_instrs);

    switch (kind) {
      case SimBarrierKind::Centralized:
        emitCentralizedEpisode(oss, layout);
        oss << "addi r1, r1, 1\n";
        oss << "bne r1, r2, loop\n";
        break;
      case SimBarrierKind::Dissemination:
        emitDisseminationEpisode(oss, layout, procs, self);
        oss << "addi r1, r1, 1\n";
        oss << "bne r1, r2, loop\n";
        break;
      case SimBarrierKind::HardwareFuzzy:
        oss << ".region 1\n";
        for (int k = 0; k < region_instrs; ++k)
            oss << "addi r4, r4, 1\n";
        oss << "addi r1, r1, 1\n";
        oss << "bne r1, r2, loop\n";
        oss << ".endregion\n";
        break;
      case SimBarrierKind::HardwarePoint:
        oss << ".region 1\n";
        oss << "nop\n";
        oss << ".endregion\n";
        oss << "addi r1, r1, 1\n";
        oss << "bne r1, r2, loop\n";
        break;
    }
    oss << "st r3, 4(r0)\n";
    oss << "halt\n";

    isa::Program prog;
    std::string err;
    if (!isa::Assembler::assemble(oss.str(), prog, err))
        panic("generated barrier program failed to assemble: " + err);
    return prog;
}

} // namespace fb::core
