/**
 * @file
 * Red-black Gauss-Seidel relaxation — the deterministic sibling of
 * the paper's Poisson solver.
 *
 * The Fig. 3 solver is "the non-deterministic parallel version of the
 * algorithm": within an iteration a processor may read a neighbor's
 * old or new value. Red-black ordering splits each sweep into two
 * phases — cells with (i+j) even ("red"), then (i+j) odd ("black") —
 * with a barrier between phases. Red cells only read black cells and
 * vice versa, so the parallel result is bit-identical to a sequential
 * sweep regardless of timing: a much stronger end-to-end check of the
 * barrier machinery, and a classic two-barriers-per-iteration
 * workload for the fuzzy mechanism.
 */

#ifndef FB_CORE_REDBLACK_HH
#define FB_CORE_REDBLACK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.hh"

namespace fb::core
{

/**
 * Row-parallel red-black relaxation on an (M+2) x (M+2) grid: one
 * processor per interior row, two fuzzy barriers per sweep.
 */
struct RedBlackWorkload
{
    int m;                  ///< interior dimension (and processor count)
    int sweeps;             ///< relaxation sweeps
    std::int64_t baseAddr;  ///< word address of grid[0][0]

    RedBlackWorkload(int m_, int sweeps_, std::int64_t base = 0)
        : m(m_), sweeps(sweeps_), baseAddr(base)
    {
    }

    /** Row stride in words. */
    std::int64_t rowStride() const { return m + 2; }

    /** Grid size in words. */
    std::size_t gridWords() const
    {
        return static_cast<std::size_t>((m + 2) * (m + 2));
    }

    /** Word address of grid element (row, col). */
    std::size_t
    addrOf(int row, int col) const
    {
        return static_cast<std::size_t>(baseAddr + row * rowStride() +
                                        col);
    }

    /**
     * Build processor @p self's stream (self owns row self+1). With
     * @p fuzzy, each phase barrier's region holds the next phase's
     * column-pointer setup and the loop control; otherwise a one-NOP
     * point region.
     */
    isa::Program buildProgram(int self, bool fuzzy) const;

    /** Write boundary and interior initial values into @p mem. */
    void initGrid(sim::SharedMemory &mem, std::int64_t boundary,
                  std::int64_t interior) const;

    /**
     * Exact host reference: the full grid contents after the
     * configured sweeps, performed red-phase-then-black-phase.
     */
    std::vector<std::int64_t> reference(std::int64_t boundary,
                                        std::int64_t interior) const;

    /** Run on a machine and count mismatches against the reference. */
    struct Result
    {
        sim::RunResult run;
        std::size_t mismatches = 0;
        bool correct = false;
    };
    Result execute(const sim::MachineConfig &cfg, std::int64_t boundary,
                   std::int64_t interior, bool fuzzy) const;
};

} // namespace fb::core

#endif // FB_CORE_REDBLACK_HH
