/**
 * @file
 * Hierarchical barrier network topologies.
 *
 * The paper's broadcast AND network (section 6) is flat: one set of
 * dedicated wires spans all processors and a completed group is
 * observed sync_latency cycles later, regardless of which processors
 * form the group. Section 6 itself notes the interconnect grows with
 * the machine; the 1024-core RISC-V barrier study (PAPERS.md) shows
 * the standard fix — organize the wires as cores -> clusters -> root,
 * pay a per-level propagation latency, and a group confined to one
 * subtree never leaves it.
 *
 * The topology only changes *when* a completed group's synchronization
 * is delivered, never *whether*: group completion is still the same
 * combinational AND, and all members of a (symmetric-mask) group
 * traverse the same number of levels, so the simultaneous-delivery
 * guarantee of the flat network carries over unchanged. The delivery
 * cycle is
 *
 *     completion + sync_latency + 2 * span * level_latency
 *
 * where span is the height of the smallest aligned subtree containing
 * every group member (the combining point): the ready pulses climb
 * `span` levels to the lowest common ancestor and the sync pulse
 * descends `span` levels back. A flat topology has span == 0 always,
 * which reduces the formula to the paper's sync_latency exactly.
 */

#ifndef FB_BARRIER_TOPOLOGY_HH
#define FB_BARRIER_TOPOLOGY_HH

#include <cstdint>
#include <string>

namespace fb::barrier
{

/**
 * Shape and per-level latency of the synchronization network.
 */
struct Topology
{
    enum class Kind : std::uint8_t
    {
        Flat = 0,     ///< the paper's single-level broadcast network
        Tree = 1,     ///< uniform ARITY-way tree over processor ids
        Cluster = 2,  ///< two levels: SIZE-processor clusters + root
    };

    Kind kind = Kind::Flat;
    /** Tree arity or cluster size (>= 2 when kind != Flat). */
    int param = 0;
    /** Cycles to cross one level, each direction. */
    std::uint32_t levelLatency = 1;

    bool flat() const { return kind == Kind::Flat; }

    /**
     * Levels between a leaf and the combining point of a group
     * spanning processors [lo, hi]. Subtrees are aligned id blocks,
     * so the combining point is found by widening the block until lo
     * and hi fall into the same one.
     */
    int spanLevels(std::size_t lo, std::size_t hi) const;

    /** Delivery delay added on top of the flat network's latency. */
    std::uint64_t extraLatency(std::size_t lo, std::size_t hi) const
    {
        return 2ull * static_cast<std::uint64_t>(spanLevels(lo, hi)) *
               levelLatency;
    }

    /** Render as the CLI syntax: flat | tree:A[:L] | cluster:S[:L]. */
    std::string toString() const;

    /**
     * Parse the CLI syntax. Returns false (leaving @p out untouched)
     * on malformed input, a param < 2, or a zero level latency.
     */
    static bool parse(const std::string &text, Topology &out);

    bool operator==(const Topology &other) const
    {
        return kind == other.kind && param == other.param &&
               levelLatency == other.levelLatency;
    }
};

} // namespace fb::barrier

#endif // FB_BARRIER_TOPOLOGY_HH
