#include "barrier/unit.hh"

#include "support/logging.hh"

namespace fb::barrier
{

BarrierUnit::BarrierUnit(int num_processors, int self)
    : _numProcessors(num_processors), _self(self),
      _mask(static_cast<std::size_t>(num_processors))
{
    FB_ASSERT(num_processors > 0, "need at least one processor");
    FB_ASSERT(self >= 0 && self < num_processors,
              "self index out of range");
}

void
BarrierUnit::setMask(std::uint64_t bits)
{
    FB_ASSERT(_numProcessors <= 64, "word mask limited to 64 processors");
    for (int p = 0; p < _numProcessors; ++p)
        _mask.set(static_cast<std::size_t>(p),
                  (bits >> p & 1) != 0 && p != _self);
}

void
BarrierUnit::setMaskBit(int processor, bool value)
{
    FB_ASSERT(processor >= 0 && processor < _numProcessors,
              "mask bit out of range");
    if (processor == _self)
        return;  // a processor never synchronizes with itself
    _mask.set(static_cast<std::size_t>(processor), value);
}

void
BarrierUnit::arrive()
{
    if (!participating())
        return;
    FB_ASSERT(_state == BarrierState::NonBarrier,
              "arrive() in state " << barrierStateName(_state));
    _state = BarrierState::Ready;
    _stalledThisEpisode = false;
}

bool
BarrierUnit::mayCross() const
{
    if (!participating())
        return true;
    // A core that never armed this episode (no region instructions
    // executed, e.g. it branched around the region) is simply in
    // NonBarrier and may continue.
    return _state == BarrierState::NonBarrier ||
           _state == BarrierState::Synced;
}

void
BarrierUnit::cross()
{
    if (!participating())
        return;
    if (_state == BarrierState::NonBarrier)
        return;
    FB_ASSERT(_state == BarrierState::Synced,
              "cross() in state " << barrierStateName(_state));
    _state = BarrierState::NonBarrier;
}

void
BarrierUnit::noteStalled()
{
    FB_ASSERT(participating(), "stall without participation");
    FB_ASSERT(_state == BarrierState::Ready ||
                  _state == BarrierState::Stalled,
              "noteStalled() in state " << barrierStateName(_state));
    if (_state == BarrierState::Ready) {
        _state = BarrierState::Stalled;
        if (!_stalledThisEpisode) {
            _stalledThisEpisode = true;
            ++_stalledEpisodes;
        }
    }
}

void
BarrierUnit::deliverSync()
{
    FB_ASSERT(_state == BarrierState::Ready ||
                  _state == BarrierState::Stalled,
              "deliverSync() in state " << barrierStateName(_state));
    _state = BarrierState::Synced;
    ++_episodes;
}

} // namespace fb::barrier
